(* Concurrent multi-session audit: seeded scheduler determinism, snapshot
   isolation, WAL group commit, schedule-replay, and the dependency-probe
   fast path the concurrent diff uses. *)

open Ldv_core
module I = Dbclient.Interceptor

let audited = Concurrent.audited

(* ------------------------------------------------------------------ *)
(* Determinism: the same seed must reproduce the identical interleaving,
   trace, and package bytes; a different seed must actually reschedule.  *)

let test_same_seed_same_bytes () =
  let a1 = audited ~sessions:4 ~statements:6 ~seed:5 () in
  let a2 = audited ~sessions:4 ~statements:6 ~seed:5 () in
  Alcotest.(check string)
    "same seed, same serialized trace"
    (Prov.Trace.serialize a1.Audit.trace)
    (Prov.Trace.serialize a2.Audit.trace);
  let b1 = Package.to_bytes (Package.build a1) in
  let b2 = Package.to_bytes (Package.build a2) in
  Alcotest.(check bool) "same seed, same package bytes" true
    (String.equal b1 b2);
  let a3 = audited ~sessions:4 ~statements:6 ~seed:6 () in
  let b3 = Package.to_bytes (Package.build a3) in
  Alcotest.(check bool) "different seed, different interleaving" false
    (String.equal b1 b3)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation, read off the merged statement log: counts are
   monotone in snapshot order, every session contributes, and at least
   one query's pinned snapshot excluded an insert that committed while
   the query was in flight.                                             *)

let count_of (s : I.stmt_event) =
  match s.I.rows with [ [| Minidb.Value.Int n |] ] -> Some n | _ -> None

let test_snapshot_isolation () =
  let audit = audited ~sessions:8 ~statements:6 ~seed:42 () in
  let queries =
    List.filter_map
      (fun (s : I.stmt_event) ->
        if s.I.kind = I.Squery then
          Option.map (fun n -> (s.I.sid, s.I.snapshot, s.I.t_end, n)) (count_of s)
        else None)
      (Audit.stmts audit)
  in
  Alcotest.(check bool) "several sessions ran queries" true
    (List.length (List.sort_uniq compare (List.map (fun (sid, _, _, _) -> sid) queries))
    > 2);
  let by_snap =
    List.sort (fun (_, a, _, _) (_, b, _, _) -> compare (a : int) b) queries
  in
  let rec monotone = function
    | (_, _, _, n1) :: ((_, _, _, n2) :: _ as rest) ->
      n1 <= n2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "counts monotone in snapshot order" true
    (monotone by_snap);
  (* q1 pinned its snapshot, then an insert committed before q1's interval
     ended (q2's later snapshot, still within q1's window, sees more rows):
     q1 excluded a concurrent insert — the observable SI effect *)
  let excluded_concurrent_insert =
    List.exists
      (fun (_, snap1, t_end1, n1) ->
        List.exists
          (fun (_, snap2, _, n2) -> snap1 < snap2 && snap2 <= t_end1 && n2 > n1)
          queries)
      queries
  in
  Alcotest.(check bool) "some query excluded a concurrent insert" true
    excluded_concurrent_insert

(* ------------------------------------------------------------------ *)
(* Slicing attribution: every tuple any session created is recreated by
   replay, so the packaged subset is exactly the pre-existing seed rows. *)

let test_subset_excludes_session_writes () =
  let audit = audited ~sessions:4 ~statements:6 ~seed:5 () in
  let pkg = Package.build audit in
  let rows =
    List.concat_map
      (fun (_, csv) -> Minidb.Csv.decode_versions csv)
      pkg.Package.db_subset
  in
  Alcotest.(check int) "only the 4 fixture tuples ship" 4 (List.length rows);
  List.iter
    (fun (_, _, values) ->
      match values with
      | [| _; Minidb.Value.Str author; _ |] ->
        Alcotest.(check string) "a pre-existing tuple" "seed" author
      | _ -> Alcotest.fail "unexpected row shape")
    rows

(* ------------------------------------------------------------------ *)
(* Group commit: one fsync barrier per scheduler quantum instead of one
   per statement.                                                       *)

let wal_barriers ~grouped ~sessions ~rounds =
  let kernel = Minios.Kernel.create () in
  let db = Minidb.Database.create () in
  let server = Dbclient.Server.attach db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  let d = Dbclient.Durable.start kernel server ~pid:proc.Minios.Kernel.pid in
  if grouped then Dbclient.Durable.enable_group_commit d;
  ignore (Dbclient.Durable.exec d "CREATE TABLE t (a INT)");
  for round = 1 to rounds do
    for sid = 0 to sessions - 1 do
      ignore
        (Dbclient.Durable.exec d
           (Printf.sprintf "INSERT INTO t VALUES (%d)" ((round * 100) + sid)))
    done;
    Minios.Kernel.run_quantum_hooks kernel
  done;
  Dbclient.Durable.flush d;
  Dbclient.Durable.fsync_barriers d

let test_group_commit_batches_fsync () =
  let per_stmt = wal_barriers ~grouped:false ~sessions:8 ~rounds:12 in
  let grouped = wal_barriers ~grouped:true ~sessions:8 ~rounds:12 in
  Alcotest.(check bool)
    (Printf.sprintf "grouped (%d) at most half of per-statement (%d)" grouped
       per_stmt)
    true
    (2 * grouped <= per_stmt);
  (* per-statement syncs every statement: CREATE + 8*12 inserts *)
  Alcotest.(check int) "per-statement barrier count" 97 per_stmt;
  (* grouped: one barrier per non-empty quantum (the CREATE rides in the
     first round's batch) *)
  Alcotest.(check int) "grouped barrier count" 12 grouped

(* ------------------------------------------------------------------ *)
(* Replay: the recorded schedule round-trips through the package and an
   8-session run replays byte-identically.                              *)

let test_schedule_roundtrip_and_replay () =
  let audit = audited ~sessions:8 ~statements:6 ~seed:42 () in
  let bytes = Package.to_bytes (Package.build audit) in
  let pkg = Package.of_bytes bytes in
  (match Package.schedule pkg with
  | None -> Alcotest.fail "concurrent package lost its schedule"
  | Some (seed, clients) ->
    Alcotest.(check int) "seed round-trips" 42 seed;
    Alcotest.(check int) "all clients recorded" 8 (List.length clients));
  let r = Replay.execute pkg in
  Alcotest.(check int) "one replay session per client" 8
    (List.length r.Replay.sessions);
  Alcotest.(check (list string)) "replay verified" [] (Replay.verify ~audit r)

(* ------------------------------------------------------------------ *)
(* Concurrent crash consistency: group-commit batches can vanish at a
   power failure, recovery + resume must still match the control.       *)

let test_concurrent_crashcheck () =
  let r = Crashcheck.run ~sessions:4 ~campaigns:8 ~seed:11 () in
  Alcotest.(check int) "no divergent campaigns" 0 r.Crashcheck.r_divergent;
  Alcotest.(check int) "no uncaught exceptions" 0 r.Crashcheck.r_uncaught

(* ------------------------------------------------------------------ *)
(* The dependency probe behind the concurrent diff: [depends_on] must
   agree with the full enumeration while terminating early.             *)

let figure4_trace () =
  let open Prov in
  let t = Trace.create Bb_model.model in
  ignore (Bb_model.add_process t ~pid:1 ~name:"P1");
  List.iter (fun p -> ignore (Bb_model.add_file t ~path:p)) [ "A"; "B"; "C"; "D" ];
  ignore (Bb_model.read_from t ~pid:1 ~path:"A" ~time:(Interval.make 2 3));
  ignore (Bb_model.read_from t ~pid:1 ~path:"B" ~time:(Interval.make 1 5));
  ignore (Bb_model.has_written t ~pid:1 ~path:"C" ~time:(Interval.make 2 3));
  ignore (Bb_model.has_written t ~pid:1 ~path:"D" ~time:(Interval.make 8 8));
  t

let test_depends_on_matches_enumeration () =
  let t = figure4_trace () in
  let entities = [ "file:A"; "file:B"; "file:C"; "file:D" ] in
  List.iter
    (fun target ->
      let full = Prov.Dependency.dependencies_of t target in
      List.iter
        (fun source ->
          Alcotest.(check bool)
            (Printf.sprintf "depends_on %s -> %s agrees" target source)
            (List.mem source full && not (String.equal source target))
            (Prov.Dependency.depends_on t ~target ~source))
        entities)
    entities

let test_missing_dependencies () =
  let open Prov in
  let a = figure4_trace () in
  (* b: same entities, but C is written before A is read — the C->A
     dependency the first trace has is absent *)
  let b = Trace.create Bb_model.model in
  ignore (Bb_model.add_process b ~pid:1 ~name:"P1");
  List.iter (fun p -> ignore (Bb_model.add_file b ~path:p)) [ "A"; "B"; "C"; "D" ];
  ignore (Bb_model.has_written b ~pid:1 ~path:"C" ~time:(Interval.make 1 1));
  ignore (Bb_model.read_from b ~pid:1 ~path:"A" ~time:(Interval.make 2 3));
  ignore (Bb_model.read_from b ~pid:1 ~path:"B" ~time:(Interval.make 1 5));
  ignore (Bb_model.has_written b ~pid:1 ~path:"D" ~time:(Interval.make 8 8));
  let pairs = [ ("file:C", "file:A"); ("file:D", "file:A") ] in
  Alcotest.(check (list (pair string string)))
    "C->A holds in a but not b; D->A holds in both"
    [ ("file:C", "file:A") ]
    (Diff.missing_dependencies a b ~pairs)

let suite =
  [ Alcotest.test_case "same seed, same trace and package bytes" `Quick
      test_same_seed_same_bytes;
    Alcotest.test_case "snapshot-isolated reads" `Quick
      test_snapshot_isolation;
    Alcotest.test_case "subset excludes session-created tuples" `Quick
      test_subset_excludes_session_writes;
    Alcotest.test_case "group commit batches fsync barriers" `Quick
      test_group_commit_batches_fsync;
    Alcotest.test_case "schedule round-trips and replay verifies" `Quick
      test_schedule_roundtrip_and_replay;
    Alcotest.test_case "crashcheck with 4 concurrent sessions" `Quick
      test_concurrent_crashcheck;
    Alcotest.test_case "depends_on agrees with full enumeration" `Quick
      test_depends_on_matches_enumeration;
    Alcotest.test_case "missing_dependencies finds the lost pair" `Quick
      test_missing_dependencies ]
