(* WAL-shipping replication: durable-cut recovery edges, ship-fault and
   crash/recover convergence, the session read router with its staleness
   bound, retry telemetry, the replicacheck campaign harness, and
   cluster-served concurrent audits replaying byte-identically. *)

open Ldv_core
open Dbclient
module F = Ldv_faults
module E = Ldv_errors
module K = Minios.Kernel
module R = Replication
module Obs = Ldv_obs

(* Run [f] against a clean in-memory collector (see test_obs.ml). *)
let with_memory f =
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.reset ())
    f

let counter_of (snap : Obs.snapshot) name =
  Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)

let exec cluster sql =
  match R.exec cluster sql with
  | Protocol.Error_response m -> Alcotest.failf "cluster exec failed: %s" m
  | _ -> ()

let lexec (d : Durable.t) sql =
  match Durable.exec d sql with
  | Protocol.Error_response m -> Alcotest.failf "leader exec failed: %s" m
  | _ -> ()

let check_converged what cluster =
  match R.converged cluster with
  | None -> ()
  | Some (i, diff) ->
    Alcotest.failf "%s: replica %d diverged: %s" what i diff

(* ---------------- Wal.durable_cut edges ------------------------- *)

let test_durable_cut_empty () =
  let replay, dropped, redo_upto = Wal.durable_cut [] in
  Alcotest.(check int) "nothing to replay" 0 (List.length replay);
  Alcotest.(check int) "nothing dropped" 0 (List.length dropped);
  Alcotest.(check int) "redo mark is the fallback" 0 redo_upto;
  let _, _, upto = Wal.durable_cut ~fallback:7 [] in
  Alcotest.(check int) "explicit fallback honoured" 7 upto

(* A tear in the middle of a deferred-sync batch: under group commit
   nothing is durable until the quantum barrier, so a crash that keeps a
   torn prefix of the batch loses every record at or after the tear —
   and recovery replays exactly the intact prefix. *)
let test_torn_record_mid_batch_grouped () =
  let kernel, d = Crashcheck.boot () in
  Durable.set_policy d Durable.Grouped;
  lexec d "CREATE TABLE t (a INT)";
  for i = 1 to 5 do
    lexec d (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
  done;
  let vfs = K.vfs kernel in
  let wal_path = Durable.wal_path (Durable.server d) in
  let unsynced = Minios.Vfs.unsynced_bytes vfs wal_path in
  Alcotest.(check bool) "group commit deferred every sync" true
    (unsynced > 0);
  (* keep the whole batch minus 4 bytes: the tear lands inside the last
     record, mid-batch relative to the deferred-sync window *)
  K.crash kernel ~keep:[ (wal_path, unsynced - 4) ] ();
  let warned = ref None in
  let prev = !E.on_warning in
  E.on_warning := (fun e -> warned := Some e);
  let loaded =
    Fun.protect
      ~finally:(fun () -> E.on_warning := prev)
      (fun () -> Wal.load vfs wal_path)
  in
  Alcotest.(check bool) "torn bytes detected" true
    (loaded.Wal.torn_bytes > 0);
  Alcotest.(check bool) "typed Wal_torn warning fired" true
    (match !warned with Some (E.Wal_torn _) -> true | _ -> false);
  Alcotest.(check int) "intact prefix parses" 5
    (List.length loaded.Wal.records);
  let d', stats = Durable.recover kernel ~data_dir:"/var/minidb/data" () in
  Alcotest.(check int) "recovery redoes the intact prefix" 5
    stats.Durable.redone;
  match
    Server.handle (Durable.server d')
      (Protocol.Statement { sql = "SELECT COUNT(*) FROM t" })
  with
  | Protocol.Result_set { rows = [ [| Minidb.Value.Int n |] ]; _ } ->
    Alcotest.(check int) "torn insert lost, batch prefix kept" 4 n
  | _ -> Alcotest.fail "count query failed after recovery"

(* Resync a crashed replica whose own WAL runs ahead of its last
   checkpoint: recovery must redo the local suffix, then catch-up ships
   only what the replica never saw — no duplicate application. *)
let test_resync_wal_ahead_of_checkpoint () =
  let kernel, leader = Crashcheck.boot () in
  let cluster =
    R.create kernel ~leader ~replicas:1 ~staleness:2 ~ckpt_every:4 ()
  in
  let plan = F.make ~crash:("repl.apply", 7) ~seed:11 () in
  F.with_plan plan (fun () ->
      exec cluster "CREATE TABLE t (a INT)";
      for i = 1 to 9 do
        exec cluster (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
      done);
  Alcotest.(check bool) "replica crashed mid-stream" true
    (R.replica_state cluster 0 = R.Down);
  (* the replica checkpointed at apply #4 and then applied durably past
     it: its WAL is strictly ahead of the checkpoint image *)
  Alcotest.(check bool) "replica applied past its checkpoint" true
    (R.replica_applied cluster 0 > 4);
  Alcotest.(check bool) "replica behind the leader" true
    (R.replica_applied cluster 0 < R.ship_seq cluster);
  R.recover cluster 0;
  Alcotest.(check bool) "replica back up" true
    (R.replica_state cluster 0 = R.Up);
  Alcotest.(check int) "caught up to the ship head"
    (R.ship_seq cluster)
    (R.replica_applied cluster 0);
  check_converged "resync" cluster

(* ---------------- convergence under faults ---------------------- *)

let test_ship_faults_converge () =
  let kernel, leader = Crashcheck.boot () in
  let cluster = R.create kernel ~leader ~replicas:2 ~staleness:2 () in
  let plan = F.make ~p_ship:0.5 ~seed:3 () in
  F.with_plan plan (fun () ->
      exec cluster "CREATE TABLE t (a INT, b TEXT)";
      for i = 1 to 20 do
        exec cluster (Printf.sprintf "INSERT INTO t VALUES (%d, 'r%d')" i i)
      done);
  Alcotest.(check bool) "faults were actually injected" true
    (List.exists (fun (_, n) -> n > 0) (F.injected plan));
  R.quiesce cluster;
  check_converged "ship faults" cluster;
  for i = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d at the ship head" i)
      (R.ship_seq cluster)
      (R.replica_applied cluster i)
  done

let test_crash_recover_byte_identical () =
  let kernel, leader = Crashcheck.boot () in
  let cluster = R.create kernel ~leader ~replicas:1 ~staleness:2 () in
  let plan = F.make ~crash:("repl.apply", 3) ~seed:5 () in
  F.with_plan plan (fun () ->
      exec cluster "CREATE TABLE t (a INT)";
      for i = 1 to 7 do
        exec cluster (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
      done);
  Alcotest.(check bool) "replica down after injected crash" true
    (R.replica_state cluster 0 = R.Down);
  R.recover cluster 0;
  R.quiesce cluster;
  check_converged "crash+recover" cluster;
  Alcotest.(check string) "byte-identical state fingerprints"
    (R.state_fingerprint (R.leader_db cluster))
    (R.state_fingerprint (R.replica_db cluster 0))

(* ---------------- the session read router ----------------------- *)

let test_read_router_stale_and_fallback () =
  with_memory @@ fun () ->
  let kernel, leader = Crashcheck.boot () in
  lexec leader "CREATE TABLE t (a INT)";
  lexec leader "INSERT INTO t VALUES (1)";
  lexec leader "INSERT INTO t VALUES (2)";
  (* generous staleness bound: a lagging replica still serves *)
  let cluster = R.create kernel ~leader ~replicas:1 ~staleness:100 () in
  let applied0 = R.replica_applied cluster 0 in
  let plan = F.make ~p_ship:1.0 ~seed:2 () in
  F.with_plan plan (fun () ->
      for i = 3 to 5 do
        exec cluster (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
      done);
  Alcotest.(check bool) "replica is lagging" true
    (R.replica_applied cluster 0 < R.ship_seq cluster);
  let served = R.read cluster "SELECT COUNT(*) FROM t" in
  Alcotest.(check int) "replica answered" 0 served.R.sv_node;
  (match served.R.sv_resp with
  | Protocol.Result_set { rows = [ [| Minidb.Value.Int n |] ]; _ } ->
    (* the replica sees the base backup plus exactly what it applied —
       strictly less than the leader's row count *)
    Alcotest.(check int) "stale read pinned at the applied version"
      (2 + (R.replica_applied cluster 0 - applied0))
      n;
    Alcotest.(check bool) "stale read misses the newest rows" true (n < 5)
  | _ -> Alcotest.fail "stale read failed");
  let snap = Obs.snapshot () in
  Alcotest.(check int) "stale read counted" 1
    (counter_of snap "repl.stale_reads");
  Alcotest.(check int) "replica read counted" 1
    (counter_of snap "repl.reads.replica");
  (* a downed replica is never eligible: the leader must answer *)
  let tight = R.create kernel ~leader ~replicas:1 ~staleness:0 () in
  let plan2 = F.make ~crash:("repl.apply", 1) ~seed:4 () in
  F.with_plan plan2 (fun () ->
      exec tight "INSERT INTO t VALUES (6)");
  Alcotest.(check bool) "replica crashed" true
    (R.replica_state tight 0 = R.Down);
  let served' = R.read tight "SELECT COUNT(*) FROM t" in
  Alcotest.(check int) "leader fallback node" (-1) served'.R.sv_node;
  (match served'.R.sv_resp with
  | Protocol.Result_set { rows = [ [| Minidb.Value.Int n |] ]; _ } ->
    Alcotest.(check int) "fallback sees every committed row" 6 n
  | _ -> Alcotest.fail "fallback read failed");
  Alcotest.(check bool) "fallback counted" true
    (counter_of (Obs.snapshot ()) "repl.fallbacks" >= 1)

(* ---------------- retry telemetry ------------------------------- *)

let test_retry_site_tagged_telemetry () =
  with_memory @@ fun () ->
  let calls = ref 0 in
  let v =
    F.with_retries ~op:"shiptest" (fun () ->
        incr calls;
        if !calls < 3 then E.fail (E.Connection_lost { context = "flaky" })
        else 9)
  in
  Alcotest.(check int) "eventually succeeded" 9 v;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "global retry counter" 2
    (counter_of snap "faults.retry");
  Alcotest.(check int) "site-and-tag counter" 2
    (counter_of snap "faults.retry.shiptest.conn.lost")

let test_retry_backoff_cap_fails_fast () =
  let calls = ref 0 in
  Alcotest.(check bool) "cap cuts the attempt budget short" true
    (try
       F.with_retries ~attempts:10 ~cap_ms:2.0 ~op:"cap" (fun () ->
           incr calls;
           E.fail (E.Connection_lost { context = "dead peer" }))
     with E.Error (E.Retries_exhausted { op = "cap"; attempts; _ }) ->
       attempts < 10);
  (* backoff 1ms + 2ms exceeds the 2ms cap on the second pause *)
  Alcotest.(check int) "two calls, then fast-fail" 2 !calls

(* ---------------- the replicacheck harness ---------------------- *)

let test_replicacheck_deterministic () =
  let r1 = Replicacheck.run ~campaigns:3 ~replicas:2 ~seed:7 () in
  let r2 = Replicacheck.run ~campaigns:3 ~replicas:2 ~seed:7 () in
  Alcotest.(check string) "same seed, same report"
    (Replicacheck.to_string r1) (Replicacheck.to_string r2);
  Alcotest.(check int) "no divergent runs" 0 r1.Replicacheck.r_divergent;
  Alcotest.(check int) "no uncaught exceptions" 0 r1.Replicacheck.r_uncaught;
  Alcotest.(check int) "every campaign ran" 3
    (List.length r1.Replicacheck.r_runs);
  let r3 = Replicacheck.run ~campaigns:3 ~replicas:2 ~seed:8 () in
  Alcotest.(check bool) "different seed, different schedule" false
    (String.equal (Replicacheck.to_string r1) (Replicacheck.to_string r3))

(* ---------------- cluster-served concurrent audits -------------- *)

let test_cluster_audit_records_routes () =
  let audit = Concurrent.audited ~sessions:3 ~statements:6 ~seed:11
      ~replicas:2 ()
  in
  Alcotest.(check bool) "audit records the cluster shape" true
    (audit.Audit.repl = Some (2, 4));
  let replica_reads =
    List.filter
      (fun (s : Dbclient.Interceptor.stmt_event) ->
        s.Dbclient.Interceptor.replica >= 0)
      (Audit.stmts audit)
  in
  Alcotest.(check bool) "some reads were replica-served" true
    (List.length replica_reads > 0);
  let pkg = Package.build audit in
  Alcotest.(check (option (pair int int))) "cluster shape in metadata"
    (Some (2, 4)) (Package.replication pkg);
  Alcotest.(check int) "every replica-served read has a route"
    (List.length replica_reads)
    (List.length (Package.routes pkg))

let test_cluster_audit_replays_byte_identically () =
  let audit = Concurrent.audited ~sessions:3 ~statements:6 ~seed:11
      ~replicas:2 ()
  in
  let pkg = Package.of_bytes (Package.to_bytes (Package.build audit)) in
  let r = Replay.execute pkg in
  Alcotest.(check (list string)) "replay verified, routes included" []
    (Replay.verify ~audit r)

let test_plain_audit_has_no_cluster_metadata () =
  let audit = Concurrent.audited ~sessions:2 ~statements:4 ~seed:3 () in
  Alcotest.(check bool) "no cluster recorded" true
    (audit.Audit.repl = None);
  let pkg = Package.build audit in
  Alcotest.(check (option (pair int int))) "no replication metadata" None
    (Package.replication pkg);
  Alcotest.(check int) "no routes" 0 (List.length (Package.routes pkg))

let suite =
  [ Alcotest.test_case "durable-cut: empty log" `Quick test_durable_cut_empty;
    Alcotest.test_case "durable-cut: torn record mid-batch (grouped)" `Quick
      test_torn_record_mid_batch_grouped;
    Alcotest.test_case "resync: replica WAL ahead of checkpoint" `Quick
      test_resync_wal_ahead_of_checkpoint;
    Alcotest.test_case "ship faults converge" `Quick
      test_ship_faults_converge;
    Alcotest.test_case "crash+recover byte-identical" `Quick
      test_crash_recover_byte_identical;
    Alcotest.test_case "read router: stale bound and fallback" `Quick
      test_read_router_stale_and_fallback;
    Alcotest.test_case "retry telemetry is site-tagged" `Quick
      test_retry_site_tagged_telemetry;
    Alcotest.test_case "retry backoff cap fails fast" `Quick
      test_retry_backoff_cap_fails_fast;
    Alcotest.test_case "replicacheck deterministic" `Quick
      test_replicacheck_deterministic;
    Alcotest.test_case "cluster audit records routes" `Quick
      test_cluster_audit_records_routes;
    Alcotest.test_case "cluster audit replays byte-identically" `Quick
      test_cluster_audit_replays_byte_identically;
    Alcotest.test_case "plain audit has no cluster metadata" `Quick
      test_plain_audit_has_no_cluster_metadata ]
