(* Test entry point: every module contributes one or more alcotest
   suites. *)

let () =
  Alcotest.run "ldv"
    [ ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("annotation", Test_annotation.suite);
      ("sql-lexer", Test_sql_lexer.suite);
      ("sql-parser", Test_sql_parser.suite);
      ("eval-expr", Test_eval_expr.suite);
      ("table", Test_table.suite);
      ("storage", Test_storage.suite);
      ("executor", Test_executor.suite);
      ("sql-features", Test_sql_features.suite);
      ("csv", Test_csv.suite);
      ("database", Test_database.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("differential", Test_differential.suite);
      ("interval", Test_interval.suite);
      ("model", Test_model.suite);
      ("trace", Test_trace.suite);
      ("dependency", Test_dependency.suite);
      ("dependency-exact", Test_dependency_exact.suite);
      ("prov-export", Test_prov_export.suite);
      ("prov-query", Test_prov_query.suite);
      ("vfs", Test_vfs.suite);
      ("kernel", Test_kernel.suite);
      ("tracer", Test_tracer.suite);
      ("perm", Test_perm.suite);
      ("recorder", Test_recorder.suite);
      ("server", Test_server.suite);
      ("interceptor", Test_interceptor.suite);
      ("tpch", Test_tpch.suite);
      ("tpch-originals", Test_tpch_full.suite);
      ("audit", Test_audit.suite);
      ("slice", Test_slice.suite);
      ("package", Test_package.suite);
      ("replay", Test_replay.suite);
      ("gprom", Test_gprom.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("faults", Test_faults.suite);
      ("durability", Test_durability.suite);
      ("report", Test_report.suite);
      ("partial-diff", Test_partial_diff.suite);
      ("concurrent", Test_concurrent.suite);
      ("tx", Test_tx.suite);
      ("contention", Test_contention.suite);
      ("replication", Test_replication.suite);
      ("ledger", Test_ledger.suite);
      ("end-to-end", Test_e2e.suite) ]
