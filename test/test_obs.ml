(* Ldv_obs: spans, metrics, histograms, JSONL round-trip, and the span
   tree an instrumented audit emits. *)

module Obs = Ldv_obs
module H = Ldv_obs.Histogram

(* Run [f] against a clean in-memory collector, restoring the disabled
   sink and the wall clock afterwards so the other suites see no
   instrumentation. *)
let with_memory f =
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ();
      Obs.set_ring_capacity 65536)
    f

(* Deterministic clock: each reading is 1.0 s after the previous one. *)
let tick_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.0;
      v)

let span_names snap = List.map (fun sp -> sp.Obs.sp_name) snap.Obs.spans

(* ------------------------------------------------------------------ *)
(* Disabled path.                                                      *)

let test_disabled_noop () =
  Obs.set_sink Obs.Null;
  Obs.reset ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  let r = Obs.with_span "x" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span passes result through" 42 r;
  Obs.counter "c";
  Obs.gauge "g" 1.0;
  Obs.observe "h" 1.0;
  Obs.add_attr "k" "v";
  let snap = Obs.snapshot () in
  Alcotest.(check int) "no spans" 0 (List.length snap.Obs.spans);
  Alcotest.(check int) "no counters" 0 (List.length snap.Obs.counters);
  Alcotest.(check int) "no gauges" 0 (List.length snap.Obs.gauges);
  Alcotest.(check int) "no histograms" 0 (List.length snap.Obs.histograms)

(* ------------------------------------------------------------------ *)
(* Span nesting, ordering, timing, attributes.                         *)

let test_span_nesting () =
  with_memory @@ fun () ->
  tick_clock ();
  (* clock readings: outer start=0, inner start=1, inner end=2 (dur 1),
     leaf start=3, leaf end=4 (dur 1), outer end=5 (dur 5) *)
  Obs.with_span ~attrs:[ ("who", "outer") ] "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "leaf" (fun () -> Obs.add_attr "late" "yes"));
  let snap = Obs.snapshot () in
  Alcotest.(check (list string))
    "completion order: children close before the parent"
    [ "inner"; "leaf"; "outer" ] (span_names snap);
  let find name = List.hd (Obs.find_spans snap name) in
  let outer = find "outer" and inner = find "inner" and leaf = find "leaf" in
  Alcotest.(check int) "outer is a root" 0 outer.Obs.sp_parent;
  Alcotest.(check int) "inner nests under outer" outer.Obs.sp_id
    inner.Obs.sp_parent;
  Alcotest.(check int) "leaf nests under outer" outer.Obs.sp_id
    leaf.Obs.sp_parent;
  Alcotest.(check (float 0.0)) "inner duration" 1.0 inner.Obs.sp_dur;
  Alcotest.(check (float 0.0)) "outer duration" 5.0 outer.Obs.sp_dur;
  Alcotest.(check (float 0.0)) "inner starts inside outer" 1.0
    inner.Obs.sp_start;
  Alcotest.(check (list (pair string string)))
    "static attr" [ ("who", "outer") ] outer.Obs.sp_attrs;
  Alcotest.(check (list (pair string string)))
    "add_attr reaches the innermost open span" [ ("late", "yes") ]
    leaf.Obs.sp_attrs;
  Alcotest.(check int) "roots" 1 (List.length (Obs.roots snap));
  Alcotest.(check int) "children of outer" 2
    (List.length (Obs.children snap outer.Obs.sp_id))

let test_span_exception () =
  with_memory @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let snap = Obs.snapshot () in
  Alcotest.(check (list string))
    "span closed by Fun.protect on exception" [ "boom" ] (span_names snap)

let test_ring_eviction () =
  with_memory @@ fun () ->
  Obs.set_ring_capacity 2;
  List.iter (fun n -> Obs.with_span n (fun () -> ())) [ "a"; "b"; "c"; "d" ];
  let snap = Obs.snapshot () in
  Alcotest.(check (list string)) "ring keeps the newest" [ "c"; "d" ]
    (span_names snap);
  Alcotest.(check int) "dropped count" 2 snap.Obs.dropped_spans;
  (* the per-stage histograms survive eviction *)
  let hist name = List.assoc ("span:" ^ name) snap.Obs.histograms in
  Alcotest.(check int) "evicted span still counted" 1 (hist "a").H.s_count

let test_metrics () =
  with_memory @@ fun () ->
  Obs.counter "hits";
  Obs.counter ~by:5 "hits";
  Obs.counter "misses";
  Obs.gauge "size" 1.0;
  Obs.gauge "size" 7.5;
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int)))
    "counters accumulate, sorted by name"
    [ ("hits", 6); ("misses", 1) ]
    snap.Obs.counters;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge keeps the last value" [ ("size", 7.5) ] snap.Obs.gauges

(* ------------------------------------------------------------------ *)
(* Histogram percentiles on known distributions.                       *)

(* gamma = 2^(1/16) buckets: any quantile is within ~3% of the true
   sample value. *)
let within_3pct = Alcotest.testable Fmt.float (fun expect got ->
    Float.abs (got -. expect) <= 0.03 *. Float.abs expect)

let test_histogram_uniform () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.observe h (float_of_int v)
  done;
  let s = H.summarize h in
  Alcotest.(check int) "count" 1000 s.H.s_count;
  Alcotest.(check (float 1e-6)) "min exact" 1.0 s.H.s_min;
  Alcotest.(check (float 1e-6)) "max exact" 1000.0 s.H.s_max;
  Alcotest.(check within_3pct) "p50 of 1..1000" 500.0 s.H.s_p50;
  Alcotest.(check within_3pct) "p95 of 1..1000" 950.0 s.H.s_p95;
  Alcotest.(check within_3pct) "p99 of 1..1000" 990.0 s.H.s_p99;
  Alcotest.(check (float 1e-3)) "sum" 500500.0 s.H.s_sum

let test_histogram_skewed () =
  (* 99 fast samples and one slow outlier: p50 stays fast, p99 and max
     see the outlier (the reason summaries use percentiles, not means) *)
  let h = H.create () in
  for _ = 1 to 99 do
    H.observe h 0.001
  done;
  H.observe h 10.0;
  let s = H.summarize h in
  Alcotest.(check within_3pct) "p50 ignores the outlier" 0.001 s.H.s_p50;
  Alcotest.(check within_3pct) "p99 rank hits the last fast sample" 0.001
    s.H.s_p99;
  Alcotest.(check (float 1e-6)) "max is the outlier" 10.0 s.H.s_max;
  Alcotest.(check within_3pct) "p100 = max" 10.0 (H.percentile h 1.0)

let test_histogram_single_and_underflow () =
  let h = H.create () in
  H.observe h 42.0;
  let s = H.summarize h in
  (* clamping into [min,max] makes a single sample exact *)
  Alcotest.(check (float 1e-9)) "single sample p50" 42.0 s.H.s_p50;
  Alcotest.(check (float 1e-9)) "single sample p99" 42.0 s.H.s_p99;
  let u = H.create () in
  H.observe u 0.0;
  H.observe u (-3.0);
  H.observe u 5.0;
  Alcotest.(check (float 1e-9)) "non-positive samples report as 0" 0.0
    (H.percentile u 0.5);
  Alcotest.(check within_3pct) "positive tail still resolves" 5.0
    (H.percentile u 1.0);
  Alcotest.(check bool) "empty histogram has NaN percentiles" true
    (Float.is_nan (H.percentile (H.create ()) 0.5))

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  for v = 1 to 100 do
    H.observe a (float_of_int v)
  done;
  for v = 200 to 260 do
    H.observe b (float_of_int v)
  done;
  H.observe b (-1.0);
  let s = H.summarize (H.merge a b) in
  (* moments and extremes merge exactly: buckets add, no resampling *)
  Alcotest.(check int) "count adds" 162 s.H.s_count;
  Alcotest.(check (float 1e-6)) "sum adds"
    (5050.0 +. 14030.0 -. 1.0) s.H.s_sum;
  Alcotest.(check (float 1e-9)) "min is the joint min" (-1.0) s.H.s_min;
  Alcotest.(check (float 1e-9)) "max is the joint max" 260.0 s.H.s_max;
  (* merge with an empty histogram changes nothing *)
  let id = H.summarize (H.merge a (H.create ())) in
  Alcotest.(check int) "empty merge: count" 100 id.H.s_count;
  Alcotest.(check (float 1e-9)) "empty merge: p95"
    (H.summarize a).H.s_p95 id.H.s_p95;
  (* inputs are untouched *)
  Alcotest.(check int) "merge leaves a alone" 100 (H.summarize a).H.s_count;
  Alcotest.(check int) "merge leaves b alone" 62 (H.summarize b).H.s_count

(* A merged percentile lies between the inputs' percentiles: buckets add
   exactly, so the mixture's quantile cannot escape the envelope of the
   components' quantiles by more than one bucket (a factor of gamma). *)
let prop_merge_percentile_bound =
  let gamma = Float.pow 2.0 (1.0 /. 16.0) in
  let samples =
    QCheck.(
      list_of_size
        Gen.(int_range 1 50)
        (map (fun i -> float_of_int (i + 1) /. 7.0) (int_range 0 1_000_000)))
  in
  QCheck.Test.make ~name:"merged percentiles bound the inputs" ~count:200
    (QCheck.pair samples samples)
    (fun (xs, ys) ->
      let mk l =
        let h = H.create () in
        List.iter (H.observe h) l;
        h
      in
      let a = mk xs and b = mk ys in
      let m = H.merge a b in
      List.for_all
        (fun q ->
          let pa = H.percentile a q
          and pb = H.percentile b q
          and pm = H.percentile m q in
          pm >= (Float.min pa pb /. gamma) -. 1e-9
          && pm <= (Float.max pa pb *. gamma) +. 1e-9)
        [ 0.5; 0.95; 0.99 ])

(* ------------------------------------------------------------------ *)
(* JSONL round-trip (the `ldv stats` reader).                          *)

let test_jsonl_roundtrip () =
  with_memory @@ fun () ->
  tick_clock ();
  Obs.with_span ~attrs:[ ("q", "Q1-1"); ("esc", "a\"b\\c\n") ] "outer"
    (fun () -> Obs.with_span "inner" (fun () -> ()));
  Obs.counter ~by:3 "events";
  Obs.gauge "bytes" 123.5;
  Obs.observe "lat" 1.0;
  Obs.observe "lat" 2.0;
  let snap = Obs.snapshot () in
  let decoded = Obs.of_jsonl (Obs.to_jsonl snap) in
  Alcotest.(check (list string))
    "span names and order survive" (span_names snap) (span_names decoded);
  let outer = List.hd (Obs.find_spans decoded "outer") in
  let inner = List.hd (Obs.find_spans decoded "inner") in
  Alcotest.(check int) "parent links survive (src/dst)" outer.Obs.sp_id
    inner.Obs.sp_parent;
  Alcotest.(check (float 1e-9)) "durations survive (b..e interval)" 1.0
    inner.Obs.sp_dur;
  Alcotest.(check bool) "attrs survive, including escapes" true
    (List.mem ("esc", "a\"b\\c\n") outer.Obs.sp_attrs
    && List.mem ("q", "Q1-1") outer.Obs.sp_attrs);
  Alcotest.(check (list (pair string int)))
    "counters survive" [ ("events", 3) ] decoded.Obs.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges survive" [ ("bytes", 123.5) ] decoded.Obs.gauges;
  let lat = List.assoc "lat" decoded.Obs.histograms in
  Alcotest.(check int) "histogram count survives" 2 lat.H.s_count;
  Alcotest.(check (float 1e-9)) "histogram max survives" 2.0 lat.H.s_max;
  (* unknown record types are skipped, not fatal *)
  let with_junk =
    Obs.to_jsonl snap ^ "{\"t\":\"future-record\",\"name\":\"x\"}\n"
  in
  Alcotest.(check int) "unknown record types are skipped"
    (List.length snap.Obs.spans)
    (List.length (Obs.of_jsonl with_junk).Obs.spans)

(* ------------------------------------------------------------------ *)
(* The instrumented pipeline: an audited run emits the expected tree.  *)

let test_audit_span_tree () =
  with_memory @@ fun () ->
  let audit =
    Ldv_fixtures.audit_at ~n_insert:5 ~n_update:2 ~n_select:2
      Ldv_core.Audit.Included
  in
  let snap = Obs.snapshot () in
  let root =
    match Obs.find_spans snap "audit.run" with
    | [ sp ] -> sp
    | spans ->
      Alcotest.failf "expected exactly one audit.run span, got %d"
        (List.length spans)
  in
  Alcotest.(check int) "audit.run is a root span" 0 root.Obs.sp_parent;
  Alcotest.(check (option string))
    "packaging attribute" (Some "included")
    (List.assoc_opt "packaging" root.Obs.sp_attrs);
  Alcotest.(check (option string))
    "app attribute" (Some audit.Ldv_core.Audit.app_name)
    (List.assoc_opt "app" root.Obs.sp_attrs);
  let child_names =
    List.map (fun sp -> sp.Obs.sp_name) (Obs.children snap root.Obs.sp_id)
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (expected ^ " under audit.run") true
        (List.mem expected child_names))
    [ "audit.app"; "audit.build_trace"; "audit.collect_outputs" ];
  (* statements execute inside the application phase *)
  let app = List.hd (Obs.find_spans snap "audit.app") in
  let stmts = Obs.find_spans snap "db.stmt" in
  Alcotest.(check int) "one db.stmt span per statement" 9 (List.length stmts);
  List.iter
    (fun sp ->
      Alcotest.(check int) "db.stmt nests under audit.app" app.Obs.sp_id
        sp.Obs.sp_parent)
    stmts;
  Alcotest.(check (option int))
    "audit.statements counter" (Some 9)
    (List.assoc_opt "audit.statements" snap.Obs.counters);
  let positive name =
    match List.assoc_opt name snap.Obs.counters with
    | Some n -> n > 0
    | None -> false
  in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " > 0") true (positive c))
    [ "db.rows_scanned"; "db.tuples_emitted"; "db.plans";
      "os.syscall.spawn"; "tracer.events" ]

let suite =
  [ Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span nesting and timing" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick test_span_exception;
    Alcotest.test_case "ring buffer eviction" `Quick test_ring_eviction;
    Alcotest.test_case "counters and gauges" `Quick test_metrics;
    Alcotest.test_case "histogram: uniform 1..1000" `Quick
      test_histogram_uniform;
    Alcotest.test_case "histogram: skewed latencies" `Quick
      test_histogram_skewed;
    Alcotest.test_case "histogram: single sample and underflow" `Quick
      test_histogram_single_and_underflow;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    QCheck_alcotest.to_alcotest prop_merge_percentile_bound;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "audit emits the expected span tree" `Slow
      test_audit_span_tree ]
