(* Ldv_obs.Profile: self/total attribution, critical paths, collapsed
   stacks, the obs-diff regression gate, meta-record round-trips, typed
   decode errors, and histogram accuracy. *)

module Obs = Ldv_obs
module H = Ldv_obs.Histogram
module P = Ldv_obs.Profile

(* Same harness as test_obs: clean in-memory collector, deterministic
   clock ticking 1.0 s per reading. *)
let with_memory f =
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ();
      Obs.set_ring_capacity 65536)
    f

let tick_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.0;
      v)

let feq msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* Hand-built spans/snapshots for the pure-data tests (diff etc.). *)
let mkspan ?(attrs = []) ~id ~parent ~name ~dur () : Obs.span =
  { Obs.sp_id = id;
    sp_parent = parent;
    sp_name = name;
    sp_attrs = attrs;
    sp_start = 0.0;
    sp_dur = dur }

let mksnap spans : Obs.snapshot =
  { Obs.spans;
    dropped_spans = 0;
    ring_capacity = 0;
    quanta = [];
    dropped_quanta = 0;
    counters = [];
    gauges = [];
    histograms = [] }

(* ------------------------------------------------------------------ *)
(* Self vs total on a live-collected forest.                           *)

let test_self_total () =
  with_memory @@ fun () ->
  tick_clock ();
  (* readings: outer start=0, inner 1..2 (dur 1), leaf 3..4 (dur 1),
     outer end=5 (dur 5) *)
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "leaf" (fun () -> Obs.add_attr "prov.file" "file:/out"));
  let p = P.of_snapshot (Obs.snapshot ()) in
  Alcotest.(check int) "one root" 1 (List.length p.P.forest);
  Alcotest.(check int) "no orphans" 0 p.P.orphans;
  let root = List.hd p.P.forest in
  feq "root total" 5.0 root.P.n_total;
  feq "root self = total - children" 3.0 root.P.n_self;
  feq "wall = sum of roots" 5.0 p.P.wall;
  Alcotest.(check int) "two children" 2 (List.length root.P.n_children);
  List.iter
    (fun (c : P.node) ->
      feq (c.P.n_span.Obs.sp_name ^ " total") 1.0 c.P.n_total;
      feq (c.P.n_span.Obs.sp_name ^ " self") 1.0 c.P.n_self)
    root.P.n_children;
  (* per-name aggregation, heaviest self first *)
  let rows = P.rows p in
  Alcotest.(check (list string))
    "rows sorted by self" [ "outer"; "inner"; "leaf" ]
    (List.map (fun (r : P.row) -> r.P.r_name) rows);
  let leaf =
    List.find
      (fun (n : P.node) -> n.P.n_span.Obs.sp_name = "leaf")
      root.P.n_children
  in
  Alcotest.(check (list string))
    "prov refs surface on the span" [ "file:/out" ]
    (Obs.prov_refs leaf.P.n_span)

(* ------------------------------------------------------------------ *)
(* Critical path: descends into the heaviest child, step costs
   telescope to the root's duration.                                   *)

let test_critical_path () =
  with_memory @@ fun () ->
  tick_clock ();
  (* root start=0; light 1..2 (dur 1); heavy start=3 with grand 4..5
     (dur 1), heavy end=6 (dur 3); root end=7 (dur 7) *)
  Obs.with_span "root" (fun () ->
      Obs.with_span "light" (fun () -> ());
      Obs.with_span "heavy" (fun () -> Obs.with_span "grand" (fun () -> ())));
  let p = P.of_snapshot (Obs.snapshot ()) in
  let root, steps = List.hd (P.critical_paths p) in
  Alcotest.(check (list string))
    "path follows heaviest children" [ "root"; "heavy"; "grand" ]
    (List.map (fun (st : P.step) -> st.P.st_span.Obs.sp_name) steps);
  let sum =
    List.fold_left (fun acc (st : P.step) -> acc +. st.P.st_step) 0.0 steps
  in
  feq "step costs telescope to the root duration" root.P.n_total sum;
  (* root: 7 total, heaviest child 3 -> step 4 (self 5 + non-critical 1 - 2?
     no: step = total - heaviest child = 7 - 3 = 4) *)
  feq "root step" 4.0 (List.nth steps 0).P.st_step;
  feq "heavy step" 2.0 (List.nth steps 1).P.st_step;
  feq "grand step" 1.0 (List.nth steps 2).P.st_step

let test_unbalanced_and_orphans () =
  with_memory @@ fun () ->
  tick_clock ();
  (* Unbalanced finish: the outer span is closed while its child is
     still open; the child escapes and closes later. *)
  let a = Obs.start_span "a" in
  let b = Obs.start_span "b" in
  Obs.finish_span a;
  (* a: 0..2, dur 2 *)
  Obs.finish_span b;
  (* b: 1..3, dur 2, parent a *)
  let p = P.of_snapshot (Obs.snapshot ()) in
  Alcotest.(check int) "escaped child still attaches" 1
    (List.length p.P.forest);
  let root, steps = List.hd (P.critical_paths p) in
  Alcotest.(check string) "root is a" "a" root.P.n_span.Obs.sp_name;
  feq "telescoping survives child >= parent" root.P.n_total
    (List.fold_left (fun acc (st : P.step) -> acc +. st.P.st_step) 0.0 steps);
  (* Orphan promotion: the parent is evicted from a cap-1 ring before the
     snapshot, leaving the child with a dangling parent id. *)
  Obs.reset ();
  Obs.set_ring_capacity 1;
  tick_clock ();
  let p1 = Obs.start_span "parent" in
  let c1 = Obs.start_span "child" in
  Obs.finish_span p1;
  Obs.finish_span c1;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "eviction counted" 1 snap.Obs.dropped_spans;
  let prof = P.of_snapshot snap in
  Alcotest.(check int) "orphan promoted to root" 1 prof.P.orphans;
  Alcotest.(check (list string))
    "forest holds the surviving child" [ "child" ]
    (List.map (fun (n : P.node) -> n.P.n_span.Obs.sp_name) prof.P.forest)

(* ------------------------------------------------------------------ *)
(* Collapsed-stack output.                                             *)

let test_collapsed () =
  with_memory @@ fun () ->
  tick_clock ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "le;af x" (fun () -> ()));
  let folded = P.to_collapsed (P.of_snapshot (Obs.snapshot ())) in
  (* outer self 3 s, children 1 s each; names sanitized, µs units *)
  Alcotest.(check string) "collapsed golden"
    "outer 3000000\nouter;inner 1000000\nouter;le_af_x 1000000\n" folded

(* ------------------------------------------------------------------ *)
(* Meta record round-trip and typed decode errors.                     *)

let test_meta_roundtrip () =
  with_memory @@ fun () ->
  Obs.set_ring_capacity 2;
  tick_clock ();
  for _ = 1 to 4 do
    Obs.with_span "s" (fun () -> ())
  done;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "two evictions" 2 snap.Obs.dropped_spans;
  let decoded = Obs.of_jsonl (Obs.to_jsonl snap) in
  Alcotest.(check int) "dropped_spans survives the round-trip" 2
    decoded.Obs.dropped_spans;
  Alcotest.(check int) "ring capacity survives the round-trip" 2
    decoded.Obs.ring_capacity;
  Alcotest.(check int) "surviving spans decode" 2
    (List.length decoded.Obs.spans)

let check_decode_error ~line data =
  match Obs.of_jsonl data with
  | (_ : Obs.snapshot) -> Alcotest.failf "expected a decode error"
  | exception Ldv_errors.Error (Ldv_errors.Decode_error e) ->
    Alcotest.(check int) "1-based line number" line e.line
  | exception e ->
    Alcotest.failf "expected Decode_error, got %s" (Printexc.to_string e)

(* a failing line that is *not* the last non-empty line still raises:
   torn-tail tolerance (see test_ledger) covers only the trailing record *)
let meta_line = "{\"t\":\"meta\",\"dropped\":0,\"ring_cap\":4}"

let test_decode_errors () =
  check_decode_error ~line:1 ("not json at all\n" ^ meta_line);
  check_decode_error ~line:2
    (meta_line ^ "\n{\"t\":\"span\",\n" ^ meta_line);
  (* well-formed JSON that is not a valid record *)
  check_decode_error ~line:1 ("{\"t\":\"counter\"}\n" ^ meta_line)

(* ------------------------------------------------------------------ *)
(* The obs-diff regression gate.                                       *)

let test_diff_gate () =
  let a = mksnap [ mkspan ~id:1 ~parent:0 ~name:"x" ~dur:1.0 () ] in
  let b = mksnap [ mkspan ~id:1 ~parent:0 ~name:"x" ~dur:2.0 () ] in
  (* x doubled: +100% regresses past a 50% budget *)
  let rows = P.diff a b in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  feq "delta" 100.0 (P.delta_pct row);
  Alcotest.(check bool) "regression caught" true
    (P.regressed ~budget_pct:50.0 row);
  Alcotest.(check bool) "within a looser budget" false
    (P.regressed ~budget_pct:150.0 row);
  (* the reverse direction (a speedup) never regresses *)
  let rows_rev = P.diff b a in
  Alcotest.(check bool) "speedup is not a regression" false
    (P.regressed ~budget_pct:50.0 (List.hd rows_rev));
  (* self-comparison is clean *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "self diff clean" false
        (P.regressed ~budget_pct:0.0 r))
    (P.diff a a);
  (* a new span with measurable time counts as a regression *)
  let b' =
    mksnap
      [ mkspan ~id:1 ~parent:0 ~name:"x" ~dur:1.0 ();
        mkspan ~id:2 ~parent:0 ~name:"y" ~dur:0.5 () ]
  in
  let y =
    List.find (fun (r : P.diff_row) -> r.P.d_name = "y") (P.diff a b')
  in
  Alcotest.(check bool) "new span delta is +inf" true
    (P.delta_pct y = Float.infinity);
  Alcotest.(check bool) "new span regresses" true
    (P.regressed ~budget_pct:50.0 y)

(* Spans present in only one run must surface as added/removed rows —
   including when they only survive in a [span:<name>] histogram because
   the ring evicted every instance. *)
let test_diff_one_sided () =
  let a = mksnap [ mkspan ~id:1 ~parent:0 ~name:"x" ~dur:1.0 () ] in
  let hx = H.create () in
  H.observe hx 2.0;
  H.observe hx 2.5;
  let b =
    { (mksnap []) with
      Obs.dropped_spans = 2;
      histograms = [ ("span:x", H.summarize hx) ] }
  in
  (* b's ring is empty, but span:x saw two completions: diff must trust
     the histogram, not report x as removed *)
  let row = List.find (fun (r : P.diff_row) -> r.P.d_name = "x") (P.diff a b) in
  Alcotest.(check int) "evicted count from histogram" 2 row.P.d_count_b;
  feq "evicted total from histogram" 4.5 row.P.d_total_b;
  Alcotest.(check bool) "evicted regression caught" true
    (P.regressed ~budget_pct:100.0 row);
  (* present only in A -> removed (count_b = 0), never a regression *)
  let gone = List.find (fun (r : P.diff_row) -> r.P.d_name = "x") (P.diff a (mksnap [])) in
  Alcotest.(check int) "removed span keeps a row" 1 gone.P.d_count_a;
  Alcotest.(check int) "removed span has no B count" 0 gone.P.d_count_b;
  Alcotest.(check bool) "removed span is not a regression" false
    (P.regressed ~budget_pct:0.0 gone);
  (* present only in B -> added, exit-4 material when it has time *)
  let added = List.find (fun (r : P.diff_row) -> r.P.d_name = "x") (P.diff (mksnap []) a) in
  Alcotest.(check int) "added span has no A count" 0 added.P.d_count_a;
  Alcotest.(check bool) "added span regresses the budget" true
    (P.regressed ~budget_pct:50.0 added)

(* ------------------------------------------------------------------ *)
(* Histogram: NaN guard and percentile accuracy.                       *)

let test_histogram_nan () =
  let h = H.create () in
  H.observe h 1.0;
  H.observe h Float.nan;
  H.observe h 3.0;
  let s = H.summarize h in
  Alcotest.(check int) "NaN still counted" 3 s.H.s_count;
  feq "sum unpoisoned" 4.0 s.H.s_sum;
  feq "min unpoisoned" 1.0 s.H.s_min;
  feq "max unpoisoned" 3.0 s.H.s_max;
  Alcotest.(check bool) "p95 is a number" false (Float.is_nan s.H.s_p95);
  (* a NaN-only histogram reports like all-underflow *)
  let h2 = H.create () in
  H.observe h2 Float.nan;
  feq "NaN-only p50 reports 0" 0.0 (H.summarize h2).H.s_p50

(* percentile stays within the DDSketch bound (sqrt gamma - 1 ~ 2.2%)
   of the exact rank statistic, for any positive sample set *)
let prop_percentile_accuracy =
  let arb =
    QCheck.(
      list_of_size
        Gen.(int_range 1 60)
        (map (fun i -> float_of_int (i + 1) /. 7.0) (int_range 0 1_000_000)))
  in
  QCheck.Test.make ~name:"percentile within 2.25% of exact rank"
    ~count:200 arb (fun samples ->
      let h = H.create () in
      List.iter (H.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length samples in
      List.for_all
        (fun q ->
          let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
          let exact = List.nth sorted (rank - 1) in
          let approx = H.percentile h q in
          Float.abs (approx -. exact) <= (0.0225 *. exact) +. 1e-12)
        [ 0.5; 0.95; 0.99; 1.0 ])

let suite =
  [ Alcotest.test_case "self vs total attribution" `Quick test_self_total;
    Alcotest.test_case "critical path telescopes" `Quick test_critical_path;
    Alcotest.test_case "unbalanced spans and orphan promotion" `Quick
      test_unbalanced_and_orphans;
    Alcotest.test_case "collapsed-stack golden output" `Quick test_collapsed;
    Alcotest.test_case "meta record round-trip" `Quick test_meta_roundtrip;
    Alcotest.test_case "typed decode errors with line numbers" `Quick
      test_decode_errors;
    Alcotest.test_case "obs diff budget gate" `Quick test_diff_gate;
    Alcotest.test_case "obs diff added/removed/evicted spans" `Quick
      test_diff_one_sided;
    Alcotest.test_case "histogram NaN guard" `Quick test_histogram_nan;
    QCheck_alcotest.to_alcotest prop_percentile_accuracy ]
