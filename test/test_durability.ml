(* Tests for the crash-consistency machinery: the VFS durability model
   (buffered writes, fsync barriers, torn tails), the minidb WAL,
   checkpoint + redo recovery (Dbclient.Durable), the crashcheck
   campaign harness, and the crash-safe package writer. *)

open Dbclient
module F = Ldv_faults
module K = Minios.Kernel
module V = Minios.Vfs

let data_dir = "/var/minidb/data"
let wal = data_dir ^ "/wal.log"

(* Boot a fresh durable server on a fresh simulated machine. *)
let boot () =
  let kernel = K.create () in
  let db = Minidb.Database.create () in
  let server = Server.attach ~data_dir db in
  let proc = K.start_process kernel ~name:"minidb-server" () in
  (kernel, Durable.start kernel server ~pid:proc.K.pid)

let exec d sql =
  match Durable.exec d sql with
  | Protocol.Error_response msg -> Alcotest.failf "statement failed: %s" msg
  | _ -> ()

let rows kernel_db table =
  List.length
    (Minidb.Table.scan
       (Minidb.Catalog.find (Minidb.Database.catalog kernel_db) table))

(* ---------------- VFS durability model -------------------------- *)

let test_vfs_buffered_lost_on_crash () =
  let v = V.create () in
  V.write_string v ~path:"/f" "base";
  V.append_buffered v ~path:"/f" "+tail";
  Alcotest.(check string) "readers see buffered bytes" "base+tail"
    (V.read v "/f");
  Alcotest.(check int) "unsynced tail" 5 (V.unsynced_bytes v "/f");
  V.crash v ();
  Alcotest.(check string) "crash drops unsynced bytes" "base" (V.read v "/f")

let test_vfs_fsync_makes_durable () =
  let v = V.create () in
  V.append_buffered v ~path:"/f" "hello";
  V.fsync v "/f";
  V.append_buffered v ~path:"/f" " world";
  V.crash v ();
  Alcotest.(check string) "synced prefix survives" "hello" (V.read v "/f")

let test_vfs_never_synced_vanishes () =
  let v = V.create () in
  V.append_buffered v ~path:"/f" "ghost";
  V.crash v ();
  Alcotest.(check bool) "never-synced file vanishes" false (V.exists v "/f")

let test_vfs_torn_keep () =
  let v = V.create () in
  V.write_string v ~path:"/f" "base";
  V.append_buffered v ~path:"/f" "0123456789";
  V.crash v ~keep:[ ("/f", 4) ] ();
  Alcotest.(check string) "torn prefix of the tail survives" "base0123"
    (V.read v "/f");
  Alcotest.(check int) "survivors are durable" 0 (V.unsynced_bytes v "/f")

let test_vfs_truncate_buffered_resurrects () =
  let v = V.create () in
  V.write_string v ~path:"/f" "durable";
  V.truncate_buffered v ~path:"/f" ();
  Alcotest.(check string) "truncation visible" "" (V.read v "/f");
  V.crash v ();
  Alcotest.(check string) "crash resurrects durable content" "durable"
    (V.read v "/f")

(* ---------------- WAL format ------------------------------------ *)

let test_wal_roundtrip () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT, note TEXT)";
  exec d "INSERT INTO t VALUES (1, 'multi\nline''s')";
  let loaded = Wal.load (K.vfs kernel) wal in
  Alcotest.(check int) "two records" 2 (List.length loaded.Wal.records);
  Alcotest.(check int) "no torn bytes" 0 loaded.Wal.torn_bytes;
  let sqls = List.map (fun (r : Wal.record) -> r.Wal.sql) loaded.Wal.records in
  Alcotest.(check (list string)) "payloads round-trip (newline included)"
    [ "CREATE TABLE t (a INT, note TEXT)";
      "INSERT INTO t VALUES (1, 'multi\nline''s')" ]
    sqls;
  Alcotest.(check (list int)) "sequence numbers are 1-based ordinals" [ 1; 2 ]
    (List.map (fun (r : Wal.record) -> r.Wal.seq) loaded.Wal.records)

let test_wal_torn_tail_detected () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  let vfs = K.vfs kernel in
  let full = V.read vfs wal in
  (* tear the last record: keep all but its final 5 bytes *)
  V.write_string vfs ~path:wal (String.sub full 0 (String.length full - 5));
  let loaded = Wal.load vfs wal in
  Alcotest.(check int) "only the intact record parses" 1
    (List.length loaded.Wal.records);
  Alcotest.(check bool) "torn bytes reported" true (loaded.Wal.torn_bytes > 0)

let test_wal_durable_cut_drops_open_tx () =
  let r seq kind sql = { Wal.seq; kind; sid = 0; sql } in
  let records =
    [ r 1 Wal.Stmt "s1"; r 2 Wal.Begin "BEGIN"; r 3 Wal.Stmt "s2";
      r 4 Wal.Commit "COMMIT"; r 5 Wal.Begin "BEGIN"; r 6 Wal.Stmt "s3" ]
  in
  let replay, dropped, redo_upto = Wal.durable_cut records in
  Alcotest.(check int) "replay up to the last closed tx" 4
    (List.length replay);
  Alcotest.(check int) "trailing open tx dropped" 2 (List.length dropped);
  Alcotest.(check int) "redo high-water mark" 4 redo_upto

(* Regression for the tx-depth bug: open-transaction tracking is per
   session, so one session's open transaction must not drag another
   session's durably committed transaction (interleaved in the log) into
   the dropped set. *)
let test_wal_durable_cut_per_session () =
  let r seq kind sid sql = { Wal.seq; kind; sid; sql } in
  let records =
    [ r 1 Wal.Stmt 0 "s1"; r 2 Wal.Begin 0 "BEGIN"; r 3 Wal.Begin 1 "BEGIN";
      r 4 Wal.Stmt 0 "s2"; r 5 Wal.Stmt 1 "s3"; r 6 Wal.Commit 1 "COMMIT";
      r 7 Wal.Stmt 0 "s4" ]
  in
  let replay, dropped, redo_upto = Wal.durable_cut records in
  let seqs rs = List.map (fun (r : Wal.record) -> r.Wal.seq) rs in
  Alcotest.(check (list int))
    "session 1's committed tx replays through the interleaving" [ 1; 3; 5; 6 ]
    (seqs replay);
  Alcotest.(check (list int)) "only session 0's open tx is dropped" [ 2; 4; 7 ]
    (seqs dropped);
  Alcotest.(check int) "redo high-water mark spans the survivors" 6 redo_upto

(* ---------------- recovery semantics ---------------------------- *)

let test_recover_redoes_wal_suffix () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  Durable.checkpoint d;
  exec d "INSERT INTO t VALUES (2)";
  exec d "INSERT INTO t VALUES (3)";
  K.crash kernel ();
  let d', stats = Durable.recover kernel ~data_dir () in
  Alcotest.(check int) "checkpoint covered the first two records" 2
    stats.Durable.checkpoint_seq;
  Alcotest.(check int) "two records redone" 2 stats.Durable.redone;
  Alcotest.(check int) "all three rows recovered" 3
    (rows (Server.db (Durable.server d')) "t");
  (* the post-recovery checkpoint leaves an empty log for the next run *)
  Alcotest.(check int) "WAL empty after recovery" 0
    (List.length (Wal.load (K.vfs kernel) wal).Wal.records)

let test_rollback_leaves_no_trace_after_recovery () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  exec d "BEGIN";
  exec d "INSERT INTO t VALUES (2)";
  exec d "UPDATE t SET a = 99 WHERE a = 1";
  exec d "ROLLBACK";
  exec d "INSERT INTO t VALUES (3)";
  K.crash kernel ();
  let d', _ = Durable.recover kernel ~data_dir () in
  let db' = Server.db (Durable.server d') in
  Alcotest.(check int) "only the committed rows" 2 (rows db' "t");
  let vals =
    List.map
      (fun (tv : Minidb.Table.tuple_version) ->
        Minidb.Value.to_raw_string tv.Minidb.Table.values.(0))
      (Minidb.Table.scan
         (Minidb.Catalog.find (Minidb.Database.catalog db') "t"))
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "rolled-back insert and update gone"
    [ "1"; "3" ] vals;
  (* replaying the ROLLBACK literally must keep the clock aligned with an
     uncrashed run of the same statements *)
  let _, control = boot () in
  List.iter (exec control)
    [ "CREATE TABLE t (a INT)"; "INSERT INTO t VALUES (1)"; "BEGIN";
      "INSERT INTO t VALUES (2)"; "UPDATE t SET a = 99 WHERE a = 1";
      "ROLLBACK"; "INSERT INTO t VALUES (3)" ];
  Alcotest.(check int) "clock parity with uncrashed control"
    (Minidb.Database.clock (Server.db (Durable.server control)))
    (Minidb.Database.clock db')

let test_commit_prefsync_crash_loses_tx_atomically () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  (* wal.pre_fsync is consulted by sync-needed statements only; under the
     plan, BEGIN and the in-transaction statements never sync, so the
     first hit is the COMMIT barrier *)
  let plan = F.make ~crash:("wal.pre_fsync", 1) ~seed:7 () in
  let crashed =
    F.with_plan plan @@ fun () ->
    match
      exec d "BEGIN";
      exec d "INSERT INTO t VALUES (2)";
      exec d "UPDATE t SET a = 10 WHERE a = 1";
      exec d "COMMIT"
    with
    | () -> false
    | exception F.Crash site ->
      Alcotest.(check string) "crashed at the COMMIT barrier" "wal.pre_fsync"
        site;
      true
  in
  Alcotest.(check bool) "crash fired" true crashed;
  K.crash kernel ();
  let d', stats = Durable.recover kernel ~data_dir () in
  let db' = Server.db (Durable.server d') in
  (* the transaction's records never reached the platter: the whole
     transaction is lost atomically — no partial application *)
  Alcotest.(check int) "pre-transaction state only" 1 (rows db' "t");
  Alcotest.(check int) "no open-transaction leftovers" 0 stats.Durable.dropped;
  Alcotest.(check bool) "recovered db is not mid-transaction" false
    (Minidb.Database.in_transaction db')

(* Crash in the middle of a rollback's undo walk: the ROLLBACK record was
   synced before execution, so recovery replays the whole transaction plus
   the ROLLBACK literally — the interrupted undo is simply redone from
   scratch, and the recovered state matches an uncrashed run. *)
let test_undo_walk_crash_recovers_rollback () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  exec d "BEGIN";
  exec d "INSERT INTO t VALUES (2)";
  exec d "UPDATE t SET a = 99 WHERE a = 1";
  let plan = F.make ~crash:("tx.undo", 1) ~seed:7 () in
  let crashed =
    F.with_plan plan @@ fun () ->
    match exec d "ROLLBACK" with
    | () -> false
    | exception F.Crash site ->
      Alcotest.(check string) "crashed mid-undo" "tx.undo" site;
      true
  in
  Alcotest.(check bool) "crash fired" true crashed;
  K.crash kernel ();
  let d', _ = Durable.recover kernel ~data_dir () in
  let db' = Server.db (Durable.server d') in
  Alcotest.(check int) "only the pre-transaction row" 1 (rows db' "t");
  Alcotest.(check bool) "recovered db is not mid-transaction" false
    (Minidb.Database.in_transaction db');
  let vals =
    List.map
      (fun (tv : Minidb.Table.tuple_version) ->
        Minidb.Value.to_raw_string tv.Minidb.Table.values.(0))
      (Minidb.Table.scan
         (Minidb.Catalog.find (Minidb.Database.catalog db') "t"))
  in
  Alcotest.(check (list string)) "update undone, insert gone" [ "1" ] vals;
  let _, control = boot () in
  List.iter (exec control)
    [ "CREATE TABLE t (a INT)"; "INSERT INTO t VALUES (1)"; "BEGIN";
      "INSERT INTO t VALUES (2)"; "UPDATE t SET a = 99 WHERE a = 1";
      "ROLLBACK" ];
  Alcotest.(check int) "clock parity with uncrashed control"
    (Minidb.Database.clock (Server.db (Durable.server control)))
    (Minidb.Database.clock db')

(* A torn WAL tail that lands on the COMMIT record leaves the transaction
   open in the durable log: recovery must drop the whole transaction
   atomically, not replay its statements. *)
let test_torn_commit_drops_tx_atomically () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  exec d "BEGIN";
  exec d "INSERT INTO t VALUES (2)";
  exec d "COMMIT";
  let vfs = K.vfs kernel in
  let full = V.read vfs wal in
  (* tear the last 4 bytes: the COMMIT record no longer parses *)
  V.write_string vfs ~path:wal (String.sub full 0 (String.length full - 4));
  let d', stats = Durable.recover kernel ~data_dir () in
  let db' = Server.db (Durable.server d') in
  Alcotest.(check int) "pre-transaction state only" 1 (rows db' "t");
  Alcotest.(check int) "BEGIN and the in-tx insert dropped" 2
    stats.Durable.dropped;
  Alcotest.(check bool) "recovered db is not mid-transaction" false
    (Minidb.Database.in_transaction db')

let test_next_rid_preserved_across_checkpoint () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  exec d "INSERT INTO t VALUES (2)";
  exec d "DELETE FROM t WHERE a = 2";
  (* the highest-rid row is dead: a checkpoint that derived next_rid from
     live rows alone would re-issue rid 2 after recovery *)
  Durable.checkpoint d;
  K.crash kernel ();
  let d', _ = Durable.recover kernel ~data_dir () in
  exec d' "INSERT INTO t VALUES (3)";
  let table =
    Minidb.Catalog.find
      (Minidb.Database.catalog (Server.db (Durable.server d')))
      "t"
  in
  let rids =
    List.map
      (fun (tv : Minidb.Table.tuple_version) -> tv.Minidb.Table.tid.Minidb.Tid.rid)
      (Minidb.Table.scan table)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "fresh insert continues the rid sequence"
    [ 1; 3 ] rids

let test_ckpt_pre_gc_crash_no_double_apply () =
  let kernel, d = boot () in
  exec d "CREATE TABLE t (a INT)";
  exec d "INSERT INTO t VALUES (1)";
  exec d "INSERT INTO t VALUES (1)";
  let plan = F.make ~crash:("ckpt.pre_gc", 1) ~seed:7 () in
  (F.with_plan plan @@ fun () ->
   match Durable.checkpoint d with
   | () -> Alcotest.fail "expected a crash"
   | exception F.Crash _ -> ());
  (* image published, WAL not yet emptied: records <= ck_last_seq must be
     skipped by sequence number, not re-applied *)
  K.crash kernel ();
  let d', stats = Durable.recover kernel ~data_dir () in
  Alcotest.(check int) "nothing redone past the image" 0 stats.Durable.redone;
  Alcotest.(check int) "rows not doubled" 2
    (rows (Server.db (Durable.server d')) "t")

(* ---------------- crashcheck harness ---------------------------- *)

let test_crashcheck_deterministic_and_verified () =
  let r1 = Ldv_core.Crashcheck.run ~campaigns:6 ~seed:123 () in
  let r2 = Ldv_core.Crashcheck.run ~campaigns:6 ~seed:123 () in
  Alcotest.(check string) "same seed, identical report"
    (Ldv_core.Crashcheck.to_string r1)
    (Ldv_core.Crashcheck.to_string r2);
  Alcotest.(check int) "no divergence" 0 r1.Ldv_core.Crashcheck.r_divergent;
  Alcotest.(check int) "no uncaught exceptions" 0
    r1.Ldv_core.Crashcheck.r_uncaught

let test_crashcheck_no_recover_diverges () =
  let r = Ldv_core.Crashcheck.run ~recover:false ~campaigns:6 ~seed:123 () in
  Alcotest.(check bool) "skipping redo loses work the verifier catches" true
    (r.Ldv_core.Crashcheck.r_divergent > 0)

(* ---------------- crash-safe package writer --------------------- *)

let test_write_file_no_tmp_after_failure () =
  let audit = Lazy.force Ldv_fixtures.included in
  let pkg = Ldv_core.Package.build audit in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ldv-durability-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* the destination is a directory: serialization and the temp write
         succeed, the final rename fails *)
      let dest = Filename.concat dir "taken" in
      Unix.mkdir dest 0o700;
      Fun.protect
        ~finally:(fun () -> Unix.rmdir dest)
        (fun () ->
          (match Ldv_core.Package.write_file pkg ~path:dest with
          | () -> Alcotest.fail "expected the rename to fail"
          | exception Sys_error _ -> ());
          let leftovers =
            Array.to_list (Sys.readdir dir)
            |> List.filter (fun f -> f <> "taken")
          in
          Alcotest.(check (list string)) "no temp files left behind" []
            leftovers))

let suite =
  [ Alcotest.test_case "vfs: buffered bytes lost on crash" `Quick
      test_vfs_buffered_lost_on_crash;
    Alcotest.test_case "vfs: fsync makes bytes durable" `Quick
      test_vfs_fsync_makes_durable;
    Alcotest.test_case "vfs: never-synced file vanishes" `Quick
      test_vfs_never_synced_vanishes;
    Alcotest.test_case "vfs: torn tail survives via keep" `Quick
      test_vfs_torn_keep;
    Alcotest.test_case "vfs: buffered truncate resurrects" `Quick
      test_vfs_truncate_buffered_resurrects;
    Alcotest.test_case "wal: records round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail detected" `Quick
      test_wal_torn_tail_detected;
    Alcotest.test_case "wal: durable cut drops open tx" `Quick
      test_wal_durable_cut_drops_open_tx;
    Alcotest.test_case "wal: durable cut is per-session" `Quick
      test_wal_durable_cut_per_session;
    Alcotest.test_case "recover: redoes WAL suffix" `Quick
      test_recover_redoes_wal_suffix;
    Alcotest.test_case "recover: ROLLBACK leaves no trace" `Quick
      test_rollback_leaves_no_trace_after_recovery;
    Alcotest.test_case "recover: COMMIT pre-fsync crash is atomic" `Quick
      test_commit_prefsync_crash_loses_tx_atomically;
    Alcotest.test_case "recover: undo-walk crash replays ROLLBACK" `Quick
      test_undo_walk_crash_recovers_rollback;
    Alcotest.test_case "recover: torn COMMIT drops tx atomically" `Quick
      test_torn_commit_drops_tx_atomically;
    Alcotest.test_case "recover: next_rid survives checkpoint" `Quick
      test_next_rid_preserved_across_checkpoint;
    Alcotest.test_case "recover: no double apply after ckpt.pre_gc" `Quick
      test_ckpt_pre_gc_crash_no_double_apply;
    Alcotest.test_case "crashcheck: deterministic and verified" `Quick
      test_crashcheck_deterministic_and_verified;
    Alcotest.test_case "crashcheck: --no-recover diverges" `Quick
      test_crashcheck_no_recover_diverges;
    Alcotest.test_case "package: no .tmp after failed write" `Quick
      test_write_file_no_tmp_after_failure ]
