(* Tests for the extended SQL surface: explicit joins, outer joins,
   subqueries, UNION, CASE, scalar functions, INSERT..SELECT, EXPLAIN,
   AS OF time travel, secondary indexes and transactions. *)

open Minidb

let q = Database.query

let mk_pair_db () =
  let db = Database.create () in
  ignore
    (Database.exec_script db
       "CREATE TABLE dept (dno INT, dname TEXT);\n\
        CREATE TABLE emp (eno INT, ename TEXT, dno INT, sal INT);\n\
        INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty');\n\
        INSERT INTO emp VALUES (10, 'ada', 1, 120), (11, 'bob', 1, 90), (12, \
        'cyd', 2, 100), (13, 'dan', NULL, 80)");
  db

(* ---------------- joins ---------------- *)

let test_explicit_join () =
  let db = mk_pair_db () in
  Fixtures.check_rows "JOIN ON" [ "ada|eng"; "bob|eng"; "cyd|sales" ]
    (q db "SELECT ename, dname FROM emp e JOIN dept d ON e.dno = d.dno")

let test_left_join_pads_nulls () =
  let db = mk_pair_db () in
  let r =
    q db
      "SELECT ename, dname FROM emp e LEFT JOIN dept d ON e.dno = d.dno"
  in
  Fixtures.check_rows "unmatched left rows padded"
    [ "ada|eng"; "bob|eng"; "cyd|sales"; "dan|" ]
    r;
  (* the padded row's annotation covers only the left tuple *)
  let dan =
    List.find
      (fun (row : Executor.arow) ->
        Fixtures.str_cell row.Executor.values.(0) = "dan")
      r.Executor.rows
  in
  let tables =
    Tid.Set.elements (Annotation.lineage dan.Executor.ann)
    |> List.map (fun (t : Tid.t) -> t.Tid.table)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "padded lineage is left-only" [ "emp" ] tables

let test_left_join_empty_right_side () =
  let db = mk_pair_db () in
  Fixtures.check_rows "dept with no emps survives"
    [ "empty|" ]
    (q db
       "SELECT dname, ename FROM dept d LEFT JOIN emp e ON d.dno = e.dno \
        WHERE dname = 'empty'")

let test_join_plan_shapes () =
  let db = mk_pair_db () in
  let plan sql =
    match Sql_parser.parse sql with
    | Sql_ast.Select s -> Planner.describe (Planner.plan_select (Database.catalog db) s)
    | _ -> assert false
  in
  Alcotest.(check bool) "explicit join hashes" true
    (Fixtures.contains_substring ~needle:"hashjoin"
       (plan "SELECT ename FROM emp e JOIN dept d ON e.dno = d.dno"));
  Alcotest.(check bool) "outer join hashes" true
    (Fixtures.contains_substring ~needle:"hashouterjoin"
       (plan "SELECT ename FROM emp e LEFT JOIN dept d ON e.dno = d.dno"))

(* ---------------- subqueries ---------------- *)

let test_in_subquery () =
  let db = mk_pair_db () in
  Fixtures.check_rows "IN (SELECT ...)" [ "ada"; "bob" ]
    (q db
       "SELECT ename FROM emp WHERE dno IN (SELECT dno FROM dept WHERE \
        dname = 'eng')")

let test_in_subquery_empty () =
  let db = mk_pair_db () in
  Fixtures.check_rows "IN over empty set is false" []
    (q db
       "SELECT ename FROM emp WHERE dno IN (SELECT dno FROM dept WHERE \
        dname = 'nope')")

let test_exists_subquery () =
  let db = mk_pair_db () in
  Fixtures.check_rows "EXISTS true keeps all rows" [ "4" ]
    (q db "SELECT count(*) FROM emp WHERE EXISTS (SELECT dno FROM dept)");
  Fixtures.check_rows "EXISTS false drops all rows" [ "0" ]
    (q db
       "SELECT count(*) FROM emp WHERE EXISTS (SELECT dno FROM dept WHERE \
        dno > 99)")

let test_scalar_subquery () =
  let db = mk_pair_db () in
  (* avg(sal) = 97.5: ada (120) and cyd (100) are above it *)
  Fixtures.check_rows "scalar subquery as threshold" [ "ada"; "cyd" ]
    (q db
       "SELECT ename FROM emp WHERE sal > (SELECT avg(sal) FROM emp)")

let test_subquery_provenance_conservative () =
  let db = mk_pair_db () in
  let r =
    q db
      "SELECT ename FROM emp WHERE dno IN (SELECT dno FROM dept WHERE \
       dname = 'eng')"
  in
  (* every result row's lineage must include the dept tuples the subquery
     read (conservative dependency; §VI) *)
  List.iter
    (fun (row : Executor.arow) ->
      let tables =
        Tid.Set.elements (Annotation.lineage row.Executor.ann)
        |> List.map (fun (t : Tid.t) -> t.Tid.table)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list string)) "dept in lineage" [ "dept"; "emp" ] tables)
    r.Executor.rows

let test_scalar_subquery_multi_row_fails () =
  let db = mk_pair_db () in
  Alcotest.(check bool) "multi-row scalar subquery rejected" true
    (try
       ignore (q db "SELECT (SELECT dno FROM dept) FROM emp");
       false
     with Errors.Db_error (Errors.Unsupported _) -> true)

(* ---------------- UNION ---------------- *)

let test_union_all () =
  let db = mk_pair_db () in
  (* emp contributes 1,1,2 (dan's NULL filtered); dept contributes 1,2,3 *)
  Fixtures.check_rows "UNION ALL keeps duplicates"
    [ "1"; "1"; "1"; "2"; "2"; "3" ]
    (q db "SELECT dno FROM emp WHERE dno IS NOT NULL UNION ALL SELECT dno FROM dept")

let test_union_distinct () =
  let db = mk_pair_db () in
  Fixtures.check_rows "UNION deduplicates" [ "1"; "2"; "3" ]
    (q db "SELECT dno FROM emp WHERE dno IS NOT NULL UNION SELECT dno FROM dept")

let test_union_order_limit () =
  let db = mk_pair_db () in
  let r =
    q db
      "SELECT dno FROM dept UNION ALL SELECT dno FROM dept ORDER BY dno \
       DESC LIMIT 2"
  in
  Alcotest.(check (list string)) "order over the whole union" [ "3"; "3" ]
    (List.map
       (fun (row : Executor.arow) -> Value.to_raw_string row.Executor.values.(0))
       r.Executor.rows)

let test_union_arity_mismatch () =
  let db = mk_pair_db () in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore (q db "SELECT dno FROM dept UNION SELECT dno, dname FROM dept");
       false
     with Errors.Db_error (Errors.Unsupported _) -> true)

(* ---------------- CASE and functions ---------------- *)

let test_case_expression () =
  let db = mk_pair_db () in
  Fixtures.check_rows "case buckets"
    [ "ada|high"; "bob|low"; "cyd|high"; "dan|low" ]
    (q db
       "SELECT ename, CASE WHEN sal >= 100 THEN 'high' ELSE 'low' END FROM emp")

let test_case_no_else_yields_null () =
  let db = mk_pair_db () in
  Fixtures.check_rows "missing else is NULL" [ "ada|x"; "bob|"; "cyd|"; "dan|" ]
    (q db "SELECT ename, CASE WHEN sal > 110 THEN 'x' END FROM emp")

let test_scalar_functions () =
  let db = mk_pair_db () in
  Fixtures.check_rows "string functions" [ "ADA|3|da" ]
    (q db
       "SELECT upper(ename), length(ename), substr(ename, 2, 2) FROM emp \
        WHERE eno = 10");
  Fixtures.check_rows "coalesce" [ "9" ]
    (q db "SELECT coalesce(dno, 9) FROM emp WHERE ename = 'dan'");
  Fixtures.check_rows "abs/round" [ "3|4.000000" ]
    (q db "SELECT abs(-3), round(3.6) FROM dept WHERE dno = 1");
  Fixtures.check_rows "replace/trim" [ "bxb" ]
    (q db "SELECT replace(trim(' bab '), 'a', 'x') FROM dept WHERE dno = 1")

let test_unknown_function () =
  let db = mk_pair_db () in
  Alcotest.(check bool) "unknown function rejected" true
    (try
       ignore (q db "SELECT frobnicate(dno) FROM dept");
       false
     with Errors.Db_error (Errors.Unsupported _) -> true)

(* ---------------- INSERT .. SELECT ---------------- *)

let test_insert_select () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE TABLE rich (name TEXT, sal INT)");
  let info =
    Database.dml db "INSERT INTO rich SELECT ename, sal FROM emp WHERE sal >= 100"
  in
  Alcotest.(check int) "two copied" 2 info.Database.count;
  (* provenance: each inserted tuple derives from its source row *)
  List.iter
    (fun (_, deps) ->
      Alcotest.(check int) "one source tuple" 1 (List.length deps);
      Alcotest.(check string) "from emp" "emp" (List.hd deps).Tid.table)
    info.Database.deps;
  Fixtures.check_rows "copied rows" [ "ada|120"; "cyd|100" ]
    (q db "SELECT name, sal FROM rich")

(* ---------------- EXPLAIN ---------------- *)

let test_explain () =
  let db = mk_pair_db () in
  match q db "EXPLAIN SELECT ename FROM emp e JOIN dept d ON e.dno = d.dno" with
  | { Executor.rows = [ { Executor.values = [| Value.Str plan |]; _ } ]; _ } ->
    Alcotest.(check bool) ("plan mentions hashjoin: " ^ plan) true
      (Fixtures.contains_substring ~needle:"hashjoin" plan)
  | _ -> Alcotest.fail "explain should yield one row"

(* ---------------- AS OF time travel ---------------- *)

let test_as_of () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1)");
  let after_insert = Database.clock db in
  ignore (Database.exec db "UPDATE t SET x = 2");
  ignore (Database.exec db "INSERT INTO t VALUES (3)");
  let after_all = Database.clock db in
  ignore (Database.exec db "DELETE FROM t WHERE x = 3");
  Fixtures.check_rows "snapshot after insert" [ "1" ]
    (q db (Printf.sprintf "SELECT x FROM t AS OF %d" after_insert));
  Fixtures.check_rows "snapshot after update+insert" [ "2"; "3" ]
    (q db (Printf.sprintf "SELECT x FROM t AS OF %d" after_all));
  Fixtures.check_rows "current state" [ "2" ] (q db "SELECT x FROM t");
  Fixtures.check_rows "before anything" []
    (q db "SELECT x FROM t AS OF 0")

let test_as_of_join_with_current () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1), (2)");
  let snap = Database.clock db in
  ignore (Database.exec db "DELETE FROM t WHERE x = 2");
  (* rows that existed at [snap] but are gone now *)
  Fixtures.check_rows "deleted rows via snapshot anti-join" [ "2" ]
    (q db
       (Printf.sprintf
          "SELECT o.x FROM t AS OF %d o LEFT JOIN t n ON o.x = n.x WHERE \
           n.x IS NULL"
          snap))

(* ---------------- indexes ---------------- *)

let test_index_scan_plan_and_results () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE INDEX emp_dno ON emp (dno)");
  (match q db "EXPLAIN SELECT ename FROM emp WHERE dno = 1" with
  | { Executor.rows = [ { Executor.values = [| Value.Str plan |]; _ } ]; _ } ->
    Alcotest.(check bool) ("index scan used: " ^ plan) true
      (Fixtures.contains_substring ~needle:"indexscan(emp.emp_dno)" plan)
  | _ -> Alcotest.fail "explain failed");
  Fixtures.check_rows "index scan result" [ "ada"; "bob" ]
    (q db "SELECT ename FROM emp WHERE dno = 1");
  (* results identical to the unindexed plan *)
  Fixtures.check_rows "predicate beyond the index still applies" [ "ada" ]
    (q db "SELECT ename FROM emp WHERE dno = 1 AND sal > 100")

let test_index_maintenance () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE INDEX emp_dno ON emp (dno)");
  ignore (Database.exec db "UPDATE emp SET dno = 2 WHERE ename = 'ada'");
  ignore (Database.exec db "DELETE FROM emp WHERE ename = 'bob'");
  ignore (Database.exec db "INSERT INTO emp VALUES (14, 'eve', 1, 70)");
  Fixtures.check_rows "index sees update/delete/insert" [ "eve" ]
    (q db "SELECT ename FROM emp WHERE dno = 1");
  Fixtures.check_rows "moved row found under new key" [ "ada"; "cyd" ]
    (q db "SELECT ename FROM emp WHERE dno = 2")

let test_index_null_keys () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE INDEX emp_dno ON emp (dno)");
  (* dan has a NULL dno: never in the index, never matched by equality *)
  Fixtures.check_rows "null key unreachable by index" []
    (q db "SELECT ename FROM emp WHERE dno = NULL")

let test_index_ddl_errors () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE INDEX emp_dno ON emp (dno)");
  Alcotest.(check bool) "duplicate index rejected" true
    (try
       ignore (Database.exec db "CREATE INDEX emp_dno ON emp (sal)");
       false
     with Errors.Db_error (Errors.Constraint_violation _) -> true);
  ignore (Database.exec db "DROP INDEX emp_dno");
  Alcotest.(check bool) "drop unknown index rejected" true
    (try
       ignore (Database.exec db "DROP INDEX emp_dno");
       false
     with Errors.Db_error (Errors.Unknown_table _) -> true)

(* ---------------- transactions ---------------- *)

let test_commit_keeps_changes () =
  let db = mk_pair_db () in
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "INSERT INTO dept VALUES (4, 'hr')");
  ignore (Database.exec db "UPDATE dept SET dname = 'eng2' WHERE dno = 1");
  ignore (Database.exec db "COMMIT");
  Fixtures.check_rows "committed" [ "1|eng2"; "2|sales"; "3|empty"; "4|hr" ]
    (q db "SELECT dno, dname FROM dept")

let test_rollback_undoes_everything () =
  let db = mk_pair_db () in
  let before = Executor.result_fingerprint (q db "SELECT dno, dname FROM dept") in
  ignore (Database.exec db "BEGIN TRANSACTION");
  ignore (Database.exec db "INSERT INTO dept VALUES (4, 'hr')");
  ignore (Database.exec db "UPDATE dept SET dname = 'X' WHERE dno < 3");
  ignore (Database.exec db "DELETE FROM dept WHERE dno = 3");
  Fixtures.check_rows "inside tx" [ "1|X"; "2|X"; "4|hr" ]
    (q db "SELECT dno, dname FROM dept");
  ignore (Database.exec db "ROLLBACK");
  Alcotest.(check string) "state restored exactly" before
    (Executor.result_fingerprint (q db "SELECT dno, dname FROM dept"))

let test_rollback_erases_versions () =
  let db = mk_pair_db () in
  ignore (Database.exec db "BEGIN");
  let info = Database.dml db "UPDATE dept SET dname = 'X' WHERE dno = 1" in
  ignore (Database.exec db "ROLLBACK");
  let table = Catalog.find (Database.catalog db) "dept" in
  List.iter
    (fun (tid, _) ->
      Alcotest.(check bool) "aborted version gone" true
        (Table.find_version table tid = None))
    info.Database.deps

let test_rollback_restores_index () =
  let db = mk_pair_db () in
  ignore (Database.exec db "CREATE INDEX dept_dno ON dept (dno)");
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "UPDATE dept SET dno = 9 WHERE dno = 1");
  ignore (Database.exec db "ROLLBACK");
  Fixtures.check_rows "index consistent after rollback" [ "eng" ]
    (q db "SELECT dname FROM dept WHERE dno = 1");
  Fixtures.check_rows "no phantom under aborted key" []
    (q db "SELECT dname FROM dept WHERE dno = 9")

let test_tx_errors () =
  let db = mk_pair_db () in
  Alcotest.(check bool) "commit without begin" true
    (try
       ignore (Database.exec db "COMMIT");
       false
     with Errors.Db_error (Errors.Tx_state _) -> true);
  ignore (Database.exec db "BEGIN");
  Alcotest.(check bool) "nested begin" true
    (try
       ignore (Database.exec db "BEGIN");
       false
     with Errors.Db_error (Errors.Tx_state _) -> true);
  Alcotest.(check bool) "ddl inside tx rejected" true
    (try
       ignore (Database.exec db "CREATE TABLE z (a INT)");
       false
     with Errors.Db_error (Errors.Unsupported _) -> true);
  ignore (Database.exec db "ROLLBACK")

(* Randomized transaction property: BEGIN; random DML; ROLLBACK leaves the
   live state (and indexed access paths) exactly as before. *)
let prop_rollback_identity =
  QCheck.Test.make ~count:60 ~name:"rollback restores the exact live state"
    (QCheck.make ~print:string_of_int QCheck.Gen.nat) (fun seed ->
      let rng = Tpch.Prng.create ~seed in
      let db = mk_pair_db () in
      ignore (Database.exec db "CREATE INDEX emp_dno ON emp (dno)");
      let fingerprint () =
        Executor.result_fingerprint
          (q db "SELECT eno, ename, dno, sal FROM emp ORDER BY eno")
        ^ Executor.result_fingerprint
            (q db "SELECT ename FROM emp WHERE dno = 1")
      in
      let before = fingerprint () in
      ignore (Database.exec db "BEGIN");
      for _ = 1 to 1 + Tpch.Prng.int rng 6 do
        match Tpch.Prng.int rng 3 with
        | 0 ->
          ignore
            (Database.exec db
               (Printf.sprintf "INSERT INTO emp VALUES (%d, 'n', %d, %d)"
                  (100 + Tpch.Prng.int rng 50)
                  (1 + Tpch.Prng.int rng 3)
                  (Tpch.Prng.int rng 200)))
        | 1 ->
          ignore
            (Database.exec db
               (Printf.sprintf "UPDATE emp SET sal = sal + 1, dno = %d WHERE \
                                eno = %d"
                  (1 + Tpch.Prng.int rng 3)
                  (10 + Tpch.Prng.int rng 8)))
        | _ ->
          ignore
            (Database.exec db
               (Printf.sprintf "DELETE FROM emp WHERE eno = %d"
                  (10 + Tpch.Prng.int rng 8)))
      done;
      ignore (Database.exec db "ROLLBACK");
      String.equal before (fingerprint ()))

let suite =
  [ Alcotest.test_case "explicit join" `Quick test_explicit_join;
    Alcotest.test_case "left join pads nulls" `Quick test_left_join_pads_nulls;
    Alcotest.test_case "left join empty right" `Quick test_left_join_empty_right_side;
    Alcotest.test_case "join plan shapes" `Quick test_join_plan_shapes;
    Alcotest.test_case "IN subquery" `Quick test_in_subquery;
    Alcotest.test_case "IN empty subquery" `Quick test_in_subquery_empty;
    Alcotest.test_case "EXISTS subquery" `Quick test_exists_subquery;
    Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
    Alcotest.test_case "subquery provenance" `Quick test_subquery_provenance_conservative;
    Alcotest.test_case "multi-row scalar subquery" `Quick test_scalar_subquery_multi_row_fails;
    Alcotest.test_case "UNION ALL" `Quick test_union_all;
    Alcotest.test_case "UNION distinct" `Quick test_union_distinct;
    Alcotest.test_case "UNION order/limit" `Quick test_union_order_limit;
    Alcotest.test_case "UNION arity" `Quick test_union_arity_mismatch;
    Alcotest.test_case "CASE" `Quick test_case_expression;
    Alcotest.test_case "CASE without ELSE" `Quick test_case_no_else_yields_null;
    Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
    Alcotest.test_case "unknown function" `Quick test_unknown_function;
    Alcotest.test_case "INSERT..SELECT" `Quick test_insert_select;
    Alcotest.test_case "EXPLAIN" `Quick test_explain;
    Alcotest.test_case "AS OF snapshots" `Quick test_as_of;
    Alcotest.test_case "AS OF join with current" `Quick test_as_of_join_with_current;
    Alcotest.test_case "index scan" `Quick test_index_scan_plan_and_results;
    Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
    Alcotest.test_case "index null keys" `Quick test_index_null_keys;
    Alcotest.test_case "index ddl errors" `Quick test_index_ddl_errors;
    Alcotest.test_case "tx commit" `Quick test_commit_keeps_changes;
    Alcotest.test_case "tx rollback" `Quick test_rollback_undoes_everything;
    Alcotest.test_case "rollback erases versions" `Quick test_rollback_erases_versions;
    Alcotest.test_case "rollback restores index" `Quick test_rollback_restores_index;
    Alcotest.test_case "tx errors" `Quick test_tx_errors;
    QCheck_alcotest.to_alcotest prop_rollback_identity ]
