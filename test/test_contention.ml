(* Contention-aware tracing: per-quantum telemetry, trace-ID propagation
   with cross-session latch causality, exact blocked-vs-running
   telescoping, byte-stable seeded traces, the streaming JSONL sink, and
   group-commit stall attribution. *)

open Ldv_core
module Obs = Ldv_obs
module C = Ldv_obs.Contention
module H = Ldv_obs.Histogram

let audited = Concurrent.audited

(* Same harness as test_obs: clean in-memory collector, deterministic
   clock ticking 1.0 s per reading. *)
let with_memory f =
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ();
      Obs.set_ring_capacity 65536)
    f

let tick_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.0;
      v)

let counter_of (snap : Obs.snapshot) name =
  Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)

(* ------------------------------------------------------------------ *)
(* Per-quantum telemetry: the kernel hook samples the registered gauges
   exactly once per scheduling round.                                   *)

let test_quantum_sampling () =
  with_memory @@ fun () ->
  tick_clock ();
  ignore (audited ~sessions:4 ~statements:6 ~seed:42 ());
  let snap = Obs.snapshot () in
  let rounds = counter_of snap "sched.rounds" in
  Alcotest.(check bool) "the scheduler ran rounds" true (rounds > 0);
  Alcotest.(check int) "one quantum record per round" rounds
    (List.length snap.Obs.quanta);
  List.iteri
    (fun i (q : Obs.quantum) ->
      Alcotest.(check int) "rounds are 1-based and consecutive" (i + 1)
        q.Obs.q_round;
      Alcotest.(check bool) "run-queue gauge sampled" true
        (List.mem_assoc "sched.run_queue" q.Obs.q_gauges);
      Alcotest.(check bool) "snapshot-age gauge sampled" true
        (List.mem_assoc "db.snapshot_age" q.Obs.q_gauges);
      Alcotest.(check bool) "gauges sorted by name" true
        (let names = List.map fst q.Obs.q_gauges in
         names = List.sort compare names))
    snap.Obs.quanta;
  (* the run queue drains monotonically to empty-but-last *)
  let first = List.hd snap.Obs.quanta in
  Alcotest.(check (float 1e-9)) "round 1 sees all four sessions" 4.0
    (List.assoc "sched.run_queue" first.Obs.q_gauges)

(* ------------------------------------------------------------------ *)
(* Trace-ID propagation and cross-session latch causality.             *)

let test_trace_ids_and_latch_causality () =
  with_memory @@ fun () ->
  ignore (audited ~sessions:4 ~statements:6 ~seed:42 ());
  let snap = Obs.snapshot () in
  let stmts = Obs.find_spans snap "db.stmt" in
  Alcotest.(check bool) "statements were traced" true (stmts <> []);
  List.iter
    (fun (sp : Obs.span) ->
      let attr k =
        match List.assoc_opt k sp.Obs.sp_attrs with
        | Some v -> v
        | None -> Alcotest.failf "db.stmt span misses %s" k
      in
      Alcotest.(check bool) "trace id set" true (attr "trace.id" <> "");
      Alcotest.(check bool) "session id numeric" true
        (int_of_string_opt (attr Obs.Trace.session_attr) <> None);
      Alcotest.(check bool) "statement id numeric" true
        (int_of_string_opt (attr Obs.Trace.stmt_attr) <> None))
    stmts;
  Alcotest.(check bool) "several sessions appear" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun sp -> C.session_of sp) stmts))
    > 2);
  (* the in-latch yield makes real contention: some session waited, and
     every wait names a holder that is not the waiter itself *)
  Alcotest.(check bool) "latch waits happened" true
    (counter_of snap "latch.waits" > 0);
  let waits = Obs.find_spans snap C.latch_wait_span in
  Alcotest.(check int) "one wait.latch span per wait"
    (counter_of snap "latch.waits")
    (List.length waits);
  List.iter
    (fun (sp : Obs.span) ->
      match List.assoc_opt C.holder_attr sp.Obs.sp_attrs with
      | None -> Alcotest.fail "wait.latch span misses latch.holder"
      | Some holder ->
        Alcotest.(check bool) "holder is another session" false
          (String.equal holder (C.session_of sp)))
    waits;
  (* and the report pins the blame on real sessions *)
  let rep = C.contention snap in
  Alcotest.(check bool) "holder report non-empty" true (rep.C.c_holders <> []);
  List.iter
    (fun (h : C.holder) ->
      Alcotest.(check bool) "holder ids are sessions" true
        (int_of_string_opt h.C.h_session <> None))
    rep.C.c_holders

(* ------------------------------------------------------------------ *)
(* Wait-span telescoping: per session, blocked + running = wall,
   exactly, because adjacent quantum and wait spans share their boundary
   timestamps.                                                          *)

let test_telescoping () =
  with_memory @@ fun () ->
  tick_clock ();
  ignore (audited ~sessions:4 ~statements:6 ~seed:42 ());
  let rows = Obs.Profile.attribution (Obs.snapshot ()) in
  let numbered =
    List.filter (fun (a : C.session_attr) ->
        int_of_string_opt a.C.a_session <> None)
      rows
  in
  Alcotest.(check int) "every session attributed" 4 (List.length numbered);
  List.iter
    (fun (a : C.session_attr) ->
      Alcotest.(check bool)
        (Printf.sprintf "session %s ran and waited" a.C.a_session)
        true
        (a.C.a_quanta > 0 && a.C.a_waits > 0);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "session %s: blocked + running = wall" a.C.a_session)
        a.C.a_wall
        (a.C.a_running +. a.C.a_blocked))
    numbered

(* ------------------------------------------------------------------ *)
(* Determinism: two identically-seeded runs produce byte-identical
   JSONL traces (spans, quanta, metrics — everything).                  *)

let test_byte_stable () =
  let collect () =
    Obs.set_sink Obs.Memory;
    Obs.reset ();
    tick_clock ();
    ignore (audited ~sessions:4 ~statements:6 ~seed:7 ());
    Obs.to_jsonl (Obs.snapshot ())
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ())
    (fun () ->
      let a = collect () in
      let b = collect () in
      Alcotest.(check bool) "trace is non-trivial" true
        (String.length a > 1000);
      Alcotest.(check bool) "same seed, same trace bytes" true
        (String.equal a b))

(* ------------------------------------------------------------------ *)
(* Streaming sink: records hit the file while the run is still going,
   not only at the end.                                                 *)

let test_streaming_incremental () =
  let path = Filename.temp_file "ldv_stream" ".jsonl" in
  let oc = open_out path in
  let closed = ref false in
  Obs.set_sink (Obs.Jsonl oc);
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      if not !closed then close_out_noerr oc;
      Sys.remove path;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ())
  @@ fun () ->
  (* a gauge provider reads the trace file's own size each round: the
     quantum records then carry proof of how much had already been
     written mid-run *)
  Obs.register_quantum_gauge "zz.trace_bytes" (fun () ->
      float_of_int (Unix.stat path).Unix.st_size);
  ignore (audited ~sessions:8 ~statements:6 ~seed:42 ());
  let snap = Obs.snapshot () in
  Obs.set_sink Obs.Null;
  Obs.output_metrics oc snap;
  close_out oc;
  closed := true;
  let last_round =
    List.fold_left (fun m (q : Obs.quantum) -> max m q.Obs.q_round) 0
      snap.Obs.quanta
  in
  Alcotest.(check bool) "several rounds ran" true (last_round > 2);
  List.iter
    (fun (q : Obs.quantum) ->
      if q.Obs.q_round > 1 && q.Obs.q_round < last_round then
        Alcotest.(check bool)
          (Printf.sprintf "round %d saw a non-empty file" q.Obs.q_round)
          true
          (List.assoc "zz.trace_bytes" q.Obs.q_gauges > 0.0))
    snap.Obs.quanta;
  (* and the finished file round-trips through the reader *)
  let ic = open_in path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let decoded = Obs.of_jsonl data in
  Alcotest.(check bool) "spans stream" true (decoded.Obs.spans <> []);
  Alcotest.(check int) "every quantum streams"
    (List.length snap.Obs.quanta)
    (List.length decoded.Obs.quanta);
  Alcotest.(check int) "dropped counter streams in the meta record"
    snap.Obs.dropped_spans decoded.Obs.dropped_spans

(* ------------------------------------------------------------------ *)
(* Bounded memory: the ring caps resident spans and quanta, and the
   dropped counters account exactly for what was evicted.               *)

let test_dropped_counters () =
  with_memory @@ fun () ->
  tick_clock ();
  Obs.set_ring_capacity 8;
  for _ = 1 to 20 do
    Obs.with_span "s" (fun () -> ())
  done;
  for round = 1 to 13 do
    Obs.sample_quantum ~round ()
  done;
  let snap = Obs.snapshot () in
  Alcotest.(check int) "resident spans capped" 8 (List.length snap.Obs.spans);
  Alcotest.(check int) "dropped = emitted - resident" 12 snap.Obs.dropped_spans;
  (* the histogram saw every completion, so the accounting telescopes *)
  let hist = List.assoc "span:s" snap.Obs.histograms in
  Alcotest.(check int) "histogram keeps the true count" 20 hist.H.s_count;
  Alcotest.(check int) "resident quanta capped" 8
    (List.length snap.Obs.quanta);
  Alcotest.(check int) "dropped quanta counted" 5 snap.Obs.dropped_quanta;
  (* the survivors are the newest ones, still in order *)
  Alcotest.(check (list int)) "newest quanta survive"
    [ 6; 7; 8; 9; 10; 11; 12; 13 ]
    (List.map (fun (q : Obs.quantum) -> q.Obs.q_round) snap.Obs.quanta)

(* ------------------------------------------------------------------ *)
(* Group commit: deferred fsyncs surface as wait.group-commit spans, a
   stall histogram, and a rounds-deferred counter.                      *)

let test_group_commit_stalls () =
  with_memory @@ fun () ->
  tick_clock ();
  let kernel = Minios.Kernel.create () in
  let db = Minidb.Database.create () in
  let server = Dbclient.Server.attach db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  let d = Dbclient.Durable.start kernel server ~pid:proc.Minios.Kernel.pid in
  Dbclient.Durable.enable_group_commit d;
  ignore (Dbclient.Durable.exec d "CREATE TABLE t (a INT)");
  let rounds = 6 and sessions = 4 in
  for round = 1 to rounds do
    for sid = 0 to sessions - 1 do
      ignore
        (Dbclient.Durable.exec d
           (Printf.sprintf "INSERT INTO t VALUES (%d)" ((round * 100) + sid)))
    done;
    Minios.Kernel.run_quantum_hooks kernel
  done;
  Dbclient.Durable.flush d;
  let snap = Obs.snapshot () in
  (* every quantum flushed a batch that was deferred within that round *)
  Alcotest.(check int) "rounds deferred" rounds
    (counter_of snap "wal.group_commit.rounds_deferred");
  Alcotest.(check int) "all statements were batched"
    (1 + (rounds * sessions))
    (counter_of snap "wal.group_commit.batched");
  let stall = List.assoc "wal.group_commit.stall" snap.Obs.histograms in
  Alcotest.(check int) "one stall sample per group commit"
    (counter_of snap "wal.group_commit")
    stall.H.s_count;
  let spans = Obs.find_spans snap C.group_commit_wait_span in
  Alcotest.(check int) "one wait span per flushed batch" rounds
    (List.length spans);
  List.iter
    (fun (sp : Obs.span) ->
      match List.assoc_opt "wal.batch" sp.Obs.sp_attrs with
      | None -> Alcotest.fail "wait.group-commit span misses wal.batch"
      | Some n ->
        Alcotest.(check bool) "batch size positive" true
          (match int_of_string_opt n with Some k -> k > 0 | None -> false))
    spans;
  (* the fsync-barrier gauge is sampled into each round's record *)
  Alcotest.(check int) "one quantum per round" rounds
    (List.length snap.Obs.quanta);
  let final = List.nth snap.Obs.quanta (rounds - 1) in
  Alcotest.(check (float 1e-9)) "barrier gauge tracks the WAL"
    (float_of_int (Dbclient.Durable.fsync_barriers d))
    (List.assoc "wal.fsync_barriers" final.Obs.q_gauges)

let suite =
  [ Alcotest.test_case "quantum gauges sampled once per round" `Quick
      test_quantum_sampling;
    Alcotest.test_case "trace ids propagate; latch blame is cross-session"
      `Quick test_trace_ids_and_latch_causality;
    Alcotest.test_case "blocked + running = wall, exactly" `Quick
      test_telescoping;
    Alcotest.test_case "same seed, same trace bytes" `Quick test_byte_stable;
    Alcotest.test_case "jsonl sink streams mid-run" `Quick
      test_streaming_incremental;
    Alcotest.test_case "ring bounds memory; dropped counters exact" `Quick
      test_dropped_counters;
    Alcotest.test_case "group-commit stalls attributed" `Quick
      test_group_commit_stalls ]
