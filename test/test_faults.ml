(* Tests for the fault-injection framework (Ldv_faults), the typed error
   vocabulary (Ldv_errors), checksummed package parsing with partial
   restore, crash-safe package writes, and the faultcheck harness. *)

open Ldv_core
module F = Ldv_faults
module E = Ldv_errors
module I = Dbclient.Interceptor

(* ---------------- PRNG and CRC32 -------------------------------- *)

let test_prng_deterministic () =
  let a = F.Prng.create ~seed:99 in
  let b = F.Prng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (F.Prng.next_int64 a)
      (F.Prng.next_int64 b)
  done

let test_prng_split_independent () =
  (* a child stream's output does not depend on how far the parent has
     advanced after the split *)
  let p1 = F.Prng.create ~seed:1 in
  let c1 = F.Prng.split p1 in
  let expected = List.init 10 (fun _ -> F.Prng.next_int64 c1) in
  let p2 = F.Prng.create ~seed:1 in
  let c2 = F.Prng.split p2 in
  for _ = 1 to 1000 do
    ignore (F.Prng.next_int64 p2)
  done;
  let actual = List.init 10 (fun _ -> F.Prng.next_int64 c2) in
  Alcotest.(check (list int64)) "child independent of parent" expected actual

let test_crc32_known_vector () =
  (* the standard CRC-32 check value *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l
    (F.Crc32.digest "123456789");
  Alcotest.(check int32) "crc32 of empty" 0l (F.Crc32.digest "");
  Alcotest.(check bool) "corruption changes the digest" true
    (F.Crc32.digest "hello world" <> F.Crc32.digest "hello_world")

(* ---------------- bounded retry --------------------------------- *)

let test_retries_recover () =
  let calls = ref 0 in
  let v =
    F.with_retries ~op:"t" (fun () ->
        incr calls;
        if !calls < 3 then
          E.fail (E.Connection_lost { context = "flaky" })
        else 42)
  in
  Alcotest.(check int) "returned after transient failures" 42 v;
  Alcotest.(check int) "took three attempts" 3 !calls

let test_retries_permanent_immediate () =
  let calls = ref 0 in
  Alcotest.(check bool) "permanent error propagates on first attempt" true
    (try
       F.with_retries ~op:"t" (fun () ->
           incr calls;
           E.fail (E.Io_fault { op = "write"; path = "/f"; fault = E.Enospc }))
     with E.Error (E.Io_fault { fault = E.Enospc; _ }) -> true);
  Alcotest.(check int) "no retries" 1 !calls

let test_retries_exhausted () =
  let calls = ref 0 in
  Alcotest.(check bool) "exhaustion is typed and carries the last error" true
    (try
       F.with_retries ~op:"t" (fun () ->
           incr calls;
           E.fail (E.Protocol_garbled { context = "always" }))
     with
    | E.Error
        (E.Retries_exhausted
           { op = "t"; attempts; last = E.Protocol_garbled _ }) ->
      attempts = F.default_attempts);
  Alcotest.(check int) "stopped at the attempt bound" F.default_attempts !calls

(* ---------------- kernel syscall injection ---------------------- *)

let test_kernel_injection_typed () =
  let plan = F.make ~p_syscall:1.0 ~seed:5 () in
  F.with_plan plan @@ fun () ->
  let k = Minios.Kernel.create () in
  Minios.Vfs.write_string (Minios.Kernel.vfs k) ~path:"/f" "x";
  Alcotest.(check bool) "always-failing syscalls surface typed" true
    (try
       ignore
         (Minios.Program.run k ~name:"io" (fun env ->
              ignore (Minios.Program.read_file env "/f")));
       false
     with E.Error (E.Io_fault _) -> true);
  let tally = List.fold_left (fun a (_, n) -> a + n) 0 (F.injected plan) in
  Alcotest.(check bool) "injections were tallied" true (tally > 0)

let test_no_plan_no_faults () =
  Alcotest.(check bool) "no plan installed" false (F.enabled ());
  let k = Minios.Kernel.create () in
  Minios.Vfs.write_string (Minios.Kernel.vfs k) ~path:"/f" "x";
  ignore
    (Minios.Program.run k ~name:"io" (fun env ->
         Alcotest.(check string) "reads succeed" "x"
           (Minios.Program.read_file env "/f")))

(* ---------------- client transport faults ----------------------- *)

let with_client f =
  let kernel = Minios.Kernel.create () in
  let db = Fixtures.sales_db () in
  let server = Dbclient.Server.install kernel db in
  let session = I.create ~mode:I.Passthrough ~kernel server in
  I.bind kernel session;
  Fun.protect
    ~finally:(fun () -> I.unbind kernel)
    (fun () ->
      ignore
        (Minios.Program.run kernel ~name:"client-test" (fun env ->
             let conn = Dbclient.Client.connect env ~db:"sales" in
             f conn)))

let test_client_closed_typed () =
  Alcotest.(check bool) "send on a closed connection is typed" true
    (try
       with_client (fun conn ->
           Dbclient.Client.close conn;
           ignore (Dbclient.Client.send conn "SELECT id FROM sales"));
       false
     with E.Error (E.Connection_closed _) -> true)

let test_client_transport_faults_exhaust_retries () =
  let plan = F.make ~p_conn:1.0 ~seed:9 () in
  Alcotest.(check bool) "permanent transport noise exhausts the retries" true
    (try
       F.with_plan plan (fun () ->
           with_client (fun conn ->
               ignore (Dbclient.Client.send conn "SELECT id FROM sales")));
       false
     with
    | E.Error (E.Retries_exhausted { op = "client.send"; attempts; last }) ->
      attempts = F.default_attempts && E.is_transient last)

let test_client_recovers_from_transient_faults () =
  (* low fault probability: with 4 attempts per statement, the workload
     completes despite occasional injected drops *)
  let plan = F.make ~p_conn:0.2 ~seed:11 () in
  F.with_plan plan (fun () ->
      with_client (fun conn ->
          for _ = 1 to 20 do
            ignore (Dbclient.Client.query conn "SELECT id FROM sales")
          done));
  let drops = List.assoc "drop" (F.injected plan) in
  let garbles = List.assoc "garble" (F.injected plan) in
  Alcotest.(check bool) "some faults were actually injected" true
    (drops + garbles > 0)

(* ---------------- recorder line numbers ------------------------- *)

let decode_fails_at ~line data =
  try
    ignore (Dbclient.Recorder.decode data);
    false
  with E.Error (E.Decode_error { line = l; _ }) -> l = line

let test_decode_line_numbers () =
  Alcotest.(check bool) "garbage on line 2" true
    (decode_fails_at ~line:2 "S\t0\tQ\t0\t-\tSELECT 1\ngarbage");
  Alcotest.(check bool) "bad kind tag on line 1" true
    (decode_fails_at ~line:1 "S\t0\tZ\t0\t-\tSELECT 1");
  Alcotest.(check bool) "row before statement on line 1" true
    (decode_fails_at ~line:1 "R\t1");
  Alcotest.(check bool) "bad row value on line 2" true
    (decode_fails_at ~line:2 "S\t0\tQ\t0\t-\tSELECT 1\nR\tzzz");
  Alcotest.(check bool) "bad index on line 3" true
    (decode_fails_at ~line:3
       "S\t0\tQ\t0\t-\tSELECT 1\nR\ti1\nS\tnope\tQ\t0\t-\tSELECT 2")

(* ---------------- package corruption matrix --------------------- *)

(* a hand-built minimal package: checksummed sections *)
let sec name payload =
  Printf.sprintf "@%s %d %08lx\n%s\n" name (String.length payload)
    (F.Crc32.digest payload) payload

(* same section, deliberately wrong checksum *)
let bad_sec name payload =
  Printf.sprintf "@%s %d %08lx\n%s\n" name (String.length payload)
    (F.Crc32.digest (payload ^ "!")) payload

let minimal =
  sec "kind" "ptu" ^ sec "app" "a" ^ sec "binary" "/bin/a" ^ sec "trace" ""

let test_minimal_parses () =
  let pkg = Package.of_bytes minimal in
  Alcotest.(check bool) "kind" true (pkg.Package.kind = Package.Ptu_full);
  Alcotest.(check string) "app" "a" pkg.Package.app_name

let expect_error what data =
  match Package.of_bytes_result data with
  | Error e -> Some (E.to_string e)
  | Ok _ -> Alcotest.failf "%s: expected a structural error" what

let test_truncated_header () =
  Alcotest.(check bool) "cut mid-header" true
    (expect_error "header" "@kind 3" <> None);
  Alcotest.(check bool) "cut mid-payload" true
    (expect_error "payload"
       (String.sub minimal 0 (String.length minimal - 3))
    <> None);
  Alcotest.(check bool) "no header at all" true
    (expect_error "garbage" "ptu stuff" <> None)

let test_missing_sections () =
  (match Package.of_bytes_result (sec "kind" "ptu") with
  | Error (E.Package_malformed { what; _ }) ->
    Alcotest.(check string) "names the section" "missing section app" what
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected an error");
  Alcotest.(check bool) "missing trace" true
    (expect_error "trace" (sec "kind" "ptu" ^ sec "app" "a" ^ sec "binary" "b")
    <> None)

let test_bad_kind_tag () =
  match
    Package.of_bytes_result
      (sec "kind" "weird" ^ sec "app" "a" ^ sec "binary" "b" ^ sec "trace" "")
  with
  | Error (E.Package_malformed { what; _ }) ->
    Alcotest.(check string) "names the tag" "bad kind \"weird\"" what
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

let test_corrupt_content_section_skipped () =
  match
    Package.of_bytes_result
      (minimal ^ bad_sec "csv:t1" "1,2,3" ^ sec "csv:t2" "4,5,6")
  with
  | Ok { Package.r_pkg; r_skipped } ->
    (match r_skipped with
    | [ { Package.c_section = "csv:t1";
          c_error = E.Package_corrupt { section = "csv:t1"; _ } } ] ->
      ()
    | _ -> Alcotest.fail "expected exactly csv:t1 skipped");
    Alcotest.(check (list string)) "intact table survives" [ "t2" ]
      (List.map fst r_pkg.Package.db_subset);
    (* the strict entry point refuses the same bytes *)
    Alcotest.(check bool) "of_bytes is strict" true
      (try
         ignore (Package.of_bytes (minimal ^ bad_sec "csv:t1" "1,2,3"));
         false
       with E.Error (E.Package_corrupt _) -> true)
  | Error e -> Alcotest.failf "unexpected structural error: %s" (E.to_string e)

let test_corrupt_structural_section_fatal () =
  match
    Package.of_bytes_result
      (sec "kind" "ptu" ^ sec "app" "a" ^ sec "binary" "b" ^ bad_sec "trace" "t")
  with
  | Error (E.Package_corrupt { section = "trace"; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "corrupt trace must be fatal"

let test_legacy_headers_accepted () =
  (* pre-checksum packages (no crc token) still parse, unverified *)
  let legacy = "@kind 3\nptu\n@app 1\na\n@binary 2\n/b\n@trace 0\n\n" in
  let pkg = Package.of_bytes legacy in
  Alcotest.(check bool) "kind" true (pkg.Package.kind = Package.Ptu_full)

let test_real_roundtrip_with_checksums () =
  let pkg = Package.build (Lazy.force Ldv_fixtures.included) in
  match Package.of_bytes_result (Package.to_bytes pkg) with
  | Ok { Package.r_pkg; r_skipped = [] } ->
    Alcotest.(check int) "tables survive" (List.length pkg.Package.db_subset)
      (List.length r_pkg.Package.db_subset)
  | Ok _ -> Alcotest.fail "clean bytes must skip nothing"
  | Error e -> Alcotest.failf "clean bytes must parse: %s" (E.to_string e)

let test_random_corruption_never_uncaught () =
  (* the acceptance property at the parser level: random bit flips and
     truncations either parse (possibly degraded) or fail typed *)
  let data = Package.to_bytes (Package.build (Lazy.force Ldv_fixtures.included)) in
  for seed = 0 to 49 do
    let plan = F.make ~p_corrupt:1.0 ~seed () in
    F.with_plan plan (fun () ->
        let corrupted =
          match F.corrupt_package data with
          | Some (c, _) -> c
          | None -> Alcotest.fail "p_corrupt=1.0 must corrupt"
        in
        match Package.of_bytes_result corrupted with
        | Ok _ | Error _ -> ()
        | exception e ->
          Alcotest.failf "seed %d: uncaught %s" seed (Printexc.to_string e))
  done

(* ---------------- crash-safe writes ----------------------------- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_write_file_atomic () =
  let path = tmp_path "ldv-test-atomic.ldv" in
  let pkg = Package.of_bytes minimal in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Package.write_file pkg ~path;
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      Alcotest.(check bool) "no temp residue" false
        (Sys.file_exists (path ^ ".tmp"));
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let pkg' = Package.of_bytes data in
      Alcotest.(check string) "round-trips through disk"
        pkg.Package.app_name pkg'.Package.app_name)

let test_write_file_failure_leaves_nothing () =
  let path = tmp_path "ldv-test-atomic-fail.ldv" in
  (try Sys.remove path with Sys_error _ -> ());
  let pkg = Package.of_bytes minimal in
  let plan = F.make ~p_syscall:1.0 ~seed:21 () in
  Alcotest.(check bool) "write failure is typed" true
    (try
       F.with_plan plan (fun () -> Package.write_file pkg ~path);
       false
     with
    | E.Error (E.Io_fault _ | E.Retries_exhausted _) -> true);
  Alcotest.(check bool) "no destination created" false (Sys.file_exists path);
  Alcotest.(check bool) "no temp residue" false
    (Sys.file_exists (path ^ ".tmp"))

(* ---------------- the faultcheck harness ------------------------ *)

let small_audit mode =
  Ldv_fixtures.audit_at ~sf:0.0005 ~vid:"Q1-3" ~n_insert:4 ~n_update:2
    ~n_select:1 mode

let test_faultcheck_deterministic_and_contained () =
  let r1 = Faultcheck.run ~audit:small_audit ~campaigns:5 ~seed:3 in
  let r2 = Faultcheck.run ~audit:small_audit ~campaigns:5 ~seed:3 in
  Alcotest.(check string) "same seed, identical report"
    (Faultcheck.to_string r1) (Faultcheck.to_string r2);
  Alcotest.(check int) "no uncaught exceptions" 0 r1.Faultcheck.r_uncaught;
  Alcotest.(check int) "all kinds x campaigns ran" 15
    (List.length r1.Faultcheck.r_runs);
  (* the control campaign (profile 0) must verify cleanly for every kind *)
  List.iter
    (fun (r : Faultcheck.run) ->
      if r.Faultcheck.campaign = 0 then
        Alcotest.(check string)
          (Printf.sprintf "control verifies (%s)"
             (Faultcheck.kind_name r.Faultcheck.kind))
          "verified"
          (Faultcheck.outcome_label r.Faultcheck.outcome))
    r1.Faultcheck.r_runs

let test_faultcheck_seeds_differ () =
  let r1 = Faultcheck.run ~audit:small_audit ~campaigns:2 ~seed:1 in
  let r2 = Faultcheck.run ~audit:small_audit ~campaigns:2 ~seed:2 in
  (* different seeds draw different faults; the tallies differ *)
  Alcotest.(check bool) "reports are seed-sensitive" true
    (not (String.equal (Faultcheck.to_string r1) (Faultcheck.to_string r2)));
  Alcotest.(check int) "still no uncaught" 0
    (r1.Faultcheck.r_uncaught + r2.Faultcheck.r_uncaught)

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independence" `Quick
      test_prng_split_independent;
    Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
    Alcotest.test_case "retries recover" `Quick test_retries_recover;
    Alcotest.test_case "permanent errors immediate" `Quick
      test_retries_permanent_immediate;
    Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
    Alcotest.test_case "kernel injection typed" `Quick
      test_kernel_injection_typed;
    Alcotest.test_case "no plan, no faults" `Quick test_no_plan_no_faults;
    Alcotest.test_case "closed connection typed" `Quick
      test_client_closed_typed;
    Alcotest.test_case "transport faults exhaust retries" `Quick
      test_client_transport_faults_exhaust_retries;
    Alcotest.test_case "client recovers from transients" `Quick
      test_client_recovers_from_transient_faults;
    Alcotest.test_case "decode line numbers" `Quick test_decode_line_numbers;
    Alcotest.test_case "minimal package parses" `Quick test_minimal_parses;
    Alcotest.test_case "truncated headers" `Quick test_truncated_header;
    Alcotest.test_case "missing sections" `Quick test_missing_sections;
    Alcotest.test_case "bad kind tag" `Quick test_bad_kind_tag;
    Alcotest.test_case "corrupt content skipped" `Quick
      test_corrupt_content_section_skipped;
    Alcotest.test_case "corrupt structural fatal" `Quick
      test_corrupt_structural_section_fatal;
    Alcotest.test_case "legacy headers accepted" `Quick
      test_legacy_headers_accepted;
    Alcotest.test_case "real package roundtrip" `Quick
      test_real_roundtrip_with_checksums;
    Alcotest.test_case "random corruption never uncaught" `Quick
      test_random_corruption_never_uncaught;
    Alcotest.test_case "atomic write" `Quick test_write_file_atomic;
    Alcotest.test_case "failed write leaves nothing" `Quick
      test_write_file_failure_leaves_nothing;
    Alcotest.test_case "faultcheck deterministic" `Quick
      test_faultcheck_deterministic_and_contained;
    Alcotest.test_case "faultcheck seed sensitivity" `Quick
      test_faultcheck_seeds_differ ]
