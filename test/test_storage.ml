(* Storage-layer regressions from the 1M-tuple scaling work: scan-order
   stability of [scan_as_of], index maintenance across every MVCC
   mutation path (backfill, churn, transaction rollback, version
   restore), the empty-bucket invariant of the hash-index stats, and the
   delete-heavy workload that used to rebuild the live order
   quadratically. *)

open Minidb

let schema =
  Schema.of_list
    [ Schema.column "k" Value.Tint;
      Schema.column "grp" Value.Tint;
      Schema.column "s" Value.Tstr ]

let mk () = Table.create ~name:"t" ~schema

let row k grp s = [| Value.Int k; Value.Int grp; Value.Str s |]

let rids tvs = List.map (fun tv -> tv.Table.tid.Tid.rid) tvs

(* rids of the live rows whose column [pos] equals [v], ascending — the
   ground truth every index lookup is compared against *)
let scan_matching table pos v =
  Table.scan table
  |> List.filter (fun tv -> tv.Table.values.(pos) = v)
  |> rids |> List.sort compare

let check_integrity table =
  (match Table.check_index_integrity table with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "index integrity: %s" msg);
  ignore (Table.stats ~verify:true table)

(* every distinct live key answers an index_lookup equal to the filtered
   scan, and a key with no live rows answers nothing *)
let check_lookup_equivalence table ~column =
  let idx =
    match Table.index_on table ~column with
    | Some idx -> idx
    | None -> Alcotest.fail "hash index missing"
  in
  (* NULL keys are deliberately unindexed, so only non-NULL keys are
     required to round-trip through the index *)
  let keys =
    Table.scan table
    |> List.filter_map (fun tv ->
           let v = tv.Table.values.(column) in
           if Value.is_null v then None else Some v)
    |> List.sort_uniq compare
  in
  List.iter
    (fun v ->
      Alcotest.(check (list int))
        (Printf.sprintf "lookup %s = filtered scan" (Value.to_string v))
        (scan_matching table column v)
        (rids (Table.index_lookup table idx v) |> List.sort compare))
    keys;
  Alcotest.(check (list int))
    "dead key finds nothing" []
    (rids (Table.index_lookup table idx (Value.Int (-12345))))

(* ------------------------------------------------------------------ *)
(* scan_as_of returns ascending rids even after updates moved a row to
   the back of the version history                                      *)

let test_scan_as_of_ascending_rids () =
  let t = mk () in
  for k = 1 to 5 do
    ignore (Table.insert t ~clock:k (row k (k mod 2) (Printf.sprintf "v%d" k)))
  done;
  (* rewrite rid 2 then rid 1: their latest versions are now the newest
     entries in the history, which used to leak into the scan order *)
  ignore (Table.update t ~clock:6 ~rid:2 (row 2 0 "v2'"));
  ignore (Table.update t ~clock:7 ~rid:1 (row 1 1 "v1'"));
  let past = Table.scan_as_of t ~at:5 in
  Alcotest.(check (list int)) "pre-update snapshot ascending" [ 1; 2; 3; 4; 5 ]
    (rids past);
  Alcotest.(check string) "pre-update value" "v1"
    (match (List.hd past).Table.values.(2) with
    | Value.Str s -> s
    | _ -> "?");
  let now = Table.scan_as_of t ~at:10 in
  Alcotest.(check (list int)) "post-update snapshot ascending" [ 1; 2; 3; 4; 5 ]
    (rids now);
  Alcotest.(check string) "updated row read back in place" "v1'"
    (match (List.hd now).Table.values.(2) with
    | Value.Str s -> s
    | _ -> "?")

(* ------------------------------------------------------------------ *)
(* index maintenance across the MVCC mutation paths                    *)

let test_backfill_and_churn () =
  let t = mk () in
  for k = 1 to 40 do
    ignore (Table.insert t ~clock:k (row k (k mod 7) (Printf.sprintf "v%d" k)))
  done;
  (* a NULL key must stay out of both index kinds *)
  ignore
    (Table.insert t ~clock:41 [| Value.Int 41; Value.Null; Value.Str "n" |]);
  Table.create_index t ~index_name:"t_grp" ~column:"grp";
  Table.create_index ~ordered:true t ~index_name:"t_k" ~column:"k";
  check_integrity t;
  check_lookup_equivalence t ~column:1;
  (* churn: updates move keys between buckets, deletes empty some *)
  for k = 1 to 40 do
    if k mod 3 = 0 then ignore (Table.delete t ~clock:(100 + k) ~rid:k)
    else if k mod 3 = 1 then
      ignore (Table.update t ~clock:(100 + k) ~rid:k (row k (k mod 5) "u"))
  done;
  check_integrity t;
  check_lookup_equivalence t ~column:1;
  (* the ordered index agrees with the live scan over any range *)
  let oidx =
    match Table.ordered_index_on t ~column:0 with
    | Some o -> o
    | None -> Alcotest.fail "ordered index missing"
  in
  let in_range =
    Table.scan t
    |> List.filter (fun tv ->
           match tv.Table.values.(0) with
           | Value.Int k -> k >= 10 && k <= 30
           | _ -> false)
    |> rids |> List.sort compare
  in
  Alcotest.(check (list int)) "range lookup = filtered scan" in_range
    (rids
       (Table.range_lookup t oidx
          ~lo:(Some (Value.Int 10, true))
          ~hi:(Some (Value.Int 30, true))))

(* deleting every row of a key must drop its bucket, so the distinct
   count the planner reads stays equal to the live distinct keys *)
let test_empty_buckets_dropped () =
  let t = mk () in
  Table.create_index t ~index_name:"t_grp" ~column:"grp";
  for k = 1 to 12 do
    ignore (Table.insert t ~clock:k (row k (k mod 4) "x"))
  done;
  Alcotest.(check (option int)) "4 distinct keys" (Some 4)
    (Table.distinct_on t ~column:1);
  (* retire every grp=0 row (rids 4, 8, 12) *)
  List.iter (fun rid -> ignore (Table.delete t ~clock:(20 + rid) ~rid)) [ 4; 8; 12 ];
  Alcotest.(check (option int)) "bucket dropped with its last row" (Some 3)
    (Table.distinct_on t ~column:1);
  check_integrity t;
  (* updates that move the last row out of a key drop that bucket too:
     rids 2, 6, 10 are the grp=2 rows; moving them to grp=1 empties it *)
  List.iter
    (fun rid -> ignore (Table.update t ~clock:(40 + rid) ~rid (row rid 1 "y")))
    [ 2; 6; 10 ];
  Alcotest.(check (option int)) "update-vacated bucket dropped" (Some 2)
    (Table.distinct_on t ~column:1);
  check_integrity t

let test_rollback_keeps_indexes () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE acc (id INT, grp INT, note TEXT)");
  ignore (Database.exec db "CREATE INDEX acc_grp ON acc (grp)");
  ignore (Database.exec db "CREATE ORDERED INDEX acc_id ON acc (id)");
  for k = 1 to 10 do
    ignore
      (Database.exec db
         (Printf.sprintf "INSERT INTO acc VALUES (%d, %d, 'v%d')" k (k mod 3) k))
  done;
  let table = Catalog.find (Database.catalog db) "acc" in
  let before = scan_matching table 1 (Value.Int 1) in
  ignore (Database.exec db "BEGIN");
  ignore (Database.exec db "INSERT INTO acc VALUES (11, 1, 'tx')");
  ignore (Database.exec db "UPDATE acc SET grp = 1 WHERE id = 3");
  ignore (Database.exec db "DELETE FROM acc WHERE id = 4");
  ignore (Database.exec db "ROLLBACK");
  (* the abort unlink/relink path must leave every index consistent *)
  check_integrity table;
  check_lookup_equivalence table ~column:1;
  Alcotest.(check (list int)) "grp=1 membership restored" before
    (scan_matching table 1 (Value.Int 1));
  let r = Database.query db "SELECT COUNT(*) FROM acc WHERE grp = 1" in
  Alcotest.(check int) "indexed count matches" (List.length before)
    (match (List.hd r.Executor.rows).Executor.values.(0) with
    | Value.Int n -> n
    | _ -> -1)

let test_restore_version_maintains_indexes () =
  let t = mk () in
  Table.create_index t ~index_name:"t_grp" ~column:"grp";
  Table.create_index ~ordered:true t ~index_name:"t_k" ~column:"k";
  (* checkpoint-style restore: out-of-order rids, then a superseding
     newer version of rid 3 that changes its indexed keys *)
  ignore (Table.restore_version t ~rid:3 ~version:2 (row 3 0 "a"));
  ignore (Table.restore_version t ~rid:1 ~version:1 (row 1 1 "b"));
  ignore (Table.restore_version t ~rid:5 ~version:4 (row 5 0 "c"));
  ignore (Table.restore_version t ~rid:3 ~version:7 (row 30 2 "a2"));
  check_integrity t;
  check_lookup_equivalence t ~column:1;
  Alcotest.(check (list int)) "superseded key vacated" []
    (scan_matching t 0 (Value.Int 3));
  Alcotest.(check (list int)) "ascending scan over restored rids" [ 1; 3; 5 ]
    (rids (Table.scan t))

(* ------------------------------------------------------------------ *)
(* delete-heavy workload: 10k inserts then 10k deletes used to rebuild
   the live-order list per delete (quadratic); it must now finish well
   inside the tier-1 timeout                                            *)

let test_delete_heavy_workload () =
  let n = 10_000 in
  let t = mk () in
  Table.create_index t ~index_name:"t_grp" ~column:"grp";
  let t0 = Unix.gettimeofday () in
  for k = 1 to n do
    ignore (Table.insert t ~clock:k (row k (k mod 13) "x"))
  done;
  (* interleave scans so a quadratic rebuild would surface as seconds *)
  for k = 1 to n do
    ignore (Table.delete t ~clock:(n + k) ~rid:k);
    if k mod 1000 = 0 then ignore (Table.scan t)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all rows gone" 0 (Table.row_count t);
  Alcotest.(check (list int)) "empty scan" [] (rids (Table.scan t));
  check_integrity t;
  if dt > 5.0 then
    Alcotest.failf "delete-heavy workload took %.1fs (quadratic rebuild?)" dt

let suite =
  [ Alcotest.test_case "scan_as_of ascending rids" `Quick
      test_scan_as_of_ascending_rids;
    Alcotest.test_case "backfill and churn" `Quick test_backfill_and_churn;
    Alcotest.test_case "empty buckets dropped" `Quick
      test_empty_buckets_dropped;
    Alcotest.test_case "rollback keeps indexes" `Quick
      test_rollback_keeps_indexes;
    Alcotest.test_case "restore_version maintains indexes" `Quick
      test_restore_version_maintains_indexes;
    Alcotest.test_case "delete-heavy workload" `Slow
      test_delete_heavy_workload ]
