(* Report formatting helpers: unit boundaries. *)

open Ldv_core

let check_bytes expect n =
  Alcotest.(check string) (string_of_int n) expect (Report.human_bytes n)

let check_seconds expect s =
  Alcotest.(check string) (Printf.sprintf "%g" s) expect (Report.seconds s)

let test_human_bytes () =
  check_bytes "0 B" 0;
  check_bytes "999 B" 999;
  check_bytes "1.0 KB" 1000;
  check_bytes "1.5 KB" 1500;
  check_bytes "1000.0 KB" 999_999;
  check_bytes "1.00 MB" 1_000_000;
  check_bytes "38.00 MB" 38_000_000;
  check_bytes "1.00 GB" 1_000_000_000

let test_seconds () =
  check_seconds "1.000 s" 1.0;
  check_seconds "12.340 s" 12.34;
  check_seconds "999.000 ms" 0.999;
  check_seconds "1.000 ms" 1e-3;
  check_seconds "999.0 us" 999e-6;
  check_seconds "0.5 us" 5e-7;
  check_seconds "0.0 us" 0.0

let suite =
  [ Alcotest.test_case "human_bytes boundaries" `Quick test_human_bytes;
    Alcotest.test_case "seconds boundaries" `Quick test_seconds ]
