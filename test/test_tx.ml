(* Interactive MVCC transactions: cross-session visibility, first-
   updater-wins conflicts, the client-side bounded-retry loop, the
   audit/package/replay chain for commit/abort decisions, and the
   txcheck recovery campaign. *)

open Minidb
module I = Dbclient.Interceptor
module F = Ldv_faults
module E = Ldv_errors
open Ldv_core

let mk_db () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (id INT, body TEXT)");
  ignore (Database.exec db "INSERT INTO t VALUES (1, 'one')");
  db

let count db =
  match Database.query db "SELECT COUNT(*) FROM t" with
  | { Executor.rows = [ { Executor.values = [| Value.Int n |]; _ } ]; _ } -> n
  | _ -> Alcotest.fail "count query failed"

(* ---------------- engine-level MVCC ------------------------------ *)

(* A transaction sees its own writes plus the begin snapshot; other
   sessions see neither until COMMIT, and writes committed after the
   begin stay invisible inside it. *)
let test_cross_session_visibility () =
  let db = mk_db () in
  ignore (Database.exec db "BEGIN");
  let a = Database.current_tx db in
  ignore (Database.exec db "INSERT INTO t VALUES (2, 'two')");
  Alcotest.(check int) "own uncommitted write visible inside" 2 (count db);
  Database.set_current_tx db 0;
  Alcotest.(check int) "uncommitted write invisible outside" 1 (count db);
  (* a commit that lands after [a]'s begin snapshot *)
  ignore (Database.exec db "INSERT INTO t VALUES (3, 'three')");
  Alcotest.(check int) "autocommit sees its own commit" 2 (count db);
  Database.set_current_tx db a;
  Alcotest.(check int) "later commit invisible to the begin snapshot" 2
    (count db);
  ignore (Database.exec db "COMMIT");
  Alcotest.(check int) "all three visible after commit" 3 (count db)

(* First-updater-wins: the second transaction to touch a row already
   written by a live transaction aborts immediately with a typed
   serialization failure. *)
let test_first_updater_wins () =
  let db = mk_db () in
  ignore (Database.exec db "INSERT INTO t VALUES (2, 'two')");
  ignore (Database.exec db "BEGIN");
  let a = Database.current_tx db in
  ignore (Database.exec db "UPDATE t SET body = 'a' WHERE id = 1");
  Database.set_current_tx db 0;
  ignore (Database.exec db "BEGIN");
  Alcotest.(check bool) "second updater aborts" true
    (try
       ignore (Database.exec db "UPDATE t SET body = 'b' WHERE id = 1");
       false
     with Errors.Db_error (Errors.Serialization_failure _) -> true);
  (* a disjoint row is not contended *)
  ignore (Database.exec db "UPDATE t SET body = 'b2' WHERE id = 2");
  ignore (Database.exec db "COMMIT");
  Database.set_current_tx db a;
  ignore (Database.exec db "COMMIT");
  match Database.query db "SELECT body FROM t WHERE id = 1" with
  | { Executor.rows = [ { Executor.values = [| Value.Str s |]; _ } ]; _ } ->
    Alcotest.(check string) "first updater's write survives" "a" s
  | _ -> Alcotest.fail "body query failed"

(* The conflict loser also aborts when the winner has already committed
   a version newer than the loser's begin snapshot (no lost update). *)
let test_no_lost_update_after_commit () =
  let db = mk_db () in
  ignore (Database.exec db "BEGIN");
  let a = Database.current_tx db in
  Database.set_current_tx db 0;
  ignore (Database.exec db "UPDATE t SET body = 'winner' WHERE id = 1");
  Database.set_current_tx db a;
  Alcotest.(check bool) "stale snapshot updater aborts" true
    (try
       ignore (Database.exec db "UPDATE t SET body = 'loser' WHERE id = 1");
       false
     with Errors.Db_error (Errors.Serialization_failure _) -> true);
  Database.rollback_tx db

(* ---------------- typed Tx_state warnings (server) --------------- *)

(* Transaction-state misuse surfaces as a typed warning through
   [on_warning] (like Wal_torn), plus an error response to the client. *)
let test_tx_state_warning_surfaced () =
  let kernel = Minios.Kernel.create () in
  let db = Database.create () in
  let server = Dbclient.Server.install kernel db in
  let warned = ref None in
  let prev = !E.on_warning in
  E.on_warning := (fun e -> warned := Some e);
  let resp =
    Fun.protect
      ~finally:(fun () -> E.on_warning := prev)
      (fun () ->
        Dbclient.Server.handle server
          (Dbclient.Protocol.Statement { sql = "COMMIT" }))
  in
  (match resp with
  | Dbclient.Protocol.Error_response _ -> ()
  | _ -> Alcotest.fail "expected an error response");
  Alcotest.(check bool) "typed Tx_state warning fired" true
    (match !warned with Some (E.Tx_state _) -> true | _ -> false)

(* ---------------- tx-outcome derivation -------------------------- *)

let ev sid sql_norm =
  { I.qid = 0;
    sid;
    pid = 0;
    sql = sql_norm;
    sql_norm;
    kind = I.Sddl;
    t_start = 0;
    t_end = 0;
    snapshot = 0;
    replica = -1;
    results = [];
    reads = [];
    schema = None;
    rows = [];
    affected = 0;
    response_bytes = 0 }

let outcome =
  Alcotest.testable
    (fun fmt (sid, n, o) ->
      Format.fprintf fmt "%d.%d=%s" sid n (Audit.tx_outcome_name o))
    ( = )

let test_tx_outcomes_derivation () =
  let stmts =
    [ ev 0 "BEGIN"; ev 0 "INSERT INTO t VALUES (1)"; ev 0 "COMMIT";
      ev 0 "BEGIN";
      (* session 0's second tx never closes: conflict-aborted, no retry *)
      ev 1 "BEGIN"; ev 1 "ROLLBACK";
      (* session 1's second tx is conflict-aborted, then retried *)
      ev 1 "BEGIN"; ev 1 "BEGIN"; ev 1 "COMMIT" ]
  in
  Alcotest.(check (list outcome))
    "per-session ordinals and outcomes"
    [ (0, 1, Audit.Tx_committed);
      (0, 2, Audit.Tx_aborted);
      (1, 1, Audit.Tx_rolled_back);
      (1, 2, Audit.Tx_retried);
      (1, 3, Audit.Tx_committed) ]
    (Audit.tx_outcomes stmts)

(* ---------------- concurrent audited tx workload ----------------- *)

let has o outcomes = List.exists (fun (_, _, x) -> x = o) outcomes

let test_audited_tx_conflicts_and_determinism () =
  let a1 = Concurrent.audited_tx ~sessions:4 ~rounds:6 ~seed:3 () in
  let o1 = Audit.tx_outcomes (Audit.stmts a1) in
  Alcotest.(check bool) "transactions recorded" true (List.length o1 > 0);
  Alcotest.(check bool) "commits recorded" true (has Audit.Tx_committed o1);
  Alcotest.(check bool) "explicit rollbacks recorded" true
    (has Audit.Tx_rolled_back o1);
  Alcotest.(check bool) "genuine conflicts aborted and retried" true
    (has Audit.Tx_retried o1);
  let a2 = Concurrent.audited_tx ~sessions:4 ~rounds:6 ~seed:3 () in
  Alcotest.(check (list outcome))
    "same seed, same commit/abort decisions" o1
    (Audit.tx_outcomes (Audit.stmts a2))

let test_tx_package_records_outcomes () =
  let audit = Concurrent.audited_tx ~sessions:4 ~rounds:6 ~seed:3 () in
  let pkg = Package.build audit in
  Alcotest.(check (list outcome))
    "package metadata round-trips the outcomes"
    (Audit.tx_outcomes (Audit.stmts audit))
    (Package.tx_outcomes pkg)

let test_tx_replay_reproduces_decisions () =
  let audit = Concurrent.audited_tx ~sessions:3 ~rounds:5 ~seed:7 () in
  let pkg = Package.build audit in
  (match Package.schedule pkg with
  | Some (_, clients) -> Concurrent.register_schedule_clients clients
  | None -> Alcotest.fail "concurrent package lost its schedule");
  let r = Replay.execute pkg in
  Alcotest.(check (list string))
    "replay verifies: outputs, fingerprints, tx decisions" []
    (Replay.verify ~audit r);
  Alcotest.(check (list outcome))
    "replayed stream derives the recorded outcomes"
    (Package.tx_outcomes pkg)
    (Audit.tx_outcomes (Audit.merge_logs r.Replay.sessions))

(* ---------------- abort injection + bounded retry ---------------- *)

let test_abort_injection_retries () =
  let plan = F.make ~p_abort:0.25 ~seed:17 () in
  let audit =
    F.with_plan plan (fun () ->
        Concurrent.audited_tx ~sessions:2 ~rounds:5 ~seed:11 ())
  in
  let injected = List.assoc "abort" (F.injected plan) in
  Alcotest.(check bool) "abort faults injected" true (injected > 0);
  let outcomes = Audit.tx_outcomes (Audit.stmts audit) in
  Alcotest.(check bool) "injected conflicts were retried" true
    (has Audit.Tx_retried outcomes);
  Alcotest.(check bool) "workload still commits through retries" true
    (has Audit.Tx_committed outcomes)

(* ---------------- txcheck campaign ------------------------------- *)

let test_txcheck_deterministic_and_verified () =
  let r1 = Txcheck.run ~sessions:4 ~campaigns:4 ~seed:123 () in
  let r2 = Txcheck.run ~sessions:4 ~campaigns:4 ~seed:123 () in
  Alcotest.(check string) "same seed, identical report" (Txcheck.to_string r1)
    (Txcheck.to_string r2);
  Alcotest.(check int) "no divergence" 0 r1.Txcheck.r_divergent;
  Alcotest.(check int) "no uncaught exceptions" 0 r1.Txcheck.r_uncaught;
  Alcotest.(check bool) "crashes actually happened and verified" true
    (List.exists
       (fun (r : Txcheck.run) ->
         match r.Txcheck.outcome with Txcheck.Verified _ -> true | _ -> false)
       r1.Txcheck.r_runs)

let suite =
  [ Alcotest.test_case "mvcc: cross-session visibility" `Quick
      test_cross_session_visibility;
    Alcotest.test_case "mvcc: first updater wins" `Quick
      test_first_updater_wins;
    Alcotest.test_case "mvcc: no lost update after commit" `Quick
      test_no_lost_update_after_commit;
    Alcotest.test_case "server: Tx_state warning surfaced" `Quick
      test_tx_state_warning_surfaced;
    Alcotest.test_case "audit: tx outcome derivation" `Quick
      test_tx_outcomes_derivation;
    Alcotest.test_case "audit: conflicts + determinism" `Quick
      test_audited_tx_conflicts_and_determinism;
    Alcotest.test_case "package: records tx outcomes" `Quick
      test_tx_package_records_outcomes;
    Alcotest.test_case "replay: reproduces commit/abort decisions" `Quick
      test_tx_replay_reproduces_decisions;
    Alcotest.test_case "faults: abort injection + bounded retry" `Quick
      test_abort_injection_retries;
    Alcotest.test_case "txcheck: deterministic and verified" `Quick
      test_txcheck_deterministic_and_verified ]
