open Minios

let test_clock_ticks_on_syscalls () =
  let k = Kernel.create () in
  let c0 = Kernel.now k in
  Vfs.write_string (Kernel.vfs k) ~path:"/f" "data";
  ignore
    (Program.run k ~name:"reader" (fun env ->
         ignore (Program.read_file env "/f")));
  Alcotest.(check bool) "clock advanced" true (Kernel.now k > c0);
  Kernel.advance_to k ~at:10_000;
  Alcotest.(check int) "advance_to" 10_000 (Kernel.now k);
  Kernel.advance_to k ~at:1;
  Alcotest.(check int) "never rewinds" 10_000 (Kernel.now k)

let test_spawn_tree () =
  let k = Kernel.create () in
  let seen = ref [] in
  Kernel.set_tracer k (Some (fun e -> seen := e :: !seen));
  ignore
    (Program.run k ~name:"parent" (fun env ->
         ignore
           (Program.spawn env ~name:"child" (fun env' ->
                ignore
                  (Program.spawn env' ~name:"grandchild" (fun _ -> ()))))));
  let spawns =
    List.filter_map
      (function
        | Syscall.Spawned { pid; parent; name; _ } -> Some (pid, parent, name)
        | _ -> None)
      (List.rev !seen)
  in
  Alcotest.(check (list (triple int (option int) string)))
    "three processes with correct parents"
    [ (1, None, "parent"); (2, Some 1, "child"); (3, Some 2, "grandchild") ]
    spawns

let test_file_io_via_syscalls () =
  let k = Kernel.create () in
  ignore
    (Program.run k ~name:"writer" (fun env ->
         Program.write_file env "/out/x.txt" "payload"));
  Alcotest.(check string) "file written through syscalls" "payload"
    (Vfs.read (Kernel.vfs k) "/out/x.txt")

let test_open_missing_file_fails () =
  let k = Kernel.create () in
  Alcotest.(check bool) "missing file open fails with typed ENOENT" true
    (try
       ignore
         (Program.run k ~name:"r" (fun env ->
              ignore (Program.open_in_file env "/nope")));
       false
     with
    | Ldv_errors.Error
        (Ldv_errors.Io_fault { fault = Ldv_errors.Enoent; path = "/nope"; _ })
      -> true)

let test_write_mode_read_fails () =
  let k = Kernel.create () in
  Alcotest.(check bool) "reading a write fd fails" true
    (try
       ignore
         (Program.run k ~name:"w" (fun env ->
              let fd = Program.open_out_file env "/f" in
              ignore (Program.read_fd env fd)));
       false
     with Invalid_argument _ -> true)

let test_leaked_fds_closed_on_exit () =
  let k = Kernel.create () in
  let events = ref [] in
  Kernel.set_tracer k (Some (fun e -> events := e :: !events));
  Vfs.write_string (Kernel.vfs k) ~path:"/f" "x";
  ignore
    (Program.run k ~name:"leaky" (fun env ->
         (* open without closing *)
         ignore (Program.open_in_file env "/f")));
  let closes =
    List.filter (function Syscall.Closed _ -> true | _ -> false) !events
  in
  Alcotest.(check int) "close emitted at exit" 1 (List.length closes)

let test_binary_and_libs_recorded_as_reads () =
  let k = Kernel.create () in
  Vfs.write_opaque (Kernel.vfs k) ~path:"/bin/app" 100;
  Vfs.write_opaque (Kernel.vfs k) ~path:"/lib/libc.so" 200;
  let events = ref [] in
  Kernel.set_tracer k (Some (fun e -> events := e :: !events));
  ignore
    (Program.run k ~name:"app" ~binary:"/bin/app" ~libs:[ "/lib/libc.so" ]
       (fun _ -> ()));
  let opened =
    List.filter_map
      (function Syscall.Opened { path; _ } -> Some path | _ -> None)
      (List.rev !events)
  in
  Alcotest.(check (list string)) "loader reads observed"
    [ "/bin/app"; "/lib/libc.so" ] opened

let test_program_registry () =
  Program.register ~name:"test-registered" (fun _ -> ());
  let (_ : Program.program) = Program.lookup "test-registered" in
  Alcotest.(check bool) "unknown program fails" true
    (try
       let (_ : Program.program) = Program.lookup "no-such-program" in
       false
     with Invalid_argument _ -> true)

let test_exit_is_recorded_even_on_exception () =
  let k = Kernel.create () in
  let events = ref [] in
  Kernel.set_tracer k (Some (fun e -> events := e :: !events));
  (try
     ignore (Program.run k ~name:"crasher" (fun _ -> failwith "boom"))
   with Failure _ -> ());
  let exits = List.filter (function Syscall.Exited _ -> true | _ -> false) !events in
  Alcotest.(check int) "exit recorded" 1 (List.length exits)

let suite =
  [ Alcotest.test_case "clock" `Quick test_clock_ticks_on_syscalls;
    Alcotest.test_case "spawn tree" `Quick test_spawn_tree;
    Alcotest.test_case "file io" `Quick test_file_io_via_syscalls;
    Alcotest.test_case "open missing file" `Quick test_open_missing_file_fails;
    Alcotest.test_case "mode enforcement" `Quick test_write_mode_read_fails;
    Alcotest.test_case "leaked fds" `Quick test_leaked_fds_closed_on_exit;
    Alcotest.test_case "loader reads" `Quick test_binary_and_libs_recorded_as_reads;
    Alcotest.test_case "program registry" `Quick test_program_registry;
    Alcotest.test_case "exit on exception" `Quick test_exit_is_recorded_even_on_exception ]
