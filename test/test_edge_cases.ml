(* Edge cases and error paths across the stack. *)

open Minidb

let q = Database.query

let small () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE t (x INT, s TEXT)");
  ignore
    (Database.exec db "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)");
  db

(* ---------------- executor corners ---------------- *)

let test_limit_zero_and_overshoot () =
  let db = small () in
  Fixtures.check_rows "limit 0" [] (q db "SELECT x FROM t LIMIT 0");
  Fixtures.check_rows "limit beyond size" [ "1"; "2"; "3" ]
    (q db "SELECT x FROM t LIMIT 99")

let test_group_by_null_key () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE g (k TEXT, v INT)");
  ignore
    (Database.exec db
       "INSERT INTO g VALUES (NULL, 1), (NULL, 2), ('a', 3)");
  (* NULL keys form a single group, as in SQL GROUP BY *)
  Fixtures.check_rows "null group collapses" [ "|3"; "a|3" ]
    (q db "SELECT k, sum(v) FROM g GROUP BY k")

let test_aggregate_all_nulls () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE n (v INT)");
  ignore (Database.exec db "INSERT INTO n VALUES (NULL), (NULL)");
  Fixtures.check_rows "sum/avg/min over all-null" [ "2|0|||" ]
    (q db "SELECT count(*), count(v), sum(v), avg(v), min(v) FROM n")

let test_order_by_nulls_first () =
  let db = small () in
  let r = q db "SELECT s FROM t ORDER BY s" in
  Alcotest.(check (list string)) "nulls sort first ascending" [ ""; "a"; "b" ]
    (List.map
       (fun (row : Executor.arow) -> Value.to_raw_string row.Executor.values.(0))
       r.Executor.rows)

let test_self_join_aliases () =
  let db = small () in
  Fixtures.check_rows "self join pairs" [ "1|2"; "1|3"; "2|3" ]
    (q db "SELECT a.x, b.x FROM t a, t b WHERE a.x < b.x");
  (* self-join lineage: both versions of the same table appear *)
  let r = q db "SELECT a.x FROM t a, t b WHERE a.x = 1 AND b.x = 1" in
  (match r.Executor.rows with
  | [ row ] ->
    Alcotest.(check int) "one tuple, squared annotation" 1
      (Tid.Set.cardinal (Annotation.lineage row.Executor.ann))
  | _ -> Alcotest.fail "expected one row")

let test_empty_table_queries () =
  let db = Database.create () in
  ignore (Database.exec db "CREATE TABLE e (x INT)");
  Fixtures.check_rows "scan empty" [] (q db "SELECT x FROM e");
  Fixtures.check_rows "join with empty" []
    (q db "SELECT e.x FROM e, e e2");
  Fixtures.check_rows "group by over empty" []
    (q db "SELECT x, count(*) FROM e GROUP BY x")

let test_update_no_match_and_delete_all () =
  let db = small () in
  let info = Database.dml db "UPDATE t SET x = 0 WHERE x > 99" in
  Alcotest.(check int) "update matched nothing" 0 info.Database.count;
  let info = Database.dml db "DELETE FROM t" in
  Alcotest.(check int) "delete all" 3 info.Database.count;
  Fixtures.check_rows "empty now" [] (q db "SELECT x FROM t")

let test_insert_into_deleted_table_space () =
  let db = small () in
  ignore (Database.exec db "DELETE FROM t WHERE x = 2");
  let info = Database.dml db "INSERT INTO t VALUES (9, 'z')" in
  (* rid space is never reused *)
  List.iter
    (fun (tid, _) -> Alcotest.(check int) "fresh rid" 4 tid.Tid.rid)
    info.Database.deps

(* ---------------- parser / error positions ---------------- *)

let test_parse_error_position () =
  match Sql_parser.parse "SELECT a FROM" with
  | exception Errors.Db_error (Errors.Parse_error { position; _ }) ->
    Alcotest.(check bool) "position at end" true (position >= 13)
  | _ -> Alcotest.fail "expected parse error"

let test_error_to_string () =
  Alcotest.(check string) "renders kind"
    "unknown table \"zzz\""
    (Errors.to_string (Errors.Unknown_table "zzz"))

(* ---------------- trace deserialization robustness --------------- *)

let test_trace_deserialize_malformed () =
  Alcotest.(check bool) "malformed line rejected" true
    (try
       ignore (Prov.Trace.deserialize Prov.Combined.model "X\tgarbage\n");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "edge to unknown node rejected" true
    (try
       ignore
         (Prov.Trace.deserialize Prov.Combined.model
            "E\treadFrom\tfile:a\tproc:1\t1\t2\n");
       false
     with Invalid_argument _ -> true)

let test_package_of_bytes_malformed () =
  Alcotest.(check bool) "garbage rejected with a typed error" true
    (try
       ignore (Ldv_core.Package.of_bytes "not a package");
       false
     with Ldv_errors.Error (Ldv_errors.Package_malformed _) -> true);
  Alcotest.(check bool) "missing sections rejected with a typed error" true
    (try
       ignore (Ldv_core.Package.of_bytes "@kind 3\nptu\n");
       false
     with Ldv_errors.Error (Ldv_errors.Package_malformed _) -> true)

(* ---------------- interceptor under failing SQL ------------------ *)

let test_audit_survives_sql_errors () =
  let db = small () in
  let kernel = Minios.Kernel.create () in
  let server = Dbclient.Server.install kernel db in
  let session =
    Dbclient.Interceptor.create ~mode:Dbclient.Interceptor.Audit_excluded
      ~kernel server
  in
  (* a bad statement surfaces as an error response (as a real server
     would) and leaves the session usable *)
  (match Dbclient.Interceptor.execute session ~pid:1 "SELECT nope FROM t" with
  | Dbclient.Protocol.Error_response _ -> ()
  | _ -> Alcotest.fail "expected an error response");
  (match Dbclient.Interceptor.execute session ~pid:1 "SELECT x FROM t" with
  | Dbclient.Protocol.Result_set { rows; _ } ->
    Alcotest.(check int) "session still works" 3 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  (* and replay reproduces the failure faithfully *)
  let recording = Dbclient.Interceptor.recorded session in
  let replay_kernel = Minios.Kernel.create () in
  let replay_server = Dbclient.Server.install replay_kernel (Database.create ()) in
  let replay =
    Dbclient.Interceptor.create_replay ~kernel:replay_kernel replay_server
      recording
  in
  (match Dbclient.Interceptor.execute replay ~pid:1 "SELECT nope FROM t" with
  | Dbclient.Protocol.Error_response _ -> ()
  | _ -> Alcotest.fail "replay should reproduce the error");
  match Dbclient.Interceptor.execute replay ~pid:1 "SELECT x FROM t" with
  | Dbclient.Protocol.Result_set { rows; _ } ->
    Alcotest.(check int) "replayed rows" 3 (List.length rows)
  | _ -> Alcotest.fail "expected replayed rows"

(* ---------------- value formatting round trips ------------------- *)

let prop_sql_literal_roundtrip =
  (* rendering a string value as a SQL literal and parsing it back yields
     the same value: INSERT streams built by the workload rely on this *)
  QCheck.Test.make ~count:300 ~name:"SQL string literal roundtrip"
    (QCheck.make
       ~print:(fun s -> s)
       QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; '\''; ' '; 'z' ]) (int_bound 10)))
    (fun s ->
      let sql = Printf.sprintf "SELECT %s FROM t" (Value.to_string (Value.Str s)) in
      match Sql_parser.parse sql with
      | Sql_ast.Select { items = [ Sql_ast.Item (Sql_ast.Const v, _) ]; _ } ->
        Value.equal v (Value.Str s)
      | _ -> false)

let suite =
  [ Alcotest.test_case "limit corners" `Quick test_limit_zero_and_overshoot;
    Alcotest.test_case "group by null key" `Quick test_group_by_null_key;
    Alcotest.test_case "aggregates over nulls" `Quick test_aggregate_all_nulls;
    Alcotest.test_case "order by nulls" `Quick test_order_by_nulls_first;
    Alcotest.test_case "self join" `Quick test_self_join_aliases;
    Alcotest.test_case "empty tables" `Quick test_empty_table_queries;
    Alcotest.test_case "update/delete corners" `Quick test_update_no_match_and_delete_all;
    Alcotest.test_case "rid space not reused" `Quick test_insert_into_deleted_table_space;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "error rendering" `Quick test_error_to_string;
    Alcotest.test_case "trace deserialize errors" `Quick test_trace_deserialize_malformed;
    Alcotest.test_case "package bytes errors" `Quick test_package_of_bytes_malformed;
    Alcotest.test_case "audit survives sql errors" `Quick test_audit_survives_sql_errors;
    QCheck_alcotest.to_alcotest prop_sql_literal_roundtrip ]
