(* The overhead ledger and cluster/tx trace propagation: exclusive
   phase attribution with measured obs-self, streaming per-phase
   histograms, trace-carrying ship frames, replica applies joining the
   originating trace, linked tx.attempt retry chains, torn-sink
   tolerance, and the regression gates covering the new span names. *)

open Ldv_core
module Obs = Ldv_obs
module L = Ldv_obs.Ledger
module H = Ldv_obs.Histogram
module P = Ldv_obs.Profile
module R = Dbclient.Replication

(* Same harness as test_contention: clean in-memory collector,
   deterministic clock ticking 1.0 s per reading. *)
let with_memory f =
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink Obs.Null;
      Obs.set_clock Unix.gettimeofday;
      Obs.reset ();
      Obs.set_ring_capacity 65536)
    f

let tick_clock () =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      let v = !t in
      t := v +. 1.0;
      v)

let hist_sum (snap : Obs.snapshot) name =
  match List.assoc_opt name snap.Obs.histograms with
  | Some s -> s.H.s_sum
  | None -> 0.0

let hist_count (snap : Obs.snapshot) name =
  match List.assoc_opt name snap.Obs.histograms with
  | Some s -> s.H.s_count
  | None -> 0

let attr (sp : Obs.span) key =
  match List.assoc_opt key sp.Obs.sp_attrs with
  | Some v -> v
  | None -> Alcotest.failf "span %s misses attr %s" sp.Obs.sp_name key

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Exclusive phase attribution under the deterministic clock.          *)

let test_ledger_attribution () =
  with_memory @@ fun () ->
  tick_clock ();
  (* clock reads, in order (each read advances 1 s):
     stmt_begin t=0;
     parse frame t0=1 t1=2 t2=3 t3=4          -> parse 1, self 2
     plan  frame t0=5 t1=6
       exec frame t0=7 t1=8 t2=9 t3=10        -> exec 1, self +2, sub 3
     plan  t2=11 t3=12 -> body 11-6-3=2 (one boundary tick each side
                          of the nested frame), self +2
     stmt_end t=13 -> total 13 *)
  L.stmt_begin ();
  L.time L.Parse (fun () -> ());
  L.time L.Plan (fun () -> L.time L.Exec (fun () -> ()));
  L.stmt_end ();
  let snap = Obs.snapshot () in
  Alcotest.(check int) "one statement accounted" 1 (hist_count snap L.stmt_hist);
  feq "stmt total" 13.0 (hist_sum snap L.stmt_hist);
  feq "parse exclusive" 1.0 (hist_sum snap (L.hist_of_phase L.Parse));
  feq "plan keeps only its boundary ticks" 2.0
    (hist_sum snap (L.hist_of_phase L.Plan));
  feq "exec exclusive" 1.0 (hist_sum snap (L.hist_of_phase L.Exec));
  feq "obs-self measured" 6.0 (hist_sum snap (L.hist_of_phase L.Obs_self));
  feq "other is the remainder" 3.0 (hist_sum snap L.other_hist);
  (* every phase histogram counts every statement (zeros included) *)
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "phase %s counts the statement" (L.phase_name p))
        1
        (hist_count snap (L.hist_of_phase p)))
    L.phases;
  (* attribution telescopes: phases + other = total *)
  let attributed =
    List.fold_left
      (fun acc p -> acc +. hist_sum snap (L.hist_of_phase p))
      (hist_sum snap L.other_hist)
      L.phases
  in
  feq "phases + other = stmt total" (hist_sum snap L.stmt_hist) attributed

let test_ledger_disabled_is_noop () =
  Obs.set_sink Obs.Null;
  Obs.reset ();
  L.stmt_begin ();
  Alcotest.(check bool) "no account opened while disabled" false
    !L.current.L.l_active;
  Alcotest.(check int) "time is exactly a call to f" 41
    (L.time L.Exec (fun () -> 41));
  L.stmt_end ();
  (* an exception in the body still pops the frame *)
  Obs.set_sink Obs.Memory;
  Obs.reset ();
  L.stmt_begin ();
  (try L.time L.Exec (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "frame popped on exception" 0
    (List.length !L.current.L.l_stack);
  L.stmt_end ();
  Obs.set_sink Obs.Null;
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* A real concurrent audit fills the ledger, one account per statement. *)

let test_ledger_covers_audited_run () =
  with_memory @@ fun () ->
  ignore (Concurrent.audited ~replicas:2 ~sessions:4 ~statements:8 ~seed:42 ());
  let snap = Obs.snapshot () in
  Alcotest.(check int) "one account per statement" 32
    (hist_count snap L.stmt_hist);
  Alcotest.(check bool) "obs-self cost is measured and nonzero" true
    (hist_sum snap (L.hist_of_phase L.Obs_self) > 0.0);
  Alcotest.(check bool) "audit phases did work" true
    (hist_sum snap (L.hist_of_phase L.Provenance) > 0.0
    && hist_sum snap (L.hist_of_phase L.Audit_record) > 0.0);
  let attributed =
    List.fold_left
      (fun acc p -> acc +. hist_sum snap (L.hist_of_phase p))
      0.0 L.phases
  in
  Alcotest.(check bool) "attributed work fits inside statement wall time" true
    (attributed <= hist_sum snap L.stmt_hist +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ship frames carry the originating trace id.                         *)

let test_ship_frame_roundtrip () =
  let rec_ =
    { Dbclient.Wal.seq = 9; kind = Dbclient.Wal.Stmt; sid = 3;
      sql = "UPDATE notes SET body = 'x' WHERE id = 1" }
  in
  List.iter
    (fun tr ->
      let msg = { R.rec_; at = 17; tr } in
      match R.decode_ship (R.encode_ship msg) with
      | Some got ->
        Alcotest.(check int) "clock survives" 17 got.R.at;
        Alcotest.(check int) "trace id survives" tr got.R.tr;
        Alcotest.(check string) "payload survives" rec_.Dbclient.Wal.sql
          got.R.rec_.Dbclient.Wal.sql
      | None -> Alcotest.fail "ship frame did not decode")
    [ 0; 1; 42 ];
  (* a garbled frame is rejected, not misparsed *)
  Alcotest.(check bool) "garbage rejected" true
    (R.decode_ship "!not a frame" = None)

let test_replica_apply_joins_originating_trace () =
  with_memory @@ fun () ->
  ignore (Concurrent.audited ~replicas:2 ~sessions:4 ~statements:8 ~seed:42 ());
  let snap = Obs.snapshot () in
  let stmts = Obs.find_spans snap "db.stmt" in
  let applies = Obs.find_spans snap "repl.apply" in
  let ships = Obs.find_spans snap "repl.ship" in
  Alcotest.(check bool) "writes were shipped" true (ships <> []);
  Alcotest.(check bool) "replicas applied" true (applies <> []);
  let stmt_traces =
    List.sort_uniq compare
      (List.map (fun sp -> attr sp Obs.Trace.trace_attr) stmts)
  in
  List.iter
    (fun sp ->
      Alcotest.(check bool) "apply joins an originating statement trace" true
        (List.mem (attr sp Obs.Trace.trace_attr) stmt_traces);
      let node = int_of_string (attr sp "repl.node") in
      Alcotest.(check bool) "apply names its replica" true
        (node >= 0 && node < 2))
    applies;
  List.iter
    (fun sp ->
      ignore (attr sp "repl.node");
      ignore (attr sp Obs.Trace.trace_attr))
    ships

(* ------------------------------------------------------------------ *)
(* Retried transactions form one linked tx.attempt chain.              *)

let test_tx_attempt_chain () =
  with_memory @@ fun () ->
  (* seed 3 is the conflict-heavy interleaving test_tx pins down *)
  ignore (Concurrent.audited_tx ~sessions:4 ~rounds:6 ~seed:3 ());
  let snap = Obs.snapshot () in
  let attempts = Obs.find_spans snap "tx.attempt" in
  Alcotest.(check bool) "transactions ran under tx.attempt spans" true
    (attempts <> []);
  let by_id =
    List.map (fun (sp : Obs.span) -> (sp.Obs.sp_id, sp)) attempts
  in
  let retried =
    List.filter
      (fun (sp : Obs.span) -> List.mem_assoc "retry_of" sp.Obs.sp_attrs)
      attempts
  in
  Alcotest.(check bool) "the seed produced retries" true (retried <> []);
  List.iter
    (fun sp ->
      let prev_id = int_of_string (attr sp "retry_of") in
      match List.assoc_opt prev_id by_id with
      | None -> Alcotest.failf "retry_of %d is not a tx.attempt span" prev_id
      | Some prev ->
        Alcotest.(check string) "chain stays within one session"
          (attr prev Obs.Trace.session_attr)
          (attr sp Obs.Trace.session_attr);
        Alcotest.(check int) "attempt numbers are consecutive"
          (int_of_string (attr prev "tx.try") + 1)
          (int_of_string (attr sp "tx.try")))
    retried;
  (* first attempts carry no retry link *)
  List.iter
    (fun (sp : Obs.span) ->
      if int_of_string (attr sp "tx.try") = 1 then
        Alcotest.(check bool) "first attempt has no retry_of" false
          (List.mem_assoc "retry_of" sp.Obs.sp_attrs))
    attempts

(* ------------------------------------------------------------------ *)
(* Torn JSONL sink: a crash-truncated trailing line is a typed warning. *)

let test_torn_sink_tail () =
  let jsonl =
    with_memory @@ fun () ->
    tick_clock ();
    Obs.with_span "db.stmt" (fun () -> Obs.with_span "db.plan" (fun () -> ()));
    Obs.counter "db.stmt.select";
    Obs.to_jsonl (Obs.snapshot ())
  in
  let full = Obs.of_jsonl jsonl in
  let n_spans = List.length full.Obs.spans in
  (* truncate mid-way through the last line, as a crash would *)
  let torn = String.sub jsonl 0 (String.length jsonl - 8) in
  let warnings = ref [] in
  let prev = !Ldv_errors.on_warning in
  Ldv_errors.on_warning := (fun e -> warnings := e :: !warnings);
  Fun.protect ~finally:(fun () -> Ldv_errors.on_warning := prev) @@ fun () ->
  let snap = Obs.of_jsonl torn in
  (match !warnings with
  | [ Ldv_errors.Sink_torn { line; _ } ] ->
    let lines = List.length (String.split_on_char '\n' jsonl) - 1 in
    Alcotest.(check int) "warning names the torn line" lines line
  | ws ->
    Alcotest.failf "expected one Sink_torn warning, got %d" (List.length ws));
  Alcotest.(check bool) "the prefix decodes" true
    (List.length snap.Obs.spans >= n_spans - 1)

(* ------------------------------------------------------------------ *)
(* The regression gates cover the new span names.                      *)

let test_diff_budget_covers_tx_and_repl_spans () =
  with_memory @@ fun () ->
  tick_clock ();
  Obs.with_span "db.stmt" (fun () -> ());
  let snap_a = Obs.snapshot () in
  Obs.reset ();
  tick_clock ();
  Obs.with_span "db.stmt" (fun () -> ());
  Obs.with_span "tx.attempt" (fun () -> ());
  Obs.with_span "repl.apply" (fun () -> ());
  let snap_b = Obs.snapshot () in
  let rows = P.diff snap_a snap_b in
  List.iter
    (fun name ->
      match List.find_opt (fun (d : P.diff_row) -> d.P.d_name = name) rows with
      | None -> Alcotest.failf "diff misses the %s span" name
      | Some row ->
        Alcotest.(check bool)
          (Printf.sprintf "%s appearing with measurable time regresses" name)
          true
          (P.regressed ~budget_pct:10.0 row))
    [ "tx.attempt"; "repl.apply" ]

(* ------------------------------------------------------------------ *)
(* Same seed, byte-identical trace (and thus identical overhead and
   cluster-timeline reports, which are pure functions of the snapshot). *)

let test_same_seed_byte_identical () =
  let collect () =
    with_memory @@ fun () ->
    tick_clock ();
    ignore
      (Concurrent.audited ~replicas:2 ~sessions:4 ~statements:6 ~seed:42 ());
    Obs.to_jsonl (Obs.snapshot ())
  in
  let a = collect () in
  let b = collect () in
  Alcotest.(check bool) "replicated audit trace is byte-stable" true
    (String.equal a b)

let suite =
  [ Alcotest.test_case "ledger: exclusive attribution telescopes" `Quick
      test_ledger_attribution;
    Alcotest.test_case "ledger: disabled is a no-op; frames survive raises"
      `Quick test_ledger_disabled_is_noop;
    Alcotest.test_case "ledger: audited run fills every phase" `Quick
      test_ledger_covers_audited_run;
    Alcotest.test_case "replication: ship frames carry the trace id" `Quick
      test_ship_frame_roundtrip;
    Alcotest.test_case "replication: applies join the originating trace"
      `Quick test_replica_apply_joins_originating_trace;
    Alcotest.test_case "transactions: retries form a linked attempt chain"
      `Quick test_tx_attempt_chain;
    Alcotest.test_case "obs: torn sink tail warns and decodes the prefix"
      `Quick test_torn_sink_tail;
    Alcotest.test_case "obs diff: budget covers tx.* and repl.* spans" `Quick
      test_diff_budget_covers_tx_and_repl_spans;
    Alcotest.test_case "determinism: same seed, byte-identical trace" `Quick
      test_same_seed_byte_identical ]
