(** The application-facing DB client API (the libpq surface).

    The session bound to the kernel a program runs on decides whether its
    statements are executed, audited, or replayed — application code is
    identical across the original run, the audited run, and every replay
    mode. *)

open Minidb

type conn

(** Connect from the current process.
    @raise Invalid_argument when no session is bound to the kernel. *)
val connect : Minios.Program.env -> db:string -> conn

(** Run a statement, returning the raw protocol response.
    @raise Ldv_errors.Error with [Connection_closed] on a closed
    connection, or [Retries_exhausted] when an injected transport fault
    outlives the bounded retry loop. *)
val send : conn -> string -> Protocol.response

(** Run a SELECT; @raise Errors.Db_error on SQL errors. *)
val query_result : conn -> string -> Schema.t * Value.t array list

(** Run a SELECT and return just the rows. *)
val query : conn -> string -> Value.t array list

(** Run a DML/DDL statement, returning the affected-row count. *)
val exec : conn -> string -> int

(** Run [stmts] as one BEGIN..COMMIT transaction, retrying the whole block
    up to [attempts] times when a write-write conflict aborts it. Returns
    the committed attempt's total affected-row count.
    @raise Ldv_errors.Error with [Retries_exhausted] when every attempt
    aborts. *)
val transaction : ?attempts:int -> conn -> string list -> int

val close : conn -> unit
