(** WAL-shipping replication: one leader, N read replicas.

    The leader executes every write through its {!Durable} handle, appends
    the same CRC-framed WAL record to a retained ship log, and pushes the
    record to each live replica over the (simulated) network. A replica
    applies records strictly in sequence — out-of-order arrivals are
    stashed until the gap closes — and serves snapshot-pinned reads at its
    applied version with a frozen clock, so serving a read never perturbs
    the tuple-version stamps that must stay byte-identical with the
    leader's.

    Every ship frame carries the leader's logical clock as observed
    immediately before the shipped statement executed; the replica syncs
    to that clock before applying, so both nodes stamp the statement's
    tuple versions identically. That clock parity is what makes
    "byte-identical convergence" a checkable property rather than a hope.

    Failure model (all injection via {!Ldv_faults}):
    - the ship channel can drop, garble, or reorder frames
      ([ship_fault]); drops and garbles are retried under
      {!Ldv_faults.with_retries} (a garbled frame fails the replica-side
      CRC check and is resent), reorders are absorbed by the replica's
      sequence stash;
    - a replica can crash mid-apply (crash point [repl.apply]): its
      process loses unsynced state ({!Minios.Vfs.crash_under} restricted
      to its data directory, with a torn WAL tail), and recovery is the
      ordinary checkpoint + durable-WAL-redo path ({!Durable.recover})
      followed by catch-up resync from the leader's retained ship log —
      {!Wal.load}'s torn-tail handling plus {!Wal.durable_cut} find the
      resync start;
    - a push that exhausts its retries marks the replica [Lagging]: it
      stops receiving pushes (preserving apply order) and is repaired
      opportunistically by catch-up on a later write.

    Reads route round-robin across replicas; a replica that is down, mid
    transaction, or lagging beyond the staleness bound is skipped, and
    when no replica qualifies the read falls back to the leader
    ([repl.fallbacks]). A read served by a replica that lags within the
    bound is stale but never wrong: it is pinned at the replica's applied
    version, which the control verifier re-checks [AS OF] that version. *)

open Minidb

type state = Up | Lagging | Down

let state_name = function Up -> "up" | Lagging -> "lagging" | Down -> "down"

(* One shipped record: the WAL frame plus the leader clock observed right
   before the statement executed and the originating statement's trace id
   (0 = none), so replica-side apply spans join the statement's causal
   tree in the cluster timeline. *)
type ship_msg = { rec_ : Wal.record; at : int; tr : int }

type replica = {
  rep_id : int;
  rep_data_dir : string;
  mutable rep_durable : Durable.t;
  mutable rep_state : state;
  mutable rep_applied : int;  (** highest sequence folded into the DB *)
  mutable rep_delayed : ship_msg option;  (** held back by a reorder fault *)
  mutable rep_stash : ship_msg list;  (** out-of-order arrivals, by seq *)
  mutable rep_ckpt_due : int;  (** applies until the next local checkpoint *)
}

type t = {
  kernel : Minios.Kernel.t;
  leader : Durable.t;
  ship_log : string;
      (** retained copy of every shipped record — never truncated, so it
          is always a valid catch-up source *)
  clocks : (int, int) Hashtbl.t;  (** seq -> leader clock before execute *)
  traces : (int, int) Hashtbl.t;
      (** seq -> originating trace id, so catch-up re-ships frames with
          their original causal identity *)
  staleness : int;  (** max records of lag a replica may serve reads at *)
  torn : int -> int;  (** unsynced bytes -> surviving torn tail, per crash *)
  ckpt_every : int;
  replicas : replica array;
  mutable ship_seq : int;  (** last sequence appended to the ship log *)
  mutable rr : int;  (** round-robin read cursor *)
}

(* ------------------------------------------------------------------ *)
(* Canonical state fingerprints (convergence checking).                *)

(** Canonical dump of the full database state — clock, per-table next_rid
    and indexes, and every live tuple version — used for byte-identical
    convergence checks (and by [Crashcheck] for control-vs-recovered). *)
let state_fingerprint (db : Database.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "clock=%d\n" (Database.clock db));
  let catalog = Database.catalog db in
  List.iter
    (fun name ->
      let table = Catalog.find catalog name in
      Buffer.add_string buf
        (Printf.sprintf "table %s next_rid=%d indexes=[%s]\n" name
           table.Table.next_rid
           (String.concat ";"
              (List.sort String.compare (Table.index_names table))));
      let rows =
        List.map
          (fun (tv : Table.tuple_version) ->
            Printf.sprintf "  (%d,%d,[%s])" tv.Table.tid.Tid.rid
              tv.Table.tid.Tid.version
              (String.concat ";"
                 (Array.to_list
                    (Array.map Value.to_raw_string tv.Table.values))))
          (Table.scan table)
        |> List.sort String.compare
      in
      List.iter (fun r -> Buffer.add_string buf (r ^ "\n")) rows)
    (List.sort String.compare (Catalog.table_names catalog));
  Buffer.contents buf

(** First line where two fingerprints differ, labelled for the report. *)
let first_diff ~left ~right (a : string) (b : string) : string =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> "states differ"
    | x :: la', y :: lb' ->
      if String.equal x y then go (i + 1) la' lb'
      else
        Printf.sprintf "line %d: %s %S vs %s %S" i left (String.trim x) right
          (String.trim y)
    | x :: _, [] ->
      Printf.sprintf "%s has extra state: %S" left (String.trim x)
    | [], y :: _ ->
      Printf.sprintf "%s has extra state: %S" right (String.trim y)
  in
  go 1 la lb

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let leader_db t = Server.db (Durable.server t.leader)
let replica_db t i = Server.db (Durable.server t.replicas.(i).rep_durable)
let replica_count t = Array.length t.replicas
let staleness t = t.staleness
let ship_seq t = t.ship_seq
let leader t = t.leader
let replica_applied t i = t.replicas.(i).rep_applied
let replica_state t i = t.replicas.(i).rep_state
let lag t (rep : replica) = t.ship_seq - rep.rep_applied

let data_dir_of i = Printf.sprintf "/var/minidb/replica%d" i

(** Build a cluster of [replicas] read replicas behind [leader]. Each
    replica bootstraps from a base backup — the leader's current
    checkpoint image, persisted as the replica's own initial checkpoint so
    node-local crash recovery can rebuild from it — and then follows the
    ship stream. [staleness] bounds how many records behind a replica may
    be while still serving reads; [torn] maps a crashed replica's
    unsynced WAL byte count to the surviving torn-tail length (campaigns
    pass a seeded draw; the default loses everything unsynced). *)
let create (kernel : Minios.Kernel.t) ~(leader : Durable.t) ~replicas
    ?(staleness = 4) ?(torn = fun _ -> 0) ?(ckpt_every = 8) () : t =
  if replicas < 0 then invalid_arg "Replication.create: replicas < 0";
  let vfs = Minios.Kernel.vfs kernel in
  let ship_seq0 = Durable.next_seq leader - 1 in
  let base =
    Server.encode_checkpoint (Server.db (Durable.server leader))
      ~last_seq:ship_seq0
  in
  let reps =
    Array.init replicas (fun i ->
        let data_dir = data_dir_of i in
        (* persist the base backup as the replica's initial checkpoint:
           a crash before its first own checkpoint must not lose it *)
        Minios.Vfs.write_string vfs ~path:(data_dir ^ "/checkpoint.img") base;
        let db = Database.create () in
        ignore (Server.restore_checkpoint db base);
        let server = Server.attach ~data_dir db in
        let proc =
          Minios.Kernel.start_process kernel
            ~name:(Printf.sprintf "minidb-replica%d" i)
            ()
        in
        let d = Durable.start kernel server ~pid:proc.Minios.Kernel.pid in
        { rep_id = i;
          rep_data_dir = data_dir;
          rep_durable = d;
          rep_state = Up;
          rep_applied = ship_seq0;
          rep_delayed = None;
          rep_stash = [];
          rep_ckpt_due = 8 })
  in
  let t =
    { kernel;
      leader;
      ship_log = "/var/minidb/ship.log";
      clocks = Hashtbl.create 256;
      traces = Hashtbl.create 256;
      staleness;
      torn;
      ckpt_every;
      replicas = reps;
      ship_seq = ship_seq0;
      rr = 0 }
  in
  Ldv_obs.register_quantum_gauge "repl.lag" (fun () ->
      Array.fold_left
        (fun acc rep -> Float.max acc (float_of_int (lag t rep)))
        0.0 t.replicas);
  t

(* ------------------------------------------------------------------ *)
(* Ship frames: the WAL frame prefixed with the leader clock and the
   originating trace id.                                               *)

let encode_ship (msg : ship_msg) : string =
  Printf.sprintf "!%d %d\n%s" msg.at msg.tr (Wal.encode msg.rec_)

let decode_ship (frame : string) : ship_msg option =
  if String.length frame = 0 || frame.[0] <> '!' then None
  else
    match String.index_opt frame '\n' with
    | None -> None
    | Some nl -> (
      match
        String.split_on_char ' ' (String.sub frame 1 (nl - 1))
      with
      | [ at_s; tr_s ] -> (
        match (int_of_string_opt at_s, int_of_string_opt tr_s) with
        | Some at, Some tr -> (
          let rest =
            String.sub frame (nl + 1) (String.length frame - nl - 1)
          in
          match Wal.decode_frame rest with
          | Some rec_ -> Some { rec_; at; tr }
          | None -> None)
        | _ -> None)
      | _ -> None)

(* Deterministic single-byte corruption of a ship frame. *)
let garble (frame : string) ~seq : string =
  let b = Bytes.of_string frame in
  let off = seq * 131 mod Bytes.length b in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Replica-side apply.                                                 *)

let maybe_checkpoint (rep : replica) ~ckpt_every =
  rep.rep_ckpt_due <- rep.rep_ckpt_due - 1;
  if
    rep.rep_ckpt_due <= 0
    && not (Database.in_transaction (Server.db (Durable.server rep.rep_durable)))
  then begin
    Durable.checkpoint rep.rep_durable;
    rep.rep_ckpt_due <- ckpt_every
  end

(** Apply one shipped record at [rep], strictly in sequence: duplicates
    are dropped, gaps are stashed until the missing record arrives. The
    replica syncs its clock to the shipped leader clock first, so both
    nodes stamp this statement's tuple versions identically.
    @raise Ldv_faults.Crash when the [repl.apply] crash point detonates. *)
let rec apply t (rep : replica) (msg : ship_msg) : unit =
  Ldv_faults.crash_point ~site:"repl.apply";
  let seq = msg.rec_.Wal.seq in
  if seq <= rep.rep_applied then Ldv_obs.counter "repl.apply.dup"
  else if seq = rep.rep_applied + 1 then begin
    (* The apply span runs under the *originating* statement's trace id
       (carried by the frame), stamped with the answering node, so live
       pushes and asynchronous catch-up applies parent identically into
       the cluster-wide causal tree. *)
    let apply_body () =
      Ldv_obs.with_span
        ~attrs:[ ("repl.node", string_of_int rep.rep_id) ]
        "repl.apply"
        (fun () ->
          let db = Server.db (Durable.server rep.rep_durable) in
          Database.sync_clock db ~at:msg.at;
          ignore (Durable.exec rep.rep_durable msg.rec_.Wal.sql))
    in
    (if msg.tr > 0 && Ldv_obs.enabled () then begin
       let origin = Ldv_obs.Trace.make () in
       let prev = Ldv_obs.Trace.use origin in
       Ldv_obs.Trace.set_trace msg.tr;
       Fun.protect
         ~finally:(fun () ->
           ignore (Ldv_obs.Trace.use prev : Ldv_obs.Trace.ctx))
         apply_body
     end
     else apply_body ());
    rep.rep_applied <- seq;
    if Ldv_obs.enabled () then Ldv_obs.counter "repl.applied";
    maybe_checkpoint rep ~ckpt_every:t.ckpt_every;
    match rep.rep_stash with
    | m :: rest when m.rec_.Wal.seq <= rep.rep_applied + 1 ->
      rep.rep_stash <- rest;
      apply t rep m
    | _ -> ()
  end
  else begin
    (* gap: hold until the missing records arrive (reordered frames) *)
    rep.rep_stash <-
      List.sort_uniq
        (fun a b -> compare a.rec_.Wal.seq b.rec_.Wal.seq)
        (msg :: rep.rep_stash);
    Ldv_obs.counter "repl.apply.out_of_order"
  end

exception Reordered

(* One frame over the wire, through the fault gate, with retries: a
   dropped frame never arrives (transient — resent), a garbled frame
   fails the replica's CRC check (transient — resent), a reordered frame
   escapes as [Reordered] for the caller to delay. [op] labels the retry
   telemetry site: "repl.ship" for live pushes, "repl.catchup" for
   resync. *)
let deliver t (rep : replica) ~allow_reorder ~op (msg : ship_msg) : unit =
  Ldv_faults.with_retries ~attempts:6 ~cap_ms:64.0 ~op (fun () ->
      let fault = Ldv_faults.ship_fault () in
      match fault with
      | Some `Drop ->
        Ldv_errors.fail (Ldv_errors.Connection_lost { context = op })
      | Some `Reorder when allow_reorder -> raise Reordered
      | (Some `Garble | Some `Reorder | None) as fault -> (
        let frame = encode_ship msg in
        let wire =
          match fault with
          | Some `Garble -> garble frame ~seq:msg.rec_.Wal.seq
          | _ -> frame
        in
        match decode_ship wire with
        | None ->
          Ldv_errors.fail (Ldv_errors.Protocol_garbled { context = op })
        | Some msg' ->
          Ldv_obs.with_span
            ~attrs:[ ("repl.node", string_of_int rep.rep_id) ]
            "repl.ship"
            (fun () -> apply t rep msg')))

(* ------------------------------------------------------------------ *)
(* Crash / recover / catch-up.                                         *)

(** Node-local power failure of one replica: its unsynced state is lost
    (a seeded torn tail of its WAL may survive), its in-memory stash and
    delayed frames vanish, and it stops serving until recovered. *)
let crash_replica t (rep : replica) : unit =
  Ldv_obs.counter "repl.crash";
  rep.rep_state <- Down;
  rep.rep_delayed <- None;
  rep.rep_stash <- [];
  let vfs = Minios.Kernel.vfs t.kernel in
  let wal = Durable.wal_path (Durable.server rep.rep_durable) in
  let unsynced = Minios.Vfs.unsynced_bytes vfs wal in
  let keep = if unsynced > 0 then [ (wal, t.torn unsynced) ] else [] in
  Minios.Vfs.crash_under vfs ~keep rep.rep_data_dir

(** Resync [rep] from the leader's retained ship log: load it (tolerating
    a torn tail), cut at the last record outside an open transaction, and
    re-deliver everything past the replica's applied sequence. Skipped
    while the leader holds a transaction open — the cut would exclude its
    suffix anyway — and a fully caught-up replica returns to [Up].
    @raise Ldv_faults.Crash when the replica crashes mid-apply. *)
let catch_up t (rep : replica) : unit =
  if rep.rep_state <> Down && not (Database.in_transaction (leader_db t))
  then
    Ldv_obs.with_span "repl.catchup" @@ fun () ->
    let vfs = Minios.Kernel.vfs t.kernel in
    let loaded = Wal.load vfs t.ship_log in
    let replayable, _dropped, _redo = Wal.durable_cut loaded.Wal.records in
    let missing =
      List.filter
        (fun (r : Wal.record) -> r.Wal.seq > rep.rep_applied)
        replayable
    in
    Ldv_obs.observe "repl.catchup.records"
      (float_of_int (List.length missing));
    List.iter
      (fun (r : Wal.record) ->
        let at =
          match Hashtbl.find_opt t.clocks r.Wal.seq with
          | Some c -> c
          | None -> 0 (* unknown origin clock: apply without syncing *)
        in
        let tr =
          match Hashtbl.find_opt t.traces r.Wal.seq with
          | Some id -> id
          | None -> 0
        in
        deliver t rep ~allow_reorder:false ~op:"repl.catchup"
          { rec_ = r; at; tr })
      missing;
    rep.rep_stash <- [];
    rep.rep_delayed <- None;
    if rep.rep_applied >= t.ship_seq then rep.rep_state <- Up

(** Recover a crashed replica: ordinary checkpoint + durable-WAL redo on
    its own data directory, then catch-up resync from the leader's ship
    log. A recovery whose catch-up fails (or crashes again) leaves the
    replica [Lagging] (or [Down]); later writes retry the repair. *)
let recover_replica t (rep : replica) : unit =
  if rep.rep_state = Down then begin
    Ldv_obs.with_span "repl.recover" @@ fun () ->
    let d, stats = Durable.recover t.kernel ~data_dir:rep.rep_data_dir () in
    rep.rep_durable <- d;
    rep.rep_applied <- stats.Durable.redo_upto;
    rep.rep_state <- Lagging;
    rep.rep_ckpt_due <- t.ckpt_every;
    Ldv_obs.counter "repl.recover";
    match catch_up t rep with
    | () -> ()
    | exception Ldv_faults.Crash _ -> crash_replica t rep
    | exception Ldv_errors.Error _ -> () (* still lagging; retried later *)
  end

(** {!recover_replica} by replica id, for workload drivers that track
    replicas by index. *)
let recover t i = recover_replica t t.replicas.(i)

(** Pids of the replication machinery (the leader's durable writer and
    every replica's server process): audits exclude their file writes —
    ship log, replica WALs and checkpoints — from the application's
    recorded outputs. *)
let pids t =
  t.leader.Durable.pid
  :: Array.to_list
       (Array.map (fun rep -> rep.rep_durable.Durable.pid) t.replicas)

(* ------------------------------------------------------------------ *)
(* Leader-side shipping.                                               *)

(* Push one frame to one replica, absorbing its failure modes: a crash
   takes the replica down, exhausted retries (or any other typed error)
   leave it lagging for catch-up to repair. *)
let push t (rep : replica) (msg : ship_msg) : unit =
  let deliver_quiet m =
    match deliver t rep ~allow_reorder:false ~op:"repl.ship" m with
    | () -> ()
    | exception Reordered -> assert false
  in
  match rep.rep_state with
  | Down | Lagging -> ()
  | Up -> (
    try
      match rep.rep_delayed with
      | Some held ->
        (* the held frame travels behind the newer one: out of order on
           the wire, reassembled by the replica's stash *)
        rep.rep_delayed <- None;
        deliver_quiet msg;
        deliver_quiet held
      | None -> (
        try deliver t rep ~allow_reorder:true ~op:"repl.ship" msg
        with Reordered ->
          rep.rep_delayed <- Some msg;
          Ldv_obs.counter "repl.ship.held")
    with
    | Ldv_faults.Crash _ -> crash_replica t rep
    | Ldv_errors.Error _ ->
      rep.rep_state <- Lagging;
      Ldv_obs.counter "repl.ship.gave_up")

(* Opportunistic repair: any lagging replica is caught up from the ship
   log as soon as the leader is between transactions. *)
let repair_lagging t =
  Array.iter
    (fun rep ->
      if rep.rep_state = Lagging then
        match catch_up t rep with
        | () -> ()
        | exception Ldv_faults.Crash _ -> crash_replica t rep
        | exception Ldv_errors.Error _ -> ())
    t.replicas

(** Record one executed leader write into the ship stream: append the
    frame to the retained ship log (durably), remember the leader clock
    [at] observed before the write executed, and push to every live
    replica. Used by the interceptor after the session path has already
    executed the statement on the leader. *)
let note_write t ~at (sql : string) : unit =
  let seq = t.ship_seq + 1 in
  t.ship_seq <- seq;
  let rec_ = { Wal.seq; kind = Durable.kind_of_sql sql; sid = 0; sql } in
  let pid = t.leader.Durable.pid in
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Wal_append (fun () ->
      Wal.append t.kernel ~pid ~path:t.ship_log rec_);
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Fsync (fun () ->
      Minios.Kernel.fsync_path t.kernel ~pid ~path:t.ship_log);
  Hashtbl.replace t.clocks seq at;
  (* the ambient trace id is the originating statement's: note_write runs
     inside the interceptor's statement (or COMMIT) execution *)
  let tr = Ldv_obs.Trace.id () in
  Hashtbl.replace t.traces seq tr;
  if Ldv_obs.enabled () then Ldv_obs.counter "repl.shipped";
  let msg = { rec_; at; tr } in
  Array.iter (fun rep -> push t rep msg) t.replicas;
  repair_lagging t

(** Execute one write on the leader and ship it. Statements the leader
    rejects are not shipped (they changed nothing). *)
let exec t (sql : string) : Protocol.response =
  let at = Database.clock (leader_db t) in
  let resp = Durable.exec t.leader sql in
  (match resp with
  | Protocol.Error_response _ -> ()
  | _ -> note_write t ~at sql);
  resp

(* ------------------------------------------------------------------ *)
(* Read routing.                                                       *)

(** Can [rep] serve a read pinned at [snapshot] *exactly*? Yes when it is
    up, outside any transaction, and every leader write whose version
    stamps could be visible at [snapshot] has been applied — either the
    replica is fully caught up, or its next missing record's origin clock
    already lies at/after the snapshot. *)
let can_serve_exact t (rep : replica) ~snapshot =
  rep.rep_state = Up
  && (not
        (Database.in_transaction (Server.db (Durable.server rep.rep_durable))))
  && (rep.rep_applied >= t.ship_seq
     ||
     match Hashtbl.find_opt t.clocks (rep.rep_applied + 1) with
     | Some c -> c >= snapshot
     | None -> false)

(** Route a snapshot-pinned read: the next replica (round-robin) that can
    serve [snapshot] exactly, or [None] — counted as a fallback — when
    none can. Returns the replica's server and id; the caller executes
    the pinned query there under {!Database.with_frozen_clock}. *)
let route_read t ~snapshot : (Server.t * int) option =
  let n = Array.length t.replicas in
  let rec go i =
    if i >= n then None
    else
      let rep = t.replicas.((t.rr + i) mod n) in
      if can_serve_exact t rep ~snapshot then Some rep else go (i + 1)
  in
  let picked = if n = 0 then None else go 0 in
  t.rr <- t.rr + 1;
  match picked with
  | Some rep ->
    if Ldv_obs.enabled () then Ldv_obs.counter "repl.reads.replica";
    Some (Durable.server rep.rep_durable, rep.rep_id)
  | None ->
    if n > 0 && Ldv_obs.enabled () then Ldv_obs.counter "repl.fallbacks";
    None

(** A read served by the degraded-mode router. [sv_node] is the replica
    that answered (-1 = leader), [sv_version] the version the answer is
    pinned at. *)
type served = {
  sv_resp : Protocol.response;
  sv_node : int;
  sv_version : int;
}

(* Serve [ast] on [server]'s database pinned AS OF its current clock,
   clock-frozen: replicas (and the leader, in degraded fallback) answer
   reads without perturbing their version stamps. *)
let serve_pinned (server : Server.t) (ast : Sql_ast.statement) : served * int
    =
  let db = Server.db server in
  let snap = Database.clock db in
  let pinned = Snapshot_pin.pin_statement snap ast in
  let sql = Pretty.statement_to_string pinned in
  let resp =
    Database.with_frozen_clock db (fun () ->
        Server.handle server (Protocol.Statement { sql }))
  in
  ({ sv_resp = resp; sv_node = -1; sv_version = snap }, snap)

(** Session-level read for the replicacheck workload driver: round-robin
    across replicas, skipping any that is down, mid-transaction, or
    lagging beyond the staleness bound; a replica lagging *within* the
    bound serves (counted as [repl.stale_reads]); with no eligible
    replica the leader answers ([repl.fallbacks]). All service is
    clock-frozen and pinned at the serving node's applied version. *)
let read t (sql : string) : served =
  let ast = Sql_parser.parse sql in
  let n = Array.length t.replicas in
  let rec go i =
    if i >= n then None
    else
      let rep = t.replicas.((t.rr + i) mod n) in
      if
        rep.rep_state <> Down
        && lag t rep <= t.staleness
        && not
             (Database.in_transaction
                (Server.db (Durable.server rep.rep_durable)))
      then Some rep
      else go (i + 1)
  in
  let picked = if n = 0 then None else go 0 in
  t.rr <- t.rr + 1;
  match picked with
  | None ->
    if n > 0 && Ldv_obs.enabled () then Ldv_obs.counter "repl.fallbacks";
    let s, _ = serve_pinned (Durable.server t.leader) ast in
    s
  | Some rep ->
    if Ldv_obs.enabled () then begin
      Ldv_obs.counter "repl.reads.replica";
      if lag t rep > 0 then Ldv_obs.counter "repl.stale_reads"
    end;
    let s, snap = serve_pinned (Durable.server rep.rep_durable) ast in
    { s with sv_node = rep.rep_id; sv_version = snap }

(* ------------------------------------------------------------------ *)
(* End-of-run convergence.                                             *)

(** Bring every replica fully up to date: recover the crashed ones, catch
    the rest up from the ship log. Callers wanting deterministic
    convergence clear the fault plan first. *)
let quiesce t : unit =
  Array.iter
    (fun rep ->
      if rep.rep_state = Down then recover_replica t rep
      else
        match catch_up t rep with
        | () -> ()
        | exception Ldv_faults.Crash _ -> crash_replica t rep
        | exception Ldv_errors.Error _ -> ())
    t.replicas;
  (* a catch-up that crashed mid-way needs one more recovery round *)
  Array.iter
    (fun rep -> if rep.rep_state = Down then recover_replica t rep)
    t.replicas

(** First replica whose state is not byte-identical with the leader's:
    [(replica id, first differing line)], or [None] when the whole
    cluster has converged. *)
let converged t : (int * string) option =
  let want = state_fingerprint (leader_db t) in
  let n = Array.length t.replicas in
  let rec go i =
    if i >= n then None
    else
      let got = state_fingerprint (replica_db t i) in
      if String.equal want got then go (i + 1)
      else Some (i, first_diff ~left:"leader" ~right:"replica" want got)
  in
  go 0
