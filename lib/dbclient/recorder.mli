(** Recording and replaying DB responses for server-excluded packages
    (§VII-D / §VIII). The serialized form lives inside the package; its
    byte size is what Figure 9 charges the server-excluded option. *)

open Minidb

type kind =
  | Rquery
  | Rdml
  | Rddl
  | Rerror
      (** the original statement failed; replay must fail identically
          (the message is stored as the record's single row) *)

type recorded = {
  rec_index : int;  (** position in the original statement order *)
  rec_sql_norm : string;  (** normalized statement text, the match key *)
  rec_kind : kind;
  rec_schema : Schema.t option;
  rec_rows : Value.t array list;
  rec_affected : int;
}

val encode_schema : Schema.t -> string

(** @raise Invalid_argument on malformed input. *)
val decode_schema : string -> Schema.t

val encode : recorded list -> string

(** @raise Ldv_errors.Error with [Decode_error] — carrying the 1-based
    line number of the offending line — on malformed input. *)
val decode : string -> recorded list

val byte_size : recorded list -> int
