(** The instrumented client library (the paper's modified libpq, §VII-C).

    Every statement a monitored process sends to the DB flows through a
    session in one of four modes: plain passthrough, audit with DB
    provenance (server-included), audit with response recording
    (server-excluded), or replay from a recording. *)

open Minidb

exception Replay_divergence of string

type mode =
  | Passthrough
  | Audit_included
  | Audit_excluded
  | Replay_excluded

type stmt_kind = Squery | Sinsert | Supdate | Sdelete | Sddl

val stmt_kind_of_ast : Sql_ast.statement -> stmt_kind

(** One audited statement: everything the trace builder needs. *)
type stmt_event = {
  qid : int;
  sid : int;  (** issuing session (0 for the primary/only session) *)
  pid : int;  (** issuing OS process *)
  sql : string;
  sql_norm : string;
  kind : stmt_kind;
  t_start : int;  (** request sent *)
  t_end : int;  (** response received *)
  snapshot : int;
      (** DB clock pinned when the request was sent; under snapshot-
          isolated reads, queries see exactly the versions committed at
          or before this clock *)
  replica : int;
      (** which node answered: a replica id when a read was served by a
          read replica, -1 for the leader. Recorded in the package so
          replay re-runs the whole cluster deterministically. *)
  results : (Tid.t * Tid.t list) list;
      (** produced tuple version -> versions in its lineage *)
  reads : Tid.t list;  (** tuple versions the statement read *)
  schema : Schema.t option;
  rows : Value.t array list;
  affected : int;
  response_bytes : int;
}

type t

(** [snapshot_reads] pins every query to the DB clock observed when its
    request was sent (snapshot isolation across interleaved sessions),
    by rewriting each unpinned [FROM t] into [FROM t AS OF snap]. *)
val create :
  ?mode:mode ->
  ?session_id:int ->
  ?snapshot_reads:bool ->
  kernel:Minios.Kernel.t ->
  Server.t ->
  t

(** A sibling session for another client of the same run: shares the
    mode, server, versioning, qid counter, slice table and eager buffers
    (one run, one slice, one global statement order) but keeps its own
    statement log, so each session's stream stays attributable. *)
val create_sibling : t -> session_id:int -> t

(** A session answering from a recording (server-excluded replay). *)
val create_replay :
  kernel:Minios.Kernel.t -> Server.t -> Recorder.recorded list -> t

(** Attach a replication cluster to this session and (through the shared
    ref) every sibling: snapshot-pinned reads route to read replicas that
    can serve their snapshot exactly, and every executed write is shipped
    to the replicas before the write latch releases. *)
val attach_cluster : t -> Replication.t -> unit

val cluster : t -> Replication.t option
val log : t -> stmt_event list
val kernel_of : t -> Minios.Kernel.t
val recorded : t -> Recorder.recorded list
val mode : t -> mode
val session_id : t -> int

(** Whether this session currently has an open transaction. *)
val in_tx : t -> bool
val versioning : t -> Perm.Versioning.t

(** Tuple versions accumulated for packaging (before removing
    application-created versions), deduplicated. *)
val slice_tids : t -> Tid.t list

(** Bytes written so far to the eager package files (§VII-D's immediate
    persistence): the tuple CSV buffer and the response recording. *)
val eager_csv_bytes : t -> int

val eager_recording_bytes : t -> int

(** Whether a tid denotes a transient query-result tuple rather than a
    stored tuple version. *)
val is_result_tid : Tid.t -> bool

val synthetic_result_tid : qid:int -> row:int -> at:int -> Tid.t

(** Execute one statement on behalf of process [pid].
    @raise Replay_divergence in replay mode when the statement stream
    deviates from the recording.
    @raise Errors.Db_error on parse errors (and, in provenance-auditing
    mode, on engine errors). *)
val execute : t -> pid:int -> string -> Protocol.response

(** {2 Session registry}

    Programs discover their session through the kernel they run on, so
    application code is mode-agnostic. *)

val bind : Minios.Kernel.t -> t -> unit
val unbind : Minios.Kernel.t -> unit

(** @raise Invalid_argument when no session is bound. *)
val find : Minios.Kernel.t -> t

(** Per-process bindings, for concurrent runs where each scheduled client
    process has its own session on the same kernel. *)
val bind_for : Minios.Kernel.t -> pid:int -> t -> unit

val unbind_for : Minios.Kernel.t -> pid:int -> unit

(** The session bound to [(kernel, pid)], falling back to the kernel-wide
    binding.
    @raise Invalid_argument when neither binding exists. *)
val find_for : Minios.Kernel.t -> pid:int -> t
