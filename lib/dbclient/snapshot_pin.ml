(** Snapshot pinning. Under snapshot-isolated reads every query is pinned
    to the DB clock observed when its request was sent: each unpinned
    [FROM t] becomes [FROM t AS OF snap], recursively through joins,
    subqueries (EXISTS / IN / scalar), and UNION branches, riding the
    engine's native time-travel scans. Statements that already carry an
    explicit AS OF keep it; DML is untouched (writes always act on the
    current state — the write path is session-serialized).

    Shared by the interceptor (session-level snapshot isolation) and the
    replication router (a read replica serves every read pinned at its
    applied version, so a lagging replica is stale but never wrong). *)

open Minidb

let rec pin_from snap (f : Sql_ast.from_item) : Sql_ast.from_item =
  match f with
  | Sql_ast.From_table ({ as_of = None; _ } as r) ->
    Sql_ast.From_table { r with as_of = Some snap }
  | Sql_ast.From_table _ -> f
  | Sql_ast.From_join j ->
    Sql_ast.From_join
      { j with
        left = pin_from snap j.left;
        right = pin_from snap j.right;
        on = pin_expr snap j.on }

and pin_expr snap (e : Sql_ast.expr) : Sql_ast.expr =
  let open Sql_ast in
  match e with
  | Const _ | Col _ -> e
  | Cmp (c, a, b) -> Cmp (c, pin_expr snap a, pin_expr snap b)
  | And (a, b) -> And (pin_expr snap a, pin_expr snap b)
  | Or (a, b) -> Or (pin_expr snap a, pin_expr snap b)
  | Not a -> Not (pin_expr snap a)
  | Is_null a -> Is_null (pin_expr snap a)
  | Is_not_null a -> Is_not_null (pin_expr snap a)
  | Between (a, lo, hi) ->
    Between (pin_expr snap a, pin_expr snap lo, pin_expr snap hi)
  | Like (a, p) -> Like (pin_expr snap a, p)
  | Not_like (a, p) -> Not_like (pin_expr snap a, p)
  | In_list (a, es) -> In_list (pin_expr snap a, List.map (pin_expr snap) es)
  | Arith (op, a, b) -> Arith (op, pin_expr snap a, pin_expr snap b)
  | Neg a -> Neg (pin_expr snap a)
  | Concat (a, b) -> Concat (pin_expr snap a, pin_expr snap b)
  | Agg (f, a) -> Agg (f, Option.map (pin_expr snap) a)
  | Case (branches, default) ->
    Case
      ( List.map (fun (c, v) -> (pin_expr snap c, pin_expr snap v)) branches,
        Option.map (pin_expr snap) default )
  | Func (name, args) -> Func (name, List.map (pin_expr snap) args)
  | Exists s -> Exists (pin_select snap s)
  | In_select (a, s) -> In_select (pin_expr snap a, pin_select snap s)
  | Scalar_subquery s -> Scalar_subquery (pin_select snap s)

and pin_select snap (s : Sql_ast.select) : Sql_ast.select =
  { s with
    items =
      List.map
        (function
          | Sql_ast.Star -> Sql_ast.Star
          | Sql_ast.Item (e, alias) -> Sql_ast.Item (pin_expr snap e, alias))
        s.Sql_ast.items;
    from = List.map (pin_from snap) s.Sql_ast.from;
    where = Option.map (pin_expr snap) s.Sql_ast.where;
    having = Option.map (pin_expr snap) s.Sql_ast.having;
    order_by =
      List.map (fun (e, dir) -> (pin_expr snap e, dir)) s.Sql_ast.order_by;
    set_ops =
      List.map (fun (op, sel) -> (op, pin_select snap sel)) s.Sql_ast.set_ops }

let pin_statement snap (ast : Sql_ast.statement) : Sql_ast.statement =
  match ast with
  | Sql_ast.Select s -> Sql_ast.Select (pin_select snap s)
  | Sql_ast.Provenance s -> Sql_ast.Provenance (pin_select snap s)
  | _ -> ast
