(** The instrumented client library (the paper's modified libpq, §VII-C).

    Every statement a monitored process sends to the DB flows through a
    session in one of four modes:

    - [Passthrough] — plain execution (the baseline, and server-included
      replay once the package DB has been restored);
    - [Audit_included] — execute *with provenance*: queries run through the
      Perm-style lineage executor, modifications are reenacted first; the
      relevant tuple versions are deduplicated into the slice table that
      ends up in the package (Table I's DB column);
    - [Audit_excluded] — execute normally but record every response for
      later replay;
    - [Replay_excluded] — do not touch any DB: answer each request from the
      recorded log, in order, raising [Replay_divergence] if the incoming
      statement does not match the recording (§VIII). *)

open Minidb

exception Replay_divergence of string

type mode =
  | Passthrough
  | Audit_included
  | Audit_excluded
  | Replay_excluded

type stmt_kind = Squery | Sinsert | Supdate | Sdelete | Sddl

let stmt_kind_name = function
  | Squery -> "query"
  | Sinsert -> "insert"
  | Supdate -> "update"
  | Sdelete -> "delete"
  | Sddl -> "ddl"

let mode_name = function
  | Passthrough -> "passthrough"
  | Audit_included -> "audit-included"
  | Audit_excluded -> "audit-excluded"
  | Replay_excluded -> "replay-excluded"

let stmt_kind_of_ast = function
  | Sql_ast.Select _ | Sql_ast.Provenance _ | Sql_ast.Explain _ -> Squery
  | Sql_ast.Insert _ -> Sinsert
  | Sql_ast.Update _ -> Supdate
  | Sql_ast.Delete _ -> Sdelete
  | Sql_ast.Create_table _ | Sql_ast.Drop_table _ | Sql_ast.Create_index _
  | Sql_ast.Drop_index _ | Sql_ast.Begin_tx | Sql_ast.Commit_tx
  | Sql_ast.Rollback_tx ->
    Sddl

(** One audited statement: everything the trace builder needs to create the
    P_Lin activity node, its edges, and the cross-model edges. *)
type stmt_event = {
  qid : int;
  pid : int;  (** issuing OS process *)
  sql : string;
  sql_norm : string;
  kind : stmt_kind;
  t_start : int;  (** request sent *)
  t_end : int;  (** response received *)
  results : (Tid.t * Tid.t list) list;
      (** produced tuple version -> versions in its lineage *)
  reads : Tid.t list;  (** tuple versions the statement read *)
  schema : Schema.t option;
  rows : Value.t array list;
  affected : int;
  response_bytes : int;
}

type t = {
  mode : mode;
  server : Server.t;
  kernel : Minios.Kernel.t;
  versioning : Perm.Versioning.t;
  mutable next_qid : int;
  mutable log : stmt_event list;  (** newest first *)
  mutable recorded : Recorder.recorded list;  (** audit-excluded, newest first *)
  mutable replay_queue : Recorder.recorded list;  (** replay-excluded, in order *)
  slice : (Tid.t, unit) Hashtbl.t;
      (** deduplicated tuple versions relevant to the run (the paper's
          in-memory hash table, §VII-D) *)
  (* §VII-D: the prototype "immediately computes the provenance for every
     operation ... and writes these tuples to files on disk". The eager
     buffers model that write path: server-included audits append each
     newly-sliced tuple's CSV line on first sight (cold first query, warm
     repeats), server-excluded audits append each response as recorded.
     Packaging rebuilds the final artifacts from the dedup table — the
     buffers carry the I/O cost and serve as a cross-check. *)
  eager_csv : Buffer.t;
  eager_recording : Buffer.t;
}

let create ?(mode = Passthrough) ~kernel (server : Server.t) : t =
  { mode;
    server;
    kernel;
    versioning = Perm.Versioning.create (Server.db server);
    next_qid = 0;
    log = [];
    recorded = [];
    replay_queue = [];
    slice = Hashtbl.create 1024;
    eager_csv = Buffer.create 4096;
    eager_recording = Buffer.create 4096 }

let create_replay ~kernel (server : Server.t)
    (recording : Recorder.recorded list) : t =
  let t = create ~mode:Replay_excluded ~kernel server in
  { t with replay_queue = recording }

let log t = List.rev t.log
let kernel_of t = t.kernel
let recorded t = List.rev t.recorded
let mode t = t.mode
let versioning t = t.versioning

(** Tuple versions accumulated for packaging (before removing
    application-created versions). *)
let slice_tids t =
  Hashtbl.fold (fun tid () acc -> tid :: acc) t.slice []
  |> List.sort Tid.compare

let eager_csv_bytes t = Buffer.length t.eager_csv
let eager_recording_bytes t = Buffer.length t.eager_recording

let add_to_slice t tid =
  if not (Hashtbl.mem t.slice tid) then begin
    Hashtbl.replace t.slice tid ();
    (* write the newly relevant tuple out immediately (§VII-D) *)
    match Perm.Versioning.lookup_version t.versioning tid with
    | Some values ->
      Buffer.add_string t.eager_csv (string_of_int tid.Tid.rid);
      Buffer.add_char t.eager_csv ',';
      Buffer.add_string t.eager_csv (string_of_int tid.Tid.version);
      Array.iter
        (fun v ->
          Buffer.add_char t.eager_csv ',';
          Buffer.add_string t.eager_csv
            (Csv.quote_field (Csv.encode_value v)))
        values;
      Buffer.add_char t.eager_csv '\n'
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Statement execution per mode.                                       *)

let synthetic_result_tid ~qid ~row ~at =
  Tid.make ~table:(Printf.sprintf "#q%d" qid) ~rid:row ~version:at

(** Whether a tid denotes a transient query-result tuple rather than a
    stored tuple version. *)
let is_result_tid (tid : Tid.t) =
  String.length tid.Tid.table > 0 && tid.Tid.table.[0] = '#'

let exec_audit_included t ~qid ~pid (ast : Sql_ast.statement) (sql : string) :
    Protocol.response * (Tid.t * Tid.t list) list * Tid.t list * Schema.t option
    * Value.t array list * int =
  let db = Server.db t.server in
  match ast with
  | Sql_ast.Explain _ ->
    (* plan description only; nothing to audit *)
    let resp = Server.handle t.server (Protocol.Statement { sql }) in
    (resp, [], [], None, Protocol.response_rows resp, 0)
  | Sql_ast.Select _ | Sql_ast.Provenance _ ->
    let prov = Perm.Provenance_sql.query_lineage db sql in
    List.iter
      (fun table -> ignore (Perm.Versioning.enable_table t.versioning table))
      prov.Perm.Provenance_sql.read_tables;
    let at = Database.clock db in
    let results =
      List.mapi
        (fun i (row : Perm.Provenance_sql.provenance_row) ->
          let rtid = synthetic_result_tid ~qid ~row:i ~at in
          let lineage = Tid.Set.elements row.Perm.Provenance_sql.lineage in
          List.iter
            (fun tid ->
              add_to_slice t tid;
              Perm.Versioning.record_usage t.versioning tid ~qid ~pid ~at)
            lineage;
          (rtid, lineage))
        prov.Perm.Provenance_sql.rows
    in
    let reads =
      Tid.Set.elements (Perm.Provenance_sql.total_lineage prov)
    in
    let rows =
      List.map
        (fun (r : Perm.Provenance_sql.provenance_row) ->
          r.Perm.Provenance_sql.values)
        prov.Perm.Provenance_sql.rows
    in
    ( Protocol.Result_set { schema = prov.Perm.Provenance_sql.schema; rows },
      results,
      reads,
      Some prov.Perm.Provenance_sql.schema,
      rows,
      List.length rows )
  | Sql_ast.Insert _ | Sql_ast.Update _ | Sql_ast.Delete _ ->
    (match ast with
    | Sql_ast.Insert { table; _ }
    | Sql_ast.Update { table; _ }
    | Sql_ast.Delete { table; _ } ->
      ignore (Perm.Versioning.enable_table t.versioning table)
    | _ -> ());
    (* reenact first (provenance of the pre-state), then execute *)
    let _reenactment, info = Perm.Reenact.execute db ast in
    let at = Database.clock db in
    List.iter
      (fun tid ->
        add_to_slice t tid;
        Perm.Versioning.record_usage t.versioning tid ~qid ~pid ~at)
      info.Database.read;
    ( Protocol.Command_ok { affected = info.Database.count },
      info.Database.deps,
      info.Database.read,
      None,
      [],
      info.Database.count )
  | Sql_ast.Create_table _ | Sql_ast.Drop_table _ | Sql_ast.Create_index _
  | Sql_ast.Drop_index _ | Sql_ast.Begin_tx | Sql_ast.Commit_tx
  | Sql_ast.Rollback_tx ->
    let resp = Server.handle t.server (Protocol.Statement { sql }) in
    (resp, [], [], None, [], 0)

let exec_passthrough t (sql : string) = Server.handle t.server (Protocol.Statement { sql })

let exec_replay_excluded t ~(kind : stmt_kind) (sql_norm : string) :
    Protocol.response =
  match t.replay_queue with
  | [] ->
    Ldv_obs.counter "recorder.miss";
    raise
      (Replay_divergence
         (Printf.sprintf "no recorded response left for %s" sql_norm))
  | r :: rest ->
    if not (String.equal r.Recorder.rec_sql_norm sql_norm) then begin
      Ldv_obs.counter "recorder.miss";
      raise
        (Replay_divergence
           (Printf.sprintf "expected %s, got %s" r.Recorder.rec_sql_norm
              sql_norm))
    end;
    Ldv_obs.counter "recorder.hit";
    t.replay_queue <- rest;
    (match (kind, r.Recorder.rec_kind) with
    | Squery, Recorder.Rquery ->
      Protocol.Result_set
        { schema = Option.value r.Recorder.rec_schema ~default:[||];
          rows = r.Recorder.rec_rows }
    | (Sinsert | Supdate | Sdelete), Recorder.Rdml ->
      (* writes are acknowledged from the recording and discarded *)
      Protocol.Command_ok { affected = r.Recorder.rec_affected }
    | Sddl, Recorder.Rddl -> Protocol.Ddl_ok
    | _, Recorder.Rerror ->
      (* the original statement failed: reproduce the failure *)
      Protocol.Error_response
        (match r.Recorder.rec_rows with
        | [ [| Value.Str msg |] ] -> msg
        | _ -> "server error")
    | _ ->
      raise
        (Replay_divergence
           (Printf.sprintf "statement kind mismatch for %s" sql_norm)))

(** Execute one statement on behalf of process [pid]. *)
let execute (t : t) ~pid (sql : string) : Protocol.response =
  Ldv_obs.with_span "db.stmt" @@ fun () ->
  let db = Server.db t.server in
  let ast = Sql_parser.parse sql in
  let sql_norm = Pretty.statement_to_string ast in
  let kind = stmt_kind_of_ast ast in
  if Ldv_obs.enabled () then begin
    Ldv_obs.add_attr "kind" (stmt_kind_name kind);
    Ldv_obs.add_attr "mode" (mode_name t.mode);
    (* provenance-node correlation: the same identifiers this statement
       gets in the execution trace ([Prov.Lineage_model.stmt_id],
       [Prov.Bb_model.process_id]) *)
    Ldv_obs.add_attr "prov.stmt" (Printf.sprintf "stmt:%d" t.next_qid);
    Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" pid);
    Ldv_obs.counter ("db.stmt." ^ stmt_kind_name kind)
  end;
  let qid = t.next_qid in
  t.next_qid <- qid + 1;
  (* request leaves the client *)
  let t_start = Minios.Kernel.tick t.kernel in
  Database.sync_clock db ~at:(Minios.Kernel.now t.kernel);
  let response, results, reads, schema, rows, affected =
    match t.mode with
    | Passthrough ->
      let resp = exec_passthrough t sql in
      (resp, [], [], None, Protocol.response_rows resp, 0)
    | Audit_included -> exec_audit_included t ~qid ~pid ast sql
    | Audit_excluded ->
      let resp = exec_passthrough t sql in
      let rec_kind, rec_schema, rec_rows, rec_affected =
        match resp with
        | Protocol.Result_set { schema; rows } ->
          (Recorder.Rquery, Some schema, rows, List.length rows)
        | Protocol.Command_ok { affected } ->
          (Recorder.Rdml, None, [], affected)
        | Protocol.Error_response msg ->
          (* the original run failed here; replay must fail identically *)
          (Recorder.Rerror, None, [ [| Value.Str msg |] ], 0)
        | Protocol.Ddl_ok | Protocol.Connected _ -> (Recorder.Rddl, None, [], 0)
      in
      let record =
        { Recorder.rec_index = qid;
          rec_sql_norm = sql_norm;
          rec_kind;
          rec_schema;
          rec_rows;
          rec_affected }
      in
      t.recorded <- record :: t.recorded;
      (* write the response to the package file as it happens *)
      Buffer.add_string t.eager_recording (Recorder.encode [ record ]);
      (resp, [], [], rec_schema, rec_rows, rec_affected)
    | Replay_excluded ->
      let resp = exec_replay_excluded t ~kind sql_norm in
      (resp, [], [], None, Protocol.response_rows resp, 0)
  in
  (* response returns to the client *)
  Minios.Kernel.advance_to t.kernel ~at:(Database.clock db);
  let t_end = Minios.Kernel.tick t.kernel in
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(Protocol.response_bytes response)
      "db.stmt.response_bytes";
    Ldv_obs.observe "db.stmt.roundtrip_ticks" (float_of_int (t_end - t_start))
  end;
  t.log <-
    { qid;
      pid;
      sql;
      sql_norm;
      kind;
      t_start;
      t_end;
      results;
      reads;
      schema;
      rows;
      affected;
      response_bytes = Protocol.response_bytes response }
    :: t.log;
  response

(* ------------------------------------------------------------------ *)
(* Session registry: programs discover their session through the kernel
   they run on, so application code is mode-agnostic.                  *)

let sessions : (Minios.Kernel.t * t) list ref = ref []

let bind kernel session =
  sessions := (kernel, session) :: List.filter (fun (k, _) -> k != kernel) !sessions

let unbind kernel = sessions := List.filter (fun (k, _) -> k != kernel) !sessions

let find kernel =
  match List.find_opt (fun (k, _) -> k == kernel) !sessions with
  | Some (_, s) -> s
  | None -> invalid_arg "Interceptor.find: no DB session bound to this kernel"
