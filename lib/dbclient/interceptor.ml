(** The instrumented client library (the paper's modified libpq, §VII-C).

    Every statement a monitored process sends to the DB flows through a
    session in one of four modes:

    - [Passthrough] — plain execution (the baseline, and server-included
      replay once the package DB has been restored);
    - [Audit_included] — execute *with provenance*: queries run through the
      Perm-style lineage executor, modifications are reenacted first; the
      relevant tuple versions are deduplicated into the slice table that
      ends up in the package (Table I's DB column);
    - [Audit_excluded] — execute normally but record every response for
      later replay;
    - [Replay_excluded] — do not touch any DB: answer each request from the
      recorded log, in order, raising [Replay_divergence] if the incoming
      statement does not match the recording (§VIII). *)

open Minidb

exception Replay_divergence of string

type mode =
  | Passthrough
  | Audit_included
  | Audit_excluded
  | Replay_excluded

type stmt_kind = Squery | Sinsert | Supdate | Sdelete | Sddl

let stmt_kind_name = function
  | Squery -> "query"
  | Sinsert -> "insert"
  | Supdate -> "update"
  | Sdelete -> "delete"
  | Sddl -> "ddl"

let mode_name = function
  | Passthrough -> "passthrough"
  | Audit_included -> "audit-included"
  | Audit_excluded -> "audit-excluded"
  | Replay_excluded -> "replay-excluded"

let stmt_kind_of_ast = function
  | Sql_ast.Select _ | Sql_ast.Provenance _ | Sql_ast.Explain _ -> Squery
  | Sql_ast.Insert _ -> Sinsert
  | Sql_ast.Update _ -> Supdate
  | Sql_ast.Delete _ -> Sdelete
  | Sql_ast.Create_table _ | Sql_ast.Drop_table _ | Sql_ast.Create_index _
  | Sql_ast.Drop_index _ | Sql_ast.Begin_tx | Sql_ast.Commit_tx
  | Sql_ast.Rollback_tx ->
    Sddl

(** One audited statement: everything the trace builder needs to create the
    P_Lin activity node, its edges, and the cross-model edges. *)
type stmt_event = {
  qid : int;
  sid : int;  (** issuing session (0 for the primary/only session) *)
  pid : int;  (** issuing OS process *)
  sql : string;
  sql_norm : string;
  kind : stmt_kind;
  t_start : int;  (** request sent *)
  t_end : int;  (** response received *)
  snapshot : int;
      (** DB clock pinned when the request was sent; under snapshot-
          isolated reads, queries see exactly the versions committed at or
          before this clock *)
  replica : int;
      (** which node answered: a replica id when a read was served by a
          read replica, -1 for the leader. Recorded in the package so
          replay re-runs the whole cluster deterministically. *)
  results : (Tid.t * Tid.t list) list;
      (** produced tuple version -> versions in its lineage *)
  reads : Tid.t list;  (** tuple versions the statement read *)
  schema : Schema.t option;
  rows : Value.t array list;
  affected : int;
  response_bytes : int;
}

(** The shared write-path latch: statement execution on the server is
    session-serialized. [holder] is the session currently executing a
    statement, -1 when free. Under a scheduler a contending session
    parks (spin-yield) until the holder releases — recording how long it
    waited and on whom; without a scheduler a held latch is a bug. *)
type latch = { mutable holder : int }

type t = {
  mode : mode;
  server : Server.t;
  kernel : Minios.Kernel.t;
  session_id : int;
  trace_id : int;
      (** run-level trace id ([Ldv_obs.Trace]), shared by siblings *)
  snapshot_reads : bool;
      (** pin every query to the DB clock observed when its request was
          sent (snapshot isolation across interleaved sessions) *)
  versioning : Perm.Versioning.t;
  next_qid : int ref;  (** shared across sibling sessions: qids are the
                           global statement order of the run *)
  latch : latch;  (** shared across sibling sessions *)
  inflight : (int, int) Hashtbl.t;
      (** qid -> pinned snapshot of statements currently in flight, shared
          across siblings; feeds the [db.snapshot_age] per-quantum gauge *)
  cluster : Replication.t option ref;
      (** shared across siblings: when a replication cluster is attached,
          snapshot-pinned reads are routed to read replicas and every
          executed write is shipped to them *)
  mutable tx : int;
      (** this session's open transaction id, 0 = autocommit; the
          interceptor re-binds the shared database's ambient session to it
          before every statement *)
  mutable tx_snapshot : int;
      (** the open transaction's begin-snapshot clock (queries pin to it,
          not to the per-statement snapshot) *)
  mutable tx_ship : (int * string) list;
      (** writes executed inside the open transaction, newest first, held
          back from the ship channel until COMMIT makes them durable *)
  mutable log : stmt_event list;  (** newest first *)
  mutable recorded : Recorder.recorded list;  (** audit-excluded, newest first *)
  mutable replay_queue : Recorder.recorded list;  (** replay-excluded, in order *)
  slice : (Tid.t, unit) Hashtbl.t;
      (** deduplicated tuple versions relevant to the run (the paper's
          in-memory hash table, §VII-D); shared across sibling sessions
          so the run's slice stays one deduplicated set *)
  (* §VII-D: the prototype "immediately computes the provenance for every
     operation ... and writes these tuples to files on disk". The eager
     buffers model that write path: server-included audits append each
     newly-sliced tuple's CSV line on first sight (cold first query, warm
     repeats), server-excluded audits append each response as recorded.
     Packaging rebuilds the final artifacts from the dedup table — the
     buffers carry the I/O cost and serve as a cross-check. *)
  eager_csv : Buffer.t;
  eager_recording : Buffer.t;
}

let create ?(mode = Passthrough) ?(session_id = 0) ?(snapshot_reads = false)
    ~kernel (server : Server.t) : t =
  let inflight = Hashtbl.create 16 in
  (* How far behind the current DB clock the oldest in-flight statement's
     pinned snapshot is, sampled once per scheduler round. *)
  let db = Server.db server in
  Ldv_obs.register_quantum_gauge "db.snapshot_age" (fun () ->
      let clock = Database.clock db in
      Hashtbl.fold
        (fun _ snap acc -> Float.max acc (float_of_int (clock - snap)))
        inflight 0.0);
  { mode;
    server;
    kernel;
    session_id;
    trace_id = Ldv_obs.Trace.mint ();
    snapshot_reads;
    versioning = Perm.Versioning.create (Server.db server);
    next_qid = ref 0;
    latch = { holder = -1 };
    inflight;
    cluster = ref None;
    tx = 0;
    tx_snapshot = 0;
    tx_ship = [];
    log = [];
    recorded = [];
    replay_queue = [];
    slice = Hashtbl.create 1024;
    eager_csv = Buffer.create 4096;
    eager_recording = Buffer.create 4096 }

let create_replay ~kernel (server : Server.t)
    (recording : Recorder.recorded list) : t =
  let t = create ~mode:Replay_excluded ~kernel server in
  { t with replay_queue = recording }

(** A sibling session for another client of the same run: it shares the
    mode, server, versioning, qid counter, write latch, in-flight table,
    trace id, slice table and eager buffers (one run, one slice, one
    global statement order) but keeps its own statement log, so each
    session's stream stays attributable. *)
let create_sibling (t : t) ~session_id : t =
  { t with
    session_id;
    tx = 0;
    tx_snapshot = 0;
    tx_ship = [];
    log = [];
    recorded = [];
    replay_queue = [] }

(** Attach a replication cluster to this session (and, through the shared
    ref, to every sibling): reads route to replicas, writes ship. *)
let attach_cluster t (c : Replication.t) = t.cluster := Some c

let cluster t = !(t.cluster)
let log t = List.rev t.log
let kernel_of t = t.kernel
let recorded t = List.rev t.recorded
let mode t = t.mode
let session_id t = t.session_id
let in_tx t = t.tx <> 0
let versioning t = t.versioning

(** Tuple versions accumulated for packaging (before removing
    application-created versions). *)
let slice_tids t =
  Hashtbl.fold (fun tid () acc -> tid :: acc) t.slice []
  |> List.sort Tid.compare

let eager_csv_bytes t = Buffer.length t.eager_csv
let eager_recording_bytes t = Buffer.length t.eager_recording

let add_to_slice t tid =
  if not (Hashtbl.mem t.slice tid) then begin
    Ldv_obs.Ledger.time Ldv_obs.Ledger.Audit_record @@ fun () ->
    Hashtbl.replace t.slice tid ();
    (* write the newly relevant tuple out immediately (§VII-D) *)
    match Perm.Versioning.lookup_version t.versioning tid with
    | Some values ->
      Buffer.add_string t.eager_csv (string_of_int tid.Tid.rid);
      Buffer.add_char t.eager_csv ',';
      Buffer.add_string t.eager_csv (string_of_int tid.Tid.version);
      Array.iter
        (fun v ->
          Buffer.add_char t.eager_csv ',';
          Buffer.add_string t.eager_csv
            (Csv.quote_field (Csv.encode_value v)))
        values;
      Buffer.add_char t.eager_csv '\n'
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Statement execution per mode.                                       *)

let synthetic_result_tid ~qid ~row ~at =
  Tid.make ~table:(Printf.sprintf "#q%d" qid) ~rid:row ~version:at

(** Whether a tid denotes a transient query-result tuple rather than a
    stored tuple version. *)
let is_result_tid (tid : Tid.t) =
  String.length tid.Tid.table > 0 && tid.Tid.table.[0] = '#'

(** Execute one audited statement. [serve] routes a query to a read
    replica's server: the lineage query then runs on the replica's
    database, clock-frozen, so serving the read never perturbs the
    replica's version stamps. Writes always execute on the leader; the
    returned [at_write] is the leader clock observed immediately before a
    mutating statement ran (-1 for queries) — the clock the shipped WAL
    record carries so replicas stamp identically. *)
let exec_audit_included t ~qid ~pid ?serve (ast : Sql_ast.statement)
    (sql : string) :
    Protocol.response * (Tid.t * Tid.t list) list * Tid.t list * Schema.t option
    * Value.t array list * int * int =
  let db = Server.db t.server in
  match ast with
  | Sql_ast.Explain _ ->
    (* plan description only; nothing to audit *)
    let resp = Server.handle t.server (Protocol.Statement { sql }) in
    (resp, [], [], None, Protocol.response_rows resp, 0, -1)
  | Sql_ast.Select _ | Sql_ast.Provenance _ ->
    let serve_db = match serve with Some srv -> Server.db srv | None -> db in
    let prov =
      Ldv_obs.Ledger.time Ldv_obs.Ledger.Provenance @@ fun () ->
      match serve with
      | Some _ ->
        Database.with_frozen_clock serve_db (fun () ->
            Perm.Provenance_sql.query_lineage serve_db sql)
      | None -> Perm.Provenance_sql.query_lineage db sql
    in
    List.iter
      (fun table -> ignore (Perm.Versioning.enable_table t.versioning table))
      prov.Perm.Provenance_sql.read_tables;
    let at = Database.clock serve_db in
    let results =
      Ldv_obs.Ledger.time Ldv_obs.Ledger.Provenance @@ fun () ->
      List.mapi
        (fun i (row : Perm.Provenance_sql.provenance_row) ->
          let rtid = synthetic_result_tid ~qid ~row:i ~at in
          let lineage = Tid.Set.elements row.Perm.Provenance_sql.lineage in
          List.iter
            (fun tid ->
              add_to_slice t tid;
              Perm.Versioning.record_usage t.versioning tid ~qid ~pid ~at)
            lineage;
          (rtid, lineage))
        prov.Perm.Provenance_sql.rows
    in
    let reads =
      Tid.Set.elements (Perm.Provenance_sql.total_lineage prov)
    in
    let rows =
      List.map
        (fun (r : Perm.Provenance_sql.provenance_row) ->
          r.Perm.Provenance_sql.values)
        prov.Perm.Provenance_sql.rows
    in
    ( Protocol.Result_set { schema = prov.Perm.Provenance_sql.schema; rows },
      results,
      reads,
      Some prov.Perm.Provenance_sql.schema,
      rows,
      List.length rows,
      -1 )
  | Sql_ast.Insert _ | Sql_ast.Update _ | Sql_ast.Delete _ ->
    (match ast with
    | Sql_ast.Insert { table; _ }
    | Sql_ast.Update { table; _ }
    | Sql_ast.Delete { table; _ } ->
      ignore (Perm.Versioning.enable_table t.versioning table)
    | _ -> ());
    (* reenact first (provenance of the pre-state), then execute; the ship
       clock is captured between the two so it excludes the reenactment
       query's ticks — replicas apply only the write itself *)
    let _reenactment =
      Ldv_obs.Ledger.time Ldv_obs.Ledger.Provenance @@ fun () ->
      match ast with
      | Sql_ast.Update _ | Sql_ast.Delete _ -> Some (Perm.Reenact.capture db ast)
      | _ -> None
    in
    let at_write = Database.clock db in
    let info =
      match ast with
      | Sql_ast.Insert { table; columns; source } ->
        Database.run_insert db ~table ~columns ~source
      | Sql_ast.Update { table; sets; where } ->
        Database.run_update db ~table ~sets ~where
      | Sql_ast.Delete { table; where } -> Database.run_delete db ~table ~where
      | _ -> assert false
    in
    let at = Database.clock db in
    Ldv_obs.Ledger.time Ldv_obs.Ledger.Audit_record (fun () ->
        List.iter
          (fun tid ->
            add_to_slice t tid;
            Perm.Versioning.record_usage t.versioning tid ~qid ~pid ~at)
          info.Database.read);
    ( Protocol.Command_ok { affected = info.Database.count },
      info.Database.deps,
      info.Database.read,
      None,
      [],
      info.Database.count,
      at_write )
  | Sql_ast.Create_table _ | Sql_ast.Drop_table _ | Sql_ast.Create_index _
  | Sql_ast.Drop_index _ | Sql_ast.Begin_tx | Sql_ast.Commit_tx
  | Sql_ast.Rollback_tx ->
    let at_write = Database.clock db in
    let resp = Server.handle t.server (Protocol.Statement { sql }) in
    (resp, [], [], None, [], 0, at_write)

let exec_passthrough t (sql : string) = Server.handle t.server (Protocol.Statement { sql })

let exec_replay_excluded t ~(kind : stmt_kind) (sql_norm : string) :
    Protocol.response =
  match t.replay_queue with
  | [] ->
    Ldv_obs.counter "recorder.miss";
    raise
      (Replay_divergence
         (Printf.sprintf "no recorded response left for %s" sql_norm))
  | r :: rest ->
    if not (String.equal r.Recorder.rec_sql_norm sql_norm) then begin
      Ldv_obs.counter "recorder.miss";
      raise
        (Replay_divergence
           (Printf.sprintf "expected %s, got %s" r.Recorder.rec_sql_norm
              sql_norm))
    end;
    Ldv_obs.counter "recorder.hit";
    t.replay_queue <- rest;
    (match (kind, r.Recorder.rec_kind) with
    | Squery, Recorder.Rquery ->
      Protocol.Result_set
        { schema = Option.value r.Recorder.rec_schema ~default:[||];
          rows = r.Recorder.rec_rows }
    | (Sinsert | Supdate | Sdelete), Recorder.Rdml ->
      (* writes are acknowledged from the recording and discarded *)
      Protocol.Command_ok { affected = r.Recorder.rec_affected }
    | Sddl, Recorder.Rddl -> Protocol.Ddl_ok
    | _, Recorder.Rerror ->
      (* the original statement failed: reproduce the failure *)
      Protocol.Error_response
        (match r.Recorder.rec_rows with
        | [ [| Value.Str msg |] ] -> msg
        | _ -> "server error")
    | _ ->
      raise
        (Replay_divergence
           (Printf.sprintf "statement kind mismatch for %s" sql_norm)))

(* Snapshot pinning lives in {!Snapshot_pin}, shared with the replication
   router (replicas serve every read pinned at their applied version). *)
let pin_statement = Snapshot_pin.pin_statement

(** Execute one statement on behalf of process [pid]. *)
let execute (t : t) ~pid (sql : string) : Protocol.response =
  if Ldv_obs.enabled () then begin
    (* (re)assert this session's identity on the ambient trace context —
       the scheduler's quantum/wait spans and every child span inherit it *)
    Ldv_obs.Trace.set_trace t.trace_id;
    Ldv_obs.Trace.set_session t.session_id;
    Ldv_obs.Trace.set_stmt (-1)
  end;
  Ldv_obs.with_span "db.stmt" @@ fun () ->
  (* open this statement's overhead account; every ledger frame below
     (parse/plan/exec/wal/fsync/audit/provenance) attributes into it *)
  Ldv_obs.Ledger.stmt_begin ();
  Fun.protect ~finally:Ldv_obs.Ledger.stmt_end @@ fun () ->
  let db = Server.db t.server in
  let ast =
    Ldv_obs.Ledger.time Ldv_obs.Ledger.Parse (fun () -> Sql_parser.parse sql)
  in
  let sql_norm = Pretty.statement_to_string ast in
  let kind = stmt_kind_of_ast ast in
  if Ldv_obs.enabled () then begin
    Ldv_obs.add_attr "kind" (stmt_kind_name kind);
    Ldv_obs.add_attr "mode" (mode_name t.mode);
    (* provenance-node correlation: the same identifiers this statement
       gets in the execution trace ([Prov.Lineage_model.stmt_id],
       [Prov.Bb_model.process_id]) *)
    Ldv_obs.add_attr "prov.stmt" (Printf.sprintf "stmt:%d" !(t.next_qid));
    Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" pid);
    Ldv_obs.add_attr Ldv_obs.Trace.stmt_attr (string_of_int !(t.next_qid));
    Ldv_obs.counter ("db.stmt." ^ stmt_kind_name kind)
  end;
  let qid = !(t.next_qid) in
  t.next_qid := qid + 1;
  if Ldv_obs.enabled () then Ldv_obs.Trace.set_stmt qid;
  (* request leaves the client *)
  let t_start = Minios.Kernel.tick t.kernel in
  Database.sync_clock db ~at:(Minios.Kernel.now t.kernel);
  (* the statement's snapshot is fixed the moment the request is sent... *)
  let snapshot = Database.clock db in
  if Ldv_obs.enabled () then Hashtbl.replace t.inflight qid snapshot;
  Fun.protect ~finally:(fun () -> Hashtbl.remove t.inflight qid)
  @@ fun () ->
  (* ...and the request is now in flight: under a scheduler, other
     sessions may run (and commit) before the server dequeues it *)
  Minios.Kernel.yield_point t.kernel;
  Database.sync_clock db ~at:(Minios.Kernel.now t.kernel);
  let exec_ast, exec_sql =
    if t.snapshot_reads && kind = Squery then
      (* inside a transaction the pin is the *begin* snapshot, not the
         per-statement one: every read of the transaction sees one
         consistent state (plus its own writes) *)
      let pin_at = if t.tx <> 0 then t.tx_snapshot else snapshot in
      let pinned = pin_statement pin_at ast in
      (pinned, Pretty.statement_to_string pinned)
    else (ast, sql)
  in
  (* acquire the shared write latch *)
  if t.latch.holder >= 0 then begin
    if not (Minios.Kernel.preemptive t.kernel) then
      (* no scheduler, so nobody can ever release it: a reentrancy bug *)
      invalid_arg
        "Interceptor.execute: statement execution is session-serialized, but \
         a statement is already executing";
    let holder = t.latch.holder in
    let wait_start = if Ldv_obs.enabled () then Ldv_obs.now () else 0.0 in
    let spins = ref 0 in
    while t.latch.holder >= 0 do
      incr spins;
      Minios.Kernel.yield_point t.kernel
    done;
    if Ldv_obs.enabled () then begin
      let dur = Ldv_obs.now () -. wait_start in
      Ldv_obs.counter "latch.waits";
      Ldv_obs.counter ~by:!spins "latch.wait_rounds";
      Ldv_obs.observe "latch.wait" dur;
      (* who held the latch when the wait began: cross-session causality *)
      Ldv_obs.emit_span
        ~attrs:[ ("latch.holder", string_of_int holder) ]
        ~start:wait_start ~dur "wait.latch"
    end
  end;
  t.latch.holder <- t.session_id;
  (* the server now owns the statement; executing it is a scheduling step
     of its own, so the latch stays held across a quantum boundary and
     cross-session contention is real (and observable) *)
  Minios.Kernel.yield_point t.kernel;
  Database.sync_clock db ~at:(Minios.Kernel.now t.kernel);
  (* with a cluster attached, a pinned read routes to a replica that can
     serve its snapshot exactly; [None] falls back to the leader *)
  let routed =
    match !(t.cluster) with
    | Some cl when kind = Squery && t.snapshot_reads && t.tx = 0 ->
      (* transactional reads stay on the leader: a replica cannot see the
         transaction's own uncommitted writes *)
      Replication.route_read cl ~snapshot
    | Some _ | None -> None
  in
  let response, results, reads, schema, rows, affected, replica =
    Fun.protect
      ~finally:(fun () -> t.latch.holder <- -1)
    @@ fun () ->
    let at_dispatch = Database.clock db in
    (* bind the shared database's ambient session to this session's
       transaction — the previous statement (from any sibling) may have
       left a different one current *)
    if t.mode <> Replay_excluded then begin
      try Database.set_current_tx db t.tx
      with Errors.Db_error (Errors.Tx_state _) ->
        (* the transaction no longer exists (e.g. torn down by a campaign
           between statements): demote the session to autocommit *)
        t.tx <- 0;
        t.tx_snapshot <- 0;
        t.tx_ship <- [];
        Database.set_current_tx db 0
    end;
    let tx_before = t.tx in
    (* first-updater-wins: the losing transaction aborts immediately; its
       writes are rolled back before the typed conflict surfaces, so the
       client can retry the whole transaction from a clean slate *)
    let abort_tx ~detail =
      if t.tx <> 0 then begin
        if Database.current_tx db <> 0 then Database.rollback_tx db;
        t.tx <- 0;
        t.tx_snapshot <- 0;
        t.tx_ship <- [];
        Ldv_obs.counter "tx.abort"
      end;
      Ldv_errors.fail (Ldv_errors.Tx_conflict { op = "db.stmt"; detail })
    in
    if
      t.tx <> 0
      && (match kind with Sinsert | Supdate | Sdelete -> true | _ -> false)
      && Ldv_faults.abort_fault ()
    then abort_tx ~detail:"injected write-write conflict";
    let response, results, reads, schema, rows, affected, at_write, replica =
      try
      match t.mode with
      | Passthrough -> (
        match routed with
        | Some (srv, rid) ->
          let rdb = Server.db srv in
          let resp =
            Database.with_frozen_clock rdb (fun () ->
                Server.handle srv (Protocol.Statement { sql = exec_sql }))
          in
          (resp, [], [], None, Protocol.response_rows resp, 0, -1, rid)
        | None ->
          let resp = exec_passthrough t exec_sql in
          ( resp, [], [], None, Protocol.response_rows resp, 0, at_dispatch,
            -1 ))
      | Audit_included ->
        let serve, rid =
          match routed with Some (srv, rid) -> (Some srv, rid) | None -> (None, -1)
        in
        let resp, results, reads, schema, rows, affected, at_write =
          exec_audit_included t ~qid ~pid ?serve exec_ast exec_sql
        in
        (resp, results, reads, schema, rows, affected, at_write, rid)
      | Audit_excluded ->
        let resp = exec_passthrough t exec_sql in
        let rec_schema, rec_rows, rec_affected =
          Ldv_obs.Ledger.time Ldv_obs.Ledger.Audit_record @@ fun () ->
          let rec_kind, rec_schema, rec_rows, rec_affected =
            match resp with
            | Protocol.Result_set { schema; rows } ->
              (Recorder.Rquery, Some schema, rows, List.length rows)
            | Protocol.Command_ok { affected } ->
              (Recorder.Rdml, None, [], affected)
            | Protocol.Error_response msg ->
              (* the original run failed here; replay must fail identically *)
              (Recorder.Rerror, None, [ [| Value.Str msg |] ], 0)
            | Protocol.Ddl_ok | Protocol.Connected _ ->
              (Recorder.Rddl, None, [], 0)
          in
          let record =
            { Recorder.rec_index = qid;
              rec_sql_norm = sql_norm;
              rec_kind;
              rec_schema;
              rec_rows;
              rec_affected }
          in
          t.recorded <- record :: t.recorded;
          (* write the response to the package file as it happens *)
          Buffer.add_string t.eager_recording (Recorder.encode [ record ]);
          (rec_schema, rec_rows, rec_affected)
        in
        (resp, [], [], rec_schema, rec_rows, rec_affected, at_dispatch, -1)
      | Replay_excluded ->
        let resp = exec_replay_excluded t ~kind sql_norm in
        (resp, [], [], None, Protocol.response_rows resp, 0, -1, -1)
      with Errors.Db_error (Errors.Serialization_failure detail) ->
        abort_tx ~detail
    in
    (* pick up the BEGIN/COMMIT/ROLLBACK transition this statement made *)
    if t.mode <> Replay_excluded then begin
      t.tx <- Database.current_tx db;
      t.tx_snapshot <-
        (if t.tx = 0 then 0
         else Option.value ~default:0 (Database.current_snapshot db))
    end;
    (* ship every successfully executed write to the replicas before the
       latch releases, so the ship order is the execution order;
       transactional writes are held back until their COMMIT executes —
       a replica must never apply writes the leader may yet roll back *)
    (match !(t.cluster) with
    | Some cl
      when kind <> Squery && at_write >= 0 && t.mode <> Replay_excluded -> (
      match response with
      | Protocol.Error_response _ -> ()
      | _ -> (
        match ast with
        | Sql_ast.Begin_tx -> ()
        | Sql_ast.Commit_tx ->
          List.iter
            (fun (at, sql) -> Replication.note_write cl ~at sql)
            (List.rev t.tx_ship);
          t.tx_ship <- []
        | Sql_ast.Rollback_tx -> t.tx_ship <- []
        | _ ->
          if tx_before <> 0 then
            t.tx_ship <- (at_write, sql_norm) :: t.tx_ship
          else Replication.note_write cl ~at:at_write sql_norm))
    | Some _ | None -> ());
    (response, results, reads, schema, rows, affected, replica)
  in
  (* response returns to the client *)
  Minios.Kernel.advance_to t.kernel ~at:(Database.clock db);
  let t_end = Minios.Kernel.tick t.kernel in
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(Protocol.response_bytes response)
      "db.stmt.response_bytes";
    Ldv_obs.observe "db.stmt.roundtrip_ticks" (float_of_int (t_end - t_start))
  end;
  t.log <-
    { qid;
      sid = t.session_id;
      pid;
      sql;
      sql_norm;
      kind;
      t_start;
      t_end;
      snapshot;
      replica;
      results;
      reads;
      schema;
      rows;
      affected;
      response_bytes = Protocol.response_bytes response }
    :: t.log;
  (* statement over: quanta spent between statements must not carry its id *)
  if Ldv_obs.enabled () then Ldv_obs.Trace.set_stmt (-1);
  response

(* ------------------------------------------------------------------ *)
(* Session registry: programs discover their session through the kernel
   they run on, so application code is mode-agnostic. Concurrent runs
   additionally bind a session per (kernel, pid), so each scheduled
   client process connects to its own session; [find_for] falls back to
   the kernel-wide binding for single-session runs.                    *)

let sessions : (Minios.Kernel.t * t) list ref = ref []
let pid_sessions : ((Minios.Kernel.t * int) * t) list ref = ref []

let bind kernel session =
  sessions := (kernel, session) :: List.filter (fun (k, _) -> k != kernel) !sessions

let unbind kernel = sessions := List.filter (fun (k, _) -> k != kernel) !sessions

let bind_for kernel ~pid session =
  pid_sessions :=
    ((kernel, pid), session)
    :: List.filter (fun ((k, p), _) -> not (k == kernel && p = pid)) !pid_sessions

let unbind_for kernel ~pid =
  pid_sessions :=
    List.filter (fun ((k, p), _) -> not (k == kernel && p = pid)) !pid_sessions

let find kernel =
  match List.find_opt (fun (k, _) -> k == kernel) !sessions with
  | Some (_, s) -> s
  | None -> invalid_arg "Interceptor.find: no DB session bound to this kernel"

let find_for kernel ~pid =
  match
    List.find_opt (fun ((k, p), _) -> k == kernel && p = pid) !pid_sessions
  with
  | Some (_, s) -> s
  | None -> find kernel
