(** Crash-consistent execution for the minidb server: WAL-before-execute,
    explicit fsync barriers, checkpoints, and redo recovery.

    Layered on {!Server}: every DML/DDL statement is first appended to
    [<data_dir>/wal.log] through the kernel's buffered write path, the
    fsync barrier is raised according to the commit policy below, and only
    then does the statement execute. A {!checkpoint} folds the WAL into a
    single atomic image ([<data_dir>/checkpoint.img]) and empties the log;
    {!recover} rebuilds the database after a crash from the image plus the
    durable WAL suffix.

    Fsync policy: autocommit statements and transaction terminators
    (COMMIT / ROLLBACK) sync the log before executing; BEGIN and
    statements inside an open transaction do not. A crash between a
    transaction's writes and its COMMIT fsync therefore loses the whole
    transaction atomically — its records are either all durable (the
    COMMIT fsync covered them) or dropped as a trailing open transaction
    by {!Wal.durable_cut}.

    Commit policy: [Per_statement] raises the barrier inline, as above.
    [Grouped] (group commit) only marks a sync as pending; the barrier is
    raised by the next {!flush} — under the scheduler, a quantum hook
    flushes once per scheduling round, so all commits within the quantum
    share one fsync. Durability is correspondingly relaxed to the quantum
    boundary: a crash mid-quantum loses the unflushed statements, exactly
    as a crash before a per-statement fsync would lose that statement —
    recovery semantics are unchanged, only the barrier count drops.

    Crash points (see [Ldv_faults.crash_point]) mark the interesting
    windows: [wal.append] (record buffered, nothing synced — tail may
    tear), [wal.pre_fsync] (record complete but not durable),
    [stmt.post_exec] (durable but memory state ahead of the last
    checkpoint), [ckpt.image] (new image buffered only), [ckpt.pre_rename]
    (image durable under its temporary name), [ckpt.pre_gc] (image
    published, WAL not yet emptied — recovery must not double-apply), and
    [tx.undo] (mid-way through a rollback's undo walk). *)

open Minidb

type commit_policy = Per_statement | Grouped

type t = {
  server : Server.t;
  kernel : Minios.Kernel.t;
  pid : int;  (** the server process performing WAL/checkpoint I/O *)
  mutable next_seq : int;  (** sequence number of the next WAL record *)
  sids : (int, int) Hashtbl.t;
      (** session id -> its open transaction id; the handle multiplexes
          many sessions over one database by switching the ambient
          transaction around each statement *)
  mutable policy : commit_policy;
  mutable pending_sync : bool;  (** a grouped commit awaits the next flush *)
  mutable fsync_barriers : int;  (** barriers raised over this handle *)
  (* group-commit stall accounting (collected only while a sink is
     enabled): when the batch's first sync was deferred and in which
     scheduler round, so [flush] can report the stall and rounds-deferred *)
  mutable pending_count : int;
  mutable pending_first : float;
  mutable pending_round : int;
}

let server t = t.server
let next_seq t = t.next_seq
let policy t = t.policy
let set_policy t p = t.policy <- p
let fsync_barriers t = t.fsync_barriers

let wal_path (server : Server.t) = Server.data_dir server ^ "/wal.log"
let checkpoint_path (server : Server.t) = Server.data_dir server ^ "/checkpoint.img"
let checkpoint_tmp_path (server : Server.t) = checkpoint_path server ^ ".new"

let kind_of_sql (sql : string) : Wal.kind =
  match Sql_parser.parse sql with
  | Sql_ast.Begin_tx -> Wal.Begin
  | Sql_ast.Commit_tx -> Wal.Commit
  | Sql_ast.Rollback_tx -> Wal.Rollback
  | _ -> Wal.Stmt

(** Wrap a freshly installed (or recovered) server whose process [pid]
    performs the durability I/O. [next_seq] continues from whatever the
    checkpoint and log already contain. *)
let start (kernel : Minios.Kernel.t) (server : Server.t) ~pid : t =
  let vfs = Minios.Kernel.vfs kernel in
  let ck_seq =
    match Minios.Vfs.find_opt vfs (checkpoint_path server) with
    | Some { Minios.Vfs.content = Minios.Vfs.Data _; _ } ->
      (* peek at the stamp without touching the database *)
      let probe = Database.create () in
      Server.restore_checkpoint probe (Minios.Vfs.read vfs (checkpoint_path server))
    | _ -> 0
  in
  let wal_seq =
    List.fold_left
      (fun acc (r : Wal.record) -> max acc r.Wal.seq)
      0
      (Wal.load vfs (wal_path server)).Wal.records
  in
  let t =
    { server;
      kernel;
      pid;
      next_seq = max ck_seq wal_seq + 1;
      sids = Hashtbl.create 8;
      policy = Per_statement;
      pending_sync = false;
      fsync_barriers = 0;
      pending_count = 0;
      pending_first = 0.0;
      pending_round = 0 }
  in
  (* let crash campaigns kill the process mid-rollback *)
  Database.on_undo_step := (fun () -> Ldv_faults.crash_point ~site:"tx.undo");
  Ldv_obs.register_quantum_gauge "wal.fsync_barriers" (fun () ->
      float_of_int t.fsync_barriers);
  t

(** Raise one fsync barrier over the WAL. *)
let barrier (t : t) : unit =
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Fsync @@ fun () ->
  Ldv_faults.crash_point ~site:"wal.pre_fsync";
  Minios.Kernel.fsync_path t.kernel ~pid:t.pid ~path:(wal_path t.server);
  t.fsync_barriers <- t.fsync_barriers + 1;
  Ldv_obs.counter "wal.fsync"

(** Make every pending grouped commit durable with a single barrier; a
    no-op when nothing is pending. Under the scheduler this runs as a
    quantum hook, once per scheduling round. *)
let flush (t : t) : unit =
  if t.pending_sync then begin
    t.pending_sync <- false;
    barrier t;
    Ldv_obs.counter "wal.group_commit";
    if Ldv_obs.enabled () && t.pending_count > 0 then begin
      (* the batch stalled from its first deferred sync until this barrier *)
      let stall = Ldv_obs.now () -. t.pending_first in
      Ldv_obs.observe "wal.group_commit.stall" stall;
      Ldv_obs.counter
        ~by:(max 0 (Minios.Kernel.rounds t.kernel - t.pending_round))
        "wal.group_commit.rounds_deferred";
      Ldv_obs.counter ~by:t.pending_count "wal.group_commit.batched";
      Ldv_obs.emit_span
        ~attrs:[ ("wal.batch", string_of_int t.pending_count) ]
        ~start:t.pending_first ~dur:stall "wait.group-commit"
    end;
    t.pending_count <- 0
  end

(* Point the database's ambient session at [sid]'s open transaction (none
   = autocommit). Defensive about a transaction that vanished underneath
   the map (e.g. rolled back behind our back): falls back to autocommit. *)
let switch_session (t : t) (db : Database.t) ~sid =
  let tx = Option.value ~default:0 (Hashtbl.find_opt t.sids sid) in
  try Database.set_current_tx db tx
  with Minidb.Errors.Db_error _ ->
    Hashtbl.remove t.sids sid;
    Database.set_current_tx db 0

(* After a statement, remember where [sid]'s session ended up (BEGIN
   opened a transaction, COMMIT/ROLLBACK closed one, errors left it). *)
let note_session (t : t) (db : Database.t) ~sid =
  match Database.current_tx db with
  | 0 -> Hashtbl.remove t.sids sid
  | id -> Hashtbl.replace t.sids sid id

(** Execute one SQL statement durably for session [sid]: log, sync if the
    policy demands it, then run it. Returns the server's response. *)
let exec ?(sid = 0) (t : t) (sql : string) : Protocol.response =
  let kind = kind_of_sql sql in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let path = wal_path t.server in
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Wal_append (fun () ->
      Wal.append t.kernel ~pid:t.pid ~path { Wal.seq; kind; sid; sql });
  Ldv_faults.crash_point ~site:"wal.append";
  let db = Server.db t.server in
  let sync_needed =
    match kind with
    | Wal.Commit | Wal.Rollback -> true
    | Wal.Begin -> false
    | Wal.Stmt -> not (Hashtbl.mem t.sids sid)
  in
  if sync_needed then begin
    match t.policy with
    | Per_statement -> barrier t
    | Grouped ->
      t.pending_sync <- true;
      Ldv_obs.counter "wal.deferred_sync";
      if Ldv_obs.enabled () then begin
        if t.pending_count = 0 then begin
          t.pending_first <- Ldv_obs.now ();
          t.pending_round <- Minios.Kernel.rounds t.kernel
        end;
        t.pending_count <- t.pending_count + 1
      end
  end;
  switch_session t db ~sid;
  let resp = Server.handle t.server (Protocol.Statement { sql }) in
  note_session t db ~sid;
  Ldv_faults.crash_point ~site:"stmt.post_exec";
  resp

(** Arm group commit on this handle: switch the policy and register the
    flush as a quantum hook so each scheduling round ends with at most
    one barrier covering every commit of the quantum. *)
let enable_group_commit (t : t) : unit =
  t.policy <- Grouped;
  Minios.Kernel.register_quantum_hook t.kernel ~name:"wal.group-commit"
    (fun () -> flush t)

(** Fold the current database state into a fresh checkpoint image and
    empty the WAL. The image is written to a temporary name, fsynced,
    and atomically renamed into place before the log is truncated, so a
    crash in any window leaves either the old image + full log or the new
    image (+ a log whose covered prefix recovery skips by sequence
    number). Must not run inside an open transaction. *)
let checkpoint (t : t) : unit =
  Ldv_obs.with_span "server.checkpoint" @@ fun () ->
  let db = Server.db t.server in
  if Database.open_tx_count db > 0 then
    invalid_arg "Durable.checkpoint: open transaction";
  (* the image must not get ahead of the log's durable prefix *)
  flush t;
  let payload = Server.encode_checkpoint db ~last_seq:(t.next_seq - 1) in
  let tmp = checkpoint_tmp_path t.server in
  Minios.Kernel.overwrite_path t.kernel ~pid:t.pid ~path:tmp payload;
  Ldv_faults.crash_point ~site:"ckpt.image";
  Minios.Kernel.fsync_path t.kernel ~pid:t.pid ~path:tmp;
  Ldv_faults.crash_point ~site:"ckpt.pre_rename";
  Minios.Kernel.rename_path t.kernel ~pid:t.pid ~src:tmp
    ~dst:(checkpoint_path t.server);
  Ldv_faults.crash_point ~site:"ckpt.pre_gc";
  let wal = wal_path t.server in
  Minios.Kernel.overwrite_path t.kernel ~pid:t.pid ~path:wal "";
  Minios.Kernel.fsync_path t.kernel ~pid:t.pid ~path:wal;
  Ldv_obs.counter "server.checkpoint"

type recovery = {
  checkpoint_seq : int;  (** WAL records at or below this were skipped *)
  redone : int;  (** durable records re-executed *)
  dropped : int;  (** open-transaction records discarded *)
  dropped_records : Wal.record list;
      (** the discarded records themselves (original order): campaigns map
          them back to the transactions that were rolled back *)
  torn_bytes : int;  (** trailing log bytes discarded as torn/corrupt *)
  redo_upto : int;  (** highest sequence number folded into the DB *)
}

(** Rebuild the database after a crash: load the checkpoint image if one
    is published, discard any stray temporary image, then redo the
    durable WAL suffix past the checkpoint — stopping before a trailing
    open transaction, whose records are dropped. Records replay
    *literally* (BEGIN / COMMIT / ROLLBACK included), so a durably
    rolled-back transaction re-executes and re-undoes itself, keeping the
    logical clock aligned with an uncrashed run. Ends with a fresh
    checkpoint so the log is empty for the resumed workload.

    [apply:false] ([ldv crashcheck --no-recover]) parses but skips the
    redo and final checkpoint: the debug mode that demonstrates the
    verifier catches lost work. *)
let recover ?(apply = true) (kernel : Minios.Kernel.t) ~data_dir () :
    t * recovery =
  Ldv_obs.with_span "server.recover" @@ fun () ->
  let db = Database.create () in
  let server = Server.attach ~data_dir db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  let pid = proc.Minios.Kernel.pid in
  let vfs = Minios.Kernel.vfs kernel in
  (* a stray temporary image is a checkpoint that never published *)
  Minios.Vfs.remove vfs (checkpoint_tmp_path server);
  let ck_seq =
    match Minios.Vfs.find_opt vfs (checkpoint_path server) with
    | Some { Minios.Vfs.content = Minios.Vfs.Data payload; _ } ->
      Server.restore_checkpoint db payload
    | _ -> 0
  in
  let loaded = Wal.load vfs (wal_path server) in
  let suffix =
    List.filter (fun (r : Wal.record) -> r.Wal.seq > ck_seq) loaded.Wal.records
  in
  let replay, dropped, redo_upto = Wal.durable_cut ~fallback:ck_seq suffix in
  if apply then begin
    (* records replay literally, but under the session (and so the open
       transaction) that logged them: a durably committed transaction
       re-executes BEGIN..COMMIT with foreign statements interleaved
       exactly as at run time, reproducing the original version stamps *)
    let sids = Hashtbl.create 8 in
    List.iter
      (fun (r : Wal.record) ->
        let tx =
          Option.value ~default:0 (Hashtbl.find_opt sids r.Wal.sid)
        in
        (try Database.set_current_tx db tx
         with Minidb.Errors.Db_error _ -> Database.set_current_tx db 0);
        ignore (Server.handle server (Protocol.Statement { sql = r.Wal.sql }));
        match Database.current_tx db with
        | 0 -> Hashtbl.remove sids r.Wal.sid
        | id -> Hashtbl.replace sids r.Wal.sid id)
      replay;
    (* every replayed transaction is durably terminated, so nothing can be
       left open here; reset the ambient session all the same *)
    Database.set_current_tx db 0
  end;
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(List.length replay) "server.recover.redone";
    Ldv_obs.counter ~by:(List.length dropped) "server.recover.dropped";
    Ldv_obs.counter ~by:loaded.Wal.torn_bytes "server.recover.torn_bytes"
  end;
  let t =
    { server;
      kernel;
      pid;
      next_seq = redo_upto + 1;
      sids = Hashtbl.create 8;
      policy = Per_statement;
      pending_sync = false;
      fsync_barriers = 0;
      pending_count = 0;
      pending_first = 0.0;
      pending_round = 0 }
  in
  Database.on_undo_step := (fun () -> Ldv_faults.crash_point ~site:"tx.undo");
  Ldv_obs.register_quantum_gauge "wal.fsync_barriers" (fun () ->
      float_of_int t.fsync_barriers);
  if apply then checkpoint t;
  ( t,
    { checkpoint_seq = ck_seq;
      redone = List.length replay;
      dropped = List.length dropped;
      dropped_records = dropped;
      torn_bytes = loaded.Wal.torn_bytes;
      redo_upto } )
