(** The minidb write-ahead log.

    One record per DML/DDL statement, appended through the kernel's
    buffered write path *before* the statement executes, framed as

    {v @<seq> <kind> <sid> <len> <crc32-hex>\n<payload>\n v}

    where [kind] is one of [B]/[C]/[R]/[S] (BEGIN / COMMIT / ROLLBACK /
    ordinary statement), [sid] identifies the session that issued the
    statement (0 for a single-session log), and the payload is the
    newline-escaped SQL text. The CRC32 covers the payload, so a torn
    tail — a record whose bytes only partially reached the platter before
    a crash — is detected and discarded at recovery rather than misparsed.

    Recovery policy lives in {!durable_cut}: records inside an *open*
    (never durably terminated) transaction are dropped, per session. A
    transaction whose COMMIT record is durable replays in full; one whose
    COMMIT never reached the platter is dropped atomically; a durable
    ROLLBACK replays literally (executing the ROLLBACK undoes its own
    writes) so the recovered database's logical clock stays aligned with
    an uncrashed run. *)

type kind = Begin | Commit | Rollback | Stmt

type record = { seq : int; kind : kind; sid : int; sql : string }

let kind_char = function
  | Begin -> 'B'
  | Commit -> 'C'
  | Rollback -> 'R'
  | Stmt -> 'S'

let kind_of_char = function
  | 'B' -> Some Begin
  | 'C' -> Some Commit
  | 'R' -> Some Rollback
  | 'S' -> Some Stmt
  | _ -> None

(* Newline-escape the SQL so each payload is framing-safe. *)
let escape (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | c -> Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode (r : record) : string =
  let payload = escape r.sql in
  Printf.sprintf "@%d %c %d %d %08lx\n%s\n" r.seq (kind_char r.kind) r.sid
    (String.length payload)
    (Ldv_faults.Crc32.digest payload)
    payload

(** Append one record to the log at [path] (buffered: the caller decides
    when to raise the fsync barrier). *)
let append (kernel : Minios.Kernel.t) ~pid ~path (r : record) : unit =
  let bytes = encode r in
  Minios.Kernel.append_path kernel ~pid ~path bytes;
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter "wal.append";
    Ldv_obs.counter ~by:(String.length bytes) "wal.bytes"
  end

type loaded = {
  records : record list;  (** cleanly framed, CRC-verified records, in order *)
  torn_bytes : int;
      (** trailing bytes discarded because a record was torn or corrupt *)
}

(* Parse one frame of [data] starting at [pos]; [Some (record, next)] only
   when the frame is whole and its payload CRC verifies. *)
let parse_frame (data : string) (pos : int) : (record * int) option =
  let n = String.length data in
  if pos >= n || data.[pos] <> '@' then None
  else
    match String.index_from_opt data pos '\n' with
    | None -> None
    | Some nl -> (
      let header = String.sub data (pos + 1) (nl - pos - 1) in
      match String.split_on_char ' ' header with
      | [ seq_s; kind_s; sid_s; len_s; crc_s ] -> (
        match
          ( int_of_string_opt seq_s,
            (if String.length kind_s = 1 then kind_of_char kind_s.[0]
             else None),
            int_of_string_opt sid_s,
            int_of_string_opt len_s,
            (try Some (Int32.of_string ("0x" ^ crc_s)) with Failure _ -> None)
          )
        with
        | Some seq, Some kind, Some sid, Some len, Some crc
          when len >= 0 && nl + 1 + len < n && data.[nl + 1 + len] = '\n' ->
          let payload = String.sub data (nl + 1) len in
          if Ldv_faults.Crc32.digest payload = crc then
            Some ({ seq; kind; sid; sql = unescape payload }, nl + 1 + len + 1)
          else None
        | _ -> None)
      | _ -> None)

(** Decode exactly one framed record (the WAL-ship channel's unit of
    transfer). [None] on truncation, trailing garbage, or CRC mismatch —
    a garbled ship frame is detected here, at the receiving replica. *)
let decode_frame (frame : string) : record option =
  match parse_frame frame 0 with
  | Some (r, next) when next = String.length frame -> Some r
  | Some _ | None -> None

(** Parse the log, stopping at the first torn or corrupt record: anything
    after a bad frame is untrustworthy tail. A missing file is an empty
    log. Discarded tails are surfaced: a [wal.torn_bytes] counter and a
    typed {!Ldv_errors.Wal_torn} warning, so a torn tail outside a crash
    campaign is visible instead of silently dropped. *)
let load (vfs : Minios.Vfs.t) (path : string) : loaded =
  let data =
    match Minios.Vfs.find_opt vfs path with
    | Some { Minios.Vfs.content = Minios.Vfs.Data s; _ } -> s
    | Some { Minios.Vfs.content = Minios.Vfs.Opaque _; _ } | None -> ""
  in
  let n = String.length data in
  let records = ref [] in
  let pos = ref 0 in
  let torn = ref false in
  while (not !torn) && !pos < n do
    match parse_frame data !pos with
    | Some (r, next) ->
      records := r :: !records;
      pos := next
    | None -> torn := true
  done;
  let torn_bytes = n - !pos in
  if torn_bytes > 0 then begin
    if Ldv_obs.enabled () then
      Ldv_obs.counter ~by:torn_bytes "wal.torn_bytes";
    Ldv_errors.warn (Ldv_errors.Wal_torn { path; bytes = torn_bytes })
  end;
  { records = List.rev !records; torn_bytes }

(** Split durable records into the replayable part and the dropped open
    transactions. Open-transaction accounting is per session ([sid]):
    interleaved frames from concurrent sessions must not corrupt each
    other's depth, so a session that crashed mid-transaction loses exactly
    its own records from its unterminated BEGIN onward, while every other
    session's records — including those logged after that BEGIN — replay.
    Returns [(replay, dropped, redo_upto)], both lists in original log
    order; [redo_upto] is the highest replayable sequence number (or
    [fallback] when none is).

    Per-session state is a boolean open-flag, not a depth counter:
    WAL-before-execute also logs frames for statements that then fail (a
    second BEGIN inside a transaction, a stray COMMIT outside one), and
    literal re-execution makes those no-ops — the accounting here must
    agree with what replaying the log actually does. *)
let durable_cut ?(fallback = 0) (records : record list) :
    record list * record list * int =
  (* pass 1: per session, the index of the BEGIN left open at log end *)
  let open_at : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i r ->
      match r.kind with
      | Begin ->
        if not (Hashtbl.mem open_at r.sid) then Hashtbl.replace open_at r.sid i
      | Commit | Rollback -> Hashtbl.remove open_at r.sid
      | Stmt -> ())
    records;
  (* pass 2: drop each crashed session's records from its open BEGIN on *)
  let replay = ref [] and dropped = ref [] in
  List.iteri
    (fun i r ->
      match Hashtbl.find_opt open_at r.sid with
      | Some j when i >= j -> dropped := r :: !dropped
      | _ -> replay := r :: !replay)
    records;
  let replay = List.rev !replay and dropped = List.rev !dropped in
  let redo_upto = List.fold_left (fun acc r -> max acc r.seq) fallback replay in
  (replay, dropped, redo_upto)
