(** Recording and replaying DB responses for server-excluded packages.

    During a server-excluded audit every statement's response is recorded;
    during replay the recorded responses are substituted for real execution
    (§VII-D / §VIII). The serialized form lives inside the package, so its
    byte size is exactly what Figure 9 charges the server-excluded
    option. *)

open Minidb

type kind = Rquery | Rdml | Rddl | Rerror
(** [Rerror] records a server error response: the original run failed on
    this statement, so a faithful replay must fail identically. The error
    message is stored as the record's single row. *)

type recorded = {
  rec_index : int;  (** position in the original statement order *)
  rec_sql_norm : string;  (** normalized statement text, the match key *)
  rec_kind : kind;
  rec_schema : Schema.t option;
  rec_rows : Value.t array list;
  rec_affected : int;
}

let kind_tag = function
  | Rquery -> "Q"
  | Rdml -> "M"
  | Rddl -> "D"
  | Rerror -> "E"

let kind_of_tag_opt = function
  | "Q" -> Some Rquery
  | "M" -> Some Rdml
  | "D" -> Some Rddl
  | "E" -> Some Rerror
  | _ -> None

let ty_tag = function
  | Value.Tint -> "i"
  | Value.Tfloat -> "f"
  | Value.Tstr -> "s"
  | Value.Tbool -> "b"

let ty_of_tag = function
  | "i" -> Value.Tint
  | "f" -> Value.Tfloat
  | "s" -> Value.Tstr
  | "b" -> Value.Tbool
  | s -> invalid_arg (Printf.sprintf "Recorder: bad type tag %S" s)

let encode_schema (s : Schema.t) =
  Array.to_list s
  |> List.map (fun (c : Schema.column) ->
         Printf.sprintf "%s:%s" c.Schema.name (ty_tag c.Schema.ty))
  |> String.concat ","

let decode_schema (s : string) : Schema.t =
  if s = "" then [||]
  else
    String.split_on_char ',' s
    |> List.map (fun field ->
           match String.rindex_opt field ':' with
           | None -> invalid_arg "Recorder: malformed schema field"
           | Some i ->
             Schema.column (String.sub field 0 i)
               (ty_of_tag
                  (String.sub field (i + 1) (String.length field - i - 1))))
    |> Schema.of_list

(* Statements and rows are stored one per line with tab-separated fields;
   embedded newlines, tabs and backslashes are escaped. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = '\\' && !i + 1 < n then begin
      (match s.[!i + 1] with
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | '\\' -> Buffer.add_char buf '\\'
      | c ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode (records : recorded list) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "S\t%d\t%s\t%d\t%s\t%s\n" r.rec_index
           (kind_tag r.rec_kind) r.rec_affected
           (match r.rec_schema with
           | None -> "-"
           | Some s -> escape (encode_schema s))
           (escape r.rec_sql_norm));
      List.iter
        (fun row ->
          Buffer.add_string buf "R";
          Array.iter
            (fun v ->
              Buffer.add_char buf '\t';
              Buffer.add_string buf (escape (Csv.encode_value v)))
            row;
          Buffer.add_char buf '\n')
        r.rec_rows)
    records;
  Buffer.contents buf

let decode (data : string) : recorded list =
  let records = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some r -> records := { r with rec_rows = List.rev r.rec_rows } :: !records
    | None -> ()
  in
  String.split_on_char '\n' data
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         let fail fmt =
           Format.kasprintf
             (fun what ->
               Ldv_errors.fail (Ldv_errors.Decode_error { line = lineno; what }))
             fmt
         in
         let int_field what s =
           match int_of_string_opt s with
           | Some v -> v
           | None -> fail "bad %s %S" what s
         in
         if String.length line = 0 then ()
         else
           match String.split_on_char '\t' line with
           | "S" :: index :: kind :: affected :: schema :: sql ->
             flush ();
             current :=
               Some
                 { rec_index = int_field "statement index" index;
                   rec_kind =
                     (match kind_of_tag_opt kind with
                     | Some k -> k
                     | None -> fail "bad kind tag %S" kind);
                   rec_affected = int_field "affected count" affected;
                   rec_schema =
                     (if schema = "-" then None
                      else
                        match decode_schema (unescape schema) with
                        | s -> Some s
                        | exception Invalid_argument what -> fail "%s" what);
                   (* the sql field may itself contain tabs *)
                   rec_sql_norm = unescape (String.concat "\t" sql);
                   rec_rows = [] }
           | "R" :: fields ->
             (match !current with
             | None -> fail "row before statement"
             | Some r ->
               let row =
                 match
                   List.map (fun f -> Csv.decode_value (unescape f)) fields
                 with
                 | values -> Array.of_list values
                 | exception Errors.Db_error k -> fail "%s" (Errors.to_string k)
                 | exception Failure what -> fail "bad row value: %s" what
               in
               current := Some { r with rec_rows = row :: r.rec_rows })
           | _ -> fail "unrecognized line %S" line);
  flush ();
  List.rev !records

let byte_size (records : recorded list) : int =
  String.length (encode records)
