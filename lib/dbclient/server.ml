(** The DB server as a deployable artifact in the simulated OS.

    A server owns a {!Minidb.Database.t}, a binary installed in the VFS
    (opaque bytes: its size matters for package accounting, its content
    does not), and a data directory whose files hold the CSV-serialized
    live state of each table. Starting the server under tracing makes the
    server process read its binary and data files — which is how PTU-style
    packaging comes to include the full DB, exactly as in the paper's
    baseline configuration (§IX-A). *)

open Minidb

(* Sizes modeled on a stock PostgreSQL 9.x install. *)
let default_binary_size = 38_000_000
let default_lib_sizes = [ ("libpq.so.5", 900_000); ("libssl.so", 2_300_000) ]

type t = {
  db : Database.t;
  binary_path : string;
  lib_paths : string list;
  data_dir : string;
  mutable server_pid : int option;
}

let db t = t.db
let binary_path t = t.binary_path
let lib_paths t = t.lib_paths
let data_dir t = t.data_dir

let data_file t table = Printf.sprintf "%s/%s.dat" t.data_dir table

(* ------------------------------------------------------------------ *)
(* Native data-file format.

   The server's on-disk table format is a binary marshal of the schema and
   live tuple versions: like PostgreSQL heap files it loads without parsing
   tuple by tuple, which is why a PTU replay (which ships these files) has
   cheap DB initialization while a server-included LDV replay (which ships
   CSVs of the relevant subset) pays a per-tuple restore — the Figure 7b
   shape. *)

type table_image = {
  img_table : string;
  img_columns : (string * Value.ty) list;
  img_rows : (int * int * Value.t array) list;  (** rid, version, values *)
  img_indexes : (string * string * bool) list;
      (** index name, column name, ordered? *)
}

let table_image (table : Table.t) : table_image =
  let schema = Table.schema table in
  { img_table = Table.name table;
    img_columns =
      Array.to_list schema
      |> List.map (fun (c : Schema.column) -> (c.Schema.name, c.Schema.ty));
    img_rows =
      List.map
        (fun (tv : Table.tuple_version) ->
          (tv.Table.tid.Tid.rid, tv.Table.tid.Tid.version, tv.Table.values))
        (Table.scan table);
    img_indexes = Table.index_specs table }

let encode_table_image (img : table_image) : string =
  Marshal.to_string img []

let decode_table_image (data : string) : table_image =
  (Marshal.from_string data 0 : table_image)

(** Load a table image into a database, creating the table if needed. *)
let restore_table_image (db : Database.t) (img : table_image) =
  let catalog = Database.catalog db in
  let table =
    match Catalog.find_opt catalog img.img_table with
    | Some t -> t
    | None ->
      let schema =
        Schema.of_list
          (List.map (fun (n, ty) -> Schema.column n ty) img.img_columns)
      in
      Catalog.create_table catalog ~name:img.img_table ~schema
  in
  List.iter
    (fun (rid, version, values) ->
      ignore (Table.restore_version table ~rid ~version values);
      Database.sync_clock db ~at:version)
    img.img_rows;
  List.iter
    (fun (index_name, column, ordered) ->
      if
        column <> ""
        && not (List.mem index_name (Table.index_names table))
      then
        (* register through the catalog so DROP INDEX finds the owner *)
        Catalog.create_index ~ordered catalog ~index:index_name
          ~table:img.img_table ~column)
    img.img_indexes

(* ------------------------------------------------------------------ *)
(* Checkpoint image: every table plus the WAL high-water mark in ONE
   payload, so the rename that publishes it is atomic across tables —
   recovery never sees table A from before a checkpoint and table B from
   after it. [next_rid] rides along explicitly because a table image only
   carries live rows: after DELETE of the highest rid, the max live rid
   under-states the allocator. *)

type checkpoint = {
  ck_last_seq : int;  (** highest WAL sequence folded into the images *)
  ck_clock : int;  (** the database's logical clock at checkpoint time *)
  ck_tables : (table_image * int) list;  (** image, next_rid *)
}

let encode_checkpoint (db : Database.t) ~last_seq : string =
  let tables = ref [] in
  Catalog.iter (Database.catalog db) (fun table ->
      tables := (table_image table, table.Table.next_rid) :: !tables);
  Marshal.to_string
    { ck_last_seq = last_seq;
      ck_clock = Database.clock db;
      ck_tables = List.rev !tables }
    []

(** Load a checkpoint into [db] (normally fresh); returns the WAL
    sequence number the images already cover, so recovery replays only
    the suffix past it. *)
let restore_checkpoint (db : Database.t) (payload : string) : int =
  let ck = (Marshal.from_string payload 0 : checkpoint) in
  List.iter
    (fun (img, next_rid) ->
      restore_table_image db img;
      match Catalog.find_opt (Database.catalog db) img.img_table with
      | Some table -> Table.restore_next_rid table next_rid
      | None -> ())
    ck.ck_tables;
  Database.sync_clock db ~at:ck.ck_clock;
  ck.ck_last_seq

(** Create a server around a database and install its binary artifacts into
    the kernel's VFS. *)
let install (kernel : Minios.Kernel.t) ?(root = "/opt/minidb")
    ?(data_dir = "/var/minidb/data") ?(binary_size = default_binary_size)
    (db : Database.t) : t =
  let vfs = Minios.Kernel.vfs kernel in
  let binary_path = root ^ "/bin/minidb-server" in
  Minios.Vfs.write_opaque vfs ~path:binary_path binary_size;
  let lib_paths =
    List.map
      (fun (name, size) ->
        let path = root ^ "/lib/" ^ name in
        Minios.Vfs.write_opaque vfs ~path size;
        path)
      default_lib_sizes
  in
  { db; binary_path; lib_paths; data_dir; server_pid = None }

(** Serialize every table's live state into the data directory. Called at
    server start so the data files reflect the DB state valid at the start
    of the application — the state a re-execution must restore. *)
let sync_data_dir (kernel : Minios.Kernel.t) (t : t) =
  let vfs = Minios.Kernel.vfs kernel in
  Catalog.iter (Database.catalog t.db) (fun table ->
      Minios.Vfs.write_string vfs
        ~path:(data_file t (Table.name table))
        (encode_table_image (table_image table)))

(** Start the server as a traced OS process: it reads its binary, its
    libraries, and every data file, so a ptrace-based packager sees the
    whole DB. Returns the server pid. *)
let start_traced (kernel : Minios.Kernel.t) (t : t) : int =
  Ldv_obs.with_span "server.start_traced" @@ fun () ->
  sync_data_dir kernel t;
  let vfs = Minios.Kernel.vfs kernel in
  let proc =
    Minios.Kernel.start_process kernel ~binary:t.binary_path
      ~libs:t.lib_paths ~name:"minidb-server" ()
  in
  let pid = proc.Minios.Kernel.pid in
  (* the server scans its data directory on startup *)
  List.iter
    (fun path ->
      let fd = Minios.Kernel.open_file kernel ~pid ~path ~mode:Minios.Syscall.Read in
      ignore (Minios.Kernel.read_fd kernel ~pid ~fd);
      Minios.Kernel.close_fd kernel ~pid ~fd)
    (Minios.Vfs.paths_under vfs t.data_dir);
  t.server_pid <- Some pid;
  Database.sync_clock t.db ~at:(Minios.Kernel.now kernel);
  pid

(** Stop a traced server: it checkpoints its tables back to the data
    directory (observed as writes) and exits. *)
let stop_traced (kernel : Minios.Kernel.t) (t : t) =
  match t.server_pid with
  | None -> ()
  | Some pid ->
    Catalog.iter (Database.catalog t.db) (fun table ->
        let path = data_file t (Table.name table) in
        let image = encode_table_image (table_image table) in
        let fd =
          Minios.Kernel.open_file kernel ~pid ~path ~mode:Minios.Syscall.Write
        in
        Minios.Kernel.write_fd kernel ~pid ~fd image;
        Minios.Kernel.close_fd kernel ~pid ~fd);
    Minios.Kernel.exit_process kernel pid;
    t.server_pid <- None

(** Execute one protocol request against the backend. *)
let handle (t : t) (req : Protocol.request) : Protocol.response =
  Ldv_obs.with_span "server.handle" @@ fun () ->
  match req with
  | Protocol.Connect _ -> Protocol.Connected { backend_id = 1 }
  | Protocol.Disconnect -> Protocol.Ddl_ok
  | Protocol.Statement { sql } -> (
    match Database.exec t.db sql with
    | Database.Rows r ->
      Protocol.Result_set
        { schema = r.Executor.schema; rows = Executor.result_values r }
    | Database.Affected info -> Protocol.Command_ok { affected = info.count }
    | Database.Ddl_done -> Protocol.Ddl_ok
    | exception Errors.Db_error (Errors.Serialization_failure _ as kind) ->
      (* first-updater-wins conflicts are control flow for the client
         library's abort/rollback/retry path, not an error string the
         application may swallow *)
      raise (Errors.Db_error kind)
    | exception Errors.Db_error kind ->
      (* tx misuse is a programming error worth flagging out-of-band, not
         just an error string the client may swallow *)
      (match kind with
      | Errors.Tx_state m -> Ldv_errors.warn (Ldv_errors.Tx_state { message = m })
      | _ -> ());
      Protocol.Error_response (Errors.to_string kind))

(** Restore a table's state from a native data file (PTU replay: the
    package ships the server's own files). *)
let load_data_file (t : t) (image : string) =
  restore_table_image t.db (decode_table_image image)

(** Wrap an existing database in a server handle without installing any
    files — used at replay time when the package already carries (or
    deliberately omits) the server's artifacts. *)
let attach ?(root = "/opt/minidb") ?(data_dir = "/var/minidb/data")
    (db : Database.t) : t =
  { db;
    binary_path = root ^ "/bin/minidb-server";
    lib_paths = List.map (fun (name, _) -> root ^ "/lib/" ^ name) default_lib_sizes;
    data_dir;
    server_pid = None }
