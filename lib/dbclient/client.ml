(** The application-facing DB client API (the libpq surface).

    Programs call [connect]/[query]/[exec]/[close]; the session bound to
    the kernel they run on decides whether statements are executed,
    audited, or replayed. Application code is therefore identical across
    the original run, the audited run, and every replay mode — the
    property LDV's interposition design depends on. *)

open Minidb

type conn = {
  session : Interceptor.t;
  pid : int;
  db_name : string;
  mutable open_ : bool;
}

(** Connect to the database server from the current process. *)
let connect (env : Minios.Program.env) ~db:db_name : conn =
  let kernel = Minios.Program.kernel env in
  let pid = Minios.Program.pid env in
  Ldv_obs.with_span
    ~attrs:[ ("prov.proc", Printf.sprintf "proc:%d" pid); ("db", db_name) ]
    "client.connect"
  @@ fun () ->
  let session = Interceptor.find_for kernel ~pid in
  (* connection handshake costs a round trip but is not audited (§VIII:
     connection handling calls are ignored) *)
  ignore (Minios.Kernel.tick kernel);
  { session; pid; db_name; open_ = true }

let check conn =
  if not conn.open_ then
    Ldv_errors.fail
      (Ldv_errors.Connection_closed { context = "Client: connection is closed" })

(** Run a statement, returning the raw protocol response.

    Transport failures (injected by an installed fault plan) surface
    *before* the statement executes, so the bounded retry loop can safely
    resend it; a failure that outlives every retry is reported as
    [Retries_exhausted]. *)
(* A conflict abort escaping [Interceptor.execute] must not be retried at
   statement granularity — the transaction it belonged to is gone, and
   resending the lone statement would run it autocommit. This private
   wrapper smuggles the conflict past [with_retries]; [send] unwraps it
   back into the typed error so [transaction] can retry the whole block. *)
exception Tx_abort of Ldv_errors.t

let send (conn : conn) (sql : string) : Protocol.response =
  check conn;
  try
    Ldv_faults.with_retries ~op:"client.send" @@ fun () ->
    Ldv_obs.counter "client.send.attempts";
    (match Ldv_faults.connection_fault () with
    | Some `Drop ->
      Ldv_errors.fail
        (Ldv_errors.Connection_lost { context = "send: server closed the connection" })
    | Some `Garble ->
      Ldv_errors.fail
        (Ldv_errors.Protocol_garbled { context = "send: truncated response frame" })
    | None -> ());
    (try Interceptor.execute conn.session ~pid:conn.pid sql
     with Ldv_errors.Error (Ldv_errors.Tx_conflict _ as e) -> raise (Tx_abort e))
  with
  | Tx_abort e -> raise (Ldv_errors.Error e)
  | Ldv_errors.Error (Ldv_errors.Retries_exhausted _) as e ->
    Ldv_obs.counter "client.send.exhausted";
    raise e

(** Run a SELECT and return its schema and rows.

    Raises [Db_error] on SQL errors. *)
let query_result (conn : conn) (sql : string) : Schema.t * Value.t array list =
  match send conn sql with
  | Protocol.Result_set { schema; rows } -> (schema, rows)
  | Protocol.Error_response msg ->
    Errors.unsupported "server error: %s" msg
  | Protocol.Command_ok _ | Protocol.Ddl_ok | Protocol.Connected _ ->
    Errors.unsupported "expected a result set from %s" sql

(** Run a SELECT and return just the rows. *)
let query (conn : conn) (sql : string) : Value.t array list =
  snd (query_result conn sql)

(** Run a DML statement and return the affected-row count. *)
let exec (conn : conn) (sql : string) : int =
  match send conn sql with
  | Protocol.Command_ok { affected } -> affected
  | Protocol.Ddl_ok -> 0
  | Protocol.Error_response msg -> Errors.unsupported "server error: %s" msg
  | Protocol.Result_set _ | Protocol.Connected _ ->
    Errors.unsupported "expected a command acknowledgement from %s" sql

(** Run [stmts] as one BEGIN..COMMIT block, retrying the *whole*
    transaction (bounded, with logical backoff) when a first-updater-wins
    conflict aborts it. The interceptor has already rolled the aborted
    attempt back, so every retry starts from a clean slate; yields between
    attempts let the conflicting session finish its own transaction.
    Returns the total affected-row count of the committed attempt.

    Tracing: each attempt runs inside a ["tx.attempt"] span carrying the
    1-based attempt number ([tx.try]) and, on retries, the span id of the
    attempt it replaces ([retry_of]) — so the attempts of one transaction
    form a linked chain in the trace instead of unrelated fragments. *)
let transaction ?attempts (conn : conn) (stmts : string list) : int =
  check conn;
  let kernel = Interceptor.kernel_of conn.session in
  let tries = ref 0 in
  let last_attempt = ref 0 in
  Ldv_faults.with_retries ?attempts ~op:"client.tx" @@ fun () ->
  if !tries > 0 then begin
    (* the backoff recorded by [with_retries] is logical; these yields
       make it real under the cooperative scheduler *)
    Ldv_obs.counter "tx.retry";
    for _ = 1 to !tries * 4 do
      Minios.Kernel.yield_point kernel
    done
  end;
  incr tries;
  Ldv_obs.counter "client.tx.attempts";
  let attempt () =
    ignore (send conn "BEGIN");
    let affected =
      List.fold_left
        (fun acc sql ->
          match send conn sql with
          | Protocol.Command_ok { affected } -> acc + affected
          | Protocol.Error_response msg -> Errors.unsupported "server error: %s" msg
          | Protocol.Result_set _ | Protocol.Ddl_ok | Protocol.Connected _ -> acc)
        0 stmts
    in
    ignore (send conn "COMMIT");
    affected
  in
  if not (Ldv_obs.enabled ()) then attempt ()
  else begin
    let attrs =
      ("tx.try", string_of_int !tries)
      ::
      (if !last_attempt > 0 then
         [ ("retry_of", string_of_int !last_attempt) ]
       else [])
    in
    let sp = Ldv_obs.start_span ~attrs "tx.attempt" in
    last_attempt := sp.Ldv_obs.sp_id;
    Fun.protect ~finally:(fun () -> Ldv_obs.finish_span sp) attempt
  end

let close (conn : conn) =
  if conn.open_ then begin
    ignore (Minios.Kernel.tick (Interceptor.kernel_of conn.session));
    conn.open_ <- false
  end
