(** The DB server as a deployable artifact in the simulated OS: a
    {!Minidb.Database.t} plus a binary installed in the VFS and a data
    directory of native table files. Starting the server under tracing
    makes its binary and data files part of the OS trace — how PTU-style
    packaging comes to include the full DB (§IX-A). *)

open Minidb

type t

val db : t -> Database.t
val binary_path : t -> string
val lib_paths : t -> string list
val data_dir : t -> string
val data_file : t -> string -> string

(** {2 Native data-file format}

    A binary image of a table's schema, live versions, and index
    definitions: loads without per-tuple parsing (like PostgreSQL heap
    files), which is why PTU replay initialization is cheap while LDV's
    CSV-subset restore pays per tuple (Figure 7b). *)

type table_image

val table_image : Table.t -> table_image
val encode_table_image : table_image -> string
val decode_table_image : string -> table_image

(** Load an image, creating the table and its indexes if needed. *)
val restore_table_image : Database.t -> table_image -> unit

(** {2 Checkpoint image}

    All tables (plus their row-id allocators and the logical clock) in a
    single payload, stamped with the WAL sequence number it covers:
    published by one atomic rename, so recovery is never torn across
    tables. *)

(** Snapshot every table of [db] into one checkpoint payload covering WAL
    records up to [last_seq]. *)
val encode_checkpoint : Database.t -> last_seq:int -> string

(** Load a checkpoint into a (normally fresh) database; returns the WAL
    sequence number the images already cover. *)
val restore_checkpoint : Database.t -> string -> int

(** {2 Lifecycle} *)

(** Create a server around a database, installing its binary artifacts
    into the kernel's VFS. *)
val install :
  Minios.Kernel.t ->
  ?root:string ->
  ?data_dir:string ->
  ?binary_size:int ->
  Database.t ->
  t

(** Wrap an existing database without touching the VFS (replay side). *)
val attach : ?root:string -> ?data_dir:string -> Database.t -> t

(** Serialize every table into the data directory (the state valid at the
    start of the application). *)
val sync_data_dir : Minios.Kernel.t -> t -> unit

(** Start as a traced OS process that reads its binary, libraries, and
    data files; returns the server pid. *)
val start_traced : Minios.Kernel.t -> t -> int

(** Checkpoint tables back to the data directory (observed as writes) and
    exit the server process. *)
val stop_traced : Minios.Kernel.t -> t -> unit

(** Execute one protocol request against the backend; engine errors become
    [Error_response]s. *)
val handle : t -> Protocol.request -> Protocol.response

(** Restore a table from a native data file (PTU replay). *)
val load_data_file : t -> string -> unit
