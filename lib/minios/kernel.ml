(** The simulated kernel: process management, file syscalls, a logical
    clock, and an optional tracer hook.

    Execution is sequential and deterministic: [spawn] runs the child
    program to completion before returning (fork-and-wait semantics), and
    every syscall advances the logical clock by one tick. When a tracer
    hook is installed it observes the full syscall stream — the moral
    equivalent of running the application under [ptrace].

    A cooperative scheduler ([Minios.Sched]) can switch the kernel into
    preemptive mode, in which every file syscall performs the [Yield]
    effect before touching state. The scheduler handles the effect by
    parking the process's continuation and running another process, so N
    programs interleave at syscall granularity while each still sees
    sequential semantics between its own yield points. *)

type fd = int

type open_file = { path : string; mode : Syscall.file_mode; opened_at : int }

type process = {
  pid : int;
  pname : string;
  parent : int option;
  binary : string option;
  mutable fds : (fd * open_file) list;
  mutable next_fd : fd;
  mutable alive : bool;
}

type t = {
  vfs : Vfs.t;
  mutable clock : int;
  mutable next_pid : int;
  processes : (int, process) Hashtbl.t;
  mutable trace_hook : (Syscall.event -> unit) option;
  mutable audit_hooks : (string * (unit -> unit)) list;
  mutable preemptive : bool;
  mutable spawn_hook : (pid:int -> (unit -> unit) -> unit) option;
  mutable quantum_hooks : (string * (unit -> unit)) list;
  mutable rounds : int;  (** completed scheduling rounds *)
}

let create ?(vfs = Vfs.create ()) () =
  { vfs;
    clock = 0;
    next_pid = 1;
    processes = Hashtbl.create 16;
    trace_hook = None;
    audit_hooks = [];
    preemptive = false;
    spawn_hook = None;
    quantum_hooks = [];
    rounds = 0 }

let vfs t = t.vfs
let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Cooperative preemption. The effect is declared here (rather than in
   the scheduler) so syscalls can perform it without a dependency cycle;
   it is only ever performed while [preemptive] is set, which only the
   scheduler sets — with no handler installed the flag stays false and
   the kernel behaves exactly as before. *)

type _ Effect.t += Yield : unit Effect.t

let yield_point t = if t.preemptive then Effect.perform Yield
let preemptive t = t.preemptive
let set_preemptive t on = t.preemptive <- on
let spawn_hook t = t.spawn_hook
let set_spawn_hook t hook = t.spawn_hook <- hook

(* Quantum hooks run after every full scheduling round, outside any
   process context and with preemption masked (a hook performing I/O must
   not itself yield — there is no continuation to park). Registration
   replaces by name so re-arming an idempotent hook (e.g. the WAL's group
   commit flush) never duplicates it. *)
let register_quantum_hook t ~name f =
  t.quantum_hooks <-
    (name, f) :: List.filter (fun (n, _) -> not (String.equal n name)) t.quantum_hooks

let run_quantum_hooks t =
  let saved = t.preemptive in
  t.preemptive <- false;
  t.rounds <- t.rounds + 1;
  Fun.protect
    ~finally:(fun () -> t.preemptive <- saved)
    (fun () ->
      List.iter (fun (_, f) -> f ()) (List.rev t.quantum_hooks);
      (* sample the registered gauges after the hooks, so hook-side effects
         (e.g. the group-commit flush's fsync barrier) are visible in this
         round's quantum record *)
      Ldv_obs.sample_quantum ~round:t.rounds ())

(** The number of completed scheduling rounds (quantum-hook runs) on this
    kernel — the unit the WAL's rounds-deferred accounting is in. *)
let rounds t = t.rounds

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(** Advance the clock to at least [at]; used to merge external logical
    timelines (the DB's statement clock) into the OS timeline. *)
let advance_to t ~at = if at > t.clock then t.clock <- at

let set_tracer t hook = t.trace_hook <- hook

module Obs = Ldv_obs

(* Fault gate: consult the installed fault plan (if any) before a file
   syscall touches state. EINTR is restarted in place — the syscall-restart
   semantics of SA_RESTART — while EIO/ENOSPC surface as typed errors. The
   restart loop is capped so a pathological plan (p = 1.0) still
   terminates, degrading the fault to EIO. *)
let max_eintr_restarts = 16

let fault_gate ~op ~path =
  if Ldv_faults.enabled () then begin
    let rec go restarts =
      match Ldv_faults.syscall_fault ~op ~path with
      | None -> ()
      | Some Ldv_errors.Eintr when restarts < max_eintr_restarts ->
        Obs.counter "os.syscall.restart";
        go (restarts + 1)
      | Some Ldv_errors.Eintr ->
        Ldv_errors.fail (Ldv_errors.Io_fault { op; path; fault = Ldv_errors.Eio })
      | Some fault -> Ldv_errors.fail (Ldv_errors.Io_fault { op; path; fault })
    in
    go 0
  end

let emit t event =
  match t.trace_hook with None -> () | Some hook -> hook event

let find_process t pid =
  match Hashtbl.find_opt t.processes pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Kernel: unknown pid %d" pid)

(* Loading a binary and its shared libraries shows up to ptrace as the
   process reading those files; CDE-style packaging depends on seeing these
   reads. *)
let record_image_reads t pid paths =
  List.iter
    (fun path ->
      if Vfs.exists t.vfs path then begin
        let opened_at = tick t in
        emit t (Syscall.Opened { pid; path; mode = Syscall.Read; time = opened_at });
        let time = tick t in
        emit t (Syscall.Closed { pid; path; mode = Syscall.Read; opened_at; time })
      end)
    paths

let start_process t ?parent ?binary ?(libs = []) ~name () =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let p =
    { pid; pname = name; parent; binary; fds = []; next_fd = 3; alive = true }
  in
  Hashtbl.replace t.processes pid p;
  Obs.counter "os.syscall.spawn";
  let time = tick t in
  emit t (Syscall.Spawned { parent; pid; name; binary; time });
  record_image_reads t pid (Option.to_list binary @ libs);
  p

let exit_process t pid =
  let p = find_process t pid in
  if p.alive then begin
    (* close leaked fds before exiting, as the OS would *)
    List.iter
      (fun (_, of_) ->
        let time = tick t in
        emit t
          (Syscall.Closed
             { pid;
               path = of_.path;
               mode = of_.mode;
               opened_at = of_.opened_at;
               time }))
      p.fds;
    p.fds <- [];
    p.alive <- false;
    Obs.counter "os.syscall.exit";
    let time = tick t in
    emit t (Syscall.Exited { pid; time })
  end

(* ------------------------------------------------------------------ *)
(* File syscalls.                                                      *)

let open_file t ~pid ~path ~mode : fd =
  yield_point t;
  let p = find_process t pid in
  if not p.alive then invalid_arg "Kernel.open_file: dead process";
  fault_gate ~op:"open" ~path;
  (match mode with
  | Syscall.Read ->
    if not (Vfs.exists t.vfs path) then
      Ldv_errors.fail
        (Ldv_errors.Io_fault { op = "open"; path; fault = Ldv_errors.Enoent })
  | Syscall.Write ->
    (* open for write truncates/creates; the truncation is buffered, so a
       crash before fsync resurrects the previous durable content *)
    Vfs.truncate_buffered t.vfs ~path ~mtime:t.clock ());
  Obs.counter "os.syscall.open";
  let opened_at = tick t in
  emit t (Syscall.Opened { pid; path; mode; time = opened_at });
  let fd = p.next_fd in
  p.next_fd <- fd + 1;
  p.fds <- (fd, { path; mode; opened_at }) :: p.fds;
  fd

let fd_entry p fd =
  match List.assoc_opt fd p.fds with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Kernel: bad fd %d" fd)

let read_fd t ~pid ~fd : string =
  yield_point t;
  let p = find_process t pid in
  let e = fd_entry p fd in
  if e.mode <> Syscall.Read then invalid_arg "Kernel.read_fd: fd open for write";
  fault_gate ~op:"read" ~path:e.path;
  Obs.counter "os.syscall.read";
  ignore (tick t);
  Vfs.read t.vfs e.path

let write_fd t ~pid ~fd (data : string) =
  yield_point t;
  let p = find_process t pid in
  let e = fd_entry p fd in
  if e.mode <> Syscall.Write then invalid_arg "Kernel.write_fd: fd open for read";
  fault_gate ~op:"write" ~path:e.path;
  Obs.counter "os.syscall.write";
  if Obs.enabled () then Obs.counter ~by:(String.length data) "os.bytes_written";
  let time = tick t in
  (* buffered: the bytes are visible to readers immediately but survive a
     crash only once an fsync barrier covers them *)
  Vfs.append_buffered t.vfs ~path:e.path ~mtime:time data

let fsync_fd t ~pid ~fd =
  yield_point t;
  let p = find_process t pid in
  let e = fd_entry p fd in
  fault_gate ~op:"fsync" ~path:e.path;
  Obs.counter "os.syscall.fsync";
  ignore (tick t);
  Vfs.fsync t.vfs e.path

let close_fd t ~pid ~fd =
  yield_point t;
  let p = find_process t pid in
  let e = fd_entry p fd in
  fault_gate ~op:"close" ~path:e.path;
  p.fds <- List.remove_assoc fd p.fds;
  Obs.counter "os.syscall.close";
  let time = tick t in
  emit t
    (Syscall.Closed
       { pid; path = e.path; mode = e.mode; opened_at = e.opened_at; time })

(* ------------------------------------------------------------------ *)
(* Path-addressed durability syscalls. The WAL and checkpoint machinery
   in [Dbclient.Durable] appends to long-lived log files across many
   statements; fd-based [open_file] truncates on open, so these operate
   on paths directly (the moral equivalent of O_APPEND + fsync +
   rename). They still pay the fault gate and advance the clock like any
   other syscall. *)

let live_process t pid =
  let p = find_process t pid in
  if not p.alive then invalid_arg "Kernel: dead process";
  p

let append_path t ~pid ~path (data : string) =
  yield_point t;
  ignore (live_process t pid);
  fault_gate ~op:"write" ~path;
  Obs.counter "os.syscall.write";
  if Obs.enabled () then Obs.counter ~by:(String.length data) "os.bytes_written";
  let time = tick t in
  Vfs.append_buffered t.vfs ~path ~mtime:time data

let overwrite_path t ~pid ~path (data : string) =
  yield_point t;
  ignore (live_process t pid);
  fault_gate ~op:"write" ~path;
  Obs.counter "os.syscall.write";
  if Obs.enabled () then Obs.counter ~by:(String.length data) "os.bytes_written";
  let time = tick t in
  Vfs.truncate_buffered t.vfs ~path ~mtime:time ();
  Vfs.append_buffered t.vfs ~path ~mtime:time data

let fsync_path t ~pid ~path =
  yield_point t;
  ignore (live_process t pid);
  fault_gate ~op:"fsync" ~path;
  Obs.counter "os.syscall.fsync";
  ignore (tick t);
  Vfs.fsync t.vfs path

let rename_path t ~pid ~src ~dst =
  yield_point t;
  ignore (live_process t pid);
  fault_gate ~op:"rename" ~path:src;
  Obs.counter "os.syscall.rename";
  ignore (tick t);
  Vfs.rename t.vfs ~src ~dst

(* ------------------------------------------------------------------ *)
(* Crash: simulated power failure. Every process dies on the spot (no
   orderly close events — that is the point) and the file system reverts
   to its last-synced state, except for any torn tails in [keep]. The
   kernel itself survives: its clock is the hardware clock and keeps
   running across the reboot. *)

let crash t ?(keep = []) () =
  Obs.counter "os.crash";
  Hashtbl.iter
    (fun _ p ->
      if p.alive then begin
        p.fds <- [];
        p.alive <- false
      end)
    t.processes;
  Vfs.crash t.vfs ~keep ()

(* ------------------------------------------------------------------ *)
(* Audit hooks: named callbacks other layers (the DB client interceptor)
   register so the auditor can flush per-run state. *)

let register_audit_hook t ~name f = t.audit_hooks <- (name, f) :: t.audit_hooks
let run_audit_hooks t = List.iter (fun (_, f) -> f ()) t.audit_hooks
