(** The DSL applications are written in.

    A program is an OCaml function over an environment that exposes the
    kernel's syscalls for one process. [spawn] starts a child process that
    runs to completion (fork-and-wait). Because real binaries cannot be
    shipped inside OCaml packages, programs are registered by name in
    {!registry}; the simulated "binary" file at [binary] is what packaging
    copies, and the registry name is what replay uses to find the code
    again — the simulation counterpart of re-executing a packaged
    executable. *)

type env = { kernel : Kernel.t; pid : int }

type program = env -> unit

let kernel env = env.kernel
let pid env = env.pid
let now env = Kernel.now env.kernel

(* ------------------------------------------------------------------ *)
(* Syscall wrappers.                                                   *)

let open_in_file env path : Kernel.fd =
  Kernel.open_file env.kernel ~pid:env.pid ~path ~mode:Syscall.Read

let open_out_file env path : Kernel.fd =
  Kernel.open_file env.kernel ~pid:env.pid ~path ~mode:Syscall.Write

let read_fd env fd = Kernel.read_fd env.kernel ~pid:env.pid ~fd
let write_fd env fd data = Kernel.write_fd env.kernel ~pid:env.pid ~fd data
let close_fd env fd = Kernel.close_fd env.kernel ~pid:env.pid ~fd

(** Read a whole file through open/read/close syscalls. *)
let read_file env path =
  let fd = open_in_file env path in
  let data = read_fd env fd in
  close_fd env fd;
  data

(** Write a whole file through open/write/close syscalls. *)
let write_file env path data =
  let fd = open_out_file env path in
  write_fd env fd data;
  close_fd env fd

let file_exists env path = Vfs.exists (Kernel.vfs env.kernel) path

(** Start a process for [body] without running it: the pid plus a thunk
    that runs the body and exits the process. [run]/[spawn] call the thunk
    immediately (fork-and-wait); the scheduler parks thunks and interleaves
    them. *)
let prepare kernel ?parent ?binary ?libs ~name (body : program) :
    int * (unit -> unit) =
  let p = Kernel.start_process kernel ?parent ?binary ?libs ~name () in
  let env = { kernel; pid = p.Kernel.pid } in
  ( p.Kernel.pid,
    fun () ->
      Fun.protect
        ~finally:(fun () -> Kernel.exit_process kernel p.Kernel.pid)
        (fun () -> body env) )

(** Run a child process; returns its pid. Under a scheduler (the kernel
    has a spawn hook installed) the child is enqueued as a sibling job and
    runs interleaved with everyone else; otherwise it runs to completion
    before [spawn] returns. *)
let spawn env ?binary ?libs ~name (body : program) : int =
  let pid, thunk =
    prepare env.kernel ~parent:env.pid ?binary ?libs ~name body
  in
  (match Kernel.spawn_hook env.kernel with
  | Some enqueue -> enqueue ~pid thunk
  | None -> thunk ());
  pid

(** Run a top-level program as a fresh root process. *)
let run kernel ?binary ?libs ~name (body : program) : int =
  let pid, thunk = prepare kernel ?binary ?libs ~name body in
  thunk ();
  pid

(* ------------------------------------------------------------------ *)
(* The program registry: name -> code, the replay-time stand-in for
   loading a binary from the package.                                  *)

let registry : (string, program) Hashtbl.t = Hashtbl.create 16

let register ~name (p : program) = Hashtbl.replace registry name p

let lookup name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
    invalid_arg (Printf.sprintf "Program.lookup: %S is not registered" name)
