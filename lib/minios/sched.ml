(** Cooperative round-robin scheduling of programs — the multi-client
    front end of the concurrent audit.

    Each client runs as a kernel process. While the scheduler is active
    the kernel is in preemptive mode: every file syscall (and the
    interceptor's statement send) performs {!Kernel.Yield}, which this
    scheduler handles by parking the process's one-shot continuation and
    moving on to the next live job. One scheduling round steps every live
    job to its next yield point; after each round the kernel's quantum
    hooks run (the WAL's group commit batches its fsync barrier there).

    Determinism: the round order is the job list rotated by a draw from a
    seeded PRNG, so a given seed always produces the identical
    interleaving — and therefore the identical trace, logs, and package
    bytes. Replay re-creates the schedule from the recorded seed.

    Children spawned by a scheduled program (via {!Program.spawn}) join
    the round-robin as sibling jobs at the end of the round instead of
    running to completion inside their parent's time slice. *)

type client = {
  c_name : string;
  c_binary : string option;
  c_libs : string list;
  c_body : Program.program;
}

let client ?binary ?(libs = []) ~name body =
  { c_name = name; c_binary = binary; c_libs = libs; c_body = body }

type status = Done | Yielded

type step_state =
  | Start of (unit -> unit)
  | Parked of (unit, status) Effect.Deep.continuation
  | Finished

type job = { j_pid : int; mutable j_state : step_state }

let run (kernel : Kernel.t) ?(seed = 0) (clients : client list) : int list =
  let open Effect.Deep in
  if Kernel.preemptive kernel || Kernel.spawn_hook kernel <> None then
    invalid_arg "Sched.run: a scheduler is already active on this kernel";
  (* Which job performed the effect we are handling: set around each step
     so the effect branch can park the continuation in the right job. *)
  let current : job option ref = ref None in
  let joined : job list ref = ref [] in
  let handler : (unit, status) handler =
    { retc = (fun () -> Done);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Kernel.Yield ->
            Some
              (fun (k : (a, status) continuation) ->
                (match !current with
                | Some j -> j.j_state <- Parked k
                | None -> ());
                Yielded)
          | _ -> None) }
  in
  let start_job (c : client) : job =
    let pid, thunk =
      Program.prepare kernel ?binary:c.c_binary ~libs:c.c_libs ~name:c.c_name
        c.c_body
    in
    { j_pid = pid; j_state = Start thunk }
  in
  (* Step a job to its next yield point. The state is cleared to Finished
     first; if the job yields, the effect branch overwrites it with the
     parked continuation, so Finished survives only on actual return. *)
  let step (j : job) : unit =
    match j.j_state with
    | Finished -> ()
    | Start f ->
      j.j_state <- Finished;
      current := Some j;
      ignore
        (Fun.protect
           ~finally:(fun () -> current := None)
           (fun () -> match_with f () handler)
          : status)
    | Parked k ->
      j.j_state <- Finished;
      current := Some j;
      ignore
        (Fun.protect
           ~finally:(fun () -> current := None)
           (fun () -> continue k ())
          : status)
  in
  let rotate n xs =
    let rec go k = function
      | xs when k = 0 -> xs
      | [] -> []
      | x :: tl -> go (k - 1) (tl @ [ x ])
    in
    go n xs
  in
  match clients with
  | [] -> []
  | _ ->
    let prng = Ldv_faults.Prng.create ~seed in
    (* Processes are started up front, in client order, so pids are
       assigned deterministically regardless of the seed. *)
    let jobs = List.map start_job clients in
    let pids = List.map (fun j -> j.j_pid) jobs in
    Kernel.set_spawn_hook kernel
      (Some
         (fun ~pid thunk ->
           joined := { j_pid = pid; j_state = Start thunk } :: !joined));
    Kernel.set_preemptive kernel true;
    Fun.protect
      ~finally:(fun () ->
        Kernel.set_preemptive kernel false;
        Kernel.set_spawn_hook kernel None)
      (fun () ->
        let live = ref jobs in
        let rounds = ref 0 in
        let is_live j =
          match j.j_state with Finished -> false | Start _ | Parked _ -> true
        in
        let some_live () =
          match !live with [] -> false | _ :: _ -> true
        in
        while some_live () do
          incr rounds;
          let order = rotate (Ldv_faults.Prng.int prng (List.length !live)) !live in
          List.iter step order;
          let newly = List.rev !joined in
          joined := [];
          live := List.filter is_live (!live @ newly);
          Kernel.run_quantum_hooks kernel
        done;
        Ldv_obs.counter ~by:!rounds "sched.rounds");
    pids
