(** Cooperative round-robin scheduling of programs — the multi-client
    front end of the concurrent audit.

    Each client runs as a kernel process. While the scheduler is active
    the kernel is in preemptive mode: every file syscall (and the
    interceptor's statement send) performs {!Kernel.Yield}, which this
    scheduler handles by parking the process's one-shot continuation and
    moving on to the next live job. One scheduling round steps every live
    job to its next yield point; after each round the kernel's quantum
    hooks run (the WAL's group commit batches its fsync barrier there).

    Determinism: the round order is the job list rotated by a draw from a
    seeded PRNG, so a given seed always produces the identical
    interleaving — and therefore the identical trace, logs, and package
    bytes. Replay re-creates the schedule from the recorded seed.

    Children spawned by a scheduled program (via {!Program.spawn}) join
    the round-robin as sibling jobs at the end of the round instead of
    running to completion inside their parent's time slice. *)

type client = {
  c_name : string;
  c_binary : string option;
  c_libs : string list;
  c_body : Program.program;
}

let client ?binary ?(libs = []) ~name body =
  { c_name = name; c_binary = binary; c_libs = libs; c_body = body }

type status = Done | Yielded

type step_state =
  | Start of (unit -> unit)
  | Parked of (unit, status) Effect.Deep.continuation
  | Finished

type job = {
  j_pid : int;
  mutable j_state : step_state;
  j_ctx : Ldv_obs.Trace.ctx;
      (** this job's trace context, swapped in around every quantum so the
          session keeps its identity across parks and resumes *)
  j_ledger : Ldv_obs.Ledger.ctx;
      (** this job's overhead-ledger accumulator, swapped alongside the
          trace context so a statement's phase account survives parks
          without leaking into sibling sessions *)
  mutable j_parked_at : float;  (** clock at last park; -1 when not parked *)
}

let make_job pid state =
  { j_pid = pid;
    j_state = state;
    j_ctx = Ldv_obs.Trace.make ();
    j_ledger = Ldv_obs.Ledger.make ();
    j_parked_at = -1.0 }

let run (kernel : Kernel.t) ?(seed = 0) (clients : client list) : int list =
  let open Effect.Deep in
  if Kernel.preemptive kernel || Kernel.spawn_hook kernel <> None then
    invalid_arg "Sched.run: a scheduler is already active on this kernel";
  (* Which job performed the effect we are handling: set around each step
     so the effect branch can park the continuation in the right job. *)
  let current : job option ref = ref None in
  let joined : job list ref = ref [] in
  let handler : (unit, status) handler =
    { retc = (fun () -> Done);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Kernel.Yield ->
            Some
              (fun (k : (a, status) continuation) ->
                (match !current with
                | Some j -> j.j_state <- Parked k
                | None -> ());
                Yielded)
          | _ -> None) }
  in
  let start_job (c : client) : job =
    let pid, thunk =
      Program.prepare kernel ?binary:c.c_binary ~libs:c.c_libs ~name:c.c_name
        c.c_body
    in
    make_job pid (Start thunk)
  in
  (* Step a job to its next yield point. The state is cleared to Finished
     first; if the job yields, the effect branch overwrites it with the
     parked continuation, so Finished survives only on actual return.

     Tracing: the job's context is swapped in for the duration of the
     step, a ["wait.sched"] span covers the park-to-resume gap and a
     ["sched.quantum"] span covers the step itself. Adjacent spans share
     their boundary timestamps (the quantum's end is stored as the next
     wait's start), so per session blocked + running telescopes exactly
     to wall time. Instrumentation never yields and is fully skipped on
     the disabled path, so interleavings are identical with and without a
     sink. *)
  let step (j : job) : unit =
    match j.j_state with
    | Finished -> ()
    | (Start _ | Parked _) as state ->
      let enabled = Ldv_obs.enabled () in
      let t0 = if enabled then Ldv_obs.now () else 0.0 in
      let prev = Ldv_obs.Trace.use j.j_ctx in
      let prev_ledger = Ldv_obs.Ledger.use j.j_ledger in
      if enabled && j.j_parked_at >= 0.0 then
        Ldv_obs.emit_span
          ~attrs:[ ("os.pid", string_of_int j.j_pid) ]
          ~start:j.j_parked_at ~dur:(t0 -. j.j_parked_at) "wait.sched";
      j.j_state <- Finished;
      current := Some j;
      ignore
        (Fun.protect
           ~finally:(fun () ->
             current := None;
             if enabled then begin
               let t1 = Ldv_obs.now () in
               Ldv_obs.emit_span
                 ~attrs:[ ("os.pid", string_of_int j.j_pid) ]
                 ~start:t0 ~dur:(t1 -. t0) "sched.quantum";
               j.j_parked_at <-
                 (match j.j_state with
                 | Parked _ -> t1
                 | Start _ | Finished -> -1.0)
             end;
             ignore (Ldv_obs.Trace.use prev : Ldv_obs.Trace.ctx);
             ignore (Ldv_obs.Ledger.use prev_ledger : Ldv_obs.Ledger.ctx))
           (fun () ->
             match state with
             | Start f -> match_with f () handler
             | Parked k -> continue k ()
             | Finished -> assert false)
          : status)
  in
  let rotate n xs =
    let rec go k = function
      | xs when k = 0 -> xs
      | [] -> []
      | x :: tl -> go (k - 1) (tl @ [ x ])
    in
    go n xs
  in
  match clients with
  | [] -> []
  | _ ->
    let prng = Ldv_faults.Prng.create ~seed in
    (* Processes are started up front, in client order, so pids are
       assigned deterministically regardless of the seed. *)
    let jobs = List.map start_job clients in
    let pids = List.map (fun j -> j.j_pid) jobs in
    Kernel.set_spawn_hook kernel
      (Some (fun ~pid thunk -> joined := make_job pid (Start thunk) :: !joined));
    Kernel.set_preemptive kernel true;
    Fun.protect
      ~finally:(fun () ->
        Kernel.set_preemptive kernel false;
        Kernel.set_spawn_hook kernel None)
      (fun () ->
        let live = ref jobs in
        Ldv_obs.register_quantum_gauge "sched.run_queue" (fun () ->
            float_of_int (List.length !live));
        let rounds = ref 0 in
        let is_live j =
          match j.j_state with Finished -> false | Start _ | Parked _ -> true
        in
        let some_live () =
          match !live with [] -> false | _ :: _ -> true
        in
        while some_live () do
          incr rounds;
          let order = rotate (Ldv_faults.Prng.int prng (List.length !live)) !live in
          List.iter step order;
          let newly = List.rev !joined in
          joined := [];
          live := List.filter is_live (!live @ newly);
          Kernel.run_quantum_hooks kernel
        done;
        Ldv_obs.counter ~by:!rounds "sched.rounds");
    pids
