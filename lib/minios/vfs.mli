(** An in-memory virtual file system.

    Paths are absolute, [/]-separated strings; directories are implicit.
    File contents are either real bytes ([Data]) or size-only placeholders
    ([Opaque]) modeling large binary artifacts whose bytes never matter
    but whose sizes drive the package-size experiments.

    Durability: each file tracks both its visible [content] (page cache)
    and its last-synced state (platter). The plain write API is
    implicitly durable; the [_buffered] API plus {!fsync} and {!crash}
    model buffered I/O, explicit sync barriers, and power failures. *)

type content = Data of string | Opaque of int

type file = {
  mutable content : content;
  mutable mtime : int;
  mutable synced : content option;
      (** what a crash rolls back to; [None] = the file vanishes *)
}

type t

val create : unit -> t

(** Collapses duplicate slashes and trailing slashes.
    @raise Invalid_argument on relative paths. *)
val normalize : string -> string

val exists : t -> string -> bool
val find_opt : t -> string -> file option

val write : t -> path:string -> ?mtime:int -> content -> unit
val write_string : t -> path:string -> ?mtime:int -> string -> unit
val write_opaque : t -> path:string -> ?mtime:int -> int -> unit

(** Appends to a [Data] file, creating it if missing; implicitly durable.
    @raise Invalid_argument on opaque files. *)
val append : t -> path:string -> ?mtime:int -> string -> unit

(** {2 Buffered I/O and crash simulation} *)

(** Append without a durability guarantee: the new bytes are visible to
    readers but are lost by {!crash} until {!fsync} runs.
    @raise Invalid_argument on opaque files. *)
val append_buffered : t -> path:string -> ?mtime:int -> string -> unit

(** Truncate the visible content to empty without touching the synced
    state: a crash before {!fsync} resurrects the previous durable
    content. Creates the file (un-synced) if missing. *)
val truncate_buffered : t -> path:string -> ?mtime:int -> unit -> unit

(** Make [path]'s current content durable. No-op on missing files. *)
val fsync : t -> string -> unit

(** Atomically rename [src] over [dst]. The name change is durable; the
    contents keep their own synced state.
    @raise Not_found when [src] is missing. *)
val rename : t -> src:string -> dst:string -> unit

(** Bytes of content not yet covered by an fsync barrier. *)
val unsynced_bytes : t -> string -> int

(** Simulated power failure: revert every file to its last-synced state;
    never-synced files vanish. [keep] grants a path a torn prefix of its
    unsynced append-only tail (bytes that reached the platter before the
    failure). Surviving state is durable afterwards. *)
val crash : t -> ?keep:(string * int) list -> unit -> unit

(** Node-local power failure: {!crash} semantics restricted to the files
    under [prefix] (one replica's data directory); everything else keeps
    its buffered state. *)
val crash_under : t -> ?keep:(string * int) list -> string -> unit

(** @raise Not_found on missing files.
    @raise Invalid_argument on opaque files. *)
val read : t -> string -> string

(** @raise Not_found on missing files. *)
val content : t -> string -> content

(** @raise Not_found on missing files. *)
val size : t -> string -> int

val content_size : content -> int
val remove : t -> string -> unit

(** All paths, sorted. *)
val paths : t -> string list

(** Paths strictly under a directory prefix. *)
val paths_under : t -> string -> string list

val remove_under : t -> string -> unit
val total_bytes : t -> int

(** @raise Not_found when [path] is missing in [src]. *)
val copy_file : src:t -> dst:t -> string -> unit

val copy_tree : src:t -> dst:t -> string -> unit
