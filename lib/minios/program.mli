(** The DSL applications are written in.

    A program is an OCaml function over an environment exposing the
    kernel's syscalls for one process. [spawn] starts a child that runs to
    completion (fork-and-wait semantics). Programs are registered by name
    in the replay registry; the simulated binary file is what packaging
    copies, the registry name is how replay finds the code again. *)

type env

type program = env -> unit

val kernel : env -> Kernel.t
val pid : env -> int
val now : env -> int

(** {2 Syscall wrappers} *)

val open_in_file : env -> string -> Kernel.fd
val open_out_file : env -> string -> Kernel.fd
val read_fd : env -> Kernel.fd -> string
val write_fd : env -> Kernel.fd -> string -> unit
val close_fd : env -> Kernel.fd -> unit

(** Whole-file read through open/read/close syscalls. *)
val read_file : env -> string -> string

(** Whole-file write through open/write/close syscalls. *)
val write_file : env -> string -> string -> unit

val file_exists : env -> string -> bool

(** Start a process for the program without running it: the pid plus a
    thunk that runs the body and exits the process. The scheduler uses
    this to interleave several programs; [run]/[spawn] call the thunk
    immediately. *)
val prepare :
  Kernel.t ->
  ?parent:int ->
  ?binary:string ->
  ?libs:string list ->
  name:string ->
  program ->
  int * (unit -> unit)

(** Run a child process; returns its pid. The binary and libraries (if
    present in the VFS) are recorded as loader reads. Under a scheduler
    (spawn hook installed on the kernel) the child runs interleaved with
    the other jobs instead of to completion. *)
val spawn :
  env -> ?binary:string -> ?libs:string list -> name:string -> program -> int

(** Run a top-level program as a fresh root process; returns its pid. *)
val run :
  Kernel.t ->
  ?binary:string ->
  ?libs:string list ->
  name:string ->
  program ->
  int

(** {2 The replay registry} *)

val register : name:string -> program -> unit

(** @raise Invalid_argument on unregistered names. *)
val lookup : string -> program
