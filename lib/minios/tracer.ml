(** The ptrace-style tracer: records the syscall stream and turns it into
    the OS (P_BB) portion of an execution trace.

    Following §VII-A, process-process edges carry a point interval (the
    fork time) and process-file edges carry the interval from the first
    open to the last close of the file by that process, per access mode. *)

type t = {
  mutable events : Syscall.event list;  (** newest first *)
  mutable n_events : int;
  (* CDE-style copy-on-first-access: the content of each file at the time
     it was first opened for reading, which is what packaging must ship
     even if the file is later overwritten. *)
  snapshots : (string, Vfs.content) Hashtbl.t;
  mutable snapshot_vfs : Vfs.t option;
}

let create () =
  { events = []; n_events = 0; snapshots = Hashtbl.create 64; snapshot_vfs = None }

let record t event =
  t.events <- event :: t.events;
  t.n_events <- t.n_events + 1;
  Ldv_obs.counter "tracer.events";
  match (event, t.snapshot_vfs) with
  | Syscall.Opened { path; mode = Syscall.Read; _ }, Some vfs ->
    if not (Hashtbl.mem t.snapshots path) then (
      match Vfs.content vfs path with
      | content ->
        Hashtbl.replace t.snapshots path content;
        Ldv_obs.counter "tracer.snapshots";
        (* correlate the enclosing span (audit.app / replay.app) with the
           provenance file node this snapshot becomes in the trace *)
        Ldv_obs.add_attr "prov.file" ("file:" ^ path)
      | exception Not_found -> ())
  | _ -> ()

(** Install this tracer on a kernel; subsequent syscalls are recorded and
    first-read file contents snapshotted. *)
let attach t kernel =
  t.snapshot_vfs <- Some (Kernel.vfs kernel);
  Kernel.set_tracer kernel (Some (record t))

(** Content of [path] as of its first traced read, falling back to [vfs]'s
    current content. *)
let snapshot_content t (vfs : Vfs.t) path : Vfs.content option =
  match Hashtbl.find_opt t.snapshots path with
  | Some c -> Some c
  | None -> Vfs.find_opt vfs path |> Option.map (fun f -> f.Vfs.content)

let detach kernel = Kernel.set_tracer kernel None

let events t = List.rev t.events
let event_count t = t.n_events

(* ------------------------------------------------------------------ *)
(* Derived facts.                                                      *)

type file_access = {
  fa_pid : int;
  fa_path : string;
  fa_mode : Syscall.file_mode;
  fa_interval : Prov.Interval.t;  (** first open .. last close *)
}

(** Per-(pid, path, mode) access intervals. Opens that were never closed
    extend to the open time itself. *)
let file_accesses t : file_access list =
  let acc : (int * string * Syscall.file_mode, int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ev ->
      match ev with
      | Syscall.Opened { pid; path; mode; time } ->
        let key = (pid, path, mode) in
        (match Hashtbl.find_opt acc key with
        | None -> Hashtbl.replace acc key (time, time)
        | Some (b, e) -> Hashtbl.replace acc key (min b time, max e time))
      | Syscall.Closed { pid; path; mode; time; _ } ->
        let key = (pid, path, mode) in
        (match Hashtbl.find_opt acc key with
        | None -> Hashtbl.replace acc key (time, time)
        | Some (b, e) -> Hashtbl.replace acc key (min b time, max e time))
      | Syscall.Spawned _ | Syscall.Exited _ -> ())
    (events t);
  Hashtbl.fold
    (fun (fa_pid, fa_path, fa_mode) (b, e) l ->
      { fa_pid; fa_path; fa_mode; fa_interval = Prov.Interval.make b e } :: l)
    acc []
  |> List.sort (fun a b ->
         match compare a.fa_pid b.fa_pid with
         | 0 -> String.compare a.fa_path b.fa_path
         | c -> c)

(** All distinct paths the traced execution touched, with the modes used —
    what CDE/PTU copies into a package. *)
let touched_paths t : (string * Syscall.file_mode list) list =
  let tbl : (string, Syscall.file_mode list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fa ->
      match Hashtbl.find_opt tbl fa.fa_path with
      | Some r -> if not (List.mem fa.fa_mode !r) then r := fa.fa_mode :: !r
      | None -> Hashtbl.replace tbl fa.fa_path (ref [ fa.fa_mode ]))
    (file_accesses t);
  Hashtbl.fold (fun p r l -> (p, List.sort compare !r) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type spawn_info = {
  sp_pid : int;
  sp_parent : int option;
  sp_name : string;
  sp_binary : string option;
  sp_time : int;
}

let spawns t : spawn_info list =
  List.filter_map
    (function
      | Syscall.Spawned { parent; pid; name; binary; time } ->
        Some
          { sp_pid = pid;
            sp_parent = parent;
            sp_name = name;
            sp_binary = binary;
            sp_time = time }
      | _ -> None)
    (events t)

(* ------------------------------------------------------------------ *)
(* P_BB trace construction (§VII-A).                                   *)

(** Populate [trace] (whose model must include P_BB's types) with the OS
    provenance of the recorded execution. *)
let build_bb_into t (trace : Prov.Trace.t) =
  Ldv_obs.with_span "tracer.build_bb" @@ fun () ->
  List.iter
    (fun sp ->
      ignore (Prov.Bb_model.add_process trace ~pid:sp.sp_pid ~name:sp.sp_name);
      match sp.sp_parent with
      | Some parent ->
        ignore
          (Prov.Bb_model.executed trace ~parent ~child:sp.sp_pid
             ~time:(Prov.Interval.point sp.sp_time))
      | None -> ())
    (spawns t);
  List.iter
    (fun fa ->
      ignore (Prov.Bb_model.add_file trace ~path:fa.fa_path);
      match fa.fa_mode with
      | Syscall.Read ->
        ignore
          (Prov.Bb_model.read_from trace ~pid:fa.fa_pid ~path:fa.fa_path
             ~time:fa.fa_interval)
      | Syscall.Write ->
        ignore
          (Prov.Bb_model.has_written trace ~pid:fa.fa_pid ~path:fa.fa_path
             ~time:fa.fa_interval))
    (file_accesses t)

(** Build a standalone P_BB-only trace. *)
let build_bb_trace t : Prov.Trace.t =
  let trace = Prov.Trace.create Prov.Bb_model.model in
  build_bb_into t trace;
  trace
