(** An in-memory virtual file system.

    Paths are absolute, [/]-separated strings; directories are implicit.
    File contents are either real bytes ([Data]) or size-only placeholders
    ([Opaque]) used to model large binary artifacts — DBMS server binaries,
    shared libraries, VM base images — whose bytes never matter but whose
    sizes drive the package-size experiments (Figure 9, §IX-F).

    {b Durability model.} Every file carries two states: [content] (what
    readers see — the page cache) and [synced] (what survives a simulated
    power failure — the platter). The plain write API ([write],
    [write_string], [write_opaque], [append]) models provisioning I/O and
    is implicitly durable: it updates both states at once, so the rest of
    the system behaves exactly as before durability existed. The buffered
    API ([append_buffered], [truncate_buffered]) updates only [content];
    the unsynced delta reaches the platter only at an explicit {!fsync}
    barrier, and {!crash} throws it away — except for an optional torn
    prefix of an append-only tail, modeling a partially flushed page. *)

type content = Data of string | Opaque of int

type file = {
  mutable content : content;
  mutable mtime : int;
  mutable synced : content option;
      (** what a crash rolls back to; [None] = the file vanishes *)
}

type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 64 }

let normalize path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Vfs: path %S must be absolute" path);
  (* collapse duplicate slashes, drop trailing slash *)
  let parts = String.split_on_char '/' path |> List.filter (fun s -> s <> "") in
  "/" ^ String.concat "/" parts

let exists t path = Hashtbl.mem t.files (normalize path)

let find_opt t path = Hashtbl.find_opt t.files (normalize path)

let write t ~path ?(mtime = 0) content =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some f ->
    f.content <- content;
    f.synced <- Some content;
    f.mtime <- mtime
  | None -> Hashtbl.replace t.files path { content; mtime; synced = Some content }

let write_string t ~path ?mtime s = write t ~path ?mtime (Data s)
let write_opaque t ~path ?mtime size = write t ~path ?mtime (Opaque size)

let append t ~path ?(mtime = 0) s =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some ({ content = Data old; _ } as f) ->
    f.content <- Data (old ^ s);
    f.synced <- Some f.content;
    f.mtime <- mtime
  | Some { content = Opaque _; _ } ->
    invalid_arg (Printf.sprintf "Vfs.append: %s is opaque" path)
  | None ->
    Hashtbl.replace t.files path
      { content = Data s; mtime; synced = Some (Data s) }

(* ------------------------------------------------------------------ *)
(* Buffered (crash-unsafe until fsync) writes.                         *)

let append_buffered t ~path ?(mtime = 0) s =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some ({ content = Data old; _ } as f) ->
    f.content <- Data (old ^ s);
    f.mtime <- mtime
  | Some { content = Opaque _; _ } ->
    invalid_arg (Printf.sprintf "Vfs.append_buffered: %s is opaque" path)
  | None ->
    Hashtbl.replace t.files path { content = Data s; mtime; synced = None }

let truncate_buffered t ~path ?(mtime = 0) () =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some f ->
    f.content <- Data "";
    f.mtime <- mtime
  | None ->
    Hashtbl.replace t.files path { content = Data ""; mtime; synced = None }

let fsync t path =
  match find_opt t path with
  | Some f -> f.synced <- Some f.content
  | None -> ()

(** Atomically rename [src] to [dst], replacing [dst]. The name change
    itself is modeled as durable (rename + directory fsync); the file's
    *contents* keep their own synced state, so renaming an un-fsynced file
    into place still loses its bytes at the next crash. *)
let rename t ~src ~dst =
  let src = normalize src and dst = normalize dst in
  match Hashtbl.find_opt t.files src with
  | None -> raise Not_found
  | Some f ->
    Hashtbl.remove t.files src;
    Hashtbl.replace t.files dst f

(** Bytes of [path]'s content not yet covered by an fsync barrier. *)
let unsynced_bytes t path =
  match find_opt t path with
  | None -> 0
  | Some { content = Data d; synced; _ } -> (
    match synced with
    | Some (Data b) -> max 0 (String.length d - String.length b)
    | Some (Opaque _) -> 0
    | None -> String.length d)
  | Some { content = Opaque _; _ } -> 0

(** Simulated power failure: every file reverts to its last-synced state;
    files never synced vanish. [keep] maps a path to a number of bytes of
    its unsynced append-only tail that did reach the platter (a torn
    write); it only applies to [Data] files whose content grew past the
    synced prefix. Whatever survives is durable afterwards. *)
let crash_file ~keep ~doomed path f =
  let kept =
    match List.assoc_opt path keep with Some n -> max 0 n | None -> 0
  in
  match (f.synced, f.content) with
  | Some (Data b), Data d when String.length d > String.length b && kept > 0
    ->
    let bl = String.length b in
    let survived = String.sub d 0 (bl + min kept (String.length d - bl)) in
    f.content <- Data survived;
    f.synced <- Some f.content
  | Some c, _ ->
    f.content <- c;
    f.synced <- Some c
  | None, Data d when kept > 0 ->
    let survived = String.sub d 0 (min kept (String.length d)) in
    f.content <- Data survived;
    f.synced <- Some f.content
  | None, _ -> doomed := path :: !doomed

let crash t ?(keep = []) () =
  let doomed = ref [] in
  Hashtbl.iter (crash_file ~keep ~doomed) t.files;
  List.iter (Hashtbl.remove t.files) !doomed

let read t path =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | Some { content = Data s; _ } -> s
  | Some { content = Opaque _; _ } ->
    invalid_arg (Printf.sprintf "Vfs.read: %s is opaque" path)
  | None -> raise Not_found

let content t path =
  match find_opt t path with
  | Some f -> f.content
  | None -> raise Not_found

let size t path =
  match find_opt t path with
  | Some { content = Data s; _ } -> String.length s
  | Some { content = Opaque n; _ } -> n
  | None -> raise Not_found

let content_size = function Data s -> String.length s | Opaque n -> n

let remove t path = Hashtbl.remove t.files (normalize path)

(** All paths, sorted. *)
let paths t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.files [] |> List.sort String.compare

(** Paths under a directory prefix (e.g. "/var/minidb"). *)
let paths_under t prefix =
  let prefix = normalize prefix in
  let pl = String.length prefix in
  List.filter
    (fun p ->
      String.length p > pl
      && String.sub p 0 pl = prefix
      && (prefix = "/" || p.[pl] = '/'))
    (paths t)

let remove_under t prefix =
  List.iter (remove t) (paths_under t prefix)

(** Node-local power failure: like {!crash} but restricted to the files
    under [prefix] (one replica's data directory); every other file is
    untouched. [keep] has the same torn-tail meaning as in {!crash}. *)
let crash_under t ?(keep = []) prefix =
  let doomed = ref [] in
  List.iter
    (fun path ->
      match Hashtbl.find_opt t.files path with
      | Some f -> crash_file ~keep ~doomed path f
      | None -> ())
    (paths_under t prefix);
  List.iter (Hashtbl.remove t.files) !doomed

let total_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + content_size f.content) t.files 0

(** Copy a single file between file systems (packaging primitive). *)
let copy_file ~src ~dst path =
  match find_opt src path with
  | Some f -> write dst ~path ~mtime:f.mtime f.content
  | None -> raise Not_found

(** Copy an entire subtree. *)
let copy_tree ~src ~dst prefix =
  List.iter (copy_file ~src ~dst) (paths_under src prefix)
