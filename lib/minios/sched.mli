(** Cooperative round-robin scheduling of programs — the multi-client
    front end of the concurrent audit.

    While [run] is active the kernel is in preemptive mode: every file
    syscall (and the interceptor's statement send) performs
    {!Kernel.Yield}, which the scheduler handles by parking the process's
    continuation and stepping the next live job. One scheduling round
    steps every live job to its next yield point; after each round the
    kernel's quantum hooks run (WAL group commit batches its fsync
    barrier there). The round order is rotated by a seeded PRNG draw, so
    a given seed always produces the identical interleaving. Children
    spawned by a scheduled program join the round-robin as sibling jobs
    instead of running to completion inside their parent's time slice.

    Tracing: each job carries its own [Ldv_obs.Trace] context, swapped
    in around every quantum, so spans emitted while a session runs carry
    its [trace.session]/[trace.stmt] identity. When a sink is enabled
    the scheduler emits one ["sched.quantum"] span per step and one
    ["wait.sched"] span per park-to-resume gap (sharing boundary
    timestamps, so blocked + running = wall per session), and registers
    a ["sched.run_queue"] per-quantum gauge. With the sink disabled no
    spans, clock reads or allocations happen — interleavings are
    byte-identical either way. *)

type client

(** A program to schedule, with the identity [Program.prepare] needs. *)
val client :
  ?binary:string -> ?libs:string list -> name:string -> Program.program ->
  client

(** Run the clients to completion under a seeded round-robin schedule;
    returns their pids in client-list order (pids are assigned in that
    order, independent of the seed).
    @raise Invalid_argument if a scheduler is already active on the
    kernel. *)
val run : Kernel.t -> ?seed:int -> client list -> int list
