(** ldv-exec: re-executing packages (§VIII).

    [prepare] rebuilds the chroot-like environment from the package and
    initializes the DB side (this is Figure 7b's "Initialization" bar):

    - server-included: create the accessed tables and restore the relevant
      tuple subset from the packaged CSVs, tuple by tuple;
    - PTU: load the server's native data files (cheap bulk load);
    - server-excluded: nothing to restore — queue the recorded responses.

    [run] then re-executes the application with file syscalls resolving
    inside the package environment and DB calls redirected to the packaged
    server or to the recorded-response replayer. [verify] checks
    repeatability against the original audit: byte-identical output files
    and per-query result fingerprints. *)

open Minidb
module I = Dbclient.Interceptor

type prepared = {
  pkg : Package.t;
  kernel : Minios.Kernel.t;
  server : Dbclient.Server.t;
  session : I.t;
}

(** Rebuild the package environment and initialize its DB state. *)
let prepare (pkg : Package.t) : prepared =
  Ldv_obs.with_span
    ~attrs:[ ("kind", Package.kind_name pkg.Package.kind) ]
    "replay.prepare"
  @@ fun () ->
  let kernel = Minios.Kernel.create () in
  let vfs = Minios.Kernel.vfs kernel in
  Ldv_obs.with_span "replay.restore_files" (fun () ->
      List.iter
        (fun (e : Package.entry) ->
          match e.Package.e_content with
          | Some content -> Minios.Vfs.write vfs ~path:e.Package.e_path content
          | None -> ())
        pkg.Package.entries);
  let db = Database.create ~name:"package" () in
  let server = Dbclient.Server.attach db in
  Ldv_obs.with_span "replay.restore_db" (fun () ->
      match pkg.Package.kind with
      | Package.Server_included ->
        (* create accessed tables, then restore the relevant subset from CSV,
           tuple by tuple (the expensive initialization of Fig. 7b) *)
        List.iter
          (fun (_, ddl) -> ignore (Database.exec db ddl))
          pkg.Package.db_schemas;
        List.iter
          (fun (table, csv) ->
            (* a table can be absent when its schema section was dropped
               during a partial restore; skip it rather than crash *)
            match Catalog.find_opt (Database.catalog db) table with
            | None -> Ldv_obs.counter "replay.skipped_tables"
            | Some tbl ->
              List.iter
                (fun (rid, version, values) ->
                  ignore (Table.restore_version tbl ~rid ~version values);
                  Ldv_obs.counter "replay.restored_tuples";
                  Database.sync_clock db ~at:version)
                (Csv.decode_versions csv))
          pkg.Package.db_subset;
        (* pin the cost model to the audit-time row counts: the restored
           database holds only the sliced subset, and replay re-plans, so
           order-sensitive plan decisions must see the recorded statistics *)
        List.iter
          (fun (table, rows) ->
            match Catalog.find_opt (Database.catalog db) table with
            | Some tbl -> Table.pin_row_stats tbl ~rows
            | None -> ())
          (Package.table_rows pkg)
      | Package.Ptu_full ->
        (* bulk-load the server's own data files from the package *)
        List.iter
          (fun path ->
            match Minios.Vfs.content vfs path with
            | Minios.Vfs.Data image ->
              Dbclient.Server.load_data_file server image;
              Ldv_obs.counter "replay.loaded_data_files"
            | Minios.Vfs.Opaque _ -> ())
          (Minios.Vfs.paths_under vfs (Dbclient.Server.data_dir server))
      | Package.Server_excluded -> ());
  let session =
    match pkg.Package.kind with
    | Package.Server_excluded ->
      I.create_replay ~kernel server pkg.Package.recording
    | Package.Server_included | Package.Ptu_full ->
      (* concurrent packages replay with the same snapshot-isolation rule
         the audit ran under, so each query sees the same versions *)
      let snapshot_reads = Package.schedule pkg <> None in
      I.create ~mode:I.Passthrough ~snapshot_reads ~kernel server
  in
  (* a package recorded against a replication cluster replays against an
     equally-shaped cluster, bootstrapped from the restored DB state, so
     every read routes to — and is answered by — the same node *)
  (match (pkg.Package.kind, Package.replication pkg) with
  | Package.Server_included, Some (replicas, staleness) ->
    Ldv_obs.with_span "replay.restore_cluster" @@ fun () ->
    let proc = Minios.Kernel.start_process kernel ~name:"minidb-leader" () in
    let leader =
      Dbclient.Durable.start kernel server ~pid:proc.Minios.Kernel.pid
    in
    I.attach_cluster session
      (Dbclient.Replication.create kernel ~leader ~replicas ~staleness ())
  | _ -> ());
  { pkg; kernel; server; session }

type run_result = {
  root_pid : int;
  session : I.t;  (** the primary session *)
  sessions : I.t list;  (** all sessions, primary first *)
  kernel : Minios.Kernel.t;
  out_files : (string * string) list;
  query_fingerprints : (int * string) list;
}

(** Re-execute a concurrent package: re-create one session per recorded
    client and run them under the recorded scheduler seed. The schedule,
    and with it every interleaving-dependent observation, is reproduced
    exactly: statement order, snapshot pins relative to concurrent
    commits, and the merged fingerprint stream. *)
let run_scheduled (p : prepared) ~seed ~(clients : (string * string) list) :
    run_result =
  let tracer = Minios.Tracer.create () in
  Minios.Tracer.attach tracer p.kernel;
  let sessions =
    p.session
    :: List.mapi
         (fun i _ -> I.create_sibling p.session ~session_id:(i + 1))
         (List.tl clients)
  in
  let sched_clients =
    List.map2
      (fun (name, binary) sess ->
        let program = Minios.Program.lookup name in
        Minios.Sched.client ~binary ~name (fun env ->
            let pid = Minios.Program.pid env in
            I.bind_for p.kernel ~pid sess;
            Fun.protect
              ~finally:(fun () -> I.unbind_for p.kernel ~pid)
              (fun () -> program env)))
      clients sessions
  in
  let pids =
    Fun.protect
      ~finally:(fun () -> Minios.Tracer.detach p.kernel)
      (fun () ->
        Ldv_obs.with_span "replay.app" (fun () ->
            Minios.Sched.run p.kernel ~seed sched_clients))
  in
  let out_files =
    Audit.written_files tracer ~exclude_pids:[] (Minios.Kernel.vfs p.kernel)
  in
  { root_pid = (match pids with pid :: _ -> pid | [] -> 0);
    session = p.session;
    sessions;
    kernel = p.kernel;
    out_files;
    query_fingerprints = Audit.fingerprints (Audit.merge_logs sessions) }

(** Re-execute the packaged application. The program is looked up in the
    registry under the package's app name unless overridden (partial
    re-execution / modified inputs use the override). Concurrent packages
    (unless overridden) re-execute every recorded session under the
    recorded schedule. *)
let run ?(program : Minios.Program.program option) (p : prepared) : run_result =
  Ldv_obs.with_span
    ~attrs:[ ("kind", Package.kind_name p.pkg.Package.kind) ]
    "replay.run"
  @@ fun () ->
  match (Package.schedule p.pkg, program) with
  | Some (seed, clients), None -> run_scheduled p ~seed ~clients
  | _ ->
    let program =
      match program with
      | Some prog -> prog
      | None -> Minios.Program.lookup p.pkg.Package.app_name
    in
    let tracer = Minios.Tracer.create () in
    Minios.Tracer.attach tracer p.kernel;
    I.bind p.kernel p.session;
    let root_pid =
      Fun.protect
        ~finally:(fun () ->
          I.unbind p.kernel;
          Minios.Tracer.detach p.kernel)
        (fun () ->
          Ldv_obs.with_span "replay.app" (fun () ->
              let pid =
                Minios.Program.run p.kernel ~binary:p.pkg.Package.app_binary
                  ~name:p.pkg.Package.app_name program
              in
              Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" pid);
              pid))
    in
    let out_files =
      Audit.written_files tracer ~exclude_pids:[] (Minios.Kernel.vfs p.kernel)
    in
    if Ldv_obs.enabled () then begin
      Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" root_pid);
      List.iter
        (fun (path, _) -> Ldv_obs.add_attr "prov.file" ("file:" ^ path))
        out_files
    end;
    { root_pid;
      session = p.session;
      sessions = [ p.session ];
      kernel = p.kernel;
      out_files;
      query_fingerprints = Audit.fingerprints (I.log p.session) }

(** Prepare and run in one call. *)
let execute ?program (pkg : Package.t) : run_result =
  run ?program (prepare pkg)

(** Verify repeatability of a replay against the original audited run:
    every output file byte-identical, every query's result fingerprint
    equal. Returns the list of divergences (empty = repeatable), in a
    stable order: file problems sorted by path, then query problems
    sorted by qid. *)
let verify ~(audit : Audit.t) (r : run_result) : string list =
  Ldv_obs.with_span "replay.verify" @@ fun () ->
  let problems = ref [] in
  let push fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun (path, original) ->
      match List.assoc_opt path r.out_files with
      | None -> push "output file %s was not produced by the replay" path
      | Some replayed ->
        if not (String.equal original replayed) then
          push "output file %s differs (%d vs %d bytes)" path
            (String.length original) (String.length replayed))
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       audit.Audit.out_files);
  let by_qid = List.sort (fun (a, _) (b, _) -> compare (a : int) b) in
  let original_fps = by_qid audit.Audit.query_fingerprints in
  let replayed_fps = by_qid r.query_fingerprints in
  if List.length original_fps <> List.length replayed_fps then
    push "query count differs: %d audited vs %d replayed"
      (List.length original_fps)
      (List.length replayed_fps)
  else
    List.iter2
      (fun (qid_a, fp_a) (qid_r, fp_r) ->
        if not (String.equal fp_a fp_r) then
          push "query %d/%d returned different results" qid_a qid_r)
      original_fps replayed_fps;
  (* cluster-served runs: every read must have been answered by the same
     node at replay as at audit time *)
  let routes stmts =
    List.filter_map
      (fun (s : I.stmt_event) ->
        if s.I.replica >= 0 then Some (s.I.qid, s.I.replica) else None)
      stmts
    |> List.sort compare
  in
  let audited_routes = routes (Audit.stmts audit) in
  let replayed_routes = routes (Audit.merge_logs r.sessions) in
  if List.length audited_routes <> List.length replayed_routes then
    push "replica-served read count differs: %d audited vs %d replayed"
      (List.length audited_routes)
      (List.length replayed_routes)
  else
    List.iter2
      (fun (qid_a, rep_a) (qid_r, rep_r) ->
        if qid_a <> qid_r || rep_a <> rep_r then
          push "query %d routed to replica %d at audit, %d/%d at replay"
            qid_a rep_a qid_r rep_r)
      audited_routes replayed_routes;
  (* interactive transactions: the replay must reproduce every
     commit/abort decision — same sessions, same per-session transaction
     ordinals, same outcomes (committed / rolled back / conflict-aborted /
     retried) *)
  let audited_txs = Audit.tx_outcomes (Audit.stmts audit) in
  let replayed_txs = Audit.tx_outcomes (Audit.merge_logs r.sessions) in
  if List.length audited_txs <> List.length replayed_txs then
    push "transaction count differs: %d audited vs %d replayed"
      (List.length audited_txs)
      (List.length replayed_txs)
  else
    List.iter2
      (fun (sid_a, n_a, o_a) (sid_r, n_r, o_r) ->
        if sid_a <> sid_r || n_a <> n_r || o_a <> o_r then
          push "transaction %d.%d %s at audit, but %d.%d %s at replay" sid_a
            n_a
            (Audit.tx_outcome_name o_a)
            sid_r n_r
            (Audit.tx_outcome_name o_r))
      audited_txs replayed_txs;
  List.rev !problems
