(** Shared machinery for seeded verification campaigns.

    [ldv faultcheck] and [ldv crashcheck] are the same experimental
    shape: derive an independent, reproducible seed per campaign from a
    root PRNG, run a scenario under an installed fault plan, classify
    any escape by the robustness contract (typed errors and DB errors
    are expected ways to fail; anything else is a contract violation),
    aggregate injection tallies, and render a byte-deterministic report.
    This module is that shape; the two harnesses supply only their
    scenario and outcome vocabulary. *)

(** Derive the next campaign seed from the root stream: independent,
    non-negative, and reproducible from the root seed alone. *)
let derive_seed (root : Ldv_faults.Prng.t) : int =
  Int64.to_int (Ldv_faults.Prng.next_int64 root) land max_int

(* ------------------------------------------------------------------ *)
(* Exception classification: the robustness contract.                  *)

type failure =
  | Typed of Ldv_errors.t  (** the expected way to fail *)
  | Db of string  (** the simulated DB refused a statement *)
  | Replay_diverged of string  (** the interceptor refused a divergent replay *)
  | Other of string  (** contract violation: untyped exception *)

(** Run a scenario, classifying every escaping exception under the
    contract. [Ldv_faults.Crash] is *not* handled here: a simulated power
    failure is control flow the crash harness must catch itself; one that
    escapes to this level is a harness bug and classifies as [Other]. *)
let guard (f : unit -> 'a) : ('a, failure) result =
  match f () with
  | v -> Ok v
  | exception Ldv_errors.Error e -> Error (Typed e)
  | exception Minidb.Errors.Db_error k -> Error (Db (Minidb.Errors.to_string k))
  | exception Dbclient.Interceptor.Replay_divergence msg ->
    Error (Replay_diverged msg)
  | exception e -> Error (Other (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Injection tallies.                                                  *)

let zero_tallies () : (string * int) list =
  List.map (fun (n, _) -> (n, 0)) (Ldv_faults.injected (Ldv_faults.make ~seed:0 ()))

let add_tallies acc tallies =
  List.map2
    (fun (name, total) (name', n) ->
      assert (String.equal name name');
      (name, total + n))
    acc tallies

(* ------------------------------------------------------------------ *)
(* Deterministic report fragments, shared verbatim by both reports.    *)

(** Per-label outcome counts, in the harness's canonical label order;
    zero-count labels are omitted. *)
let pp_outcome_counts ppf ~order ~(label : 'a -> string) (outcomes : 'a list) =
  Format.fprintf ppf "outcomes:@,";
  List.iter
    (fun l ->
      let n =
        List.length
          (List.filter (fun o -> String.equal (label o) l) outcomes)
      in
      if n > 0 then Format.fprintf ppf "  %-13s %d@," l n)
    order

let pp_tallies ppf (tallies : (string * int) list) =
  Format.fprintf ppf "injected faults:@,";
  List.iter
    (fun (name, n) -> if n > 0 then Format.fprintf ppf "  %-13s %d@," name n)
    tallies;
  if List.for_all (fun (_, n) -> n = 0) tallies then
    Format.fprintf ppf "  (none)@,"

let pp_uncaught ppf n =
  Format.fprintf ppf "uncaught exceptions: %d%s" n
    (if n = 0 then " (robustness contract holds)" else "")
