(** ldv-audit: run an application under combined OS+DB monitoring (§VII)
    and assemble the combined execution trace of Definition 6. *)

module I := Dbclient.Interceptor

type packaging =
  | Included  (** LDV server-included: traced server + DB provenance *)
  | Excluded  (** LDV server-excluded: external server, recorded responses *)
  | Ptu_baseline
      (** the paper's PostgreSQL+PTU baseline: traced server, plain libpq —
          OS provenance only *)

(** One client of a concurrent audit: a program plus the identity the
    scheduler and the package need. *)
type client = {
  cl_name : string;  (** program-registry name *)
  cl_binary : string;
  cl_libs : string list;
  cl_program : Minios.Program.program;
}

(** The recorded schedule of a concurrent run — enough to re-create the
    identical interleaving at replay time. *)
type sched_info = {
  sched_seed : int;
  sched_clients : (string * string) list;  (** (registry name, binary) *)
}

type t = {
  packaging : packaging;
  kernel : Minios.Kernel.t;
  server : Dbclient.Server.t;
  tracer : Minios.Tracer.t;
  session : I.t;  (** the primary session (the only one, single-client) *)
  sessions : I.t list;  (** all sessions, primary first *)
  sched : sched_info option;  (** [Some] iff this was a concurrent run *)
  repl : (int * int) option;
      (** (replica count, staleness bound) when the run served reads from
          a replication cluster; packaged so replay re-runs the cluster *)
  trace : Prov.Trace.t;  (** full combined trace, with per-row lineage *)
  app_name : string;
  app_binary : string;
  root_pid : int;
  server_pid : int option;
  out_files : (string * string) list;
      (** files the app wrote, with final contents (replay ground truth) *)
  query_fingerprints : (int * string) list;
      (** qid -> digest of result rows (replay ground truth) *)
  start_rows : (string * int) list;
      (** per-table row counts captured before the run, packaged so replay
          pins the cost model's statistics to the audit-time values *)
}

val rows_fingerprint : Minidb.Value.t array list -> string

(** Merge per-session statement logs into one stream ordered by send
    time (ties broken by qid). *)
val merge_logs : I.t list -> I.stmt_event list

(** The run's statement stream across every session, in global order.
    Single-session audits see exactly the session log. *)
val stmts : t -> I.stmt_event list

(** Query fingerprints (qid -> row digest) of a statement stream. *)
val fingerprints : I.stmt_event list -> (int * string) list

(** Outcome of one interactive transaction, as observable from the
    recorded statement stream. *)
type tx_outcome =
  | Tx_committed  (** closed by an explicit COMMIT *)
  | Tx_rolled_back  (** closed by an explicit ROLLBACK *)
  | Tx_aborted  (** terminated without a closing statement *)
  | Tx_retried
      (** aborted, and the same session opened another transaction
          afterwards (the bounded-retry loop re-ran the block) *)

val tx_outcome_name : tx_outcome -> string
val tx_outcome_of_name : string -> tx_outcome option

(** Derive per-transaction outcomes from a statement stream: BEGIN opens
    (a BEGIN while one is open means the previous one conflict-aborted),
    COMMIT/ROLLBACK close, trailing-open means aborted. Returns
    [(sid, per-session ordinal from 1, outcome)] in (sid, ordinal)
    order; a pure function of the normalized SQL stream, compared
    audit-vs-replay by [Replay.verify]. *)
val tx_outcomes : I.stmt_event list -> (int * int * tx_outcome) list

(** Assemble a combined trace from a syscall stream and a statement log
    (used by {!run} and by replay-validation tooling). *)
val build_trace : Minios.Tracer.t -> I.stmt_event list -> Prov.Trace.t

(** Files written by traced processes outside [exclude_pids], with final
    contents. *)
val written_files :
  Minios.Tracer.t ->
  exclude_pids:int list ->
  Minios.Vfs.t ->
  (string * string) list

(** Run [program] under full LDV monitoring. The kernel must already hold
    the application's files; the server must be installed around the
    database the app uses. [Included]/[Ptu_baseline] start and stop the
    server as a traced process. *)
val run :
  packaging:packaging ->
  Minios.Kernel.t ->
  Dbclient.Server.t ->
  app_name:string ->
  app_binary:string ->
  ?app_libs:string list ->
  Minios.Program.program ->
  t

(** Run N client programs concurrently, each with its own session,
    interleaved deterministically by {!Minios.Sched} under [sched_seed].
    Reads are snapshot-isolated; the recorded seed and client list land
    in [sched] so replay re-creates the identical interleaving. With
    [cluster], snapshot-pinned reads route to the cluster's read replicas
    and every write is shipped; the replication machinery's file writes
    are excluded from the recorded application outputs.
    @raise Invalid_argument unless [packaging = Included], or if
    [clients] is empty. *)
val run_concurrent :
  packaging:packaging ->
  ?sched_seed:int ->
  ?cluster:Dbclient.Replication.t ->
  Minios.Kernel.t ->
  Dbclient.Server.t ->
  client list ->
  t

(** The compact trace embedded in packages: OS portion + statement log +
    DML provenance. Query lineage is materialized as the packaged tuple
    subset instead (see DESIGN.md). *)
val compact_trace : t -> Prov.Trace.t

(** Pids belonging to the application (everything traced minus the server
    process). *)
val app_pids : t -> int list
