(** ldv-audit: run an application under combined OS+DB monitoring
    (§VII).

    The auditor wires together the ptrace-style tracer (OS side), the
    instrumented DB client session (DB side), and — for the server-included
    option — a traced DB server process. After the run it assembles the
    combined execution trace of Definition 6: the P_BB portion from the
    syscall stream, the P_Lin portion plus [run]/[readFromDb] cross edges
    from the statement log, and tuple-level direct dependencies from the
    recorded lineage. *)

open Minidb
module I = Dbclient.Interceptor

type packaging =
  | Included  (** LDV server-included: traced server + DB provenance *)
  | Excluded  (** LDV server-excluded: external server, recorded responses *)
  | Ptu_baseline
      (** the paper's PostgreSQL+PTU baseline: traced server, plain libpq —
          OS provenance only, full DB lands in the package *)

let packaging_name = function
  | Included -> "included"
  | Excluded -> "excluded"
  | Ptu_baseline -> "ptu"

(** One client of a concurrent audit: a program plus the identity the
    scheduler and the package need. *)
type client = {
  cl_name : string;  (** program-registry name *)
  cl_binary : string;
  cl_libs : string list;
  cl_program : Minios.Program.program;
}

(** The recorded schedule of a concurrent run — enough to re-create the
    identical interleaving at replay time. *)
type sched_info = {
  sched_seed : int;
  sched_clients : (string * string) list;  (** (registry name, binary) *)
}

type t = {
  packaging : packaging;
  kernel : Minios.Kernel.t;
  server : Dbclient.Server.t;
  tracer : Minios.Tracer.t;
  session : I.t;  (** the primary session (the only one, single-client) *)
  sessions : I.t list;  (** all sessions, primary first *)
  sched : sched_info option;  (** [Some] iff this was a concurrent run *)
  repl : (int * int) option;
      (** (replica count, staleness bound) when the run served reads from
          a replication cluster; the package records it, with the node
          that answered each read, so replay re-runs the cluster *)
  trace : Prov.Trace.t;
  app_name : string;  (** program-registry name *)
  app_binary : string;
  root_pid : int;
  server_pid : int option;
  out_files : (string * string) list;
      (** files the app wrote, with final contents (ground truth for
          replay verification) *)
  query_fingerprints : (int * string) list;
      (** qid -> digest of result rows, ground truth for verification *)
  start_rows : (string * int) list;
      (** per-table row counts captured before the run: packaged so replay
          can pin the cost model's statistics to the audit-time values *)
}

(* Per-table row counts of the audited database, captured before the
   program runs (the planner's replay-stable cardinality baseline). *)
let table_start_rows (server : Dbclient.Server.t) : (string * int) list =
  let catalog = Minidb.Database.catalog (Dbclient.Server.db server) in
  List.map
    (fun name ->
      (name, Minidb.Table.row_count (Minidb.Catalog.find catalog name)))
    (Minidb.Catalog.table_names catalog)

let kind_of_stmt = function
  | I.Squery -> Some Prov.Lineage_model.Query
  | I.Sinsert -> Some Prov.Lineage_model.Insert
  | I.Supdate -> Some Prov.Lineage_model.Update
  | I.Sdelete -> Some Prov.Lineage_model.Delete
  | I.Sddl -> None

(** Merge per-session statement logs into the run's global statement
    stream, ordered by send time (ties broken by qid — which cannot
    actually tie, since qids are drawn from the shared counter in the
    same atomic section that ticks the send clock). *)
let merge_logs (sessions : I.t list) : I.stmt_event list =
  List.concat_map I.log sessions
  |> List.sort (fun (a : I.stmt_event) (b : I.stmt_event) ->
         match
           Prov.Interval.compare_start
             (Prov.Interval.make a.I.t_start a.I.t_end)
             (Prov.Interval.make b.I.t_start b.I.t_end)
         with
         | 0 -> Int.compare a.I.qid b.I.qid
         | c -> c)

let rows_fingerprint (rows : Value.t array list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Array.iter
        (fun v ->
          Buffer.add_string buf (Value.to_raw_string v);
          Buffer.add_char buf '\x1f')
        row;
      Buffer.add_char buf '\n')
    rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** The run's statement stream across every session, in global order.
    Single-session audits see exactly the session log. *)
let stmts (t : t) : I.stmt_event list = merge_logs t.sessions

let fingerprints (stmts : I.stmt_event list) : (int * string) list =
  List.filter_map
    (fun (s : I.stmt_event) ->
      if s.I.kind = I.Squery then Some (s.I.qid, rows_fingerprint s.I.rows)
      else None)
    stmts

(** Outcome of one interactive transaction, as observable from the
    recorded statement stream. *)
type tx_outcome =
  | Tx_committed  (** closed by an explicit COMMIT *)
  | Tx_rolled_back  (** closed by an explicit ROLLBACK *)
  | Tx_aborted
      (** terminated without a closing statement: a write-write conflict
          (or injected abort) killed it mid-flight, or the run ended with
          the transaction still open *)
  | Tx_retried
      (** aborted, and the same session opened another transaction
          afterwards — the bounded-retry loop re-ran the block *)

let tx_outcome_name = function
  | Tx_committed -> "committed"
  | Tx_rolled_back -> "rolled-back"
  | Tx_aborted -> "aborted"
  | Tx_retried -> "retried"

let tx_outcome_of_name = function
  | "committed" -> Some Tx_committed
  | "rolled-back" -> Some Tx_rolled_back
  | "aborted" -> Some Tx_aborted
  | "retried" -> Some Tx_retried
  | _ -> None

(** Derive per-transaction outcomes from a statement stream: for each
    session, BEGIN opens transaction [n] (a BEGIN while one is already
    open means the previous one was conflict-aborted without a closing
    statement), COMMIT/ROLLBACK close it, and a transaction still open
    at the end of the stream was aborted by the run ending. Returns
    [(sid, per-session ordinal from 1, outcome)] in (sid, ordinal)
    order. The derivation is a pure function of the normalized SQL
    stream, so replaying the recorded schedule must reproduce it
    exactly — [Replay.verify] compares both sides. *)
let tx_outcomes (stmts : I.stmt_event list) : (int * int * tx_outcome) list
    =
  let sids =
    List.sort_uniq compare (List.map (fun (s : I.stmt_event) -> s.I.sid) stmts)
  in
  List.concat_map
    (fun sid ->
      let closed = ref [] in
      let ordinal = ref 0 in
      let open_tx = ref false in
      let close outcome =
        if !open_tx then begin
          closed := (sid, !ordinal, outcome) :: !closed;
          open_tx := false
        end
      in
      List.iter
        (fun (s : I.stmt_event) ->
          if s.I.sid = sid then
            match s.I.sql_norm with
            | "BEGIN" ->
              close Tx_aborted;
              incr ordinal;
              open_tx := true
            | "COMMIT" -> close Tx_committed
            | "ROLLBACK" -> close Tx_rolled_back
            | _ -> ())
        stmts;
      close Tx_aborted;
      (* an aborted transaction followed by another on the same session
         is a retried one (Client.transaction re-runs the whole block) *)
      let rec mark = function
        | [] -> []
        | (s, n, Tx_aborted) :: (_ :: _ as rest) ->
          (s, n, Tx_retried) :: mark rest
        | e :: rest -> e :: mark rest
      in
      mark (List.rev !closed))
    sids

(** Build the combined execution trace from the tracer's syscall stream and
    the interceptor's statement log. *)
let build_trace (tracer : Minios.Tracer.t) (stmts : I.stmt_event list) :
    Prov.Trace.t =
  Ldv_obs.with_span "audit.build_trace" @@ fun () ->
  let trace = Prov.Combined.create () in
  Minios.Tracer.build_bb_into tracer trace;
  List.iter
    (fun (s : I.stmt_event) ->
      match kind_of_stmt s.I.kind with
      | None -> ()
      | Some kind ->
        let time = Prov.Interval.make s.I.t_start s.I.t_end in
        ignore
          (Prov.Lineage_model.add_statement trace ~qid:s.I.qid ~kind
             ~sql:s.I.sql_norm);
        (* the issuing process may be unknown to the tracer if tracing
           started late; create it defensively *)
        if not (Prov.Trace.mem_node trace (Prov.Bb_model.process_id s.I.pid))
        then ignore (Prov.Bb_model.add_process trace ~pid:s.I.pid ~name:"proc");
        ignore (Prov.Combined.run trace ~pid:s.I.pid ~qid:s.I.qid ~time);
        (* input tuple versions *)
        List.iter
          (fun tid ->
            ignore (Prov.Lineage_model.add_tuple trace tid);
            ignore (Prov.Lineage_model.has_read trace ~qid:s.I.qid ~tid ~time))
          s.I.reads;
        (* produced tuple versions and their registered dependencies *)
        List.iter
          (fun (rtid, lineage) ->
            ignore (Prov.Lineage_model.add_tuple trace rtid);
            ignore
              (Prov.Lineage_model.has_returned trace ~qid:s.I.qid ~tid:rtid
                 ~time);
            (match s.I.kind with
            | I.Squery ->
              (* the client consumed the result rows *)
              ignore
                (Prov.Combined.read_from_db trace ~pid:s.I.pid ~tid:rtid ~time)
            | _ -> ());
            List.iter
              (fun src ->
                Prov.Lineage_model.depends_on trace ~result:rtid ~source:src)
              lineage)
          s.I.results)
    stmts;
  trace

(** Files written by the traced application (excluding the DB server's own
    checkpoint writes). *)
let written_files (tracer : Minios.Tracer.t) ~(exclude_pids : int list)
    (vfs : Minios.Vfs.t) : (string * string) list =
  Minios.Tracer.file_accesses tracer
  |> List.filter_map (fun (fa : Minios.Tracer.file_access) ->
         if
           fa.Minios.Tracer.fa_mode = Minios.Syscall.Write
           && not (List.mem fa.Minios.Tracer.fa_pid exclude_pids)
         then
           match Minios.Vfs.content vfs fa.Minios.Tracer.fa_path with
           | Minios.Vfs.Data s -> Some (fa.Minios.Tracer.fa_path, s)
           | Minios.Vfs.Opaque _ -> None
           | exception Not_found -> None
         else None)
  |> List.sort_uniq compare

(** Run [program] under full LDV monitoring.

    The kernel must already contain the application's files; the server
    must be installed around the database the app will use. For
    [Included] packaging the server is started and stopped as a traced
    process (its binary and data files become part of the OS trace); for
    [Excluded] the server is treated as external and only the client-side
    interposition records its responses. *)
let run ~(packaging : packaging) (kernel : Minios.Kernel.t)
    (server : Dbclient.Server.t) ~app_name ~app_binary ?(app_libs = [])
    (program : Minios.Program.program) : t =
  Ldv_obs.with_span
    ~attrs:[ ("packaging", packaging_name packaging); ("app", app_name) ]
    "audit.run"
  @@ fun () ->
  let start_rows = table_start_rows server in
  let tracer = Minios.Tracer.create () in
  Minios.Tracer.attach tracer kernel;
  let server_pid =
    match packaging with
    | Included | Ptu_baseline ->
      Some (Dbclient.Server.start_traced kernel server)
    | Excluded -> None
  in
  let mode =
    match packaging with
    | Included -> I.Audit_included
    | Excluded -> I.Audit_excluded
    | Ptu_baseline -> I.Passthrough
  in
  let session = I.create ~mode ~kernel server in
  I.bind kernel session;
  let root_pid =
    Fun.protect
      ~finally:(fun () -> I.unbind kernel)
      (fun () ->
        Ldv_obs.with_span "audit.app" (fun () ->
            let pid =
              Minios.Program.run kernel ~binary:app_binary ~libs:app_libs
                ~name:app_name program
            in
            Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" pid);
            pid))
  in
  (match packaging with
  | Included | Ptu_baseline -> Dbclient.Server.stop_traced kernel server
  | Excluded -> ());
  Minios.Tracer.detach kernel;
  let stmts = I.log session in
  let trace =
    match packaging with
    | Ptu_baseline ->
      (* plain libpq: PTU sees only the OS side *)
      build_trace tracer []
    | Included | Excluded -> build_trace tracer stmts
  in
  let exclude_pids = Option.to_list server_pid in
  let out_files, query_fingerprints =
    Ldv_obs.with_span "audit.collect_outputs" @@ fun () ->
    ( written_files tracer ~exclude_pids (Minios.Kernel.vfs kernel),
      fingerprints stmts )
  in
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(List.length stmts) "audit.statements";
    Ldv_obs.counter ~by:(Minios.Tracer.event_count tracer) "audit.os_events";
    (* the root process and its output files, by their trace node ids *)
    Ldv_obs.add_attr "prov.proc" (Printf.sprintf "proc:%d" root_pid);
    List.iter
      (fun (path, _) -> Ldv_obs.add_attr "prov.file" ("file:" ^ path))
      out_files
  end;
  { packaging;
    kernel;
    server;
    tracer;
    session;
    sessions = [ session ];
    sched = None;
    repl = None;
    trace;
    app_name;
    app_binary;
    root_pid;
    server_pid;
    out_files;
    query_fingerprints;
    start_rows }

(** Run N client programs concurrently under full LDV monitoring, each
    with its own interceptor session, interleaved by the seeded
    round-robin scheduler ({!Minios.Sched}). Supported for [Included]
    packaging only: the sessions share one slice table and one qid
    counter, reads are snapshot-isolated (each query pinned to the DB
    clock at send time), and WAL group commit — if armed on the server's
    durable handle — batches the quantum's commits into one barrier.
    The recorded seed and client list land in [sched] so the package can
    replay the identical interleaving.

    With [cluster], the primary session (and through the shared ref every
    sibling) routes snapshot-pinned reads to the cluster's read replicas
    and ships every write; the replication machinery's own file writes
    (ship log, replica WALs, checkpoints) are excluded from the recorded
    application outputs. *)
let run_concurrent ~(packaging : packaging) ?(sched_seed = 0)
    ?(cluster : Dbclient.Replication.t option) (kernel : Minios.Kernel.t)
    (server : Dbclient.Server.t) (clients : client list) : t =
  (match packaging with
  | Included -> ()
  | Excluded | Ptu_baseline ->
    invalid_arg
      "Audit.run_concurrent: concurrent sessions require server-included \
       packaging");
  (match clients with
  | [] -> invalid_arg "Audit.run_concurrent: no clients"
  | _ :: _ -> ());
  Ldv_obs.with_span
    ~attrs:
      [ ("packaging", packaging_name packaging);
        ("sessions", string_of_int (List.length clients)) ]
    "audit.run_concurrent"
  @@ fun () ->
  let start_rows = table_start_rows server in
  let tracer = Minios.Tracer.create () in
  Minios.Tracer.attach tracer kernel;
  let server_pid = Some (Dbclient.Server.start_traced kernel server) in
  let primary =
    I.create ~mode:I.Audit_included ~snapshot_reads:true ~kernel server
  in
  (match cluster with
  | Some cl -> I.attach_cluster primary cl
  | None -> ());
  let sessions =
    primary
    :: List.mapi
         (fun i _ -> I.create_sibling primary ~session_id:(i + 1))
         (List.tl clients)
  in
  let sched_clients =
    List.map2
      (fun cl sess ->
        Minios.Sched.client ~binary:cl.cl_binary ~libs:cl.cl_libs
          ~name:cl.cl_name (fun env ->
            let pid = Minios.Program.pid env in
            (* this program runs on its own scheduler job; stamp the job's
               trace context so even quanta before the first statement are
               attributed to the right session *)
            if Ldv_obs.enabled () then
              Ldv_obs.Trace.set_session (I.session_id sess);
            I.bind_for kernel ~pid sess;
            Fun.protect
              ~finally:(fun () -> I.unbind_for kernel ~pid)
              (fun () -> cl.cl_program env)))
      clients sessions
  in
  let pids = Minios.Sched.run kernel ~seed:sched_seed sched_clients in
  Dbclient.Server.stop_traced kernel server;
  Minios.Tracer.detach kernel;
  let stmts = merge_logs sessions in
  let trace = build_trace tracer stmts in
  let exclude_pids =
    Option.to_list server_pid
    @ (match cluster with
      | Some cl -> Dbclient.Replication.pids cl
      | None -> [])
  in
  let out_files, query_fingerprints =
    Ldv_obs.with_span "audit.collect_outputs" @@ fun () ->
    ( written_files tracer ~exclude_pids (Minios.Kernel.vfs kernel),
      fingerprints stmts )
  in
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(List.length stmts) "audit.statements";
    Ldv_obs.counter ~by:(Minios.Tracer.event_count tracer) "audit.os_events"
  end;
  let first = List.hd clients in
  { packaging;
    kernel;
    server;
    tracer;
    session = primary;
    sessions;
    sched =
      Some
        { sched_seed;
          sched_clients =
            List.map (fun cl -> (cl.cl_name, cl.cl_binary)) clients };
    repl =
      Option.map
        (fun cl ->
          ( Dbclient.Replication.replica_count cl,
            Dbclient.Replication.staleness cl ))
        cluster;
    trace;
    app_name = first.cl_name;
    app_binary = first.cl_binary;
    root_pid = (match pids with pid :: _ -> pid | [] -> 0);
    server_pid;
    out_files;
    query_fingerprints;
    start_rows }

(** The compact trace embedded in packages. The in-memory trace carries
    per-result-row lineage (needed for provenance queries); persisting that
    for every query repetition would dwarf the tuple subset itself. As in
    the paper, the packaged provenance materializes query lineage as the
    relevant-tuple CSVs, so the packaged trace keeps only the OS portion,
    the statement log with [run] edges, and DML provenance (written
    versions and the pre-versions they derive from). *)
let compact_trace (t : t) : Prov.Trace.t =
  Ldv_obs.with_span "audit.compact_trace" @@ fun () ->
  let trace = Prov.Combined.create () in
  Minios.Tracer.build_bb_into t.tracer trace;
  List.iter
    (fun (s : I.stmt_event) ->
      match kind_of_stmt s.I.kind with
      | None -> ()
      | Some kind ->
        let time = Prov.Interval.make s.I.t_start s.I.t_end in
        ignore
          (Prov.Lineage_model.add_statement trace ~qid:s.I.qid ~kind
             ~sql:s.I.sql_norm);
        if not (Prov.Trace.mem_node trace (Prov.Bb_model.process_id s.I.pid))
        then ignore (Prov.Bb_model.add_process trace ~pid:s.I.pid ~name:"proc");
        ignore (Prov.Combined.run trace ~pid:s.I.pid ~qid:s.I.qid ~time);
        match s.I.kind with
        | I.Squery | I.Sddl -> ()
        | I.Sinsert | I.Supdate | I.Sdelete ->
          List.iter
            (fun tid ->
              ignore (Prov.Lineage_model.add_tuple trace tid);
              ignore
                (Prov.Lineage_model.has_read trace ~qid:s.I.qid ~tid ~time))
            s.I.reads;
          List.iter
            (fun (rtid, lineage) ->
              ignore (Prov.Lineage_model.add_tuple trace rtid);
              ignore
                (Prov.Lineage_model.has_returned trace ~qid:s.I.qid ~tid:rtid
                   ~time);
              List.iter
                (fun src ->
                  Prov.Lineage_model.depends_on trace ~result:rtid ~source:src)
                lineage)
            s.I.results)
    (stmts t);
  trace

(** Convenience: pids belonging to the application (everything traced minus
    the server process). *)
let app_pids (t : t) : int list =
  Minios.Tracer.spawns t.tracer
  |> List.filter_map (fun (sp : Minios.Tracer.spawn_info) ->
         if Some sp.Minios.Tracer.sp_pid = t.server_pid then None
         else Some sp.Minios.Tracer.sp_pid)
