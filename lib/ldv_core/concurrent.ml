(** A canned multi-client workload over a shared [notes] table: the demo
    and test fixture for the concurrent audit path. Each client mixes
    inserts, updates, and count-the-table reads whose answers depend on how the
    sessions interleave — which is exactly what the seeded scheduler and
    the recorded schedule must reproduce. *)

open Minidb
module I = Dbclient.Interceptor

let db_name = "app"

(** Pre-existing state: tuples no session creates, so slicing must ship
    them in the package. *)
let install_fixture (server : Dbclient.Server.t) =
  List.iter
    (fun sql ->
      match Dbclient.Server.handle server (Dbclient.Protocol.Statement { sql })
      with
      | Dbclient.Protocol.Error_response m ->
        invalid_arg ("Concurrent.install_fixture: " ^ m)
      | _ -> ())
    [ "CREATE TABLE notes (id INT, author TEXT, body TEXT)";
      "INSERT INTO notes VALUES (1, 'seed', 'alpha')";
      "INSERT INTO notes VALUES (2, 'seed', 'beta')";
      "INSERT INTO notes VALUES (3, 'seed', 'gamma')";
      "INSERT INTO notes VALUES (4, 'seed', 'delta')" ]

(* The statement count is part of the registry name: a registered program
   must keep meaning the same thing for as long as a package referencing
   it can be replayed in this process. *)
let client_name ~statements i = Printf.sprintf "cc-client-%d-s%d" i statements
let client_binary i = Printf.sprintf "/app/bin/cc-client-%d" i
let client_libs = [ "/usr/lib/libc.so.6"; "/opt/minidb/lib/libpq.so.5" ]

(** Client [i]: [statements] statements cycling insert / update / count,
    phase-shifted by [i] so concurrent sessions are always in different
    phases. Ids are namespaced per client; the summary of every response
    lands in [/out/client-<i>.txt], an output file replay must reproduce
    byte-identically. *)
let client_program ~statements i : Minios.Program.program =
 fun env ->
  let conn = Dbclient.Client.connect env ~db:db_name in
  let buf = Buffer.create 64 in
  for j = 1 to statements do
    match (i + j) mod 3 with
    | 0 ->
      let n =
        Dbclient.Client.exec conn
          (Printf.sprintf
             "INSERT INTO notes VALUES (%d, 'writer%d', 'note %d of client %d')"
             ((i * 1000) + j) i j i)
      in
      Buffer.add_string buf (Printf.sprintf "insert %d\n" n)
    | 1 ->
      let n =
        Dbclient.Client.exec conn
          (Printf.sprintf
             "UPDATE notes SET body = 'rev %d by client %d' WHERE author = \
              'writer%d'"
             j i i)
      in
      Buffer.add_string buf (Printf.sprintf "update %d\n" n)
    | _ -> (
      match Dbclient.Client.query conn "SELECT COUNT(*) FROM notes" with
      | [ [| Value.Int n |] ] ->
        Buffer.add_string buf (Printf.sprintf "count %d\n" n)
      | _ -> Buffer.add_string buf "count ?\n")
  done;
  Dbclient.Client.close conn;
  Minios.Program.write_file env
    (Printf.sprintf "/out/client-%d.txt" i)
    (Buffer.contents buf)

let tx_client_name ~rounds i = Printf.sprintf "cc-txclient-%d-r%d" i rounds
let tx_client_binary i = Printf.sprintf "/app/bin/cc-txclient-%d" i

(** Client [i] of the transactional workload: [rounds] interactive
    transactions. Most rounds run a {!Dbclient.Client.transaction} block
    that updates one of the four shared seed rows — every session hits
    the same row in the same round, so overlapping transactions hit
    genuine first-updater-wins conflicts, abort, and retry under the
    bounded-retry loop. Every fourth round instead opens a transaction on
    the client's private rows and ROLLBACKs it explicitly, so rolled-back
    outcomes appear in the recorded stream too. The per-round summary
    lands in [/out/tx-client-<i>.txt]; since aborts and retries shift
    affected counts, the file (and the recorded commit/abort decisions)
    only reproduce if replay re-creates the exact interleaving. *)
let tx_client_program ~rounds i : Minios.Program.program =
 fun env ->
  let conn = Dbclient.Client.connect env ~db:db_name in
  let buf = Buffer.create 64 in
  for j = 1 to rounds do
    if j mod 4 = 0 then
      (* explicit ROLLBACK round, on the client's private rows only; a
         conflict abort (injected, or a retried neighbour landing on a
         private row) discards the attempt just like the ROLLBACK would,
         so it is recorded and carried on from *)
      try
        ignore (Dbclient.Client.exec conn "BEGIN");
        let n =
          Dbclient.Client.exec conn
            (Printf.sprintf
               "UPDATE notes SET body = 'discarded rev %d' WHERE author = \
                'txwriter%d'"
               j i)
        in
        ignore (Dbclient.Client.exec conn "ROLLBACK");
        Buffer.add_string buf (Printf.sprintf "rollback %d (%d)\n" j n)
      with Ldv_errors.Error (Ldv_errors.Tx_conflict _) ->
        Buffer.add_string buf (Printf.sprintf "rollback %d aborted\n" j)
    else begin
      let n =
        Dbclient.Client.transaction ~attempts:12 conn
          [ (* the contended row is phase-shifted by session: sessions whose
               pace diverges (scheduler interleaving, earlier retries) land
               on the same seed row and conflict, without every session
               piling onto one row and starving the retry budget *)
            Printf.sprintf
              "UPDATE notes SET body = 'round %d by client %d' WHERE id = %d"
              j i
              (1 + ((i + j) mod 4));
            (* private ids start at 1000 so client 0's rows never collide
               with the shared seed rows (ids 1-4) *)
            Printf.sprintf
              "INSERT INTO notes VALUES (%d, 'txwriter%d', 'tx %d of client \
               %d')"
              (((i + 1) * 1000) + j)
              i j i ]
      in
      Buffer.add_string buf (Printf.sprintf "tx %d ok %d\n" j n)
    end
  done;
  (match Dbclient.Client.query conn "SELECT COUNT(*) FROM notes" with
  | [ [| Value.Int n |] ] ->
    Buffer.add_string buf (Printf.sprintf "count %d\n" n)
  | _ -> Buffer.add_string buf "count ?\n");
  Dbclient.Client.close conn;
  Minios.Program.write_file env
    (Printf.sprintf "/out/tx-client-%d.txt" i)
    (Buffer.contents buf)

(** The client list for [Audit.run_concurrent], with every program
    registered for replay. *)
let clients ~sessions ~statements : Audit.client list =
  List.init sessions (fun i ->
      let name = client_name ~statements i in
      let program = client_program ~statements i in
      Minios.Program.register ~name program;
      { Audit.cl_name = name;
        cl_binary = client_binary i;
        cl_libs = client_libs;
        cl_program = program })

(** The transactional client list, same registration contract. *)
let tx_clients ~sessions ~rounds : Audit.client list =
  List.init sessions (fun i ->
      let name = tx_client_name ~rounds i in
      let program = tx_client_program ~rounds i in
      Minios.Program.register ~name program;
      { Audit.cl_name = name;
        cl_binary = tx_client_binary i;
        cl_libs = client_libs;
        cl_program = program })

(** Re-register the client programs a recorded schedule refers to, so a
    concurrent package replays in a fresh process (`ldv exec`). Registry
    names encode the statement count, so a name always denotes the same
    program; names this module did not mint are left alone (replay will
    then report the missing program itself). *)
let register_schedule_clients (clients : (string * string) list) =
  List.iter
    (fun (name, _binary) ->
      match
        Scanf.sscanf_opt name "cc-client-%d-s%d%!" (fun i statements ->
            (i, statements))
      with
      | Some (i, statements) ->
        Minios.Program.register ~name (client_program ~statements i)
      | None -> (
        match
          Scanf.sscanf_opt name "cc-txclient-%d-r%d%!" (fun i rounds ->
              (i, rounds))
        with
        | Some (i, rounds) ->
          Minios.Program.register ~name (tx_client_program ~rounds i)
        | None -> ()))
    clients

(** A complete concurrent audited run: fresh kernel and database, the
    [notes] fixture, [sessions] clients of [statements] statements each,
    interleaved under [seed]. With [replicas > 0], a WAL-shipping cluster
    is stood up behind the server (bootstrapped from the post-fixture
    state): snapshot-pinned reads are served by read replicas and the
    answering node is recorded per read. *)
let audited ?(packaging = Audit.Included) ?(replicas = 0) ?(staleness = 4)
    ~sessions ~statements ~seed () : Audit.t =
  let kernel = Minios.Kernel.create () in
  let db = Database.create ~name:db_name () in
  let server = Dbclient.Server.install kernel db in
  install_fixture server;
  let cluster =
    if replicas > 0 then begin
      let proc =
        Minios.Kernel.start_process kernel ~name:"minidb-leader" ()
      in
      let leader =
        Dbclient.Durable.start kernel server ~pid:proc.Minios.Kernel.pid
      in
      Some (Dbclient.Replication.create kernel ~leader ~replicas ~staleness ())
    end
    else None
  in
  let vfs = Minios.Kernel.vfs kernel in
  Minios.Vfs.write_opaque vfs ~path:"/usr/lib/libc.so.6" 2_000_000;
  Minios.Vfs.write_opaque vfs ~path:"/opt/minidb/lib/libpq.so.5" 300_000;
  for i = 0 to sessions - 1 do
    Minios.Vfs.write_opaque vfs ~path:(client_binary i) 120_000
  done;
  Audit.run_concurrent ~packaging ~sched_seed:seed ?cluster kernel server
    (clients ~sessions ~statements)

(** A complete concurrent audited run of the transactional workload:
    [sessions] clients each running [rounds] interactive transactions
    over the shared [notes] fixture, interleaved under [seed]. No
    replication option here — interactive transactions and read replicas
    are not combined (see DESIGN.md). *)
let audited_tx ?(packaging = Audit.Included) ~sessions ~rounds ~seed () :
    Audit.t =
  let kernel = Minios.Kernel.create () in
  let db = Database.create ~name:db_name () in
  let server = Dbclient.Server.install kernel db in
  install_fixture server;
  let vfs = Minios.Kernel.vfs kernel in
  Minios.Vfs.write_opaque vfs ~path:"/usr/lib/libc.so.6" 2_000_000;
  Minios.Vfs.write_opaque vfs ~path:"/opt/minidb/lib/libpq.so.5" 300_000;
  for i = 0 to sessions - 1 do
    Minios.Vfs.write_opaque vfs ~path:(tx_client_binary i) 120_000
  done;
  Audit.run_concurrent ~packaging ~sched_seed:seed kernel server
    (tx_clients ~sessions ~rounds)
