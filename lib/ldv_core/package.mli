(** LDV repeatability packages (§VII-D) and the PTU baseline package. *)

type kind =
  | Server_included
      (** server binaries + table DDL + the relevant tuple subset as CSVs *)
  | Server_excluded  (** no server artifacts; recorded responses instead *)
  | Ptu_full
      (** application-virtualization baseline: everything the traced
          processes touched, full DB data files included *)

val kind_name : kind -> string

type entry = {
  e_path : string;
  e_size : int;
  e_content : Minios.Vfs.content option;
      (** [None] for write-only outputs: the path is recreated but no
          contents are shipped *)
}

type t = {
  kind : kind;
  app_name : string;  (** program-registry name used at replay *)
  app_binary : string;
  entries : entry list;
  db_subset : (string * string) list;  (** table -> CSV *)
  db_schemas : (string * string) list;  (** table -> DDL *)
  recording : Dbclient.Recorder.recorded list;
  trace_data : string;  (** serialized compact execution trace *)
  metadata : (string * string) list;
}

(** {2 Size accounting} *)

val entries_bytes : t -> int
val db_subset_bytes : t -> int
val recording_bytes : t -> int
val trace_bytes : t -> int
val total_bytes : t -> int

(** Path -> size manifest, for inspection. *)
val manifest : t -> (string * int) list

(** {2 Table III's contents matrix} *)

type contents_summary = {
  has_software_binaries : bool;
  has_db_server : bool;
  data_files : [ `Full | `Empty | `None ];
  has_db_provenance : bool;
}

val summarize : t -> contents_summary

(** {2 Construction} *)

(** CDE-style file collection from an audit: every path read gets its
    first-access snapshot; write-only paths are recreated empty. *)
val collect_entries : Audit.t -> exclude:(string -> bool) -> entry list

val base_metadata : Audit.t -> (string * string) list

(** The recorded multi-session schedule in a metadata list (scheduler
    seed, per-session (registry name, binary) in session order); [None]
    for single-session packages. *)
val schedule_of_metadata :
  (string * string) list -> (int * (string * string) list) option

(** [schedule_of_metadata] applied to the package's own metadata. *)
val schedule : t -> (int * (string * string) list) option

(** The recorded replication-cluster shape — (replica count, staleness
    bound) — when the audited run served reads from a cluster; [None]
    otherwise. *)
val replication_of_metadata : (string * string) list -> (int * int) option

(** The recorded read routes: (qid, replica that answered), sorted by
    qid. Leader-answered reads are not recorded. *)
val routes_of_metadata : (string * string) list -> (int * int) list

(** [replication_of_metadata] applied to the package's own metadata. *)
val replication : t -> (int * int) option

(** [routes_of_metadata] applied to the package's own metadata. *)
val routes : t -> (int * int) list

(** The recorded transaction outcomes — (sid, per-session ordinal,
    outcome), sorted — so replay can verify it reproduced every
    commit/abort decision. Empty when the audited run opened no
    interactive transactions. *)
val tx_outcomes_of_metadata :
  (string * string) list -> (int * int * Audit.tx_outcome) list

(** [tx_outcomes_of_metadata] applied to the package's own metadata. *)
val tx_outcomes : t -> (int * int * Audit.tx_outcome) list

(** The audit-time per-table row counts, sorted by table name: pinned at
    replay so the cost model's replay-stable decisions (join order, build
    side) match the recorded run even though the restored database holds
    only the sliced tuple subset. *)
val table_rows_of_metadata : (string * string) list -> (string * int) list

(** [table_rows_of_metadata] applied to the package's own metadata. *)
val table_rows : t -> (string * int) list

val build_included : Audit.t -> t
val build_excluded : Audit.t -> t

(** Dispatch on the audit's packaging mode.
    @raise Invalid_argument on PTU audits (use {!Ptu.build}). *)
val build : Audit.t -> t

(** {2 Whole-package serialization} *)

val to_bytes : t -> string

(** A content section dropped during parsing because it failed its
    checksum (or was otherwise unusable). *)
type corruption = { c_section : string; c_error : Ldv_errors.t }

type restored = {
  r_pkg : t;
  r_skipped : corruption list;  (** dropped content sections, in order *)
}

(** Parse package bytes, tolerating corrupt {e content} sections (files,
    CSV tables, schemas, outputs): each is skipped and reported in
    [r_skipped] so the caller can degrade gracefully. Structural damage
    (bad framing, truncation, corrupt kind/app/binary/trace/recording)
    returns [Error]. Never raises. *)
val of_bytes_result : string -> (restored, Ldv_errors.t) result

(** Strict parse: any corruption at all is an error.
    @raise Ldv_errors.Error on malformed or corrupt input. *)
val of_bytes : string -> t

(** Crash-safe package write: serialize, write to [path ^ ".tmp"], then
    atomically rename over [path]. Injected I/O faults are retried
    (bounded); on failure the destination is untouched and the temp file
    removed.
    @raise Ldv_errors.Error with [Io_fault] or [Retries_exhausted]. *)
val write_file : t -> path:string -> unit

(** The execution trace embedded in the package. *)
val trace : t -> Prov.Trace.t
