(** Seeded crash-consistency campaigns over the durable minidb
    ([ldv crashcheck]).

    One campaign = one seeded workload run twice on separate simulated
    machines:

    - a {e control} run that executes every statement (and checkpoint)
      with no faults installed, then snapshots the final database;
    - a {e crash} run under a plan armed to detonate one of the
      {!sites} (rotated by campaign index) on its n-th consultation.
      When the simulated power failure fires, the kernel drops every
      unsynced byte — for [wal.append] crashes a PRNG-chosen torn prefix
      of the WAL tail survives instead — the database recovers from
      checkpoint + durable WAL suffix ({!Dbclient.Durable.recover}), and
      the workload {e resumes} from the first statement recovery did not
      restore (WAL sequence numbers map 1:1 to workload statements).

    The verifier then demands the recovered-and-resumed database be
    statement-equivalent to the control: same tables, same rows (rids,
    versions, values), same row-id allocators, same logical clock. That
    catches lost committed work, resurrected uncommitted work, double
    application, and clock drift alike. [--no-recover] skips the redo
    phase while still resuming — the debug mode proving the verifier
    actually detects lost work.

    Like {!Faultcheck}, every run must end in a verdict or a typed
    failure: an untyped exception is a contract violation and the report
    counts it. Reports contain no wall-clock and no hash-order
    dependence, so the same seed always prints the identical report. *)

open Dbclient

(** Crash sites, rotated by campaign index. The first three live in the
    statement path ([Durable.exec]), the last three in the checkpoint
    protocol. *)
let sites =
  [| "wal.append"; "wal.pre_fsync"; "stmt.post_exec"; "ckpt.image";
     "ckpt.pre_rename"; "ckpt.pre_gc" |]

type outcome =
  | Verified of { redone : int; dropped : int; torn : int }
      (** crashed, recovered, resumed; equals the control *)
  | No_crash  (** the armed site was never reached; still verified equal *)
  | Diverged of { first : string }
      (** recovered state differs from the control *)
  | Failed of Ldv_errors.t  (** typed failure — the expected way to fail *)
  | Db_failed of string  (** the simulated DB refused a statement *)
  | Uncaught of string  (** contract violation: untyped exception *)

type run = {
  campaign : int;
  site : string;  (** armed crash site *)
  occurrence : int;  (** detonate on this consultation of the site *)
  outcome : outcome;
}

type report = {
  r_seed : int;
  r_campaigns : int;
  r_sessions : int;  (** concurrent sessions per campaign (1 = classic) *)
  r_recover : bool;  (** false under [--no-recover] *)
  r_runs : run list;
  r_injected : (string * int) list;  (** aggregate fault tallies *)
  r_uncaught : int;  (** contract violations (want 0) *)
  r_divergent : int;  (** runs whose recovered state differs (want 0) *)
}

let outcome_label = function
  | Verified _ -> "verified"
  | No_crash -> "no-crash"
  | Diverged _ -> "diverged"
  | Failed _ -> "typed-failure"
  | Db_failed _ -> "db-error"
  | Uncaught _ -> "uncaught"

let outcome_detail = function
  | Verified { redone; dropped; torn } ->
    Printf.sprintf "redo %d, dropped %d, torn %dB" redone dropped torn
  | No_crash -> "site never reached; states equal"
  | Diverged { first } -> first
  | Failed e -> Ldv_errors.to_string e
  | Db_failed msg -> msg
  | Uncaught msg -> "UNCAUGHT " ^ msg

(* ------------------------------------------------------------------ *)
(* Seeded workload generation.                                         *)

(** A workload item: one SQL statement (consuming exactly one WAL
    sequence number) or a server checkpoint (consuming none). *)
type item = Stmt of string | Ckpt

module Prng = Ldv_faults.Prng

(** Generate a campaign workload: two tables, a few seed rows, then a
    mix of inserts, updates, deletes, and multi-statement transactions
    (committed or rolled back), with checkpoints placed only between
    complete operations — never inside an open transaction, where a
    checkpoint is illegal. No SELECTs: every generated statement ticks
    the database clock exactly once, so WAL sequence numbers map 1:1 to
    workload statement ordinals and clock parity with the control run is
    exact. *)
let gen_workload (prng : Prng.t) : item list =
  let items = ref [] in
  let push i = items := i :: !items in
  let next_id = ref 0 in
  let fresh_id () = incr next_id; !next_id in
  let next_entry = ref 0 in
  push (Stmt "CREATE TABLE accounts (id INT, owner TEXT, balance INT)");
  push (Stmt "CREATE TABLE ledger (entry INT, delta INT)");
  push (Stmt "CREATE INDEX accounts_id ON accounts (id)");
  for _ = 1 to 3 + Prng.int prng 3 do
    let id = fresh_id () in
    push
      (Stmt
         (Printf.sprintf
            "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id id
            (100 + Prng.int prng 900)))
  done;
  push Ckpt;
  let existing_id () = 1 + Prng.int prng !next_id in
  let op () =
    match Prng.int prng 10 with
    | 0 | 1 | 2 ->
      let id = fresh_id () in
      push
        (Stmt
           (Printf.sprintf
              "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id id
              (100 + Prng.int prng 900)))
    | 3 | 4 ->
      push
        (Stmt
           (Printf.sprintf "UPDATE accounts SET balance = %d WHERE id = %d"
              (Prng.int prng 1000) (existing_id ())))
    | 5 ->
      push
        (Stmt
           (Printf.sprintf "DELETE FROM accounts WHERE id = %d"
              (existing_id ())))
    | 6 | 7 ->
      incr next_entry;
      push
        (Stmt
           (Printf.sprintf "INSERT INTO ledger VALUES (%d, %d)" !next_entry
              (Prng.int prng 200 - 100)))
    | _ ->
      (* a multi-statement transaction, committed ~2/3 of the time *)
      push (Stmt "BEGIN");
      for _ = 1 to 2 + Prng.int prng 2 do
        match Prng.int prng 3 with
        | 0 ->
          let id = fresh_id () in
          push
            (Stmt
               (Printf.sprintf
                  "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id id
                  (100 + Prng.int prng 900)))
        | 1 ->
          push
            (Stmt
               (Printf.sprintf
                  "UPDATE accounts SET balance = balance + %d WHERE id = %d"
                  (1 + Prng.int prng 50) (existing_id ())))
        | _ ->
          incr next_entry;
          push
            (Stmt
               (Printf.sprintf "INSERT INTO ledger VALUES (%d, %d)"
                  !next_entry (Prng.int prng 200 - 100)))
      done;
      push (Stmt (if Prng.int prng 3 < 2 then "COMMIT" else "ROLLBACK"))
  in
  let ops = 18 + Prng.int prng 11 in
  let since_ckpt = ref 0 in
  for _ = 1 to ops do
    op ();
    incr since_ckpt;
    if !since_ckpt >= 6 + Prng.int prng 2 then begin
      push Ckpt;
      since_ckpt := 0
    end
  done;
  List.rev !items

(** One concurrent session's statement stream: autocommit-only — crashing
    inside interleaved multi-statement transactions is {!Txcheck}'s job,
    which verifies recovery at transaction granularity — with ids
    namespaced per session so streams never fight over rows. *)
let gen_session_stream (prng : Prng.t) ~session : item list =
  let items = ref [] in
  let push i = items := i :: !items in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    (session * 1000) + !next_id
  in
  let existing_id () = (session * 1000) + 1 + Prng.int prng (max 1 !next_id) in
  for _ = 1 to 8 + Prng.int prng 5 do
    match Prng.int prng 6 with
    | 0 | 1 | 2 ->
      let id = fresh_id () in
      push
        (Stmt
           (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id
              id
              (100 + Prng.int prng 900)))
    | 3 | 4 ->
      push
        (Stmt
           (Printf.sprintf "UPDATE accounts SET balance = %d WHERE id = %d"
              (Prng.int prng 1000) (existing_id ())))
    | _ ->
      push
        (Stmt
           (Printf.sprintf "DELETE FROM accounts WHERE id = %d" (existing_id ())))
  done;
  List.rev !items

(** A concurrent campaign workload: shared DDL and per-session seed rows,
    then [sessions] autocommit streams interleaved round-robin — the same
    flattened statement order a cooperative scheduler would produce —
    with checkpoints between rounds. The flattening is what makes the
    control/crash comparison exact: both runs execute the identical
    statement sequence, so WAL sequence numbers still map 1:1 to
    statement ordinals. *)
let gen_workload_concurrent (prng : Prng.t) ~sessions : item list =
  let items = ref [] in
  let push i = items := i :: !items in
  push (Stmt "CREATE TABLE accounts (id INT, owner TEXT, balance INT)");
  push (Stmt "CREATE INDEX accounts_id ON accounts (id)");
  for s = 0 to sessions - 1 do
    push
      (Stmt
         (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'seed%d', %d)"
            ((s * 1000) + 999) s
            (100 + Prng.int prng 900)))
  done;
  push Ckpt;
  let streams =
    Array.init sessions (fun s -> ref (gen_session_stream (Prng.split prng) ~session:s))
  in
  let since_ckpt = ref 0 in
  let any_live () = Array.exists (fun r -> !r <> []) streams in
  while any_live () do
    Array.iter
      (fun r ->
        match !r with
        | [] -> ()
        | item :: rest ->
          r := rest;
          push item;
          incr since_ckpt)
      streams;
    if !since_ckpt >= 3 * sessions then begin
      push Ckpt;
      since_ckpt := 0
    end
  done;
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let data_dir = "/var/minidb/data"

(** Boot a fresh durable server on a fresh simulated machine. *)
let boot () : Minios.Kernel.t * Durable.t =
  let kernel = Minios.Kernel.create () in
  let db = Minidb.Database.create () in
  let server = Server.attach ~data_dir db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  (kernel, Durable.start kernel server ~pid:proc.Minios.Kernel.pid)

(** Run the workload's tail on [d]: statements whose 1-based ordinal
    exceeds [from] (recovery already restored the rest), checkpoints
    once past the restored prefix. [from = 0] runs everything.
    [group = Some g] runs under the WAL's group-commit policy, batching
    fsync barriers every [g] statements (a scheduler quantum's worth) —
    the crash surface the concurrent path exposes: a power failure can
    now drop a whole un-flushed batch, and recovery must still converge
    on the control state by re-executing it. *)
let run_items ?group (d : Durable.t) (items : item list) ~from : unit =
  (match group with
  | Some _ -> Durable.set_policy d Durable.Grouped
  | None -> ());
  let stmt_count = ref 0 in
  let executed = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Stmt sql ->
        incr stmt_count;
        if !stmt_count > from then begin
          ignore (Durable.exec d sql);
          incr executed;
          match group with
          | Some g when !executed mod g = 0 -> Durable.flush d
          | _ -> ()
        end
      | Ckpt -> if !stmt_count >= from then Durable.checkpoint d)
    items;
  if group <> None then Durable.flush d

(* ------------------------------------------------------------------ *)
(* Snapshot equivalence.                                               *)

(** Render the full logical state of a database — clock, tables, row-id
    allocators, indexes, and every live tuple version — as a canonical
    string: sorted table names, rows sorted by (rid, version). Two
    databases are statement-equivalent iff their snapshots are equal. *)
let snapshot (db : Minidb.Database.t) : string =
  Dbclient.Replication.state_fingerprint db

(** First line where two snapshots differ, for the divergence report. *)
let first_diff (a : string) (b : string) : string =
  Dbclient.Replication.first_diff ~left:"control" ~right:"recovered" a b

(* ------------------------------------------------------------------ *)
(* One campaign.                                                       *)

let run_campaign ?group ~recover_enabled ~(items : item list)
    ~(cprng : Prng.t) () : outcome =
  (* control: same workload, separate machine, and crucially NO installed
     plan — the caller's armed plan must only see the crash run *)
  let want =
    let saved = Ldv_faults.active () in
    Ldv_faults.clear ();
    Fun.protect
      ~finally:(fun () ->
        match saved with Some p -> Ldv_faults.install p | None -> ())
      (fun () ->
        let _control_kernel, control = boot () in
        run_items control items ~from:0;
        snapshot (Server.db (Durable.server control)))
  in
  (* crash run under the armed plan (installed by the caller) *)
  let kernel, d = boot () in
  let crashed_stats = ref (0, 0, 0) in
  let verdict ~crashed got =
    if String.equal want got then
      if crashed then
        let redone, dropped, torn = !crashed_stats in
        Verified { redone; dropped; torn }
      else No_crash
    else Diverged { first = first_diff want got }
  in
  match run_items ?group d items ~from:0 with
  | () -> verdict ~crashed:false (snapshot (Server.db (Durable.server d)))
  | exception Ldv_faults.Crash crash_site ->
    (* the power failure: decide how much of the unsynced WAL tail tore
       onto the platter, then drop everything else *)
    let wal = Durable.wal_path (Durable.server d) in
    let keep =
      if String.equal crash_site "wal.append" then
        let unsynced = Minios.Vfs.unsynced_bytes (Minios.Kernel.vfs kernel) wal in
        if unsynced > 0 then [ (wal, Prng.int cprng (unsynced + 1)) ] else []
      else []
    in
    Minios.Kernel.crash kernel ~keep ();
    let d', stats = Durable.recover ~apply:recover_enabled kernel ~data_dir () in
    crashed_stats :=
      ( stats.Durable.redone,
        stats.Durable.dropped,
        stats.Durable.torn_bytes );
    run_items ?group d' items ~from:stats.Durable.redo_upto;
    verdict ~crashed:true (snapshot (Server.db (Durable.server d')))

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)

let run ?(recover = true) ?(sessions = 1) ~campaigns ~seed () : report =
  if sessions < 1 then invalid_arg "Crashcheck.run: sessions must be >= 1";
  Ldv_obs.with_span
    ~attrs:
      [ ("campaigns", string_of_int campaigns); ("seed", string_of_int seed);
        ("sessions", string_of_int sessions);
        ("recover", string_of_bool recover) ]
    "crashcheck"
  @@ fun () ->
  let root = Prng.create ~seed in
  let injected = ref (Campaign.zero_tallies ()) in
  let runs = ref [] in
  (* multi-session campaigns run the crash side under group commit, one
     batch per scheduler-quantum's worth of statements *)
  let group = if sessions > 1 then Some sessions else None in
  for campaign = 0 to campaigns - 1 do
    let cam_seed = Campaign.derive_seed root in
    let cprng = Prng.create ~seed:cam_seed in
    let items =
      if sessions > 1 then gen_workload_concurrent (Prng.split cprng) ~sessions
      else gen_workload (Prng.split cprng)
    in
    let site = sites.(campaign mod Array.length sites) in
    (* checkpoint sites are consulted a handful of times per workload,
       statement sites dozens of times; range the detonation accordingly
       so crashes land deep in the run (mid-transaction included), not
       just during setup. Overshooting the run yields [No_crash]. *)
    let occurrence =
      if String.length site >= 5 && String.equal (String.sub site 0 5) "ckpt."
      then 1 + Prng.int cprng 4
      else 1 + Prng.int cprng 28
    in
    let plan = Ldv_faults.make ~crash:(site, occurrence) ~seed:cam_seed () in
    let outcome =
      Ldv_obs.with_span
        ~attrs:
          [ ("campaign", string_of_int campaign); ("site", site);
            ("occurrence", string_of_int occurrence) ]
        "crashcheck.run"
      @@ fun () ->
      Ldv_faults.with_plan plan @@ fun () ->
      match
        Campaign.guard
          (run_campaign ?group ~recover_enabled:recover ~items ~cprng)
      with
      | Ok outcome -> outcome
      | Error (Campaign.Typed e) -> Failed e
      | Error (Campaign.Db msg) -> Db_failed msg
      | Error (Campaign.Replay_diverged msg) -> Diverged { first = msg }
      | Error (Campaign.Other msg) -> Uncaught msg
    in
    Ldv_obs.counter ("crashcheck.outcome." ^ outcome_label outcome);
    injected := Campaign.add_tallies !injected (Ldv_faults.injected plan);
    runs := { campaign; site; occurrence; outcome } :: !runs
  done;
  let runs = List.rev !runs in
  let count p = List.length (List.filter p runs) in
  { r_seed = seed;
    r_campaigns = campaigns;
    r_sessions = sessions;
    r_recover = recover;
    r_runs = runs;
    r_injected = !injected;
    r_uncaught =
      count (fun r -> match r.outcome with Uncaught _ -> true | _ -> false);
    r_divergent =
      count (fun r -> match r.outcome with Diverged _ -> true | _ -> false) }

(* ------------------------------------------------------------------ *)
(* Deterministic report rendering.                                     *)

let outcome_order =
  [ "verified"; "no-crash"; "diverged"; "typed-failure"; "db-error";
    "uncaught" ]

let pp ppf (r : report) =
  Format.fprintf ppf "crashcheck: %d campaigns, seed %d%s%s@," r.r_campaigns
    r.r_seed
    (if r.r_sessions > 1 then
       Printf.sprintf ", %d concurrent sessions (group commit)" r.r_sessions
     else "")
    (if r.r_recover then "" else ", recovery DISABLED (--no-recover)");
  List.iter
    (fun run ->
      Format.fprintf ppf "  c%03d %-15s occ %d  %-13s %s@," run.campaign
        run.site run.occurrence
        (outcome_label run.outcome)
        (outcome_detail run.outcome))
    r.r_runs;
  Campaign.pp_outcome_counts ppf ~order:outcome_order
    ~label:(fun run -> outcome_label run.outcome)
    r.r_runs;
  Campaign.pp_tallies ppf r.r_injected;
  Format.fprintf ppf "divergent runs: %d@," r.r_divergent;
  Campaign.pp_uncaught ppf r.r_uncaught

let to_string (r : report) : string =
  Format.asprintf "@[<v>%a@]" pp r
