(** The PTU baseline (§IX-A, Table III).

    PTU is application virtualization with OS-level provenance: run the
    whole experiment — DB server included — under ptrace and copy every
    touched file into the package. It has no DB provenance, so the
    package necessarily contains the server's complete data files. *)

(** Audit an application the PTU way: traced server, plain (uninstrumented)
    client library. *)
let run (kernel : Minios.Kernel.t) (server : Dbclient.Server.t) ~app_name
    ~app_binary ?app_libs (program : Minios.Program.program) : Audit.t =
  Audit.run ~packaging:Audit.Ptu_baseline kernel server ~app_name ~app_binary
    ?app_libs program

(** Build the PTU package: all touched files, full DB data files included,
    OS provenance graph attached. *)
let build (audit : Audit.t) : Package.t =
  Ldv_obs.with_span ~attrs:[ ("kind", "ptu") ] "package.build" @@ fun () ->
  let entries = Package.collect_entries audit ~exclude:(fun _ -> false) in
  { Package.kind = Package.Ptu_full;
    app_name = audit.Audit.app_name;
    app_binary = audit.Audit.app_binary;
    entries;
    db_subset = [];
    db_schemas = [];
    recording = [];
    trace_data =
      Prov.Trace.serialize (Minios.Tracer.build_bb_trace audit.Audit.tracer);
    metadata = Package.base_metadata audit @ [ ("packaging", "ptu") ] }
