(** Seeded transaction-granular crash campaigns ([ldv txcheck]).

    {!Crashcheck} verifies statement-level crash consistency; this
    campaign verifies the *transactional* contract on top of it. Each
    campaign interleaves multi-statement transactions from [sessions]
    concurrent sessions over one durable server (per-session WAL frames,
    see {!Dbclient.Wal.durable_cut}) and detonates a seeded crash at one
    of the {!sites} — by construction often inside open transactions.
    After the power failure the database recovers from checkpoint plus
    durable WAL suffix; recovery drops exactly the transactions that have
    no durable COMMIT/ROLLBACK frame, and the workload resumes past the
    restored prefix, skipping the statements of those crashed
    transactions (the application treats a crash-aborted transaction as
    aborted, not as something to silently re-submit).

    The verifier demands two things:

    - {e state equivalence at transaction granularity}: the recovered and
      resumed database must equal a control machine that executed the
      full workload minus the crashed transactions — same tables, rows,
      version stamps, row-id allocators, and logical clock. This is the
      "no durable COMMIT, no effects" invariant: a transaction is either
      entirely in the final state or entirely absent;
    - {e provenance equivalence for every committed transaction}: for
      each transaction the recovered database committed (replayed or
      resumed), the control run must hold a transaction with the same
      begin/commit clocks whose composed reenactment
      ({!Gprom.Tx_reenact.compose}) — surviving versions, intermediate
      versions, pre-state, dependency edges — is identical. Recovery must
      not merely restore bytes; it must restore the story of how each
      transaction produced them.

    Sessions write disjoint row ranges, so campaigns are conflict-free by
    construction: what is exercised here is crash atomicity, not the
    first-updater-wins abort path (which {!Audit.run_concurrent}
    workloads and the [txn] bench cover). Reports are deterministic per
    seed: no wall-clock, no hash-order dependence. *)

open Dbclient

(** Crash sites, rotated by campaign index: the WAL append window, the
    pre-fsync window (a COMMIT crashing here loses the whole transaction
    atomically), the post-execute window, and the middle of a rollback's
    undo walk. *)
let sites = [| "wal.append"; "wal.pre_fsync"; "stmt.post_exec"; "tx.undo" |]

type outcome =
  | Verified of {
      redone : int;
      dropped : int;
      aborted_txs : int;  (** transactions rolled back by the crash *)
      committed_checked : int;
          (** committed transactions whose reenactment provenance was
              verified against the control *)
    }
  | No_crash  (** the armed site was never reached; still verified equal *)
  | Diverged of { first : string }
  | Failed of Ldv_errors.t
  | Db_failed of string
  | Uncaught of string

type run = {
  campaign : int;
  site : string;
  occurrence : int;
  outcome : outcome;
}

type report = {
  r_seed : int;
  r_campaigns : int;
  r_sessions : int;
  r_runs : run list;
  r_injected : (string * int) list;
  r_uncaught : int;
  r_divergent : int;
}

let outcome_label = function
  | Verified _ -> "verified"
  | No_crash -> "no-crash"
  | Diverged _ -> "diverged"
  | Failed _ -> "typed-failure"
  | Db_failed _ -> "db-error"
  | Uncaught _ -> "uncaught"

let outcome_detail = function
  | Verified { redone; dropped; aborted_txs; committed_checked } ->
    Printf.sprintf "redo %d, dropped %d, aborted tx %d, reenacted %d" redone
      dropped aborted_txs committed_checked
  | No_crash -> "site never reached; states equal"
  | Diverged { first } -> first
  | Failed e -> Ldv_errors.to_string e
  | Db_failed msg -> msg
  | Uncaught msg -> "UNCAUGHT " ^ msg

(* ------------------------------------------------------------------ *)
(* Seeded workload generation.                                         *)

module Prng = Ldv_faults.Prng

(** A workload item: one SQL statement from session [sid] (consuming
    exactly one WAL sequence number — ordinals map 1:1 to sequence
    numbers), tagged with the session's transaction ordinal ([txn = 0]
    for autocommit), or a server checkpoint (consuming none, placed only
    at barriers where every session's transaction is closed). *)
type item = Stmt of { sql : string; sid : int; txn : int } | Ckpt

(** One session's statement stream: a mix of autocommit DML and
    multi-statement transactions (committed ~3/4, rolled back ~1/4), over
    a row range disjoint from every other session's ([sid * 1000 + _]),
    so interleaved streams never conflict. *)
let gen_session_stream (prng : Prng.t) ~sid : item list =
  let items = ref [] in
  let next_id = ref 0 in
  let next_txn = ref 0 in
  let push ~txn sql = items := Stmt { sql; sid; txn } :: !items in
  let fresh_id () =
    incr next_id;
    (sid * 1000) + !next_id
  in
  let existing_id () = (sid * 1000) + 1 + Prng.int prng (max 1 !next_id) in
  let dml ~txn =
    match Prng.int prng 5 with
    | 0 | 1 ->
      let id = fresh_id () in
      push ~txn
        (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id id
           (100 + Prng.int prng 900))
    | 2 | 3 ->
      push ~txn
        (Printf.sprintf
           "UPDATE accounts SET balance = balance + %d WHERE id = %d"
           (1 + Prng.int prng 50) (existing_id ()))
    | _ ->
      push ~txn
        (Printf.sprintf "UPDATE accounts SET owner = 'o%d' WHERE id = %d"
           (Prng.int prng 100) (existing_id ()))
  in
  for _ = 1 to 5 + Prng.int prng 4 do
    if Prng.int prng 3 = 0 then dml ~txn:0
    else begin
      (* a multi-statement transaction *)
      incr next_txn;
      let txn = !next_txn in
      push ~txn "BEGIN";
      for _ = 1 to 2 + Prng.int prng 3 do
        dml ~txn
      done;
      push ~txn (if Prng.int prng 4 < 3 then "COMMIT" else "ROLLBACK")
    end
  done;
  List.rev !items

(** A campaign workload: shared DDL and per-session seed rows, then
    [sessions] streams interleaved round-robin one statement at a time —
    so transactions from different sessions genuinely interleave in the
    WAL — with checkpoints only at rounds where every session's
    transaction is closed. *)
let gen_workload (prng : Prng.t) ~sessions : item list =
  let items = ref [] in
  let push i = items := i :: !items in
  push (Stmt { sql = "CREATE TABLE accounts (id INT, owner TEXT, balance INT)";
               sid = 0; txn = 0 });
  push (Stmt { sql = "CREATE INDEX accounts_id ON accounts (id)";
               sid = 0; txn = 0 });
  for s = 0 to sessions - 1 do
    push
      (Stmt
         { sql =
             Printf.sprintf "INSERT INTO accounts VALUES (%d, 'seed%d', %d)"
               ((s * 1000) + 999) s
               (100 + Prng.int prng 900);
           sid = s;
           txn = 0 })
  done;
  push Ckpt;
  let streams =
    Array.init sessions (fun s ->
        ref (gen_session_stream (Prng.split prng) ~sid:s))
  in
  let open_tx = Array.make sessions false in
  let since_ckpt = ref 0 in
  let any_live () = Array.exists (fun r -> !r <> []) streams in
  while any_live () do
    Array.iteri
      (fun s r ->
        match !r with
        | [] -> ()
        | (Stmt { sql; _ } as item) :: rest ->
          r := rest;
          push item;
          incr since_ckpt;
          (match sql with
          | "BEGIN" -> open_tx.(s) <- true
          | "COMMIT" | "ROLLBACK" -> open_tx.(s) <- false
          | _ -> ())
        | Ckpt :: rest -> r := rest)
      streams;
    if !since_ckpt >= 4 * sessions && not (Array.exists Fun.id open_tx) then begin
      push Ckpt;
      since_ckpt := 0
    end
  done;
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let data_dir = "/var/minidb/data"

let boot () : Minios.Kernel.t * Durable.t =
  let kernel = Minios.Kernel.create () in
  let db = Minidb.Database.create () in
  let server = Server.attach ~data_dir db in
  let proc = Minios.Kernel.start_process kernel ~name:"minidb-server" () in
  (kernel, Durable.start kernel server ~pid:proc.Minios.Kernel.pid)

(** Execute the workload's statements on [d], each under its session's
    sid: ordinals at or below [from] were already restored by recovery,
    and statements of the crash-aborted transactions in [skip] (as
    [(sid, txn)] pairs) are not re-submitted. *)
let run_items (d : Durable.t) (items : item list) ~from
    ~(skip : (int * int) list) : unit =
  let ord = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Stmt { sql; sid; txn } ->
        incr ord;
        if !ord > from && not (txn <> 0 && List.mem (sid, txn) skip) then
          ignore (Durable.exec ~sid d sql)
      | Ckpt -> if !ord >= from then Durable.checkpoint d)
    items

let snapshot (db : Minidb.Database.t) : string =
  Replication.state_fingerprint db

(* ------------------------------------------------------------------ *)
(* Transaction-level verification.                                     *)

(** Canonical rendering of a committed transaction's composed reenactment
    provenance; two transactions are provenance-equivalent iff their
    renderings are equal. *)
let reenactment (ct : Minidb.Database.committed_tx) : string =
  let r = Gprom.Tx_reenact.compose ~start_clock:ct.Minidb.Database.ct_begin
      ct.Minidb.Database.ct_stmts
  in
  Format.asprintf "%a" Gprom.Tx_reenact.pp r

(** Every transaction the recovered database committed must appear in the
    control run with the same begin/commit clocks and an identical
    composed reenactment. (A subset check: the control also holds
    transactions the recovered side folded into its checkpoint image.)
    Returns [Error first_difference] or [Ok checked_count]. *)
let check_committed ~(control : Minidb.Database.t)
    ~(recovered : Minidb.Database.t) : (int, string) result =
  let control_txs = Minidb.Database.committed_txs control in
  let rec go checked = function
    | [] -> Ok checked
    | (ct : Minidb.Database.committed_tx) :: rest -> (
      match
        List.find_opt
          (fun (c : Minidb.Database.committed_tx) ->
            c.ct_begin = ct.ct_begin && c.ct_commit = ct.ct_commit)
          control_txs
      with
      | None ->
        Error
          (Printf.sprintf
             "recovered tx (begin %d, commit %d) has no control counterpart"
             ct.ct_begin ct.ct_commit)
      | Some c ->
        let want = reenactment c and got = reenactment ct in
        if String.equal want got then go (checked + 1) rest
        else
          Error
            (Printf.sprintf
               "tx (begin %d, commit %d): reenactment differs: %s" ct.ct_begin
               ct.ct_commit
               (Replication.first_diff ~left:"control" ~right:"recovered" want
                  got)))
  in
  go 0 (Minidb.Database.committed_txs recovered)

(* ------------------------------------------------------------------ *)
(* One campaign.                                                       *)

(** Run the control arm — full workload minus the crash-aborted
    transactions, on a fresh machine with no plan installed — and return
    its database and state fingerprint. *)
let run_control ~items ~(skip : (int * int) list) :
    Minidb.Database.t * string =
  let saved = Ldv_faults.active () in
  Ldv_faults.clear ();
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Ldv_faults.install p | None -> ())
    (fun () ->
      let _kernel, control = boot () in
      run_items control items ~from:0 ~skip;
      let db = Server.db (Durable.server control) in
      (db, snapshot db))

let run_campaign ~(items : item list) ~(cprng : Prng.t) () : outcome =
  (* 1-based statement ordinal -> item, for mapping dropped WAL sequence
     numbers back to the transactions the crash aborted *)
  let stmts =
    Array.of_list
      (List.filter_map
         (function
           | Stmt { sid; txn; _ } -> Some (sid, txn)
           | Ckpt -> None)
         items)
  in
  let kernel, d = boot () in
  match run_items d items ~from:0 ~skip:[] with
  | () ->
    (* the armed site was never reached: states must still be equal *)
    let got = snapshot (Server.db (Durable.server d)) in
    let _, want = run_control ~items ~skip:[] in
    if String.equal want got then No_crash
    else
      Diverged
        { first = Replication.first_diff ~left:"control" ~right:"run" want got }
  | exception Ldv_faults.Crash crash_site ->
    (* the power failure: for wal.append crashes a PRNG-chosen torn
       prefix of the unsynced WAL tail survives; everything else unsynced
       is dropped *)
    let wal = Durable.wal_path (Durable.server d) in
    let keep =
      if String.equal crash_site "wal.append" then
        let unsynced = Minios.Vfs.unsynced_bytes (Minios.Kernel.vfs kernel) wal in
        if unsynced > 0 then [ (wal, Prng.int cprng (unsynced + 1)) ] else []
      else []
    in
    Minios.Kernel.crash kernel ~keep ();
    let d', stats = Durable.recover kernel ~data_dir () in
    (* the crash-aborted transactions: those whose durable records were
       dropped as unterminated (statement ordinals map 1:1 to WAL seqs) *)
    let aborted =
      List.filter_map
        (fun (r : Wal.record) ->
          if r.Wal.seq >= 1 && r.Wal.seq <= Array.length stmts then
            match stmts.(r.Wal.seq - 1) with
            | _, 0 -> None
            | sid, txn -> Some (sid, txn)
          else None)
        stats.Durable.dropped_records
      |> List.sort_uniq compare
    in
    run_items d' items ~from:stats.Durable.redo_upto ~skip:aborted;
    let recovered_db = Server.db (Durable.server d') in
    let got = snapshot recovered_db in
    let control_db, want = run_control ~items ~skip:aborted in
    if not (String.equal want got) then
      Diverged
        { first =
            Replication.first_diff ~left:"control" ~right:"recovered" want got }
    else (
      match check_committed ~control:control_db ~recovered:recovered_db with
      | Error first -> Diverged { first }
      | Ok checked ->
        Verified
          { redone = stats.Durable.redone;
            dropped = stats.Durable.dropped;
            aborted_txs = List.length aborted;
            committed_checked = checked })

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)

let run ?(sessions = 4) ~campaigns ~seed () : report =
  if sessions < 1 then invalid_arg "Txcheck.run: sessions must be >= 1";
  Ldv_obs.with_span
    ~attrs:
      [ ("campaigns", string_of_int campaigns); ("seed", string_of_int seed);
        ("sessions", string_of_int sessions) ]
    "txcheck"
  @@ fun () ->
  let root = Prng.create ~seed in
  let injected = ref (Campaign.zero_tallies ()) in
  let runs = ref [] in
  for campaign = 0 to campaigns - 1 do
    let cam_seed = Campaign.derive_seed root in
    let cprng = Prng.create ~seed:cam_seed in
    let items = gen_workload (Prng.split cprng) ~sessions in
    let site = sites.(campaign mod Array.length sites) in
    (* [tx.undo] is consulted only inside rollback walks — a handful of
       times per workload; statement sites fire once per statement *)
    let occurrence =
      if String.equal site "tx.undo" then 1 + Prng.int cprng 4
      else 1 + Prng.int cprng 40
    in
    let plan = Ldv_faults.make ~crash:(site, occurrence) ~seed:cam_seed () in
    let outcome =
      Ldv_obs.with_span
        ~attrs:
          [ ("campaign", string_of_int campaign); ("site", site);
            ("occurrence", string_of_int occurrence) ]
        "txcheck.run"
      @@ fun () ->
      Ldv_faults.with_plan plan @@ fun () ->
      match Campaign.guard (run_campaign ~items ~cprng) with
      | Ok outcome -> outcome
      | Error (Campaign.Typed e) -> Failed e
      | Error (Campaign.Db msg) -> Db_failed msg
      | Error (Campaign.Replay_diverged msg) -> Diverged { first = msg }
      | Error (Campaign.Other msg) -> Uncaught msg
    in
    Ldv_obs.counter ("txcheck.outcome." ^ outcome_label outcome);
    injected := Campaign.add_tallies !injected (Ldv_faults.injected plan);
    runs := { campaign; site; occurrence; outcome } :: !runs
  done;
  let runs = List.rev !runs in
  let count p = List.length (List.filter p runs) in
  { r_seed = seed;
    r_campaigns = campaigns;
    r_sessions = sessions;
    r_runs = runs;
    r_injected = !injected;
    r_uncaught =
      count (fun r -> match r.outcome with Uncaught _ -> true | _ -> false);
    r_divergent =
      count (fun r -> match r.outcome with Diverged _ -> true | _ -> false) }

(* ------------------------------------------------------------------ *)
(* Deterministic report rendering.                                     *)

let outcome_order =
  [ "verified"; "no-crash"; "diverged"; "typed-failure"; "db-error";
    "uncaught" ]

let pp ppf (r : report) =
  Format.fprintf ppf
    "txcheck: %d campaigns, seed %d, %d interleaved tx sessions@,"
    r.r_campaigns r.r_seed r.r_sessions;
  List.iter
    (fun run ->
      Format.fprintf ppf "  c%03d %-14s occ %d  %-13s %s@," run.campaign
        run.site run.occurrence
        (outcome_label run.outcome)
        (outcome_detail run.outcome))
    r.r_runs;
  Campaign.pp_outcome_counts ppf ~order:outcome_order
    ~label:(fun run -> outcome_label run.outcome)
    r.r_runs;
  Campaign.pp_tallies ppf r.r_injected;
  Format.fprintf ppf "divergent runs: %d@," r.r_divergent;
  Campaign.pp_uncaught ppf r.r_uncaught

let to_string (r : report) : string =
  Format.asprintf "@[<v>%a@]" pp r
