(** Seeded replication-robustness campaigns over a leader + N read
    replicas ([ldv replicacheck]).

    One campaign = one seeded workload (writes, transactions, checkpoints,
    and interleaved reads) run twice:

    - a {e degraded} cluster run under a fault plan: ship-channel faults
      (dropped / garbled / reordered WAL frames), a one-shot [repl.apply]
      crash point that power-fails one replica mid-apply, or both —
      rotated by campaign index. Reads go through the replication router
      (round-robin over replicas, staleness-bounded, leader fallback);
      every read records which node answered and at which pinned version.
      Crashed replicas recover after a seeded number of items via
      checkpoint + WAL redo and catch-up resync from the leader's
      retained ship log.
    - a {e control} run on a single fresh node with no faults and no
      replicas, executing only the writes.

    The verifier then demands:
    - {b convergence}: after a fault-free quiesce (recover + catch-up),
      every replica's full state is byte-identical with the leader's;
    - {b leader integrity}: the leader's final state is byte-identical
      with the control's — shipping and read service perturbed nothing;
    - {b read correctness}: every recorded read, re-executed on the
      control database [AS OF] the version it was served at (with the
      clock frozen), returns the identical response. A stale read is one
      served below the leader's then-current version — allowed within
      the staleness bound — but a {e wrong} read (any answer the
      control's version history cannot reproduce at that version) is a
      divergence.

    Like {!Crashcheck}, every campaign ends in a verdict or a typed
    failure; untyped exceptions are contract violations and reports are
    byte-deterministic per seed. *)

open Dbclient
module Prng = Ldv_faults.Prng

(* ------------------------------------------------------------------ *)
(* Outcomes and reports.                                               *)

type scenario = Ship_faults | Apply_crash | Combined

let scenario_label = function
  | Ship_faults -> "ship-faults"
  | Apply_crash -> "apply-crash"
  | Combined -> "combined"

type outcome =
  | Verified of {
      reads : int;
      replica_reads : int;  (** answered by a replica *)
      stale : int;  (** served below the leader's then-current version *)
      fallbacks : int;  (** no eligible replica; leader answered *)
      crashes : int;
      recoveries : int;
    }
  | Read_diverged of { ordinal : int; node : int; first : string }
      (** a degraded-run read the control cannot reproduce *)
  | Not_converged of { replica : int; first : string }
      (** a replica failed byte-identical convergence after quiesce *)
  | Leader_diverged of { first : string }
      (** the leader's final state differs from the control's *)
  | Failed of Ldv_errors.t
  | Db_failed of string
  | Uncaught of string

type run = {
  campaign : int;
  scenario : scenario;
  p_ship : float;
  occurrence : int;  (** [repl.apply] detonation ordinal; 0 = not armed *)
  staleness : int;
  outcome : outcome;
}

type report = {
  r_seed : int;
  r_campaigns : int;
  r_replicas : int;
  r_runs : run list;
  r_injected : (string * int) list;
  r_uncaught : int;
  r_divergent : int;
      (** read divergence, failed convergence, or leader drift (want 0) *)
}

let outcome_label = function
  | Verified _ -> "verified"
  | Read_diverged _ -> "read-diverged"
  | Not_converged _ -> "not-converged"
  | Leader_diverged _ -> "leader-diverged"
  | Failed _ -> "typed-failure"
  | Db_failed _ -> "db-error"
  | Uncaught _ -> "uncaught"

let outcome_detail = function
  | Verified { reads; replica_reads; stale; fallbacks; crashes; recoveries }
    ->
    Printf.sprintf
      "%d reads (%d replica, %d stale, %d fallback), %d crashes, %d \
       recoveries"
      reads replica_reads stale fallbacks crashes recoveries
  | Read_diverged { ordinal; node; first } ->
    Printf.sprintf "read #%d (node %d): %s" ordinal node first
  | Not_converged { replica; first } ->
    Printf.sprintf "replica %d: %s" replica first
  | Leader_diverged { first } -> first
  | Failed e -> Ldv_errors.to_string e
  | Db_failed msg -> msg
  | Uncaught msg -> "UNCAUGHT " ^ msg

(* ------------------------------------------------------------------ *)
(* Seeded workload generation: Crashcheck's accounts/ledger write mix
   with reads interleaved at top level only — never inside an open
   transaction, where a routed read could observe (or a control re-read
   miss) uncommitted state.                                            *)

type item = Write of string | Read of string | Ckpt

let read_sql (prng : Prng.t) ~max_id : string =
  match Prng.int prng 5 with
  | 0 -> "SELECT COUNT(*) FROM accounts"
  | 1 ->
    Printf.sprintf "SELECT owner, balance FROM accounts WHERE id = %d"
      (1 + Prng.int prng (max 1 max_id))
  | 2 -> "SELECT SUM(delta) FROM ledger"
  | 3 -> "SELECT COUNT(*) FROM ledger"
  | _ -> "SELECT SUM(balance) FROM accounts"

let gen_workload (prng : Prng.t) : item list =
  let items = ref [] in
  let push i = items := i :: !items in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let next_entry = ref 0 in
  push (Write "CREATE TABLE accounts (id INT, owner TEXT, balance INT)");
  push (Write "CREATE TABLE ledger (entry INT, delta INT)");
  push (Write "CREATE INDEX accounts_id ON accounts (id)");
  for _ = 1 to 3 + Prng.int prng 3 do
    let id = fresh_id () in
    push
      (Write
         (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id
            id
            (100 + Prng.int prng 900)))
  done;
  push Ckpt;
  let existing_id () = 1 + Prng.int prng !next_id in
  let op () =
    match Prng.int prng 10 with
    | 0 | 1 | 2 ->
      let id = fresh_id () in
      push
        (Write
           (Printf.sprintf "INSERT INTO accounts VALUES (%d, 'owner%d', %d)"
              id id
              (100 + Prng.int prng 900)))
    | 3 | 4 ->
      push
        (Write
           (Printf.sprintf "UPDATE accounts SET balance = %d WHERE id = %d"
              (Prng.int prng 1000) (existing_id ())))
    | 5 ->
      push
        (Write
           (Printf.sprintf "DELETE FROM accounts WHERE id = %d"
              (existing_id ())))
    | 6 | 7 ->
      incr next_entry;
      push
        (Write
           (Printf.sprintf "INSERT INTO ledger VALUES (%d, %d)" !next_entry
              (Prng.int prng 200 - 100)))
    | _ ->
      (* a multi-statement transaction, committed ~2/3 of the time *)
      push (Write "BEGIN");
      for _ = 1 to 2 + Prng.int prng 2 do
        match Prng.int prng 3 with
        | 0 ->
          let id = fresh_id () in
          push
            (Write
               (Printf.sprintf
                  "INSERT INTO accounts VALUES (%d, 'owner%d', %d)" id id
                  (100 + Prng.int prng 900)))
        | 1 ->
          push
            (Write
               (Printf.sprintf
                  "UPDATE accounts SET balance = balance + %d WHERE id = %d"
                  (1 + Prng.int prng 50) (existing_id ())))
        | _ ->
          incr next_entry;
          push
            (Write
               (Printf.sprintf "INSERT INTO ledger VALUES (%d, %d)"
                  !next_entry
                  (Prng.int prng 200 - 100)))
      done;
      push (Write (if Prng.int prng 3 < 2 then "COMMIT" else "ROLLBACK"))
  in
  let ops = 18 + Prng.int prng 11 in
  let since_ckpt = ref 0 in
  for _ = 1 to ops do
    op ();
    (* reads between complete operations: roughly one per write op *)
    for _ = 1 to Prng.int prng 3 do
      push (Read (read_sql prng ~max_id:!next_id))
    done;
    incr since_ckpt;
    if !since_ckpt >= 6 + Prng.int prng 2 then begin
      push Ckpt;
      since_ckpt := 0
    end
  done;
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Response fingerprints: the unit of read verification.               *)

let response_fingerprint (resp : Protocol.response) : string =
  match resp with
  | Protocol.Result_set { rows; _ } ->
    String.concat "|"
      (List.map
         (fun row ->
           String.concat ";"
             (Array.to_list (Array.map Minidb.Value.to_raw_string row)))
         rows)
  | Protocol.Command_ok { affected } -> Printf.sprintf "ok %d" affected
  | Protocol.Ddl_ok -> "ddl"
  | Protocol.Error_response msg -> "error " ^ msg
  | Protocol.Connected _ -> "connected"

(** One recorded degraded-run read, for control re-verification. *)
type read_rec = {
  rr_ordinal : int;
  rr_sql : string;
  rr_version : int;  (** the version the answer was pinned at *)
  rr_node : int;  (** replica id, -1 = leader *)
  rr_fingerprint : string;
}

(* ------------------------------------------------------------------ *)
(* One campaign.                                                       *)

type degraded = {
  d_leader_fp : string;
  d_reads : read_rec list;
  d_replica_reads : int;
  d_stale : int;
  d_fallbacks : int;
  d_crashes : int;
  d_recoveries : int;
  d_converged : (int * string) option;
}

(* The degraded cluster run. The caller has installed the armed plan; the
   final quiesce runs with the plan cleared so convergence is a property
   of recovery, not of fault luck. *)
let run_degraded ~(items : item list) ~replicas ~staleness ~(cprng : Prng.t)
    () : degraded =
  let kernel, leader = Crashcheck.boot () in
  let cluster =
    Replication.create kernel ~leader ~replicas ~staleness
      ~torn:(fun unsynced -> Prng.int cprng (unsynced + 1))
      ()
  in
  let leader_db = Server.db (Durable.server leader) in
  let reads = ref [] in
  let ordinal = ref 0 in
  let replica_reads = ref 0 in
  let stale = ref 0 in
  let fallbacks = ref 0 in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  (* seeded recovery schedule: a downed replica is recovered after this
     many further workload items *)
  let countdown = Array.make (max replicas 1) (-1) in
  let was_down = Array.make (max replicas 1) false in
  let after_item () =
    for i = 0 to replicas - 1 do
      let down = Replication.replica_state cluster i = Replication.Down in
      if down && not was_down.(i) then begin
        incr crashes;
        countdown.(i) <- 2 + Prng.int cprng 4
      end;
      was_down.(i) <- down;
      if down then begin
        countdown.(i) <- countdown.(i) - 1;
        if countdown.(i) <= 0 then begin
          Replication.recover cluster i;
          if Replication.replica_state cluster i <> Replication.Down then
            incr recoveries
          else (* crashed again mid-catch-up: reschedule *)
            countdown.(i) <- 2 + Prng.int cprng 4;
          was_down.(i) <-
            Replication.replica_state cluster i = Replication.Down
        end
      end
    done
  in
  List.iter
    (fun item ->
      (match item with
      | Write sql -> (
        match Replication.exec cluster sql with
        | Protocol.Error_response msg ->
          invalid_arg
            (Printf.sprintf "Replicacheck: leader refused %s: %s" sql msg)
        | _ -> ())
      | Ckpt -> Durable.checkpoint leader
      | Read sql ->
        let leader_now = Minidb.Database.clock leader_db in
        let served = Replication.read cluster sql in
        incr ordinal;
        if served.Replication.sv_node >= 0 then begin
          incr replica_reads;
          if served.Replication.sv_version < leader_now then incr stale
        end
        else incr fallbacks;
        reads :=
          { rr_ordinal = !ordinal;
            rr_sql = sql;
            rr_version = served.Replication.sv_version;
            rr_node = served.Replication.sv_node;
            rr_fingerprint = response_fingerprint served.Replication.sv_resp
          }
          :: !reads);
      after_item ())
    items;
  (* fault-free quiesce: recovery + catch-up must converge the cluster *)
  let saved = Ldv_faults.active () in
  Ldv_faults.clear ();
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Ldv_faults.install p | None -> ())
    (fun () -> Replication.quiesce cluster);
  { d_leader_fp = Replication.state_fingerprint leader_db;
    d_reads = List.rev !reads;
    d_replica_reads = !replica_reads;
    d_stale = !stale;
    d_fallbacks = !fallbacks;
    d_crashes = !crashes;
    d_recoveries = !recoveries;
    d_converged = Replication.converged cluster }

(* The single-node control: writes only, no faults, no replicas. *)
let run_control ~(items : item list) () : Durable.t * string =
  let saved = Ldv_faults.active () in
  Ldv_faults.clear ();
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Ldv_faults.install p | None -> ())
    (fun () ->
      let _kernel, control = Crashcheck.boot () in
      List.iter
        (fun item ->
          match item with
          | Write sql -> ignore (Durable.exec control sql)
          | Ckpt -> Durable.checkpoint control
          | Read _ -> ())
        items;
      let db = Server.db (Durable.server control) in
      (control, Replication.state_fingerprint db))

(* Re-execute one recorded read on the control database, pinned [AS OF]
   the version it was served at, clock-frozen: the engine's retained
   version history makes every historically served answer checkable
   after the fact. *)
let verify_read (control : Durable.t) (r : read_rec) : string =
  let server = Durable.server control in
  let ast = Minidb.Sql_parser.parse r.rr_sql in
  let pinned = Snapshot_pin.pin_statement r.rr_version ast in
  let sql = Minidb.Pretty.statement_to_string pinned in
  let resp =
    Minidb.Database.with_frozen_clock (Server.db server) (fun () ->
        Server.handle server (Protocol.Statement { sql }))
  in
  response_fingerprint resp

let run_campaign ~items ~replicas ~staleness ~cprng () : outcome =
  let degraded = run_degraded ~items ~replicas ~staleness ~cprng () in
  let control, control_fp = run_control ~items () in
  match degraded.d_converged with
  | Some (replica, first) -> Not_converged { replica; first }
  | None ->
    if not (String.equal control_fp degraded.d_leader_fp) then
      Leader_diverged
        { first =
            Replication.first_diff ~left:"control" ~right:"leader" control_fp
              degraded.d_leader_fp }
    else begin
      let divergence =
        List.find_map
          (fun r ->
            let want = verify_read control r in
            if String.equal want r.rr_fingerprint then None
            else
              Some
                (Read_diverged
                   { ordinal = r.rr_ordinal;
                     node = r.rr_node;
                     first =
                       Printf.sprintf "control %S vs served %S" want
                         r.rr_fingerprint }))
          degraded.d_reads
      in
      match divergence with
      | Some d -> d
      | None ->
        Verified
          { reads = List.length degraded.d_reads;
            replica_reads = degraded.d_replica_reads;
            stale = degraded.d_stale;
            fallbacks = degraded.d_fallbacks;
            crashes = degraded.d_crashes;
            recoveries = degraded.d_recoveries }
    end

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)

let scenarios = [| Ship_faults; Apply_crash; Combined |]

let run ~campaigns ~replicas ~seed () : report =
  if replicas < 1 then invalid_arg "Replicacheck.run: replicas must be >= 1";
  Ldv_obs.with_span
    ~attrs:
      [ ("campaigns", string_of_int campaigns);
        ("replicas", string_of_int replicas); ("seed", string_of_int seed) ]
    "replicacheck"
  @@ fun () ->
  let root = Prng.create ~seed in
  let injected = ref (Campaign.zero_tallies ()) in
  let runs = ref [] in
  for campaign = 0 to campaigns - 1 do
    let cam_seed = Campaign.derive_seed root in
    let cprng = Prng.create ~seed:cam_seed in
    let items = gen_workload (Prng.split cprng) in
    let scenario = scenarios.(campaign mod Array.length scenarios) in
    let p_ship =
      match scenario with
      | Apply_crash -> 0.0
      | Ship_faults | Combined ->
        0.08 +. (0.04 *. float_of_int (Prng.int cprng 4))
    in
    let occurrence =
      match scenario with
      | Ship_faults -> 0
      | Apply_crash | Combined -> 1 + Prng.int cprng 24
    in
    let staleness = 1 + Prng.int cprng 4 in
    let plan =
      if occurrence > 0 then
        Ldv_faults.make ~p_ship ~crash:("repl.apply", occurrence)
          ~seed:cam_seed ()
      else Ldv_faults.make ~p_ship ~seed:cam_seed ()
    in
    let outcome =
      Ldv_obs.with_span
        ~attrs:
          [ ("campaign", string_of_int campaign);
            ("scenario", scenario_label scenario);
            ("occurrence", string_of_int occurrence) ]
        "replicacheck.run"
      @@ fun () ->
      Ldv_faults.with_plan plan @@ fun () ->
      match
        Campaign.guard (run_campaign ~items ~replicas ~staleness ~cprng)
      with
      | Ok outcome -> outcome
      | Error (Campaign.Typed e) -> Failed e
      | Error (Campaign.Db msg) -> Db_failed msg
      | Error (Campaign.Replay_diverged msg) ->
        Read_diverged { ordinal = 0; node = -1; first = msg }
      | Error (Campaign.Other msg) -> Uncaught msg
    in
    Ldv_obs.counter ("replicacheck.outcome." ^ outcome_label outcome);
    injected := Campaign.add_tallies !injected (Ldv_faults.injected plan);
    runs :=
      { campaign; scenario; p_ship; occurrence; staleness; outcome } :: !runs
  done;
  let runs = List.rev !runs in
  let count p = List.length (List.filter p runs) in
  { r_seed = seed;
    r_campaigns = campaigns;
    r_replicas = replicas;
    r_runs = runs;
    r_injected = !injected;
    r_uncaught =
      count (fun r -> match r.outcome with Uncaught _ -> true | _ -> false);
    r_divergent =
      count (fun r ->
          match r.outcome with
          | Read_diverged _ | Not_converged _ | Leader_diverged _ -> true
          | _ -> false) }

(* ------------------------------------------------------------------ *)
(* Deterministic report rendering.                                     *)

let outcome_order =
  [ "verified"; "read-diverged"; "not-converged"; "leader-diverged";
    "typed-failure"; "db-error"; "uncaught" ]

let pp ppf (r : report) =
  Format.fprintf ppf "replicacheck: %d campaigns, %d replicas, seed %d@,"
    r.r_campaigns r.r_replicas r.r_seed;
  List.iter
    (fun run ->
      Format.fprintf ppf
        "  c%03d %-11s p_ship %.2f occ %-2d stale<=%d  %-15s %s@,"
        run.campaign
        (scenario_label run.scenario)
        run.p_ship run.occurrence run.staleness
        (outcome_label run.outcome)
        (outcome_detail run.outcome))
    r.r_runs;
  Campaign.pp_outcome_counts ppf ~order:outcome_order
    ~label:(fun run -> outcome_label run.outcome)
    r.r_runs;
  Campaign.pp_tallies ppf r.r_injected;
  Format.fprintf ppf "divergent runs: %d@," r.r_divergent;
  Campaign.pp_uncaught ppf r.r_uncaught

let to_string (r : report) : string =
  Format.asprintf "@[<v>%a@]" pp r
