(** Computing the relevant DB subset (§VII-D).

    A tuple version is relevant to the application iff (a) it was *not*
    created by the application itself (re-execution will recreate those —
    including them would duplicate rows and break key constraints / bag
    semantics), and (b) the state of some activity in the execution trace
    depends on it, which for the compact traces we build is equivalent to
    the version appearing in the lineage of some executed statement.

    Two implementations are provided: the production one over the
    interceptor's dedup table (what the paper's prototype does with its
    in-memory hash table), and a trace-walking one used to cross-check the
    first in tests. *)

open Minidb
module I = Dbclient.Interceptor

(** Tuple versions created by the audited application: everything a DML
    statement in the log wrote. *)
let created_by_app (stmts : I.stmt_event list) : Tid.Set.t =
  List.fold_left
    (fun acc (s : I.stmt_event) ->
      List.fold_left
        (fun acc (tid, _) ->
          if I.is_result_tid tid then acc else Tid.Set.add tid acc)
        acc s.I.results)
    Tid.Set.empty stmts

(** The relevant tuple versions of an audited run: the interceptor's
    deduplicated lineage table minus application-created versions and
    transient query-result tuples. *)
let relevant (audit : Audit.t) : Tid.Set.t =
  Ldv_obs.with_span "slice.relevant" @@ fun () ->
  (* all sessions' logs: a tuple created by *any* session of the audited
     run will be recreated on replay, whichever session reads it *)
  let created = created_by_app (Audit.stmts audit) in
  let tids =
    List.fold_left
      (fun acc tid ->
        if I.is_result_tid tid || Tid.Set.mem tid created then acc
        else Tid.Set.add tid acc)
      Tid.Set.empty
      (I.slice_tids audit.Audit.session)
  in
  if Ldv_obs.enabled () then begin
    Ldv_obs.counter ~by:(Tid.Set.cardinal tids) "slice.relevant_tuples";
    Ldv_obs.counter ~by:(Tid.Set.cardinal created) "slice.app_created_tuples"
  end;
  tids

(** Trace-based computation of the same set: stored tuple entities that
    some statement read ([hasRead] out-edge) but that no statement in the
    trace produced ([hasReturned] in-edge). *)
let relevant_via_trace (trace : Prov.Trace.t) : Tid.Set.t =
  Ldv_obs.with_span "slice.relevant_via_trace" @@ fun () ->
  List.fold_left
    (fun acc (n : Prov.Trace.node) ->
      match Prov.Lineage_model.tid_of_node_id n.Prov.Trace.id with
      | None -> acc
      | Some tid ->
        if I.is_result_tid tid then acc
        else
          let produced =
            List.exists
              (fun (e : Prov.Trace.edge) ->
                String.equal e.Prov.Trace.elabel "hasReturned")
              (Prov.Trace.in_edges trace n.Prov.Trace.id)
          in
          let read =
            List.exists
              (fun (e : Prov.Trace.edge) ->
                String.equal e.Prov.Trace.elabel "hasRead")
              (Prov.Trace.out_edges trace n.Prov.Trace.id)
          in
          if read && not produced then Tid.Set.add tid acc else acc)
    Tid.Set.empty (Prov.Trace.entities trace)

(** Materialize a tuple-version set as per-table CSV blobs, looking the
    values up in the database's version history. *)
let to_csvs (db : Database.t) (tids : Tid.Set.t) : (string * string) list =
  Ldv_obs.with_span "slice.to_csvs" @@ fun () ->
  let by_table : (string, (int * int * Value.t array) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Tid.Set.iter
    (fun (tid : Tid.t) ->
      match Catalog.find_opt (Database.catalog db) tid.Tid.table with
      | None -> ()
      | Some table -> (
        match Table.find_version table tid with
        | None -> ()
        | Some tv ->
          let entry = (tid.Tid.rid, tid.Tid.version, tv.Table.values) in
          (match Hashtbl.find_opt by_table tid.Tid.table with
          | Some r -> r := entry :: !r
          | None -> Hashtbl.replace by_table tid.Tid.table (ref [ entry ]))))
    tids;
  Hashtbl.fold
    (fun table entries acc ->
      let schema = Table.schema (Catalog.find (Database.catalog db) table) in
      let sorted =
        List.sort (fun (r1, v1, _) (r2, v2, _) -> compare (r1, v1) (r2, v2)) !entries
      in
      (table, Csv.encode_versions schema sorted) :: acc)
    by_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** The tables contributing tuples to a version set — the one derivation
    both [accessed_tables] and [schema_ddl] build on, so the DDL set can
    never drift from the accessed-table set. *)
let tables_of_tids (tids : Tid.Set.t) : string list =
  Tid.Set.fold (fun tid acc -> tid.Tid.table :: acc) tids []
  |> List.sort_uniq String.compare

(** Every table the audited application touched: the query-read and
    DML-target tables of the interceptor's versioning registry plus any
    table contributing tuples to [tids]. All of them need DDL in the
    package even when none of their tuples survives slicing (a table the
    app populates itself must still exist on replay). The versioning
    registry is shared across a concurrent run's sibling sessions, so the
    primary session covers every session's accesses. *)
let accessed_tables (audit : Audit.t) (tids : Tid.Set.t) : string list =
  Perm.Versioning.enabled_tables (I.versioning audit.Audit.session)
  @ tables_of_tids tids
  |> List.sort_uniq String.compare

(** DDL for recreating the given tables at replay time. *)
let schema_ddl_for (db : Database.t) (tables : string list) :
    (string * string) list =
  List.filter_map
    (fun table ->
      match Catalog.find_opt (Database.catalog db) table with
      | None -> None
      | Some tbl ->
        let cols =
          Array.to_list (Table.schema tbl)
          |> List.map (fun (c : Schema.column) ->
                 Printf.sprintf "%s %s" c.Schema.name
                   (Value.type_name c.Schema.ty))
          |> String.concat ", "
        in
        Some (table, Printf.sprintf "CREATE TABLE %s (%s)" table cols))
    tables

(** DDL for the tables contributing tuples to [tids]. *)
let schema_ddl (db : Database.t) (tids : Tid.Set.t) : (string * string) list =
  schema_ddl_for db (tables_of_tids tids)

(** Total bytes of an already-materialized subset. Callers that also ship
    the blobs (package creation, the bench's ablations) should call
    [to_csvs] once and size the result here instead of paying a second
    materialization through [subset_bytes]. *)
let subset_bytes_of_csvs (csvs : (string * string) list) : int =
  List.fold_left (fun acc (_, csv) -> acc + String.length csv) 0 csvs

(** Total bytes of the relevant subset — the provenance size axis of the
    paper's trade-off discussion. Materializes the CSVs just to size
    them; prefer [subset_bytes_of_csvs] when the blobs are needed
    anyway. *)
let subset_bytes (db : Database.t) (tids : Tid.Set.t) : int =
  subset_bytes_of_csvs (to_csvs db tids)
