(** Seeded fault-injection campaigns over the whole
    audit -> package -> replay loop (the [ldv faultcheck] engine).

    Contract checked: under any injected fault mix, every run either
    completes (possibly degraded) or fails with a typed
    [Ldv_errors.Error] — never an uncaught exception. Reports are fully
    deterministic for a given seed. *)

type outcome =
  | Verified  (** replay completed and verified divergence-free *)
  | Degraded of { skipped : int; divergences : int }
      (** corrupt content sections were dropped; replay still completed *)
  | Diverged of { count : int; first : string }
      (** replay completed but verification found divergences *)
  | Failed of Ldv_errors.t  (** typed failure — the expected way to fail *)
  | Db_failed of string  (** the simulated DB refused a statement *)
  | Uncaught of string  (** contract violation: untyped exception *)

type run = {
  campaign : int;
  kind : Audit.packaging;
  profile : string;  (** fault-profile name (control/syscalls/...) *)
  outcome : outcome;
}

type report = {
  r_seed : int;
  r_campaigns : int;
  r_runs : run list;  (** campaign-major, then kind order *)
  r_injected : (string * int) list;  (** aggregate fault tallies *)
  r_uncaught : int;  (** number of contract violations (want 0) *)
}

val kind_name : Audit.packaging -> string
val outcome_label : outcome -> string

(** Run [campaigns] campaigns; each drives all three package kinds
    through the loop under a fault profile rotated by campaign index,
    with per-(campaign, kind) seeds derived from [seed]. [audit] runs
    the workload under the given packaging mode (a fault plan is
    installed around the whole loop, so injections fire during the audit
    as well as the replay). *)
val run :
  audit:(Audit.packaging -> Audit.t) -> campaigns:int -> seed:int -> report

val pp : Format.formatter -> report -> unit
val to_string : report -> string
