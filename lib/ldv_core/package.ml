(** LDV repeatability packages (§VII-D) and the PTU baseline package.

    A package holds: the files the traced execution touched (copied
    CDE-style into a chroot-like root), the serialized execution trace,
    and the DB content appropriate to its kind —

    - [Server_included]: server binaries, table DDL, and the relevant
      tuple subset as CSVs (an otherwise *empty* data directory);
    - [Server_excluded]: no server artifacts at all, plus the recorded
      query responses for replay;
    - [Ptu_full]: the application-virtualization baseline — everything the
      traced processes touched, including the DB server and its complete
      data files, with OS provenance but no DB provenance. *)


type kind = Server_included | Server_excluded | Ptu_full

let kind_name = function
  | Server_included -> "server-included"
  | Server_excluded -> "server-excluded"
  | Ptu_full -> "ptu"

type entry = {
  e_path : string;
  e_size : int;
  e_content : Minios.Vfs.content option;
      (** [None] for files recorded as written outputs: the path is
          recreated but no contents are shipped *)
}

type t = {
  kind : kind;
  app_name : string;
  app_binary : string;
  entries : entry list;
  db_subset : (string * string) list;  (** table -> CSV (server-included) *)
  db_schemas : (string * string) list;  (** table -> DDL (server-included) *)
  recording : Dbclient.Recorder.recorded list;  (** server-excluded *)
  trace_data : string;  (** serialized combined execution trace *)
  metadata : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Size accounting.                                                    *)

let entries_bytes (t : t) =
  List.fold_left (fun acc e -> acc + e.e_size) 0 t.entries

let db_subset_bytes (t : t) =
  List.fold_left (fun acc (_, csv) -> acc + String.length csv) 0 t.db_subset

let recording_bytes (t : t) = Dbclient.Recorder.byte_size t.recording

let trace_bytes (t : t) = String.length t.trace_data

let total_bytes (t : t) =
  entries_bytes t + db_subset_bytes t + recording_bytes t + trace_bytes t
  + List.fold_left
      (fun acc (_, ddl) -> acc + String.length ddl)
      0 t.db_schemas

(** Path -> size manifest, for inspection. *)
let manifest (t : t) : (string * int) list =
  List.map (fun e -> (e.e_path, e.e_size)) t.entries
  @ List.map
      (fun (table, csv) -> ("db/" ^ table ^ ".csv", String.length csv))
      t.db_subset
  @ (if t.recording = [] then []
     else [ ("db/recording.log", recording_bytes t) ])
  @ [ ("trace.ldv", trace_bytes t) ]

(** Table III's content matrix for this package. *)
type contents_summary = {
  has_software_binaries : bool;
  has_db_server : bool;
  data_files : [ `Full | `Empty | `None ];
  has_db_provenance : bool;
}

let summarize (t : t) : contents_summary =
  match t.kind with
  | Ptu_full ->
    { has_software_binaries = true;
      has_db_server = true;
      data_files = `Full;
      has_db_provenance = false }
  | Server_included ->
    { has_software_binaries = true;
      has_db_server = true;
      data_files = `Empty;
      has_db_provenance = true }
  | Server_excluded ->
    { has_software_binaries = true;
      has_db_server = false;
      data_files = `None;
      has_db_provenance = true }

(* ------------------------------------------------------------------ *)
(* Package construction.                                               *)

let under prefix path =
  let n = String.length prefix in
  String.length path > n
  && String.sub path 0 n = prefix
  && (n = 0 || path.[n] = '/')

(* Collect file entries from the trace: every path opened for reading gets
   its first-read snapshot copied in; write-only paths are recreated
   empty. *)
let collect_entries (audit : Audit.t) ~(exclude : string -> bool) :
    entry list =
  let vfs = Minios.Kernel.vfs audit.Audit.kernel in
  Minios.Tracer.touched_paths audit.Audit.tracer
  |> List.filter_map (fun (path, modes) ->
         if exclude path then None
         else if List.mem Minios.Syscall.Read modes then
           match
             Minios.Tracer.snapshot_content audit.Audit.tracer vfs path
           with
           | Some content ->
             Some
               { e_path = path;
                 e_size = Minios.Vfs.content_size content;
                 e_content = Some content }
           | None -> None
         else Some { e_path = path; e_size = 0; e_content = None })

let base_metadata (audit : Audit.t) =
  [ ("app", audit.Audit.app_name);
    ("binary", audit.Audit.app_binary);
    ("root_pid", string_of_int audit.Audit.root_pid) ]

(** Build a server-included package: server binaries and libraries come
    along (they were read by the traced server process), raw DB data files
    are dropped in favour of the relevant tuple subset. *)
let build_included (audit : Audit.t) : t =
  Ldv_obs.with_span ~attrs:[ ("kind", "server-included") ] "package.build"
  @@ fun () ->
  let data_dir = Dbclient.Server.data_dir audit.Audit.server in
  let entries = collect_entries audit ~exclude:(under data_dir) in
  let db = Dbclient.Server.db audit.Audit.server in
  let tids = Slice.relevant audit in
  { kind = Server_included;
    app_name = audit.Audit.app_name;
    app_binary = audit.Audit.app_binary;
    entries;
    db_subset = Slice.to_csvs db tids;
    db_schemas = Slice.schema_ddl_for db (Slice.accessed_tables audit tids);
    recording = [];
    trace_data = Prov.Trace.serialize (Audit.compact_trace audit);
    metadata = base_metadata audit @ [ ("packaging", "included") ] }

(** Build a server-excluded package: no server artifacts, recorded
    responses instead. *)
let build_excluded (audit : Audit.t) : t =
  Ldv_obs.with_span ~attrs:[ ("kind", "server-excluded") ] "package.build"
  @@ fun () ->
  let server = audit.Audit.server in
  let data_dir = Dbclient.Server.data_dir server in
  let server_files =
    Dbclient.Server.binary_path server :: Dbclient.Server.lib_paths server
  in
  let exclude path = under data_dir path || List.mem path server_files in
  let entries = collect_entries audit ~exclude in
  { kind = Server_excluded;
    app_name = audit.Audit.app_name;
    app_binary = audit.Audit.app_binary;
    entries;
    db_subset = [];
    db_schemas = [];
    recording = Dbclient.Interceptor.recorded audit.Audit.session;
    trace_data = Prov.Trace.serialize (Audit.compact_trace audit);
    metadata = base_metadata audit @ [ ("packaging", "excluded") ] }

(** Build the package appropriate for how the audit was run. PTU baselines
    are packaged by {!Ptu.build}. *)
let build (audit : Audit.t) : t =
  match audit.Audit.packaging with
  | Audit.Included -> build_included audit
  | Audit.Excluded -> build_excluded audit
  | Audit.Ptu_baseline ->
    invalid_arg "Package.build: use Ptu.build for PTU baseline audits"

(* ------------------------------------------------------------------ *)
(* Whole-package serialization (for writing packages to a real file and
   round-tripping them through the CLI).                                *)

let b64 = Fun.id (* entries may contain arbitrary bytes; keep raw with length prefixes *)

let to_bytes (t : t) : string =
  Ldv_obs.with_span ~attrs:[ ("kind", kind_name t.kind) ] "package.serialize"
  @@ fun () ->
  if Ldv_obs.enabled () then begin
    Ldv_obs.gauge "package.bytes" (float_of_int (total_bytes t));
    Ldv_obs.counter ~by:(List.length t.entries) "package.entries"
  end;
  let buf = Buffer.create 65536 in
  let section name payload =
    Buffer.add_string buf
      (Printf.sprintf "@%s %d\n" name (String.length payload));
    Buffer.add_string buf payload;
    Buffer.add_char buf '\n'
  in
  section "kind" (kind_name t.kind);
  section "app" t.app_name;
  section "binary" t.app_binary;
  List.iter (fun (k, v) -> section ("meta:" ^ k) v) t.metadata;
  List.iter
    (fun e ->
      match e.e_content with
      | Some (Minios.Vfs.Data s) -> section ("file:" ^ e.e_path) (b64 s)
      | Some (Minios.Vfs.Opaque n) ->
        section ("opaque:" ^ e.e_path) (string_of_int n)
      | None -> section ("output:" ^ e.e_path) "")
    t.entries;
  List.iter (fun (tbl, ddl) -> section ("schema:" ^ tbl) ddl) t.db_schemas;
  List.iter (fun (tbl, csv) -> section ("csv:" ^ tbl) csv) t.db_subset;
  if t.recording <> [] then
    section "recording" (Dbclient.Recorder.encode t.recording);
  section "trace" t.trace_data;
  Buffer.contents buf

let of_bytes (data : string) : t =
  Ldv_obs.with_span "package.parse" @@ fun () ->
  let pos = ref 0 in
  let n = String.length data in
  let sections = ref [] in
  while !pos < n do
    if data.[!pos] <> '@' then
      invalid_arg "Package.of_bytes: expected section header";
    let nl = String.index_from data !pos '\n' in
    let header = String.sub data (!pos + 1) (nl - !pos - 1) in
    let name, len =
      match String.rindex_opt header ' ' with
      | None -> invalid_arg "Package.of_bytes: malformed header"
      | Some i ->
        ( String.sub header 0 i,
          int_of_string (String.sub header (i + 1) (String.length header - i - 1))
        )
    in
    let payload = String.sub data (nl + 1) len in
    sections := (name, payload) :: !sections;
    pos := nl + 1 + len + 1
  done;
  let sections = List.rev !sections in
  let get name =
    match List.assoc_opt name sections with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Package.of_bytes: missing %s" name)
  in
  let with_prefix prefix =
    List.filter_map
      (fun (name, payload) ->
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then
          Some (String.sub name pl (String.length name - pl), payload)
        else None)
      sections
  in
  let kind =
    match get "kind" with
    | "server-included" -> Server_included
    | "server-excluded" -> Server_excluded
    | "ptu" -> Ptu_full
    | k -> invalid_arg (Printf.sprintf "Package.of_bytes: bad kind %S" k)
  in
  let entries =
    List.map
      (fun (path, payload) ->
        { e_path = path;
          e_size = String.length payload;
          e_content = Some (Minios.Vfs.Data payload) })
      (with_prefix "file:")
    @ List.map
        (fun (path, payload) ->
          let size = int_of_string payload in
          { e_path = path; e_size = size; e_content = Some (Minios.Vfs.Opaque size) })
        (with_prefix "opaque:")
    @ List.map
        (fun (path, _) -> { e_path = path; e_size = 0; e_content = None })
        (with_prefix "output:")
  in
  { kind;
    app_name = get "app";
    app_binary = get "binary";
    entries;
    db_subset = with_prefix "csv:";
    db_schemas = with_prefix "schema:";
    recording =
      (match List.assoc_opt "recording" sections with
      | Some r -> Dbclient.Recorder.decode r
      | None -> []);
    trace_data = get "trace";
    metadata = with_prefix "meta:" }

(** The execution trace embedded in the package. *)
let trace (t : t) : Prov.Trace.t =
  Prov.Trace.deserialize Prov.Combined.model t.trace_data
