(** LDV repeatability packages (§VII-D) and the PTU baseline package.

    A package holds: the files the traced execution touched (copied
    CDE-style into a chroot-like root), the serialized execution trace,
    and the DB content appropriate to its kind —

    - [Server_included]: server binaries, table DDL, and the relevant
      tuple subset as CSVs (an otherwise *empty* data directory);
    - [Server_excluded]: no server artifacts at all, plus the recorded
      query responses for replay;
    - [Ptu_full]: the application-virtualization baseline — everything the
      traced processes touched, including the DB server and its complete
      data files, with OS provenance but no DB provenance. *)


type kind = Server_included | Server_excluded | Ptu_full

let kind_name = function
  | Server_included -> "server-included"
  | Server_excluded -> "server-excluded"
  | Ptu_full -> "ptu"

type entry = {
  e_path : string;
  e_size : int;
  e_content : Minios.Vfs.content option;
      (** [None] for files recorded as written outputs: the path is
          recreated but no contents are shipped *)
}

type t = {
  kind : kind;
  app_name : string;
  app_binary : string;
  entries : entry list;
  db_subset : (string * string) list;  (** table -> CSV (server-included) *)
  db_schemas : (string * string) list;  (** table -> DDL (server-included) *)
  recording : Dbclient.Recorder.recorded list;  (** server-excluded *)
  trace_data : string;  (** serialized combined execution trace *)
  metadata : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Size accounting.                                                    *)

let entries_bytes (t : t) =
  List.fold_left (fun acc e -> acc + e.e_size) 0 t.entries

let db_subset_bytes (t : t) = Slice.subset_bytes_of_csvs t.db_subset

let recording_bytes (t : t) = Dbclient.Recorder.byte_size t.recording

let trace_bytes (t : t) = String.length t.trace_data

let total_bytes (t : t) =
  entries_bytes t + db_subset_bytes t + recording_bytes t + trace_bytes t
  + List.fold_left
      (fun acc (_, ddl) -> acc + String.length ddl)
      0 t.db_schemas

(** Path -> size manifest, for inspection. *)
let manifest (t : t) : (string * int) list =
  List.map (fun e -> (e.e_path, e.e_size)) t.entries
  @ List.map
      (fun (table, csv) -> ("db/" ^ table ^ ".csv", String.length csv))
      t.db_subset
  @ (if t.recording = [] then []
     else [ ("db/recording.log", recording_bytes t) ])
  @ [ ("trace.ldv", trace_bytes t) ]

(** Table III's content matrix for this package. *)
type contents_summary = {
  has_software_binaries : bool;
  has_db_server : bool;
  data_files : [ `Full | `Empty | `None ];
  has_db_provenance : bool;
}

let summarize (t : t) : contents_summary =
  match t.kind with
  | Ptu_full ->
    { has_software_binaries = true;
      has_db_server = true;
      data_files = `Full;
      has_db_provenance = false }
  | Server_included ->
    { has_software_binaries = true;
      has_db_server = true;
      data_files = `Empty;
      has_db_provenance = true }
  | Server_excluded ->
    { has_software_binaries = true;
      has_db_server = false;
      data_files = `None;
      has_db_provenance = true }

(* ------------------------------------------------------------------ *)
(* Package construction.                                               *)

let under prefix path =
  let n = String.length prefix in
  String.length path > n
  && String.sub path 0 n = prefix
  && (n = 0 || path.[n] = '/')

(* Collect file entries from the trace: every path opened for reading gets
   its first-read snapshot copied in; write-only paths are recreated
   empty. *)
let collect_entries (audit : Audit.t) ~(exclude : string -> bool) :
    entry list =
  let vfs = Minios.Kernel.vfs audit.Audit.kernel in
  Minios.Tracer.touched_paths audit.Audit.tracer
  |> List.filter_map (fun (path, modes) ->
         if exclude path then None
         else if List.mem Minios.Syscall.Read modes then
           match
             Minios.Tracer.snapshot_content audit.Audit.tracer vfs path
           with
           | Some content ->
             Some
               { e_path = path;
                 e_size = Minios.Vfs.content_size content;
                 e_content = Some content }
           | None -> None
         else Some { e_path = path; e_size = 0; e_content = None })

let base_metadata (audit : Audit.t) =
  [ ("app", audit.Audit.app_name);
    ("binary", audit.Audit.app_binary);
    ("root_pid", string_of_int audit.Audit.root_pid) ]
  @ (* concurrent runs record their schedule so replay can re-create the
       identical interleaving: session count, scheduler seed, and each
       client's registry name + binary *)
  (match audit.Audit.sched with
  | None -> []
  | Some s ->
    ("sessions", string_of_int (List.length s.Audit.sched_clients))
    :: ("sched_seed", string_of_int s.Audit.sched_seed)
    :: List.mapi
         (fun i (name, binary) ->
           (Printf.sprintf "client:%d" i, name ^ "\t" ^ binary))
         s.Audit.sched_clients)
  @ (* runs served by a replication cluster record its shape and, per
       replica-served read, the node that answered — replay re-runs the
       whole cluster and must route every read to the same node *)
  (match audit.Audit.repl with
  | None -> []
  | Some (replicas, staleness) ->
    ("replicas", string_of_int replicas)
    :: ("repl_staleness", string_of_int staleness)
    :: List.filter_map
         (fun (s : Dbclient.Interceptor.stmt_event) ->
           if s.Dbclient.Interceptor.replica >= 0 then
             Some
               ( Printf.sprintf "route:%d" s.Dbclient.Interceptor.qid,
                 string_of_int s.Dbclient.Interceptor.replica )
           else None)
         (Audit.stmts audit))
  @ (* audit-time per-table row counts: replay restores only the sliced
       tuple subset, so the cost model's replay-stable decisions (join
       order, build side) pin to these instead of the restored counts *)
  List.map
    (fun (table, rows) -> (Printf.sprintf "rows:%s" table, string_of_int rows))
    audit.Audit.start_rows
  @
  (* interactive transactions record their boundaries and outcomes so
     replay can verify it reproduced every commit/abort decision *)
  List.map
    (fun (sid, n, o) ->
      (Printf.sprintf "tx:%d:%d" sid n, Audit.tx_outcome_name o))
    (Audit.tx_outcomes (Audit.stmts audit))

(** The recorded multi-session schedule, when the package came from a
    concurrent audit: scheduler seed plus per-session (registry name,
    binary) in session order. [None] for single-session packages. *)
let schedule_of_metadata (metadata : (string * string) list) :
    (int * (string * string) list) option =
  match
    ( Option.bind (List.assoc_opt "sessions" metadata) int_of_string_opt,
      Option.bind (List.assoc_opt "sched_seed" metadata) int_of_string_opt )
  with
  | Some n, Some seed when n > 0 ->
    let client i =
      match List.assoc_opt (Printf.sprintf "client:%d" i) metadata with
      | None -> None
      | Some v -> (
        match String.index_opt v '\t' with
        | Some j ->
          Some
            ( String.sub v 0 j,
              String.sub v (j + 1) (String.length v - j - 1) )
        | None -> Some (v, v))
    in
    let clients = List.init n client in
    if List.for_all Option.is_some clients then
      Some (seed, List.filter_map Fun.id clients)
    else None
  | _ -> None

(** Build a server-included package: server binaries and libraries come
    along (they were read by the traced server process), raw DB data files
    are dropped in favour of the relevant tuple subset. *)
let build_included (audit : Audit.t) : t =
  Ldv_obs.with_span ~attrs:[ ("kind", "server-included") ] "package.build"
  @@ fun () ->
  let data_dir = Dbclient.Server.data_dir audit.Audit.server in
  let entries = collect_entries audit ~exclude:(under data_dir) in
  let db = Dbclient.Server.db audit.Audit.server in
  let tids = Slice.relevant audit in
  { kind = Server_included;
    app_name = audit.Audit.app_name;
    app_binary = audit.Audit.app_binary;
    entries;
    db_subset = Slice.to_csvs db tids;
    db_schemas = Slice.schema_ddl_for db (Slice.accessed_tables audit tids);
    recording = [];
    trace_data = Prov.Trace.serialize (Audit.compact_trace audit);
    metadata = base_metadata audit @ [ ("packaging", "included") ] }

(** Build a server-excluded package: no server artifacts, recorded
    responses instead. *)
let build_excluded (audit : Audit.t) : t =
  Ldv_obs.with_span ~attrs:[ ("kind", "server-excluded") ] "package.build"
  @@ fun () ->
  let server = audit.Audit.server in
  let data_dir = Dbclient.Server.data_dir server in
  let server_files =
    Dbclient.Server.binary_path server :: Dbclient.Server.lib_paths server
  in
  let exclude path = under data_dir path || List.mem path server_files in
  let entries = collect_entries audit ~exclude in
  { kind = Server_excluded;
    app_name = audit.Audit.app_name;
    app_binary = audit.Audit.app_binary;
    entries;
    db_subset = [];
    db_schemas = [];
    recording = Dbclient.Interceptor.recorded audit.Audit.session;
    trace_data = Prov.Trace.serialize (Audit.compact_trace audit);
    metadata = base_metadata audit @ [ ("packaging", "excluded") ] }

(** The recorded replication-cluster shape — (replica count, staleness
    bound) — when the audited run served reads from a cluster. *)
let replication_of_metadata (metadata : (string * string) list) :
    (int * int) option =
  match
    ( Option.bind (List.assoc_opt "replicas" metadata) int_of_string_opt,
      Option.bind (List.assoc_opt "repl_staleness" metadata) int_of_string_opt
    )
  with
  | Some n, Some staleness when n > 0 -> Some (n, staleness)
  | _ -> None

(** The recorded transaction outcomes: (sid, per-session ordinal,
    outcome), sorted. Empty when the audited run opened no interactive
    transactions. *)
let tx_outcomes_of_metadata (metadata : (string * string) list) :
    (int * int * Audit.tx_outcome) list =
  List.filter_map
    (fun (k, v) ->
      match Scanf.sscanf_opt k "tx:%d:%d%!" (fun sid n -> (sid, n)) with
      | Some (sid, n) ->
        Option.map (fun o -> (sid, n, o)) (Audit.tx_outcome_of_name v)
      | None -> None)
    metadata
  |> List.sort compare

(** The recorded read routes: (qid, replica that answered), sorted by
    qid. Reads the leader answered are not recorded. *)
let routes_of_metadata (metadata : (string * string) list) :
    (int * int) list =
  List.filter_map
    (fun (k, v) ->
      match Scanf.sscanf_opt k "route:%d%!" Fun.id with
      | Some qid -> Option.map (fun r -> (qid, r)) (int_of_string_opt v)
      | None -> None)
    metadata
  |> List.sort compare

(** The audit-time per-table row counts, for pinning the cost model's
    statistics at replay (the restored database holds only the sliced
    tuple subset). Empty for packages recorded before row counts were
    captured. *)
let table_rows_of_metadata (metadata : (string * string) list) :
    (string * int) list =
  List.filter_map
    (fun (k, v) ->
      if String.length k > 5 && String.sub k 0 5 = "rows:" then
        Option.map
          (fun rows -> (String.sub k 5 (String.length k - 5), rows))
          (int_of_string_opt v)
      else None)
    metadata
  |> List.sort compare

(** The package's recorded multi-session schedule, if any. *)
let schedule (t : t) : (int * (string * string) list) option =
  schedule_of_metadata t.metadata

(** The package's recorded replication-cluster shape, if any. *)
let replication (t : t) : (int * int) option =
  replication_of_metadata t.metadata

(** The package's recorded read routes (qid -> answering replica). *)
let routes (t : t) : (int * int) list = routes_of_metadata t.metadata

(** [table_rows_of_metadata] applied to the package's own metadata. *)
let table_rows (t : t) : (string * int) list =
  table_rows_of_metadata t.metadata

let tx_outcomes (t : t) : (int * int * Audit.tx_outcome) list =
  tx_outcomes_of_metadata t.metadata

(** Build the package appropriate for how the audit was run. PTU baselines
    are packaged by {!Ptu.build}. *)
let build (audit : Audit.t) : t =
  match audit.Audit.packaging with
  | Audit.Included -> build_included audit
  | Audit.Excluded -> build_excluded audit
  | Audit.Ptu_baseline ->
    invalid_arg "Package.build: use Ptu.build for PTU baseline audits"

(* ------------------------------------------------------------------ *)
(* Whole-package serialization (for writing packages to a real file and
   round-tripping them through the CLI).

   Wire format, one section per package component:

     @<name> <payload-length> <crc32-hex>\n<payload>\n

   The CRC32 covers the payload only; headers without a checksum (the
   pre-checksum format) still parse but their sections go unverified. On
   restore, a checksum mismatch in a *content* section (file:, opaque:,
   output:, schema:, csv:) skips just that section and reports it; a
   mismatch in a structural section (kind, app, binary, meta:, recording,
   trace) makes the whole package unreadable.                           *)

let b64 = Fun.id (* entries may contain arbitrary bytes; keep raw with length prefixes *)

let to_bytes (t : t) : string =
  Ldv_obs.with_span ~attrs:[ ("kind", kind_name t.kind) ] "package.serialize"
  @@ fun () ->
  if Ldv_obs.enabled () then begin
    Ldv_obs.gauge "package.bytes" (float_of_int (total_bytes t));
    Ldv_obs.counter ~by:(List.length t.entries) "package.entries"
  end;
  let buf = Buffer.create 65536 in
  let section name payload =
    Buffer.add_string buf
      (Printf.sprintf "@%s %d %08lx\n" name (String.length payload)
         (Ldv_faults.Crc32.digest payload));
    Buffer.add_string buf payload;
    Buffer.add_char buf '\n'
  in
  section "kind" (kind_name t.kind);
  section "app" t.app_name;
  section "binary" t.app_binary;
  List.iter (fun (k, v) -> section ("meta:" ^ k) v) t.metadata;
  List.iter
    (fun e ->
      match e.e_content with
      | Some (Minios.Vfs.Data s) -> section ("file:" ^ e.e_path) (b64 s)
      | Some (Minios.Vfs.Opaque n) ->
        section ("opaque:" ^ e.e_path) (string_of_int n)
      | None -> section ("output:" ^ e.e_path) "")
    t.entries;
  List.iter (fun (tbl, ddl) -> section ("schema:" ^ tbl) ddl) t.db_schemas;
  List.iter (fun (tbl, csv) -> section ("csv:" ^ tbl) csv) t.db_subset;
  if t.recording <> [] then
    section "recording" (Dbclient.Recorder.encode t.recording);
  section "trace" t.trace_data;
  Buffer.contents buf

type corruption = { c_section : string; c_error : Ldv_errors.t }

type restored = {
  r_pkg : t;
  r_skipped : corruption list;
      (** content sections dropped because their checksum did not match;
          in section order *)
}

let has_prefix prefix name =
  let pl = String.length prefix in
  String.length name > pl && String.sub name 0 pl = prefix

(* Content sections describe individual shippable artifacts; losing one
   degrades the package (skip + report). Everything else is structural:
   without it the package cannot be interpreted at all. *)
let content_prefixes = [ "file:"; "opaque:"; "output:"; "schema:"; "csv:" ]

let skippable name = List.exists (fun p -> has_prefix p name) content_prefixes

let known_section name =
  skippable name || has_prefix "meta:" name
  || List.mem name [ "kind"; "app"; "binary"; "recording"; "trace" ]

let is_hex8 s =
  String.length s = 8
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

(* "name len crc" (current format) or "name len" (pre-checksum format,
   accepted unverified). *)
let parse_header header ~offset :
    (string * int * int32 option, Ldv_errors.t) result =
  let malformed what = Error (Ldv_errors.Package_malformed { what; offset }) in
  match String.rindex_opt header ' ' with
  | None -> malformed "section header has no length field"
  | Some i ->
    let last = String.sub header (i + 1) (String.length header - i - 1) in
    let legacy () =
      match int_of_string_opt last with
      | Some len when len >= 0 -> Ok (String.sub header 0 i, len, None)
      | Some _ | None ->
        malformed (Printf.sprintf "bad section length %S" last)
    in
    if is_hex8 last then
      (* the last token reads as a checksum; the one before it must then
         be the length, otherwise fall back to the pre-checksum format *)
      match String.rindex_from_opt header (max 0 (i - 1)) ' ' with
      | Some j ->
        (match int_of_string_opt (String.sub header (j + 1) (i - j - 1)) with
        | Some len when len >= 0 ->
          Ok
            ( String.sub header 0 j,
              len,
              Some (Int32.of_string ("0x" ^ last)) )
        | Some _ | None -> legacy ())
      | None -> legacy ()
    else legacy ()

(* Split package bytes into checksum-verified (name, payload) sections.
   Structural damage (bad framing, truncation, corrupt structural
   sections) aborts with a typed error; corrupt or unknown content
   sections are dropped and reported. *)
let parse_sections (data : string) :
    ((string * string) list * corruption list, Ldv_errors.t) result =
  let n = String.length data in
  let sections = ref [] in
  let skipped = ref [] in
  let err = ref None in
  let pos = ref 0 in
  let abort e = err := Some e in
  while !err = None && !pos < n do
    let offset = !pos in
    if data.[offset] <> '@' then
      abort
        (Ldv_errors.Package_malformed
           { what = "expected a section header"; offset })
    else
      match String.index_from_opt data offset '\n' with
      | None ->
        abort
          (Ldv_errors.Package_malformed
             { what = "truncated section header"; offset })
      | Some nl -> (
        let header = String.sub data (offset + 1) (nl - offset - 1) in
        match parse_header header ~offset with
        | Error e -> abort e
        | Ok (name, len, crc) ->
          if nl + 1 + len >= n then
            abort
              (Ldv_errors.Package_malformed
                 { what =
                     Printf.sprintf "truncated payload for section %s" name;
                   offset })
          else if data.[nl + 1 + len] <> '\n' then
            abort
              (Ldv_errors.Package_malformed
                 { what =
                     Printf.sprintf "bad payload framing for section %s" name;
                   offset })
          else begin
            let payload = String.sub data (nl + 1) len in
            (match crc with
            | Some expected
              when Ldv_faults.Crc32.digest payload <> expected ->
              let error =
                Ldv_errors.Package_corrupt
                  { section = name;
                    expected;
                    actual = Ldv_faults.Crc32.digest payload }
              in
              if skippable name then
                skipped := { c_section = name; c_error = error } :: !skipped
              else abort error
            | Some _ | None ->
              if known_section name then
                sections := (name, payload) :: !sections
              else
                (* a flipped header byte turns a known section into an
                   unknown one; report rather than silently drop *)
                skipped :=
                  { c_section = name;
                    c_error =
                      Ldv_errors.Package_malformed
                        { what = Printf.sprintf "unknown section %s" name;
                          offset } }
                  :: !skipped);
            pos := nl + 1 + len + 1
          end)
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok (List.rev !sections, List.rev !skipped)

(** Parse package bytes, tolerating corrupt *content* sections: each one
    is skipped and reported in [r_skipped] so the caller can degrade
    gracefully (a lost CSV table or file snapshot weakens a replay; it
    should not crash it). Structural damage returns [Error]. *)
let of_bytes_result (data : string) : (restored, Ldv_errors.t) result =
  Ldv_obs.with_span "package.parse" @@ fun () ->
  match parse_sections data with
  | Error e -> Error e
  | exception Ldv_errors.Error e -> Error e
  | Ok (sections, skipped) -> (
    let skipped = ref skipped in
    let missing name =
      Ldv_errors.Package_malformed
        { what = Printf.sprintf "missing section %s" name; offset = -1 }
    in
    let get name =
      match List.assoc_opt name sections with
      | Some v -> Ok v
      | None -> Error (missing name)
    in
    let with_prefix prefix =
      List.filter_map
        (fun (name, payload) ->
          if has_prefix prefix name then
            let pl = String.length prefix in
            Some (String.sub name pl (String.length name - pl), payload)
          else None)
        sections
    in
    let ( let* ) = Result.bind in
    let* kind =
      match get "kind" with
      | Error _ as e -> e
      | Ok "server-included" -> Ok Server_included
      | Ok "server-excluded" -> Ok Server_excluded
      | Ok "ptu" -> Ok Ptu_full
      | Ok k ->
        Error
          (Ldv_errors.Package_malformed
             { what = Printf.sprintf "bad kind %S" k; offset = -1 })
    in
    let* app_name = get "app" in
    let* app_binary = get "binary" in
    let* trace_data = get "trace" in
    let* recording =
      match List.assoc_opt "recording" sections with
      | None -> Ok []
      | Some r -> (
        match Dbclient.Recorder.decode r with
        | records -> Ok records
        | exception Ldv_errors.Error e -> Error e)
    in
    let entries =
      List.map
        (fun (path, payload) ->
          { e_path = path;
            e_size = String.length payload;
            e_content = Some (Minios.Vfs.Data payload) })
        (with_prefix "file:")
      @ List.filter_map
          (fun (path, payload) ->
            match int_of_string_opt payload with
            | Some size ->
              Some
                { e_path = path;
                  e_size = size;
                  e_content = Some (Minios.Vfs.Opaque size) }
            | None ->
              (* verified payload that still fails to parse: report it
                 like any other lost content section *)
              skipped :=
                !skipped
                @ [ { c_section = "opaque:" ^ path;
                      c_error =
                        Ldv_errors.Package_malformed
                          { what =
                              Printf.sprintf "bad opaque size %S for %s"
                                payload path;
                            offset = -1 } } ];
              None)
          (with_prefix "opaque:")
      @ List.map
          (fun (path, _) -> { e_path = path; e_size = 0; e_content = None })
          (with_prefix "output:")
    in
    Ok
      { r_pkg =
          { kind;
            app_name;
            app_binary;
            entries;
            db_subset = with_prefix "csv:";
            db_schemas = with_prefix "schema:";
            recording;
            trace_data;
            metadata = with_prefix "meta:" };
        r_skipped = !skipped })

(** Strict variant: any corruption at all — structural or content — is an
    error. *)
let of_bytes (data : string) : t =
  match of_bytes_result data with
  | Ok { r_pkg; r_skipped = [] } -> r_pkg
  | Ok { r_skipped = c :: _; _ } -> raise (Ldv_errors.Error c.c_error)
  | Error e -> raise (Ldv_errors.Error e)

(* ------------------------------------------------------------------ *)
(* Crash-safe package files: serialize to a temp file, then rename. A
   failure mid-write (injected or real) leaves the destination either
   absent or holding the previous complete package — never a torn one. *)

let tmp_counter = ref 0

let write_file (t : t) ~(path : string) : unit =
  Ldv_obs.with_span ~attrs:[ ("path", path) ] "package.write" @@ fun () ->
  (* pid + per-call counter: concurrent writers (or a retry racing an
     earlier crashed write) never share a temp file *)
  incr tmp_counter;
  let tmp = Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ()) !tmp_counter in
  try
    let data = to_bytes t in
    let attempt () =
      (match Ldv_faults.syscall_fault ~op:"pkg.write" ~path with
      | None -> ()
      | Some fault -> Ldv_errors.fail (Ldv_errors.Io_fault { op = "pkg.write"; path; fault }));
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc data);
      Sys.rename tmp path
    in
    Ldv_faults.with_retries ~op:"package.write" attempt
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(** The execution trace embedded in the package. *)
let trace (t : t) : Prov.Trace.t =
  Prov.Trace.deserialize Prov.Combined.model t.trace_data
