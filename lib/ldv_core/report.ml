(** Formatting helpers shared by the benchmark harness and the CLI. *)

(** Render a byte count the way the paper's figures do (MB axis). *)
let human_bytes n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f KB" (f /. 1e3)
  else Printf.sprintf "%d B" n

let seconds s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

(** Fixed-width table printing. *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < cols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "| %-*s " widths.(i) cell)
      cells;
    print_endline "|"
  in
  let rule () =
    print_char '+';
    Array.iter
      (fun w ->
        print_string (String.make (w + 2) '-');
        print_char '+')
      widths;
    print_newline ()
  in
  rule ();
  print_row header;
  rule ();
  List.iter print_row rows;
  rule ()

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.printf fmt
