(** Seeded fault-injection campaigns over the whole pipeline.

    One campaign = one fault profile driven through the full
    audit -> package -> (corrupt?) -> parse -> replay -> verify loop for
    every package kind. The invariant the harness enforces is the
    robustness contract of the error layer: under any injected fault mix
    a run either completes (possibly degraded) or fails with a *typed*,
    seed-reproducible diagnostic — never an uncaught exception.

    The engine is parameterized over the audit step so the CLI can drive
    the TPC-H workload and the tests can drive fixtures, without this
    library depending on either. Reports are built only from plan
    tallies and outcomes (no wall-clock, no hash order), so the same
    seed always prints the identical report. *)

type outcome =
  | Verified  (** replay completed and verified divergence-free *)
  | Degraded of { skipped : int; divergences : int }
      (** corrupt content sections were dropped; replay still completed *)
  | Diverged of { count : int; first : string }
      (** replay completed but verification found divergences *)
  | Failed of Ldv_errors.t  (** typed failure — the expected way to fail *)
  | Db_failed of string  (** the simulated DB refused a statement *)
  | Uncaught of string  (** contract violation: untyped exception *)

type run = {
  campaign : int;
  kind : Audit.packaging;
  profile : string;
  outcome : outcome;
}

type report = {
  r_seed : int;
  r_campaigns : int;
  r_runs : run list;  (** campaign-major, then kind order *)
  r_injected : (string * int) list;  (** aggregate fault tallies *)
  r_uncaught : int;
}

(* ------------------------------------------------------------------ *)
(* Fault profiles, rotated across campaigns.                           *)

type profile = {
  pr_name : string;
  pr_syscall : float;
  pr_conn : float;
  pr_corrupt : float;
}

let profiles =
  [| { pr_name = "control"; pr_syscall = 0.0; pr_conn = 0.0; pr_corrupt = 0.0 };
     { pr_name = "syscalls"; pr_syscall = 0.05; pr_conn = 0.0; pr_corrupt = 0.0 };
     { pr_name = "transport"; pr_syscall = 0.0; pr_conn = 0.3; pr_corrupt = 0.0 };
     { pr_name = "corrupt"; pr_syscall = 0.0; pr_conn = 0.0; pr_corrupt = 1.0 };
     { pr_name = "mixed"; pr_syscall = 0.02; pr_conn = 0.15; pr_corrupt = 0.5 }
  |]

let kinds = [ Audit.Included; Audit.Excluded; Audit.Ptu_baseline ]

let kind_name = function
  | Audit.Included -> "server-included"
  | Audit.Excluded -> "server-excluded"
  | Audit.Ptu_baseline -> "ptu"

let outcome_label = function
  | Verified -> "verified"
  | Degraded _ -> "degraded"
  | Diverged _ -> "diverged"
  | Failed _ -> "typed-failure"
  | Db_failed _ -> "db-error"
  | Uncaught _ -> "uncaught"

let outcome_detail = function
  | Verified -> "replay verified"
  | Degraded { skipped; divergences } ->
    Printf.sprintf "%d section(s) skipped, %d divergence(s)" skipped divergences
  | Diverged { count; first } ->
    Printf.sprintf "%d divergence(s): %s" count first
  | Failed e -> Ldv_errors.to_string e
  | Db_failed msg -> msg
  | Uncaught msg -> "UNCAUGHT " ^ msg

(* ------------------------------------------------------------------ *)
(* One run: the full loop under an installed plan.                     *)

let build_package (audit : Audit.t) : Package.t =
  match audit.Audit.packaging with
  | Audit.Ptu_baseline -> Ptu.build audit
  | Audit.Included | Audit.Excluded -> Package.build audit

let run_loop ~(audit : Audit.packaging -> Audit.t) (kind : Audit.packaging) :
    outcome =
  let a = audit kind in
  let pkg = build_package a in
  let bytes = Package.to_bytes pkg in
  let bytes =
    match Ldv_faults.corrupt_package bytes with
    | Some (corrupted, _what) -> corrupted
    | None -> bytes
  in
  match Package.of_bytes_result bytes with
  | Error e -> Failed e
  | Ok { Package.r_pkg; r_skipped } -> (
    let result = Replay.execute r_pkg in
    let problems = Replay.verify ~audit:a result in
    match (r_skipped, problems) with
    | [], [] -> Verified
    | _ :: _, _ ->
      Degraded
        { skipped = List.length r_skipped;
          divergences = List.length problems }
    | [], first :: _ -> Diverged { count = List.length problems; first })

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)

let run ~(audit : Audit.packaging -> Audit.t) ~campaigns ~seed : report =
  Ldv_obs.with_span
    ~attrs:[ ("campaigns", string_of_int campaigns);
             ("seed", string_of_int seed) ]
    "faultcheck"
  @@ fun () ->
  let root = Ldv_faults.Prng.create ~seed in
  let injected = ref (Campaign.zero_tallies ()) in
  let runs = ref [] in
  for campaign = 0 to campaigns - 1 do
    let pr = profiles.(campaign mod Array.length profiles) in
    List.iter
      (fun kind ->
        (* independent, reproducible seed per (campaign, kind) *)
        let run_seed = Campaign.derive_seed root in
        let plan =
          Ldv_faults.make ~p_syscall:pr.pr_syscall ~p_conn:pr.pr_conn
            ~p_corrupt:pr.pr_corrupt ~seed:run_seed ()
        in
        let outcome =
          Ldv_obs.with_span
            ~attrs:
              [ ("campaign", string_of_int campaign);
                ("kind", kind_name kind); ("profile", pr.pr_name) ]
            "faultcheck.run"
          @@ fun () ->
          Ldv_faults.with_plan plan @@ fun () ->
          match Campaign.guard (fun () -> run_loop ~audit kind) with
          | Ok outcome -> outcome
          | Error (Campaign.Typed e) -> Failed e
          | Error (Campaign.Db msg) -> Db_failed msg
          | Error (Campaign.Replay_diverged msg) ->
            Diverged { count = 1; first = msg }
          | Error (Campaign.Other msg) -> Uncaught msg
        in
        Ldv_obs.counter ("faultcheck.outcome." ^ outcome_label outcome);
        injected := Campaign.add_tallies !injected (Ldv_faults.injected plan);
        runs := { campaign; kind; profile = pr.pr_name; outcome } :: !runs)
      kinds
  done;
  let runs = List.rev !runs in
  { r_seed = seed;
    r_campaigns = campaigns;
    r_runs = runs;
    r_injected = !injected;
    r_uncaught =
      List.length
        (List.filter (fun r -> match r.outcome with Uncaught _ -> true | _ -> false) runs)
  }

(* ------------------------------------------------------------------ *)
(* Deterministic report rendering.                                     *)

let outcome_order =
  [ "verified"; "degraded"; "diverged"; "typed-failure"; "db-error";
    "uncaught" ]

let pp ppf (r : report) =
  Format.fprintf ppf "faultcheck: %d campaigns x %d kinds, seed %d@,"
    r.r_campaigns (List.length kinds) r.r_seed;
  List.iter
    (fun run ->
      Format.fprintf ppf "  c%03d %-15s %-9s %-13s %s@," run.campaign
        (kind_name run.kind) run.profile
        (outcome_label run.outcome)
        (outcome_detail run.outcome))
    r.r_runs;
  Campaign.pp_outcome_counts ppf ~order:outcome_order
    ~label:(fun run -> outcome_label run.outcome)
    r.r_runs;
  Campaign.pp_tallies ppf r.r_injected;
  Campaign.pp_uncaught ppf r.r_uncaught

let to_string (r : report) : string =
  Format.asprintf "@[<v>%a@]" pp r
