(** Computing the relevant DB subset (§VII-D).

    A tuple version is relevant to the application iff (a) it was not
    created by the application itself (re-execution recreates those), and
    (b) some statement's lineage contains it. *)

open Minidb

(** Tuple versions created by the audited application: everything a DML
    statement in the log wrote. *)
val created_by_app : Dbclient.Interceptor.stmt_event list -> Tid.Set.t

(** The relevant tuple versions of an audited run, from the interceptor's
    deduplicated lineage table. *)
val relevant : Audit.t -> Tid.Set.t

(** The same set computed by walking the execution trace (stored tuples
    with a [hasRead] out-edge and no [hasReturned] in-edge); used to
    cross-check [relevant]. *)
val relevant_via_trace : Prov.Trace.t -> Tid.Set.t

(** Materialize a tuple-version set as per-table CSV blobs. *)
val to_csvs : Database.t -> Tid.Set.t -> (string * string) list

(** The tables contributing tuples to a version set — the shared
    derivation behind [accessed_tables] and [schema_ddl]. *)
val tables_of_tids : Tid.Set.t -> string list

(** Every table the audited application touched (query reads, DML targets,
    and tables contributing tuples to the given set): all of them need DDL
    in the package, even when none of their tuples survives slicing. *)
val accessed_tables : Audit.t -> Tid.Set.t -> string list

(** CREATE TABLE statements for the given tables. *)
val schema_ddl_for : Database.t -> string list -> (string * string) list

(** CREATE TABLE statements for the tables contributing tuples to the
    set. *)
val schema_ddl : Database.t -> Tid.Set.t -> (string * string) list

(** Total bytes of an already-materialized subset; callers that also ship
    the blobs should size them here instead of re-encoding through
    [subset_bytes]. *)
val subset_bytes_of_csvs : (string * string) list -> int

(** Total bytes of the subset's CSV encoding — the provenance-size axis of
    the paper's trade-off discussion. Materializes the CSVs just to size
    them; prefer [subset_bytes_of_csvs] when the blobs are needed
    anyway. *)
val subset_bytes : Database.t -> Tid.Set.t -> int
