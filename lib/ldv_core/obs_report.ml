(** Console sink for [Ldv_obs]: renders a snapshot as the same fixed-width
    tables {!Report} uses for the paper's figures. Shared by the CLI's
    [--obs summary] mode and the [ldv stats] JSONL reader. *)

module Obs = Ldv_obs
module H = Ldv_obs.Histogram

let span_hist_prefix = "span:"

let is_span_hist name =
  String.length name >= String.length span_hist_prefix
  && String.sub name 0 (String.length span_hist_prefix) = span_hist_prefix

(* Aggregate spans by name, preserving first-seen order of completion. *)
type agg = {
  mutable count : int;
  mutable total : float;
  mutable min_d : float;
  mutable max_d : float;
}

let span_rows (snap : Obs.snapshot) =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (sp : Obs.span) ->
      let d = Float.max 0.0 sp.Obs.sp_dur in
      match Hashtbl.find_opt tbl sp.Obs.sp_name with
      | Some a ->
        a.count <- a.count + 1;
        a.total <- a.total +. d;
        if d < a.min_d then a.min_d <- d;
        if d > a.max_d then a.max_d <- d
      | None ->
        Hashtbl.replace tbl sp.Obs.sp_name
          { count = 1; total = d; min_d = d; max_d = d };
        order := sp.Obs.sp_name :: !order)
    snap.Obs.spans;
  List.rev_map
    (fun name ->
      let a = Hashtbl.find tbl name in
      (* percentiles come from the per-stage histograms, which survive ring
         eviction *)
      let p50, p95 =
        match List.assoc_opt (span_hist_prefix ^ name) snap.Obs.histograms with
        | Some s -> (s.H.s_p50, s.H.s_p95)
        | None -> (Float.nan, Float.nan)
      in
      [ name;
        string_of_int a.count;
        Report.seconds a.total;
        Report.seconds (a.total /. float_of_int a.count);
        Report.seconds p50;
        Report.seconds p95;
        Report.seconds a.max_d ])
    !order

let print_summary (snap : Obs.snapshot) =
  if snap.Obs.spans = [] && snap.Obs.counters = [] && snap.Obs.gauges = []
     && snap.Obs.histograms = []
  then print_endline "no observability data collected"
  else begin
    if snap.Obs.spans <> [] then begin
      Report.section "Spans (per stage)";
      Report.print_table
        ~header:[ "span"; "count"; "total"; "mean"; "p50"; "p95"; "max" ]
        (span_rows snap);
      if snap.Obs.dropped_spans > 0 then
        Report.note "(%d early spans evicted from the ring buffer)\n"
          snap.Obs.dropped_spans
    end;
    if snap.Obs.counters <> [] then begin
      Report.section "Counters";
      Report.print_table ~header:[ "counter"; "value" ]
        (List.map
           (fun (name, v) -> [ name; string_of_int v ])
           snap.Obs.counters)
    end;
    if snap.Obs.gauges <> [] then begin
      Report.section "Gauges";
      Report.print_table ~header:[ "gauge"; "value" ]
        (List.map
           (fun (name, v) -> [ name; Printf.sprintf "%.3f" v ])
           snap.Obs.gauges)
    end;
    let histos =
      List.filter (fun (name, _) -> not (is_span_hist name)) snap.Obs.histograms
    in
    if histos <> [] then begin
      Report.section "Histograms";
      Report.print_table
        ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "max" ]
        (List.map
           (fun (name, s) ->
             [ name;
               string_of_int s.H.s_count;
               Printf.sprintf "%.3f" (H.mean s);
               Printf.sprintf "%.3f" s.H.s_p50;
               Printf.sprintf "%.3f" s.H.s_p95;
               Printf.sprintf "%.3f" s.H.s_p99;
               Printf.sprintf "%.3f" s.H.s_max ])
           histos)
    end
  end

(** Print the span tree of a snapshot (roots at the margin), for drilling
    into one run's structure. *)
let print_tree (snap : Obs.snapshot) =
  let rec go depth (sp : Obs.span) =
    Printf.printf "%s%s %s%s\n" (String.make (2 * depth) ' ') sp.Obs.sp_name
      (Report.seconds (Float.max 0.0 sp.Obs.sp_dur))
      (match sp.Obs.sp_attrs with
      | [] -> ""
      | attrs ->
        " ["
        ^ String.concat ", "
            (List.rev_map (fun (k, v) -> k ^ "=" ^ v) attrs)
        ^ "]");
    List.iter (go (depth + 1))
      (List.sort
         (fun (a : Obs.span) b -> compare a.Obs.sp_id b.Obs.sp_id)
         (Obs.children snap sp.Obs.sp_id))
  in
  List.iter (go 0) (Obs.roots snap)
