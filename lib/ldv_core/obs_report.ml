(** Console sink for [Ldv_obs]: renders a snapshot as the same fixed-width
    tables {!Report} uses for the paper's figures. Shared by the CLI's
    [--obs summary] mode and the [ldv stats] JSONL reader. *)

module Obs = Ldv_obs
module H = Ldv_obs.Histogram

let span_hist_prefix = "span:"

let is_span_hist name =
  String.length name >= String.length span_hist_prefix
  && String.sub name 0 (String.length span_hist_prefix) = span_hist_prefix

(* Aggregate spans by name, preserving first-seen order of completion. *)
type agg = {
  mutable count : int;
  mutable total : float;
  mutable min_d : float;
  mutable max_d : float;
}

let span_rows (snap : Obs.snapshot) =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (sp : Obs.span) ->
      let d = Float.max 0.0 sp.Obs.sp_dur in
      match Hashtbl.find_opt tbl sp.Obs.sp_name with
      | Some a ->
        a.count <- a.count + 1;
        a.total <- a.total +. d;
        if d < a.min_d then a.min_d <- d;
        if d > a.max_d then a.max_d <- d
      | None ->
        Hashtbl.replace tbl sp.Obs.sp_name
          { count = 1; total = d; min_d = d; max_d = d };
        order := sp.Obs.sp_name :: !order)
    snap.Obs.spans;
  List.rev_map
    (fun name ->
      let a = Hashtbl.find tbl name in
      (* percentiles come from the per-stage histograms, which survive ring
         eviction *)
      let p50, p95 =
        match List.assoc_opt (span_hist_prefix ^ name) snap.Obs.histograms with
        | Some s -> (s.H.s_p50, s.H.s_p95)
        | None -> (Float.nan, Float.nan)
      in
      [ name;
        string_of_int a.count;
        Report.seconds a.total;
        Report.seconds (a.total /. float_of_int a.count);
        Report.seconds p50;
        Report.seconds p95;
        Report.seconds a.max_d ])
    !order

let print_summary (snap : Obs.snapshot) =
  if snap.Obs.spans = [] && snap.Obs.counters = [] && snap.Obs.gauges = []
     && snap.Obs.histograms = []
  then print_endline "no observability data collected"
  else begin
    if snap.Obs.spans <> [] then begin
      Report.section "Spans (per stage)";
      Report.print_table
        ~header:[ "span"; "count"; "total"; "mean"; "p50"; "p95"; "max" ]
        (span_rows snap);
      if snap.Obs.dropped_spans > 0 then
        Report.note "(%d early spans evicted from the ring buffer%s)\n"
          snap.Obs.dropped_spans
          (if snap.Obs.ring_capacity > 0 then
             Printf.sprintf ", capacity %d" snap.Obs.ring_capacity
           else "")
    end;
    if snap.Obs.counters <> [] then begin
      Report.section "Counters";
      Report.print_table ~header:[ "counter"; "value" ]
        (List.map
           (fun (name, v) -> [ name; string_of_int v ])
           snap.Obs.counters)
    end;
    if snap.Obs.gauges <> [] then begin
      Report.section "Gauges";
      Report.print_table ~header:[ "gauge"; "value" ]
        (List.map
           (fun (name, v) -> [ name; Printf.sprintf "%.3f" v ])
           snap.Obs.gauges)
    end;
    let histos =
      List.filter (fun (name, _) -> not (is_span_hist name)) snap.Obs.histograms
    in
    if histos <> [] then begin
      Report.section "Histograms";
      Report.print_table
        ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "max" ]
        (List.map
           (fun (name, s) ->
             [ name;
               string_of_int s.H.s_count;
               Printf.sprintf "%.3f" (H.mean s);
               Printf.sprintf "%.3f" s.H.s_p50;
               Printf.sprintf "%.3f" s.H.s_p95;
               Printf.sprintf "%.3f" s.H.s_p99;
               Printf.sprintf "%.3f" s.H.s_max ])
           histos)
    end
  end

(* ------------------------------------------------------------------ *)
(* Replication rendering (the `ldv stats` repl.* section).             *)

let is_repl name =
  String.length name >= 5 && String.sub name 0 5 = "repl."

(** The replication section of a snapshot: every [repl.*] counter
    (shipped / applied / routed reads / stale reads / fallbacks /
    crashes / recoveries), the [repl.lag] quantum gauge, and the
    catch-up histograms. Prints nothing when the trace recorded no
    replication activity. *)
let print_replication (snap : Obs.snapshot) =
  let counters = List.filter (fun (n, _) -> is_repl n) snap.Obs.counters in
  let gauges = List.filter (fun (n, _) -> is_repl n) snap.Obs.gauges in
  let histos =
    List.filter
      (fun (n, _) -> (not (is_span_hist n)) && is_repl n)
      snap.Obs.histograms
  in
  if counters <> [] || gauges <> [] || histos <> [] then begin
    Report.section "Replication";
    if counters <> [] then
      Report.print_table ~header:[ "counter"; "value" ]
        (List.map
           (fun (name, v) -> [ name; string_of_int v ])
           (List.sort compare counters));
    if gauges <> [] then
      Report.print_table ~header:[ "gauge"; "last" ]
        (List.map
           (fun (name, v) -> [ name; Printf.sprintf "%.3f" v ])
           (List.sort compare gauges));
    if histos <> [] then
      Report.print_table
        ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "max" ]
        (List.map
           (fun (name, s) ->
             [ name;
               string_of_int s.H.s_count;
               Printf.sprintf "%.3f" (H.mean s);
               Printf.sprintf "%.3f" s.H.s_p50;
               Printf.sprintf "%.3f" s.H.s_p95;
               Printf.sprintf "%.3f" s.H.s_max ])
           (List.sort compare histos))
  end

(* ------------------------------------------------------------------ *)
(* Transaction rendering (the `ldv stats` tx.* section).               *)

let is_tx name =
  let prefixed p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  prefixed "tx." || prefixed "client.tx." || name = "faults.inject.abort"

(** The transactions section of a snapshot: every [tx.*] and
    [client.tx.*] counter (begins / commits / rollbacks / conflict
    aborts / retries / attempts) plus injected aborts. Prints nothing
    when the trace recorded no transaction activity. *)
let print_transactions (snap : Obs.snapshot) =
  let counters = List.filter (fun (n, _) -> is_tx n) snap.Obs.counters in
  if counters <> [] then begin
    Report.section "Transactions";
    Report.print_table ~header:[ "counter"; "value" ]
      (List.map
         (fun (name, v) -> [ name; string_of_int v ])
         (List.sort compare counters));
    let counter name =
      Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)
    in
    let commits = counter "tx.commit" in
    let aborts = counter "tx.abort" in
    if commits + aborts > 0 then
      Report.note "abort rate: %.1f%% (%d aborted of %d terminated)\n"
        (100.0 *. float_of_int aborts /. float_of_int (commits + aborts))
        aborts (commits + aborts)
  end

(* ------------------------------------------------------------------ *)
(* Profile rendering (the `ldv profile` / `ldv obs diff` tables).      *)

module P = Ldv_obs.Profile

let pct ~of_ v =
  if of_ <= 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. v /. of_)

(** The self/total table of a profiled run, heaviest self time first. *)
let print_profile (p : P.t) =
  Report.section "Profile (self vs total)";
  Report.print_table
    ~header:[ "span"; "count"; "total"; "self"; "self%"; "max" ]
    (List.map
       (fun (r : P.row) ->
         [ r.P.r_name;
           string_of_int r.P.r_count;
           Report.seconds r.P.r_total;
           Report.seconds r.P.r_self;
           pct ~of_:p.P.wall r.P.r_self;
           Report.seconds r.P.r_max ])
       (P.rows p));
  Report.note "wall (sum of roots): %s across %d root span(s)\n"
    (Report.seconds p.P.wall)
    (List.length p.P.forest);
  if p.P.orphans > 0 then
    Report.note
      "(%d span(s) had no parent in the trace — evicted or escaped — and \
       were promoted to roots)\n"
      p.P.orphans

(** One table per root: the chain of heaviest children, with the step
    cost attribution that telescopes to the root's duration. *)
let print_critical_paths (p : P.t) =
  List.iter
    (fun ((root : P.node), steps) ->
      Report.section
        (Printf.sprintf "Critical path of %s" root.P.n_span.Obs.sp_name);
      Report.print_table
        ~header:[ "depth"; "span"; "total"; "self"; "step cost"; "prov" ]
        (List.mapi
           (fun depth (st : P.step) ->
             [ string_of_int depth;
               st.P.st_span.Obs.sp_name;
               Report.seconds st.P.st_total;
               Report.seconds st.P.st_self;
               Report.seconds st.P.st_step;
               (* the full correlation list lives in the dot/JSONL output;
                  keep the table column readable *)
               (match Obs.prov_refs st.P.st_span with
               | a :: b :: (_ :: _ as rest) ->
                 Printf.sprintf "%s %s (+%d)" a b (List.length rest)
               | refs -> String.concat " " refs) ])
           steps);
      let path_total =
        List.fold_left (fun acc (st : P.step) -> acc +. st.P.st_step) 0.0 steps
      in
      Report.note "critical path total %s = root duration %s\n"
        (Report.seconds path_total)
        (Report.seconds root.P.n_total))
    (P.critical_paths p)

(** The `ldv obs diff` table; returns the regressed rows so the CLI can
    gate on them. *)
let print_diff ~budget_pct (rows : P.diff_row list) : P.diff_row list =
  let fmt_p95 v = if Float.is_nan v then "-" else Report.seconds v in
  let regressions =
    match budget_pct with
    | None -> []
    | Some budget_pct -> List.filter (P.regressed ~budget_pct) rows
  in
  Report.section "Span diff (run A -> run B)";
  Report.print_table
    ~header:
      [ "span"; "count A"; "count B"; "total A"; "total B"; "delta";
        "p95 A"; "p95 B"; "verdict" ]
    (List.map
       (fun (d : P.diff_row) ->
         let delta = P.delta_pct d in
         [ d.P.d_name;
           string_of_int d.P.d_count_a;
           string_of_int d.P.d_count_b;
           Report.seconds d.P.d_total_a;
           Report.seconds d.P.d_total_b;
           (if Float.is_nan delta then "-"
            else if delta = Float.infinity then "added"
            else if delta = Float.neg_infinity then "removed"
            else Printf.sprintf "%+.1f%%" delta);
           fmt_p95 d.P.d_p95_a;
           fmt_p95 d.P.d_p95_b;
           (match budget_pct with
           | None -> ""
           | Some budget_pct ->
             if P.regressed ~budget_pct d then "REGRESSED" else "ok") ])
       rows);
  (match budget_pct with
  | Some budget_pct ->
    Report.note "%d span(s) regressed past the %.1f%% budget\n"
      (List.length regressions) budget_pct
  | None -> ());
  regressions

(* ------------------------------------------------------------------ *)
(* Overhead rendering (the `ldv overhead` ledger view).                *)

module L = Ldv_obs.Ledger

(** The per-phase overhead table of a snapshot's ledger histograms: one
    row per phase (plus the unattributed remainder), per-statement means,
    and each phase's share of total statement time. Returns the audit
    overhead percentage — the audit-attributable phases (audit-record,
    provenance, obs-self) as a fraction of the native work (parse, plan,
    exec, WAL, fsync, other) — or [None] when the trace carries no
    ledger data. Deterministic: a pure function of the snapshot. *)
let print_overhead (snap : Obs.snapshot) : float option =
  let hist name = List.assoc_opt name snap.Obs.histograms in
  let sum = function Some s -> s.H.s_sum | None -> 0.0 in
  match hist L.stmt_hist with
  | None ->
    print_endline
      "no overhead ledger in this trace (collect one with an audit under \
       --obs)";
    None
  | Some stmt when stmt.H.s_count = 0 ->
    print_endline "overhead ledger is empty (no statements accounted)";
    None
  | Some stmt ->
    let n = float_of_int stmt.H.s_count in
    let rows =
      List.map
        (fun p -> (L.phase_name p, hist (L.hist_of_phase p), L.is_audit_phase p))
        L.phases
      @ [ ("other", hist L.other_hist, false) ]
    in
    let audit_s =
      List.fold_left
        (fun acc (_, s, is_a) -> if is_a then acc +. sum s else acc)
        0.0 rows
    in
    let native_s =
      List.fold_left
        (fun acc (_, s, is_a) -> if is_a then acc else acc +. sum s)
        0.0 rows
    in
    Report.section "Overhead ledger (per phase)";
    Report.print_table
      ~header:[ "phase"; "class"; "count"; "total"; "per-stmt"; "share" ]
      (List.map
         (fun (name, s, is_a) ->
           let total = sum s in
           [ name;
             (if is_a then "audit" else "native");
             string_of_int (match s with Some s -> s.H.s_count | None -> 0);
             Report.seconds total;
             Report.seconds (total /. n);
             pct ~of_:stmt.H.s_sum total ])
         rows);
    Report.note "%d statement(s) accounted, %s total (%s per statement)\n"
      stmt.H.s_count
      (Report.seconds stmt.H.s_sum)
      (Report.seconds (stmt.H.s_sum /. n));
    let obs_self = sum (hist (L.hist_of_phase L.Obs_self)) in
    Report.note "obs-self (instrumentation metering itself): %s (%s)\n"
      (Report.seconds obs_self)
      (pct ~of_:stmt.H.s_sum obs_self);
    if native_s <= 0.0 then begin
      Report.note "native work is zero; overhead ratio undefined\n";
      None
    end
    else begin
      let overhead_pct = 100.0 *. audit_s /. native_s in
      Report.note
        "audit overhead: %.2f%% (audit phases %s over native work %s)\n"
        overhead_pct (Report.seconds audit_s) (Report.seconds native_s);
      Some overhead_pct
    end

(* ------------------------------------------------------------------ *)
(* Contention rendering (the `ldv timeline` / `ldv contention` views). *)

module C = Ldv_obs.Contention

let share v = Printf.sprintf "%.1f%%" (100.0 *. v)

let attribution_rows (sessions : C.session_attr list) =
  List.map
    (fun (a : C.session_attr) ->
      let s = H.summarize a.C.a_stall in
      [ a.C.a_session;
        string_of_int a.C.a_quanta;
        Report.seconds a.C.a_wall;
        Report.seconds a.C.a_running;
        Report.seconds a.C.a_blocked;
        (if a.C.a_wall > 0.0 then share (a.C.a_blocked /. a.C.a_wall) else "-");
        Report.seconds a.C.a_latch_wait;
        (if s.H.s_count = 0 then "-" else Report.seconds s.H.s_p95) ])
    sessions

let attribution_header =
  [ "session"; "quanta"; "wall"; "running"; "blocked"; "blocked%";
    "latch wait"; "p95 stall" ]

(** The per-session Gantt over scheduler quanta: one row per session,
    ['#'] while it ran, ['.'] while it was parked, spaces before its
    first and after its last activity. Deterministic: a pure function of
    the trace. *)
let print_timeline (snap : Obs.snapshot) =
  match C.timeline snap with
  | [] ->
    print_endline
      "no scheduler quanta in this trace (collect one with a concurrent \
       audit under --obs)"
  | rows ->
    let lo, hi =
      List.fold_left
        (fun acc (_, segs) ->
          List.fold_left
            (fun (lo, hi) (g : C.segment) ->
              (Float.min lo g.C.g_start, Float.max hi (g.C.g_start +. g.C.g_dur)))
            acc segs)
        (Float.infinity, Float.neg_infinity)
        rows
    in
    let width = 64 in
    let extent = hi -. lo in
    Report.section "Session timeline (scheduler quanta)";
    if extent <= 0.0 then print_endline "(trace spans a single instant)"
    else begin
      List.iter
        (fun (session, segs) ->
          let bar = Bytes.make width ' ' in
          List.iter
            (fun (g : C.segment) ->
              let cell t =
                min (width - 1)
                  (max 0 (int_of_float (float_of_int width *. (t -. lo) /. extent)))
              in
              let c0 = cell g.C.g_start in
              let c1 = cell (g.C.g_start +. g.C.g_dur) in
              let mark = match g.C.g_kind with C.Run -> '#' | C.Wait -> '.' in
              for c = c0 to c1 do
                (* running wins a shared boundary cell over waiting *)
                if mark = '#' || Bytes.get bar c = ' ' then Bytes.set bar c mark
              done)
            segs;
          Printf.printf "  %-8s |%s|\n"
            (Printf.sprintf "S%s" session)
            (Bytes.to_string bar))
        rows;
      Printf.printf "  %-8s  %s\n" ""
        (Printf.sprintf "# running   . blocked   %s .. %s" (Report.seconds 0.0)
           (Report.seconds extent))
    end;
    Report.section "Blocked vs running (per session)";
    Report.print_table ~header:attribution_header
      (attribution_rows (C.attribution snap));
    if snap.Obs.quanta <> [] then
      Report.note "%d scheduler round(s) sampled%s\n"
        (List.length snap.Obs.quanta)
        (if snap.Obs.dropped_quanta > 0 then
           Printf.sprintf " (%d early quantum records dropped)"
             snap.Obs.dropped_quanta
         else "")

(* ------------------------------------------------------------------ *)
(* Cluster timeline (the `ldv timeline --cluster` view).               *)

let span_attr (sp : Obs.span) key = List.assoc_opt key sp.Obs.sp_attrs

let span_int_attr (sp : Obs.span) key =
  match span_attr sp key with
  | Some v -> ( try int_of_string v with Failure _ -> -1)
  | None -> -1

(** Which cluster node did a span's work: replica applies land on their
    [repl.node] lane; everything else (statements, attempts, shipping)
    runs on the leader, laned by session. *)
let cluster_lane (sp : Obs.span) =
  if String.equal sp.Obs.sp_name "repl.apply" then
    Printf.sprintf "R%d" (span_int_attr sp "repl.node")
  else Printf.sprintf "S%d" (span_int_attr sp Obs.Trace.session_attr)

let is_cluster_span (sp : Obs.span) =
  match sp.Obs.sp_name with
  | "db.stmt" | "tx.attempt" | "repl.ship" | "repl.apply" -> true
  | _ -> false

(** The cluster-wide causal view: ship frames carry the originating
    statement's trace id, so leader statements, ship deliveries, and
    replica applies join one tree per trace even though they execute on
    different nodes. Renders per-node lanes over wall time plus a
    per-trace causal table. Deterministic: a pure function of the
    trace. *)
let print_cluster_timeline (snap : Obs.snapshot) =
  let spans =
    List.sort
      (fun (a : Obs.span) b ->
        match compare a.Obs.sp_start b.Obs.sp_start with
        | 0 -> compare a.Obs.sp_id b.Obs.sp_id
        | c -> c)
      (List.filter is_cluster_span snap.Obs.spans)
  in
  if spans = [] then
    print_endline
      "no cluster spans in this trace (collect one with a replicated audit \
       under --obs)"
  else begin
    (* lanes: leader sessions first, then replicas, both in id order *)
    let lanes = ref [] in
    List.iter
      (fun sp ->
        let lane = cluster_lane sp in
        if not (List.mem lane !lanes) then lanes := lane :: !lanes)
      spans;
    let lanes =
      List.sort
        (fun a b ->
          match (a.[0], b.[0]) with
          | 'S', 'R' -> -1
          | 'R', 'S' -> 1
          | _ -> compare a b)
        !lanes
    in
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (sp : Obs.span) ->
          ( Float.min lo sp.Obs.sp_start,
            Float.max hi (sp.Obs.sp_start +. Float.max 0.0 sp.Obs.sp_dur) ))
        (Float.infinity, Float.neg_infinity)
        spans
    in
    let width = 64 in
    let extent = hi -. lo in
    Report.section "Cluster timeline (per node)";
    if extent <= 0.0 then print_endline "(trace spans a single instant)"
    else begin
      List.iter
        (fun lane ->
          let bar = Bytes.make width ' ' in
          List.iter
            (fun (sp : Obs.span) ->
              if String.equal (cluster_lane sp) lane then begin
                let cell t =
                  min (width - 1)
                    (max 0
                       (int_of_float
                          (float_of_int width *. (t -. lo) /. extent)))
                in
                let c0 = cell sp.Obs.sp_start in
                let c1 = cell (sp.Obs.sp_start +. Float.max 0.0 sp.Obs.sp_dur) in
                let mark =
                  match sp.Obs.sp_name with
                  | "repl.apply" -> 'a'
                  | "repl.ship" -> 's'
                  | _ -> '#'
                in
                for c = c0 to c1 do
                  (* statement bodies win shared cells over ship marks *)
                  if mark = '#' || Bytes.get bar c = ' ' then
                    Bytes.set bar c mark
                done
              end)
            spans;
          Printf.printf "  %-8s |%s|\n" lane (Bytes.to_string bar))
        lanes;
      Printf.printf "  %-8s  %s\n" ""
        (Printf.sprintf "# stmt   s ship   a apply   %s .. %s"
           (Report.seconds 0.0) (Report.seconds extent))
    end;
    (* the causal join: group by originating trace id *)
    let traces =
      List.sort_uniq compare
        (List.map (fun sp -> span_int_attr sp Obs.Trace.trace_attr) spans)
    in
    Report.section "Cluster causal traces";
    Report.print_table
      ~header:[ "trace"; "start"; "span"; "node"; "stmt"; "dur" ]
      (List.concat_map
         (fun tr ->
           List.filter_map
             (fun (sp : Obs.span) ->
               if span_int_attr sp Obs.Trace.trace_attr <> tr then None
               else
                 Some
                   [ (if tr < 0 then "-" else string_of_int tr);
                     Report.seconds (sp.Obs.sp_start -. lo);
                     sp.Obs.sp_name;
                     (if String.equal sp.Obs.sp_name "repl.ship" then
                        Printf.sprintf "->R%d" (span_int_attr sp "repl.node")
                      else cluster_lane sp);
                     (match span_attr sp Obs.Trace.stmt_attr with
                     | Some s -> s
                     | None -> "-");
                     Report.seconds (Float.max 0.0 sp.Obs.sp_dur) ])
             spans)
         traces);
    Report.note
      "%d trace(s) spanning %d node lane(s); replica applies join their \
       originating statement's trace via the shipped trace id\n"
      (List.length traces) (List.length lanes)
  end

(** The contention report: blocked-vs-running attribution, top latch
    holders, and group-commit stalling. *)
let print_contention (snap : Obs.snapshot) =
  let r = C.contention snap in
  if r.C.c_sessions = [] then
    print_endline
      "no contention data in this trace (collect one with a concurrent \
       audit under --obs)"
  else begin
    Report.section "Blocked vs running (per session)";
    Report.print_table ~header:attribution_header
      (attribution_rows r.C.c_sessions);
    Report.note "latch-wait share of wall time: %s; blocked share: %s\n"
      (share r.C.c_latch_share) (share r.C.c_blocked_share);
    if r.C.c_holders <> [] then begin
      Report.section "Top latch holders";
      Report.print_table
        ~header:[ "held by session"; "others waited"; "waits caused" ]
        (List.map
           (fun (h : C.holder) ->
             [ h.C.h_session;
               Report.seconds h.C.h_waited;
               string_of_int h.C.h_waiters ])
           r.C.c_holders)
    end;
    if r.C.c_stall.H.s_count > 0 then
      Report.note "stalls (all sessions): %d waits, p50 %s, p95 %s, max %s\n"
        r.C.c_stall.H.s_count
        (Report.seconds r.C.c_stall.H.s_p50)
        (Report.seconds r.C.c_stall.H.s_p95)
        (Report.seconds r.C.c_stall.H.s_max);
    let counter name =
      Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)
    in
    let deferred = counter "wal.group_commit.rounds_deferred" in
    let commits = counter "wal.group_commit" in
    if commits > 0 then
      Report.note
        "group commit: %d flush(es), %d statement(s) batched, %d round(s) \
         deferred%s\n"
        commits
        (counter "wal.group_commit.batched")
        deferred
        (match List.assoc_opt "wal.group_commit.stall" snap.Obs.histograms with
        | Some s when s.H.s_count > 0 ->
          Printf.sprintf ", stall p95 %s" (Report.seconds s.H.s_p95)
        | _ -> "")
  end

(* ------------------------------------------------------------------ *)
(* Per-session grouping (the `ldv stats --by-session` view).           *)

(** Span aggregates grouped by the [trace.session] attribute, with
    percentiles from per-session histograms built on the fly and a final
    all-sessions row per name via [H.merge]. *)
let print_by_session (snap : Obs.snapshot) =
  (* (session, span name) -> histogram of durations *)
  let tbl : (string * string, H.t) Hashtbl.t = Hashtbl.create 64 in
  let sessions = ref [] in
  List.iter
    (fun (sp : Obs.span) ->
      let session = C.session_of sp in
      if not (List.mem session !sessions) then sessions := session :: !sessions;
      let key = (session, sp.Obs.sp_name) in
      let h =
        match Hashtbl.find_opt tbl key with
        | Some h -> h
        | None ->
          let h = H.create () in
          Hashtbl.replace tbl key h;
          h
      in
      H.observe h (Float.max 0.0 sp.Obs.sp_dur))
    snap.Obs.spans;
  if !sessions = [] then
    print_endline "no spans in this trace"
  else begin
    let sessions = List.sort C.compare_session !sessions in
    let names_of session =
      Hashtbl.fold
        (fun (s, name) _ acc -> if String.equal s session then name :: acc else acc)
        tbl []
      |> List.sort String.compare
    in
    let row name (h : H.t) =
      let s = H.summarize h in
      [ name;
        string_of_int s.H.s_count;
        Report.seconds s.H.s_sum;
        Report.seconds s.H.s_p50;
        Report.seconds s.H.s_p95;
        Report.seconds s.H.s_max ]
    in
    let header = [ "span"; "count"; "total"; "p50"; "p95"; "max" ] in
    List.iter
      (fun session ->
        Report.section
          (if String.equal session "-" then "Session: (unattributed)"
           else Printf.sprintf "Session %s" session);
        Report.print_table ~header
          (List.map
             (fun name -> row name (Hashtbl.find tbl (session, name)))
             (names_of session)))
      sessions;
    (* the run-wide view: per-name merge across every session *)
    let all_names =
      Hashtbl.fold (fun (_, name) _ acc -> name :: acc) tbl []
      |> List.sort_uniq String.compare
    in
    Report.section "All sessions (merged)";
    Report.print_table ~header
      (List.map
         (fun name ->
           let merged =
             Hashtbl.fold
               (fun (_, n) h acc ->
                 if String.equal n name then H.merge acc h else acc)
               tbl (H.create ())
           in
           row name merged)
         all_names);
    if snap.Obs.counters <> [] then
      Report.note
        "(counters are process-global; per-session attribution above is \
         span-based)\n"
  end

(** Print the span tree of a snapshot (roots at the margin), for drilling
    into one run's structure. *)
let print_tree (snap : Obs.snapshot) =
  let rec go depth (sp : Obs.span) =
    Printf.printf "%s%s %s%s\n" (String.make (2 * depth) ' ') sp.Obs.sp_name
      (Report.seconds (Float.max 0.0 sp.Obs.sp_dur))
      (match sp.Obs.sp_attrs with
      | [] -> ""
      | attrs ->
        " ["
        ^ String.concat ", "
            (List.rev_map (fun (k, v) -> k ^ "=" ^ v) attrs)
        ^ "]");
    List.iter (go (depth + 1))
      (List.sort
         (fun (a : Obs.span) b -> compare a.Obs.sp_id b.Obs.sp_id)
         (Obs.children snap sp.Obs.sp_id))
  in
  List.iter (go 0) (Obs.roots snap)
