(** ldv-exec: re-executing packages (§VIII).

    [prepare] rebuilds the chroot-like environment from the package and
    initializes its DB state (Figure 7b's "Initialization"); [run]
    re-executes the application inside it; [verify] checks repeatability
    against the original audit. *)

module I := Dbclient.Interceptor

type prepared = {
  pkg : Package.t;
  kernel : Minios.Kernel.t;
  server : Dbclient.Server.t;
  session : I.t;
}

(** Rebuild the package environment:
    - server-included: create the accessed tables and restore the relevant
      tuple subset from the packaged CSVs, tuple by tuple;
    - PTU: bulk-load the server's native data files;
    - server-excluded: queue the recorded responses. *)
val prepare : Package.t -> prepared

type run_result = {
  root_pid : int;
  session : I.t;  (** the primary session *)
  sessions : I.t list;  (** all sessions, primary first *)
  kernel : Minios.Kernel.t;
  out_files : (string * string) list;
  query_fingerprints : (int * string) list;
}

(** Re-execute the packaged application: file syscalls resolve inside the
    package environment, DB calls go to the packaged server or the
    recorded-response replayer. The program is looked up in the registry
    under the package's app name unless [program] overrides it (partial
    re-execution / modified inputs). A concurrent package (unless
    overridden) re-creates one session per recorded client and re-runs
    them all under the recorded scheduler seed, reproducing the audited
    interleaving exactly.
    @raise I.Replay_divergence when a server-excluded replay's statement
    stream deviates from the recording. *)
val run : ?program:Minios.Program.program -> prepared -> run_result

(** [prepare] + [run]. *)
val execute : ?program:Minios.Program.program -> Package.t -> run_result

(** Divergences of a replay from the original audited run: output files
    not byte-identical, query results with different fingerprints. Empty
    means repeatable. *)
val verify : audit:Audit.t -> run_result -> string list
