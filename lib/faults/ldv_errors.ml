(** The typed error vocabulary of the LDV pipeline.

    The paper's value proposition is that a package re-executes reliably
    somewhere else — which only holds if corruption, truncation, and
    transport failures are *detected and reported*, not surfaced as a bare
    [Invalid_argument] from whichever parser happened to choke first.
    Every recoverable failure in the audit → slice → package → replay loop
    is expressed as a value of {!t} carried by the single exception
    {!Error}, so callers (the replay engine, the [ldv faultcheck] harness,
    the CLI) can classify failures without string matching.

    The vocabulary deliberately lives below every other library: [minios],
    [dbclient], and [ldv_core] all raise it, and [ldv_faults] injects the
    failures that exercise it. *)

type io_fault =
  | Eio  (** device-level I/O error; permanent *)
  | Enospc  (** no space left; permanent *)
  | Eintr  (** interrupted syscall; transient, restartable *)
  | Enoent  (** no such file *)

let io_fault_name = function
  | Eio -> "EIO"
  | Enospc -> "ENOSPC"
  | Eintr -> "EINTR"
  | Enoent -> "ENOENT"

type t =
  | Io_fault of { op : string; path : string; fault : io_fault }
      (** a (simulated) syscall failed *)
  | Connection_closed of { context : string }
      (** a client API was used after [close] — a programming error, but a
          typed one *)
  | Connection_lost of { context : string }
      (** the server dropped the connection mid-request; transient *)
  | Protocol_garbled of { context : string }
      (** a truncated or corrupted response frame; transient (the request
          was never executed and can be resent) *)
  | Decode_error of { line : int; what : string }
      (** a serialized recording failed to parse at 1-based [line] *)
  | Package_malformed of { what : string; offset : int }
      (** package bytes are structurally unreadable; [offset] is the byte
          position when known, [-1] otherwise *)
  | Package_corrupt of { section : string; expected : int32; actual : int32 }
      (** a package section's CRC32 does not match its payload *)
  | Retries_exhausted of { op : string; attempts : int; last : t }
      (** a transient failure persisted through every retry *)
  | Wal_torn of { path : string; bytes : int }
      (** a WAL load discarded [bytes] trailing bytes as a torn or corrupt
          tail; expected after a crash, alarming otherwise *)
  | Sink_torn of { line : int; what : string }
      (** a JSONL observability sink ended in an unreadable trailing
          record (the writer died mid-line); the complete prefix was kept *)
  | Tx_conflict of { op : string; detail : string }
      (** a write-write conflict aborted the transaction (first-updater
          wins); transient — the whole transaction can be retried *)
  | Tx_state of { message : string }
      (** BEGIN/COMMIT/ROLLBACK in the wrong session state; a programming
          error surfaced as a typed warning, like {!Wal_torn} *)

exception Error of t

let fail e = raise (Error e)

(** Non-fatal conditions (torn WAL tails, degraded-mode fallbacks) are
    reported here instead of being silently swallowed; hosts redirect the
    sink to their own logging. Default: drop. *)
let on_warning : (t -> unit) ref = ref (fun _ -> ())

let warn e = !on_warning e

(** Transient failures are worth retrying: the operation never took
    effect, so resending it is safe. *)
let is_transient = function
  | Connection_lost _ | Protocol_garbled _ | Tx_conflict _ -> true
  | Io_fault { fault = Eintr; _ } -> true
  | Io_fault _ | Connection_closed _ | Decode_error _ | Package_malformed _
  | Package_corrupt _ | Retries_exhausted _ | Wal_torn _ | Sink_torn _
  | Tx_state _ ->
    false

(** A short stable tag for counters and campaign reports. *)
let tag = function
  | Io_fault { fault; _ } -> "io." ^ String.lowercase_ascii (io_fault_name fault)
  | Connection_closed _ -> "conn.closed"
  | Connection_lost _ -> "conn.lost"
  | Protocol_garbled _ -> "conn.garbled"
  | Decode_error _ -> "decode"
  | Package_malformed _ -> "pkg.malformed"
  | Package_corrupt _ -> "pkg.corrupt"
  | Retries_exhausted _ -> "retries"
  | Wal_torn _ -> "wal.torn"
  | Sink_torn _ -> "obs.torn"
  | Tx_conflict _ -> "tx.conflict"
  | Tx_state _ -> "tx.state"

let rec pp ppf = function
  | Io_fault { op; path; fault } ->
    Format.fprintf ppf "%s: %s failed on %s" (io_fault_name fault) op path
  | Connection_closed { context } ->
    Format.fprintf ppf "connection closed: %s" context
  | Connection_lost { context } ->
    Format.fprintf ppf "connection lost: %s" context
  | Protocol_garbled { context } ->
    Format.fprintf ppf "garbled response: %s" context
  | Decode_error { line; what } ->
    Format.fprintf ppf "decode error at line %d: %s" line what
  | Package_malformed { what; offset } ->
    if offset >= 0 then
      Format.fprintf ppf "malformed package at byte %d: %s" offset what
    else Format.fprintf ppf "malformed package: %s" what
  | Package_corrupt { section; expected; actual } ->
    Format.fprintf ppf "corrupt package section %s: crc %08lx, expected %08lx"
      section actual expected
  | Retries_exhausted { op; attempts; last } ->
    Format.fprintf ppf "%s failed after %d attempts: %a" op attempts pp last
  | Wal_torn { path; bytes } ->
    Format.fprintf ppf "torn WAL tail: %d trailing byte(s) of %s discarded"
      bytes path
  | Sink_torn { line; what } ->
    Format.fprintf ppf
      "torn obs sink: trailing record at line %d skipped (%s)" line what
  | Tx_conflict { op; detail } ->
    Format.fprintf ppf "transaction aborted (%s): %s" op detail
  | Tx_state { message } ->
    Format.fprintf ppf "transaction state error: %s" message

let to_string e = Format.asprintf "%a" pp e

let () =
  Printexc.register_printer (function
    | Error e -> Some (Format.asprintf "Ldv_errors.Error (%a)" pp e)
    | _ -> None)
