(** Seeded, deterministic fault injection for the LDV pipeline.

    A {!plan} is a process-wide description of which failures to inject and
    how often, driven entirely by a splittable SplitMix64 PRNG (the same
    generator behind [Tpch.Prng]): the same seed always injects the same
    faults at the same decision points, so every failing campaign is
    reproducible bit for bit.

    Decision points are consulted from the instrumented layers:

    - {!syscall_fault} from [Minios.Kernel]'s file syscalls
      (EIO / ENOSPC / EINTR);
    - {!connection_fault} from [Dbclient.Client]'s request path
      (dropped connections, garbled response frames);
    - {!corrupt_package} from the [ldv faultcheck] harness
      (bit flips and truncation of serialized package bytes).

    With no plan installed every decision point is a single [ref] read
    returning [None], so production paths pay nothing.

    The module also carries the recovery machinery the injections
    exercise: {!with_retries}, a bounded deterministic retry loop for
    transient errors (backoff is logical — recorded through [Ldv_obs]
    rather than slept), and {!Crc32}, the checksum the package format uses
    to detect corruption. *)

(* ------------------------------------------------------------------ *)
(* Splittable SplitMix64.                                              *)

module Prng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  let next_int64 t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (** Derive an independent child stream; advancing the child never
      perturbs the parent's sequence (or vice versa). *)
  let split t = { state = next_int64 t }

  let int t bound =
    if bound <= 0 then invalid_arg "Ldv_faults.Prng.int: bound must be positive";
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    v mod bound

  let float t =
    let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
    v /. 9007199254740992.0 (* 2^53 *)

  let bool t = int t 2 = 0
end

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the package
   format's per-section checksum.                                      *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let digest (s : string) : int32 =
    let table = Lazy.force table in
    let crc = ref 0xFFFFFFFFl in
    String.iter
      (fun ch ->
        let idx =
          Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
        in
        crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
      s;
    Int32.logxor !crc 0xFFFFFFFFl
end

(* ------------------------------------------------------------------ *)
(* Fault plans.                                                        *)

type counts = {
  mutable n_eio : int;
  mutable n_enospc : int;
  mutable n_eintr : int;
  mutable n_drop : int;
  mutable n_garble : int;
  mutable n_flip : int;
  mutable n_truncate : int;
  mutable n_crash : int;
  mutable n_ship_drop : int;
  mutable n_ship_garble : int;
  mutable n_ship_reorder : int;
  mutable n_abort : int;
}

let zero_counts () =
  { n_eio = 0; n_enospc = 0; n_eintr = 0; n_drop = 0; n_garble = 0;
    n_flip = 0; n_truncate = 0; n_crash = 0; n_ship_drop = 0;
    n_ship_garble = 0; n_ship_reorder = 0; n_abort = 0 }

type plan = {
  seed : int;
  p_syscall : float;  (** per-syscall fault probability *)
  p_conn : float;  (** per-request connection fault probability *)
  p_corrupt : float;  (** per-package corruption probability *)
  p_ship : float;  (** per-record WAL-ship channel fault probability *)
  p_abort : float;
      (** per-statement injected transaction-abort probability (in-tx DML
          only) *)
  crash_site : string option;
      (** named crash point to detonate (see {!crash_point}) *)
  mutable crash_after : int;
      (** detonate on the nth consultation of [crash_site]; [<= 0] means
          already fired (or never armed) *)
  sys_prng : Prng.t;
  conn_prng : Prng.t;
  pkg_prng : Prng.t;
  ship_prng : Prng.t;
  abort_prng : Prng.t;
  counts : counts;
}

let make ?(p_syscall = 0.0) ?(p_conn = 0.0) ?(p_corrupt = 0.0)
    ?(p_ship = 0.0) ?(p_abort = 0.0) ?crash ~seed () : plan =
  let root = Prng.create ~seed in
  (* independent streams per injection site: decisions at one site never
     shift another site's sequence *)
  let sys_prng = Prng.split root in
  let conn_prng = Prng.split root in
  let pkg_prng = Prng.split root in
  let ship_prng = Prng.split root in
  (* split last so pre-existing campaigns keep their exact streams *)
  let abort_prng = Prng.split root in
  let crash_site, crash_after =
    match crash with
    | Some (site, n) when n >= 1 -> (Some site, n)
    | Some (site, _) ->
      invalid_arg
        (Printf.sprintf "Ldv_faults.make: crash occurrence for %s must be >= 1"
           site)
    | None -> (None, 0)
  in
  { seed; p_syscall; p_conn; p_corrupt; p_ship; p_abort; crash_site;
    crash_after; sys_prng; conn_prng; pkg_prng; ship_prng; abort_prng;
    counts = zero_counts () }

let seed (p : plan) = p.seed

(** Injection tallies so far, as stable (name, count) pairs — the
    deterministic core of a campaign report. *)
let injected (p : plan) : (string * int) list =
  [ ("eio", p.counts.n_eio); ("enospc", p.counts.n_enospc);
    ("eintr", p.counts.n_eintr); ("drop", p.counts.n_drop);
    ("garble", p.counts.n_garble); ("flip", p.counts.n_flip);
    ("truncate", p.counts.n_truncate); ("crash", p.counts.n_crash);
    ("ship.drop", p.counts.n_ship_drop);
    ("ship.garble", p.counts.n_ship_garble);
    ("ship.reorder", p.counts.n_ship_reorder);
    ("abort", p.counts.n_abort) ]

let current : plan option ref = ref None

let install p = current := Some p
let clear () = current := None
let enabled () = !current <> None
let active () = !current

(** Install [p] for the duration of [f]; always restores the previous
    plan, even when [f] raises. *)
let with_plan p f =
  let previous = !current in
  current := Some p;
  Fun.protect ~finally:(fun () -> current := previous) f

(* ------------------------------------------------------------------ *)
(* Decision points.                                                    *)

(** Raised by {!crash_point} when the armed crash site detonates. Not an
    {!Ldv_errors.t}: a simulated power failure is control flow for the
    crash-consistency harness (which catches it, drops unsynced bytes,
    and recovers), never an error a production path should classify. *)
exception Crash of string

(** A named crash point in the durability machinery ([wal.append],
    [ckpt.pre_rename], ...). When the installed plan is armed for [site],
    the nth consultation raises {!Crash}; the plan then disarms itself so
    recovery code running under the same plan cannot crash again. *)
let crash_point ~site =
  match !current with
  | None -> ()
  | Some p -> (
    match p.crash_site with
    | Some s when String.equal s site && p.crash_after > 0 ->
      p.crash_after <- p.crash_after - 1;
      if p.crash_after = 0 then begin
        p.crash_after <- -1;
        p.counts.n_crash <- p.counts.n_crash + 1;
        Ldv_obs.counter "faults.inject.crash";
        raise (Crash site)
      end
    | Some _ | None -> ())

(** Should this syscall fail? EINTR is twice as likely as either
    permanent fault, mirroring the real-world mix where most injected
    noise is restartable. [op]/[path] only label the resulting error. *)
let syscall_fault ~op:_ ~path:_ : Ldv_errors.io_fault option =
  match !current with
  | None -> None
  | Some p ->
    if p.p_syscall > 0.0 && Prng.float p.sys_prng < p.p_syscall then begin
      let fault =
        match Prng.int p.sys_prng 4 with
        | 0 -> Ldv_errors.Eio
        | 1 -> Ldv_errors.Enospc
        | _ -> Ldv_errors.Eintr
      in
      (match fault with
      | Ldv_errors.Eio -> p.counts.n_eio <- p.counts.n_eio + 1
      | Ldv_errors.Enospc -> p.counts.n_enospc <- p.counts.n_enospc + 1
      | Ldv_errors.Eintr -> p.counts.n_eintr <- p.counts.n_eintr + 1
      | Ldv_errors.Enoent -> ());
      Ldv_obs.counter ("faults.inject." ^ String.lowercase_ascii (Ldv_errors.io_fault_name fault));
      Some fault
    end
    else None

(** Should this client request fail before reaching the server? A lost
    connection and a garbled response frame are equally likely; both are
    injected *before* execution, so retrying the request is always safe. *)
let connection_fault () : [ `Drop | `Garble ] option =
  match !current with
  | None -> None
  | Some p ->
    if p.p_conn > 0.0 && Prng.float p.conn_prng < p.p_conn then
      if Prng.bool p.conn_prng then begin
        p.counts.n_drop <- p.counts.n_drop + 1;
        Ldv_obs.counter "faults.inject.drop";
        Some `Drop
      end
      else begin
        p.counts.n_garble <- p.counts.n_garble + 1;
        Ldv_obs.counter "faults.inject.garble";
        Some `Garble
      end
    else None

(** Should this WAL-ship send misbehave? Drop (the frame never arrives),
    garble (it arrives with flipped bytes and fails the replica's CRC
    check), and reorder (it is delayed behind the next frame) are equally
    likely. Drop and garble are injected before the replica applies
    anything, so resending is always safe. *)
let ship_fault () : [ `Drop | `Garble | `Reorder ] option =
  match !current with
  | None -> None
  | Some p ->
    if p.p_ship > 0.0 && Prng.float p.ship_prng < p.p_ship then begin
      let fault =
        match Prng.int p.ship_prng 3 with
        | 0 -> `Drop
        | 1 -> `Garble
        | _ -> `Reorder
      in
      (match fault with
      | `Drop -> p.counts.n_ship_drop <- p.counts.n_ship_drop + 1
      | `Garble -> p.counts.n_ship_garble <- p.counts.n_ship_garble + 1
      | `Reorder -> p.counts.n_ship_reorder <- p.counts.n_ship_reorder + 1);
      Ldv_obs.counter
        ("faults.inject.ship."
        ^ match fault with
          | `Drop -> "drop"
          | `Garble -> "garble"
          | `Reorder -> "reorder");
      Some fault
    end
    else None

(** Should this in-transaction statement be aborted by an injected
    write-write conflict? Consulted by the interceptor for DML executed
    inside an open transaction; a [true] answer surfaces as a synthetic
    {!Ldv_errors.Tx_conflict}, exercising the abort/rollback/retry path
    without needing two sessions to actually collide. *)
let abort_fault () : bool =
  match !current with
  | None -> false
  | Some p ->
    if p.p_abort > 0.0 && Prng.float p.abort_prng < p.p_abort then begin
      p.counts.n_abort <- p.counts.n_abort + 1;
      Ldv_obs.counter "faults.inject.abort";
      true
    end
    else false

(** Maybe corrupt serialized package bytes: a single bit flip at a random
    offset, or truncation at a random cut point. Returns the corrupted
    bytes and a description, or [None] for "left intact". *)
let corrupt_package (data : string) : (string * string) option =
  match !current with
  | None -> None
  | Some p ->
    if
      String.length data > 0
      && p.p_corrupt > 0.0
      && Prng.float p.pkg_prng < p.p_corrupt
    then
      if Prng.bool p.pkg_prng then begin
        let off = Prng.int p.pkg_prng (String.length data) in
        let bit = Prng.int p.pkg_prng 8 in
        let b = Bytes.of_string data in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
        p.counts.n_flip <- p.counts.n_flip + 1;
        Ldv_obs.counter "faults.inject.flip";
        Some (Bytes.to_string b, Printf.sprintf "bit %d flipped at byte %d" bit off)
      end
      else begin
        let keep = Prng.int p.pkg_prng (String.length data) in
        p.counts.n_truncate <- p.counts.n_truncate + 1;
        Ldv_obs.counter "faults.inject.truncate";
        Some
          ( String.sub data 0 keep,
            Printf.sprintf "truncated to %d of %d bytes" keep (String.length data) )
      end
    else None

(* ------------------------------------------------------------------ *)
(* Recovery: bounded deterministic retry.                              *)

let default_attempts = 4

(** Logical exponential backoff for the [n]-th retry, in milliseconds.
    Nothing sleeps: the simulated pipeline has no wall-clock to wait on,
    so the backoff is recorded through [Ldv_obs] instead. *)
let backoff_ms n = ldexp 1.0 n

(** Run [f], retrying transient {!Ldv_errors} failures (lost connections,
    garbled frames, EINTR) up to [attempts] times in total. Permanent
    errors propagate immediately; a transient error that survives every
    attempt is wrapped in [Retries_exhausted]. Retry telemetry is tagged
    with the call site: [faults.retry.<op>.<tag>] alongside the global
    [faults.retry], so a campaign report can tell a flaky ship channel
    from a flaky client connection. [cap_ms] bounds the *total* logical
    backoff: once the accumulated backoff would exceed it, the loop gives
    up early with [Retries_exhausted] — a permanently dead peer fails
    fast instead of riding every attempt to max backoff. *)
let with_retries ?(attempts = default_attempts) ?cap_ms ~op f =
  let exhausted ~n e =
    Ldv_errors.fail
      (Ldv_errors.Retries_exhausted { op; attempts = n; last = e })
  in
  let rec go n spent =
    match f () with
    | v -> v
    | exception Ldv_errors.Error e when Ldv_errors.is_transient e ->
      let pause = backoff_ms n in
      let capped =
        match cap_ms with Some cap -> spent +. pause > cap | None -> false
      in
      if n + 1 >= attempts || capped then exhausted ~n:(n + 1) e
      else begin
        if Ldv_obs.enabled () then begin
          Ldv_obs.counter "faults.retry";
          Ldv_obs.counter
            (Printf.sprintf "faults.retry.%s.%s" op (Ldv_errors.tag e));
          Ldv_obs.observe "faults.backoff_ms" pause
        end;
        go (n + 1) (spent +. pause)
      end
  in
  go 0 0.0
