(** Closed time intervals over the discrete logical time domain.

    Every edge of an execution trace is annotated with the interval during
    which the two connected nodes interacted (Definition 2). *)

type t

(** [make b e] is the interval [\[b, e\]].
    @raise Invalid_argument if [b > e]. *)
val make : int -> int -> t

(** A point interaction [\[t, t\]]. *)
val point : int -> t

val b : t -> int
(** Lower bound. *)

val e : t -> int
(** Upper bound. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** Order interactions by when they began, ignoring their extent — the
    order in which interleaved sessions issued their statements. *)
val compare_start : t -> t -> int

val contains : t -> int -> bool
val overlaps : t -> t -> bool

(** Smallest interval covering both arguments. *)
val hull : t -> t -> t

(** [before a b]: interaction [a] completed no later than [b] began. *)
val before : t -> t -> bool

val duration : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
