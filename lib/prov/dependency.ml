(** Data dependencies and temporally-restricted dependency inference
    (paper §VI, Definitions 7–11).

    [bb_dependencies] and the registered lineage dependencies give the
    per-model direct dependencies D(G). [dependencies_of] implements the
    cross-model inference of Definition 11: entity [e] depends on entity
    [e'] at time [T] iff there is a trace path from [e'] to [e] such that

    1. adjacent entities from the same model on the path are directly
       dependent,
    2. a non-decreasing sequence of times T_1 <= ... <= T_n exists with
       T_i <= end(edge_i), and
    3. each step respects node state: begin(edge_{i-1}) <= T_i (and
       T_n <= T).

    The search runs backward from [e], carrying the latest feasible time
    [tau]: crossing edge (u -> v) backward is feasible iff
    begin(edge) <= tau, and tightens tau to min(tau, end(edge)). The
    correctness of this greedy bound follows from choosing each T_i as
    large as the constraints allow. Memoization keeps, per (node,
    last-entity) state, the largest tau already explored. *)

(* ------------------------------------------------------------------ *)
(* Per-model direct dependencies.                                      *)

(** Definition 8: file [f] depends on [f'] when some process chain
    (connected by [executed] edges) reads [f'] at its head and writes [f]
    at its tail. Returns (dependent, source) pairs. Time is ignored here;
    temporal pruning happens in the inference. *)
let bb_dependencies (trace : Trace.t) : (string * string) list =
  let results = Hashtbl.create 64 in
  let files =
    List.filter
      (fun (n : Trace.node) -> String.equal n.Trace.node_type Bb_model.file_type)
      (Trace.nodes trace)
  in
  List.iter
    (fun (f' : Trace.node) ->
      (* forward from f' through readFrom then executed* then hasWritten *)
      let visited = Hashtbl.create 16 in
      let rec walk_process pid_node =
        if not (Hashtbl.mem visited pid_node) then begin
          Hashtbl.replace visited pid_node ();
          List.iter
            (fun (e : Trace.edge) ->
              match e.Trace.elabel with
              | "hasWritten" ->
                Hashtbl.replace results (e.Trace.dst, f'.Trace.id) ()
              | "executed" -> walk_process e.Trace.dst
              | _ -> ())
            (Trace.out_edges trace pid_node)
        end
      in
      List.iter
        (fun (e : Trace.edge) ->
          if String.equal e.Trace.elabel "readFrom" then
            walk_process e.Trace.dst)
        (Trace.out_edges trace f'.Trace.id))
    files;
  Hashtbl.fold (fun k () acc -> k :: acc) results []

(** Definition 7's dependencies as registered on the trace (result tuple ->
    lineage members), as (dependent, source) pairs. *)
let lineage_dependencies (trace : Trace.t) : (string * string) list =
  List.concat_map
    (fun (n : Trace.node) ->
      List.map (fun src -> (n.Trace.id, src)) (Trace.direct_deps_of trace n.Trace.id))
    (Trace.entities trace)

(* ------------------------------------------------------------------ *)
(* Same-model adjacency check used during inference.                   *)

(* Whether an entity of this model carries explicit direct-dependency
   information. Blackbox files do not: every output conservatively depends
   on every input reachable through a process chain, and a trace path
   between two files passes only through processes connected by [executed]
   edges, which is exactly Definition 8's witness. Lineage tuples do: the
   dependency must have been registered. *)
let default_same_model_dep (trace : Trace.t) (later : Trace.node)
    (earlier : Trace.node) : bool =
  if String.equal later.Trace.node_type Bb_model.file_type then true
  else Trace.has_direct_dep trace ~later:later.Trace.id ~earlier:earlier.Trace.id

let entity_model_of (n : Trace.node) : string =
  if String.equal n.Trace.node_type Bb_model.file_type then "bb"
  else if String.equal n.Trace.node_type Lineage_model.tuple_type then "lineage"
  else n.Trace.node_type

(* ------------------------------------------------------------------ *)
(* Temporal inference (Definition 11).                                 *)

type search_config = {
  at : int;  (** the query time T *)
  same_model_dep : Trace.node -> Trace.node -> bool;
      (** D(G) membership check for adjacent same-model entities *)
}

(** All entities that entity [target] depends on at time [at]
    (default: end of trace). *)
let dependencies_of ?(at = max_int) ?same_model_dep (trace : Trace.t)
    (target : string) : string list =
  let cfg =
    { at;
      same_model_dep =
        Option.value same_model_dep ~default:(default_same_model_dep trace) }
  in
  let target_node = Trace.node_exn trace target in
  if target_node.Trace.kind <> Model.Entity then
    invalid_arg "Dependency.dependencies_of: target must be an entity";
  let found = Hashtbl.create 32 in
  (* (node id, last entity id) -> largest tau explored *)
  let best : (string * string, int) Hashtbl.t = Hashtbl.create 128 in
  let rec visit (v : string) ~(last_entity : Trace.node) ~(tau : int) =
    let key = (v, last_entity.Trace.id) in
    let seen = Hashtbl.find_opt best key in
    match seen with
    | Some t when t >= tau -> ()
    | _ ->
      Hashtbl.replace best key tau;
      List.iter
        (fun (e : Trace.edge) ->
          let b = Interval.b e.Trace.time and en = Interval.e e.Trace.time in
          if b <= tau then begin
            let tau' = min tau en in
            let u = Trace.node_exn trace e.Trace.src in
            match u.Trace.kind with
            | Model.Activity -> visit u.Trace.id ~last_entity ~tau:tau'
            | Model.Entity ->
              let same_model =
                String.equal (entity_model_of u) (entity_model_of last_entity)
              in
              let admissible =
                (not same_model) || cfg.same_model_dep last_entity u
              in
              if admissible then begin
                if not (String.equal u.Trace.id target) then
                  Hashtbl.replace found u.Trace.id ();
                visit u.Trace.id ~last_entity:u ~tau:tau'
              end
          end)
        (Trace.in_edges trace v)
  in
  visit target ~last_entity:target_node ~tau:cfg.at;
  Hashtbl.fold (fun id () acc -> id :: acc) found []
  |> List.sort String.compare

exception Found_source

(** Does entity [target] depend on entity [source] at time [at]?

    Same backward search as [dependencies_of], but it stops as soon as
    [source] is reached admissibly instead of materializing the full
    dependency set and testing membership — a membership probe on a large
    trace touches only the part of the graph between the two entities. *)
let depends_on ?(at = max_int) ?same_model_dep (trace : Trace.t) ~target
    ~source : bool =
  let cfg =
    { at;
      same_model_dep =
        Option.value same_model_dep ~default:(default_same_model_dep trace) }
  in
  let target_node = Trace.node_exn trace target in
  if target_node.Trace.kind <> Model.Entity then
    invalid_arg "Dependency.depends_on: target must be an entity";
  let best : (string * string, int) Hashtbl.t = Hashtbl.create 128 in
  let rec visit (v : string) ~(last_entity : Trace.node) ~(tau : int) =
    let key = (v, last_entity.Trace.id) in
    match Hashtbl.find_opt best key with
    | Some t when t >= tau -> ()
    | _ ->
      Hashtbl.replace best key tau;
      List.iter
        (fun (e : Trace.edge) ->
          let b = Interval.b e.Trace.time and en = Interval.e e.Trace.time in
          if b <= tau then begin
            let tau' = min tau en in
            let u = Trace.node_exn trace e.Trace.src in
            match u.Trace.kind with
            | Model.Activity -> visit u.Trace.id ~last_entity ~tau:tau'
            | Model.Entity ->
              let same_model =
                String.equal (entity_model_of u) (entity_model_of last_entity)
              in
              let admissible =
                (not same_model) || cfg.same_model_dep last_entity u
              in
              if admissible then begin
                if
                  String.equal u.Trace.id source
                  && not (String.equal u.Trace.id target)
                then raise Found_source;
                visit u.Trace.id ~last_entity:u ~tau:tau'
              end
          end)
        (Trace.in_edges trace v)
  in
  match visit target ~last_entity:target_node ~tau:cfg.at with
  | () -> false
  | exception Found_source -> true

(** All inferred dependency pairs (dependent, source) over the whole trace;
    quadratic, intended for tests and small traces. *)
let all_dependencies ?at ?same_model_dep (trace : Trace.t) :
    (string * string) list =
  List.concat_map
    (fun (n : Trace.node) ->
      List.map
        (fun src -> (n.Trace.id, src))
        (dependencies_of ?at ?same_model_dep trace n.Trace.id))
    (Trace.entities trace)

(** Entities reachable backward from [target] ignoring time and dependency
    restrictions — the upper bound the inference must stay below (axiom 2 of
    Definition 9). *)
let connected_sources (trace : Trace.t) (target : string) : string list =
  let visited = Hashtbl.create 64 in
  let found = Hashtbl.create 32 in
  let rec go v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter
        (fun (e : Trace.edge) ->
          let u = Trace.node_exn trace e.Trace.src in
          if u.Trace.kind = Model.Entity && not (String.equal u.Trace.id target)
          then Hashtbl.replace found u.Trace.id ();
          go e.Trace.src)
        (Trace.in_edges trace v)
    end
  in
  go target;
  Hashtbl.fold (fun id () acc -> id :: acc) found [] |> List.sort String.compare
