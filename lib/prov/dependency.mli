(** Data dependencies and temporally-restricted dependency inference
    (paper §VI, Definitions 7–11).

    Per-model direct dependencies D(G) come from [bb_dependencies]
    (Definition 8) and from the lineage facts registered on the trace
    (Definition 7). [dependencies_of] implements the cross-model inference
    of Definition 11: entity [e] depends on entity [e'] at time [T] iff a
    trace path from [e'] to [e] exists on which (1) adjacent same-model
    entities are directly dependent, and (2–3) a non-decreasing sequence of
    interaction times exists that respects every edge's interval — so an
    input read *after* an output was produced can never be inferred as one
    of its sources. The search is sound and complete for the axioms of
    Definition 9 (Theorem 1). *)

(** Definition 8: [(f, f')] pairs where file [f] depends on file [f']
    through a chain of processes connected by [executed] edges. Time is
    ignored here; temporal pruning happens in the inference. *)
val bb_dependencies : Trace.t -> (string * string) list

(** Definition 7's registered dependencies as [(dependent, source)]
    pairs. *)
val lineage_dependencies : Trace.t -> (string * string) list

(** All entities that entity [target] depends on at time [at] (default:
    end of trace). [same_model_dep] overrides the D(G) membership check
    for adjacent same-model entities (defaults: blackbox files are
    conservatively dependent, lineage tuples require a registered
    dependency).
    @raise Invalid_argument if [target] is not an entity node. *)
val dependencies_of :
  ?at:int ->
  ?same_model_dep:(Trace.node -> Trace.node -> bool) ->
  Trace.t ->
  string ->
  string list

(** Does entity [target] depend on entity [source]? Runs the same
    backward search as [dependencies_of] but exits as soon as [source]
    is reached admissibly, so a membership probe does not materialize
    the full dependency set. *)
val depends_on :
  ?at:int ->
  ?same_model_dep:(Trace.node -> Trace.node -> bool) ->
  Trace.t ->
  target:string ->
  source:string ->
  bool

(** All inferred dependency pairs [(dependent, source)] over the whole
    trace; quadratic, intended for tests and small traces. *)
val all_dependencies :
  ?at:int ->
  ?same_model_dep:(Trace.node -> Trace.node -> bool) ->
  Trace.t ->
  (string * string) list

(** Entities reachable backward from [target] ignoring time and dependency
    restrictions — the upper bound the inference must stay below (axiom 2
    of Definition 9). *)
val connected_sources : Trace.t -> string -> string list
