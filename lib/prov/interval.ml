(** Closed time intervals over the discrete logical time domain.

    Every edge of an execution trace is annotated with the interval during
    which the two connected nodes interacted (Definition 2). [b] and [e] are
    the lower and upper bounds; a point interaction has [b = e]. *)

type t = { b : int; e : int }

let make b e =
  if b > e then invalid_arg "Interval.make: lower bound above upper bound";
  { b; e }

let point t = { b = t; e = t }

let b i = i.b
let e i = i.e

let equal a b = a.b = b.b && a.e = b.e
let compare a b =
  match Int.compare a.b b.b with 0 -> Int.compare a.e b.e | c -> c

(** Order interactions by when they began, ignoring their extent — the
    order in which interleaved sessions issued their statements. *)
let compare_start a b = Int.compare a.b b.b

let contains i t = i.b <= t && t <= i.e
let overlaps a b = a.b <= b.e && b.b <= a.e

(** Smallest interval covering both. *)
let hull a b = { b = min a.b b.b; e = max a.e b.e }

(** [before a b]: interaction [a] completed no later than [b] began. *)
let before a b = a.e <= b.b

let duration i = i.e - i.b

let pp ppf i = Format.fprintf ppf "[%d, %d]" i.b i.e
let to_string i = Format.asprintf "%a" pp i
