(** Structural comparison of execution traces.

    PTU-style validation asks: did the re-execution *do the same thing* as
    the original run? Tuple-version identifiers and timestamps legitimately
    differ between runs, so the comparison is on behaviourally meaningful
    multisets: the statements executed (kind + normalized SQL, in order),
    the files read and written per mode, the number of processes, and the
    per-label edge counts. An empty difference list means the two traces
    are behaviourally equivalent at this granularity. *)

type difference = {
  what : string;  (** which aspect differs *)
  left : string;
  right : string;
}

let pp_difference ppf d =
  Format.fprintf ppf "%s: %s vs %s" d.what d.left d.right

let statements (t : Trace.t) : string list =
  Trace.nodes t
  |> List.filter_map (fun (n : Trace.node) ->
         if
           List.mem n.Trace.node_type [ "query"; "insert"; "update"; "delete" ]
         then
           let qid =
             match List.assoc_opt "qid" n.Trace.attrs with
             | Some q -> int_of_string q
             | None -> 0
           in
           Some
             ( qid,
               n.Trace.node_type ^ ":"
               ^ Option.value (List.assoc_opt "sql" n.Trace.attrs) ~default:""
             )
         else None)
  |> List.sort compare |> List.map snd

let files_by_mode (t : Trace.t) ~label : string list =
  Trace.edges t
  |> List.filter_map (fun (e : Trace.edge) ->
         if String.equal e.Trace.elabel label then
           Some (if label = "hasWritten" then e.Trace.dst else e.Trace.src)
         else None)
  |> List.filter (fun id -> String.length id > 5 && String.sub id 0 5 = "file:")
  |> List.sort_uniq String.compare

let edge_label_counts (t : Trace.t) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.edge) ->
      Hashtbl.replace tbl e.Trace.elabel
        (1 + Option.value (Hashtbl.find_opt tbl e.Trace.elabel) ~default:0))
    (Trace.edges t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

(** Behavioural differences between two traces; empty = equivalent. *)
let compare_traces (a : Trace.t) (b : Trace.t) : difference list =
  let diffs = ref [] in
  let push what left right = diffs := { what; left; right } :: !diffs in
  let check_list what la lb render =
    if la <> lb then push what (render la) (render lb)
  in
  let render_n l = string_of_int (List.length l) in
  let sa = statements a and sb = statements b in
  if List.length sa <> List.length sb then
    push "statement count" (render_n sa) (render_n sb)
  else
    List.iteri
      (fun i (x, y) ->
        if not (String.equal x y) then
          push (Printf.sprintf "statement %d" i) x y)
      (List.combine sa sb);
  check_list "files read"
    (files_by_mode a ~label:"readFrom")
    (files_by_mode b ~label:"readFrom")
    (String.concat ",");
  check_list "files written"
    (files_by_mode a ~label:"hasWritten")
    (files_by_mode b ~label:"hasWritten")
    (String.concat ",");
  let procs t = List.length (List.filter (fun (n : Trace.node) -> n.Trace.node_type = "process") (Trace.nodes t)) in
  if procs a <> procs b then
    push "process count" (string_of_int (procs a)) (string_of_int (procs b));
  List.iter
    (fun label ->
      let count t =
        Option.value (List.assoc_opt label (edge_label_counts t)) ~default:0
      in
      if count a <> count b then
        push ("edge count " ^ label)
          (string_of_int (count a))
          (string_of_int (count b)))
    [ "run"; "hasRead"; "hasReturned"; "executed" ];
  List.rev !diffs

(** Validate a replay against the original audit by comparing their
    traces. *)
let equivalent a b = compare_traces a b = []

(** Dependency-preservation check: of the given [(target, source)] pairs,
    those that hold in [a] but not in [b]. Both probes use the early-exit
    [Dependency.depends_on], so checking a handful of pairs does not
    materialize full dependency sets on either trace. Pairs whose nodes do
    not exist in a trace count as not holding there. *)
let missing_dependencies (a : Trace.t) (b : Trace.t)
    ~(pairs : (string * string) list) : (string * string) list =
  let holds trace (target, source) =
    match Dependency.depends_on trace ~target ~source with
    | ok -> ok
    | exception _ -> false
  in
  List.filter (fun pair -> holds a pair && not (holds b pair)) pairs
