(** Structural comparison of execution traces, for PTU-style validation of
    replays: tuple ids and timestamps legitimately differ between runs, so
    traces are compared on behaviourally meaningful multisets — statements
    executed, files touched per mode, process counts, edge counts. *)

type difference = { what : string; left : string; right : string }

val pp_difference : Format.formatter -> difference -> unit

(** The trace's statement stream, ordered by qid, as ["kind:sql"]. *)
val statements : Trace.t -> string list

(** Distinct file node ids on edges with the given label ([readFrom] or
    [hasWritten]). *)
val files_by_mode : Trace.t -> label:string -> string list

val edge_label_counts : Trace.t -> (string * int) list

(** Behavioural differences between two traces; empty = equivalent. *)
val compare_traces : Trace.t -> Trace.t -> difference list

val equivalent : Trace.t -> Trace.t -> bool

(** Of the given [(target, source)] pairs, those where [target] depends on
    [source] in the first trace but not in the second — a replay preserved
    the recorded dependencies iff this is empty. Uses the early-exit
    [Dependency.depends_on] probe for each pair. *)
val missing_dependencies :
  Trace.t -> Trace.t -> pairs:(string * string) list -> (string * string) list
