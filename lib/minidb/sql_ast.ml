(** Abstract syntax for the SQL dialect MiniDB speaks.

    The dialect covers the paper's workload (Table II plus the
    Insert/Update steps of §IX-A) and a realistic superset: SELECT with
    comma joins and explicit [JOIN .. ON] / [LEFT JOIN], WHERE with
    three-valued logic, BETWEEN/LIKE/IN, uncorrelated subqueries (IN,
    EXISTS, scalar), aggregation with GROUP BY and HAVING, ORDER BY /
    LIMIT / DISTINCT, UNION [ALL], CASE expressions and scalar functions;
    INSERT .. VALUES / INSERT .. SELECT, UPDATE, DELETE; CREATE/DROP
    TABLE, CREATE/DROP INDEX; EXPLAIN; BEGIN/COMMIT/ROLLBACK; time-travel
    scans ([FROM t AS OF n]) over the native version history; and Perm's
    [PROVENANCE] keyword prefix. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type join_kind = Inner | Left_outer

type set_op = Union_all | Union_distinct

type expr =
  | Const of Value.t
  | Col of string option * string  (** optional qualifier, column name *)
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | Between of expr * expr * expr  (** e BETWEEN lo AND hi *)
  | Like of expr * string
  | Not_like of expr * string
  | In_list of expr * expr list
  | Arith of arith * expr * expr
  | Neg of expr
  | Concat of expr * expr
  | Agg of agg_fn * expr option  (** aggregate call; [None] only for COUNT star *)
  | Case of (expr * expr) list * expr option
      (** CASE WHEN c THEN v ... [ELSE d] END *)
  | Func of string * expr list  (** scalar function call, lowercase name *)
  | Exists of select  (** EXISTS (SELECT ...), uncorrelated *)
  | In_select of expr * select  (** e IN (SELECT ...), uncorrelated *)
  | Scalar_subquery of select  (** (SELECT ...) producing one value *)

and select_item =
  | Star
  | Item of expr * string option  (** expression with optional AS alias *)

and from_item =
  | From_table of {
      table : string;
      alias : string option;
      as_of : int option;  (** time-travel: the snapshot clock to scan *)
    }
  | From_join of {
      left : from_item;
      right : from_item;
      kind : join_kind;
      on : expr;
    }

and select = {
  distinct : bool;
  items : select_item list;
  from : from_item list;  (** comma-separated; empty only inside EXISTS *)
  where : expr option;
  group_by : (string option * string) list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  set_ops : (set_op * select) list;  (** UNION [ALL] chain, left-assoc *)
}

and order_dir = Asc | Desc

type insert_source =
  | Values of expr list list
  | Query of select  (** INSERT INTO t SELECT ... *)

type statement =
  | Select of select
  | Provenance of select  (** Perm's [PROVENANCE SELECT ...] *)
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
    }
  | Update of {
      table : string;
      sets : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }
  | Create_table of { table : string; columns : (string * Value.ty) list }
  | Drop_table of string
  | Create_index of {
      index : string;
      table : string;
      column : string;
      ordered : bool;  (** CREATE ORDERED INDEX: range-capable sorted index *)
    }
  | Drop_index of string
  | Explain of statement
  | Begin_tx
  | Commit_tx
  | Rollback_tx

let agg_name = function
  | Count_star | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let cmp_name = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

(** [contains_agg e] holds when [e] mentions an aggregate function outside
    any nested subquery; such expressions force an aggregation plan node. *)
let rec contains_agg = function
  | Const _ | Col _ -> false
  | Cmp (_, a, b) | Arith (_, a, b) | Concat (a, b) | And (a, b) | Or (a, b) ->
    contains_agg a || contains_agg b
  | Not e | Is_null e | Is_not_null e | Neg e -> contains_agg e
  | Between (a, b, c) -> contains_agg a || contains_agg b || contains_agg c
  | Like (e, _) | Not_like (e, _) -> contains_agg e
  | In_list (e, es) -> contains_agg e || List.exists contains_agg es
  | Agg _ -> true
  | Case (branches, default) ->
    List.exists (fun (c, v) -> contains_agg c || contains_agg v) branches
    || Option.fold ~none:false ~some:contains_agg default
  | Func (_, args) -> List.exists contains_agg args
  | Exists _ | Scalar_subquery _ -> false
  | In_select (e, _) -> contains_agg e

(** Fold over all column references in an expression (not descending into
    subqueries, whose columns resolve in their own scope). *)
let rec fold_cols f acc = function
  | Const _ -> acc
  | Col (q, n) -> f acc q n
  | Cmp (_, a, b) | Arith (_, a, b) | Concat (a, b) | And (a, b) | Or (a, b) ->
    fold_cols f (fold_cols f acc a) b
  | Not e | Is_null e | Is_not_null e | Neg e -> fold_cols f acc e
  | Between (a, b, c) -> fold_cols f (fold_cols f (fold_cols f acc a) b) c
  | Like (e, _) | Not_like (e, _) -> fold_cols f acc e
  | In_list (e, es) -> List.fold_left (fold_cols f) (fold_cols f acc e) es
  | Agg (_, Some e) -> fold_cols f acc e
  | Agg (_, None) -> acc
  | Case (branches, default) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> fold_cols f (fold_cols f acc c) v)
        acc branches
    in
    Option.fold ~none:acc ~some:(fold_cols f acc) default
  | Func (_, args) -> List.fold_left (fold_cols f) acc args
  | Exists _ | Scalar_subquery _ -> acc
  | In_select (e, _) -> fold_cols f acc e

(** Split a conjunction into its conjuncts (used by the planner to separate
    join predicates from residual filters). *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun acc x -> And (acc, x)) e es)

(** Convenience constructor for a plain table reference. *)
let from_table ?alias ?as_of table = From_table { table; alias; as_of }

(** A bare single-table SELECT * skeleton, used by reenactment. *)
let simple_select ?where ~from items =
  { distinct = false;
    items;
    from;
    where;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    set_ops = [] }
