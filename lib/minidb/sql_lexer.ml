(** Hand-written lexer for the MiniDB SQL dialect.

    Keywords are case-insensitive; identifiers are lowercased. String
    literals use single quotes with [''] as the escape for a quote. *)

type token =
  | Kw of string  (** uppercased keyword *)
  | Ident of string  (** lowercased identifier *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string  (** punctuation / operator *)
  | Eof

type t = { tokens : (token * int) array; mutable pos : int }

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "AS"; "AND"; "OR"; "NOT"; "BETWEEN"; "LIKE"; "IN"; "IS"; "NULL";
    "TRUE"; "FALSE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE";
    "CREATE"; "DROP"; "TABLE"; "DISTINCT"; "ASC"; "DESC"; "COUNT"; "SUM";
    "AVG"; "MIN"; "MAX"; "INT"; "INTEGER"; "FLOAT"; "REAL"; "DOUBLE";
    "TEXT"; "VARCHAR"; "CHAR"; "BOOL"; "BOOLEAN"; "PROVENANCE"; "PRECISION";
    "JOIN"; "LEFT"; "OUTER"; "INNER"; "ON"; "UNION"; "ALL"; "CASE"; "WHEN";
    "THEN"; "ELSE"; "END"; "EXISTS"; "OF"; "INDEX"; "ORDERED"; "EXPLAIN";
    "BEGIN";
    "COMMIT"; "ROLLBACK"; "TRANSACTION"; "WORK" ]

let keyword_set =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.add h k ()) keywords;
  h

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (input : string) : t =
  let n = String.length input in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    let start = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char input.[!i] do incr i done;
      let word = String.sub input start (!i - start) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (Kw upper) start
      else emit (Ident (String.lowercase_ascii word)) start
    end
    else if is_digit c then begin
      while !i < n && is_digit input.[!i] do incr i done;
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
      then begin
        incr i;
        while !i < n && is_digit input.[!i] do incr i done;
        let s = String.sub input start (!i - start) in
        emit (Float_lit (float_of_string s)) start
      end
      else
        emit (Int_lit (int_of_string (String.sub input start (!i - start)))) start
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then Errors.parse_error ~position:start "unterminated string literal";
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      emit (Str_lit (Buffer.contents buf)) start
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub input !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=" | "||") as s) ->
        emit (Sym (if s = "!=" then "<>" else s)) start;
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | '.' | ';' | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
          emit (Sym (String.make 1 c)) start;
          incr i
        | _ ->
          Errors.parse_error ~position:start
            (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit Eof n;
  { tokens = Array.of_list (List.rev !toks); pos = 0 }

let peek (t : t) = fst t.tokens.(t.pos)
let peek_pos (t : t) = snd t.tokens.(t.pos)

let peek2 (t : t) =
  if t.pos + 1 < Array.length t.tokens then fst t.tokens.(t.pos + 1) else Eof

let advance (t : t) =
  if t.pos + 1 < Array.length t.tokens then t.pos <- t.pos + 1

let next (t : t) =
  let tok = peek t in
  advance t;
  tok

let token_to_string = function
  | Kw k -> k
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Sym s -> s
  | Eof -> "<eof>"

let expect (t : t) tok =
  let got = peek t in
  if got = tok then advance t
  else
    Errors.parse_error ~position:(peek_pos t)
      (Printf.sprintf "expected %s, found %s" (token_to_string tok)
         (token_to_string got))

let expect_kw t k = expect t (Kw k)
let expect_sym t s = expect t (Sym s)

let accept (t : t) tok = if peek t = tok then (advance t; true) else false
let accept_kw t k = accept t (Kw k)
let accept_sym t s = accept t (Sym s)
