(** Ambient transaction context for plan evaluation.

    The executor evaluates plan nodes without a [Database.t] in hand, so
    the database publishes the MVCC facts a scan needs here before running
    a statement (and restores the previous values afterwards — statements
    never yield mid-execution, so the dynamic scoping is safe even under
    the cooperative scheduler):

    - [viewer]: the transaction id of the session executing the current
      statement, [0] when it runs autocommit;
    - [snapshot]: the clock bound for committed-version visibility: the
      viewer transaction's begin snapshot, or [max_int] for an autocommit
      statement (which sees everything committed so far);
    - [active]: whether the owning database has any open transaction at
      all. While [false], live scans take the fast [Table.scan] path — a
      database that never uses transactions pays nothing for MVCC. *)

let viewer : int ref = ref 0
let snapshot : int ref = ref max_int
let active : bool ref = ref false
