(** Recursive-descent parser producing [Sql_ast] statements.

    Expression grammar, loosest to tightest binding:
      or_expr        := and_expr { OR and_expr }
      and_expr       := not_expr { AND not_expr }
      not_expr       := NOT not_expr | predicate
      predicate      := additive [ cmp additive | BETWEEN .. AND ..
                        | [NOT] LIKE | IN list-or-select | IS [NOT] NULL ]
      additive       := multiplicative { plus-minus-concat multiplicative }
      multiplicative := unary { times-divide unary }
      unary          := - unary | primary
      primary        := literal | column | aggregate | function call
                        | CASE .. END | EXISTS subquery | parenthesized
                        (expression or scalar subquery)

    FROM clauses are comma-separated join trees:
      table_ref   := primary_ref { [LEFT [OUTER] | INNER] JOIN primary_ref
                      ON or_expr }
      primary_ref := ident [AS OF int] [[AS] alias] | ( table_ref ) *)

open Sql_ast
module L = Sql_lexer

let parse_error lx msg = Errors.parse_error ~position:(L.peek_pos lx) msg

let parse_ident lx =
  match L.next lx with
  | L.Ident s -> s
  | tok ->
    Errors.parse_error ~position:(L.peek_pos lx)
      (Printf.sprintf "expected identifier, found %s" (L.token_to_string tok))

(* A column reference, possibly qualified: name | qual.name *)
let parse_column_ref lx =
  let first = parse_ident lx in
  if L.accept_sym lx "." then
    let second = parse_ident lx in
    (Some first, second)
  else (None, first)

let agg_of_kw = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "AVG" -> Some Avg
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | _ -> None

let rec parse_or lx =
  let lhs = parse_and lx in
  if L.accept_kw lx "OR" then Or (lhs, parse_or lx) else lhs

and parse_and lx =
  let lhs = parse_not lx in
  if L.accept_kw lx "AND" then And (lhs, parse_and lx) else lhs

and parse_not lx =
  if L.accept_kw lx "NOT" then Not (parse_not lx) else parse_predicate lx

and parse_predicate lx =
  let lhs = parse_additive lx in
  match L.peek lx with
  | L.Sym "=" -> L.advance lx; Cmp (Eq, lhs, parse_additive lx)
  | L.Sym "<>" -> L.advance lx; Cmp (Neq, lhs, parse_additive lx)
  | L.Sym "<" -> L.advance lx; Cmp (Lt, lhs, parse_additive lx)
  | L.Sym "<=" -> L.advance lx; Cmp (Le, lhs, parse_additive lx)
  | L.Sym ">" -> L.advance lx; Cmp (Gt, lhs, parse_additive lx)
  | L.Sym ">=" -> L.advance lx; Cmp (Ge, lhs, parse_additive lx)
  | L.Kw "BETWEEN" ->
    L.advance lx;
    let lo = parse_additive lx in
    L.expect_kw lx "AND";
    let hi = parse_additive lx in
    Between (lhs, lo, hi)
  | L.Kw "LIKE" ->
    L.advance lx;
    (match L.next lx with
    | L.Str_lit pat -> Like (lhs, pat)
    | _ -> parse_error lx "LIKE expects a string literal pattern")
  | L.Kw "NOT" when L.peek2 lx = L.Kw "LIKE" ->
    L.advance lx;
    L.advance lx;
    (match L.next lx with
    | L.Str_lit pat -> Not_like (lhs, pat)
    | _ -> parse_error lx "NOT LIKE expects a string literal pattern")
  | L.Kw "IN" ->
    L.advance lx;
    L.expect_sym lx "(";
    if L.peek lx = L.Kw "SELECT" then begin
      L.advance lx;
      let sub = parse_select_body lx in
      L.expect_sym lx ")";
      In_select (lhs, sub)
    end
    else begin
      let rec items acc =
        let e = parse_or lx in
        if L.accept_sym lx "," then items (e :: acc)
        else begin
          L.expect_sym lx ")";
          List.rev (e :: acc)
        end
      in
      In_list (lhs, items [])
    end
  | L.Kw "IS" ->
    L.advance lx;
    if L.accept_kw lx "NOT" then begin
      L.expect_kw lx "NULL";
      Is_not_null lhs
    end
    else begin
      L.expect_kw lx "NULL";
      Is_null lhs
    end
  | _ -> lhs

and parse_additive lx =
  let rec go lhs =
    match L.peek lx with
    | L.Sym "+" -> L.advance lx; go (Arith (Add, lhs, parse_multiplicative lx))
    | L.Sym "-" -> L.advance lx; go (Arith (Sub, lhs, parse_multiplicative lx))
    | L.Sym "||" -> L.advance lx; go (Concat (lhs, parse_multiplicative lx))
    | _ -> lhs
  in
  go (parse_multiplicative lx)

and parse_multiplicative lx =
  let rec go lhs =
    match L.peek lx with
    | L.Sym "*" -> L.advance lx; go (Arith (Mul, lhs, parse_unary lx))
    | L.Sym "/" -> L.advance lx; go (Arith (Div, lhs, parse_unary lx))
    | _ -> lhs
  in
  go (parse_unary lx)

and parse_unary lx =
  if L.accept_sym lx "-" then Neg (parse_unary lx) else parse_primary lx

and parse_primary lx =
  match L.peek lx with
  | L.Int_lit i -> L.advance lx; Const (Value.Int i)
  | L.Float_lit f -> L.advance lx; Const (Value.Float f)
  | L.Str_lit s -> L.advance lx; Const (Value.Str s)
  | L.Kw "NULL" -> L.advance lx; Const Value.Null
  | L.Kw "TRUE" -> L.advance lx; Const (Value.Bool true)
  | L.Kw "FALSE" -> L.advance lx; Const (Value.Bool false)
  | L.Sym "(" ->
    L.advance lx;
    if L.peek lx = L.Kw "SELECT" then begin
      L.advance lx;
      let sub = parse_select_body lx in
      L.expect_sym lx ")";
      Scalar_subquery sub
    end
    else begin
      let e = parse_or lx in
      L.expect_sym lx ")";
      e
    end
  | L.Kw "CASE" ->
    L.advance lx;
    let rec branches acc =
      if L.accept_kw lx "WHEN" then begin
        let c = parse_or lx in
        L.expect_kw lx "THEN";
        let v = parse_or lx in
        branches ((c, v) :: acc)
      end
      else List.rev acc
    in
    let branches = branches [] in
    if branches = [] then parse_error lx "CASE requires at least one WHEN";
    let default = if L.accept_kw lx "ELSE" then Some (parse_or lx) else None in
    L.expect_kw lx "END";
    Case (branches, default)
  | L.Kw "EXISTS" ->
    L.advance lx;
    L.expect_sym lx "(";
    L.expect_kw lx "SELECT";
    let sub = parse_select_body lx in
    L.expect_sym lx ")";
    Exists sub
  | L.Kw kw when agg_of_kw kw <> None ->
    let fn = Option.get (agg_of_kw kw) in
    L.advance lx;
    L.expect_sym lx "(";
    if fn = Count && L.accept_sym lx "*" then begin
      L.expect_sym lx ")";
      Agg (Count_star, None)
    end
    else begin
      let arg = parse_or lx in
      L.expect_sym lx ")";
      Agg (fn, Some arg)
    end
  | L.Ident name when L.peek2 lx = L.Sym "(" ->
    (* scalar function call *)
    L.advance lx;
    L.advance lx;
    let rec args acc =
      if L.accept_sym lx ")" then List.rev acc
      else begin
        let e = parse_or lx in
        if L.accept_sym lx "," then args (e :: acc)
        else begin
          L.expect_sym lx ")";
          List.rev (e :: acc)
        end
      end
    in
    Func (name, args [])
  | L.Ident _ ->
    let q, n = parse_column_ref lx in
    Col (q, n)
  | tok ->
    parse_error lx
      (Printf.sprintf "unexpected token %s in expression" (L.token_to_string tok))

and parse_select_item lx =
  if L.accept_sym lx "*" then Star
  else begin
    let e = parse_or lx in
    if L.accept_kw lx "AS" then Item (e, Some (parse_ident lx))
    else
      match L.peek lx with
      | L.Ident alias -> L.advance lx; Item (e, Some alias)
      | _ -> Item (e, None)
  end

(* primary_ref := ident [AS OF int] [[AS] alias] | ( table_ref ) *)
and parse_primary_ref lx =
  if L.accept_sym lx "(" then begin
    let item = parse_table_ref lx in
    L.expect_sym lx ")";
    item
  end
  else begin
    let table = parse_ident lx in
    (* "AS OF n" vs "AS alias": decide on the token after AS *)
    let as_of, saw_as =
      if L.peek lx = L.Kw "AS" && L.peek2 lx = L.Kw "OF" then begin
        L.advance lx;
        L.advance lx;
        match L.next lx with
        | L.Int_lit n -> (Some n, false)
        | _ -> parse_error lx "AS OF expects an integer timestamp"
      end
      else if L.accept_kw lx "AS" then (None, true)
      else (None, false)
    in
    let alias =
      if saw_as then Some (parse_ident lx)
      else
        match L.peek lx with
        | L.Ident alias -> L.advance lx; Some alias
        | _ -> None
    in
    From_table { table; alias; as_of }
  end

(* table_ref := primary_ref { join-clause } *)
and parse_table_ref lx =
  let rec joins left =
    let kind =
      if L.peek lx = L.Kw "JOIN" then begin
        L.advance lx;
        Some Inner
      end
      else if L.peek lx = L.Kw "INNER" && L.peek2 lx = L.Kw "JOIN" then begin
        L.advance lx;
        L.advance lx;
        Some Inner
      end
      else if L.peek lx = L.Kw "LEFT" then begin
        L.advance lx;
        ignore (L.accept_kw lx "OUTER");
        L.expect_kw lx "JOIN";
        Some Left_outer
      end
      else None
    in
    match kind with
    | None -> left
    | Some kind ->
      let right = parse_primary_ref lx in
      L.expect_kw lx "ON";
      let on = parse_or lx in
      joins (From_join { left; right; kind; on })
  in
  joins (parse_primary_ref lx)

and parse_select_body lx : select =
  let distinct = L.accept_kw lx "DISTINCT" in
  let items = sep_list lx parse_select_item in
  let from =
    if L.accept_kw lx "FROM" then sep_list lx parse_table_ref else []
  in
  let where = if L.accept_kw lx "WHERE" then Some (parse_or lx) else None in
  let group_by =
    if L.accept_kw lx "GROUP" then begin
      L.expect_kw lx "BY";
      sep_list lx parse_column_ref
    end
    else []
  in
  let having = if L.accept_kw lx "HAVING" then Some (parse_or lx) else None in
  (* UNION binds before ORDER BY / LIMIT, which apply to the whole chain *)
  let rec unions acc =
    if L.peek lx = L.Kw "UNION" then begin
      L.advance lx;
      let op = if L.accept_kw lx "ALL" then Union_all else Union_distinct in
      L.expect_kw lx "SELECT";
      let rhs = parse_select_core lx in
      unions ((op, rhs) :: acc)
    end
    else List.rev acc
  in
  let set_ops = unions [] in
  let order_by =
    if L.accept_kw lx "ORDER" then begin
      L.expect_kw lx "BY";
      sep_list lx (fun lx ->
          let e = parse_or lx in
          let dir =
            if L.accept_kw lx "DESC" then Desc
            else begin
              ignore (L.accept_kw lx "ASC");
              Asc
            end
          in
          (e, dir))
    end
    else []
  in
  let limit =
    if L.accept_kw lx "LIMIT" then
      match L.next lx with
      | L.Int_lit i -> Some i
      | _ -> parse_error lx "LIMIT expects an integer"
    else None
  in
  { distinct; items; from; where; group_by; having; order_by; limit; set_ops }

(* a select without trailing UNION/ORDER BY/LIMIT handling: the rhs of a
   set operation *)
and parse_select_core lx : select =
  let distinct = L.accept_kw lx "DISTINCT" in
  let items = sep_list lx parse_select_item in
  let from =
    if L.accept_kw lx "FROM" then sep_list lx parse_table_ref else []
  in
  let where = if L.accept_kw lx "WHERE" then Some (parse_or lx) else None in
  let group_by =
    if L.accept_kw lx "GROUP" then begin
      L.expect_kw lx "BY";
      sep_list lx parse_column_ref
    end
    else []
  in
  let having = if L.accept_kw lx "HAVING" then Some (parse_or lx) else None in
  { distinct; items; from; where; group_by; having; order_by = []; limit = None;
    set_ops = [] }

and sep_list : 'a. L.t -> (L.t -> 'a) -> 'a list =
 fun lx parse_one ->
  let x = parse_one lx in
  if L.accept_sym lx "," then x :: sep_list lx parse_one else [ x ]

let parse_type lx =
  match L.next lx with
  | L.Kw ("INT" | "INTEGER") -> Value.Tint
  | L.Kw ("FLOAT" | "REAL") -> Value.Tfloat
  | L.Kw "DOUBLE" ->
    ignore (L.accept_kw lx "PRECISION");
    Value.Tfloat
  | L.Kw "TEXT" -> Value.Tstr
  | L.Kw ("VARCHAR" | "CHAR") ->
    if L.accept_sym lx "(" then begin
      (match L.next lx with
      | L.Int_lit _ -> ()
      | _ -> parse_error lx "expected length");
      L.expect_sym lx ")"
    end;
    Value.Tstr
  | L.Kw ("BOOL" | "BOOLEAN") -> Value.Tbool
  | tok ->
    parse_error lx
      (Printf.sprintf "expected a type name, found %s" (L.token_to_string tok))

let rec parse_statement_body lx =
  match L.peek lx with
  | L.Kw "SELECT" ->
    L.advance lx;
    Select (parse_select_body lx)
  | L.Kw "PROVENANCE" ->
    L.advance lx;
    L.expect_kw lx "SELECT";
    Provenance (parse_select_body lx)
  | L.Kw "EXPLAIN" ->
    L.advance lx;
    Explain (parse_statement_body lx)
  | L.Kw "BEGIN" ->
    L.advance lx;
    ignore (L.accept_kw lx "TRANSACTION" || L.accept_kw lx "WORK");
    Begin_tx
  | L.Kw "COMMIT" ->
    L.advance lx;
    ignore (L.accept_kw lx "TRANSACTION" || L.accept_kw lx "WORK");
    Commit_tx
  | L.Kw "ROLLBACK" ->
    L.advance lx;
    ignore (L.accept_kw lx "TRANSACTION" || L.accept_kw lx "WORK");
    Rollback_tx
  | L.Kw "INSERT" ->
    L.advance lx;
    L.expect_kw lx "INTO";
    let table = parse_ident lx in
    let columns =
      if L.peek lx = L.Sym "(" then begin
        L.advance lx;
        let cols = sep_list lx parse_ident in
        L.expect_sym lx ")";
        Some cols
      end
      else None
    in
    if L.accept_kw lx "VALUES" then begin
      let parse_row lx =
        L.expect_sym lx "(";
        let row = sep_list lx parse_or in
        L.expect_sym lx ")";
        row
      in
      let rows = sep_list lx parse_row in
      Insert { table; columns; source = Values rows }
    end
    else begin
      L.expect_kw lx "SELECT";
      Insert { table; columns; source = Query (parse_select_body lx) }
    end
  | L.Kw "UPDATE" ->
    L.advance lx;
    let table = parse_ident lx in
    L.expect_kw lx "SET";
    let parse_set lx =
      let col = parse_ident lx in
      L.expect_sym lx "=";
      (col, parse_or lx)
    in
    let sets = sep_list lx parse_set in
    let where = if L.accept_kw lx "WHERE" then Some (parse_or lx) else None in
    Update { table; sets; where }
  | L.Kw "DELETE" ->
    L.advance lx;
    L.expect_kw lx "FROM";
    let table = parse_ident lx in
    let where = if L.accept_kw lx "WHERE" then Some (parse_or lx) else None in
    Delete { table; where }
  | L.Kw "CREATE" when L.peek2 lx = L.Kw "TABLE" ->
    L.advance lx;
    L.advance lx;
    let table = parse_ident lx in
    L.expect_sym lx "(";
    let parse_col lx =
      let name = parse_ident lx in
      let ty = parse_type lx in
      (name, ty)
    in
    let columns = sep_list lx parse_col in
    L.expect_sym lx ")";
    Create_table { table; columns }
  | L.Kw "CREATE" when L.peek2 lx = L.Kw "INDEX" || L.peek2 lx = L.Kw "ORDERED"
    ->
    L.advance lx;
    let ordered = L.accept_kw lx "ORDERED" in
    L.expect_kw lx "INDEX";
    let index = parse_ident lx in
    L.expect_kw lx "ON";
    let table = parse_ident lx in
    L.expect_sym lx "(";
    let column = parse_ident lx in
    L.expect_sym lx ")";
    Create_index { index; table; column; ordered }
  | L.Kw "DROP" when L.peek2 lx = L.Kw "TABLE" ->
    L.advance lx;
    L.advance lx;
    Drop_table (parse_ident lx)
  | L.Kw "DROP" when L.peek2 lx = L.Kw "INDEX" ->
    L.advance lx;
    L.advance lx;
    Drop_index (parse_ident lx)
  | tok ->
    parse_error lx
      (Printf.sprintf "expected a statement, found %s" (L.token_to_string tok))

(** Parse a single SQL statement (a trailing semicolon is allowed). *)
let parse (input : string) : statement =
  let lx = L.tokenize input in
  let stmt = parse_statement_body lx in
  ignore (L.accept_sym lx ";");
  (match L.peek lx with
  | L.Eof -> ()
  | tok ->
    parse_error lx
      (Printf.sprintf "trailing input: %s" (L.token_to_string tok)));
  stmt

(** Parse a semicolon-separated script into a list of statements. *)
let parse_script (input : string) : statement list =
  let lx = L.tokenize input in
  let rec go acc =
    match L.peek lx with
    | L.Eof -> List.rev acc
    | _ ->
      let stmt = parse_statement_body lx in
      ignore (L.accept_sym lx ";");
      go (stmt :: acc)
  in
  go []
