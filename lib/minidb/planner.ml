(** Translation of SELECT ASTs into physical plans.

    The planner is deliberately simple but covers what a realistic workload
    needs:
    - comma joins and explicit [JOIN .. ON] become hash joins when
      column-equality conjuncts are available (left-outer joins pad
      unmatched rows with NULLs);
    - equality predicates against indexed columns become index scans;
    - [AS OF] table references scan the version history snapshot;
    - aggregates in the projection/HAVING are collected into slots and the
      surrounding expressions rewritten to reference them;
    - UNION [ALL] concatenates compatible bodies;
    - uncorrelated subqueries (EXISTS / IN / scalar) are evaluated once at
      plan time through a caller-supplied evaluator and replaced by
      constants; their provenance joins every result row's annotation
      (a conservative over-approximation, which is what packaging needs). *)

open Sql_ast

type node = { schema : Schema.t; op : op }

and op =
  | Scan of { table : Table.t; binding : string; as_of : int option }
  | Index_scan of {
      table : Table.t;
      binding : string;
      index : Table.index;
      key : Eval_expr.bound;  (** constant expression, bound to [||] *)
      sel : float;  (** static selectivity of the absorbed conjunct *)
      as_of : int option;
    }
  | Range_scan of {
      table : Table.t;
      binding : string;
      oindex : Table.ordered_index;
      lo : (Value.t * bool) option;  (** lower bound (value, inclusive) *)
      hi : (Value.t * bool) option;
      sel : float;  (** static selectivity of the absorbed conjuncts *)
      as_of : int option;
    }
  | Filter of Eval_expr.bound * float * node
      (** predicate, static selectivity estimate, input *)
  | Project of (Eval_expr.bound * Schema.column) list * node
  | Hash_join of {
      left : node;
      right : node;
      left_keys : Eval_expr.bound list;
      right_keys : Eval_expr.bound list;
      outer : bool;  (** left outer: pad unmatched left rows *)
      build_left : bool;
          (** cost-based build-side choice: hash the left input and probe
              with the right (emitting probe-major order) instead of the
              default build-right *)
    }
  | Nested_loop of {
      left : node;
      right : node;
      pred : Eval_expr.bound option;
      outer : bool;
    }
  | Aggregate of {
      input : node;
      group : (Eval_expr.bound * Schema.column) list;
      aggs : (agg_fn * Eval_expr.bound option) list;
    }
  | Sort of (Eval_expr.bound * order_dir) list * node
  | Limit of int * node
  | Distinct of node
  | Union of node * node  (** bag union; wrap in Distinct for UNION *)
  | Annotate of Annotation.t * node
      (** multiply every row's annotation (subquery provenance) *)

(** Evaluator for uncorrelated subqueries: run a plan, return its rows and
    the sum of their annotations. Supplied by {!Database} to avoid a
    dependency cycle with {!Executor}. *)
type subquery_eval = node -> Value.t array list * Annotation.t

(* ------------------------------------------------------------------ *)
(* Type inference for output schemas.                                  *)

let rec infer_type (schema : Schema.t) (e : expr) : Value.ty =
  match e with
  | Const v -> Option.value (Value.type_of v) ~default:Value.Tstr
  | Col (q, n) -> schema.(Schema.resolve schema ?qualifier:q n).Schema.ty
  | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Is_not_null _ | Between _
  | Like _ | Not_like _ | In_list _ | In_select _ | Exists _ ->
    Value.Tbool
  | Arith (Div, _, _) -> Value.Tfloat
  | Arith (_, a, b) -> (
    match (infer_type schema a, infer_type schema b) with
    | Value.Tint, Value.Tint -> Value.Tint
    | _ -> Value.Tfloat)
  | Neg a -> infer_type schema a
  | Concat _ -> Value.Tstr
  | Agg (Count_star, _) | Agg (Count, _) -> Value.Tint
  | Agg (Avg, _) -> Value.Tfloat
  | Agg ((Sum | Min | Max), Some a) -> infer_type schema a
  | Agg ((Sum | Min | Max), None) ->
    Errors.unsupported "aggregate other than COUNT requires an argument"
  | Case ((_, v) :: _, _) -> infer_type schema v
  | Case ([], _) -> Value.Tstr
  | Func (name, args) -> (
    match name with
    | "lower" | "upper" | "substr" | "substring" | "trim" | "replace" ->
      Value.Tstr
    | "length" -> Value.Tint
    | "abs" | "round" | "coalesce" -> (
      match args with
      | a :: _ -> infer_type schema a
      | [] -> Value.Tstr)
    | _ -> Value.Tstr)
  | Scalar_subquery _ -> Value.Tstr (* replaced by a constant before use *)

(* ------------------------------------------------------------------ *)
(* Conjunct classification.                                            *)

let resolvable (schema : Schema.t) (e : expr) =
  match
    Sql_ast.fold_cols
      (fun () q n -> ignore (Schema.resolve schema ?qualifier:q n))
      () e
  with
  | () -> true
  | exception Errors.Db_error (Errors.Unknown_column _) -> false

let has_cols (e : expr) = Sql_ast.fold_cols (fun _ _ _ -> true) false e

(* An equi-join conjunct usable between [left] and [right]: col = col with
   one side in each schema. Returns (left_col_expr, right_col_expr). *)
let equi_join_key (left : Schema.t) (right : Schema.t) = function
  | Cmp (Eq, (Col _ as a), (Col _ as b)) ->
    if resolvable left a && resolvable right b then Some (a, b)
    else if resolvable left b && resolvable right a then Some (b, a)
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cost model.

   Two kinds of decisions, with different stability requirements:

   - Access-path choice (full / hash / range scan of one table) may use
     the *live* statistics — bucket counts, range-entry counts — because
     every access path emits the same rows in the same ascending-rid
     order, so the choice can never perturb result bytes even when a
     replay re-plans over a sliced (smaller) database.

   - Join decisions (build side, join order) change output row order, so
     audit and replay must make them identically. They therefore use only
     *replay-stable* inputs: [Table.stable_row_count] (the audit-time row
     count pinned by package restore, advanced by the local DML delta)
     and static textbook selectivities keyed on predicate shape — never
     on data. *)

let conjunct_selectivity (c : expr) : float =
  match c with
  | Cmp (Eq, _, _) -> 0.05
  | Cmp (Neq, _, _) -> 0.9
  | Cmp ((Lt | Le | Gt | Ge), _, _) -> 0.3
  | Between _ -> 0.25
  | Like _ | Not_like _ -> 0.25
  | Is_null _ -> 0.1
  | Is_not_null _ -> 0.9
  | In_list _ -> 0.2
  | _ -> 0.5

let selectivity_of_conjuncts (conjs : expr list) : float =
  List.fold_left (fun acc c -> acc *. conjunct_selectivity c) 1.0 conjs

(* A constant-foldable expression's value, for range bounds; [None] when it
   references columns, fails to fold, or folds to NULL (a NULL bound never
   matches anything and would confuse bound comparison). *)
let const_value (e : expr) : Value.t option =
  if has_cols e then None
  else
    match Eval_expr.eval_const e with
    | v -> if Value.is_null v then None else Some v
    | exception _ -> None

(* The literal prefix of a LIKE pattern — the characters before the first
   wildcard. Every matching string lies in [prefix, successor(prefix)).
   [like_match] is case-sensitive, so the bounds are sound. *)
let like_prefix (pat : string) : string option =
  let b = Buffer.create 8 in
  (try
     String.iter
       (fun c -> if c = '%' || c = '_' then raise Exit else Buffer.add_char b c)
       pat
   with Exit -> ());
  let p = Buffer.contents b in
  if p = "" then None else Some p

(* Smallest string ordered after every string prefixed by [s]; [None] when
   no such string exists (all bytes 0xff). *)
let string_successor (s : string) : string option =
  let rec go i =
    if i < 0 then None
    else if s.[i] = '\xff' then go (i - 1)
    else Some (String.sub s 0 i ^ String.make 1 (Char.chr (Char.code s.[i] + 1)))
  in
  go (String.length s - 1)

(* Intersect range bounds, keeping the tighter one. Bounds whose values are
   mutually incomparable (mixed non-numeric types) leave the current bound
   in place. *)
let tighten_lo cur ((v, incl) as b) =
  match cur with
  | None -> Some b
  | Some (v0, incl0) -> (
    match Value.compare_total v v0 with
    | c -> if c > 0 || (c = 0 && incl0 && not incl) then Some b else cur
    | exception _ -> cur)

let tighten_hi cur ((v, incl) as b) =
  match cur with
  | None -> Some b
  | Some (v0, incl0) -> (
    match Value.compare_total v v0 with
    | c -> if c < 0 || (c = 0 && incl0 && not incl) then Some b else cur
    | exception _ -> cur)

(** Replay-stable output-cardinality estimate of a plan node. *)
let rec est_rows (n : node) : float =
  let base table = Float.max 1.0 (float_of_int (Table.stable_row_count table)) in
  match n.op with
  | Scan { table; _ } -> base table
  | Index_scan { table; sel; _ } -> Float.max 1.0 (sel *. base table)
  | Range_scan { table; sel; _ } -> Float.max 1.0 (sel *. base table)
  | Filter (_, sel, x) -> Float.max 1.0 (sel *. est_rows x)
  | Project (_, x) | Sort (_, x) | Annotate (_, x) -> est_rows x
  | Limit (l, x) -> Float.min (float_of_int l) (est_rows x)
  | Distinct x -> Float.max 1.0 (0.5 *. est_rows x)
  | Hash_join { left; right; outer; _ } ->
    let l = est_rows left and r = est_rows right in
    let e = 0.1 *. l *. r in
    if outer then Float.max l e else Float.max 1.0 e
  | Nested_loop { left; right; pred; outer } ->
    let l = est_rows left and r = est_rows right in
    let e = match pred with None -> l *. r | Some _ -> 0.3 *. l *. r in
    if outer then Float.max l e else Float.max 1.0 e
  | Aggregate { group = []; _ } -> 1.0
  | Aggregate { input; _ } -> Float.max 1.0 (0.3 *. est_rows input)
  | Union (a, b) -> est_rows a +. est_rows b

(** Estimated total cost of evaluating a plan (arbitrary work units:
    roughly rows touched), surfaced through EXPLAIN and the
    [db.plan.cost] span attribute. *)
let rec cost (n : node) : float =
  match n.op with
  | Scan { table; _ } ->
    Float.max 1.0 (float_of_int (Table.stable_row_count table))
  | Index_scan _ -> est_rows n +. 1.0
  | Range_scan _ -> est_rows n +. 1.0
  | Filter (_, _, x) -> cost x
  | Project (_, x) -> cost x +. est_rows x
  | Sort (_, x) ->
    let e = est_rows x in
    cost x +. (e *. Float.max 1.0 (Float.log2 (Float.max 2.0 e)))
  | Limit (_, x) | Annotate (_, x) -> cost x
  | Distinct x | Aggregate { input = x; _ } -> cost x +. est_rows x
  | Hash_join { left; right; _ } ->
    cost left +. cost right +. est_rows left +. est_rows right
  | Nested_loop { left; right; _ } ->
    cost left +. cost right +. (est_rows left *. est_rows right)
  | Union (a, b) -> cost a +. cost b

(* ------------------------------------------------------------------ *)
(* Aggregate slot collection and rewriting.                            *)

let slot_name i = Printf.sprintf "__agg%d" i

(* Replace every aggregate call in [e] with a reference to a slot column,
   extending [slots] as needed (shared slots for syntactically equal
   calls). *)
let rec rewrite_aggs slots (e : expr) : expr =
  match e with
  | Agg (fn, arg) ->
    let key = (fn, Option.map Pretty.expr_to_string arg) in
    let idx =
      match List.find_index (fun (k, _) -> k = key) !slots with
      | Some i -> i
      | None ->
        slots := !slots @ [ (key, (fn, arg)) ];
        List.length !slots - 1
    in
    Col (None, slot_name idx)
  | Const _ | Col _ | Exists _ | Scalar_subquery _ -> e
  | Cmp (op, a, b) -> Cmp (op, rewrite_aggs slots a, rewrite_aggs slots b)
  | And (a, b) -> And (rewrite_aggs slots a, rewrite_aggs slots b)
  | Or (a, b) -> Or (rewrite_aggs slots a, rewrite_aggs slots b)
  | Not a -> Not (rewrite_aggs slots a)
  | Is_null a -> Is_null (rewrite_aggs slots a)
  | Is_not_null a -> Is_not_null (rewrite_aggs slots a)
  | Between (a, b, c) ->
    Between (rewrite_aggs slots a, rewrite_aggs slots b, rewrite_aggs slots c)
  | Like (a, p) -> Like (rewrite_aggs slots a, p)
  | Not_like (a, p) -> Not_like (rewrite_aggs slots a, p)
  | In_list (a, es) ->
    In_list (rewrite_aggs slots a, List.map (rewrite_aggs slots) es)
  | In_select (a, sub) -> In_select (rewrite_aggs slots a, sub)
  | Arith (op, a, b) -> Arith (op, rewrite_aggs slots a, rewrite_aggs slots b)
  | Neg a -> Neg (rewrite_aggs slots a)
  | Concat (a, b) -> Concat (rewrite_aggs slots a, rewrite_aggs slots b)
  | Case (branches, default) ->
    Case
      ( List.map
          (fun (c, v) -> (rewrite_aggs slots c, rewrite_aggs slots v))
          branches,
        Option.map (rewrite_aggs slots) default )
  | Func (name, args) -> Func (name, List.map (rewrite_aggs slots) args)

(* ------------------------------------------------------------------ *)
(* Planning context.                                                   *)

type ctx = {
  catalog : Catalog.t;
  eval_subquery : subquery_eval option;
  (* annotations contributed by subqueries evaluated while planning the
     current body; multiplied into the body's output rows *)
  mutable extra_ann : Annotation.t;
}

(* ------------------------------------------------------------------ *)
(* Subquery resolution: replace uncorrelated subqueries by constants,
   accumulating their provenance into the context.                     *)

let rec resolve_subqueries (ctx : ctx) (e : expr) : expr =
  let go = resolve_subqueries ctx in
  match e with
  | Const _ | Col _ -> e
  | Cmp (op, a, b) -> Cmp (op, go a, go b)
  | And (a, b) -> And (go a, go b)
  | Or (a, b) -> Or (go a, go b)
  | Not a -> Not (go a)
  | Is_null a -> Is_null (go a)
  | Is_not_null a -> Is_not_null (go a)
  | Between (a, b, c) -> Between (go a, go b, go c)
  | Like (a, p) -> Like (go a, p)
  | Not_like (a, p) -> Not_like (go a, p)
  | In_list (a, es) -> In_list (go a, List.map go es)
  | Arith (op, a, b) -> Arith (op, go a, go b)
  | Neg a -> Neg (go a)
  | Concat (a, b) -> Concat (go a, go b)
  | Agg (fn, arg) -> Agg (fn, Option.map go arg)
  | Case (branches, default) ->
    Case (List.map (fun (c, v) -> (go c, go v)) branches, Option.map go default)
  | Func (name, args) -> Func (name, List.map go args)
  | Exists sub ->
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    Const (Value.Bool (rows <> []))
  | In_select (a, sub) ->
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    let consts =
      List.map
        (fun (row : Value.t array) ->
          if Array.length row <> 1 then
            Errors.unsupported "IN subquery must return a single column"
          else Const row.(0))
        rows
    in
    if consts = [] then
      (* IN over the empty set is FALSE even for a NULL lhs *)
      Const (Value.Bool false)
    else In_list (go a, consts)
  | Scalar_subquery sub -> (
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    match rows with
    | [] -> Const Value.Null
    | [ row ] when Array.length row = 1 -> Const row.(0)
    | [ _ ] -> Errors.unsupported "scalar subquery must return a single column"
    | _ -> Errors.unsupported "scalar subquery returned more than one row")

and run_subquery ctx (sub : select) : Value.t array list * Annotation.t =
  match ctx.eval_subquery with
  | None -> Errors.unsupported "subqueries require an executor"
  | Some eval ->
    let node = plan_select_ctx ctx sub in
    eval node

(* ------------------------------------------------------------------ *)
(* FROM clause and join-tree construction.                             *)

and scan_node (ctx : ctx) ~table ~alias ~as_of : node =
  let tbl = Catalog.find ctx.catalog table in
  let binding = Option.value alias ~default:table in
  let schema = Schema.with_qualifier binding (Table.schema tbl) in
  { schema; op = Scan { table = tbl; binding; as_of } }

(* Cost-based access-path selection for one base-table scan: choose among
   the full scan, hash-index equality probes, and ordered-index range scans
   built from the [<, <=, >, >=, =, BETWEEN, prefix-LIKE] conjuncts over
   indexed columns. Costs use *live* statistics (row count, bucket counts,
   range-entry counts) — safe because every access path emits the same rows
   in the same ascending-rid order, so the choice can never perturb result
   bytes. Absorbed conjuncts are removed from the residual; LIKE always
   stays residual (its bounds only cover the literal prefix). *)
and apply_index (ctx : ctx) (scan : node) (conjs : expr list) :
    node * expr list =
  ignore ctx;
  match scan.op with
  | Scan { table; binding; as_of } ->
    let conjs_arr = Array.of_list conjs in
    let full_cost = Float.max 1.0 (float_of_int (Table.row_count table)) in
    let col_pos = function
      | Col (q, n) -> Schema.find_opt scan.schema ?qualifier:q n
      | _ -> None
    in
    (* hash-index equality probes: cost = rows / distinct buckets *)
    let hash_candidates = ref [] in
    Array.iteri
      (fun i c ->
        match c with
        | Cmp (Eq, a, b) ->
          let try_side col_e const_e =
            match col_pos col_e with
            | Some pos when not (has_cols const_e) -> (
              match Table.index_on table ~column:pos with
              | Some index ->
                let distinct =
                  match Table.distinct_on table ~column:pos with
                  | Some d when d > 0 -> float_of_int d
                  | _ -> 1.0
                in
                let node =
                  { schema = scan.schema;
                    op =
                      Index_scan
                        { table;
                          binding;
                          index;
                          key = Eval_expr.bind [||] const_e;
                          sel = conjunct_selectivity c;
                          as_of } }
                in
                hash_candidates :=
                  ((full_cost /. distinct) +. 1.0, node, [ i ])
                  :: !hash_candidates;
                true
              | None -> false)
            | _ -> false
          in
          if not (try_side a b) then ignore (try_side b a)
        | _ -> ())
      conjs_arr;
    (* ordered-index range scans: tighten bounds across all usable
       conjuncts on the indexed column; cost = entries within bounds *)
    let range_candidates = ref [] in
    Array.iteri
      (fun pos (col : Schema.column) ->
        match Table.ordered_index_on table ~column:pos with
        | None -> ()
        | Some oindex ->
          let compatible v =
            match Value.type_of v with
            | Some ty -> (
              ty = col.Schema.ty
              ||
              match (ty, col.Schema.ty) with
              | (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) ->
                true
              | _ -> false)
            | None -> false
          in
          let const e =
            match const_value e with
            | Some v when compatible v -> Some v
            | _ -> None
          in
          let this_col e =
            match col_pos e with Some p -> p = pos | None -> false
          in
          let lo = ref None and hi = ref None and absorbed = ref [] in
          let absorb_cmp i op v =
            absorbed := i :: !absorbed;
            match op with
            | Lt -> hi := tighten_hi !hi (v, false)
            | Le -> hi := tighten_hi !hi (v, true)
            | Gt -> lo := tighten_lo !lo (v, false)
            | Ge -> lo := tighten_lo !lo (v, true)
            | Eq ->
              lo := tighten_lo !lo (v, true);
              hi := tighten_hi !hi (v, true)
            | Neq -> assert false
          in
          let flip = function
            | Lt -> Gt
            | Le -> Ge
            | Gt -> Lt
            | Ge -> Le
            | (Eq | Neq) as op -> op
          in
          Array.iteri
            (fun i c ->
              match c with
              | Cmp (((Lt | Le | Gt | Ge | Eq) as op), a, b) when this_col a
                -> (
                match const b with
                | Some v -> absorb_cmp i op v
                | None -> ())
              | Cmp (((Lt | Le | Gt | Ge | Eq) as op), a, b) when this_col b
                -> (
                match const a with
                | Some v -> absorb_cmp i (flip op) v
                | None -> ())
              | Between (a, b1, b2) when this_col a -> (
                match (const b1, const b2) with
                | Some v1, Some v2 ->
                  absorbed := i :: !absorbed;
                  lo := tighten_lo !lo (v1, true);
                  hi := tighten_hi !hi (v2, true)
                | _ -> ())
              | Like (a, pat) when this_col a && col.Schema.ty = Value.Tstr
                -> (
                (* bounds only; the pattern itself stays residual *)
                match like_prefix pat with
                | Some p ->
                  lo := tighten_lo !lo (Value.Str p, true);
                  Option.iter
                    (fun s -> hi := tighten_hi !hi (Value.Str s, false))
                    (string_successor p)
                | None -> ())
              | _ -> ())
            conjs_arr;
          if !lo <> None || !hi <> None then begin
            let abs_conjs = List.map (fun i -> conjs_arr.(i)) !absorbed in
            let sel =
              if abs_conjs = [] then 0.5
              else selectivity_of_conjuncts abs_conjs
            in
            let node =
              { schema = scan.schema;
                op =
                  Range_scan
                    { table; binding; oindex; lo = !lo; hi = !hi; sel; as_of }
              }
            in
            let cost =
              float_of_int (Table.range_estimate table oindex ~lo:!lo ~hi:!hi)
              +. 1.0
            in
            range_candidates := (cost, node, !absorbed) :: !range_candidates
          end)
      scan.schema;
    (* cheapest wins; ties prefer hash over range, either over full scan *)
    let best =
      List.fold_left
        (fun best (rank, cand) ->
          let cost, _, _ = cand in
          match best with
          | Some (bcost, brank, _) when bcost < cost || (bcost = cost && brank <= rank)
            ->
            best
          | _ -> Some (cost, rank, cand))
        None
        (List.map (fun c -> (0, c)) !hash_candidates
        @ List.map (fun c -> (1, c)) !range_candidates)
    in
    (match best with
    | Some (_, _, (cost, node, absorbed)) when cost < full_cost ->
      let residual =
        List.filteri (fun i _ -> not (List.mem i absorbed)) conjs
      in
      (node, residual)
    | _ -> (scan, conjs))
  | _ -> (scan, conjs)

(* Apply all conjuncts resolvable in [node]'s schema as a filter; returns
   the filtered node and the still-unresolvable conjuncts. *)
and apply_resolvable_filters (ctx : ctx) node pending =
  let usable, rest = List.partition (resolvable node.schema) pending in
  let node, usable = apply_index ctx node usable in
  match Sql_ast.conjoin usable with
  | None -> (node, rest)
  | Some pred ->
    let bound = Eval_expr.bind node.schema pred in
    ( { schema = node.schema;
        op = Filter (bound, selectivity_of_conjuncts usable, node) },
      rest )

(* Join [acc] with [next] on the given conjuncts; equi conjuncts become
   hash-join keys, the rest a residual filter (inner) or a nested-loop
   predicate (outer). *)
and join_nodes (_ctx : ctx) ~outer acc next conjs : node * expr list =
  let keys, rest =
    List.partition_map
      (fun c ->
        match equi_join_key acc.schema next.schema c with
        | Some (l, r) -> Left (l, r)
        | None -> Right c)
      conjs
  in
  let schema = Schema.append acc.schema next.schema in
  if keys = [] then
    if outer then
      let pred =
        Option.map (Eval_expr.bind schema) (Sql_ast.conjoin rest)
      in
      ({ schema; op = Nested_loop { left = acc; right = next; pred; outer } }, [])
    else
      ({ schema; op = Nested_loop { left = acc; right = next; pred = None; outer } },
       rest)
  else begin
    let left_keys = List.map (fun (l, _) -> Eval_expr.bind acc.schema l) keys in
    let right_keys =
      List.map (fun (_, r) -> Eval_expr.bind next.schema r) keys
    in
    (* Build on the smaller estimated side. Outer joins must build right
       (left rows drive the padding). Estimates are replay-stable, so the
       recorded run and its replay pick the same side — and therefore the
       same output row order. *)
    let build_left = (not outer) && est_rows acc < est_rows next in
    let joined =
      { schema;
        op =
          Hash_join
            { left = acc; right = next; left_keys; right_keys; outer;
              build_left } }
    in
    if outer && rest <> [] then
      (* a residual ON condition cannot be applied after padding; fall
         back to a nested loop with the full predicate *)
      let pred = Eval_expr.bind schema (Option.get (Sql_ast.conjoin (keys_to_exprs keys @ rest))) in
      ({ schema; op = Nested_loop { left = acc; right = next; pred = Some pred; outer } },
       [])
    else (joined, rest)
  end

and keys_to_exprs keys = List.map (fun (l, r) -> Cmp (Eq, l, r)) keys

(* Plan a FROM item, pulling usable conjuncts from [pending]. *)
and plan_from_item (ctx : ctx) (item : from_item) (pending : expr list) :
    node * expr list =
  match item with
  | From_table { table; alias; as_of } ->
    apply_resolvable_filters ctx (scan_node ctx ~table ~alias ~as_of) pending
  | From_join { left; right; kind; on } -> (
    let on_conjs = List.map (resolve_subqueries ctx) (Sql_ast.conjuncts on) in
    match kind with
    | Inner ->
      let lnode, pending = plan_from_item ctx left pending in
      let rnode, pending = plan_from_item ctx right pending in
      let joined, rest =
        join_nodes ctx ~outer:false lnode rnode (on_conjs @ pending)
      in
      apply_resolvable_filters ctx joined rest
    | Left_outer ->
      (* WHERE conjuncts may be pushed to the left (preserved) side but
         never into the right side of an outer join *)
      let lnode, pending = plan_from_item ctx left pending in
      let rnode, _ = plan_from_item ctx right [] in
      let joined, rest = join_nodes ctx ~outer:true lnode rnode on_conjs in
      (match rest with
      | [] -> ()
      | _ -> Errors.unsupported "unresolvable ON condition in outer join");
      (joined, pending))

(* ------------------------------------------------------------------ *)
(* SELECT body planning (everything but ORDER BY / LIMIT / set ops).   *)

and default_item_name i (e : expr) =
  match e with
  | Col (_, n) -> n
  | Agg (fn, _) -> agg_name fn
  | Func (name, _) -> name
  | _ -> Printf.sprintf "column%d" (i + 1)

(* The planned body: pre-projection pipeline plus the projection spec, so
   the caller can choose where to put a Sort. *)
and plan_body (ctx : ctx) (s : select) :
    node * (Eval_expr.bound * Schema.column) list * Schema.t * bool =
  if s.from = [] then Errors.unsupported "SELECT without FROM is not supported";
  let where =
    Option.map
      (fun w -> List.map (resolve_subqueries ctx) (Sql_ast.conjuncts w))
      s.where
  in
  let conjs = Option.value where ~default:[] in
  (* Greedy join order for comma-joins: when every FROM item is a plain
     table with a distinct binding, visit them smallest-estimate first so
     the left-deep tree builds from the cheapest inputs. The estimate is
     replay-stable, so audit and replay order identically. [SELECT *]
     still expands in declaration order via [star_schema]. *)
  let plain_bindings =
    List.filter_map
      (function
        | From_table { table; alias; _ } ->
          Some (String.lowercase_ascii (Option.value alias ~default:table))
        | From_join _ -> None)
      s.from
  in
  let reorderable =
    List.length plain_bindings = List.length s.from
    && List.length s.from > 1
    && List.length (List.sort_uniq String.compare plain_bindings)
       = List.length plain_bindings
    (* LIMIT without a total ORDER BY makes raw row order semantically
       observable (it selects which rows survive): keep syntactic order *)
    && not (s.limit <> None && s.order_by = [])
  in
  let star_schema, from_items =
    if not reorderable then (None, s.from)
    else begin
      let with_est =
        List.map
          (function
            | From_table { table; _ } as it ->
              let tbl = Catalog.find ctx.catalog table in
              (it, Table.stable_row_count tbl)
            | From_join _ -> assert false)
          s.from
      in
      let schema =
        List.fold_left
          (fun acc -> function
            | From_table { table; alias; _ } ->
              let tbl = Catalog.find ctx.catalog table in
              Schema.append acc
                (Schema.with_qualifier
                   (Option.value alias ~default:table)
                   (Table.schema tbl))
            | From_join _ -> assert false)
          [||] s.from
      in
      ( Some schema,
        List.map fst
          (List.stable_sort (fun (_, a) (_, b) -> compare a b) with_est) )
    end
  in
  let first, rest_items =
    match from_items with x :: xs -> (x, xs) | [] -> assert false
  in
  let node, conjs = plan_from_item ctx first conjs in
  let node, conjs =
    List.fold_left
      (fun (acc, pending) item ->
        let next, pending = plan_from_item ctx item pending in
        let joined, pending = join_nodes ctx ~outer:false acc next pending in
        apply_resolvable_filters ctx joined pending)
      (node, conjs) rest_items
  in
  (* conjuncts held back while planning (e.g. WHERE predicates over the
     padded side of an outer join) apply above the finished join tree *)
  let node, conjs = apply_resolvable_filters ctx node conjs in
  (match conjs with
  | [] -> ()
  | c :: _ ->
    (* force a resolution error naming the offending column *)
    ignore (Eval_expr.bind node.schema c));
  (* aggregation *)
  let items =
    List.concat_map
      (function
        | Star ->
          Array.to_list (Option.value star_schema ~default:node.schema)
          |> List.map (fun (c : Schema.column) ->
                 Item (Col (c.qualifier, c.name), None))
        | Item (e, a) -> [ Item (resolve_subqueries ctx e, a) ])
      s.items
  in
  let having = Option.map (resolve_subqueries ctx) s.having in
  let needs_agg =
    s.group_by <> []
    || List.exists (function Item (e, _) -> contains_agg e | Star -> false) items
    || Option.fold ~none:false ~some:contains_agg having
  in
  let node, items, having =
    if not needs_agg then (node, items, having)
    else begin
      let slots = ref [] in
      let items' =
        List.map
          (function
            | Star -> assert false
            | Item (e, a) -> Item (rewrite_aggs slots e, a))
          items
      in
      let having' = Option.map (rewrite_aggs slots) having in
      let group =
        List.map
          (fun (q, n) ->
            let idx = Schema.resolve node.schema ?qualifier:q n in
            (Eval_expr.Bcol idx, node.schema.(idx)))
          s.group_by
      in
      let aggs =
        List.map
          (fun (_, (fn, arg)) ->
            (fn, Option.map (Eval_expr.bind node.schema) arg))
          !slots
      in
      let agg_schema =
        Array.of_list
          (List.map snd group
          @ List.mapi
              (fun i (_, (fn, arg)) ->
                Schema.column (slot_name i)
                  (infer_type node.schema (Agg (fn, arg))))
              !slots)
      in
      ( { schema = agg_schema; op = Aggregate { input = node; group; aggs } },
        items',
        having' )
    end
  in
  let node =
    match having with
    | None -> node
    | Some h ->
      { schema = node.schema;
        op = Filter (Eval_expr.bind node.schema h, 0.5, node) }
  in
  let proj_items =
    List.mapi
      (fun i item ->
        match item with
        | Star -> assert false
        | Item (e, alias) ->
          let name =
            match alias with Some a -> a | None -> default_item_name i e
          in
          let col = Schema.column name (infer_type node.schema e) in
          (Eval_expr.bind node.schema e, col))
      items
  in
  let proj_schema = Array.of_list (List.map snd proj_items) in
  (node, proj_items, proj_schema, s.distinct)

(* Assemble a body into a finished pipeline, optionally preparing for a
   sort below the projection when ORDER BY references dropped columns. *)
and assemble (ctx : ctx) (s : select)
    ((pre, proj_items, proj_schema, distinct) :
      node * (Eval_expr.bound * Schema.column) list * Schema.t * bool)
    ~with_order : node =
  let order_by =
    if with_order then
      List.map (fun (e, d) -> (resolve_subqueries ctx e, d)) s.order_by
    else []
  in
  let order_above =
    order_by <> [] && List.for_all (fun (e, _) -> resolvable proj_schema e) order_by
  in
  let sort_keys schema =
    List.map (fun (e, dir) -> (Eval_expr.bind schema e, dir)) order_by
  in
  let base =
    if order_by = [] || order_above then pre
    else { schema = pre.schema; op = Sort (sort_keys pre.schema, pre) }
  in
  let node = { schema = proj_schema; op = Project (proj_items, base) } in
  let node = if distinct then { schema = node.schema; op = Distinct node } else node in
  let node =
    if order_above then
      { schema = node.schema; op = Sort (sort_keys node.schema, node) }
    else node
  in
  match if with_order then s.limit else None with
  | None -> node
  | Some l -> { schema = node.schema; op = Limit (l, node) }

and plan_select_ctx (ctx : ctx) (s : select) : node =
  (* each body gets its own annotation scope *)
  let saved = ctx.extra_ann in
  ctx.extra_ann <- Annotation.one;
  let wrap node =
    let node =
      if Annotation.equal ctx.extra_ann Annotation.one then node
      else { schema = node.schema; op = Annotate (ctx.extra_ann, node) }
    in
    ctx.extra_ann <- saved;
    node
  in
  match s.set_ops with
  | [] -> wrap (assemble ctx s (plan_body ctx s) ~with_order:true)
  | ops ->
    let first = assemble ctx s (plan_body ctx s) ~with_order:false in
    let combined =
      List.fold_left
        (fun acc (op, rhs) ->
          let rhs_node = assemble ctx rhs (plan_body ctx rhs) ~with_order:false in
          if Schema.arity rhs_node.schema <> Schema.arity acc.schema then
            Errors.unsupported "UNION branches must have the same arity";
          let u = { schema = acc.schema; op = Union (acc, rhs_node) } in
          match op with
          | Union_all -> u
          | Union_distinct -> { schema = u.schema; op = Distinct u })
        first ops
    in
    (* ORDER BY / LIMIT apply to the whole chain, over the output schema *)
    let node =
      if s.order_by = [] then combined
      else
        let keys =
          List.map
            (fun (e, d) ->
              (Eval_expr.bind combined.schema (resolve_subqueries ctx e), d))
            s.order_by
        in
        { schema = combined.schema; op = Sort (keys, combined) }
    in
    wrap
      (match s.limit with
      | None -> node
      | Some l -> { schema = node.schema; op = Limit (l, node) })

(** Plan a SELECT. [eval_subquery] is required when the statement contains
    subqueries. *)
let plan_select (catalog : Catalog.t) ?eval_subquery (s : select) : node =
  Ldv_obs.counter "db.plans";
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Plan @@ fun () ->
  Ldv_obs.with_span "db.plan" @@ fun () ->
  let node =
    plan_select_ctx { catalog; eval_subquery; extra_ann = Annotation.one } s
  in
  Ldv_obs.add_attr "db.plan.cost" (Printf.sprintf "%.1f" (cost node));
  Ldv_obs.add_attr "db.plan.est_rows" (Printf.sprintf "%.1f" (est_rows node));
  node

(** Resolve the uncorrelated subqueries of a standalone expression (an
    UPDATE/DELETE WHERE clause); returns the rewritten expression and the
    provenance annotation the subqueries contributed. *)
let resolve_expr (catalog : Catalog.t) ?eval_subquery (e : expr) :
    expr * Annotation.t =
  let ctx = { catalog; eval_subquery; extra_ann = Annotation.one } in
  let e = resolve_subqueries ctx e in
  (e, ctx.extra_ann)

(** Names of the base tables a plan reads, in scan order. *)
let rec base_tables (n : node) : string list =
  match n.op with
  | Scan { table; _ } | Index_scan { table; _ } | Range_scan { table; _ } ->
    [ Table.name table ]
  | Filter (_, _, x)
  | Project (_, x)
  | Sort (_, x)
  | Limit (_, x)
  | Distinct x
  | Annotate (_, x) ->
    base_tables x
  | Hash_join { left; right; _ } | Nested_loop { left; right; _ } | Union (left, right) ->
    base_tables left @ base_tables right
  | Aggregate { input; _ } -> base_tables input

(** A one-line textual rendering of the plan shape, for EXPLAIN, tests and
    debugging. *)
let rec describe (n : node) : string =
  match n.op with
  | Scan { table; binding; as_of } ->
    let name = Table.name table in
    let base =
      if name = binding then Printf.sprintf "scan(%s" name
      else Printf.sprintf "scan(%s as %s" name binding
    in
    (match as_of with
    | Some t -> base ^ Printf.sprintf " asof %d)" t
    | None -> base ^ ")")
  | Index_scan { table; index; as_of; _ } ->
    let base =
      Printf.sprintf "indexscan(%s.%s" (Table.name table) index.Table.idx_name
    in
    (match as_of with
    | Some t -> base ^ Printf.sprintf " asof %d)" t
    | None -> base ^ ")")
  | Range_scan { table; oindex; lo; hi; as_of; _ } ->
    let b = Buffer.create 32 in
    Buffer.add_string b
      (Printf.sprintf "rangescan(%s.%s" (Table.name table)
         oindex.Table.oidx_name);
    Option.iter
      (fun (v, incl) ->
        Buffer.add_string b
          (Printf.sprintf " %s %s" (if incl then ">=" else ">")
             (Value.to_string v)))
      lo;
    Option.iter
      (fun (v, incl) ->
        Buffer.add_string b
          (Printf.sprintf " %s %s" (if incl then "<=" else "<")
             (Value.to_string v)))
      hi;
    Option.iter (fun t -> Buffer.add_string b (Printf.sprintf " asof %d" t)) as_of;
    Buffer.add_char b ')';
    Buffer.contents b
  | Filter (_, _, x) -> Printf.sprintf "filter(%s)" (describe x)
  | Project (_, x) -> Printf.sprintf "project(%s)" (describe x)
  | Hash_join { left; right; outer; build_left; _ } ->
    Printf.sprintf "%s%s(%s, %s)"
      (if outer then "hashouterjoin" else "hashjoin")
      (if build_left then "[build=left]" else "")
      (describe left) (describe right)
  | Nested_loop { left; right; outer; _ } ->
    Printf.sprintf "%s(%s, %s)"
      (if outer then "nestedouterloop" else "nestedloop")
      (describe left) (describe right)
  | Aggregate { input; _ } -> Printf.sprintf "aggregate(%s)" (describe input)
  | Sort (_, x) -> Printf.sprintf "sort(%s)" (describe x)
  | Limit (l, x) -> Printf.sprintf "limit(%d, %s)" l (describe x)
  | Distinct x -> Printf.sprintf "distinct(%s)" (describe x)
  | Union (a, b) -> Printf.sprintf "union(%s, %s)" (describe a) (describe b)
  | Annotate (_, x) -> Printf.sprintf "annotate(%s)" (describe x)
