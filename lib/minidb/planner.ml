(** Translation of SELECT ASTs into physical plans.

    The planner is deliberately simple but covers what a realistic workload
    needs:
    - comma joins and explicit [JOIN .. ON] become hash joins when
      column-equality conjuncts are available (left-outer joins pad
      unmatched rows with NULLs);
    - equality predicates against indexed columns become index scans;
    - [AS OF] table references scan the version history snapshot;
    - aggregates in the projection/HAVING are collected into slots and the
      surrounding expressions rewritten to reference them;
    - UNION [ALL] concatenates compatible bodies;
    - uncorrelated subqueries (EXISTS / IN / scalar) are evaluated once at
      plan time through a caller-supplied evaluator and replaced by
      constants; their provenance joins every result row's annotation
      (a conservative over-approximation, which is what packaging needs). *)

open Sql_ast

type node = { schema : Schema.t; op : op }

and op =
  | Scan of { table : Table.t; binding : string; as_of : int option }
  | Index_scan of {
      table : Table.t;
      binding : string;
      index : Table.index;
      key : Eval_expr.bound;  (** constant expression, bound to [||] *)
    }
  | Filter of Eval_expr.bound * node
  | Project of (Eval_expr.bound * Schema.column) list * node
  | Hash_join of {
      left : node;
      right : node;
      left_keys : Eval_expr.bound list;
      right_keys : Eval_expr.bound list;
      outer : bool;  (** left outer: pad unmatched left rows *)
    }
  | Nested_loop of {
      left : node;
      right : node;
      pred : Eval_expr.bound option;
      outer : bool;
    }
  | Aggregate of {
      input : node;
      group : (Eval_expr.bound * Schema.column) list;
      aggs : (agg_fn * Eval_expr.bound option) list;
    }
  | Sort of (Eval_expr.bound * order_dir) list * node
  | Limit of int * node
  | Distinct of node
  | Union of node * node  (** bag union; wrap in Distinct for UNION *)
  | Annotate of Annotation.t * node
      (** multiply every row's annotation (subquery provenance) *)

(** Evaluator for uncorrelated subqueries: run a plan, return its rows and
    the sum of their annotations. Supplied by {!Database} to avoid a
    dependency cycle with {!Executor}. *)
type subquery_eval = node -> Value.t array list * Annotation.t

(* ------------------------------------------------------------------ *)
(* Type inference for output schemas.                                  *)

let rec infer_type (schema : Schema.t) (e : expr) : Value.ty =
  match e with
  | Const v -> Option.value (Value.type_of v) ~default:Value.Tstr
  | Col (q, n) -> schema.(Schema.resolve schema ?qualifier:q n).Schema.ty
  | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Is_not_null _ | Between _
  | Like _ | Not_like _ | In_list _ | In_select _ | Exists _ ->
    Value.Tbool
  | Arith (Div, _, _) -> Value.Tfloat
  | Arith (_, a, b) -> (
    match (infer_type schema a, infer_type schema b) with
    | Value.Tint, Value.Tint -> Value.Tint
    | _ -> Value.Tfloat)
  | Neg a -> infer_type schema a
  | Concat _ -> Value.Tstr
  | Agg (Count_star, _) | Agg (Count, _) -> Value.Tint
  | Agg (Avg, _) -> Value.Tfloat
  | Agg ((Sum | Min | Max), Some a) -> infer_type schema a
  | Agg ((Sum | Min | Max), None) ->
    Errors.unsupported "aggregate other than COUNT requires an argument"
  | Case ((_, v) :: _, _) -> infer_type schema v
  | Case ([], _) -> Value.Tstr
  | Func (name, args) -> (
    match name with
    | "lower" | "upper" | "substr" | "substring" | "trim" | "replace" ->
      Value.Tstr
    | "length" -> Value.Tint
    | "abs" | "round" | "coalesce" -> (
      match args with
      | a :: _ -> infer_type schema a
      | [] -> Value.Tstr)
    | _ -> Value.Tstr)
  | Scalar_subquery _ -> Value.Tstr (* replaced by a constant before use *)

(* ------------------------------------------------------------------ *)
(* Conjunct classification.                                            *)

let resolvable (schema : Schema.t) (e : expr) =
  match
    Sql_ast.fold_cols
      (fun () q n -> ignore (Schema.resolve schema ?qualifier:q n))
      () e
  with
  | () -> true
  | exception Errors.Db_error (Errors.Unknown_column _) -> false

let has_cols (e : expr) = Sql_ast.fold_cols (fun _ _ _ -> true) false e

(* An equi-join conjunct usable between [left] and [right]: col = col with
   one side in each schema. Returns (left_col_expr, right_col_expr). *)
let equi_join_key (left : Schema.t) (right : Schema.t) = function
  | Cmp (Eq, (Col _ as a), (Col _ as b)) ->
    if resolvable left a && resolvable right b then Some (a, b)
    else if resolvable left b && resolvable right a then Some (b, a)
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Aggregate slot collection and rewriting.                            *)

let slot_name i = Printf.sprintf "__agg%d" i

(* Replace every aggregate call in [e] with a reference to a slot column,
   extending [slots] as needed (shared slots for syntactically equal
   calls). *)
let rec rewrite_aggs slots (e : expr) : expr =
  match e with
  | Agg (fn, arg) ->
    let key = (fn, Option.map Pretty.expr_to_string arg) in
    let idx =
      match List.find_index (fun (k, _) -> k = key) !slots with
      | Some i -> i
      | None ->
        slots := !slots @ [ (key, (fn, arg)) ];
        List.length !slots - 1
    in
    Col (None, slot_name idx)
  | Const _ | Col _ | Exists _ | Scalar_subquery _ -> e
  | Cmp (op, a, b) -> Cmp (op, rewrite_aggs slots a, rewrite_aggs slots b)
  | And (a, b) -> And (rewrite_aggs slots a, rewrite_aggs slots b)
  | Or (a, b) -> Or (rewrite_aggs slots a, rewrite_aggs slots b)
  | Not a -> Not (rewrite_aggs slots a)
  | Is_null a -> Is_null (rewrite_aggs slots a)
  | Is_not_null a -> Is_not_null (rewrite_aggs slots a)
  | Between (a, b, c) ->
    Between (rewrite_aggs slots a, rewrite_aggs slots b, rewrite_aggs slots c)
  | Like (a, p) -> Like (rewrite_aggs slots a, p)
  | Not_like (a, p) -> Not_like (rewrite_aggs slots a, p)
  | In_list (a, es) ->
    In_list (rewrite_aggs slots a, List.map (rewrite_aggs slots) es)
  | In_select (a, sub) -> In_select (rewrite_aggs slots a, sub)
  | Arith (op, a, b) -> Arith (op, rewrite_aggs slots a, rewrite_aggs slots b)
  | Neg a -> Neg (rewrite_aggs slots a)
  | Concat (a, b) -> Concat (rewrite_aggs slots a, rewrite_aggs slots b)
  | Case (branches, default) ->
    Case
      ( List.map
          (fun (c, v) -> (rewrite_aggs slots c, rewrite_aggs slots v))
          branches,
        Option.map (rewrite_aggs slots) default )
  | Func (name, args) -> Func (name, List.map (rewrite_aggs slots) args)

(* ------------------------------------------------------------------ *)
(* Planning context.                                                   *)

type ctx = {
  catalog : Catalog.t;
  eval_subquery : subquery_eval option;
  (* annotations contributed by subqueries evaluated while planning the
     current body; multiplied into the body's output rows *)
  mutable extra_ann : Annotation.t;
}

(* ------------------------------------------------------------------ *)
(* Subquery resolution: replace uncorrelated subqueries by constants,
   accumulating their provenance into the context.                     *)

let rec resolve_subqueries (ctx : ctx) (e : expr) : expr =
  let go = resolve_subqueries ctx in
  match e with
  | Const _ | Col _ -> e
  | Cmp (op, a, b) -> Cmp (op, go a, go b)
  | And (a, b) -> And (go a, go b)
  | Or (a, b) -> Or (go a, go b)
  | Not a -> Not (go a)
  | Is_null a -> Is_null (go a)
  | Is_not_null a -> Is_not_null (go a)
  | Between (a, b, c) -> Between (go a, go b, go c)
  | Like (a, p) -> Like (go a, p)
  | Not_like (a, p) -> Not_like (go a, p)
  | In_list (a, es) -> In_list (go a, List.map go es)
  | Arith (op, a, b) -> Arith (op, go a, go b)
  | Neg a -> Neg (go a)
  | Concat (a, b) -> Concat (go a, go b)
  | Agg (fn, arg) -> Agg (fn, Option.map go arg)
  | Case (branches, default) ->
    Case (List.map (fun (c, v) -> (go c, go v)) branches, Option.map go default)
  | Func (name, args) -> Func (name, List.map go args)
  | Exists sub ->
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    Const (Value.Bool (rows <> []))
  | In_select (a, sub) ->
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    let consts =
      List.map
        (fun (row : Value.t array) ->
          if Array.length row <> 1 then
            Errors.unsupported "IN subquery must return a single column"
          else Const row.(0))
        rows
    in
    if consts = [] then
      (* IN over the empty set is FALSE even for a NULL lhs *)
      Const (Value.Bool false)
    else In_list (go a, consts)
  | Scalar_subquery sub -> (
    let rows, ann = run_subquery ctx sub in
    ctx.extra_ann <- Annotation.mul ctx.extra_ann ann;
    match rows with
    | [] -> Const Value.Null
    | [ row ] when Array.length row = 1 -> Const row.(0)
    | [ _ ] -> Errors.unsupported "scalar subquery must return a single column"
    | _ -> Errors.unsupported "scalar subquery returned more than one row")

and run_subquery ctx (sub : select) : Value.t array list * Annotation.t =
  match ctx.eval_subquery with
  | None -> Errors.unsupported "subqueries require an executor"
  | Some eval ->
    let node = plan_select_ctx ctx sub in
    eval node

(* ------------------------------------------------------------------ *)
(* FROM clause and join-tree construction.                             *)

and scan_node (ctx : ctx) ~table ~alias ~as_of : node =
  let tbl = Catalog.find ctx.catalog table in
  let binding = Option.value alias ~default:table in
  let schema = Schema.with_qualifier binding (Table.schema tbl) in
  { schema; op = Scan { table = tbl; binding; as_of } }

(* Try to convert [Filter (conjs, Scan)] into an index scan: find an
   equality conjunct between an indexed column of this scan and a
   constant expression. Returns the scan node and the conjuncts not
   absorbed by the index. *)
and apply_index (ctx : ctx) (scan : node) (conjs : expr list) :
    node * expr list =
  ignore ctx;
  match scan.op with
  | Scan { table; binding; as_of = None } ->
    let try_conjunct c =
      let candidate col_expr const_expr =
        match col_expr with
        | Col (q, n) when (not (has_cols const_expr)) -> (
          match Schema.find_opt scan.schema ?qualifier:q n with
          | Some position -> (
            match Table.index_on table ~column:position with
            | Some index ->
              Some
                { schema = scan.schema;
                  op =
                    Index_scan
                      { table;
                        binding;
                        index;
                        key = Eval_expr.bind [||] const_expr } }
            | None -> None)
          | None -> None)
        | _ -> None
      in
      match c with
      | Cmp (Eq, a, b) -> (
        match candidate a b with Some n -> Some n | None -> candidate b a)
      | _ -> None
    in
    let rec pick seen = function
      | [] -> (scan, List.rev seen)
      | c :: rest -> (
        match try_conjunct c with
        | Some node -> (node, List.rev_append seen rest)
        | None -> pick (c :: seen) rest)
    in
    pick [] conjs
  | _ -> (scan, conjs)

(* Apply all conjuncts resolvable in [node]'s schema as a filter; returns
   the filtered node and the still-unresolvable conjuncts. *)
and apply_resolvable_filters (ctx : ctx) node pending =
  let usable, rest = List.partition (resolvable node.schema) pending in
  let node, usable = apply_index ctx node usable in
  match Sql_ast.conjoin usable with
  | None -> (node, rest)
  | Some pred ->
    let bound = Eval_expr.bind node.schema pred in
    ({ schema = node.schema; op = Filter (bound, node) }, rest)

(* Join [acc] with [next] on the given conjuncts; equi conjuncts become
   hash-join keys, the rest a residual filter (inner) or a nested-loop
   predicate (outer). *)
and join_nodes (_ctx : ctx) ~outer acc next conjs : node * expr list =
  let keys, rest =
    List.partition_map
      (fun c ->
        match equi_join_key acc.schema next.schema c with
        | Some (l, r) -> Left (l, r)
        | None -> Right c)
      conjs
  in
  let schema = Schema.append acc.schema next.schema in
  if keys = [] then
    if outer then
      let pred =
        Option.map (Eval_expr.bind schema) (Sql_ast.conjoin rest)
      in
      ({ schema; op = Nested_loop { left = acc; right = next; pred; outer } }, [])
    else
      ({ schema; op = Nested_loop { left = acc; right = next; pred = None; outer } },
       rest)
  else begin
    let left_keys = List.map (fun (l, _) -> Eval_expr.bind acc.schema l) keys in
    let right_keys =
      List.map (fun (_, r) -> Eval_expr.bind next.schema r) keys
    in
    let joined =
      { schema;
        op = Hash_join { left = acc; right = next; left_keys; right_keys; outer } }
    in
    if outer && rest <> [] then
      (* a residual ON condition cannot be applied after padding; fall
         back to a nested loop with the full predicate *)
      let pred = Eval_expr.bind schema (Option.get (Sql_ast.conjoin (keys_to_exprs keys @ rest))) in
      ({ schema; op = Nested_loop { left = acc; right = next; pred = Some pred; outer } },
       [])
    else (joined, rest)
  end

and keys_to_exprs keys = List.map (fun (l, r) -> Cmp (Eq, l, r)) keys

(* Plan a FROM item, pulling usable conjuncts from [pending]. *)
and plan_from_item (ctx : ctx) (item : from_item) (pending : expr list) :
    node * expr list =
  match item with
  | From_table { table; alias; as_of } ->
    apply_resolvable_filters ctx (scan_node ctx ~table ~alias ~as_of) pending
  | From_join { left; right; kind; on } -> (
    let on_conjs = List.map (resolve_subqueries ctx) (Sql_ast.conjuncts on) in
    match kind with
    | Inner ->
      let lnode, pending = plan_from_item ctx left pending in
      let rnode, pending = plan_from_item ctx right pending in
      let joined, rest =
        join_nodes ctx ~outer:false lnode rnode (on_conjs @ pending)
      in
      apply_resolvable_filters ctx joined rest
    | Left_outer ->
      (* WHERE conjuncts may be pushed to the left (preserved) side but
         never into the right side of an outer join *)
      let lnode, pending = plan_from_item ctx left pending in
      let rnode, _ = plan_from_item ctx right [] in
      let joined, rest = join_nodes ctx ~outer:true lnode rnode on_conjs in
      (match rest with
      | [] -> ()
      | _ -> Errors.unsupported "unresolvable ON condition in outer join");
      (joined, pending))

(* ------------------------------------------------------------------ *)
(* SELECT body planning (everything but ORDER BY / LIMIT / set ops).   *)

and default_item_name i (e : expr) =
  match e with
  | Col (_, n) -> n
  | Agg (fn, _) -> agg_name fn
  | Func (name, _) -> name
  | _ -> Printf.sprintf "column%d" (i + 1)

(* The planned body: pre-projection pipeline plus the projection spec, so
   the caller can choose where to put a Sort. *)
and plan_body (ctx : ctx) (s : select) :
    node * (Eval_expr.bound * Schema.column) list * Schema.t * bool =
  if s.from = [] then Errors.unsupported "SELECT without FROM is not supported";
  let where =
    Option.map
      (fun w -> List.map (resolve_subqueries ctx) (Sql_ast.conjuncts w))
      s.where
  in
  let conjs = Option.value where ~default:[] in
  let first, rest_items =
    match s.from with x :: xs -> (x, xs) | [] -> assert false
  in
  let node, conjs = plan_from_item ctx first conjs in
  let node, conjs =
    List.fold_left
      (fun (acc, pending) item ->
        let next, pending = plan_from_item ctx item pending in
        let joined, pending = join_nodes ctx ~outer:false acc next pending in
        apply_resolvable_filters ctx joined pending)
      (node, conjs) rest_items
  in
  (* conjuncts held back while planning (e.g. WHERE predicates over the
     padded side of an outer join) apply above the finished join tree *)
  let node, conjs = apply_resolvable_filters ctx node conjs in
  (match conjs with
  | [] -> ()
  | c :: _ ->
    (* force a resolution error naming the offending column *)
    ignore (Eval_expr.bind node.schema c));
  (* aggregation *)
  let items =
    List.concat_map
      (function
        | Star ->
          Array.to_list node.schema
          |> List.map (fun (c : Schema.column) ->
                 Item (Col (c.qualifier, c.name), None))
        | Item (e, a) -> [ Item (resolve_subqueries ctx e, a) ])
      s.items
  in
  let having = Option.map (resolve_subqueries ctx) s.having in
  let needs_agg =
    s.group_by <> []
    || List.exists (function Item (e, _) -> contains_agg e | Star -> false) items
    || Option.fold ~none:false ~some:contains_agg having
  in
  let node, items, having =
    if not needs_agg then (node, items, having)
    else begin
      let slots = ref [] in
      let items' =
        List.map
          (function
            | Star -> assert false
            | Item (e, a) -> Item (rewrite_aggs slots e, a))
          items
      in
      let having' = Option.map (rewrite_aggs slots) having in
      let group =
        List.map
          (fun (q, n) ->
            let idx = Schema.resolve node.schema ?qualifier:q n in
            (Eval_expr.Bcol idx, node.schema.(idx)))
          s.group_by
      in
      let aggs =
        List.map
          (fun (_, (fn, arg)) ->
            (fn, Option.map (Eval_expr.bind node.schema) arg))
          !slots
      in
      let agg_schema =
        Array.of_list
          (List.map snd group
          @ List.mapi
              (fun i (_, (fn, arg)) ->
                Schema.column (slot_name i)
                  (infer_type node.schema (Agg (fn, arg))))
              !slots)
      in
      ( { schema = agg_schema; op = Aggregate { input = node; group; aggs } },
        items',
        having' )
    end
  in
  let node =
    match having with
    | None -> node
    | Some h ->
      { schema = node.schema; op = Filter (Eval_expr.bind node.schema h, node) }
  in
  let proj_items =
    List.mapi
      (fun i item ->
        match item with
        | Star -> assert false
        | Item (e, alias) ->
          let name =
            match alias with Some a -> a | None -> default_item_name i e
          in
          let col = Schema.column name (infer_type node.schema e) in
          (Eval_expr.bind node.schema e, col))
      items
  in
  let proj_schema = Array.of_list (List.map snd proj_items) in
  (node, proj_items, proj_schema, s.distinct)

(* Assemble a body into a finished pipeline, optionally preparing for a
   sort below the projection when ORDER BY references dropped columns. *)
and assemble (ctx : ctx) (s : select)
    ((pre, proj_items, proj_schema, distinct) :
      node * (Eval_expr.bound * Schema.column) list * Schema.t * bool)
    ~with_order : node =
  let order_by =
    if with_order then
      List.map (fun (e, d) -> (resolve_subqueries ctx e, d)) s.order_by
    else []
  in
  let order_above =
    order_by <> [] && List.for_all (fun (e, _) -> resolvable proj_schema e) order_by
  in
  let sort_keys schema =
    List.map (fun (e, dir) -> (Eval_expr.bind schema e, dir)) order_by
  in
  let base =
    if order_by = [] || order_above then pre
    else { schema = pre.schema; op = Sort (sort_keys pre.schema, pre) }
  in
  let node = { schema = proj_schema; op = Project (proj_items, base) } in
  let node = if distinct then { schema = node.schema; op = Distinct node } else node in
  let node =
    if order_above then
      { schema = node.schema; op = Sort (sort_keys node.schema, node) }
    else node
  in
  match if with_order then s.limit else None with
  | None -> node
  | Some l -> { schema = node.schema; op = Limit (l, node) }

and plan_select_ctx (ctx : ctx) (s : select) : node =
  (* each body gets its own annotation scope *)
  let saved = ctx.extra_ann in
  ctx.extra_ann <- Annotation.one;
  let wrap node =
    let node =
      if Annotation.equal ctx.extra_ann Annotation.one then node
      else { schema = node.schema; op = Annotate (ctx.extra_ann, node) }
    in
    ctx.extra_ann <- saved;
    node
  in
  match s.set_ops with
  | [] -> wrap (assemble ctx s (plan_body ctx s) ~with_order:true)
  | ops ->
    let first = assemble ctx s (plan_body ctx s) ~with_order:false in
    let combined =
      List.fold_left
        (fun acc (op, rhs) ->
          let rhs_node = assemble ctx rhs (plan_body ctx rhs) ~with_order:false in
          if Schema.arity rhs_node.schema <> Schema.arity acc.schema then
            Errors.unsupported "UNION branches must have the same arity";
          let u = { schema = acc.schema; op = Union (acc, rhs_node) } in
          match op with
          | Union_all -> u
          | Union_distinct -> { schema = u.schema; op = Distinct u })
        first ops
    in
    (* ORDER BY / LIMIT apply to the whole chain, over the output schema *)
    let node =
      if s.order_by = [] then combined
      else
        let keys =
          List.map
            (fun (e, d) ->
              (Eval_expr.bind combined.schema (resolve_subqueries ctx e), d))
            s.order_by
        in
        { schema = combined.schema; op = Sort (keys, combined) }
    in
    wrap
      (match s.limit with
      | None -> node
      | Some l -> { schema = node.schema; op = Limit (l, node) })

(** Plan a SELECT. [eval_subquery] is required when the statement contains
    subqueries. *)
let plan_select (catalog : Catalog.t) ?eval_subquery (s : select) : node =
  Ldv_obs.counter "db.plans";
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Plan @@ fun () ->
  Ldv_obs.with_span "db.plan" @@ fun () ->
  plan_select_ctx { catalog; eval_subquery; extra_ann = Annotation.one } s

(** Resolve the uncorrelated subqueries of a standalone expression (an
    UPDATE/DELETE WHERE clause); returns the rewritten expression and the
    provenance annotation the subqueries contributed. *)
let resolve_expr (catalog : Catalog.t) ?eval_subquery (e : expr) :
    expr * Annotation.t =
  let ctx = { catalog; eval_subquery; extra_ann = Annotation.one } in
  let e = resolve_subqueries ctx e in
  (e, ctx.extra_ann)

(** Names of the base tables a plan reads, in scan order. *)
let rec base_tables (n : node) : string list =
  match n.op with
  | Scan { table; _ } | Index_scan { table; _ } -> [ Table.name table ]
  | Filter (_, x)
  | Project (_, x)
  | Sort (_, x)
  | Limit (_, x)
  | Distinct x
  | Annotate (_, x) ->
    base_tables x
  | Hash_join { left; right; _ } | Nested_loop { left; right; _ } | Union (left, right) ->
    base_tables left @ base_tables right
  | Aggregate { input; _ } -> base_tables input

(** A one-line textual rendering of the plan shape, for EXPLAIN, tests and
    debugging. *)
let rec describe (n : node) : string =
  match n.op with
  | Scan { table; binding; as_of } ->
    let name = Table.name table in
    let base =
      if name = binding then Printf.sprintf "scan(%s" name
      else Printf.sprintf "scan(%s as %s" name binding
    in
    (match as_of with
    | Some t -> base ^ Printf.sprintf " asof %d)" t
    | None -> base ^ ")")
  | Index_scan { table; index; _ } ->
    Printf.sprintf "indexscan(%s.%s)" (Table.name table) index.Table.idx_name
  | Filter (_, x) -> Printf.sprintf "filter(%s)" (describe x)
  | Project (_, x) -> Printf.sprintf "project(%s)" (describe x)
  | Hash_join { left; right; outer; _ } ->
    Printf.sprintf "%s(%s, %s)"
      (if outer then "hashouterjoin" else "hashjoin")
      (describe left) (describe right)
  | Nested_loop { left; right; outer; _ } ->
    Printf.sprintf "%s(%s, %s)"
      (if outer then "nestedouterloop" else "nestedloop")
      (describe left) (describe right)
  | Aggregate { input; _ } -> Printf.sprintf "aggregate(%s)" (describe input)
  | Sort (_, x) -> Printf.sprintf "sort(%s)" (describe x)
  | Limit (l, x) -> Printf.sprintf "limit(%d, %s)" l (describe x)
  | Distinct x -> Printf.sprintf "distinct(%s)" (describe x)
  | Union (a, b) -> Printf.sprintf "union(%s, %s)" (describe a) (describe b)
  | Annotate (_, x) -> Printf.sprintf "annotate(%s)" (describe x)
