(** Error types shared across the MiniDB engine.

    All engine errors are expressed as a single exception carrying a typed
    payload so that callers (the LDV auditing layer in particular) can react
    to specific failure classes without string matching. *)

type kind =
  | Parse_error of { message : string; position : int }
      (** Lexing or parsing failed at byte offset [position] of the input. *)
  | Unknown_table of string
  | Unknown_column of string
  | Ambiguous_column of string
  | Duplicate_table of string
  | Duplicate_column of string
  | Type_error of string
  | Arity_error of string
  | Constraint_violation of string
  | Serialization_failure of string
      (** A write-write conflict aborted the transaction (first-updater
          wins): the statement touched a row concurrently written by
          another transaction, or committed after this one's snapshot. *)
  | Tx_state of string
      (** BEGIN/COMMIT/ROLLBACK issued in the wrong session state (e.g. a
          second BEGIN while a transaction is already open). *)
  | Unsupported of string

exception Db_error of kind

let fail kind = raise (Db_error kind)

let parse_error ~position message = fail (Parse_error { message; position })

let type_error fmt = Format.kasprintf (fun m -> fail (Type_error m)) fmt

let unsupported fmt = Format.kasprintf (fun m -> fail (Unsupported m)) fmt

let pp_kind ppf = function
  | Parse_error { message; position } ->
    Format.fprintf ppf "parse error at offset %d: %s" position message
  | Unknown_table t -> Format.fprintf ppf "unknown table %S" t
  | Unknown_column c -> Format.fprintf ppf "unknown column %S" c
  | Ambiguous_column c -> Format.fprintf ppf "ambiguous column %S" c
  | Duplicate_table t -> Format.fprintf ppf "table %S already exists" t
  | Duplicate_column c -> Format.fprintf ppf "duplicate column %S" c
  | Type_error m -> Format.fprintf ppf "type error: %s" m
  | Arity_error m -> Format.fprintf ppf "arity error: %s" m
  | Constraint_violation m -> Format.fprintf ppf "constraint violation: %s" m
  | Serialization_failure m ->
    Format.fprintf ppf "serialization failure: %s" m
  | Tx_state m -> Format.fprintf ppf "transaction state error: %s" m
  | Unsupported m -> Format.fprintf ppf "unsupported: %s" m

let to_string kind = Format.asprintf "%a" pp_kind kind

let () =
  Printexc.register_printer (function
    | Db_error kind -> Some (Format.asprintf "Db_error (%a)" pp_kind kind)
    | _ -> None)
