(** Pretty-printer from [Sql_ast] back to SQL text.

    Used for statement normalization (the server-excluded replay matcher
    compares normalized statements) and tested by a parse/print round-trip
    property. Output always parenthesizes enough to re-parse to the same
    tree. *)

open Sql_ast

let escape_string s = String.concat "''" (String.split_on_char '\'' s)

let pp_comma pp ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf xs

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Col (None, n) -> Format.pp_print_string ppf n
  | Col (Some q, n) -> Format.fprintf ppf "%s.%s" q n
  | Cmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_operand a (cmp_name op) pp_operand b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not e -> Format.fprintf ppf "(NOT %a)" pp_expr e
  | Is_null e -> Format.fprintf ppf "%a IS NULL" pp_operand e
  | Is_not_null e -> Format.fprintf ppf "%a IS NOT NULL" pp_operand e
  | Between (e, lo, hi) ->
    Format.fprintf ppf "%a BETWEEN %a AND %a" pp_operand e pp_operand lo
      pp_operand hi
  | Like (e, pat) ->
    Format.fprintf ppf "%a LIKE '%s'" pp_operand e (escape_string pat)
  | Not_like (e, pat) ->
    Format.fprintf ppf "%a NOT LIKE '%s'" pp_operand e (escape_string pat)
  | In_list (e, es) ->
    Format.fprintf ppf "%a IN (%a)" pp_operand e (pp_comma pp_expr) es
  | In_select (e, sub) ->
    Format.fprintf ppf "%a IN (%a)" pp_operand e pp_select sub
  | Arith (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (arith_name op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_operand e
  | Concat (a, b) -> Format.fprintf ppf "(%a || %a)" pp_expr a pp_expr b
  | Agg (Count_star, _) -> Format.pp_print_string ppf "count(*)"
  | Agg (fn, Some e) -> Format.fprintf ppf "%s(%a)" (agg_name fn) pp_expr e
  | Agg (fn, None) -> Format.fprintf ppf "%s(*)" (agg_name fn)
  | Case (branches, default) ->
    Format.fprintf ppf "CASE";
    List.iter
      (fun (c, v) ->
        Format.fprintf ppf " WHEN %a THEN %a" pp_expr c pp_expr v)
      branches;
    (match default with
    | Some d -> Format.fprintf ppf " ELSE %a" pp_expr d
    | None -> ());
    Format.fprintf ppf " END"
  | Func (name, args) ->
    Format.fprintf ppf "%s(%a)" name (pp_comma pp_expr) args
  | Exists sub -> Format.fprintf ppf "EXISTS (%a)" pp_select sub
  | Scalar_subquery sub -> Format.fprintf ppf "(%a)" pp_select sub

(* Operands of comparisons are wrapped when they are themselves complex so
   that the round-trip re-parses identically. *)
and pp_operand ppf e =
  match e with
  | Const _ | Col _ | Agg _ | Arith _ | Neg _ | Concat _ | Func _ | Case _
  | Scalar_subquery _ ->
    pp_expr ppf e
  | _ -> Format.fprintf ppf "(%a)" pp_expr e

and pp_select_item ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Item (e, None) -> pp_expr ppf e
  | Item (e, Some a) -> Format.fprintf ppf "%a AS %s" pp_expr e a

and pp_from_item ppf = function
  | From_table { table; alias; as_of } ->
    Format.pp_print_string ppf table;
    (match as_of with
    | Some n -> Format.fprintf ppf " AS OF %d" n
    | None -> ());
    (match alias with
    | Some a -> Format.fprintf ppf " %s" a
    | None -> ())
  | From_join { left; right; kind; on } ->
    let kw = match kind with Inner -> "JOIN" | Left_outer -> "LEFT JOIN" in
    Format.fprintf ppf "%a %s %a ON %a" pp_from_item left kw pp_join_operand
      right pp_expr on

(* the right side of a JOIN must be a primary ref; parenthesize joins *)
and pp_join_operand ppf = function
  | From_table _ as f -> pp_from_item ppf f
  | From_join _ as f -> Format.fprintf ppf "(%a)" pp_from_item f

and pp_select ppf (s : select) =
  Format.fprintf ppf "SELECT ";
  if s.distinct then Format.fprintf ppf "DISTINCT ";
  pp_comma pp_select_item ppf s.items;
  if s.from <> [] then
    Format.fprintf ppf " FROM %a" (pp_comma pp_from_item) s.from;
  (match s.where with
  | Some w -> Format.fprintf ppf " WHERE %a" pp_expr w
  | None -> ());
  if s.group_by <> [] then
    Format.fprintf ppf " GROUP BY %a"
      (pp_comma (fun ppf (q, n) ->
           match q with
           | Some q -> Format.fprintf ppf "%s.%s" q n
           | None -> Format.pp_print_string ppf n))
      s.group_by;
  (match s.having with
  | Some h -> Format.fprintf ppf " HAVING %a" pp_expr h
  | None -> ());
  List.iter
    (fun (op, rhs) ->
      let kw = match op with Union_all -> "UNION ALL" | Union_distinct -> "UNION" in
      Format.fprintf ppf " %s %a" kw pp_select rhs)
    s.set_ops;
  if s.order_by <> [] then
    Format.fprintf ppf " ORDER BY %a"
      (pp_comma (fun ppf (e, dir) ->
           Format.fprintf ppf "%a%s" pp_expr e
             (match dir with Asc -> "" | Desc -> " DESC")))
      s.order_by;
  match s.limit with
  | Some l -> Format.fprintf ppf " LIMIT %d" l
  | None -> ()

let rec pp_statement ppf = function
  | Select s -> pp_select ppf s
  | Provenance s -> Format.fprintf ppf "PROVENANCE %a" pp_select s
  | Insert { table; columns; source } ->
    Format.fprintf ppf "INSERT INTO %s" table;
    (match columns with
    | Some cols ->
      Format.fprintf ppf " (%a)" (pp_comma Format.pp_print_string) cols
    | None -> ());
    (match source with
    | Values rows ->
      Format.fprintf ppf " VALUES %a"
        (pp_comma (fun ppf row ->
             Format.fprintf ppf "(%a)" (pp_comma pp_expr) row))
        rows
    | Query q -> Format.fprintf ppf " %a" pp_select q)
  | Update { table; sets; where } ->
    Format.fprintf ppf "UPDATE %s SET %a" table
      (pp_comma (fun ppf (c, e) -> Format.fprintf ppf "%s = %a" c pp_expr e))
      sets;
    (match where with
    | Some w -> Format.fprintf ppf " WHERE %a" pp_expr w
    | None -> ())
  | Delete { table; where } ->
    Format.fprintf ppf "DELETE FROM %s" table;
    (match where with
    | Some w -> Format.fprintf ppf " WHERE %a" pp_expr w
    | None -> ())
  | Create_table { table; columns } ->
    Format.fprintf ppf "CREATE TABLE %s (%a)" table
      (pp_comma (fun ppf (c, ty) ->
           Format.fprintf ppf "%s %s" c (Value.type_name ty)))
      columns
  | Drop_table t -> Format.fprintf ppf "DROP TABLE %s" t
  | Create_index { index; table; column; ordered } ->
    Format.fprintf ppf "CREATE %sINDEX %s ON %s (%s)"
      (if ordered then "ORDERED " else "")
      index table column
  | Drop_index i -> Format.fprintf ppf "DROP INDEX %s" i
  | Explain stmt -> Format.fprintf ppf "EXPLAIN %a" pp_statement stmt
  | Begin_tx -> Format.pp_print_string ppf "BEGIN"
  | Commit_tx -> Format.pp_print_string ppf "COMMIT"
  | Rollback_tx -> Format.pp_print_string ppf "ROLLBACK"

let statement_to_string stmt = Format.asprintf "%a" pp_statement stmt
let expr_to_string e = Format.asprintf "%a" pp_expr e

(** Canonical form of a statement: parse-independent text used as a replay
    matching key. *)
let normalize sql = statement_to_string (Sql_parser.parse sql)
