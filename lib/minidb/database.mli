(** Top-level database engine API.

    A database is a catalog plus a logical clock; [exec] parses and
    executes one SQL statement, advancing the clock. DML results expose
    the tuple versions written and the versions they derive from — the
    provenance hooks the Perm layer and the LDV auditor build on.

    Transactions: [BEGIN] opens an undo scope; [ROLLBACK] erases every
    version the transaction wrote and resurrects every version it
    retired; [COMMIT] discards the undo log. DDL is rejected inside a
    transaction. *)

type t

(** Provenance facts of a DML statement. *)
type dml_info = {
  count : int;  (** rows affected *)
  written : Tid.t list;  (** tuple versions created *)
  read : Tid.t list;  (** pre-state versions read *)
  deps : (Tid.t * Tid.t list) list;
      (** written version -> versions it derives from *)
}

type exec_result =
  | Rows of Executor.result
  | Affected of dml_info
  | Ddl_done

(** The durable record of a committed transaction: begin snapshot, commit
    clock, and per-statement (deps, reads) provenance in statement order —
    the inputs transaction reenactment needs. *)
type committed_tx = {
  ct_id : int;
  ct_begin : int;
  ct_commit : int;
  ct_stmts : ((Tid.t * Tid.t list) list * Tid.t list) list;  (** oldest first *)
}

val create : ?name:string -> unit -> t

val clock : t -> int
val catalog : t -> Catalog.t
val name : t -> string

(** Whether the ambient session (see [set_current_tx]) has an open
    transaction. *)
val in_transaction : t -> bool

(** Number of transactions open across all sessions of this database. *)
val open_tx_count : t -> int

(** The ambient session's open transaction id (0 = autocommit). *)
val current_tx : t -> int

(** Switch the ambient session to open transaction [id] (0 = autocommit);
    serialized drivers (WAL apply, recovery) use this to multiplex many
    sessions over one database.
    @raise Errors.Db_error [Tx_state] if [id] is not an open transaction. *)
val set_current_tx : t -> int -> unit

(** The begin-snapshot clock of the ambient open transaction, if any. *)
val current_snapshot : t -> int option

(** Roll back the ambient session's open transaction (exactly what
    executing [ROLLBACK] does).
    @raise Errors.Db_error [Tx_state] if none is open. *)
val rollback_tx : t -> unit

(** Committed transactions of this database, oldest first. *)
val committed_txs : t -> committed_tx list

(** Called once per undo-log entry while a rollback walks its undo log;
    fault campaigns point this at a crash site. *)
val on_undo_step : (unit -> unit) ref

(** Advance the clock by one; the new value timestamps the next write. *)
val tick : t -> int

(** Advance the clock to at least [at] (never rewinds); keeps the DB clock
    aligned with the simulated OS clock. *)
val sync_clock : t -> at:int -> unit

(** Run [f] with the clock pinned: ticks inside are undone on exit. Used
    by read replicas so that serving a read never perturbs the
    tuple-version stamps that must stay byte-identical with the leader. *)
val with_frozen_clock : t -> (unit -> 'a) -> 'a

(** The standard subquery evaluator (plan -> rows + summed annotation),
    wired into every [exec]/[query] call. *)
val subquery_eval : Planner.subquery_eval

(** Plan a SELECT with subquery support. *)
val plan : t -> Sql_ast.select -> Planner.node

val run_select : t -> Sql_ast.select -> Executor.result

(** Perm-style expansion: one output row per (result row, lineage tuple)
    with [prov_table]/[prov_rowid]/[prov_v] columns appended. *)
val run_provenance : t -> Sql_ast.select -> Executor.result

val run_insert :
  t ->
  table:string ->
  columns:string list option ->
  source:Sql_ast.insert_source ->
  dml_info

val run_update :
  t ->
  table:string ->
  sets:(string * Sql_ast.expr) list ->
  where:Sql_ast.expr option ->
  dml_info

val run_delete : t -> table:string -> where:Sql_ast.expr option -> dml_info

(** Execute one parsed statement.
    @raise Errors.Db_error on every engine error. *)
val exec_ast : t -> Sql_ast.statement -> exec_result

(** Parse and execute one SQL statement. *)
val exec : t -> string -> exec_result

(** Run a semicolon-separated script, returning the last result. *)
val exec_script : t -> string -> exec_result

(** Run a query; @raise Errors.Db_error if it is not a SELECT. *)
val query : t -> string -> Executor.result

(** Run a DML statement; @raise Errors.Db_error otherwise. *)
val dml : t -> string -> dml_info

(** Bulk-load rows directly into a table (one clock tick per batch), as
    TPC-H dbgen does. *)
val bulk_insert : t -> table:string -> Value.t array list -> Tid.t list
