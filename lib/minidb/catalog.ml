(** The catalog: a named collection of tables. *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  index_owner : (string, string) Hashtbl.t;  (** index name -> table name *)
}

let create () = { tables = Hashtbl.create 16; index_owner = Hashtbl.create 16 }

let create_table t ~name ~schema =
  let name = String.lowercase_ascii name in
  if Hashtbl.mem t.tables name then Errors.fail (Errors.Duplicate_table name);
  let table = Table.create ~name ~schema in
  Hashtbl.replace t.tables name table;
  table

let drop_table t name =
  let name = String.lowercase_ascii name in
  if not (Hashtbl.mem t.tables name) then
    Errors.fail (Errors.Unknown_table name);
  Hashtbl.remove t.tables name

let find t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> Errors.fail (Errors.Unknown_table name)

let find_opt t name = Hashtbl.find_opt t.tables (String.lowercase_ascii name)
let mem t name = Hashtbl.mem t.tables (String.lowercase_ascii name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let iter t f = List.iter (fun n -> f (find t n)) (table_names t)

(** Create a named index on [table].[column]; [ordered] selects the
    range-capable sorted index over the default hash index. *)
let create_index ?(ordered = false) t ~index ~table ~column =
  let index = String.lowercase_ascii index in
  if Hashtbl.mem t.index_owner index then
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "index %S already exists" index));
  let tbl = find t table in
  Table.create_index ~ordered tbl ~index_name:index ~column;
  Hashtbl.replace t.index_owner index (Table.name tbl)

let drop_index t index =
  let index = String.lowercase_ascii index in
  match Hashtbl.find_opt t.index_owner index with
  | None -> Errors.fail (Errors.Unknown_table ("index " ^ index))
  | Some table ->
    Table.drop_index (find t table) ~index_name:index;
    Hashtbl.remove t.index_owner index

(** Total bytes of live data across all tables. *)
let data_bytes t =
  Hashtbl.fold (fun _ table acc -> acc + Table.data_bytes table) t.tables 0
