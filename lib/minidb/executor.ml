(** Plan evaluation with provenance-annotation propagation.

    Every row flowing through the executor carries a provenance polynomial
    (see {!Annotation}): base tuples start as variables, joins multiply,
    aggregation groups and duplicate elimination add. The Lineage of a
    result row — the tuple versions the paper's slicing needs — is the
    variable set of its annotation. *)

type arow = { values : Value.t array; ann : Annotation.t }

type result = { schema : Schema.t; rows : arow list }

(* Hashtable keyed by a list of values, used by hash join, group-by and
   distinct. *)
module Row_key = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = List.fold_left Value.hash_fold 17 k
end

module Row_tbl = Hashtbl.Make (Row_key)

let eval_keys row keys = List.map (Eval_expr.eval row) keys

(* ------------------------------------------------------------------ *)
(* Aggregate computation.                                              *)

type agg_state = {
  mutable count : int;  (** non-null inputs seen *)
  mutable count_all : int;  (** all rows seen, for COUNT star *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let agg_init () =
  { count = 0;
    count_all = 0;
    sum_int = 0;
    sum_float = 0.0;
    saw_float = false;
    min_v = Value.Null;
    max_v = Value.Null }

let agg_feed st (v : Value.t) =
  st.count_all <- st.count_all + 1;
  match v with
  | Value.Null -> ()
  | v ->
    st.count <- st.count + 1;
    (match v with
    | Value.Int i ->
      st.sum_int <- st.sum_int + i;
      st.sum_float <- st.sum_float +. float_of_int i
    | Value.Float f ->
      st.saw_float <- true;
      st.sum_float <- st.sum_float +. f
    | _ -> ());
    (match Value.compare_total v st.min_v with
    | _ when Value.is_null st.min_v -> st.min_v <- v
    | c when c < 0 -> st.min_v <- v
    | _ -> ());
    (match Value.compare_total v st.max_v with
    | _ when Value.is_null st.max_v -> st.max_v <- v
    | c when c > 0 -> st.max_v <- v
    | _ -> ())

let agg_finish (fn : Sql_ast.agg_fn) st : Value.t =
  match fn with
  | Sql_ast.Count_star -> Value.Int st.count_all
  | Sql_ast.Count -> Value.Int st.count
  | Sql_ast.Sum ->
    if st.count = 0 then Value.Null
    else if st.saw_float then Value.Float st.sum_float
    else Value.Int st.sum_int
  | Sql_ast.Avg ->
    if st.count = 0 then Value.Null
    else Value.Float (st.sum_float /. float_of_int st.count)
  | Sql_ast.Min -> st.min_v
  | Sql_ast.Max -> st.max_v

(* ------------------------------------------------------------------ *)
(* Plan evaluation.                                                    *)

let rec run_node (n : Planner.node) : arow list =
  match n.op with
  | Planner.Scan { table; as_of; _ } ->
    let versions =
      match as_of with
      | None ->
        (* while any transaction is open on this database the live table
           may hold uncommitted foreign versions (and lack rows deleted by
           open transactions), so take the history-walking MVCC path *)
        if !Tx_context.active then
          Table.scan_visible ~tx:!Tx_context.viewer ~at:!Tx_context.snapshot
            table
        else Table.scan table
      | Some at -> Table.scan_as_of ~tx:!Tx_context.viewer table ~at
    in
    if Ldv_obs.enabled () then
      Ldv_obs.counter ~by:(List.length versions) "db.rows_scanned";
    List.map
      (fun (tv : Table.tuple_version) ->
        { values = tv.Table.values; ann = Annotation.var tv.Table.tid })
      versions
  | Planner.Index_scan { table; index; key; _ } ->
    let value = Eval_expr.eval [||] key in
    if Value.is_null value then []
    else begin
      let versions =
        (* indexes cover only the live snapshot, which is wrong for both
           sides of an open transaction (uncommitted entries present,
           tx-deleted rows absent) — fall back to a filtered MVCC scan *)
        if !Tx_context.active then
          List.filter
            (fun (tv : Table.tuple_version) ->
              tv.Table.values.(index.Table.idx_column) = value)
            (Table.scan_visible ~tx:!Tx_context.viewer
               ~at:!Tx_context.snapshot table)
        else Table.index_lookup table index value
      in
      if Ldv_obs.enabled () then
        Ldv_obs.counter ~by:(List.length versions) "db.rows_scanned";
      List.map
        (fun (tv : Table.tuple_version) ->
          { values = tv.Table.values; ann = Annotation.var tv.Table.tid })
        versions
    end
  | Planner.Filter (pred, input) ->
    List.filter (fun r -> Eval_expr.eval_pred r.values pred) (run_node input)
  | Planner.Project (items, input) ->
    List.map
      (fun r ->
        { values =
            Array.of_list
              (List.map (fun (e, _) -> Eval_expr.eval r.values e) items);
          ann = r.ann })
      (run_node input)
  | Planner.Hash_join { left; right; left_keys; right_keys; outer } ->
    let rrows = run_node right in
    let right_width = Schema.arity right.Planner.schema in
    let index = Row_tbl.create (List.length rrows + 1) in
    List.iter
      (fun r ->
        let key = eval_keys r.values right_keys in
        (* SQL equality: NULL join keys never match *)
        if not (List.exists Value.is_null key) then
          Row_tbl.add index key r)
      rrows;
    let null_pad = Array.make right_width Value.Null in
    List.concat_map
      (fun l ->
        let key = eval_keys l.values left_keys in
        let matches =
          if List.exists Value.is_null key then []
          else Row_tbl.find_all index key
        in
        match matches with
        | [] when outer ->
          [ { values = Array.append l.values null_pad; ann = l.ann } ]
        | matches ->
          List.rev_map
            (fun r ->
              { values = Array.append l.values r.values;
                ann = Annotation.mul l.ann r.ann })
            matches)
      (run_node left)
  | Planner.Nested_loop { left; right; pred; outer } ->
    let rrows = run_node right in
    let right_width = Schema.arity right.Planner.schema in
    let null_pad = Array.make right_width Value.Null in
    List.concat_map
      (fun l ->
        let matches =
          List.filter_map
            (fun r ->
              let values = Array.append l.values r.values in
              let keep =
                match pred with
                | None -> true
                | Some p -> Eval_expr.eval_pred values p
              in
              if keep then Some { values; ann = Annotation.mul l.ann r.ann }
              else None)
            rrows
        in
        match matches with
        | [] when outer ->
          [ { values = Array.append l.values null_pad; ann = l.ann } ]
        | matches -> matches)
      (run_node left)
  | Planner.Union (a, b) -> run_node a @ run_node b
  | Planner.Annotate (extra, input) ->
    List.map
      (fun r -> { r with ann = Annotation.mul extra r.ann })
      (run_node input)
  | Planner.Aggregate { input; group; aggs } ->
    let rows = run_node input in
    let groups = Row_tbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let key = List.map (fun (g, _) -> Eval_expr.eval r.values g) group in
        let states, ann_ref =
          match Row_tbl.find_opt groups key with
          | Some entry -> entry
          | None ->
            let entry = (List.map (fun _ -> agg_init ()) aggs, ref []) in
            Row_tbl.replace groups key entry;
            order := key :: !order;
            entry
        in
        ann_ref := r.ann :: !ann_ref;
        List.iter2
          (fun st (fn, arg) ->
            match (fn, arg) with
            | Sql_ast.Count_star, _ -> agg_feed st (Value.Bool true)
            | _, Some e -> agg_feed st (Eval_expr.eval r.values e)
            | _, None -> agg_feed st (Value.Bool true))
          states aggs)
      rows;
    let finish key =
      let states, ann_ref = Row_tbl.find groups key in
      { values =
          Array.of_list (key @ List.map2 (fun st (fn, _) -> agg_finish fn st) states aggs);
        ann = Annotation.sum !ann_ref }
    in
    if Row_tbl.length groups = 0 && group = [] then
      (* aggregate over an empty input with no GROUP BY: one row *)
      [ { values =
            Array.of_list
              (List.map (fun (fn, _) -> agg_finish fn (agg_init ())) aggs);
          ann = Annotation.one } ]
    else List.rev_map finish !order
  | Planner.Sort (keys, input) ->
    let rows = run_node input in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (k, dir) :: rest -> (
          let va = Eval_expr.eval a.values k and vb = Eval_expr.eval b.values k in
          match Value.compare_total va vb with
          | 0 -> go rest
          | c -> ( match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c))
      in
      go keys
    in
    List.stable_sort cmp rows
  | Planner.Limit (l, input) ->
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: xs -> x :: take (n - 1) xs
    in
    take l (run_node input)
  | Planner.Distinct input ->
    let rows = run_node input in
    let seen = Row_tbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let key = Array.to_list r.values in
        match Row_tbl.find_opt seen key with
        | Some ann_ref -> ann_ref := r.ann :: !ann_ref
        | None ->
          let ann_ref = ref [ r.ann ] in
          Row_tbl.replace seen key ann_ref;
          order := (key, ann_ref) :: !order)
      rows;
    List.rev_map
      (fun (key, ann_ref) ->
        { values = Array.of_list key; ann = Annotation.sum !ann_ref })
      !order

let run (n : Planner.node) : result =
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Exec @@ fun () ->
  let rows = run_node n in
  if Ldv_obs.enabled () then
    Ldv_obs.counter ~by:(List.length rows) "db.tuples_emitted";
  { schema = n.schema; rows }

(** Union of the lineage of every result row: exactly the tuple versions the
    query read that mattered. *)
let result_lineage (r : result) : Tid.Set.t =
  List.fold_left
    (fun acc row -> Tid.Set.union acc (Annotation.lineage row.ann))
    Tid.Set.empty r.rows

(** Plain values of the result, dropping annotations. *)
let result_values (r : result) : Value.t array list =
  List.map (fun row -> row.values) r.rows

(** Byte footprint of a result's values, for recorded-result size
    accounting. *)
let result_bytes (r : result) : int =
  List.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a v -> a + Value.byte_size v) 2 row.values)
    0 r.rows

(** A stable fingerprint of the result values (order-sensitive), used to
    verify repeatability of replays. *)
let result_fingerprint (r : result) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Array.iter
        (fun v ->
          Buffer.add_string buf (Value.to_raw_string v);
          Buffer.add_char buf '\x1f')
        row.values;
      Buffer.add_char buf '\n')
    r.rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))
