(** Plan evaluation with provenance-annotation propagation.

    Every row flowing through the executor carries a provenance polynomial
    (see {!Annotation}): base tuples start as variables, joins multiply,
    aggregation groups and duplicate elimination add. The Lineage of a
    result row — the tuple versions the paper's slicing needs — is the
    variable set of its annotation. *)

type arow = { values : Value.t array; ann : Annotation.t }

type result = { schema : Schema.t; rows : arow list }

(* Hashtable keyed by a list of values, used by hash join, group-by and
   distinct. *)
module Row_key = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = List.fold_left Value.hash_fold 17 k
end

module Row_tbl = Hashtbl.Make (Row_key)

let eval_keys row keys = List.map (Eval_expr.eval row) keys

(* ------------------------------------------------------------------ *)
(* Aggregate computation.                                              *)

type agg_state = {
  mutable count : int;  (** non-null inputs seen *)
  mutable count_all : int;  (** all rows seen, for COUNT star *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let agg_init () =
  { count = 0;
    count_all = 0;
    sum_int = 0;
    sum_float = 0.0;
    saw_float = false;
    min_v = Value.Null;
    max_v = Value.Null }

let agg_feed st (v : Value.t) =
  st.count_all <- st.count_all + 1;
  match v with
  | Value.Null -> ()
  | v ->
    st.count <- st.count + 1;
    (match v with
    | Value.Int i ->
      st.sum_int <- st.sum_int + i;
      st.sum_float <- st.sum_float +. float_of_int i
    | Value.Float f ->
      st.saw_float <- true;
      st.sum_float <- st.sum_float +. f
    | _ -> ());
    (match Value.compare_total v st.min_v with
    | _ when Value.is_null st.min_v -> st.min_v <- v
    | c when c < 0 -> st.min_v <- v
    | _ -> ());
    (match Value.compare_total v st.max_v with
    | _ when Value.is_null st.max_v -> st.max_v <- v
    | c when c > 0 -> st.max_v <- v
    | _ -> ())

let agg_finish (fn : Sql_ast.agg_fn) st : Value.t =
  match fn with
  | Sql_ast.Count_star -> Value.Int st.count_all
  | Sql_ast.Count -> Value.Int st.count
  | Sql_ast.Sum ->
    if st.count = 0 then Value.Null
    else if st.saw_float then Value.Float st.sum_float
    else Value.Int st.sum_int
  | Sql_ast.Avg ->
    if st.count = 0 then Value.Null
    else Value.Float (st.sum_float /. float_of_int st.count)
  | Sql_ast.Min -> st.min_v
  | Sql_ast.Max -> st.max_v

(* ------------------------------------------------------------------ *)
(* Plan evaluation.

   Operators pass whole batches ([arow array]) between each other instead
   of consing per-row lists: scans materialize straight out of the table's
   settled rid order, filters and joins append into a growable buffer, and
   only the final [run] converts back to a list for the result record. *)

(* Growable row buffer for the batch operators. *)
module Vec = struct
  type 'a t = { mutable buf : 'a array; mutable len : int }

  let create () = { buf = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.buf then begin
      let grown = Array.make (max 16 (2 * v.len)) x in
      Array.blit v.buf 0 grown 0 v.len;
      v.buf <- grown
    end;
    v.buf.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.buf 0 v.len
end

let arow_of_tv (tv : Table.tuple_version) =
  { values = tv.Table.values; ann = Annotation.var tv.Table.tid }

let count_scanned n =
  if Ldv_obs.enabled () then Ldv_obs.counter ~by:n "db.rows_scanned"

let arows_of_tvs tvs = Array.of_list (List.map arow_of_tv tvs)

(* MVCC fallback for index access paths: index entries cover only the live
   snapshot, which is wrong on both sides of an open transaction
   (uncommitted entries present, tx-deleted rows absent). Rather than
   falling all the way back to a full MVCC scan, walk the version chains
   of (index candidates ∪ hot rids) — the only rids whose visibility can
   diverge from the live snapshot — re-checking the key predicate against
   the visible version. *)
let mvcc_candidates table candidates ~recheck =
  let tx = !Tx_context.viewer and at = !Tx_context.snapshot in
  let rids = List.sort_uniq compare (candidates @ Table.hot_rids table) in
  let out = Vec.create () in
  List.iter
    (fun rid ->
      match Table.visible_version ~tx ~at table ~rid with
      | Some tv when recheck tv -> Vec.push out (arow_of_tv tv)
      | _ -> ())
    rids;
  Vec.to_array out

(* Historical index probes on a non-frozen table cannot use the live
   index at all (old versions are not in it): filter a full AS-OF scan. *)
let scan_filter table ~at pred =
  let out = Vec.create () in
  List.iter
    (fun tv -> if pred tv then Vec.push out (arow_of_tv tv))
    (Table.scan_as_of ~tx:!Tx_context.viewer table ~at);
  Vec.to_array out

let in_bounds ~lo ~hi (v : Value.t) =
  (not (Value.is_null v))
  && (match lo with
     | None -> true
     | Some (b, incl) -> (
       match Value.compare_total v b with
       | c -> if incl then c >= 0 else c > 0
       | exception _ -> false))
  &&
  match hi with
  | None -> true
  | Some (b, incl) -> (
    match Value.compare_total v b with
    | c -> if incl then c <= 0 else c < 0
    | exception _ -> false)

let rec run_node (n : Planner.node) : arow array =
  match n.op with
  | Planner.Scan { table; as_of; _ } ->
    let rows =
      match as_of with
      | None ->
        (* while any transaction is open on this database the live table
           may hold uncommitted foreign versions (and lack rows deleted by
           open transactions), so take the history-walking MVCC path *)
        if !Tx_context.active then
          arows_of_tvs
            (Table.scan_visible ~tx:!Tx_context.viewer
               ~at:!Tx_context.snapshot table)
        else Array.map arow_of_tv (Table.scan_array table)
      | Some at ->
        arows_of_tvs (Table.scan_as_of ~tx:!Tx_context.viewer table ~at)
    in
    count_scanned (Array.length rows);
    rows
  | Planner.Index_scan { table; index; key; as_of; _ } ->
    let value = Eval_expr.eval [||] key in
    if Value.is_null value then [||]
    else begin
      let pos = index.Table.idx_column in
      let rows =
        match as_of with
        | None ->
          if !Tx_context.active then
            mvcc_candidates table
              (Table.index_candidate_rids table index value)
              ~recheck:(fun tv -> tv.Table.values.(pos) = value)
          else arows_of_tvs (Table.index_lookup table index value)
        | Some at ->
          if Table.frozen_at table ~at then
            (* no pending writes and no commit newer than [at]: the live
               index is exactly the state at [at] *)
            arows_of_tvs (Table.index_lookup table index value)
          else scan_filter table ~at (fun tv -> tv.Table.values.(pos) = value)
      in
      count_scanned (Array.length rows);
      rows
    end
  | Planner.Range_scan { table; oindex; lo; hi; as_of; _ } ->
    let pos = oindex.Table.oidx_column in
    let keep (tv : Table.tuple_version) =
      in_bounds ~lo ~hi tv.Table.values.(pos)
    in
    let rows =
      match as_of with
      | None ->
        if !Tx_context.active then
          mvcc_candidates table
            (Table.range_candidate_rids table oindex ~lo ~hi)
            ~recheck:keep
        else arows_of_tvs (Table.range_lookup table oindex ~lo ~hi)
      | Some at ->
        if Table.frozen_at table ~at then
          arows_of_tvs (Table.range_lookup table oindex ~lo ~hi)
        else scan_filter table ~at keep
    in
    count_scanned (Array.length rows);
    rows
  | Planner.Filter (pred, _, input) ->
    let out = Vec.create () in
    Array.iter
      (fun r -> if Eval_expr.eval_pred r.values pred then Vec.push out r)
      (run_node input);
    Vec.to_array out
  | Planner.Project (items, input) ->
    Array.map
      (fun r ->
        { values =
            Array.of_list
              (List.map (fun (e, _) -> Eval_expr.eval r.values e) items);
          ann = r.ann })
      (run_node input)
  | Planner.Hash_join { left; right; left_keys; right_keys; outer; build_left }
    when build_left ->
    (* inner join, hashing the (smaller) left input and probing with the
       right: output is probe-major, but each row is still left|right *)
    let lrows = run_node left in
    let index = Row_tbl.create (Array.length lrows + 1) in
    Array.iter
      (fun l ->
        let key = eval_keys l.values left_keys in
        (* SQL equality: NULL join keys never match *)
        if not (List.exists Value.is_null key) then Row_tbl.add index key l)
      lrows;
    assert (not outer);
    let out = Vec.create () in
    Array.iter
      (fun r ->
        let key = eval_keys r.values right_keys in
        if not (List.exists Value.is_null key) then
          List.iter
            (fun l ->
              Vec.push out
                { values = Array.append l.values r.values;
                  ann = Annotation.mul l.ann r.ann })
            (List.rev (Row_tbl.find_all index key)))
      (run_node right);
    Vec.to_array out
  | Planner.Hash_join { left; right; left_keys; right_keys; outer; _ } ->
    let rrows = run_node right in
    let right_width = Schema.arity right.Planner.schema in
    let index = Row_tbl.create (Array.length rrows + 1) in
    Array.iter
      (fun r ->
        let key = eval_keys r.values right_keys in
        (* SQL equality: NULL join keys never match *)
        if not (List.exists Value.is_null key) then Row_tbl.add index key r)
      rrows;
    let null_pad = Array.make right_width Value.Null in
    let out = Vec.create () in
    Array.iter
      (fun l ->
        let key = eval_keys l.values left_keys in
        let matches =
          if List.exists Value.is_null key then []
          else List.rev (Row_tbl.find_all index key)
        in
        match matches with
        | [] ->
          if outer then
            Vec.push out
              { values = Array.append l.values null_pad; ann = l.ann }
        | matches ->
          List.iter
            (fun r ->
              Vec.push out
                { values = Array.append l.values r.values;
                  ann = Annotation.mul l.ann r.ann })
            matches)
      (run_node left);
    Vec.to_array out
  | Planner.Nested_loop { left; right; pred; outer } ->
    let rrows = run_node right in
    let right_width = Schema.arity right.Planner.schema in
    let null_pad = Array.make right_width Value.Null in
    let out = Vec.create () in
    Array.iter
      (fun l ->
        let matched = ref false in
        Array.iter
          (fun r ->
            let values = Array.append l.values r.values in
            let keep =
              match pred with
              | None -> true
              | Some p -> Eval_expr.eval_pred values p
            in
            if keep then begin
              matched := true;
              Vec.push out { values; ann = Annotation.mul l.ann r.ann }
            end)
          rrows;
        if outer && not !matched then
          Vec.push out { values = Array.append l.values null_pad; ann = l.ann })
      (run_node left);
    Vec.to_array out
  | Planner.Union (a, b) -> Array.append (run_node a) (run_node b)
  | Planner.Annotate (extra, input) ->
    Array.map
      (fun r -> { r with ann = Annotation.mul extra r.ann })
      (run_node input)
  | Planner.Aggregate { input; group; aggs } ->
    let rows = run_node input in
    let groups = Row_tbl.create 64 in
    let order = ref [] in
    Array.iter
      (fun r ->
        let key = List.map (fun (g, _) -> Eval_expr.eval r.values g) group in
        let states, ann_ref =
          match Row_tbl.find_opt groups key with
          | Some entry -> entry
          | None ->
            let entry = (List.map (fun _ -> agg_init ()) aggs, ref []) in
            Row_tbl.replace groups key entry;
            order := key :: !order;
            entry
        in
        ann_ref := r.ann :: !ann_ref;
        List.iter2
          (fun st (fn, arg) ->
            match (fn, arg) with
            | Sql_ast.Count_star, _ -> agg_feed st (Value.Bool true)
            | _, Some e -> agg_feed st (Eval_expr.eval r.values e)
            | _, None -> agg_feed st (Value.Bool true))
          states aggs)
      rows;
    let finish key =
      let states, ann_ref = Row_tbl.find groups key in
      { values =
          Array.of_list (key @ List.map2 (fun st (fn, _) -> agg_finish fn st) states aggs);
        ann = Annotation.sum !ann_ref }
    in
    if Row_tbl.length groups = 0 && group = [] then
      (* aggregate over an empty input with no GROUP BY: one row *)
      [| { values =
             Array.of_list
               (List.map (fun (fn, _) -> agg_finish fn (agg_init ())) aggs);
           ann = Annotation.one } |]
    else Array.of_list (List.rev_map finish !order)
  | Planner.Sort (keys, input) ->
    let rows = run_node input in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (k, dir) :: rest -> (
          let va = Eval_expr.eval a.values k and vb = Eval_expr.eval b.values k in
          match Value.compare_total va vb with
          | 0 -> go rest
          | c -> ( match dir with Sql_ast.Asc -> c | Sql_ast.Desc -> -c))
      in
      go keys
    in
    (* every operator returns a fresh batch, so sorting in place is safe *)
    Array.stable_sort cmp rows;
    rows
  | Planner.Limit (l, input) ->
    let rows = run_node input in
    if Array.length rows <= l then rows else Array.sub rows 0 l
  | Planner.Distinct input ->
    let rows = run_node input in
    let seen = Row_tbl.create 64 in
    let order = ref [] in
    Array.iter
      (fun r ->
        let key = Array.to_list r.values in
        match Row_tbl.find_opt seen key with
        | Some ann_ref -> ann_ref := r.ann :: !ann_ref
        | None ->
          let ann_ref = ref [ r.ann ] in
          Row_tbl.replace seen key ann_ref;
          order := (key, ann_ref) :: !order)
      rows;
    Array.of_list
      (List.rev_map
         (fun (key, ann_ref) ->
           { values = Array.of_list key; ann = Annotation.sum !ann_ref })
         !order)

let run (n : Planner.node) : result =
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Exec @@ fun () ->
  let rows = run_node n in
  if Ldv_obs.enabled () then
    Ldv_obs.counter ~by:(Array.length rows) "db.tuples_emitted";
  { schema = n.schema; rows = Array.to_list rows }

(** Union of the lineage of every result row: exactly the tuple versions the
    query read that mattered. *)
let result_lineage (r : result) : Tid.Set.t =
  List.fold_left
    (fun acc row -> Tid.Set.union acc (Annotation.lineage row.ann))
    Tid.Set.empty r.rows

(** Plain values of the result, dropping annotations. *)
let result_values (r : result) : Value.t array list =
  List.map (fun row -> row.values) r.rows

(** Byte footprint of a result's values, for recorded-result size
    accounting. *)
let result_bytes (r : result) : int =
  List.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a v -> a + Value.byte_size v) 2 row.values)
    0 r.rows

(** A stable fingerprint of the result values (order-sensitive), used to
    verify repeatability of replays. *)
let result_fingerprint (r : result) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Array.iter
        (fun v ->
          Buffer.add_string buf (Value.to_raw_string v);
          Buffer.add_char buf '\x1f')
        row.values;
      Buffer.add_char buf '\n')
    r.rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))
