(** The catalog: a named collection of tables and their indexes. Names are
    case-insensitive (normalized to lowercase). *)

type t

val create : unit -> t

(** @raise Errors.Db_error [Duplicate_table]. *)
val create_table : t -> name:string -> schema:Schema.t -> Table.t

(** @raise Errors.Db_error [Unknown_table]. *)
val drop_table : t -> string -> unit

(** @raise Errors.Db_error [Unknown_table]. *)
val find : t -> string -> Table.t

val find_opt : t -> string -> Table.t option
val mem : t -> string -> bool

val table_names : t -> string list
val iter : t -> (Table.t -> unit) -> unit

(** Create a named index on [table].[column], registered for DROP INDEX;
    [ordered] selects the range-capable sorted index over the default
    hash index.
    @raise Errors.Db_error on duplicates or unknown tables/columns. *)
val create_index :
  ?ordered:bool -> t -> index:string -> table:string -> column:string -> unit

(** @raise Errors.Db_error when the index is unknown. *)
val drop_index : t -> string -> unit

(** Total bytes of live data across all tables. *)
val data_bytes : t -> int
