(** Versioned tuple storage.

    Every write produces a new tuple *version* identified by a [Tid.t]. The
    table keeps both the live snapshot (what queries see) and the full
    version history (what update/delete reenactment and package slicing
    need). This replaces the paper's schema-extension trick
    ([prov_rowid]/[prov_v] columns added to user tables): versioning is
    native to the storage layer. *)

type tuple_version = {
  tid : Tid.t;
  values : Value.t array;
  (* Closed half of the version's validity interval: the clock at which this
     version was superseded or deleted, if any. *)
  mutable retired_at : int option;
  (* MVCC bookkeeping. A version written under an open transaction carries
     that transaction's id in [txid] until commit stamps it 0; [committed_at]
     is the clock at which the version became visible to others (the write
     clock for autocommit, the commit clock for transactional writes, 0
     while uncommitted). Symmetrically [retired_tx]/[retired_commit] track
     who retired the version and when that retirement committed. *)
  mutable txid : int;
  mutable committed_at : int;
  mutable retired_tx : int;
  mutable retired_commit : int;
}

(** A secondary hash index over one column of the live snapshot. *)
type index = {
  idx_name : string;
  idx_column : int;  (** position in the schema *)
  idx_entries : (Value.t, int list ref) Hashtbl.t;  (** value -> rids *)
}

type t = {
  name : string;
  schema : Schema.t;
  live : (int, tuple_version) Hashtbl.t;  (** rid -> current version *)
  mutable history : tuple_version list;  (** all versions, newest first *)
  by_version : (int * int, tuple_version) Hashtbl.t;
      (** (rid, version) -> the version, for O(1) provenance lookups *)
  mutable next_rid : int;
  mutable live_order : int list;  (** rids in insertion order, newest first *)
  mutable indexes : index list;
}

let create ~name ~schema =
  { name = String.lowercase_ascii name;
    schema;
    live = Hashtbl.create 64;
    history = [];
    by_version = Hashtbl.create 64;
    next_rid = 1;
    live_order = [];
    indexes = [] }

(* ------------------------------------------------------------------ *)
(* Index maintenance.                                                  *)

let index_add idx value rid =
  if not (Value.is_null value) then
    match Hashtbl.find_opt idx.idx_entries value with
    | Some r -> r := rid :: !r
    | None -> Hashtbl.replace idx.idx_entries value (ref [ rid ])

let index_remove idx value rid =
  if not (Value.is_null value) then
    match Hashtbl.find_opt idx.idx_entries value with
    | Some r -> r := List.filter (fun x -> x <> rid) !r
    | None -> ()

let indexes_add t (tv : tuple_version) =
  List.iter
    (fun idx -> index_add idx tv.values.(idx.idx_column) tv.tid.Tid.rid)
    t.indexes

let indexes_remove t (tv : tuple_version) =
  List.iter
    (fun idx -> index_remove idx tv.values.(idx.idx_column) tv.tid.Tid.rid)
    t.indexes

(* live_order is kept in descending-rid order (newest insert first), so
   restores and rollbacks can put a rid back at its canonical position. *)
let insert_sorted rid order =
  let rec go = function
    | x :: rest when x > rid -> x :: go rest
    | l -> rid :: l
  in
  go order

let name t = t.name
let schema t = t.schema
let row_count t = Hashtbl.length t.live
let version_count t = List.length t.history

(** Insert a row; returns the new tuple version. [clock] is the logical
    timestamp recorded as the version. [tx] is the open transaction writing
    the row (0 = autocommit: the version is committed immediately). *)
let insert ?(tx = 0) t ~clock (row : Value.t array) =
  let values = Schema.coerce_row t.schema row in
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let tv =
    { tid = Tid.make ~table:t.name ~rid ~version:clock;
      values;
      retired_at = None;
      txid = tx;
      committed_at = (if tx = 0 then clock else 0);
      retired_tx = 0;
      retired_commit = 0 }
  in
  Hashtbl.replace t.live rid tv;
  t.history <- tv :: t.history;
  Hashtbl.replace t.by_version (rid, clock) tv;
  t.live_order <- rid :: t.live_order;
  indexes_add t tv;
  tv

(** Update the live version of [rid] to new values; returns
    [(old_version, new_version)]. *)
let update ?(tx = 0) t ~clock ~rid (row : Value.t array) =
  match Hashtbl.find_opt t.live rid with
  | None ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "update of dead rid %d in table %s" rid t.name))
  | Some old_tv ->
    let values = Schema.coerce_row t.schema row in
    let tv =
      { tid = Tid.make ~table:t.name ~rid ~version:clock;
        values;
        retired_at = None;
        txid = tx;
        committed_at = (if tx = 0 then clock else 0);
        retired_tx = 0;
        retired_commit = 0 }
    in
    old_tv.retired_at <- Some clock;
    old_tv.retired_tx <- tx;
    old_tv.retired_commit <- (if tx = 0 then clock else 0);
    Hashtbl.replace t.live rid tv;
    t.history <- tv :: t.history;
    Hashtbl.replace t.by_version (rid, clock) tv;
    indexes_remove t old_tv;
    indexes_add t tv;
    (old_tv, tv)

(** Delete the live version of [rid]; returns the retired version. *)
let delete ?(tx = 0) t ~clock ~rid =
  match Hashtbl.find_opt t.live rid with
  | None ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "delete of dead rid %d in table %s" rid t.name))
  | Some tv ->
    tv.retired_at <- Some clock;
    tv.retired_tx <- tx;
    tv.retired_commit <- (if tx = 0 then clock else 0);
    Hashtbl.remove t.live rid;
    t.live_order <- List.filter (fun r -> r <> rid) t.live_order;
    indexes_remove t tv;
    tv

(** Live tuple versions in insertion order (oldest first). *)
let scan t : tuple_version list =
  List.rev_map (fun rid -> Hashtbl.find t.live rid) t.live_order

let find_live t ~rid = Hashtbl.find_opt t.live rid

(** Look up any historical version by tid (O(1)). *)
let find_version t (tid : Tid.t) =
  if not (String.equal tid.Tid.table t.name) then None
  else Hashtbl.find_opt t.by_version (tid.Tid.rid, tid.Tid.version)

(** All versions ever written, oldest first. *)
let all_versions t = List.rev t.history

(** Approximate on-disk footprint of the live data in bytes; drives the
    size of simulated DB data files. *)
let data_bytes t =
  Hashtbl.fold
    (fun _ tv acc ->
      acc + Array.fold_left (fun a v -> a + Value.byte_size v) 8 tv.values)
    t.live 0

(** Restore a tuple version verbatim (used when loading a package's CSV
    subset: rids and versions must survive the round-trip so that replayed
    traces align). *)
let restore_version t ~rid ~version (row : Value.t array) =
  let values = Schema.coerce_row t.schema row in
  let tv =
    { tid = Tid.make ~table:t.name ~rid ~version;
      values;
      retired_at = None;
      txid = 0;
      committed_at = version;
      retired_tx = 0;
      retired_commit = 0 }
  in
  (match Hashtbl.find_opt t.live rid with
  | Some old when old.tid.Tid.version >= version ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "restore of stale version %d for rid %d" version rid))
  | Some old ->
    old.retired_at <- Some version;
    old.retired_commit <- version;
    indexes_remove t old;
    Hashtbl.replace t.live rid tv;
    indexes_add t tv
  | None ->
    Hashtbl.replace t.live rid tv;
    t.live_order <- insert_sorted rid t.live_order;
    indexes_add t tv);
  if rid >= t.next_rid then t.next_rid <- rid + 1;
  t.history <- tv :: t.history;
  Hashtbl.replace t.by_version (rid, version) tv;
  tv

(** Restore the row-id allocator from a checkpoint. Live rows alone
    under-state it when the highest-rid row was deleted, so checkpoint
    images carry the allocator explicitly; never rewinds. *)
let restore_next_rid t rid = if rid > t.next_rid then t.next_rid <- rid

(* ------------------------------------------------------------------ *)
(* Secondary indexes.                                                  *)

(** Create a hash index over [column]; backfills from the live snapshot. *)
let create_index t ~index_name ~column =
  let column = String.lowercase_ascii column in
  if List.exists (fun i -> String.equal i.idx_name index_name) t.indexes then
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "index %S already exists" index_name));
  let position = Schema.resolve t.schema column in
  let idx =
    { idx_name = index_name;
      idx_column = position;
      idx_entries = Hashtbl.create 256 }
  in
  Hashtbl.iter (fun rid tv -> index_add idx tv.values.(position) rid) t.live;
  t.indexes <- idx :: t.indexes;
  idx

let drop_index t ~index_name =
  if not (List.exists (fun i -> String.equal i.idx_name index_name) t.indexes)
  then Errors.fail (Errors.Unknown_table ("index " ^ index_name));
  t.indexes <-
    List.filter (fun i -> not (String.equal i.idx_name index_name)) t.indexes

(** An index over column position [column], if one exists. *)
let index_on t ~column =
  List.find_opt (fun i -> i.idx_column = column) t.indexes

let index_names t = List.map (fun i -> i.idx_name) t.indexes

(** Live tuple versions whose indexed column equals [value], in rid order
    (deterministic regardless of maintenance history). *)
let index_lookup t (idx : index) (value : Value.t) : tuple_version list =
  match Hashtbl.find_opt idx.idx_entries value with
  | None -> []
  | Some rids ->
    List.sort_uniq compare !rids
    |> List.filter_map (fun rid -> Hashtbl.find_opt t.live rid)

(* ------------------------------------------------------------------ *)
(* MVCC visibility and time travel.                                    *)

(** Whether [tx] (0 = an autocommit reader) sees [tv] at logical time
    [at]. A version is visible when it was created by the viewer's own
    open transaction or committed no later than [at], and not retired —
    where a retirement by the viewer's own transaction always hides the
    version, an uncommitted retirement by a foreign transaction never
    does, and a committed retirement hides it from [at] onwards. *)
let visible ?(tx = 0) ~at (tv : tuple_version) =
  (if tv.txid <> 0 then tv.txid = tx else tv.committed_at <= at)
  &&
  if tv.retired_tx <> 0 then tv.retired_tx <> tx
  else tv.retired_commit = 0 || tv.retired_commit > at

(** The snapshot [tx] sees at time [at] (default: the committed present),
    in ascending-rid order — the same order [scan] yields, so switching
    between the two paths can never reorder results. *)
let scan_visible ?(tx = 0) ?(at = max_int) t : tuple_version list =
  List.filter (visible ~tx ~at) (List.rev t.history)
  |> List.sort (fun a b -> compare a.tid.Tid.rid b.tid.Tid.rid)

(** The live snapshot as of logical time [at]: for each row, the version
    committed no later than [at] and not retired by a commit at or before
    [at]. [tx] additionally folds in that transaction's own uncommitted
    writes (its begin-snapshot plus its writes: MVCC read rule). *)
let scan_as_of ?(tx = 0) t ~at : tuple_version list =
  List.filter (visible ~tx ~at) (List.rev t.history)

(* ------------------------------------------------------------------ *)
(* Transaction rollback support.                                       *)

(** Erase a version created inside an aborted transaction: it disappears
    from the live snapshot, the history, and the indexes — as if it never
    happened. *)
let unlink_version t (tv : tuple_version) =
  (match Hashtbl.find_opt t.live tv.tid.Tid.rid with
  | Some live_tv when live_tv == tv ->
    Hashtbl.remove t.live tv.tid.Tid.rid;
    t.live_order <- List.filter (fun r -> r <> tv.tid.Tid.rid) t.live_order;
    indexes_remove t tv
  | _ -> ());
  t.history <- List.filter (fun x -> not (x == tv)) t.history;
  Hashtbl.remove t.by_version (tv.tid.Tid.rid, tv.tid.Tid.version)

(** Resurrect a version retired inside an aborted transaction. *)
let relink_version t (tv : tuple_version) =
  tv.retired_at <- None;
  tv.retired_tx <- 0;
  tv.retired_commit <- 0;
  (match Hashtbl.find_opt t.live tv.tid.Tid.rid with
  | Some current when not (current == tv) ->
    (* the slot is occupied by an aborted newer version: caller must have
       unlinked it first *)
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "relink of rid %d would clobber a live version"
            tv.tid.Tid.rid))
  | Some _ -> ()
  | None ->
    Hashtbl.replace t.live tv.tid.Tid.rid tv;
    t.live_order <- insert_sorted tv.tid.Tid.rid t.live_order;
    indexes_add t tv)
