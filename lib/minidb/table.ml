(** Versioned tuple storage.

    Every write produces a new tuple *version* identified by a [Tid.t]. The
    table keeps both the live snapshot (what queries see) and the full
    version history (what update/delete reenactment and package slicing
    need). This replaces the paper's schema-extension trick
    ([prov_rowid]/[prov_v] columns added to user tables): versioning is
    native to the storage layer.

    The history is organised as per-rid *version chains* (newest first), so
    MVCC reads touch only the chains of candidate rids instead of a global
    version list, and visibility scans cost O(rows) rather than O(versions
    ever written). Alongside the hash indexes the table supports *ordered*
    indexes (a lazily-merged sorted array over [Value.t]) that serve range
    lookups for the planner's [Range_scan] nodes. *)

type tuple_version = {
  tid : Tid.t;
  values : Value.t array;
  (* Closed half of the version's validity interval: the clock at which this
     version was superseded or deleted, if any. *)
  mutable retired_at : int option;
  (* MVCC bookkeeping. A version written under an open transaction carries
     that transaction's id in [txid] until commit stamps it 0; [committed_at]
     is the clock at which the version became visible to others (the write
     clock for autocommit, the commit clock for transactional writes, 0
     while uncommitted). Symmetrically [retired_tx]/[retired_commit] track
     who retired the version and when that retirement committed. *)
  mutable txid : int;
  mutable committed_at : int;
  mutable retired_tx : int;
  mutable retired_commit : int;
}

(** A secondary hash index over one column of the live snapshot. *)
type index = {
  idx_name : string;
  idx_column : int;  (** position in the schema *)
  idx_entries : (Value.t, int list ref) Hashtbl.t;  (** value -> rids *)
}

(** An ordered secondary index: a sorted array of (value, rid) entries over
    the live snapshot, maintained lazily. Additions buffer in
    [oidx_pending] and merge on the next lookup; removals only bump
    [oidx_dead] — stale entries are filtered against the live snapshot at
    lookup time and swept out when the dead fraction grows. *)
type ordered_index = {
  oidx_name : string;
  oidx_column : int;
  mutable oidx_keys : (Value.t * int) array;  (** sorted by (value, rid) *)
  mutable oidx_n : int;  (** used prefix of [oidx_keys] *)
  mutable oidx_pending : (Value.t * int) list;
  mutable oidx_pending_n : int;
  mutable oidx_dead : int;  (** estimated stale entries in the prefix *)
  mutable oidx_distinct : int;  (** distinct keys at the last merge *)
}

type t = {
  name : string;
  schema : Schema.t;
  live : (int, tuple_version) Hashtbl.t;  (** rid -> current version *)
  chains : (int, tuple_version list ref) Hashtbl.t;
      (** rid -> all versions of the row, newest first *)
  by_version : (int * int, tuple_version) Hashtbl.t;
      (** (rid, version) -> the version, for O(1) provenance lookups *)
  mutable next_rid : int;
  mutable n_versions : int;
  (* Live scan order: a sorted ascending array of candidate rids plus an
     unsorted pending buffer, merged lazily on scan. Deletions only bump
     [order_dead]; dead entries are swept when they outnumber half the
     array. This keeps delete/rollback O(1) per row where the old
     [List.filter] bookkeeping was O(live) per call. *)
  mutable order : int array;
  mutable order_n : int;
  mutable order_pending : int list;
  mutable order_pending_n : int;
  mutable order_dead : int;
  mutable indexes : index list;
  mutable ordered : ordered_index list;
  (* MVCC fast-path bookkeeping. [tx_open] mirrors "the owning database has
     an open transaction"; while true, every rid whose visibility can
     diverge from the live snapshot is recorded in [hot] so index lookups
     can fall back to chain walks over (index candidates ∪ hot) only.
     [pending_writes] counts versions with an uncommitted write or
     retirement; [last_stamp] is the newest clock at which committed
     visibility changed — together they certify when an AS-OF or MVCC scan
     may take the plain live path. *)
  mutable tx_open : bool;
  hot : (int, unit) Hashtbl.t;
  mutable pending_writes : int;
  mutable last_stamp : int;
  (* Planner statistics pin: [(rows_at_audit, live_rows_at_pin)]. A
     package-restored table holds only the sliced tuple subset; pinning the
     audit-time row count keeps cost-based join decisions identical between
     the recorded run and its replay (both evolve by the same DML delta). *)
  mutable pinned_rows : (int * int) option;
}

let create ~name ~schema =
  { name = String.lowercase_ascii name;
    schema;
    live = Hashtbl.create 64;
    chains = Hashtbl.create 64;
    by_version = Hashtbl.create 64;
    next_rid = 1;
    n_versions = 0;
    order = [||];
    order_n = 0;
    order_pending = [];
    order_pending_n = 0;
    order_dead = 0;
    indexes = [];
    ordered = [];
    tx_open = false;
    hot = Hashtbl.create 16;
    pending_writes = 0;
    last_stamp = 0;
    pinned_rows = None }

let name t = t.name
let schema t = t.schema
let row_count t = Hashtbl.length t.live
let version_count t = t.n_versions

(* ------------------------------------------------------------------ *)
(* MVCC bookkeeping helpers.                                           *)

let note_churn t rid = if t.tx_open then Hashtbl.replace t.hot rid ()
let stamp t clock = if clock > t.last_stamp then t.last_stamp <- clock

(** Told by the database when its open-transaction count leaves/returns to
    zero. Closing the last transaction forgets the hot set: live snapshot,
    indexes and committed visibility agree again. *)
let note_tx_open t = t.tx_open <- true

let note_tx_closed t =
  t.tx_open <- false;
  Hashtbl.reset t.hot

let hot_rids t = Hashtbl.fold (fun rid () acc -> rid :: acc) t.hot []

(** Whether the committed snapshot at [at] equals the live snapshot: no
    uncommitted writes anywhere and nothing committed after [at]. Index
    lookups under AS-OF use this to stay on the fast path (snapshot-pinned
    replica reads are almost always frozen in this sense). *)
let frozen_at t ~at = t.pending_writes = 0 && at >= t.last_stamp

(* ------------------------------------------------------------------ *)
(* Version chains.                                                     *)

let chain_add t (tv : tuple_version) =
  let rid = tv.tid.Tid.rid in
  (match Hashtbl.find_opt t.chains rid with
  | Some r -> r := tv :: !r
  | None -> Hashtbl.replace t.chains rid (ref [ tv ]));
  t.n_versions <- t.n_versions + 1

let chain_remove t (tv : tuple_version) =
  let rid = tv.tid.Tid.rid in
  match Hashtbl.find_opt t.chains rid with
  | None -> ()
  | Some r ->
    let rest = List.filter (fun x -> not (x == tv)) !r in
    if List.compare_lengths rest !r <> 0 then
      t.n_versions <- t.n_versions - 1;
    if rest = [] then Hashtbl.remove t.chains rid else r := rest

(* ------------------------------------------------------------------ *)
(* Hash index maintenance.                                             *)

let index_add idx value rid =
  if not (Value.is_null value) then
    match Hashtbl.find_opt idx.idx_entries value with
    | Some r -> r := rid :: !r
    | None -> Hashtbl.replace idx.idx_entries value (ref [ rid ])

let index_remove idx value rid =
  if not (Value.is_null value) then
    match Hashtbl.find_opt idx.idx_entries value with
    | Some r ->
      r := List.filter (fun x -> x <> rid) !r;
      (* drop emptied buckets: under update/delete churn they would
         otherwise accumulate forever and skew the distinct-count
         statistics derived from the bucket count *)
      if !r = [] then Hashtbl.remove idx.idx_entries value
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Ordered index maintenance.                                          *)

let entry_compare (v1, r1) (v2, r2) =
  match Value.compare_total v1 v2 with 0 -> Int.compare r1 r2 | c -> c

let oindex_add oidx value rid =
  if not (Value.is_null value) then begin
    oidx.oidx_pending <- (value, rid) :: oidx.oidx_pending;
    oidx.oidx_pending_n <- oidx.oidx_pending_n + 1
  end

let oindex_remove oidx value _rid =
  if not (Value.is_null value) then oidx.oidx_dead <- oidx.oidx_dead + 1

(* An ordered-index entry is current iff the rid is live and the live
   version still carries the entry's value in the indexed column. *)
let oentry_live t oidx (v, rid) =
  match Hashtbl.find_opt t.live rid with
  | None -> false
  | Some tv -> Value.equal tv.values.(oidx.oidx_column) v

let oindex_recount oidx =
  let distinct = ref 0 in
  for i = 0 to oidx.oidx_n - 1 do
    if i = 0 || Value.compare_total (fst oidx.oidx_keys.(i - 1)) (fst oidx.oidx_keys.(i)) <> 0
    then incr distinct
  done;
  oidx.oidx_distinct <- !distinct

(** Merge pending additions into the sorted array and, when stale entries
    dominate, sweep them out against the live snapshot. *)
let settle_oindex t oidx =
  if oidx.oidx_pending_n > 0 then begin
    let extra = Array.of_list oidx.oidx_pending in
    Array.sort entry_compare extra;
    let merged =
      Array.make (oidx.oidx_n + Array.length extra) (Value.Null, 0)
    in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    let push e =
      if !k = 0 || entry_compare merged.(!k - 1) e <> 0 then begin
        merged.(!k) <- e;
        incr k
      end
    in
    while !i < oidx.oidx_n || !j < Array.length extra do
      if !j >= Array.length extra then begin
        push oidx.oidx_keys.(!i);
        incr i
      end
      else if
        !i < oidx.oidx_n && entry_compare oidx.oidx_keys.(!i) extra.(!j) <= 0
      then begin
        push oidx.oidx_keys.(!i);
        incr i
      end
      else begin
        push extra.(!j);
        incr j
      end
    done;
    oidx.oidx_keys <- merged;
    oidx.oidx_n <- !k;
    oidx.oidx_pending <- [];
    oidx.oidx_pending_n <- 0;
    oindex_recount oidx
  end;
  if oidx.oidx_dead > 64 && oidx.oidx_dead * 2 > oidx.oidx_n then begin
    let k = ref 0 in
    for i = 0 to oidx.oidx_n - 1 do
      if oentry_live t oidx oidx.oidx_keys.(i) then begin
        oidx.oidx_keys.(!k) <- oidx.oidx_keys.(i);
        incr k
      end
    done;
    oidx.oidx_n <- !k;
    oidx.oidx_dead <- 0;
    oindex_recount oidx
  end

type bound = Value.t * bool  (** bound value, inclusive? *)

(* First index in [0, n) whose entry is inside the lower bound. *)
let lower_bound oidx (b : bound option) =
  match b with
  | None -> 0
  | Some (v, incl) ->
    let lo = ref 0 and hi = ref oidx.oidx_n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Value.compare_total (fst oidx.oidx_keys.(mid)) v in
      if c < 0 || (c = 0 && not incl) then lo := mid + 1 else hi := mid
    done;
    !lo

(* First index in [0, n) whose entry is past the upper bound. *)
let upper_bound oidx (b : bound option) =
  match b with
  | None -> oidx.oidx_n
  | Some (v, incl) ->
    let lo = ref 0 and hi = ref oidx.oidx_n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Value.compare_total (fst oidx.oidx_keys.(mid)) v in
      if c < 0 || (c = 0 && incl) then lo := mid + 1 else hi := mid
    done;
    !lo

(* ------------------------------------------------------------------ *)
(* Index fan-out.                                                      *)

let indexes_add t (tv : tuple_version) =
  let rid = tv.tid.Tid.rid in
  List.iter (fun idx -> index_add idx tv.values.(idx.idx_column) rid) t.indexes;
  List.iter
    (fun oidx -> oindex_add oidx tv.values.(oidx.oidx_column) rid)
    t.ordered

let indexes_remove t (tv : tuple_version) =
  let rid = tv.tid.Tid.rid in
  List.iter
    (fun idx -> index_remove idx tv.values.(idx.idx_column) rid)
    t.indexes;
  List.iter
    (fun oidx -> oindex_remove oidx tv.values.(oidx.oidx_column) rid)
    t.ordered

(* ------------------------------------------------------------------ *)
(* Live scan order.                                                    *)

let order_push t rid =
  t.order_pending <- rid :: t.order_pending;
  t.order_pending_n <- t.order_pending_n + 1

(* Merge pending rids into the sorted array (deduplicating — a deleted rid
   may have been resurrected by rollback or restore), then sweep dead rids
   when they dominate. After a sweep the array holds exactly the live
   rids. *)
let settle_order t =
  if t.order_pending_n > 0 then begin
    let extra = Array.of_list t.order_pending in
    Array.sort compare extra;
    let merged = Array.make (t.order_n + Array.length extra) 0 in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    let push rid =
      if !k = 0 || merged.(!k - 1) <> rid then begin
        merged.(!k) <- rid;
        incr k
      end
    in
    while !i < t.order_n || !j < Array.length extra do
      if !j >= Array.length extra then begin
        push t.order.(!i);
        incr i
      end
      else if !i < t.order_n && t.order.(!i) <= extra.(!j) then begin
        push t.order.(!i);
        incr i
      end
      else begin
        push extra.(!j);
        incr j
      end
    done;
    t.order <- merged;
    t.order_n <- !k;
    t.order_pending <- [];
    t.order_pending_n <- 0
  end;
  if t.order_dead > 64 && t.order_dead * 2 > t.order_n then begin
    let k = ref 0 in
    for i = 0 to t.order_n - 1 do
      if Hashtbl.mem t.live t.order.(i) then begin
        t.order.(!k) <- t.order.(i);
        incr k
      end
    done;
    t.order_n <- !k;
    t.order_dead <- 0
  end

(* ------------------------------------------------------------------ *)
(* Writes.                                                             *)

(** Insert a row; returns the new tuple version. [clock] is the logical
    timestamp recorded as the version. [tx] is the open transaction writing
    the row (0 = autocommit: the version is committed immediately). *)
let insert ?(tx = 0) t ~clock (row : Value.t array) =
  let values = Schema.coerce_row t.schema row in
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let tv =
    { tid = Tid.make ~table:t.name ~rid ~version:clock;
      values;
      retired_at = None;
      txid = tx;
      committed_at = (if tx = 0 then clock else 0);
      retired_tx = 0;
      retired_commit = 0 }
  in
  Hashtbl.replace t.live rid tv;
  chain_add t tv;
  Hashtbl.replace t.by_version (rid, clock) tv;
  order_push t rid;
  indexes_add t tv;
  if tx <> 0 then t.pending_writes <- t.pending_writes + 1;
  stamp t clock;
  note_churn t rid;
  tv

(** Update the live version of [rid] to new values; returns
    [(old_version, new_version)]. *)
let update ?(tx = 0) t ~clock ~rid (row : Value.t array) =
  match Hashtbl.find_opt t.live rid with
  | None ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "update of dead rid %d in table %s" rid t.name))
  | Some old_tv ->
    let values = Schema.coerce_row t.schema row in
    let tv =
      { tid = Tid.make ~table:t.name ~rid ~version:clock;
        values;
        retired_at = None;
        txid = tx;
        committed_at = (if tx = 0 then clock else 0);
        retired_tx = 0;
        retired_commit = 0 }
    in
    old_tv.retired_at <- Some clock;
    old_tv.retired_tx <- tx;
    old_tv.retired_commit <- (if tx = 0 then clock else 0);
    Hashtbl.replace t.live rid tv;
    chain_add t tv;
    Hashtbl.replace t.by_version (rid, clock) tv;
    indexes_remove t old_tv;
    indexes_add t tv;
    if tx <> 0 then t.pending_writes <- t.pending_writes + 2;
    stamp t clock;
    note_churn t rid;
    (old_tv, tv)

(** Delete the live version of [rid]; returns the retired version. *)
let delete ?(tx = 0) t ~clock ~rid =
  match Hashtbl.find_opt t.live rid with
  | None ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "delete of dead rid %d in table %s" rid t.name))
  | Some tv ->
    tv.retired_at <- Some clock;
    tv.retired_tx <- tx;
    tv.retired_commit <- (if tx = 0 then clock else 0);
    Hashtbl.remove t.live rid;
    t.order_dead <- t.order_dead + 1;
    indexes_remove t tv;
    if tx <> 0 then t.pending_writes <- t.pending_writes + 1;
    stamp t clock;
    note_churn t rid;
    tv

(* ------------------------------------------------------------------ *)
(* Commit stamping.                                                    *)

(** Stamp a version created inside a committing transaction with the
    commit clock, making it visible to later snapshots. *)
let commit_insert_stamp t (tv : tuple_version) ~commit_clock =
  if tv.txid <> 0 then t.pending_writes <- t.pending_writes - 1;
  tv.txid <- 0;
  tv.committed_at <- commit_clock;
  stamp t commit_clock

(** Stamp a retirement performed inside a committing transaction. *)
let commit_retire_stamp t (tv : tuple_version) ~commit_clock =
  if tv.retired_tx <> 0 then t.pending_writes <- t.pending_writes - 1;
  tv.retired_tx <- 0;
  tv.retired_commit <- commit_clock;
  tv.retired_at <- Some commit_clock;
  stamp t commit_clock

(* ------------------------------------------------------------------ *)
(* Reads.                                                              *)

(** Live tuple versions in insertion order (oldest first). *)
let scan t : tuple_version list =
  settle_order t;
  let acc = ref [] in
  for i = t.order_n - 1 downto 0 do
    match Hashtbl.find_opt t.live t.order.(i) with
    | Some tv -> acc := tv :: !acc
    | None -> ()
  done;
  !acc

(** Live tuple versions as an array (same ascending-rid order as [scan]);
    the executor's batch pipeline starts here. *)
let scan_array t : tuple_version array =
  settle_order t;
  if t.order_dead > 0 then begin
    (* force the sweep so the prefix is exactly the live rids *)
    let k = ref 0 in
    for i = 0 to t.order_n - 1 do
      if Hashtbl.mem t.live t.order.(i) then begin
        t.order.(!k) <- t.order.(i);
        incr k
      end
    done;
    t.order_n <- !k;
    t.order_dead <- 0
  end;
  Array.init t.order_n (fun i -> Hashtbl.find t.live t.order.(i))

let find_live t ~rid = Hashtbl.find_opt t.live rid

(** Look up any historical version by tid (O(1)). *)
let find_version t (tid : Tid.t) =
  if not (String.equal tid.Tid.table t.name) then None
  else Hashtbl.find_opt t.by_version (tid.Tid.rid, tid.Tid.version)

(** All versions ever written, ordered by (rid, version). *)
let all_versions t =
  Hashtbl.fold (fun _ chain acc -> List.rev_append !chain acc) t.chains []
  |> List.sort (fun a b ->
         match Int.compare a.tid.Tid.rid b.tid.Tid.rid with
         | 0 -> Int.compare a.tid.Tid.version b.tid.Tid.version
         | c -> c)

(** Approximate on-disk footprint of the live data in bytes; drives the
    size of simulated DB data files. *)
let data_bytes t =
  Hashtbl.fold
    (fun _ tv acc ->
      acc + Array.fold_left (fun a v -> a + Value.byte_size v) 8 tv.values)
    t.live 0

(** Restore a tuple version verbatim (used when loading a package's CSV
    subset: rids and versions must survive the round-trip so that replayed
    traces align). *)
let restore_version t ~rid ~version (row : Value.t array) =
  let values = Schema.coerce_row t.schema row in
  let tv =
    { tid = Tid.make ~table:t.name ~rid ~version;
      values;
      retired_at = None;
      txid = 0;
      committed_at = version;
      retired_tx = 0;
      retired_commit = 0 }
  in
  (match Hashtbl.find_opt t.live rid with
  | Some old when old.tid.Tid.version >= version ->
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "restore of stale version %d for rid %d" version rid))
  | Some old ->
    old.retired_at <- Some version;
    old.retired_commit <- version;
    indexes_remove t old;
    Hashtbl.replace t.live rid tv;
    indexes_add t tv
  | None ->
    Hashtbl.replace t.live rid tv;
    order_push t rid;
    indexes_add t tv);
  if rid >= t.next_rid then t.next_rid <- rid + 1;
  chain_add t tv;
  Hashtbl.replace t.by_version (rid, version) tv;
  stamp t version;
  note_churn t rid;
  tv

(** Restore the row-id allocator from a checkpoint. Live rows alone
    under-state it when the highest-rid row was deleted, so checkpoint
    images carry the allocator explicitly; never rewinds. *)
let restore_next_rid t rid = if rid > t.next_rid then t.next_rid <- rid

(* ------------------------------------------------------------------ *)
(* Secondary indexes.                                                  *)

let index_exists t index_name =
  List.exists (fun i -> String.equal i.idx_name index_name) t.indexes
  || List.exists (fun o -> String.equal o.oidx_name index_name) t.ordered

(** Create an index over [column]; backfills from the live snapshot.
    [ordered] picks the sorted-array index (range-capable) over the
    default hash index. *)
let create_index ?(ordered = false) t ~index_name ~column =
  let column = String.lowercase_ascii column in
  if index_exists t index_name then
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "index %S already exists" index_name));
  let position = Schema.resolve t.schema column in
  if ordered then begin
    let oidx =
      { oidx_name = index_name;
        oidx_column = position;
        oidx_keys = [||];
        oidx_n = 0;
        oidx_pending = [];
        oidx_pending_n = 0;
        oidx_dead = 0;
        oidx_distinct = 0 }
    in
    Hashtbl.iter
      (fun rid tv -> oindex_add oidx tv.values.(position) rid)
      t.live;
    settle_oindex t oidx;
    t.ordered <- oidx :: t.ordered
  end
  else begin
    let idx =
      { idx_name = index_name;
        idx_column = position;
        idx_entries = Hashtbl.create 256 }
    in
    Hashtbl.iter (fun rid tv -> index_add idx tv.values.(position) rid) t.live;
    t.indexes <- idx :: t.indexes
  end

let drop_index t ~index_name =
  if not (index_exists t index_name) then
    Errors.fail (Errors.Unknown_table ("index " ^ index_name));
  t.indexes <-
    List.filter (fun i -> not (String.equal i.idx_name index_name)) t.indexes;
  t.ordered <-
    List.filter (fun o -> not (String.equal o.oidx_name index_name)) t.ordered

(** A hash index over column position [column], if one exists. *)
let index_on t ~column =
  List.find_opt (fun i -> i.idx_column = column) t.indexes

(** An ordered index over column position [column], if one exists. *)
let ordered_index_on t ~column =
  List.find_opt (fun o -> o.oidx_column = column) t.ordered

let index_names t =
  List.map (fun i -> i.idx_name) t.indexes
  @ List.map (fun o -> o.oidx_name) t.ordered

(** (name, column name, ordered?) for every index — what a checkpoint or
    replica-bootstrap image must carry to recreate them. *)
let index_specs t =
  let column_name pos = t.schema.(pos).Schema.name in
  List.map (fun i -> (i.idx_name, column_name i.idx_column, false)) t.indexes
  @ List.map (fun o -> (o.oidx_name, column_name o.oidx_column, true)) t.ordered

(** Live tuple versions whose indexed column equals [value], in rid order
    (deterministic regardless of maintenance history). *)
let index_lookup t (idx : index) (value : Value.t) : tuple_version list =
  match Hashtbl.find_opt idx.idx_entries value with
  | None -> []
  | Some rids ->
    List.sort_uniq compare !rids
    |> List.filter_map (fun rid -> Hashtbl.find_opt t.live rid)

(** Candidate rids for an equality probe, ascending; callers re-check
    visibility and the key themselves (the MVCC fallback path). *)
let index_candidate_rids _t (idx : index) (value : Value.t) : int list =
  match Hashtbl.find_opt idx.idx_entries value with
  | None -> []
  | Some rids -> List.sort_uniq compare !rids

(** Live tuple versions whose indexed column lies within [lo, hi] (each
    bound optional, (value, inclusive)), in ascending-rid order. *)
let range_lookup t (oidx : ordered_index) ~(lo : bound option)
    ~(hi : bound option) : tuple_version list =
  settle_oindex t oidx;
  let first = lower_bound oidx lo and past = upper_bound oidx hi in
  let rids = ref [] in
  for i = past - 1 downto first do
    let (_, rid) as e = oidx.oidx_keys.(i) in
    if oentry_live t oidx e then rids := rid :: !rids
  done;
  List.sort_uniq compare !rids
  |> List.filter_map (fun rid -> Hashtbl.find_opt t.live rid)

(** Candidate rids for a range probe, ascending, without live validation
    (the MVCC fallback path re-checks values against visible versions). *)
let range_candidate_rids _t (oidx : ordered_index) ~(lo : bound option)
    ~(hi : bound option) : int list =
  let first = lower_bound oidx lo and past = upper_bound oidx hi in
  let rids = ref [] in
  for i = past - 1 downto first do
    rids := snd oidx.oidx_keys.(i) :: !rids
  done;
  List.sort_uniq compare !rids

(** Number of index entries within the bounds — the planner's range
    selectivity estimate (stale entries included; it is an estimate). *)
let range_estimate t (oidx : ordered_index) ~(lo : bound option)
    ~(hi : bound option) : int =
  settle_oindex t oidx;
  max 0 (upper_bound oidx hi - lower_bound oidx lo)

(* ------------------------------------------------------------------ *)
(* Planner statistics.                                                 *)

(** Pin the audit-time row count (package restore): cost estimates become
    [pinned + (live delta since the pin)], which replays identically. *)
let pin_row_stats t ~rows = t.pinned_rows <- Some (rows, Hashtbl.length t.live)

(** Row count as the cost model sees it: the real live count, or the
    pinned audit-time count advanced by the local delta. *)
let stable_row_count t =
  match t.pinned_rows with
  | None -> Hashtbl.length t.live
  | Some (rows, live_at_pin) -> rows + Hashtbl.length t.live - live_at_pin

type stats = {
  st_rows : int;
  st_distinct : (int * int) list;  (** column position -> distinct keys *)
}

(** Table statistics for the cost model: live row count plus per-indexed-
    column distinct-key counts (hash indexes: the bucket count — exact now
    that emptied buckets are dropped; ordered indexes: the merged distinct
    count). [verify] asserts the hash bucket-count invariant against a
    fresh scan (test hook). *)
let stats ?(verify = false) t : stats =
  let distinct_hash idx =
    if verify then begin
      let seen = Hashtbl.create 64 in
      Hashtbl.iter
        (fun _ tv ->
          let v = tv.values.(idx.idx_column) in
          if not (Value.is_null v) then Hashtbl.replace seen v ())
        t.live;
      assert (Hashtbl.length idx.idx_entries = Hashtbl.length seen)
    end;
    (idx.idx_column, Hashtbl.length idx.idx_entries)
  in
  let distinct_ordered oidx =
    settle_oindex t oidx;
    (oidx.oidx_column, oidx.oidx_distinct)
  in
  { st_rows = Hashtbl.length t.live;
    st_distinct =
      List.map distinct_hash t.indexes
      @ List.map distinct_ordered t.ordered }

(** Distinct live keys of [column], when some index covers it. *)
let distinct_on t ~column =
  match index_on t ~column with
  | Some idx -> Some (Hashtbl.length idx.idx_entries)
  | None -> (
    match ordered_index_on t ~column with
    | Some oidx ->
      settle_oindex t oidx;
      Some oidx.oidx_distinct
    | None -> None)

(* ------------------------------------------------------------------ *)
(* MVCC visibility and time travel.                                    *)

(** Whether [tx] (0 = an autocommit reader) sees [tv] at logical time
    [at]. A version is visible when it was created by the viewer's own
    open transaction or committed no later than [at], and not retired —
    where a retirement by the viewer's own transaction always hides the
    version, an uncommitted retirement by a foreign transaction never
    does, and a committed retirement hides it from [at] onwards. *)
let visible ?(tx = 0) ~at (tv : tuple_version) =
  (if tv.txid <> 0 then tv.txid = tx else tv.committed_at <= at)
  &&
  if tv.retired_tx <> 0 then tv.retired_tx <> tx
  else tv.retired_commit = 0 || tv.retired_commit > at

(** The version of [rid] that [tx] sees at [at], walking only that row's
    chain (at most one version of a row is visible per snapshot). *)
let visible_version ?(tx = 0) ?(at = max_int) t ~rid =
  match Hashtbl.find_opt t.chains rid with
  | None -> None
  | Some chain -> List.find_opt (visible ~tx ~at) !chain

(** The snapshot [tx] sees at time [at] (default: the committed present),
    in ascending-rid order — the same order [scan] yields, so switching
    between the two paths can never reorder results. Walks per-rid chains
    (O(rows), not O(versions ever written)), and collapses to the plain
    live scan when the snapshot provably equals it. *)
let scan_visible ?(tx = 0) ?(at = max_int) t : tuple_version list =
  if frozen_at t ~at then scan t
  else begin
    let acc = ref [] in
    for rid = t.next_rid - 1 downto 1 do
      match visible_version ~tx ~at t ~rid with
      | Some tv -> acc := tv :: !acc
      | None -> ()
    done;
    !acc
  end

(** The live snapshot as of logical time [at]: for each row, the version
    committed no later than [at] and not retired by a commit at or before
    [at]. [tx] additionally folds in that transaction's own uncommitted
    writes (its begin-snapshot plus its writes: MVCC read rule). Same
    ascending-rid order as [scan_visible]. *)
let scan_as_of ?(tx = 0) t ~at : tuple_version list = scan_visible ~tx ~at t

(* ------------------------------------------------------------------ *)
(* Transaction rollback support.                                       *)

(** Erase a version created inside an aborted transaction: it disappears
    from the live snapshot, the history, and the indexes — as if it never
    happened. *)
let unlink_version t (tv : tuple_version) =
  (match Hashtbl.find_opt t.live tv.tid.Tid.rid with
  | Some live_tv when live_tv == tv ->
    Hashtbl.remove t.live tv.tid.Tid.rid;
    t.order_dead <- t.order_dead + 1;
    indexes_remove t tv
  | _ -> ());
  if tv.txid <> 0 then t.pending_writes <- t.pending_writes - 1;
  chain_remove t tv;
  Hashtbl.remove t.by_version (tv.tid.Tid.rid, tv.tid.Tid.version);
  note_churn t tv.tid.Tid.rid

(** Resurrect a version retired inside an aborted transaction. *)
let relink_version t (tv : tuple_version) =
  if tv.retired_tx <> 0 then t.pending_writes <- t.pending_writes - 1;
  tv.retired_at <- None;
  tv.retired_tx <- 0;
  tv.retired_commit <- 0;
  note_churn t tv.tid.Tid.rid;
  match Hashtbl.find_opt t.live tv.tid.Tid.rid with
  | Some current when not (current == tv) ->
    (* the slot is occupied by an aborted newer version: caller must have
       unlinked it first *)
    Errors.fail
      (Errors.Constraint_violation
         (Printf.sprintf "relink of rid %d would clobber a live version"
            tv.tid.Tid.rid))
  | Some _ -> ()
  | None ->
    Hashtbl.replace t.live tv.tid.Tid.rid tv;
    order_push t tv.tid.Tid.rid;
    indexes_add t tv

(* ------------------------------------------------------------------ *)
(* Integrity checking (test support).                                  *)

(** Check every index against a fresh scan of the live snapshot: each
    index must return exactly the live rows matching its key, and hash
    buckets must cover exactly the distinct live keys. Returns an error
    description instead of raising so tests can report it. *)
let check_index_integrity t : (unit, string) result =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let live_rows = scan t in
  let check_hash idx =
    let expected =
      List.filter
        (fun tv -> not (Value.is_null tv.values.(idx.idx_column)))
        live_rows
    in
    let distinct = Hashtbl.create 16 in
    List.iter
      (fun tv -> Hashtbl.replace distinct tv.values.(idx.idx_column) ())
      expected;
    if Hashtbl.length idx.idx_entries <> Hashtbl.length distinct then
      fail "index %s: %d buckets for %d distinct live keys" idx.idx_name
        (Hashtbl.length idx.idx_entries)
        (Hashtbl.length distinct)
    else
      let bad =
        List.find_opt
          (fun tv ->
            let found = index_lookup t idx tv.values.(idx.idx_column) in
            not (List.exists (fun x -> x == tv) found))
          expected
      in
      match bad with
      | Some tv ->
        fail "index %s: live rid %d missing from its bucket" idx.idx_name
          tv.tid.Tid.rid
      | None -> Ok ()
  in
  let check_ordered oidx =
    let expected =
      List.filter
        (fun tv -> not (Value.is_null tv.values.(oidx.oidx_column)))
        live_rows
      |> List.map (fun tv -> tv.tid.Tid.rid)
      |> List.sort_uniq compare
    in
    let got =
      range_lookup t oidx ~lo:None ~hi:None
      |> List.map (fun tv -> tv.tid.Tid.rid)
    in
    if got <> expected then
      fail "ordered index %s: range scan returned %d rids, live has %d"
        oidx.oidx_name (List.length got) (List.length expected)
    else Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | f :: rest -> ( match f () with Ok () -> all rest | Error e -> Error e)
  in
  all
    (List.map (fun idx () -> check_hash idx) t.indexes
    @ List.map (fun oidx () -> check_ordered oidx) t.ordered)
