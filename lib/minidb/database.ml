(** Top-level database engine API.

    A [Database.t] is a catalog plus a logical clock; [exec] parses and
    executes one SQL statement, advancing the clock. DML results expose the
    tuple versions written and the versions they were derived from — the
    provenance hooks the Perm layer and the LDV auditor build on.

    Transactions: [BEGIN] opens an undo scope; [ROLLBACK] erases every
    version the transaction wrote (as if it never happened) and resurrects
    every version it retired; [COMMIT] discards the undo log. DDL is not
    transactional and is rejected inside a transaction. *)

type undo =
  | U_insert of Table.t * Table.tuple_version
  | U_update of Table.t * Table.tuple_version * Table.tuple_version
      (** old (retired) version, new version *)
  | U_delete of Table.t * Table.tuple_version

(** An open transaction. [tx_begin] is the clock at BEGIN — the snapshot
    this transaction's statements read; [tx_stmts] accumulates per-DML
    provenance (deps, reads) for reenactment at commit, newest first. *)
type tx = {
  tx_id : int;
  tx_begin : int;
  mutable tx_undo : undo list;  (** newest first *)
  mutable tx_stmts : ((Tid.t * Tid.t list) list * Tid.t list) list;
}

(** The durable record of a committed transaction: enough to reenact it
    (Niu et al.) — per-statement write/read dependencies between its begin
    snapshot and its commit clock. *)
type committed_tx = {
  ct_id : int;
  ct_begin : int;
  ct_commit : int;
  ct_stmts : ((Tid.t * Tid.t list) list * Tid.t list) list;  (** oldest first *)
}

type t = {
  catalog : Catalog.t;
  mutable clock : int;
  name : string;
  txs : (int, tx) Hashtbl.t;  (** all open transactions, by id *)
  mutable current : int;  (** tx of the session executing now; 0 = autocommit *)
  mutable committed : committed_tx list;  (** newest first *)
}

(* Transaction ids are allocated from one process-wide counter so a version
   stamped by one database can never alias an open transaction of another
   (control and recovery arms of a campaign coexist in one process). *)
let txid_counter = ref 0

(** Provenance facts of a DML statement: for every tuple version written,
    the pre-existing versions it was derived from (empty for plain
    inserts; the source rows' lineage for INSERT .. SELECT). *)
type dml_info = {
  count : int;  (** rows affected *)
  written : Tid.t list;  (** tuple versions created *)
  read : Tid.t list;  (** pre-state versions read (update/delete/select src) *)
  deps : (Tid.t * Tid.t list) list;  (** written tid -> versions it derives from *)
}

type exec_result =
  | Rows of Executor.result
  | Affected of dml_info
  | Ddl_done

let create ?(name = "main") () =
  { catalog = Catalog.create ();
    clock = 0;
    name;
    txs = Hashtbl.create 8;
    current = 0;
    committed = [] }

let clock t = t.clock
let catalog t = t.catalog
let name t = t.name
let in_transaction t = t.current <> 0
let open_tx_count t = Hashtbl.length t.txs
let current_tx t = t.current

let tx_state t id = if id = 0 then None else Hashtbl.find_opt t.txs id
let current_tx_state t = tx_state t t.current

(** Switch the ambient session: subsequent statements execute under open
    transaction [id] (0 = autocommit). Serialized drivers — the durable
    WAL layer, recovery — use this to multiplex many sessions over one
    database. *)
let set_current_tx t id =
  if id <> 0 && not (Hashtbl.mem t.txs id) then
    Errors.fail
      (Errors.Tx_state (Printf.sprintf "no open transaction with id %d" id));
  t.current <- id

(** The begin-snapshot of the ambient open transaction, if any. *)
let current_snapshot t =
  Option.map (fun tx -> tx.tx_begin) (current_tx_state t)

(** Committed transactions, oldest first. *)
let committed_txs t = List.rev t.committed

(* Publish this database's MVCC facts for the executor while running one
   statement; statements never yield mid-execution, so the dynamic scope
   is safe under the cooperative scheduler. *)
let with_tx_context t f =
  let saved_viewer = !Tx_context.viewer
  and saved_snapshot = !Tx_context.snapshot
  and saved_active = !Tx_context.active in
  Tx_context.viewer := t.current;
  Tx_context.snapshot :=
    (match current_tx_state t with Some tx -> tx.tx_begin | None -> max_int);
  Tx_context.active := Hashtbl.length t.txs > 0;
  Fun.protect
    ~finally:(fun () ->
      Tx_context.viewer := saved_viewer;
      Tx_context.snapshot := saved_snapshot;
      Tx_context.active := saved_active)
    f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(** Advance the clock to at least [at]; used to keep the DB clock aligned
    with the simulated OS clock so that combined traces share one
    timeline. *)
let sync_clock t ~at = if at > t.clock then t.clock <- at

(** Run [f] with the clock pinned: any ticks inside are undone on exit.
    Read-only statements still tick internally, so a replica serving a
    snapshot-pinned read must stay clock-neutral or its tuple-version
    stamps would drift from the leader's. *)
let with_frozen_clock t f =
  let saved = t.clock in
  Fun.protect ~finally:(fun () -> t.clock <- saved) f

let log_undo t entry =
  match current_tx_state t with
  | Some tx -> tx.tx_undo <- entry :: tx.tx_undo
  | None -> ()

let record_tx_stmt t deps read =
  match current_tx_state t with
  | Some tx -> tx.tx_stmts <- (deps, read) :: tx.tx_stmts
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Subquery evaluation: close the planner/executor loop.               *)

let subquery_eval : Planner.subquery_eval =
 fun node ->
  let result = Executor.run node in
  let ann =
    Annotation.sum
      (List.map (fun (r : Executor.arow) -> r.Executor.ann) result.Executor.rows)
  in
  (* an empty subquery result still carries no lineage; use [one] so the
     multiplication is neutral *)
  let ann = if Annotation.is_zero ann then Annotation.one else ann in
  (Executor.result_values result, ann)

(* ------------------------------------------------------------------ *)
(* Statement execution.                                                *)

let plan t (s : Sql_ast.select) : Planner.node =
  Planner.plan_select t.catalog ~eval_subquery:subquery_eval s

let run_select t (s : Sql_ast.select) : Executor.result =
  Executor.run (plan t s)

(* Expand a provenance query Perm-style: each result row is repeated once
   per lineage tuple, extended with the provenance columns identifying that
   tuple version. *)
let run_provenance t (s : Sql_ast.select) : Executor.result =
  let base = run_select t s in
  let prov_schema =
    Schema.append base.Executor.schema
      (Schema.of_list
         [ Schema.column "prov_table" Value.Tstr;
           Schema.column "prov_rowid" Value.Tint;
           Schema.column "prov_v" Value.Tint ])
  in
  let rows =
    List.concat_map
      (fun (row : Executor.arow) ->
        let lin = Annotation.lineage row.Executor.ann in
        if Tid.Set.is_empty lin then
          [ { Executor.values =
                Array.append row.Executor.values
                  [| Value.Null; Value.Null; Value.Null |];
              ann = row.Executor.ann } ]
        else
          Tid.Set.elements lin
          |> List.map (fun (tid : Tid.t) ->
                 { Executor.values =
                     Array.append row.Executor.values
                       [| Value.Str tid.Tid.table;
                          Value.Int tid.Tid.rid;
                          Value.Int tid.Tid.version |];
                   ann = row.Executor.ann }))
      base.Executor.rows
  in
  { Executor.schema = prov_schema; rows }

let full_row_for_insert (schema : Schema.t) columns (values : Value.t list) =
  match columns with
  | None ->
    if List.length values <> Array.length schema then
      Errors.fail
        (Errors.Arity_error
           (Printf.sprintf "INSERT expects %d values, got %d"
              (Array.length schema) (List.length values)));
    Array.of_list values
  | Some cols ->
    if List.length cols <> List.length values then
      Errors.fail
        (Errors.Arity_error "INSERT column list and VALUES arity differ");
    let row = Array.make (Array.length schema) Value.Null in
    List.iter2
      (fun col v -> row.(Schema.resolve schema col) <- v)
      cols values;
    row

let run_insert t ~table ~columns ~(source : Sql_ast.insert_source) : dml_info =
  let tbl = Catalog.find t.catalog table in
  let schema = Table.schema tbl in
  (* materialize the rows (and their lineage, for INSERT .. SELECT) before
     writing anything, so a self-referencing insert sees a consistent
     snapshot *)
  let rows_with_lineage =
    match source with
    | Sql_ast.Values rows ->
      List.map
        (fun exprs -> (List.map Eval_expr.eval_const exprs, []))
        rows
    | Sql_ast.Query q ->
      let result = run_select t q in
      List.map
        (fun (r : Executor.arow) ->
          ( Array.to_list r.Executor.values,
            Tid.Set.elements (Annotation.lineage r.Executor.ann) ))
        result.Executor.rows
  in
  let clock = tick t in
  let deps =
    List.map
      (fun (values, lineage) ->
        let row = full_row_for_insert schema columns values in
        let tv = Table.insert tbl ~tx:t.current ~clock row in
        log_undo t (U_insert (tbl, tv));
        (tv.Table.tid, lineage))
      rows_with_lineage
  in
  let info =
    { count = List.length deps;
      written = List.map fst deps;
      read = List.concat_map snd deps |> List.sort_uniq Tid.compare;
      deps }
  in
  record_tx_stmt t info.deps info.read;
  info

let resolve_where t where =
  match where with
  | None -> (None, Annotation.one)
  | Some w ->
    let w, ann = Planner.resolve_expr t.catalog ~eval_subquery:subquery_eval w in
    (Some w, ann)

(* Candidate rows for an UPDATE/DELETE: use an index when the predicate
   pins an indexed column to a constant (hash index) or bounds it with
   constants (ordered index); otherwise scan. The full predicate is still
   applied by the caller, so this is only a pruning step — every returned
   superset is correct, because range-excluded rows cannot satisfy the
   bounding conjuncts (and NULLs satisfy no comparison). *)
let candidate_rows (tbl : Table.t) (where : Sql_ast.expr option) :
    Table.tuple_version list =
  let schema = Table.schema tbl in
  let ranged_lookup () =
    match where with
    | None -> None
    | Some w ->
      let conjs = Sql_ast.conjuncts w in
      let try_col pos =
        match Table.ordered_index_on tbl ~column:pos with
        | None -> None
        | Some oidx ->
          let col_ty = schema.(pos).Schema.ty in
          let compat v =
            match Value.type_of v with
            | Some ty -> (
              ty = col_ty
              ||
              match (ty, col_ty) with
              | (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) ->
                true
              | _ -> false)
            | None -> false
          in
          let const e =
            match Planner.const_value e with
            | Some v when compat v -> Some v
            | _ -> None
          in
          let this_col = function
            | Sql_ast.Col (q, n) ->
              Schema.find_opt schema ?qualifier:q n = Some pos
            | _ -> false
          in
          let lo = ref None and hi = ref None in
          List.iter
            (fun conj ->
              match conj with
              | Sql_ast.Cmp (op, a, b) when this_col a -> (
                match const b with
                | Some v -> (
                  match op with
                  | Sql_ast.Lt -> hi := Planner.tighten_hi !hi (v, false)
                  | Sql_ast.Le -> hi := Planner.tighten_hi !hi (v, true)
                  | Sql_ast.Gt -> lo := Planner.tighten_lo !lo (v, false)
                  | Sql_ast.Ge -> lo := Planner.tighten_lo !lo (v, true)
                  | Sql_ast.Eq ->
                    lo := Planner.tighten_lo !lo (v, true);
                    hi := Planner.tighten_hi !hi (v, true)
                  | Sql_ast.Neq -> ())
                | None -> ())
              | Sql_ast.Between (a, b1, b2) when this_col a -> (
                match (const b1, const b2) with
                | Some v1, Some v2 ->
                  lo := Planner.tighten_lo !lo (v1, true);
                  hi := Planner.tighten_hi !hi (v2, true)
                | _ -> ())
              | _ -> ())
            conjs;
          if !lo = None && !hi = None then None
          else Some (Table.range_lookup tbl oidx ~lo:!lo ~hi:!hi)
      in
      let rec first_col pos =
        if pos >= Array.length schema then None
        else
          match try_col pos with
          | Some r -> Some r
          | None -> first_col (pos + 1)
      in
      first_col 0
  in
  let indexed_lookup () =
    match where with
    | None -> None
    | Some w ->
      List.find_map
        (fun conj ->
          let try_sides col_expr const_expr =
            match col_expr with
            | Sql_ast.Col (q, n)
              when not (Sql_ast.fold_cols (fun _ _ _ -> true) false const_expr)
              -> (
              match Schema.find_opt schema ?qualifier:q n with
              | Some position -> (
                match Table.index_on tbl ~column:position with
                | Some idx ->
                  let v = Eval_expr.eval_const const_expr in
                  Some (Table.index_lookup tbl idx v)
                | None -> None)
              | None -> None)
            | _ -> None
          in
          match conj with
          | Sql_ast.Cmp (Sql_ast.Eq, a, b) -> (
            match try_sides a b with Some r -> Some r | None -> try_sides b a)
          | _ -> None)
        (Sql_ast.conjuncts w)
  in
  match indexed_lookup () with
  | Some rows -> rows
  | None -> (
    match ranged_lookup () with
    | Some rows -> rows
    | None -> Table.scan tbl)

(* Candidate rows under MVCC. A transaction's UPDATE/DELETE evaluates its
   predicate over the begin-snapshot plus its own writes; an autocommit
   statement racing open transactions reads the committed present. In both
   cases the index shortcut is skipped — indexes cover only the live
   snapshot, which misbehaves on both sides of an open transaction. When
   no transaction is open anywhere, the fast path is untouched. *)
let dml_candidates t (tbl : Table.t) (where : Sql_ast.expr option) :
    Table.tuple_version list =
  match current_tx_state t with
  | Some tx -> Table.scan_visible ~tx:tx.tx_id ~at:tx.tx_begin tbl
  | None ->
    if Hashtbl.length t.txs > 0 then Table.scan_visible tbl
    else candidate_rows tbl where

(* First-updater-wins, abort immediately (NOWAIT): a DML may write a row
   only if the version it read is still the row's live version. Anything
   else — an uncommitted foreign version or deletion occupying the slot, a
   commit newer than the snapshot — aborts the statement with a
   serialization failure BEFORE the clock ticks or any write happens, so
   an aborted statement is invisible to the deterministic replay. *)
let serialization_check t (tbl : Table.t) (affected : Table.tuple_version list)
    =
  if t.current <> 0 || Hashtbl.length t.txs > 0 then
    List.iter
      (fun (tv : Table.tuple_version) ->
        match Table.find_live tbl ~rid:tv.Table.tid.Tid.rid with
        | Some live when live == tv -> ()
        | _ ->
          Ldv_obs.counter "tx.conflict";
          Errors.fail
            (Errors.Serialization_failure
               (Printf.sprintf "concurrent write to %s rid %d"
                  (Table.name tbl) tv.Table.tid.Tid.rid)))
      affected

let run_update t ~table ~sets ~where : dml_info =
  let tbl = Catalog.find t.catalog table in
  let schema = Table.schema tbl in
  let where, where_ann = resolve_where t where in
  let bound_where = Option.map (Eval_expr.bind schema) where in
  let bound_sets =
    List.map
      (fun (col, e) ->
        let e, _ = Planner.resolve_expr t.catalog ~eval_subquery:subquery_eval e in
        (Schema.resolve schema col, Eval_expr.bind schema e))
      sets
  in
  (* The paper computes the provenance of an update *before* executing it
     (reenactment): collect the affected pre-state first. *)
  let affected =
    List.filter
      (fun (tv : Table.tuple_version) ->
        match bound_where with
        | None -> true
        | Some p -> Eval_expr.eval_pred tv.Table.values p)
      (dml_candidates t tbl where)
  in
  serialization_check t tbl affected;
  let clock = tick t in
  let extra = Tid.Set.elements (Annotation.lineage where_ann) in
  let deps =
    List.map
      (fun (tv : Table.tuple_version) ->
        let new_values = Array.copy tv.Table.values in
        List.iter
          (fun (idx, e) ->
            (* SET expressions see the pre-state of the row *)
            new_values.(idx) <- Eval_expr.eval tv.Table.values e)
          bound_sets;
        let old_tv, new_tv =
          Table.update tbl ~tx:t.current ~clock ~rid:tv.Table.tid.Tid.rid
            new_values
        in
        log_undo t (U_update (tbl, old_tv, new_tv));
        (new_tv.Table.tid, old_tv.Table.tid :: extra))
      affected
  in
  let info =
    { count = List.length deps;
      written = List.map fst deps;
      read = List.concat_map snd deps |> List.sort_uniq Tid.compare;
      deps }
  in
  record_tx_stmt t info.deps info.read;
  info

let run_delete t ~table ~where : dml_info =
  let tbl = Catalog.find t.catalog table in
  let schema = Table.schema tbl in
  let where, where_ann = resolve_where t where in
  let bound_where = Option.map (Eval_expr.bind schema) where in
  let affected =
    List.filter
      (fun (tv : Table.tuple_version) ->
        match bound_where with
        | None -> true
        | Some p -> Eval_expr.eval_pred tv.Table.values p)
      (dml_candidates t tbl where)
  in
  serialization_check t tbl affected;
  let clock = tick t in
  let read =
    List.map
      (fun (tv : Table.tuple_version) ->
        let victim =
          Table.delete tbl ~tx:t.current ~clock ~rid:tv.Table.tid.Tid.rid
        in
        log_undo t (U_delete (tbl, victim));
        victim.Table.tid)
      affected
  in
  let info =
    { count = List.length read;
      written = [];
      read = read @ Tid.Set.elements (Annotation.lineage where_ann);
      deps = [] }
  in
  record_tx_stmt t info.deps info.read;
  info

(* ------------------------------------------------------------------ *)
(* Transactions.                                                       *)

(* Observed once per undo-log entry during a rollback's undo walk; the
   durable layer points it at a seeded crash site so campaigns can kill
   the process mid-rollback. *)
let on_undo_step : (unit -> unit) ref = ref (fun () -> ())

let begin_tx t =
  if t.current <> 0 then
    Errors.fail (Errors.Tx_state "transaction already open");
  incr txid_counter;
  let tx =
    { tx_id = !txid_counter; tx_begin = t.clock; tx_undo = []; tx_stmts = [] }
  in
  Hashtbl.replace t.txs tx.tx_id tx;
  t.current <- tx.tx_id;
  if Hashtbl.length t.txs = 1 then Catalog.iter t.catalog Table.note_tx_open;
  Ldv_obs.counter "tx.begin";
  tx.tx_id

(* Closing the last open transaction lets every table forget its hot-rid
   set: live snapshot, indexes and committed visibility agree again. *)
let note_tx_done t =
  if Hashtbl.length t.txs = 0 then Catalog.iter t.catalog Table.note_tx_closed

(* Commit: stamp every version the transaction wrote or retired with the
   commit clock, atomically making the whole transaction visible (a
   version both written and retired inside the transaction ends up with
   [committed_at = retired_commit], i.e. never visible — the reenactment
   layer calls these intermediate versions). *)
let commit_tx t =
  match current_tx_state t with
  | None -> Errors.fail (Errors.Tx_state "no open transaction")
  | Some tx ->
    let commit_clock = t.clock in
    List.iter
      (function
        | U_insert (tbl, tv) -> Table.commit_insert_stamp tbl tv ~commit_clock
        | U_update (tbl, old_tv, new_tv) ->
          Table.commit_insert_stamp tbl new_tv ~commit_clock;
          Table.commit_retire_stamp tbl old_tv ~commit_clock
        | U_delete (tbl, tv) -> Table.commit_retire_stamp tbl tv ~commit_clock)
      tx.tx_undo;
    Hashtbl.remove t.txs tx.tx_id;
    t.current <- 0;
    note_tx_done t;
    t.committed <-
      { ct_id = tx.tx_id;
        ct_begin = tx.tx_begin;
        ct_commit = commit_clock;
        ct_stmts = List.rev tx.tx_stmts }
      :: t.committed;
    Ldv_obs.counter "tx.commit"

let rollback_tx t =
  match current_tx_state t with
  | None -> Errors.fail (Errors.Tx_state "no open transaction")
  | Some tx ->
    Hashtbl.remove t.txs tx.tx_id;
    t.current <- 0;
    (* the log is newest-first: undo in that order so that an update's new
       version is unlinked before its old version is relinked *)
    List.iter
      (fun entry ->
        !on_undo_step ();
        match entry with
        | U_insert (tbl, tv) -> Table.unlink_version tbl tv
        | U_update (tbl, old_tv, new_tv) ->
          Table.unlink_version tbl new_tv;
          Table.relink_version tbl old_tv
        | U_delete (tbl, tv) -> Table.relink_version tbl tv)
      tx.tx_undo;
    note_tx_done t;
    Ldv_obs.counter "tx.rollback"

let guard_ddl t what =
  if t.current <> 0 then
    Errors.unsupported "%s is not allowed inside a transaction" what

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let rec exec_ast t (stmt : Sql_ast.statement) : exec_result =
  match stmt with
  | Sql_ast.Select s ->
    ignore (tick t);
    Rows (run_select t s)
  | Sql_ast.Provenance s ->
    ignore (tick t);
    Rows (run_provenance t s)
  | Sql_ast.Insert { table; columns; source } ->
    Affected (run_insert t ~table ~columns ~source)
  | Sql_ast.Update { table; sets; where } ->
    Affected (run_update t ~table ~sets ~where)
  | Sql_ast.Delete { table; where } -> Affected (run_delete t ~table ~where)
  | Sql_ast.Create_table { table; columns } ->
    guard_ddl t "CREATE TABLE";
    ignore (tick t);
    let schema =
      Schema.of_list (List.map (fun (n, ty) -> Schema.column n ty) columns)
    in
    let tbl = Catalog.create_table t.catalog ~name:table ~schema in
    (* a sibling session may hold an open transaction: the fresh table
       must track hot rids from its first write *)
    if Hashtbl.length t.txs > 0 then Table.note_tx_open tbl;
    Ddl_done
  | Sql_ast.Drop_table table ->
    guard_ddl t "DROP TABLE";
    ignore (tick t);
    Catalog.drop_table t.catalog table;
    Ddl_done
  | Sql_ast.Create_index { index; table; column; ordered } ->
    guard_ddl t "CREATE INDEX";
    ignore (tick t);
    Catalog.create_index ~ordered t.catalog ~index ~table ~column;
    Ddl_done
  | Sql_ast.Drop_index index ->
    guard_ddl t "DROP INDEX";
    ignore (tick t);
    Catalog.drop_index t.catalog index;
    Ddl_done
  | Sql_ast.Explain inner -> Rows (explain t inner)
  | Sql_ast.Begin_tx ->
    ignore (tick t);
    ignore (begin_tx t);
    Ddl_done
  | Sql_ast.Commit_tx ->
    ignore (tick t);
    commit_tx t;
    Ddl_done
  | Sql_ast.Rollback_tx ->
    ignore (tick t);
    rollback_tx t;
    Ddl_done

(** EXPLAIN: a one-row result describing the physical plan, with the cost
    model's estimates appended for SELECT bodies. *)
and explain t (stmt : Sql_ast.statement) : Executor.result =
  let describe_select s =
    let node = plan t s in
    Printf.sprintf "%s cost=%.1f rows=%.1f" (Planner.describe node)
      (Planner.cost node) (Planner.est_rows node)
  in
  let text =
    match stmt with
    | Sql_ast.Select s | Sql_ast.Provenance s -> describe_select s
    | Sql_ast.Insert { table; source = Sql_ast.Query q; _ } ->
      Printf.sprintf "insert(%s, %s)" table (describe_select q)
    | Sql_ast.Insert { table; _ } -> Printf.sprintf "insert(%s)" table
    | Sql_ast.Update { table; _ } -> Printf.sprintf "update(scan(%s))" table
    | Sql_ast.Delete { table; _ } -> Printf.sprintf "delete(scan(%s))" table
    | _ -> "ddl"
  in
  { Executor.schema = Schema.of_list [ Schema.column "plan" Value.Tstr ];
    rows =
      [ { Executor.values = [| Value.Str text |]; ann = Annotation.one } ] }

(* Public execution entry points run under this database's ambient MVCC
   context (shadowing the raw definitions above): the executor learns the
   viewing transaction and whether any transaction is open at all. *)
let run_select t s = with_tx_context t (fun () -> run_select t s)
let run_provenance t s = with_tx_context t (fun () -> run_provenance t s)

let run_insert t ~table ~columns ~source =
  with_tx_context t (fun () -> run_insert t ~table ~columns ~source)

let run_update t ~table ~sets ~where =
  with_tx_context t (fun () -> run_update t ~table ~sets ~where)

let run_delete t ~table ~where =
  with_tx_context t (fun () -> run_delete t ~table ~where)

(* The overhead ledger's Exec phase covers the whole statement body: DML
   paths do not pass through [Executor.run], and the nested Plan/Exec
   frames of a SELECT attribute exclusively, so nothing double-counts. *)
let exec_ast t stmt =
  Ldv_obs.Ledger.time Ldv_obs.Ledger.Exec (fun () ->
      with_tx_context t (fun () -> exec_ast t stmt))

let exec t (sql : string) : exec_result =
  exec_ast t
    (Ldv_obs.Ledger.time Ldv_obs.Ledger.Parse (fun () -> Sql_parser.parse sql))

(** Run a script of semicolon-separated statements, returning the last
    result. *)
let exec_script t (sql : string) : exec_result =
  match Sql_parser.parse_script sql with
  | [] -> Ddl_done
  | stmts -> List.fold_left (fun _ stmt -> exec_ast t stmt) Ddl_done stmts

(** Convenience: run a query and require rows back. *)
let query t (sql : string) : Executor.result =
  match exec t sql with
  | Rows r -> r
  | Affected _ | Ddl_done ->
    Errors.unsupported "query expected a SELECT statement"

(** Convenience: run a DML statement and require an affected-count back. *)
let dml t (sql : string) : dml_info =
  match exec t sql with
  | Affected info -> info
  | Rows _ | Ddl_done -> Errors.unsupported "dml expected a DML statement"

(** Bulk-load rows directly into a table (bypassing the parser), as TPC-H
    dbgen does. Advances the clock once for the whole batch. *)
let bulk_insert t ~table (rows : Value.t array list) : Tid.t list =
  let tbl = Catalog.find t.catalog table in
  let clock = tick t in
  List.map (fun row -> (Table.insert tbl ~clock row).Table.tid) rows
