(** The plain-data vocabulary of the observability layer.

    [Ldv_obs] (the collector) and [Profile] (the analyzer) both work over
    these types; they live in their own module because [ldv_obs.ml] is the
    library's root module and sibling modules cannot depend on it. External
    users never see this module directly — [Ldv_obs] re-exports everything
    with type equality via [include]. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** 0 for root spans *)
  sp_name : string;
  mutable sp_attrs : (string * string) list;
  sp_start : float;  (** seconds since process start of collection *)
  mutable sp_dur : float;  (** negative while the span is still open *)
}

(** One scheduler round's worth of gauge readings, sampled by the kernel
    quantum hook after every round: run-queue depth, snapshot age, fsync
    barriers — whatever providers the run registered. *)
type quantum = {
  q_round : int;  (** 1-based scheduler round number *)
  q_time : float;  (** clock reading at sampling time *)
  q_gauges : (string * float) list;  (** sorted by name *)
}

type snapshot = {
  spans : span list;  (** completion order *)
  dropped_spans : int;
  ring_capacity : int;  (** 0 when unknown (e.g. a trace without a meta record) *)
  quanta : quantum list;  (** chronological *)
  dropped_quanta : int;
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * Histogram.summary) list;
}

(** The prefix of span attributes that carry provenance node identifiers
    ([prov.proc] = "proc:PID", [prov.stmt] = "stmt:QID", [prov.file] =
    "file:PATH"), matching the node vocabulary of the provenance traces
    LDV captures ([Prov.Bb_model] / [Prov.Lineage_model]). *)
let prov_attr_prefix = "prov."

let is_prov_attr (k : string) =
  String.length k > String.length prov_attr_prefix
  && String.sub k 0 (String.length prov_attr_prefix) = prov_attr_prefix

(** The provenance node identifiers attached to a span, in attachment
    order. *)
let prov_refs (sp : span) : string list =
  List.rev
    (List.filter_map
       (fun (k, v) -> if is_prov_attr k then Some v else None)
       sp.sp_attrs)
