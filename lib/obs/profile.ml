(** Critical-path and self/total-time analysis over collected span
    forests. See the interface for the model; the paper connection is
    that the span format mirrors [Prov.Trace]'s edge vocabulary, so an
    LDV run's own trace is analyzed with the same structural machinery
    (forest reconstruction, path extraction, graph rendering) as the
    provenance traces it captures. *)

open Obs_types

type node = {
  n_span : span;
  n_children : node list;
  n_total : float;
  n_self : float;
}

type t = {
  forest : node list;
  orphans : int;
  wall : float;
}

let span_total (sp : span) = Float.max 0.0 sp.sp_dur

let of_snapshot (snap : snapshot) : t =
  let ids = Hashtbl.create 256 in
  List.iter (fun sp -> Hashtbl.replace ids sp.sp_id ()) snap.spans;
  (* children grouped by parent id, then ordered by span id (start order) *)
  let by_parent : (int, span list ref) Hashtbl.t = Hashtbl.create 256 in
  let orphans = ref 0 in
  let root_spans = ref [] in
  List.iter
    (fun sp ->
      if sp.sp_parent <> 0 && not (Hashtbl.mem ids sp.sp_parent) then begin
        (* the parent was evicted from the ring or never closed: promote *)
        incr orphans;
        root_spans := sp :: !root_spans
      end
      else if sp.sp_parent = 0 then root_spans := sp :: !root_spans
      else
        match Hashtbl.find_opt by_parent sp.sp_parent with
        | Some r -> r := sp :: !r
        | None -> Hashtbl.replace by_parent sp.sp_parent (ref [ sp ]))
    snap.spans;
  let rec build (sp : span) : node =
    let children =
      match Hashtbl.find_opt by_parent sp.sp_id with
      | None -> []
      | Some r ->
        List.map build
          (List.sort (fun (a : span) b -> compare a.sp_id b.sp_id) !r)
    in
    let total = span_total sp in
    let in_children =
      List.fold_left (fun acc c -> acc +. c.n_total) 0.0 children
    in
    { n_span = sp;
      n_children = children;
      n_total = total;
      n_self = Float.max 0.0 (total -. in_children) }
  in
  let forest = List.rev_map build !root_spans in
  { forest;
    orphans = !orphans;
    wall = List.fold_left (fun acc n -> acc +. n.n_total) 0.0 forest }

(* ------------------------------------------------------------------ *)
(* Self/total aggregation.                                             *)

type row = {
  r_name : string;
  r_count : int;
  r_total : float;
  r_self : float;
  r_max : float;
}

let rows (t : t) : row list =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 64 in
  let rec visit n =
    (match Hashtbl.find_opt tbl n.n_span.sp_name with
    | Some r ->
      r :=
        { !r with
          r_count = !r.r_count + 1;
          r_total = !r.r_total +. n.n_total;
          r_self = !r.r_self +. n.n_self;
          r_max = Float.max !r.r_max n.n_total }
    | None ->
      Hashtbl.replace tbl n.n_span.sp_name
        (ref
           { r_name = n.n_span.sp_name;
             r_count = 1;
             r_total = n.n_total;
             r_self = n.n_self;
             r_max = n.n_total }));
    List.iter visit n.n_children
  in
  List.iter visit t.forest;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.r_self a.r_self with
         | 0 -> String.compare a.r_name b.r_name
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Critical path.                                                      *)

type step = {
  st_span : span;
  st_total : float;
  st_self : float;
  st_step : float;
}

let heaviest_child (n : node) : node option =
  List.fold_left
    (fun acc c ->
      match acc with
      | Some best when best.n_total >= c.n_total -> acc
      | _ -> Some c)
    None n.n_children

let critical_path (root : node) : step list =
  let rec go n =
    let next = heaviest_child n in
    let descend = match next with Some c -> c.n_total | None -> 0.0 in
    { st_span = n.n_span;
      st_total = n.n_total;
      st_self = n.n_self;
      st_step = Float.max 0.0 (n.n_total -. descend) }
    :: (match next with Some c -> go c | None -> [])
  in
  go root

let critical_paths (t : t) : (node * step list) list =
  List.map (fun root -> (root, critical_path root)) t.forest

(* ------------------------------------------------------------------ *)
(* Collapsed stacks (flamegraph.pl / speedscope input).                *)

let frame_name (sp : span) =
  String.map (fun c -> if c = ' ' || c = ';' then '_' else c) sp.sp_name

let to_collapsed (t : t) : string =
  let stacks : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let rec visit prefix n =
    let stack =
      if prefix = "" then frame_name n.n_span
      else prefix ^ ";" ^ frame_name n.n_span
    in
    let us = int_of_float (Float.round (n.n_self *. 1e6)) in
    if us > 0 then begin
      match Hashtbl.find_opt stacks stack with
      | Some r -> r := !r + us
      | None -> Hashtbl.replace stacks stack (ref us)
    end;
    List.iter (visit stack) n.n_children
  in
  List.iter (visit "") t.forest;
  let lines =
    Hashtbl.fold (fun stack r acc -> (stack, !r) :: acc) stacks []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, us) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    lines;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Graphviz overlay (the [Prov.Dot] visual vocabulary).                *)

let seconds s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let dot_escape s = String.concat "\\\"" (String.split_on_char '"' s)

(* Same palette as [Prov.Dot.node_color]: processes lightblue, files
   khaki, tuples/statements palegreen, everything else lightsalmon. *)
let prov_shape_color (id : string) =
  let has_prefix p =
    String.length id > String.length p && String.sub id 0 (String.length p) = p
  in
  if has_prefix "proc:" then ("box", "lightblue")
  else if has_prefix "file:" then ("ellipse", "khaki")
  else if has_prefix "stmt:" then ("box", "palegreen")
  else if has_prefix "tuple:" then ("ellipse", "palegreen")
  else ("ellipse", "lightsalmon")

let heat_color ~max_self self =
  let ratio = if max_self <= 0.0 then 0.0 else self /. max_self in
  if ratio >= 0.75 then "orangered"
  else if ratio >= 0.5 then "orange"
  else if ratio >= 0.25 then "gold"
  else if ratio > 0.0 then "khaki"
  else "white"

let to_dot (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph profile {\n  rankdir=LR;\n";
  let max_self =
    let rec go acc n =
      List.fold_left go (Float.max acc n.n_self) n.n_children
    in
    List.fold_left go 0.0 t.forest
  in
  let prov_nodes = Hashtbl.create 32 in
  let rec emit parent n =
    let sp = n.n_span in
    Buffer.add_string buf
      (Printf.sprintf
         "  \"s%d\" [shape=box, style=filled, fillcolor=%s, \
          label=\"%s\\n%s self / %s total\"];\n"
         sp.sp_id
         (heat_color ~max_self n.n_self)
         (dot_escape sp.sp_name) (seconds n.n_self) (seconds n.n_total));
    (match parent with
    | Some (p : span) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"s%d\" -> \"s%d\" [label=\"%.6f .. %.6f\"];\n"
           p.sp_id sp.sp_id sp.sp_start
           (sp.sp_start +. span_total sp))
    | None -> ());
    List.iter
      (fun id ->
        if not (Hashtbl.mem prov_nodes id) then begin
          Hashtbl.replace prov_nodes id ();
          let shape, color = prov_shape_color id in
          Buffer.add_string buf
            (Printf.sprintf
               "  \"%s\" [shape=%s, style=filled, fillcolor=%s, label=\"%s\"];\n"
               (dot_escape id) shape color (dot_escape id))
        end;
        Buffer.add_string buf
          (Printf.sprintf "  \"s%d\" -> \"%s\" [style=dashed, color=gray];\n"
             sp.sp_id (dot_escape id)))
      (prov_refs sp);
    List.iter (emit (Some sp)) n.n_children
  in
  List.iter (emit None) t.forest;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Run-to-run diff.                                                    *)

type diff_row = {
  d_name : string;
  d_count_a : int;
  d_count_b : int;
  d_total_a : float;
  d_total_b : float;
  d_p95_a : float;
  d_p95_b : float;
}

(* deltas below a microsecond are clock jitter, not regressions *)
let jitter_floor = 1e-6

let delta_pct (d : diff_row) =
  if d.d_total_a > 0.0 then
    (d.d_total_b -. d.d_total_a) /. d.d_total_a *. 100.0
  else if d.d_total_b > 0.0 then Float.infinity
  else 0.0

let regressed ~budget_pct (d : diff_row) =
  d.d_total_b -. d.d_total_a > jitter_floor
  &&
  if d.d_total_a > 0.0 then
    d.d_total_b > d.d_total_a *. (1.0 +. (budget_pct /. 100.0))
  else true (* a span new in [b] with measurable time *)

let diff (a : snapshot) (b : snapshot) : diff_row list =
  let aggregate (snap : snapshot) =
    let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (sp : span) ->
        let count, total =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl sp.sp_name)
        in
        Hashtbl.replace tbl sp.sp_name (count + 1, total +. span_total sp))
      snap.spans;
    (* the ring may have evicted spans whose [span:<name>] histogram
       survived; trusting the ring alone would silently drop those names
       from the diff (or under-count them), so prefer the histogram's
       count/sum whenever it saw more completions than the ring holds *)
    List.iter
      (fun (hname, (s : Histogram.summary)) ->
        let prefix = "span:" in
        let plen = String.length prefix in
        if
          String.length hname > plen
          && String.equal (String.sub hname 0 plen) prefix
        then begin
          let name = String.sub hname plen (String.length hname - plen) in
          let count, _ =
            Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl name)
          in
          if s.Histogram.s_count > count then
            Hashtbl.replace tbl name (s.Histogram.s_count, s.Histogram.s_sum)
        end)
      snap.histograms;
    tbl
  in
  let p95 (snap : snapshot) name =
    match List.assoc_opt ("span:" ^ name) snap.histograms with
    | Some s -> s.Histogram.s_p95
    | None -> Float.nan
  in
  let ta = aggregate a and tb = aggregate b in
  let names = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) ta;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) tb;
  Hashtbl.fold
    (fun name () acc ->
      let count_a, total_a =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt ta name)
      in
      let count_b, total_b =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tb name)
      in
      { d_name = name;
        d_count_a = count_a;
        d_count_b = count_b;
        d_total_a = total_a;
        d_total_b = total_b;
        d_p95_a = p95 a name;
        d_p95_b = p95 b name }
      :: acc)
    names []
  |> List.sort (fun x y ->
         match
           compare (y.d_total_b -. y.d_total_a) (x.d_total_b -. x.d_total_a)
         with
         | 0 -> String.compare x.d_name y.d_name
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Blocked-vs-running attribution.                                     *)

(** Where each session's wall time went: running in scheduler quanta vs
    blocked between them, with latch waits as an overlay. The analysis
    itself lives in [Contention] (it shares the wait-span vocabulary
    with the holder report); re-exported here because "where did the
    time go" is this module's question. *)
let attribution = Contention.attribution
