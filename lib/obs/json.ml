(** A minimal JSON value type with printer and recursive-descent parser.

    [Ldv_obs] records are plain JSON objects; keeping the codec here (rather
    than depending on an external JSON package) lets every layer of the
    system link against the observability library without new
    dependencies. The parser accepts exactly the JSON this module prints
    plus whitespace — enough for [ldv stats] to replay exported traces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected %C at offset %d, got %C" ch c.pos x
  | None -> fail "expected %C at offset %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then (
    c.pos <- c.pos + n;
    value)
  else fail "bad literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then fail "bad \\u escape";
        let code = int_of_string ("0x" ^ String.sub c.src (c.pos + 1) 4) in
        (* control characters only (that is all we emit); others pass as ? *)
        Buffer.add_char buf
          (if code < 0x80 then Char.chr code else '?');
        c.pos <- c.pos + 4
      | _ -> fail "bad escape at offset %d" c.pos);
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text then
    Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string_body c)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then (
      c.pos <- c.pos + 1;
      List [])
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      List (items [])
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then (
      c.pos <- c.pos + 1;
      Obj [])
    else
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev (kv :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      Obj (fields [])
  | Some _ -> parse_number c

let of_string (s : string) : t =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing data at offset %d" c.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> fail "expected int, got %s" (to_string v)

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | Null -> Float.nan
  | v -> fail "expected number, got %s" (to_string v)

let to_str = function
  | Str s -> s
  | v -> fail "expected string, got %s" (to_string v)

let to_obj = function
  | Obj fields -> fields
  | v -> fail "expected object, got %s" (to_string v)
