(** Structured observability for the LDV pipeline.

    The paper's entire evaluation (§IX) is about *measuring* LDV — audit
    overhead, package size, replay time — so the reproduction carries a
    first-class instrumentation layer:

    - hierarchical {b spans} with monotonic wall-clock timing, nesting and
      per-span key/value attributes ([with_span "slice.relevant" f]);
    - {b metrics}: named counters, gauges and log-scale histograms in a
      process-wide registry;
    - pluggable {b sinks}: an in-memory ring buffer (tests, summaries) and
      a streaming JSONL exporter whose span records mirror the
      provenance-graph edge format of [Prov.Trace] ([label]/[src]/[dst]
      plus a [b..e] time interval) — an LDV run's own execution trace is
      inspectable with the same vocabulary as the traces it captures.

    Everything is a guaranteed no-op while the sink is [Null]: every entry
    point checks the sink first and performs no formatting, allocation or
    clock reads on the disabled path. *)

module Json = Json
module Histogram = Histogram
module Profile = Profile

(* ------------------------------------------------------------------ *)
(* Spans. The plain-data types ([span], [snapshot]) live in
   [Obs_types] so that [Profile] can analyze them; re-export them here
   with type equality.                                                 *)

include Obs_types

type sink =
  | Null  (** disabled: all entry points are no-ops *)
  | Memory  (** ring buffer + metric registry only *)
  | Jsonl of out_channel
      (** [Memory] plus one JSONL record streamed per closed span *)

type state = {
  mutable sink : sink;
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable stack : span list;  (** open spans, innermost first *)
  ring : span Queue.t;  (** closed spans, completion order *)
  mutable ring_cap : int;
  mutable dropped : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histos : (string, Histogram.t) Hashtbl.t;
}

let st =
  { sink = Null;
    clock = Unix.gettimeofday;
    next_id = 1;
    stack = [];
    ring = Queue.create ();
    ring_cap = 65536;
    dropped = 0;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 32 }

let enabled () = st.sink <> Null

let set_sink s = st.sink <- s

(** Override the clock (tests substitute a deterministic one). *)
let set_clock f = st.clock <- f

let now () = st.clock ()

let set_ring_capacity n = st.ring_cap <- max 1 n

(** Drop all collected spans and metrics; keeps the sink. *)
let reset () =
  st.next_id <- 1;
  st.stack <- [];
  Queue.clear st.ring;
  st.dropped <- 0;
  Hashtbl.reset st.counters;
  Hashtbl.reset st.gauges;
  Hashtbl.reset st.histos

(* ------------------------------------------------------------------ *)
(* Metrics. Every entry point is guarded by the sink check.            *)

let counter ?(by = 1) name =
  if enabled () then
    match Hashtbl.find_opt st.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace st.counters name (ref by)

let gauge name v =
  if enabled () then
    match Hashtbl.find_opt st.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace st.gauges name (ref v)

let observe name v =
  if enabled () then begin
    let h =
      match Hashtbl.find_opt st.histos name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.replace st.histos name h;
        h
    in
    Histogram.observe h v
  end

(* ------------------------------------------------------------------ *)
(* Span lifecycle.                                                     *)

(** The JSONL record of a closed span, mirroring [Prov.Trace]'s edge
    vocabulary: [label] is the edge label (span name), [src] the parent
    span, [dst] the span itself, [b]/[e] the time interval. *)
let span_record (sp : span) : Json.t =
  Json.Obj
    ([ ("t", Json.Str "span");
       ("label", Json.Str sp.sp_name);
       ("src", Json.Int sp.sp_parent);
       ("dst", Json.Int sp.sp_id);
       ("b", Json.Float sp.sp_start);
       ("e", Json.Float (sp.sp_start +. Float.max 0.0 sp.sp_dur)) ]
    @
    if sp.sp_attrs = [] then []
    else
      [ ( "attrs",
          Json.Obj
            (List.rev_map (fun (k, v) -> (k, Json.Str v)) sp.sp_attrs) ) ])

let start_span ?(attrs = []) name : span =
  let parent = match st.stack with [] -> 0 | p :: _ -> p.sp_id in
  let sp =
    { sp_id = st.next_id;
      sp_parent = parent;
      sp_name = name;
      sp_attrs = attrs;
      sp_start = st.clock ();
      sp_dur = -1.0 }
  in
  st.next_id <- st.next_id + 1;
  st.stack <- sp :: st.stack;
  sp

let finish_span (sp : span) =
  sp.sp_dur <- st.clock () -. sp.sp_start;
  (match st.stack with
  | top :: rest when top == sp -> st.stack <- rest
  | _ ->
    (* unbalanced finish (an inner span escaped); drop it wherever it is *)
    st.stack <- List.filter (fun s -> s != sp) st.stack);
  if Queue.length st.ring >= st.ring_cap then begin
    ignore (Queue.pop st.ring);
    st.dropped <- st.dropped + 1
  end;
  Queue.push sp st.ring;
  (* per-stage duration histogram, so summaries keep percentiles even when
     the ring has dropped early spans *)
  observe ("span:" ^ sp.sp_name) sp.sp_dur;
  match st.sink with
  | Jsonl oc ->
    output_string oc (Json.to_string (span_record sp));
    output_char oc '\n'
  | Null | Memory -> ()

(** Run [f] inside a span. The span nests under whichever span is
    currently open; on the disabled path this is exactly a call to [f]. *)
let with_span ?attrs name f =
  match st.sink with
  | Null -> f ()
  | Memory | Jsonl _ ->
    let sp = start_span ?attrs name in
    Fun.protect ~finally:(fun () -> finish_span sp) f

(** Attach an attribute to the innermost open span, if any. *)
let add_attr k v =
  if enabled () then
    match st.stack with
    | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
    | [] -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots: everything collected so far, in plain data (the
   [snapshot] type itself comes from [Obs_types]).                     *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () : snapshot =
  { spans = List.of_seq (Queue.to_seq st.ring);
    dropped_spans = st.dropped;
    ring_capacity = st.ring_cap;
    counters = sorted_bindings st.counters (fun r -> !r);
    gauges = sorted_bindings st.gauges (fun r -> !r);
    histograms = sorted_bindings st.histos Histogram.summarize }

let children (snap : snapshot) (id : int) : span list =
  List.filter (fun sp -> sp.sp_parent = id) snap.spans

let roots (snap : snapshot) : span list = children snap 0

let find_spans (snap : snapshot) (name : string) : span list =
  List.filter (fun sp -> String.equal sp.sp_name name) snap.spans

(* ------------------------------------------------------------------ *)
(* JSONL codec.                                                        *)

let num f = Json.Float f

let hist_record name (s : Histogram.summary) : Json.t =
  Json.Obj
    [ ("t", Json.Str "hist");
      ("name", Json.Str name);
      ("count", Json.Int s.Histogram.s_count);
      ("sum", num s.Histogram.s_sum);
      ("min", num s.Histogram.s_min);
      ("max", num s.Histogram.s_max);
      ("p50", num s.Histogram.s_p50);
      ("p95", num s.Histogram.s_p95);
      ("p99", num s.Histogram.s_p99) ]

(** The run-level record flushed with the metrics: ring evictions and the
    ring capacity, so a JSONL reader knows whether the span list is
    complete ([of_jsonl] would otherwise silently report 0 drops). *)
let meta_record (snap : snapshot) : Json.t =
  Json.Obj
    [ ("t", Json.Str "meta");
      ("dropped", Json.Int snap.dropped_spans);
      ("ring_cap", Json.Int snap.ring_capacity) ]

let metric_records (snap : snapshot) : Json.t list =
  meta_record snap
  :: List.map
    (fun (name, v) ->
      Json.Obj
        [ ("t", Json.Str "counter"); ("name", Json.Str name);
          ("value", Json.Int v) ])
    snap.counters
  @ List.map
      (fun (name, v) ->
        Json.Obj
          [ ("t", Json.Str "gauge"); ("name", Json.Str name);
            ("value", num v) ])
      snap.gauges
  @ List.map (fun (name, s) -> hist_record name s) snap.histograms

(** Stream a snapshot's metric records to [oc]. The [Jsonl] sink already
    streamed the spans as they closed; this is the end-of-run flush. *)
let output_metrics oc (snap : snapshot) =
  List.iter
    (fun record ->
      output_string oc (Json.to_string record);
      output_char oc '\n')
    (metric_records snap)

(** The whole snapshot as JSONL text: spans first, then metrics. *)
let to_jsonl (snap : snapshot) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (Json.to_string (span_record sp));
      Buffer.add_char buf '\n')
    snap.spans;
  List.iter
    (fun record ->
      Buffer.add_string buf (Json.to_string record);
      Buffer.add_char buf '\n')
    (metric_records snap);
  Buffer.contents buf

let span_of_record (j : Json.t) : span =
  let get key =
    match Json.member key j with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "obs record misses %S" key)
  in
  let b = Json.to_float (get "b") and e = Json.to_float (get "e") in
  { sp_id = Json.to_int (get "dst");
    sp_parent = Json.to_int (get "src");
    sp_name = Json.to_str (get "label");
    sp_attrs =
      (match Json.member "attrs" j with
      | Some attrs ->
        List.map (fun (k, v) -> (k, Json.to_str v)) (Json.to_obj attrs)
      | None -> []);
    sp_start = b;
    sp_dur = e -. b }

let summary_of_record (j : Json.t) : Histogram.summary =
  let f key =
    match Json.member key j with Some v -> Json.to_float v | None -> Float.nan
  in
  let i key =
    match Json.member key j with Some v -> Json.to_int v | None -> 0
  in
  { Histogram.s_count = i "count";
    s_sum = f "sum";
    s_min = f "min";
    s_max = f "max";
    s_p50 = f "p50";
    s_p95 = f "p95";
    s_p99 = f "p99" }

(** Rebuild a snapshot from exported JSONL (the [ldv stats] reader).
    Unknown record types are skipped so the format can grow. A malformed
    or truncated line raises [Ldv_errors.Error (Decode_error _)] with its
    1-based line number, matching the [Recorder.decode] convention. *)
let of_jsonl (data : string) : snapshot =
  let spans = ref [] in
  let dropped = ref 0 in
  let ring_cap = ref 0 in
  let counters = ref [] in
  let gauges = ref [] in
  let histograms = ref [] in
  String.split_on_char '\n' data
  |> List.iteri (fun i line ->
         let line = String.trim line in
         let fail fmt =
           Format.kasprintf
             (fun what ->
               Ldv_errors.fail (Ldv_errors.Decode_error { line = i + 1; what }))
             fmt
         in
         if line <> "" then begin
           let j =
             match Json.of_string line with
             | j -> j
             | exception Json.Parse_error what -> fail "%s" what
           in
           let name () =
             match Json.member "name" j with
             | Some n -> Json.to_str n
             | None -> fail "obs record misses \"name\""
           in
           let int_member ?(default = 0) key =
             match Json.member key j with
             | Some v -> Json.to_int v
             | None -> default
           in
           match
             match Option.map Json.to_str (Json.member "t" j) with
             | Some "span" -> spans := span_of_record j :: !spans
             | Some "meta" ->
               dropped := int_member "dropped";
               ring_cap := int_member "ring_cap"
             | Some "counter" -> counters := (name (), int_member "value") :: !counters
             | Some "gauge" ->
               let v =
                 match Json.member "value" j with
                 | Some v -> Json.to_float v
                 | None -> Float.nan
               in
               gauges := (name (), v) :: !gauges
             | Some "hist" ->
               histograms := (name (), summary_of_record j) :: !histograms
             | _ -> ()
           with
           | () -> ()
           | exception Json.Parse_error what -> fail "%s" what
           | exception Invalid_argument what -> fail "%s" what
         end);
  let by_name (a, _) (b, _) = String.compare a b in
  { spans = List.rev !spans;
    dropped_spans = !dropped;
    ring_capacity = !ring_cap;
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms }
