(** Structured observability for the LDV pipeline.

    The paper's entire evaluation (§IX) is about *measuring* LDV — audit
    overhead, package size, replay time — so the reproduction carries a
    first-class instrumentation layer:

    - hierarchical {b spans} with monotonic wall-clock timing, nesting and
      per-span key/value attributes ([with_span "slice.relevant" f]);
    - {b metrics}: named counters, gauges and log-scale histograms in a
      process-wide registry;
    - pluggable {b sinks}: an in-memory ring buffer (tests, summaries) and
      a streaming JSONL exporter whose span records mirror the
      provenance-graph edge format of [Prov.Trace] ([label]/[src]/[dst]
      plus a [b..e] time interval) — an LDV run's own execution trace is
      inspectable with the same vocabulary as the traces it captures.

    Everything is a guaranteed no-op while the sink is [Null]: every entry
    point checks the sink first and performs no formatting, allocation or
    clock reads on the disabled path. *)

module Json = Json
module Histogram = Histogram
module Profile = Profile
module Trace = Trace
module Contention = Contention
module Ledger = Ledger

(* ------------------------------------------------------------------ *)
(* Spans. The plain-data types ([span], [snapshot]) live in
   [Obs_types] so that [Profile] can analyze them; re-export them here
   with type equality.                                                 *)

include Obs_types

type sink =
  | Null  (** disabled: all entry points are no-ops *)
  | Memory  (** ring buffer + metric registry only *)
  | Jsonl of out_channel
      (** [Memory] plus one JSONL record streamed per closed span *)

type state = {
  mutable sink : sink;
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable stack : span list;  (** open spans, innermost first *)
  ring : span Queue.t;  (** closed spans, completion order *)
  mutable ring_cap : int;
  mutable dropped : int;
  quanta : quantum Queue.t;  (** per-round gauge samples, oldest first *)
  mutable dropped_quanta : int;
  quantum_gauges : (string, unit -> float) Hashtbl.t;
      (** gauge providers sampled once per scheduler round *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histos : (string, Histogram.t) Hashtbl.t;
}

let st =
  { sink = Null;
    clock = Unix.gettimeofday;
    next_id = 1;
    stack = [];
    ring = Queue.create ();
    ring_cap = 65536;
    dropped = 0;
    quanta = Queue.create ();
    dropped_quanta = 0;
    quantum_gauges = Hashtbl.create 8;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 32 }

let enabled () = st.sink <> Null

(** The overhead ledger follows the sink: enabled whenever spans are
    collected, a guaranteed no-op under [Null]. *)
let set_sink s =
  st.sink <- s;
  Ledger.set_enabled (s <> Null)

(** Override the clock (tests substitute a deterministic one). The
    ledger shares it, so phase attribution is deterministic whenever the
    spans are. *)
let set_clock f =
  st.clock <- f;
  Ledger.set_clock f

let now () = st.clock ()

let set_ring_capacity n = st.ring_cap <- max 1 n

(** Drop all collected spans and metrics; keeps the sink. Also restores
    the pristine trace context and restarts trace-id minting, so two
    identically seeded runs separated by a [reset] stamp identical ids. *)
let reset () =
  st.next_id <- 1;
  st.stack <- [];
  Queue.clear st.ring;
  st.dropped <- 0;
  Queue.clear st.quanta;
  st.dropped_quanta <- 0;
  Hashtbl.reset st.quantum_gauges;
  Hashtbl.reset st.counters;
  Hashtbl.reset st.gauges;
  Hashtbl.reset st.histos;
  Trace.reset ();
  Ledger.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics. Every entry point is guarded by the sink check.            *)

let counter ?(by = 1) name =
  if enabled () then
    match Hashtbl.find_opt st.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace st.counters name (ref by)

let gauge name v =
  if enabled () then
    match Hashtbl.find_opt st.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace st.gauges name (ref v)

let observe name v =
  if enabled () then begin
    let h =
      match Hashtbl.find_opt st.histos name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.replace st.histos name h;
        h
    in
    Histogram.observe h v
  end

(* The ledger is a sibling module and cannot call the collector; feed
   its per-statement phase totals into the histogram registry here, so
   they stream/export exactly like every other metric. *)
let () = Ledger.set_observer observe

(* ------------------------------------------------------------------ *)
(* Span lifecycle.                                                     *)

(** The JSONL record of a closed span, mirroring [Prov.Trace]'s edge
    vocabulary: [label] is the edge label (span name), [src] the parent
    span, [dst] the span itself, [b]/[e] the time interval. *)
let span_record (sp : span) : Json.t =
  Json.Obj
    ([ ("t", Json.Str "span");
       ("label", Json.Str sp.sp_name);
       ("src", Json.Int sp.sp_parent);
       ("dst", Json.Int sp.sp_id);
       ("b", Json.Float sp.sp_start);
       ("e", Json.Float (sp.sp_start +. Float.max 0.0 sp.sp_dur)) ]
    @
    if sp.sp_attrs = [] then []
    else
      [ ( "attrs",
          Json.Obj
            (List.rev_map (fun (k, v) -> (k, Json.Str v)) sp.sp_attrs) ) ])

(** One scheduler round's gauge sample as a JSONL record. *)
let quantum_record (q : quantum) : Json.t =
  Json.Obj
    [ ("t", Json.Str "quantum");
      ("round", Json.Int q.q_round);
      ("at", Json.Float q.q_time);
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) q.q_gauges)) ]

let start_span ?(attrs = []) name : span =
  let parent = match st.stack with [] -> 0 | p :: _ -> p.sp_id in
  let sp =
    { sp_id = st.next_id;
      sp_parent = parent;
      sp_name = name;
      (* every span carries the ambient trace identity (trace.id /
         trace.session / trace.stmt) in front of its own attributes *)
      sp_attrs = Trace.attrs () @ attrs;
      sp_start = st.clock ();
      sp_dur = -1.0 }
  in
  st.next_id <- st.next_id + 1;
  st.stack <- sp :: st.stack;
  sp

(* Retire a closed span: bounded ring (evictions counted), the per-name
   duration histogram, and — under the streaming sink — one JSONL record
   out the door immediately. Shared by [finish_span] and [emit_span]. *)
let commit_span (sp : span) =
  if Queue.length st.ring >= st.ring_cap then begin
    ignore (Queue.pop st.ring);
    st.dropped <- st.dropped + 1
  end;
  Queue.push sp st.ring;
  (* per-stage duration histogram, so summaries keep percentiles even when
     the ring has dropped early spans *)
  observe ("span:" ^ sp.sp_name) sp.sp_dur;
  match st.sink with
  | Jsonl oc ->
    output_string oc (Json.to_string (span_record sp));
    output_char oc '\n'
  | Null | Memory -> ()

let finish_span (sp : span) =
  sp.sp_dur <- st.clock () -. sp.sp_start;
  (match st.stack with
  | top :: rest when top == sp -> st.stack <- rest
  | _ ->
    (* unbalanced finish (an inner span escaped); drop it wherever it is *)
    st.stack <- List.filter (fun s -> s != sp) st.stack);
  commit_span sp

(** Record an already-measured interval as a closed span. The wait-state
    spans (latch acquisition, group-commit stalls, scheduler resume gaps)
    are measured across parks where no lexical [with_span] scope exists,
    so they arrive with explicit [start]/[dur]. Deliberately a root span:
    parenting it on the shared span stack would attach one session's wait
    to whatever span another session happens to have open. It still
    carries the ambient trace-context attributes plus [attrs]. *)
let emit_span ?(attrs = []) ~start ~dur name =
  if enabled () then begin
    let sp =
      { sp_id = st.next_id;
        sp_parent = 0;
        sp_name = name;
        sp_attrs = Trace.attrs () @ attrs;
        sp_start = start;
        sp_dur = Float.max 0.0 dur }
    in
    st.next_id <- st.next_id + 1;
    commit_span sp
  end

(** Run [f] inside a span. The span nests under whichever span is
    currently open; on the disabled path this is exactly a call to [f]. *)
let with_span ?attrs name f =
  match st.sink with
  | Null -> f ()
  | Memory | Jsonl _ ->
    let sp = start_span ?attrs name in
    Fun.protect ~finally:(fun () -> finish_span sp) f

(** Attach an attribute to the innermost open span, if any. *)
let add_attr k v =
  if enabled () then
    match st.stack with
    | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
    | [] -> ()

(* ------------------------------------------------------------------ *)
(* Per-quantum telemetry. Subsystems register gauge providers (run-queue
   depth, snapshot age, fsync barriers); the kernel samples them all once
   per scheduler round via its quantum hook.                           *)

(** Register (or replace) a named gauge provider. Registration is always
    accepted — only sampling is gated on the sink — so providers set up
    while the sink was [Null] still report once it is enabled. *)
let register_quantum_gauge name (f : unit -> float) =
  Hashtbl.replace st.quantum_gauges name f

(** Sample every registered gauge provider into one [quantum] record for
    scheduler round [round]. The readings also update the plain gauge
    registry (last-value-wins), the record lands in a bounded queue
    (evictions counted in [dropped_quanta]), and under the streaming sink
    it is written out — and flushed — immediately, which is what makes
    the JSONL file grow while the run is still in progress. *)
let sample_quantum ~round () =
  if enabled () then begin
    let readings =
      Hashtbl.fold
        (fun name f acc ->
          (* a faulty provider must not take the scheduler round down *)
          let v = match f () with v -> v | exception _ -> 0.0 in
          (name, v) :: acc)
        st.quantum_gauges []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter (fun (name, v) -> gauge name v) readings;
    let q = { q_round = round; q_time = st.clock (); q_gauges = readings } in
    if Queue.length st.quanta >= st.ring_cap then begin
      ignore (Queue.pop st.quanta);
      st.dropped_quanta <- st.dropped_quanta + 1
    end;
    Queue.push q st.quanta;
    match st.sink with
    | Jsonl oc ->
      output_string oc (Json.to_string (quantum_record q));
      output_char oc '\n';
      flush oc
    | Null | Memory -> ()
  end

(* ------------------------------------------------------------------ *)
(* Snapshots: everything collected so far, in plain data (the
   [snapshot] type itself comes from [Obs_types]).                     *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () : snapshot =
  { spans = List.of_seq (Queue.to_seq st.ring);
    dropped_spans = st.dropped;
    ring_capacity = st.ring_cap;
    quanta = List.of_seq (Queue.to_seq st.quanta);
    dropped_quanta = st.dropped_quanta;
    counters = sorted_bindings st.counters (fun r -> !r);
    gauges = sorted_bindings st.gauges (fun r -> !r);
    histograms = sorted_bindings st.histos Histogram.summarize }

let children (snap : snapshot) (id : int) : span list =
  List.filter (fun sp -> sp.sp_parent = id) snap.spans

let roots (snap : snapshot) : span list = children snap 0

let find_spans (snap : snapshot) (name : string) : span list =
  List.filter (fun sp -> String.equal sp.sp_name name) snap.spans

(* ------------------------------------------------------------------ *)
(* JSONL codec.                                                        *)

let num f = Json.Float f

let hist_record name (s : Histogram.summary) : Json.t =
  Json.Obj
    [ ("t", Json.Str "hist");
      ("name", Json.Str name);
      ("count", Json.Int s.Histogram.s_count);
      ("sum", num s.Histogram.s_sum);
      ("min", num s.Histogram.s_min);
      ("max", num s.Histogram.s_max);
      ("p50", num s.Histogram.s_p50);
      ("p95", num s.Histogram.s_p95);
      ("p99", num s.Histogram.s_p99) ]

(** The run-level record flushed with the metrics: ring evictions and the
    ring capacity, so a JSONL reader knows whether the span list is
    complete ([of_jsonl] would otherwise silently report 0 drops). *)
let meta_record (snap : snapshot) : Json.t =
  Json.Obj
    [ ("t", Json.Str "meta");
      ("dropped", Json.Int snap.dropped_spans);
      ("dropped_quanta", Json.Int snap.dropped_quanta);
      ("ring_cap", Json.Int snap.ring_capacity) ]

let metric_records (snap : snapshot) : Json.t list =
  meta_record snap
  :: List.map
    (fun (name, v) ->
      Json.Obj
        [ ("t", Json.Str "counter"); ("name", Json.Str name);
          ("value", Json.Int v) ])
    snap.counters
  @ List.map
      (fun (name, v) ->
        Json.Obj
          [ ("t", Json.Str "gauge"); ("name", Json.Str name);
            ("value", num v) ])
      snap.gauges
  @ List.map (fun (name, s) -> hist_record name s) snap.histograms

(** Stream a snapshot's metric records to [oc]. The [Jsonl] sink already
    streamed the spans as they closed; this is the end-of-run flush. *)
let output_metrics oc (snap : snapshot) =
  List.iter
    (fun record ->
      output_string oc (Json.to_string record);
      output_char oc '\n')
    (metric_records snap)

(** The whole snapshot as JSONL text: spans, then quanta, then metrics
    (the streaming sink interleaves spans and quanta in real time
    instead; [output_metrics] deliberately re-emits neither). *)
let to_jsonl (snap : snapshot) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (Json.to_string (span_record sp));
      Buffer.add_char buf '\n')
    snap.spans;
  List.iter
    (fun q ->
      Buffer.add_string buf (Json.to_string (quantum_record q));
      Buffer.add_char buf '\n')
    snap.quanta;
  List.iter
    (fun record ->
      Buffer.add_string buf (Json.to_string record);
      Buffer.add_char buf '\n')
    (metric_records snap);
  Buffer.contents buf

let span_of_record (j : Json.t) : span =
  let get key =
    match Json.member key j with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "obs record misses %S" key)
  in
  let b = Json.to_float (get "b") and e = Json.to_float (get "e") in
  { sp_id = Json.to_int (get "dst");
    sp_parent = Json.to_int (get "src");
    sp_name = Json.to_str (get "label");
    sp_attrs =
      (match Json.member "attrs" j with
      | Some attrs ->
        List.map (fun (k, v) -> (k, Json.to_str v)) (Json.to_obj attrs)
      | None -> []);
    sp_start = b;
    sp_dur = e -. b }

let summary_of_record (j : Json.t) : Histogram.summary =
  let f key =
    match Json.member key j with Some v -> Json.to_float v | None -> Float.nan
  in
  let i key =
    match Json.member key j with Some v -> Json.to_int v | None -> 0
  in
  { Histogram.s_count = i "count";
    s_sum = f "sum";
    s_min = f "min";
    s_max = f "max";
    s_p50 = f "p50";
    s_p95 = f "p95";
    s_p99 = f "p99" }

(** Rebuild a snapshot from exported JSONL (the [ldv stats] reader).
    Unknown record types are skipped so the format can grow. A malformed
    or truncated line raises [Ldv_errors.Error (Decode_error _)] with its
    1-based line number, matching the [Recorder.decode] convention —
    except on the file's final line: a crash kills the streaming sink
    mid-record, so an unreadable trailing record is the expected
    signature of a torn sink. It is reported as a typed
    [Ldv_errors.Sink_torn] warning and skipped, and the (complete)
    prefix decodes normally — post-crash [ldv stats] works. *)
let of_jsonl (data : string) : snapshot =
  let spans = ref [] in
  let dropped = ref 0 in
  let ring_cap = ref 0 in
  let quanta = ref [] in
  let dropped_quanta = ref 0 in
  let counters = ref [] in
  let gauges = ref [] in
  let histograms = ref [] in
  let lines = String.split_on_char '\n' data in
  let last_line =
    let last = ref 0 in
    List.iteri (fun i line -> if String.trim line <> "" then last := i) lines;
    !last
  in
  lines
  |> List.iteri (fun i line ->
         let line = String.trim line in
         let fail fmt =
           Format.kasprintf
             (fun what ->
               Ldv_errors.fail (Ldv_errors.Decode_error { line = i + 1; what }))
             fmt
         in
         try
         if line <> "" then begin
           let j =
             match Json.of_string line with
             | j -> j
             | exception Json.Parse_error what -> fail "%s" what
           in
           let name () =
             match Json.member "name" j with
             | Some n -> Json.to_str n
             | None -> fail "obs record misses \"name\""
           in
           let int_member ?(default = 0) key =
             match Json.member key j with
             | Some v -> Json.to_int v
             | None -> default
           in
           match
             match Option.map Json.to_str (Json.member "t" j) with
             | Some "span" -> spans := span_of_record j :: !spans
             | Some "quantum" ->
               let gs =
                 match Json.member "gauges" j with
                 | Some g ->
                   List.map (fun (k, v) -> (k, Json.to_float v)) (Json.to_obj g)
                 | None -> []
               in
               let at =
                 match Json.member "at" j with
                 | Some v -> Json.to_float v
                 | None -> 0.0
               in
               quanta :=
                 { q_round = int_member "round"; q_time = at; q_gauges = gs }
                 :: !quanta
             | Some "meta" ->
               dropped := int_member "dropped";
               dropped_quanta := int_member "dropped_quanta";
               ring_cap := int_member "ring_cap"
             | Some "counter" -> counters := (name (), int_member "value") :: !counters
             | Some "gauge" ->
               let v =
                 match Json.member "value" j with
                 | Some v -> Json.to_float v
                 | None -> Float.nan
               in
               gauges := (name (), v) :: !gauges
             | Some "hist" ->
               histograms := (name (), summary_of_record j) :: !histograms
             | _ -> ()
           with
           | () -> ()
           | exception Json.Parse_error what -> fail "%s" what
           | exception Invalid_argument what -> fail "%s" what
         end
         with
         | Ldv_errors.Error (Ldv_errors.Decode_error { line; what })
           when i = last_line ->
           Ldv_errors.warn (Ldv_errors.Sink_torn { line; what }));
  let by_name (a, _) (b, _) = String.compare a b in
  { spans = List.rev !spans;
    dropped_spans = !dropped;
    ring_capacity = !ring_cap;
    quanta = List.rev !quanta;
    dropped_quanta = !dropped_quanta;
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms }
