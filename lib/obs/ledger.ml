(** The overhead ledger: phase-attributed statement cost accounting.

    The paper's promise is that audited execution stays *light-weight*;
    this module is what turns that claim into a number. Every statement's
    wall time is decomposed into phases — parse, plan, execute, WAL
    append, fsync, audit recording, provenance computation — plus
    [Obs_self], the measured cost of this instrumentation itself: each
    {!time} frame reads the clock on entry and exit of its own
    bookkeeping, and those slivers accumulate into the obs-self slot
    instead of polluting the phase they wrap.

    Attribution is *exclusive*: a nested frame's whole footprint
    (including its metering cost) is subtracted from the enclosing frame,
    so the per-phase values of one statement telescope — their sum plus
    obs-self plus the unattributed remainder ("other") equals the
    statement's wall time.

    Aggregation is streaming: at statement end the per-phase totals are
    pushed into the collector's bounded log-scale histograms
    ([ledger:<phase>], [ledger:stmt], [ledger:other]) through the
    {!set_observer} hook and the accumulator is reset — whole runs are
    never buffered, matching the JSONL sink's incremental discipline.

    Like {!Trace}, the accumulator lives in a per-job context: sequential
    code mutates the ambient root, and [Minios.Sched] swaps a per-job
    context in around every quantum ({!use}) so concurrent sessions do
    not corrupt each other's frames. This module is a sibling of the
    [Ldv_obs] collector root and cannot call it; the root installs the
    clock, the enable flag, and the histogram observer at load time. *)

type phase =
  | Parse  (** SQL text to AST *)
  | Plan  (** plan selection (planner) *)
  | Exec  (** plan execution (executor) *)
  | Wal_append  (** WAL record encode + buffered append *)
  | Fsync  (** durability barriers: WAL and ship-log fsync *)
  | Audit_record  (** recording statements/results/tuples into the audit *)
  | Provenance  (** lineage queries and reenactment capture *)
  | Obs_self  (** the ledger's own metering cost, measured *)

let phases =
  [ Parse; Plan; Exec; Wal_append; Fsync; Audit_record; Provenance; Obs_self ]

let phase_name = function
  | Parse -> "parse"
  | Plan -> "plan"
  | Exec -> "exec"
  | Wal_append -> "wal-append"
  | Fsync -> "fsync"
  | Audit_record -> "audit-record"
  | Provenance -> "provenance"
  | Obs_self -> "obs-self"

let phase_of_name = function
  | "parse" -> Some Parse
  | "plan" -> Some Plan
  | "exec" -> Some Exec
  | "wal-append" -> Some Wal_append
  | "fsync" -> Some Fsync
  | "audit-record" -> Some Audit_record
  | "provenance" -> Some Provenance
  | "obs-self" -> Some Obs_self
  | _ -> None

let tag = function
  | Parse -> 0
  | Plan -> 1
  | Exec -> 2
  | Wal_append -> 3
  | Fsync -> 4
  | Audit_record -> 5
  | Provenance -> 6
  | Obs_self -> 7

let n_phases = 8

(** Histogram naming shared with the readers ([ldv overhead], bench). *)
let hist_prefix = "ledger:"

let hist_of_phase p = hist_prefix ^ phase_name p
let stmt_hist = hist_prefix ^ "stmt"
let other_hist = hist_prefix ^ "other"

(** The audit-attributable phases: what an unaudited (native) execution
    of the same statement would not pay. [Obs_self] counts against the
    audit — the native baseline runs with observability off. *)
let audit_phases = [ Audit_record; Provenance; Obs_self ]

let is_audit_phase p = List.mem p audit_phases

(* ------------------------------------------------------------------ *)
(* Hooks installed by the collector root (ldv_obs.ml) at load time.    *)

let enabled = ref false
let set_enabled b = enabled := b

let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f

(* Where finished per-statement phase totals go: the collector's
   histogram registry. Default drops, so the ledger is inert until the
   root wires it. *)
let observer : (string -> float -> unit) ref = ref (fun _ _ -> ())
let set_observer f = observer := f

(* ------------------------------------------------------------------ *)
(* Per-job accumulator context.                                        *)

type frame = {
  fr_tag : int;  (** phase slot this frame attributes to *)
  mutable fr_sub : float;
      (** wall time of nested frames (including their metering cost),
          subtracted so attribution stays exclusive *)
}

type ctx = {
  mutable l_active : bool;  (** a statement is being accounted *)
  mutable l_stmt_start : float;
  l_acc : float array;  (** per-phase seconds, indexed by [tag] *)
  mutable l_self : float;  (** accumulated metering cost *)
  mutable l_stack : frame list;  (** open frames, innermost first *)
}

let make () =
  { l_active = false;
    l_stmt_start = 0.0;
    l_acc = Array.make n_phases 0.0;
    l_self = 0.0;
    l_stack = [] }

let root = make ()
let current = ref root

(** Install [c] as the ambient accumulator and return the previous one
    (the scheduler's swap-in/swap-out primitive, mirroring [Trace.use]). *)
let use (c : ctx) : ctx =
  let prev = !current in
  current := c;
  prev

(** Restore the pristine root context (called by [Ldv_obs.reset]). *)
let reset () =
  root.l_active <- false;
  root.l_stmt_start <- 0.0;
  Array.fill root.l_acc 0 n_phases 0.0;
  root.l_self <- 0.0;
  root.l_stack <- [];
  current := root

(* ------------------------------------------------------------------ *)
(* Statement lifecycle.                                                *)

(** Open a statement account: zero the accumulator and stamp the start.
    A no-op when the ledger is disabled. *)
let stmt_begin () =
  if !enabled then begin
    let c = !current in
    c.l_active <- true;
    Array.fill c.l_acc 0 n_phases 0.0;
    c.l_self <- 0.0;
    c.l_stack <- [];
    c.l_stmt_start <- !clock ()
  end

(** Close the account and stream one observation per phase (zeros
    included, so every ledger histogram counts every statement and
    per-statement means divide by the same denominator), plus the
    statement total and the unattributed remainder. *)
let stmt_end () =
  if !enabled then begin
    let c = !current in
    if c.l_active then begin
      let t_end = !clock () in
      c.l_active <- false;
      c.l_stack <- [];
      c.l_acc.(tag Obs_self) <- c.l_self;
      let total = Float.max 0.0 (t_end -. c.l_stmt_start) in
      let emit = !observer in
      emit stmt_hist total;
      let attributed = ref 0.0 in
      List.iter
        (fun p ->
          let v = c.l_acc.(tag p) in
          attributed := !attributed +. v;
          emit (hist_of_phase p) v)
        phases;
      emit other_hist (Float.max 0.0 (total -. !attributed))
    end
  end

(* ------------------------------------------------------------------ *)
(* Phase frames.                                                       *)

(* Close the frame opened at [t0] whose body started at [t1] and ended
   at [t2]: attribute the exclusive body time, meter the bookkeeping
   slivers into obs-self, and charge the whole footprint to the parent's
   subtraction. *)
let close_frame (c : ctx) (fr : frame) ~t0 ~t1 ~t2 =
  (match c.l_stack with
  | top :: rest when top == fr -> c.l_stack <- rest
  | _ -> c.l_stack <- List.filter (fun f -> f != fr) c.l_stack);
  let body = t2 -. t1 -. fr.fr_sub in
  c.l_acc.(fr.fr_tag) <- c.l_acc.(fr.fr_tag) +. Float.max 0.0 body;
  let t3 = !clock () in
  c.l_self <- c.l_self +. (t1 -. t0) +. (t3 -. t2);
  match c.l_stack with
  | parent :: _ -> parent.fr_sub <- parent.fr_sub +. (t3 -. t0)
  | [] -> ()

(** Run [f] and attribute its exclusive wall time to [phase]. Outside an
    open statement account (or with the ledger disabled) this is exactly
    a call to [f]: background work — group-commit flushes, recovery,
    catch-up — is not attributed to whichever statement ran last. *)
let time phase f =
  if not !enabled then f ()
  else begin
    let c = !current in
    if not c.l_active then f ()
    else begin
      let t0 = !clock () in
      let fr = { fr_tag = tag phase; fr_sub = 0.0 } in
      c.l_stack <- fr :: c.l_stack;
      let t1 = !clock () in
      match f () with
      | r ->
        close_frame c fr ~t0 ~t1 ~t2:(!clock ());
        r
      | exception e ->
        close_frame c fr ~t0 ~t1 ~t2:(!clock ());
        raise e
    end
  end

(** Attribute an already-measured duration to [phase] (for sites that
    time across non-lexical boundaries). *)
let record phase dur =
  if !enabled then begin
    let c = !current in
    if c.l_active then
      c.l_acc.(tag phase) <- c.l_acc.(tag phase) +. Float.max 0.0 dur
  end
