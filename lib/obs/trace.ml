(** Trace contexts: run/session/statement identity carried by every span.

    The interceptor mints one run-level trace id per primary session
    (siblings share it) and stamps the ambient context with its session
    and statement ids as statements execute. Sequential code sees a
    single ambient context; [Minios.Sched] gives each scheduled job its
    own context and swaps it in around every quantum ([use]), so a
    session keeps its identity across parks and resumes and every span —
    including the scheduler's own wait-state spans — records which
    session it belongs to. *)

type ctx = {
  mutable c_trace : int;  (** run-level trace id; 0 = unset *)
  mutable c_session : int;  (** session id; -1 = unset *)
  mutable c_stmt : int;  (** statement (query) id; -1 = unset *)
}

let make () = { c_trace = 0; c_session = -1; c_stmt = -1 }

(* The ambient context. Non-scheduled code mutates this root directly;
   the scheduler installs a per-job context around each quantum. *)
let root = make ()
let current = ref root

(** Install [c] as the ambient context and return the previous one (the
    scheduler's swap-in/swap-out primitive). *)
let use (c : ctx) : ctx =
  let prev = !current in
  current := c;
  prev

let set_trace id = !current.c_trace <- id
let set_session sid = !current.c_session <- sid

(** The ambient run-level trace id (0 = unset). Replication stamps it
    into ship frames so replica-side apply spans join the originating
    statement's causal tree. *)
let id () = !current.c_trace

(** Pass [-1] to clear the statement id between statements, so quanta
    spent outside any statement are not mis-attributed to the last one. *)
let set_stmt qid = !current.c_stmt <- qid

(* Attribute keys, shared with the contention analyzer. *)
let trace_attr = "trace.id"
let session_attr = "trace.session"
let stmt_attr = "trace.stmt"

(** The trace attributes of the ambient context, in a fixed order; unset
    fields are omitted, so code that never touches contexts produces
    spans with exactly the attributes it asked for. *)
let attrs () : (string * string) list =
  let c = !current in
  let acc =
    if c.c_stmt >= 0 then [ (stmt_attr, string_of_int c.c_stmt) ] else []
  in
  let acc =
    if c.c_session >= 0 then (session_attr, string_of_int c.c_session) :: acc
    else acc
  in
  if c.c_trace > 0 then (trace_attr, string_of_int c.c_trace) :: acc else acc

let next_trace = ref 0

(** Mint a fresh run-level trace id. *)
let mint () =
  incr next_trace;
  !next_trace

(** Restore the pristine root context and restart id minting: identical
    seeded runs must produce identical ids (called by [Ldv_obs.reset]). *)
let reset () =
  next_trace := 0;
  root.c_trace <- 0;
  root.c_session <- -1;
  root.c_stmt <- -1;
  current := root
