(** Critical-path and self/total-time analysis over collected span forests.

    [Ldv_obs] answers "what happened"; this module answers "where did the
    time go". It reconstructs the span forest of a snapshot (in-memory or
    re-read from exported JSONL), attributes each span's {e self} time
    (total minus the time spent in its children), extracts the
    {e critical path} of each root (the chain of heaviest children, with
    per-step cost attribution that telescopes exactly to the root's
    duration), renders collapsed-stack output consumable by flamegraph.pl
    and speedscope, overlays span timings and their provenance-node
    correlations onto a [Prov.Dot]-style graphviz rendering, and diffs two
    runs per span name for the [ldv obs diff] regression gate. *)

(** One span placed in the reconstructed forest. *)
type node = {
  n_span : Obs_types.span;
  n_children : node list;  (** in span-id order *)
  n_total : float;  (** the span's own duration, clamped at 0 *)
  n_self : float;  (** [n_total] minus the children's totals, clamped at 0 *)
}

type t = {
  forest : node list;  (** root spans in completion order *)
  orphans : int;
      (** spans whose parent is not in the snapshot (evicted from the
          ring, or an escaped/unbalanced finish); they are promoted to
          roots *)
  wall : float;  (** sum of root totals *)
}

val of_snapshot : Obs_types.snapshot -> t

(* ------------------------------------------------------------------ *)
(* Self/total aggregation.                                             *)

(** Per-span-name aggregate over the whole forest. *)
type row = {
  r_name : string;
  r_count : int;
  r_total : float;
  r_self : float;
  r_max : float;  (** largest single total *)
}

(** Aggregated rows, heaviest self time first. *)
val rows : t -> row list

(* ------------------------------------------------------------------ *)
(* Critical path.                                                      *)

(** One step of a critical path. [st_step] is the time attributable to
    this step alone: the span's total minus the total of the (heaviest)
    child the path descends into — i.e. its self time plus its
    non-critical children. Step costs telescope: their sum over a path
    equals the root span's duration up to float associativity. *)
type step = {
  st_span : Obs_types.span;
  st_total : float;
  st_self : float;
  st_step : float;
}

(** The chain of heaviest children starting at [node]. *)
val critical_path : node -> step list

(** One critical path per root, in forest order. *)
val critical_paths : t -> (node * step list) list

(* ------------------------------------------------------------------ *)
(* Export formats.                                                     *)

(** Collapsed-stack output ("root;child;leaf <self-µs>" per line, sorted,
    identical stacks merged) — the input format of flamegraph.pl and
    speedscope. Frames with zero rounded self time are omitted. *)
val to_collapsed : t -> string

(** Graphviz rendering of the span forest in the visual vocabulary of
    [Prov.Dot]: spans are boxes colored by self-time heat and labelled
    with self/total timings, parent→child edges carry the [b .. e]
    interval, and every [prov.*] span attribute materializes the named
    provenance node (proc:PID / stmt:QID / file:PATH, shaped and colored
    as in the trace-graph rendering) with a dashed gray correlation
    edge — the span timing overlay for a provenance trace graph. *)
val to_dot : t -> string

(* ------------------------------------------------------------------ *)
(* Run-to-run diff (the regression gate).                              *)

(** Per-span-name comparison of two runs. [d_p95_*] come from the
    [span:<name>] duration histograms when the snapshots carry them
    (NaN otherwise). *)
type diff_row = {
  d_name : string;
  d_count_a : int;
  d_count_b : int;
  d_total_a : float;
  d_total_b : float;
  d_p95_a : float;
  d_p95_b : float;
}

(** Change of the total, in percent of run [a]'s total ([infinity] for a
    span new in [b], [neg_infinity] for one that disappeared, 0 when both
    are absent/zero). *)
val delta_pct : diff_row -> float

(** True when the row's total grew beyond [budget_pct] percent (new spans
    with measurable time count as regressions; sub-microsecond jitter is
    ignored). *)
val regressed : budget_pct:float -> diff_row -> bool

(** Rows for every span name in either snapshot, sorted by decreasing
    total delta. Span names whose ring entries were evicted but whose
    [span:<name>] histograms survived are still compared (using the
    histogram's count and sum), so a span present in only one run is
    reported as added/removed rather than silently skipped. *)
val diff : Obs_types.snapshot -> Obs_types.snapshot -> diff_row list

(* ------------------------------------------------------------------ *)
(* Blocked-vs-running attribution.                                      *)

(** Per-session blocked-vs-running breakdown of a concurrent trace
    (running in scheduler quanta + blocked between them = wall time per
    session; latch waits reported as an overlay). Delegates to
    [Contention.attribution] — see there for the span vocabulary. *)
val attribution : Obs_types.snapshot -> Contention.session_attr list
