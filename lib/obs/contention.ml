(** Contention analysis over collected traces: blocked-vs-running
    attribution per session, a per-session timeline of scheduler quanta,
    and a latch-holder report.

    The analyzer is pure — it reads the wait-state span vocabulary the
    instrumented stack emits and never touches the live collector, so it
    runs identically over an in-memory snapshot and a re-parsed JSONL
    trace:

    - ["sched.quantum"]: one span per scheduler step of a job;
    - ["wait.sched"]: the park-to-resume gap before that step;
    - ["wait.latch"]: time spin-waiting on the interceptor's write
      latch, with a [latch.holder] attribute naming the session that
      held it (cross-session causality);
    - ["wait.group-commit"]: time a batch of statements sat with its
      fsync deferred by group commit, with a [wal.batch] attribute.

    Quantum and scheduler-wait spans of one session tile the interval
    between its first and last activity with shared endpoints, so per
    session [running + blocked = wall] holds exactly; latch waits happen
    *inside* quanta and are reported as an overlay, not added to the
    wall time. *)

open Obs_types

let quantum_span = "sched.quantum"
let sched_wait_span = "wait.sched"
let latch_wait_span = "wait.latch"
let group_commit_wait_span = "wait.group-commit"
let holder_attr = "latch.holder"

let session_of (sp : span) : string =
  match List.assoc_opt Trace.session_attr sp.sp_attrs with
  | Some s -> s
  | None -> "-"

(* Sessions sort numerically when they are numbers (the usual case);
   the unattributed bucket "-" sorts last. *)
let compare_session (a : string) (b : string) =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> String.compare a b

let span_end (sp : span) = sp.sp_start +. Float.max 0.0 sp.sp_dur

(* ------------------------------------------------------------------ *)
(* Blocked-vs-running attribution.                                     *)

type session_attr = {
  a_session : string;
  a_wall : float;  (** last activity end - first activity start *)
  a_running : float;  (** total [sched.quantum] time *)
  a_blocked : float;  (** total [wait.sched] time *)
  a_latch_wait : float;  (** overlay: [wait.latch] time inside quanta *)
  a_quanta : int;
  a_waits : int;
  a_stall : Histogram.t;  (** wait durations (sched + latch) *)
}

type acc = {
  mutable k_first : float;
  mutable k_last : float;
  mutable k_run : float;
  mutable k_blocked : float;
  mutable k_latch : float;
  mutable k_quanta : int;
  mutable k_waits : int;
  k_stall : Histogram.t;
}

let attribution (snap : snapshot) : session_attr list =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 8 in
  let acc_of session =
    match Hashtbl.find_opt tbl session with
    | Some a -> a
    | None ->
      let a =
        { k_first = Float.infinity;
          k_last = Float.neg_infinity;
          k_run = 0.0;
          k_blocked = 0.0;
          k_latch = 0.0;
          k_quanta = 0;
          k_waits = 0;
          k_stall = Histogram.create () }
      in
      Hashtbl.replace tbl session a;
      a
  in
  let bounds a (sp : span) =
    if sp.sp_start < a.k_first then a.k_first <- sp.sp_start;
    let e = span_end sp in
    if e > a.k_last then a.k_last <- e
  in
  List.iter
    (fun (sp : span) ->
      if String.equal sp.sp_name quantum_span then begin
        let a = acc_of (session_of sp) in
        bounds a sp;
        a.k_run <- a.k_run +. Float.max 0.0 sp.sp_dur;
        a.k_quanta <- a.k_quanta + 1
      end
      else if String.equal sp.sp_name sched_wait_span then begin
        let a = acc_of (session_of sp) in
        bounds a sp;
        a.k_blocked <- a.k_blocked +. Float.max 0.0 sp.sp_dur;
        a.k_waits <- a.k_waits + 1;
        Histogram.observe a.k_stall sp.sp_dur
      end
      else if String.equal sp.sp_name latch_wait_span then begin
        let a = acc_of (session_of sp) in
        a.k_latch <- a.k_latch +. Float.max 0.0 sp.sp_dur;
        a.k_waits <- a.k_waits + 1;
        Histogram.observe a.k_stall sp.sp_dur
      end)
    snap.spans;
  Hashtbl.fold
    (fun session a rows ->
      { a_session = session;
        a_wall = (if a.k_last > a.k_first then a.k_last -. a.k_first else 0.0);
        a_running = a.k_run;
        a_blocked = a.k_blocked;
        a_latch_wait = a.k_latch;
        a_quanta = a.k_quanta;
        a_waits = a.k_waits;
        a_stall = a.k_stall }
      :: rows)
    tbl []
  |> List.sort (fun x y -> compare_session x.a_session y.a_session)

(* ------------------------------------------------------------------ *)
(* Per-session timeline (the Gantt behind [ldv timeline]).             *)

type seg_kind = Run | Wait

type segment = {
  g_start : float;
  g_dur : float;
  g_kind : seg_kind;
}

let timeline (snap : snapshot) : (string * segment list) list =
  let tbl : (string, segment list ref) Hashtbl.t = Hashtbl.create 8 in
  let push session seg =
    match Hashtbl.find_opt tbl session with
    | Some r -> r := seg :: !r
    | None -> Hashtbl.replace tbl session (ref [ seg ])
  in
  List.iter
    (fun (sp : span) ->
      let kind =
        if String.equal sp.sp_name quantum_span then Some Run
        else if String.equal sp.sp_name sched_wait_span then Some Wait
        else None
      in
      match kind with
      | Some g_kind ->
        push (session_of sp)
          { g_start = sp.sp_start; g_dur = Float.max 0.0 sp.sp_dur; g_kind }
      | None -> ())
    snap.spans;
  Hashtbl.fold
    (fun session r rows ->
      ( session,
        List.sort (fun a b -> compare a.g_start b.g_start) !r )
      :: rows)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_session a b)

(* ------------------------------------------------------------------ *)
(* Latch holders: who made everyone else wait.                         *)

type holder = {
  h_session : string;  (** the session that held the latch *)
  h_waited : float;  (** total time other sessions waited on it *)
  h_waiters : int;  (** number of waits it caused *)
}

let holders (snap : snapshot) : holder list =
  let tbl : (string, (float * int) ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (sp : span) ->
      if String.equal sp.sp_name latch_wait_span then begin
        let who =
          Option.value ~default:"-" (List.assoc_opt holder_attr sp.sp_attrs)
        in
        let dur = Float.max 0.0 sp.sp_dur in
        match Hashtbl.find_opt tbl who with
        | Some r ->
          let w, n = !r in
          r := (w +. dur, n + 1)
        | None -> Hashtbl.replace tbl who (ref (dur, 1))
      end)
    snap.spans;
  Hashtbl.fold
    (fun session r rows ->
      let h_waited, h_waiters = !r in
      { h_session = session; h_waited; h_waiters } :: rows)
    tbl []
  |> List.sort (fun a b ->
         match compare b.h_waited a.h_waited with
         | 0 -> compare_session a.h_session b.h_session
         | c -> c)

(* ------------------------------------------------------------------ *)
(* The full report.                                                    *)

type report = {
  c_sessions : session_attr list;
  c_holders : holder list;
  c_latch_share : float;
      (** total latch-wait time over total per-session wall time *)
  c_blocked_share : float;  (** total blocked over total wall *)
  c_stall : Histogram.summary;
      (** all sessions' wait durations, merged ([Histogram.merge]) *)
}

let contention (snap : snapshot) : report =
  let sessions = attribution snap in
  let wall, latch, blocked =
    List.fold_left
      (fun (w, l, b) a ->
        (w +. a.a_wall, l +. a.a_latch_wait, b +. a.a_blocked))
      (0.0, 0.0, 0.0) sessions
  in
  let merged =
    List.fold_left
      (fun m a -> Histogram.merge m a.a_stall)
      (Histogram.create ()) sessions
  in
  { c_sessions = sessions;
    c_holders = holders snap;
    c_latch_share = (if wall > 0.0 then latch /. wall else 0.0);
    c_blocked_share = (if wall > 0.0 then blocked /. wall else 0.0);
    c_stall = Histogram.summarize merged }
