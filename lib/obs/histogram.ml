(** Log-scale histograms with bounded relative error.

    Values are placed into geometric buckets with ratio [gamma] = 2^(1/16),
    so any reported quantile is within ~2.2% of the true sample value
    (sqrt gamma relative error) while the histogram itself stays O(number
    of distinct magnitudes) regardless of sample count. This is the same
    trick DDSketch/HdrHistogram use, sized for timing data spanning
    nanoseconds to minutes. *)

let gamma = Float.pow 2.0 (1.0 /. 16.0)
let log_gamma = log gamma

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable underflow : int;  (** samples <= 0, reported as 0 *)
  buckets : (int, int ref) Hashtbl.t;
}

let create () =
  { count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    underflow = 0;
    buckets = Hashtbl.create 32 }

let bucket_of v = int_of_float (Float.round (log v /. log_gamma))
let value_of idx = Float.pow gamma (float_of_int idx)

let observe t v =
  (* A NaN must not reach sum/min_v/max_v: one poisoned sample would turn
     every summary statistic of the histogram into NaN. Count it like an
     underflow (it reports as 0 in percentiles) and keep the moments clean. *)
  if Float.is_nan v then begin
    t.count <- t.count + 1;
    t.underflow <- t.underflow + 1
  end
  else begin
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= 0.0 then t.underflow <- t.underflow + 1
  else
    let idx = bucket_of v in
    (match Hashtbl.find_opt t.buckets idx with
    | Some r -> incr r
    | None -> Hashtbl.replace t.buckets idx (ref 1))
  end

let count t = t.count

(** Combine two histograms into a fresh one (the inputs are untouched).
    Buckets add exactly, so a percentile of the merge lies between the
    corresponding percentiles of the inputs up to bucket resolution —
    per-session histograms aggregate into a run-wide view losslessly. *)
let merge (a : t) (b : t) : t =
  let t = create () in
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  t.min_v <- Float.min a.min_v b.min_v;
  t.max_v <- Float.max a.max_v b.max_v;
  t.underflow <- a.underflow + b.underflow;
  let add idx n =
    match Hashtbl.find_opt t.buckets idx with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.buckets idx (ref n)
  in
  Hashtbl.iter (fun idx r -> add idx !r) a.buckets;
  Hashtbl.iter (fun idx r -> add idx !r) b.buckets;
  t

(** The [q]-quantile (0 < q <= 1) of the observed samples, up to bucket
    resolution. Clamped into [min, max] so p100 is exact. *)
let percentile t q =
  if t.count = 0 then Float.nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    if rank <= t.underflow then 0.0
    else
      let entries =
        Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets []
        |> List.sort compare
      in
      let rec go seen = function
        | [] -> t.max_v
        | (idx, n) :: rest ->
          let seen = seen + n in
          if seen >= rank then
            Float.min t.max_v (Float.max t.min_v (value_of idx))
          else go seen rest
      in
      go t.underflow entries
  end

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

let summarize t : summary =
  if t.count = 0 then
    { s_count = 0;
      s_sum = 0.0;
      s_min = Float.nan;
      s_max = Float.nan;
      s_p50 = Float.nan;
      s_p95 = Float.nan;
      s_p99 = Float.nan }
  else
    { s_count = t.count;
      s_sum = t.sum;
      s_min = t.min_v;
      s_max = t.max_v;
      s_p50 = percentile t 0.50;
      s_p95 = percentile t 0.95;
      s_p99 = percentile t 0.99 }

let mean (s : summary) =
  if s.s_count = 0 then Float.nan else s.s_sum /. float_of_int s.s_count
