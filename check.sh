#!/bin/sh
# Full verification: build everything (lib/obs and lib/faults compile
# with -warn-error +a), run the test suite, then smoke-test the
# fault-injection harness (must exit 0: no untyped exceptions).
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest
dune exec bin/ldv.exe -- faultcheck --campaigns 5 --seed 42
