#!/bin/sh
# Full verification: build everything (lib/obs compiles with
# -warn-error +a) and run the test suite.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest
