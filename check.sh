#!/bin/sh
# Full verification: build everything (lib/obs and lib/faults compile
# with -warn-error +a), run the test suite, then smoke-test the
# fault-injection and crash-consistency harnesses (each must exit 0:
# no untyped exceptions, no divergence from the uncrashed control).
#
# --quick skips both harness smokes (build + tests only).
set -e
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
  esac
done

dune build @all
dune runtest

if [ "$quick" -eq 0 ]; then
  dune exec bin/ldv.exe -- faultcheck --campaigns 5 --seed 42
  dune exec bin/ldv.exe -- crashcheck --campaigns 5 --seed 42
fi
