#!/bin/sh
# Full verification: build everything (lib/obs and lib/faults compile
# with -warn-error +a), run the test suite, then smoke-test the
# fault-injection and crash-consistency harnesses (each must exit 0:
# no untyped exceptions, no divergence from the uncrashed control) and
# the profiler: an instrumented audit run is profiled (self/total +
# critical path must render) and diffed against itself with a tight
# budget (the gate must pass on identical runs).
#
# --quick skips the harness/profiler smokes (build + tests + the
# replicacheck/txcheck smokes + the overhead-ledger gate self-check).
set -e
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
  esac
done

dune build @all
dune runtest

# replication smoke (also under --quick): seeded ship-fault / crash
# campaigns against a 2-replica cluster; must exit 0 (every degraded
# run verified against the control, every replica converged)
dune exec bin/ldv.exe -- replicacheck --seeds 5 --replicas 2

# transaction recovery smoke (also under --quick): seeded crashes inside
# open transactions across 4 concurrent sessions; recovery must roll
# back every transaction without a durable COMMIT and match the control
# at transaction granularity, including reenacted provenance
dune exec bin/ldv.exe -- txcheck --seeds 5 --sessions 4

# planner smoke (also under --quick): the cost model must pick a hash
# index scan for an indexed equality and an ordered-index range scan for
# a selective inequality, and say so in EXPLAIN
sql="CREATE TABLE emp (id INT, dno INT, sal INT);
CREATE INDEX emp_dno ON emp (dno);
CREATE ORDERED INDEX emp_sal ON emp (sal);"
i=1
while [ "$i" -le 40 ]; do
  sql="$sql INSERT INTO emp VALUES ($i, $((i % 5)), $i);"
  i=$((i + 1))
done
sql="$sql EXPLAIN SELECT id FROM emp WHERE dno = 3;
EXPLAIN SELECT id FROM emp WHERE sal > 35"
plans=$(dune exec bin/ldv.exe -- sql "$sql")
echo "$plans" | grep -q "indexscan(emp.emp_dno)" || {
  echo "check.sh: EXPLAIN did not choose the hash index for an equality" >&2
  exit 1
}
echo "$plans" | grep -q "rangescan(emp.emp_sal" || {
  echo "check.sh: EXPLAIN did not choose the ordered index for a range" >&2
  exit 1
}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# overhead-ledger smoke (also under --quick): stream a replicated
# concurrent audit, render the per-phase ledger and the cluster-wide
# causal timeline, and exercise the gate in both directions — a
# generous budget must pass, and an absurdly tight one must trip
# (exit 5), proving the gate can actually catch a regression
dune exec bin/ldv.exe -- --obs "jsonl:$tmpdir/ov.jsonl" \
  audit --sessions 4 --replicas 2 -o "$tmpdir/ov.ldv" > /dev/null
dune exec bin/ldv.exe -- overhead "$tmpdir/ov.jsonl" --gate 500 > /dev/null
if dune exec bin/ldv.exe -- overhead "$tmpdir/ov.jsonl" --gate 0.0001 \
    > /dev/null 2>&1; then
  echo "check.sh: overhead gate failed to trip on an injected regression" >&2
  exit 1
fi
dune exec bin/ldv.exe -- timeline "$tmpdir/ov.jsonl" --cluster > /dev/null
# the span-diff gate must pass a repl/tx-bearing trace against itself
dune exec bin/ldv.exe -- obs diff "$tmpdir/ov.jsonl" "$tmpdir/ov.jsonl" \
  --budget 10 > /dev/null

if [ "$quick" -eq 0 ]; then
  dune exec bin/ldv.exe -- faultcheck --campaigns 5 --seed 42
  dune exec bin/ldv.exe -- crashcheck --campaigns 5 --seed 42
  # concurrent path: 4 interleaved sessions; faults must stay typed and
  # a mid-quantum crash under group commit must recover to the control
  dune exec bin/ldv.exe -- faultcheck --campaigns 3 --seed 42 --sessions 4
  dune exec bin/ldv.exe -- crashcheck --campaigns 5 --seed 42 --sessions 4
  # scheduler/group-commit/replay-determinism bench (writes
  # BENCH_concurrent.json; its own assertions print per-row yes/NO)
  dune exec bench/main.exe -- concurrent
  # interactive-transaction bench (writes BENCH_txn.json: commit
  # throughput and first-updater-wins abort rate at 1/4/8 sessions)
  dune exec bench/main.exe -- txn

  # profile smoke: audit a small run with JSONL export, then analyze it
  dune exec bin/ldv.exe -- --obs "jsonl:$tmpdir/run.jsonl" \
    audit --sf 0.002 --inserts 20 --selects 3 --updates 5 \
    -o "$tmpdir/app.ldv" > /dev/null
  dune exec bin/ldv.exe -- profile "$tmpdir/run.jsonl" --critical-path \
    > /dev/null
  # the regression gate must pass when a run is compared with itself
  dune exec bin/ldv.exe -- obs diff "$tmpdir/run.jsonl" "$tmpdir/run.jsonl" \
    --budget 10 > /dev/null

  # contention bench (writes BENCH_contention.json: latch-wait share and
  # group-commit stalls at 1/4/8 sessions)
  dune exec bench/main.exe -- contention
  # overhead bench (writes BENCH_overhead.json: per-phase per-statement
  # audit overhead at 1/4/8 sessions, obs-self broken out)
  dune exec bench/main.exe -- overhead
  # replication bench (writes BENCH_replication.json: read throughput at
  # 1/2/4 replicas and catch-up time after a seeded crash)
  dune exec bench/main.exe -- replication
  # storage bench (writes BENCH_storage.json: point/range index lookups
  # vs full scans at 10k/100k/1M tuples; exits 1 unless the indexed
  # paths beat the scan by 10x at 100k)
  dune exec bench/main.exe -- storage
  # wait-state tracing smoke: stream a 4-session audit, then render the
  # timeline, the contention report, and the per-session stats from it
  dune exec bin/ldv.exe -- --obs "jsonl:$tmpdir/cc.jsonl" \
    audit --sessions 4 -o "$tmpdir/cc.ldv" > /dev/null
  dune exec bin/ldv.exe -- timeline "$tmpdir/cc.jsonl" > /dev/null
  dune exec bin/ldv.exe -- contention "$tmpdir/cc.jsonl" > /dev/null
  dune exec bin/ldv.exe -- stats "$tmpdir/cc.jsonl" --by-session > /dev/null
fi
