(** The PTU baseline (§IX-A, Table III): application virtualization with
    OS-level provenance — the whole experiment, DB server included, runs
    under tracing and every touched file lands in the package. *)

(** Audit the PTU way: traced server, plain (uninstrumented) client
    library. *)
val run :
  Minios.Kernel.t ->
  Dbclient.Server.t ->
  app_name:string ->
  app_binary:string ->
  ?app_libs:string list ->
  Minios.Program.program ->
  Audit.t

(** All touched files, full DB data files included, OS provenance graph
    attached. *)
val build : Audit.t -> Package.t
