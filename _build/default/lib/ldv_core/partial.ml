(** Partial re-execution support (§II items (ii)/(iii), §VIII).

    Given a combined execution trace and a target output, [requirements]
    computes the backward slice: the processes, statements, files, and
    tuple versions that contributed to the target. [slim] then strips a
    server-included package down to exactly that slice — the package Bob
    needs when he only cares about one of Alice's outputs.

    The slice is conservative (trace reachability): everything the target
    could possibly depend on stays in. Replaying a slimmed package
    requires a program that performs only the sliced part of the work
    (the original closure cannot be cut mechanically in this simulation,
    just as a stripped-down binary cannot be synthesized from a full one
    in the paper's). *)

open Minidb

type requirement = {
  req_files : string list;  (** file paths in the backward slice *)
  req_tuples : Tid.Set.t;  (** stored tuple versions in the slice *)
  req_statements : int list;  (** qids of contributing statements *)
  req_processes : int list;  (** pids of contributing processes *)
}

let parse_prefixed ~prefix id =
  let n = String.length prefix in
  if String.length id > n && String.sub id 0 n = prefix then
    Some (String.sub id n (String.length id - n))
  else None

(** Backward slice from [target] (a trace node id, e.g.
    ["file:/app/out/results.csv"]), using the temporally-restricted
    inference of Definition 11: an input read *after* the target was
    produced is correctly excluded even when the same process read it. *)
let requirements (trace : Prov.Trace.t) ~(target : string) : requirement =
  let slice = Prov.Dependency.dependencies_of trace target in
  let in_slice = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_slice id ()) (target :: slice);
  (* contributing activities: producers of any slice entity, the processes
     running contributing statements, and their executed-chain ancestors *)
  let activities = Hashtbl.create 32 in
  let rec add_with_runners id =
    if not (Hashtbl.mem activities id) then begin
      Hashtbl.replace activities id ();
      List.iter
        (fun (e : Prov.Trace.edge) ->
          match e.Prov.Trace.elabel with
          | "run" | "executed" -> add_with_runners e.Prov.Trace.src
          | _ -> ())
        (Prov.Trace.in_edges trace id)
    end
  in
  Hashtbl.iter
    (fun entity () ->
      List.iter
        (fun (e : Prov.Trace.edge) ->
          let src = Prov.Trace.node_exn trace e.Prov.Trace.src in
          if src.Prov.Trace.kind = Prov.Model.Activity then
            add_with_runners src.Prov.Trace.id)
        (Prov.Trace.in_edges trace entity))
    in_slice;
  let files = ref [] and tuples = ref Tid.Set.empty in
  Hashtbl.iter
    (fun id () ->
      match parse_prefixed ~prefix:"file:" id with
      | Some path -> files := path :: !files
      | None -> (
        match Prov.Lineage_model.tid_of_node_id id with
        | Some tid ->
          if not (Dbclient.Interceptor.is_result_tid tid) then
            tuples := Tid.Set.add tid !tuples
        | None -> ()))
    in_slice;
  let statements = ref [] and processes = ref [] in
  Hashtbl.iter
    (fun id () ->
      match parse_prefixed ~prefix:"stmt:" id with
      | Some qid -> statements := int_of_string qid :: !statements
      | None -> (
        match parse_prefixed ~prefix:"proc:" id with
        | Some pid -> processes := int_of_string pid :: !processes
        | None -> ()))
    activities;
  { req_files = List.sort String.compare !files;
    req_tuples = !tuples;
    req_statements = List.sort compare !statements;
    req_processes = List.sort compare !processes }

(** Requirements computed against the package's own embedded trace. *)
let requirements_of_package (pkg : Package.t) ~target : requirement =
  requirements (Package.trace pkg) ~target

(** Strip a server-included package to the slice needed for the targets:
    file entries outside every target's backward slice are dropped, and
    the tuple subset is cut down to the union of required versions. The
    embedded trace is kept (it documents what was cut against what
    remains). *)
let slim (pkg : Package.t) (reqs : requirement list) : Package.t =
  if pkg.Package.kind <> Package.Server_included then
    invalid_arg "Partial.slim: only server-included packages can be slimmed";
  let keep_file path =
    List.exists (fun r -> List.mem path r.req_files) reqs
  in
  let keep_tuple tid =
    List.exists (fun r -> Tid.Set.mem tid r.req_tuples) reqs
  in
  let entries =
    List.filter (fun (e : Package.entry) -> keep_file e.Package.e_path)
      pkg.Package.entries
  in
  let db_subset =
    List.filter_map
      (fun (table, csv) ->
        let rows =
          List.filter
            (fun (rid, version, _) ->
              keep_tuple (Tid.make ~table ~rid ~version))
            (Csv.decode_versions csv)
        in
        if rows = [] then None
        else
          (* re-encode with the original header line *)
          match String.index_opt csv '\n' with
          | None -> None
          | Some i ->
            let header = String.sub csv 0 (i + 1) in
            let body =
              String.concat ""
                (List.map
                   (fun (rid, version, values) ->
                     Csv.encode_line
                       (string_of_int rid :: string_of_int version
                       :: (Array.to_list values |> List.map Csv.encode_value))
                     ^ "\n")
                   rows)
            in
            Some (table, header ^ body))
      pkg.Package.db_subset
  in
  { pkg with
    Package.entries;
    db_subset;
    metadata = pkg.Package.metadata @ [ ("slimmed", "true") ] }

let pp_requirement ppf (r : requirement) =
  Format.fprintf ppf "files=%d tuples=%d statements=%d processes=%d"
    (List.length r.req_files)
    (Tid.Set.cardinal r.req_tuples)
    (List.length r.req_statements)
    (List.length r.req_processes)
