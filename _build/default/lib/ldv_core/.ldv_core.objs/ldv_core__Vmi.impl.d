lib/ldv_core/vmi.ml: Dbclient List Minios
