lib/ldv_core/ptu.mli: Audit Dbclient Minios Package
