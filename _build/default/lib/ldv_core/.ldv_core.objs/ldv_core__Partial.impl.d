lib/ldv_core/partial.ml: Array Csv Dbclient Format Hashtbl List Minidb Package Prov String Tid
