lib/ldv_core/audit.mli: Dbclient Minidb Minios Prov
