lib/ldv_core/audit.ml: Array Buffer Dbclient Digest Fun List Minidb Minios Option Prov Value
