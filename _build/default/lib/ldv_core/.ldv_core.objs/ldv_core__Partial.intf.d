lib/ldv_core/partial.mli: Format Minidb Package Prov Tid
