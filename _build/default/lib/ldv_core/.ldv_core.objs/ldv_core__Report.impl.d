lib/ldv_core/report.ml: Array List Printf String
