lib/ldv_core/replay.mli: Audit Dbclient Minios Package
