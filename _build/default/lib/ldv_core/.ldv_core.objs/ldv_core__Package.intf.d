lib/ldv_core/package.mli: Audit Dbclient Minios Prov
