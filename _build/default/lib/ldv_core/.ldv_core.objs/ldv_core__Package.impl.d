lib/ldv_core/package.ml: Audit Buffer Dbclient Fun List Minios Printf Prov Slice String
