lib/ldv_core/replay.ml: Audit Catalog Csv Database Dbclient Format Fun List Minidb Minios Package String Table
