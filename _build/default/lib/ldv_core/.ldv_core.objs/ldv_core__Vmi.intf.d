lib/ldv_core/vmi.mli: Dbclient Minios
