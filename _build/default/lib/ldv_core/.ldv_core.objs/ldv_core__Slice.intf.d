lib/ldv_core/slice.mli: Audit Database Dbclient Minidb Prov Tid
