lib/ldv_core/slice.ml: Array Audit Catalog Csv Database Dbclient Hashtbl List Minidb Perm Printf Prov Schema String Table Tid Value
