lib/ldv_core/ptu.ml: Audit Dbclient Minios Package Prov
