(** Partial re-execution support (§II items (ii)/(iii), §VIII):
    temporally-pruned backward slicing from a chosen output, and package
    slimming down to the slice. *)

open Minidb

type requirement = {
  req_files : string list;  (** file paths in the backward slice *)
  req_tuples : Tid.Set.t;  (** stored tuple versions in the slice *)
  req_statements : int list;  (** qids of contributing statements *)
  req_processes : int list;  (** pids of contributing processes *)
}

(** Backward slice from [target] (a trace node id, e.g.
    ["file:/app/out/results.csv"]), using the temporally-restricted
    inference of Definition 11: an input read after the target was
    produced is excluded even when the same process read it. Compute this
    against the full audit trace ([Audit.t.trace]); the compact packaged
    trace does not carry query lineage. *)
val requirements : Prov.Trace.t -> target:string -> requirement

(** Requirements against the package's own embedded (compact) trace —
    OS-level slicing only. *)
val requirements_of_package : Package.t -> target:string -> requirement

(** Strip a server-included package to the union of the given slices:
    file entries and tuple versions outside every slice are dropped.
    Replaying a slimmed package requires a program performing only the
    sliced part of the work.
    @raise Invalid_argument on non-server-included packages. *)
val slim : Package.t -> requirement list -> Package.t

val pp_requirement : Format.formatter -> requirement -> unit
