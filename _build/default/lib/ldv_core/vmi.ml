(** The virtual-machine-image baseline (§IX-F).

    The paper provisions a bare-bone Debian Wheezy VMI, installs the DB
    server with apt-get, and copies the full DB plus the experiment's
    sources into it. We model the VMI as a cost structure rather than an
    executable artifact: its size is the base image plus everything the
    experiment needs (server binaries, full DB data, application files),
    and its replay cost is the measured native execution time inflated by
    a virtualization factor plus a boot/initialization charge. Both
    constants are calibrated to the paper's qualitative claims: the VMI
    dwarfs every LDV package, and VM re-execution is slightly slower than
    non-audited native execution while having by far the largest
    initialization cost. *)

(** A bare-bone Debian Wheezy amd64 installation (the paper's base). *)
let base_image_bytes = 1_600_000_000

(** VM boot + service start before the experiment can run, in seconds. *)
let boot_seconds = 35.0

(** Multiplicative slowdown of query execution inside the VM relative to
    native execution (Figure 8b: "slightly slower"). *)
let query_overhead_factor = 1.15

type t = {
  image_bytes : int;
  components : (string * int) list;  (** labelled size breakdown *)
}

(** Size the VMI that would ship a given experiment: base OS + everything
    in the kernel's file system (server install, DB data files, application
    files). *)
let of_kernel (kernel : Minios.Kernel.t) ~(server : Dbclient.Server.t) : t =
  let vfs = Minios.Kernel.vfs kernel in
  Dbclient.Server.sync_data_dir kernel server;
  let db_bytes =
    List.fold_left
      (fun acc p -> acc + Minios.Vfs.size vfs p)
      0
      (Minios.Vfs.paths_under vfs (Dbclient.Server.data_dir server))
  in
  let server_bytes =
    List.fold_left
      (fun acc p -> acc + Minios.Vfs.size vfs p)
      0
      (Dbclient.Server.binary_path server :: Dbclient.Server.lib_paths server)
  in
  let app_bytes =
    Minios.Vfs.total_bytes vfs - db_bytes - server_bytes
  in
  { image_bytes = base_image_bytes + db_bytes + server_bytes + app_bytes;
    components =
      [ ("base OS image", base_image_bytes);
        ("DB server install", server_bytes);
        ("DB data files", db_bytes);
        ("application files", app_bytes) ] }

(** Replay time inside the VM for a step measured natively at
    [native_seconds]. *)
let replay_seconds ~native_seconds = native_seconds *. query_overhead_factor

(** One-time VM initialization charge (boot + service start). *)
let init_seconds = boot_seconds
