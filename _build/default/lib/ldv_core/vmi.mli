(** The virtual-machine-image baseline (§IX-F), as a cost model: size is
    base image + everything the experiment needs; replay cost is native
    time inflated by a virtualization factor plus a boot charge. *)

val base_image_bytes : int
val boot_seconds : float
val query_overhead_factor : float

type t = {
  image_bytes : int;
  components : (string * int) list;  (** labelled size breakdown *)
}

(** Size the VMI that would ship a given experiment: base OS + everything
    in the kernel's file system. Syncs the server's data directory
    first so DB bytes are current. *)
val of_kernel : Minios.Kernel.t -> server:Dbclient.Server.t -> t

val replay_seconds : native_seconds:float -> float
val init_seconds : float
