(** The client/server wire protocol.

    Mirrors the slice of the PostgreSQL frontend/backend protocol that
    libpq interposition sees: connection establishment, one statement per
    request, and either a row set, an affected-row count, or an error
    back. *)

open Minidb

type request =
  | Connect of { db_name : string; pid : int }
  | Statement of { sql : string }
  | Disconnect

type response =
  | Connected of { backend_id : int }
  | Result_set of { schema : Schema.t; rows : Value.t array list }
  | Command_ok of { affected : int }
  | Ddl_ok
  | Error_response of string

let response_rows = function
  | Result_set { rows; _ } -> rows
  | Connected _ | Command_ok _ | Ddl_ok | Error_response _ -> []

(** Byte footprint of a response on the wire; drives recorded-result
    sizes for server-excluded packages. *)
let response_bytes = function
  | Connected _ -> 16
  | Ddl_ok -> 8
  | Command_ok _ -> 12
  | Error_response m -> 8 + String.length m
  | Result_set { schema; rows } ->
    let header =
      Array.fold_left
        (fun acc (c : Schema.column) -> acc + String.length c.Schema.name + 4)
        8 schema
    in
    List.fold_left
      (fun acc row ->
        acc + Array.fold_left (fun a v -> a + Value.byte_size v) 4 row)
      header rows

let pp_response ppf = function
  | Connected { backend_id } -> Format.fprintf ppf "Connected(%d)" backend_id
  | Result_set { rows; _ } ->
    Format.fprintf ppf "Result_set(%d rows)" (List.length rows)
  | Command_ok { affected } -> Format.fprintf ppf "Command_ok(%d)" affected
  | Ddl_ok -> Format.fprintf ppf "Ddl_ok"
  | Error_response m -> Format.fprintf ppf "Error(%s)" m
