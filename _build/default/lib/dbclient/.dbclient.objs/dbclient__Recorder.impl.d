lib/dbclient/recorder.ml: Array Buffer Csv List Minidb Printf Schema String Value
