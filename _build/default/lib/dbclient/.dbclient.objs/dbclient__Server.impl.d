lib/dbclient/server.ml: Array Catalog Database Errors Executor List Marshal Minidb Minios Printf Protocol Schema Table Tid Value
