lib/dbclient/interceptor.ml: Array Buffer Csv Database Hashtbl List Minidb Minios Option Perm Pretty Printf Protocol Recorder Schema Server Sql_ast Sql_parser String Tid Value
