lib/dbclient/protocol.ml: Array Format List Minidb Schema String Value
