lib/dbclient/recorder.mli: Minidb Schema Value
