lib/dbclient/client.ml: Errors Interceptor Minidb Minios Protocol Schema Value
