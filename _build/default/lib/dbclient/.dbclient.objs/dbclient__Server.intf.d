lib/dbclient/server.mli: Database Minidb Minios Protocol Table
