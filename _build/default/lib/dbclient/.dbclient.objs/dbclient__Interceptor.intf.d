lib/dbclient/interceptor.mli: Minidb Minios Perm Protocol Recorder Schema Server Sql_ast Tid Value
