lib/dbclient/client.mli: Minidb Minios Protocol Schema Value
