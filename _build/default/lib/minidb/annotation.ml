(** Provenance annotations: the N[X] semiring of provenance polynomials.

    Following the semiring annotation framework (Green et al.; the paper's
    §VI-A), every base tuple carries the indeterminate [Var tid] and the
    executor propagates annotations through operators: joins multiply,
    union/duplicate-elimination/aggregation-grouping add. The polynomial is
    kept in a normal form (a sorted sum of monomials with collected
    coefficients), which makes equality of annotations decidable and lets us
    test the semiring laws directly.

    Lineage — the set of base tuples a result depends on (Definition 7) — and
    why-provenance are obtained as homomorphic images of the polynomial. *)

(** A monomial is a coefficient and a sorted multiset of variables with
    positive exponents. *)
type mono = { coeff : int; vars : (Tid.t * int) list }

(** A polynomial in normal form: monomials sorted by their variable part,
    no duplicate variable parts, no zero coefficients. *)
type t = mono list

let zero : t = []
let one : t = [ { coeff = 1; vars = [] } ]
let var tid : t = [ { coeff = 1; vars = [ (tid, 1) ] } ]
let of_int n : t = if n = 0 then [] else [ { coeff = n; vars = [] } ]

let compare_vars = List.compare (fun (a, i) (b, j) ->
    match Tid.compare a b with 0 -> Int.compare i j | c -> c)

(* Merge-add two normalized polynomials. *)
let add (p : t) (q : t) : t =
  let rec go p q =
    match (p, q) with
    | [], r | r, [] -> r
    | m :: p', n :: q' -> (
      match compare_vars m.vars n.vars with
      | 0 ->
        let c = m.coeff + n.coeff in
        if c = 0 then go p' q' else { m with coeff = c } :: go p' q'
      | c when c < 0 -> m :: go p' q
      | _ -> n :: go p q')
  in
  go p q

(** Sum a list of polynomials in O(N log N) (folding [add] pairwise is
    quadratic in the number of monomials — aggregation over large groups
    needs this). *)
let sum (ps : t list) : t =
  let monos = List.concat ps in
  let sorted =
    List.sort (fun (m : mono) (n : mono) -> compare_vars m.vars n.vars) monos
  in
  let flush acc = function
    | Some m when m.coeff <> 0 -> m :: acc
    | _ -> acc
  in
  let acc, pending =
    List.fold_left
      (fun (acc, pending) (n : mono) ->
        match pending with
        | Some m when compare_vars m.vars n.vars = 0 ->
          (acc, Some { m with coeff = m.coeff + n.coeff })
        | _ -> (flush acc pending, Some n))
      ([], None) sorted
  in
  List.rev (flush acc pending)

(* Multiply two monomials: multiply coefficients, merge variable multisets
   adding exponents. *)
let mul_mono m n =
  let rec merge a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (x, i) :: a', (y, j) :: b' -> (
      match Tid.compare x y with
      | 0 -> (x, i + j) :: merge a' b'
      | c when c < 0 -> (x, i) :: merge a' b
      | _ -> (y, j) :: merge a b')
  in
  { coeff = m.coeff * n.coeff; vars = merge m.vars n.vars }

let mul (p : t) (q : t) : t =
  List.fold_left
    (fun acc m -> List.fold_left (fun acc n -> add acc [ mul_mono m n ]) acc q)
    zero p

let equal (p : t) (q : t) =
  List.length p = List.length q
  && List.for_all2
       (fun m n -> m.coeff = n.coeff && compare_vars m.vars n.vars = 0)
       p q

let is_zero p = p = []

(** All variables occurring in the polynomial: the Lineage of the annotated
    tuple (Definition 7's [Lin]). *)
let lineage (p : t) : Tid.Set.t =
  List.fold_left
    (fun acc m ->
      List.fold_left (fun acc (v, _) -> Tid.Set.add v acc) acc m.vars)
    Tid.Set.empty p

(** Why-provenance: the witness sets, one per distinct monomial. *)
let why (p : t) : Tid.Set.t list =
  List.map (fun m -> Tid.Set.of_list (List.map fst m.vars)) p
  |> List.sort_uniq Tid.Set.compare

(** Number of derivations when every base tuple has multiplicity 1: evaluate
    the polynomial under the all-ones assignment. *)
let derivation_count (p : t) : int =
  List.fold_left (fun acc m -> acc + m.coeff) 0 p

let pp ppf (p : t) =
  let pp_mono ppf m =
    if m.vars = [] then Format.pp_print_int ppf m.coeff
    else begin
      if m.coeff <> 1 then Format.fprintf ppf "%d*" m.coeff;
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
        (fun ppf (v, e) ->
          if e = 1 then Tid.pp ppf v else Format.fprintf ppf "%a^%d" Tid.pp v e)
        ppf m.vars
    end
  in
  match p with
  | [] -> Format.pp_print_string ppf "0"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
      pp_mono ppf p

let to_string p = Format.asprintf "%a" pp p

(** A commutative semiring, for evaluating polynomials under alternative
    provenance semantics. *)
module type SEMIRING = sig
  type elt

  val zero : elt
  val one : elt
  val add : elt -> elt -> elt
  val mul : elt -> elt -> elt
  val equal : elt -> elt -> bool
end

(** Evaluate polynomial [p] under assignment [f] in semiring [S]
    (the unique semiring homomorphism extending [f]). *)
let eval (type a) (module S : SEMIRING with type elt = a) (f : Tid.t -> a)
    (p : t) : a =
  let pow base e =
    let rec go acc e = if e = 0 then acc else go (S.mul acc base) (e - 1) in
    go S.one e
  in
  let nat n =
    (* semirings have no additive inverses: evaluation is only defined for
       N[X] polynomials *)
    if n < 0 then
      invalid_arg "Annotation.eval: negative coefficient outside N[X]";
    let rec go acc n = if n = 0 then acc else go (S.add acc S.one) (n - 1) in
    go S.zero n
  in
  List.fold_left
    (fun acc m ->
      let mv =
        List.fold_left (fun acc (v, e) -> S.mul acc (pow (f v) e)) S.one m.vars
      in
      S.add acc (S.mul (nat m.coeff) mv))
    S.zero p

(** The boolean semiring: evaluates to set-semantics membership. *)
module Bool_semiring = struct
  type elt = bool

  let zero = false
  let one = true
  let add = ( || )
  let mul = ( && )
  let equal = Bool.equal
end

(** The counting semiring (natural numbers): bag-semantics multiplicity. *)
module Nat_semiring = struct
  type elt = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let equal = Int.equal
end

(** The tropical semiring (min, +) over int-with-infinity: cost of the
    cheapest derivation. *)
module Tropical_semiring = struct
  type elt = int option  (** [None] is +infinity *)

  let zero = None
  let one = Some 0

  let add a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)

  let mul a b =
    match (a, b) with
    | None, _ | _, None -> None
    | Some a, Some b -> Some (a + b)

  let equal = Option.equal Int.equal
end

(** The Lineage semiring over a fixed variable universe: sets of variables
    where both [add] and [mul] are union (with the usual 0/1 adjustments
    absorbed by representing 0 as a distinguished bottom). *)
module Lineage_semiring = struct
  type elt = Bottom | Set of Tid.Set.t

  let zero = Bottom
  let one = Set Tid.Set.empty

  let add a b =
    match (a, b) with
    | Bottom, x | x, Bottom -> x
    | Set a, Set b -> Set (Tid.Set.union a b)

  let mul a b =
    match (a, b) with
    | Bottom, _ | _, Bottom -> Bottom
    | Set a, Set b -> Set (Tid.Set.union a b)

  let equal a b =
    match (a, b) with
    | Bottom, Bottom -> true
    | Set a, Set b -> Tid.Set.equal a b
    | Bottom, Set _ | Set _, Bottom -> false
end

(** Approximate in-memory footprint, for provenance-size accounting. *)
let byte_size (p : t) =
  List.fold_left
    (fun acc m ->
      acc + 8
      + List.fold_left
          (fun acc (v, _) -> acc + String.length v.Tid.table + 16)
          0 m.vars)
    0 p
