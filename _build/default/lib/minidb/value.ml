(** SQL values and scalar types.

    MiniDB supports the four scalar types needed by the TPC-H workload of the
    paper (integers, floats, strings, booleans) plus SQL [NULL]. Comparison
    and arithmetic follow SQL semantics: any operation involving [NULL]
    yields [NULL]; comparisons across numeric types coerce integers to
    floats. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

let type_name = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Tstr -> "TEXT"
  | Tbool -> "BOOL"

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr
  | Bool _ -> Some Tbool

let is_null = function Null -> true | _ -> false

(** [conforms v ty] holds when [v] may be stored in a column of type [ty].
    [Null] conforms to every type and integers conform to float columns. *)
let conforms v ty =
  match (v, ty) with
  | Null, _ -> true
  | Int _, Tint | Int _, Tfloat -> true
  | Float _, Tfloat -> true
  | Str _, Tstr -> true
  | Bool _, Tbool -> true
  | (Int _ | Float _ | Str _ | Bool _), _ -> false

(** Coerce a value for storage into a column of type [ty]. Integers widen to
    floats; everything else must already conform. *)
let coerce v ty =
  match (v, ty) with
  | Int i, Tfloat -> Float (float_of_int i)
  | v, _ ->
    if conforms v ty then v
    else
      Errors.type_error "value %s does not conform to type %s"
        (match v with
        | Null -> "NULL"
        | Int i -> string_of_int i
        | Float f -> string_of_float f
        | Str s -> Printf.sprintf "%S" s
        | Bool b -> string_of_bool b)
        (type_name ty)

(** SQL comparison: [None] when either side is [NULL] or the types are
    incomparable, [Some c] otherwise with [c] as for [compare]. *)
let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (compare x y)
  | Int x, Float y -> Some (compare (float_of_int x) y)
  | Float x, Int y -> Some (compare x (float_of_int y))
  | Str x, Str y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | (Int _ | Float _ | Str _ | Bool _), _ ->
    Errors.type_error "cannot compare values of different types"

let equal_sql a b =
  match compare_sql a b with None -> None | Some c -> Some (c = 0)

(** Structural equality used for result comparison (treats [NULL] = [NULL]
    as true, unlike SQL equality). *)
let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> false

(** Total order for sorting; NULLs sort first (PostgreSQL's NULLS FIRST for
    ascending order is not the default, but a total order is all we need). *)
let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | a, b -> (
    match compare_sql a b with
    | Some c -> c
    | None -> assert false)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ -> None

let numeric_binop name fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (to_float a, to_float b) with
    | Some x, Some y -> Float (ff x y)
    | _ -> assert false)
  | _ -> Errors.type_error "operator %s expects numeric arguments" name

let add = numeric_binop "+" ( + ) ( +. )
let sub = numeric_binop "-" ( - ) ( -. )
let mul = numeric_binop "*" ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> Errors.type_error "division by zero"
  | _, Float 0.0 -> Errors.type_error "division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (to_float a, to_float b) with
    | Some x, Some y -> Float (x /. y)
    | _ -> assert false)
  | _ -> Errors.type_error "operator / expects numeric arguments"

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | Str _ | Bool _ -> Errors.type_error "unary - expects a numeric argument"

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Str x, Str y -> Str (x ^ y)
  | _ -> Errors.type_error "operator || expects string arguments"

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Bool b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")

let to_string v = Format.asprintf "%a" pp v

(** Raw rendering without SQL quoting, used by the CSV codec and result
    hashing. *)
let to_raw_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | Str s -> s
  | Bool b -> if b then "true" else "false"

(** Approximate storage footprint in bytes, used for package-size
    accounting. *)
let byte_size = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | Str s -> String.length s + 1

let hash_fold acc v =
  let h = Hashtbl.hash in
  (acc * 31)
  + (match v with
    | Null -> 0
    | Int i -> h i
    | Float f -> h f
    | Str s -> h s
    | Bool b -> h b)
