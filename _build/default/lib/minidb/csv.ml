(** CSV encoding of tuple-version subsets.

    Server-included LDV packages carry the relevant DB subset as one CSV
    file per table (paper §VII-D). Each line carries the row identity and
    version so that restoring the subset reproduces the exact tuple-version
    identifiers recorded in the execution trace. *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(* Render a value with a type tag so that NULL and empty string are
   distinguishable on the way back. *)
let encode_value = function
  | Value.Null -> ""
  | Value.Int i -> "i" ^ string_of_int i
  (* hex float notation is lossless through float_of_string *)
  | Value.Float f -> "f" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s" ^ s
  | Value.Bool b -> if b then "bt" else "bf"

let decode_value s =
  if String.length s = 0 then Value.Null
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> Value.Int (int_of_string body)
    | 'f' -> Value.Float (float_of_string body)
    | 's' -> Value.Str body
    | 'b' -> Value.Bool (body = "t")
    | _ -> Errors.type_error "malformed CSV value tag in %S" s

let encode_line fields =
  String.concat "," (List.map (fun f -> quote_field f) fields)

(* Split one CSV line into fields, handling quoted fields. *)
let split_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  while !i < n do
    if line.[!i] = '"' then begin
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then Errors.type_error "unterminated quoted CSV field"
        else if line.[!i] = '"' then
          if !i + 1 < n && line.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf line.[!i];
          incr i
        end
      done
    end
    else if line.[!i] = ',' then begin
      flush ();
      incr i
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !fields

(** Serialize a list of tuple versions of one table. The header records the
    column names; each data line is [rid,version,field...]. *)
let encode_versions (schema : Schema.t) (versions : (int * int * Value.t array) list) : string
    =
  let buf = Buffer.create 1024 in
  let header =
    "rid" :: "version"
    :: (Array.to_list schema |> List.map (fun (c : Schema.column) -> c.name))
  in
  Buffer.add_string buf (encode_line header);
  Buffer.add_char buf '\n';
  List.iter
    (fun (rid, version, values) ->
      let fields =
        string_of_int rid :: string_of_int version
        :: (Array.to_list values |> List.map encode_value)
      in
      Buffer.add_string buf (encode_line fields);
      Buffer.add_char buf '\n')
    versions;
  Buffer.contents buf

(** Parse back what [encode_versions] produced. *)
let decode_versions (data : string) : (int * int * Value.t array) list =
  match String.split_on_char '\n' data with
  | [] -> []
  | _header :: lines ->
    List.filter_map
      (fun line ->
        if String.length line = 0 then None
        else
          match split_line line with
          | rid :: version :: fields ->
            Some
              ( int_of_string rid,
                int_of_string version,
                Array.of_list (List.map decode_value fields) )
          | _ -> Errors.type_error "malformed CSV line %S" line)
      lines
