(** Table schemas and column resolution.

    A schema is an ordered array of columns. Columns carry an optional
    qualifier (the table name or alias they came from) so that SELECT
    statements over joins can resolve qualified references such as
    [o.o_orderkey]. *)

type column = {
  qualifier : string option;  (** table name or alias, lowercase *)
  name : string;  (** column name, lowercase *)
  ty : Value.ty;
}

type t = column array

let column ?qualifier name ty =
  { qualifier = Option.map String.lowercase_ascii qualifier;
    name = String.lowercase_ascii name;
    ty }

let of_list cols : t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = (c.qualifier, c.name) in
      if Hashtbl.mem seen key then Errors.fail (Errors.Duplicate_column c.name);
      Hashtbl.add seen key ())
    cols;
  Array.of_list cols

let arity (s : t) = Array.length s

(** Re-qualify every column of [s] with alias [q]; used when a table is
    brought into scope under an alias in a FROM clause. *)
let with_qualifier q (s : t) : t =
  let q = String.lowercase_ascii q in
  Array.map (fun c -> { c with qualifier = Some q }) s

(** Concatenate schemas for a join result. *)
let append (a : t) (b : t) : t = Array.append a b

(** Resolve a possibly-qualified column reference to its index.

    Raises [Unknown_column] when no column matches and [Ambiguous_column]
    when an unqualified name matches columns from several tables. *)
let resolve (s : t) ?qualifier name =
  let name = String.lowercase_ascii name in
  let qualifier = Option.map String.lowercase_ascii qualifier in
  let matches = ref [] in
  Array.iteri
    (fun i c ->
      let q_ok =
        match qualifier with
        | None -> true
        | Some q -> c.qualifier = Some q
      in
      if q_ok && String.equal c.name name then matches := i :: !matches)
    s;
  match !matches with
  | [ i ] -> i
  | [] ->
    let full =
      match qualifier with Some q -> q ^ "." ^ name | None -> name
    in
    Errors.fail (Errors.Unknown_column full)
  | _ -> Errors.fail (Errors.Ambiguous_column name)

let find_opt (s : t) ?qualifier name =
  match resolve s ?qualifier name with
  | i -> Some i
  | exception Errors.Db_error (Errors.Unknown_column _) -> None

let pp_column ppf c =
  (match c.qualifier with
  | Some q -> Format.fprintf ppf "%s." q
  | None -> ());
  Format.fprintf ppf "%s %s" c.name (Value.type_name c.ty)

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_column)
    (Array.to_list s)

(** Validate that a row conforms to the schema, coercing where allowed. *)
let coerce_row (s : t) (row : Value.t array) =
  if Array.length row <> Array.length s then
    Errors.fail
      (Errors.Arity_error
         (Printf.sprintf "expected %d values, got %d" (Array.length s)
            (Array.length row)));
  Array.mapi (fun i v -> Value.coerce v s.(i).ty) row
