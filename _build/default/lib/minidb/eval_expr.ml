(** Binding and evaluation of scalar expressions.

    Binding resolves column references against a schema into positional
    accessors; evaluation implements SQL three-valued logic (comparisons and
    boolean connectives involving NULL yield NULL; WHERE keeps only rows
    whose predicate evaluates to TRUE). *)

open Sql_ast

type bound =
  | Bconst of Value.t
  | Bcol of int
  | Bcmp of cmp * bound * bound
  | Band of bound * bound
  | Bor of bound * bound
  | Bnot of bound
  | Bis_null of bound
  | Bis_not_null of bound
  | Bbetween of bound * bound * bound
  | Blike of bound * string
  | Bnot_like of bound * string
  | Bin_list of bound * bound list
  | Barith of arith * bound * bound
  | Bneg of bound
  | Bconcat of bound * bound
  | Bcase of (bound * bound) list * bound option
  | Bfunc of scalar_fn * bound list

and scalar_fn =
  | F_lower
  | F_upper
  | F_length
  | F_abs
  | F_substr
  | F_coalesce
  | F_round
  | F_trim
  | F_replace

let scalar_fn_of_name = function
  | "lower" -> Some F_lower
  | "upper" -> Some F_upper
  | "length" -> Some F_length
  | "abs" -> Some F_abs
  | "substr" | "substring" -> Some F_substr
  | "coalesce" -> Some F_coalesce
  | "round" -> Some F_round
  | "trim" -> Some F_trim
  | "replace" -> Some F_replace
  | _ -> None

(** [bind schema e] resolves all column references in [e].

    Raises [Db_error Unknown_column]/[Ambiguous_column] on resolution
    failure and [Db_error Unsupported] if [e] still contains aggregate
    calls (the planner must rewrite those away first). *)
let rec bind (schema : Schema.t) (e : expr) : bound =
  match e with
  | Const v -> Bconst v
  | Col (q, n) -> Bcol (Schema.resolve schema ?qualifier:q n)
  | Cmp (op, a, b) -> Bcmp (op, bind schema a, bind schema b)
  | And (a, b) -> Band (bind schema a, bind schema b)
  | Or (a, b) -> Bor (bind schema a, bind schema b)
  | Not a -> Bnot (bind schema a)
  | Is_null a -> Bis_null (bind schema a)
  | Is_not_null a -> Bis_not_null (bind schema a)
  | Between (a, lo, hi) -> Bbetween (bind schema a, bind schema lo, bind schema hi)
  | Like (a, p) -> Blike (bind schema a, p)
  | Not_like (a, p) -> Bnot_like (bind schema a, p)
  | In_list (a, es) -> Bin_list (bind schema a, List.map (bind schema) es)
  | Arith (op, a, b) -> Barith (op, bind schema a, bind schema b)
  | Neg a -> Bneg (bind schema a)
  | Concat (a, b) -> Bconcat (bind schema a, bind schema b)
  | Case (branches, default) ->
    Bcase
      ( List.map (fun (c, v) -> (bind schema c, bind schema v)) branches,
        Option.map (bind schema) default )
  | Func (name, args) -> (
    match scalar_fn_of_name name with
    | Some fn -> Bfunc (fn, List.map (bind schema) args)
    | None -> Errors.unsupported "unknown function %s" name)
  | Agg _ ->
    Errors.unsupported "aggregate call outside of an aggregation context"
  | Exists _ | In_select _ | Scalar_subquery _ ->
    Errors.unsupported
      "subquery not resolved before binding (subqueries must be uncorrelated)"

(** SQL LIKE pattern matching: [%] matches any sequence, [_] any single
    character. *)
let like_match ~pattern (s : string) =
  let np = String.length pattern and ns = String.length s in
  (* memoized on (pi, si) via an explicit matrix *)
  let memo = Array.make_matrix (np + 1) (ns + 1) None in
  let rec go pi si =
    match memo.(pi).(si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      memo.(pi).(si) <- Some r;
      r
  in
  go 0 0

(* Three-valued logic connectives over Value.t (Bool or Null). *)
let tv_and a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let tv_or a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let tv_not = function
  | Value.Bool b -> Value.Bool (not b)
  | _ -> Value.Null

let as_bool name = function
  | Value.Bool _ | Value.Null as v -> v
  | _ -> Errors.type_error "%s expects a boolean operand" name

let cmp_result op c =
  Value.Bool
    (match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0)

(** Evaluate a bound expression against a row. *)
let rec eval (row : Value.t array) (e : bound) : Value.t =
  match e with
  | Bconst v -> v
  | Bcol i -> row.(i)
  | Bcmp (op, a, b) -> (
    match Value.compare_sql (eval row a) (eval row b) with
    | None -> Value.Null
    | Some c -> cmp_result op c)
  | Band (a, b) -> tv_and (as_bool "AND" (eval row a)) (as_bool "AND" (eval row b))
  | Bor (a, b) -> tv_or (as_bool "OR" (eval row a)) (as_bool "OR" (eval row b))
  | Bnot a -> tv_not (as_bool "NOT" (eval row a))
  | Bis_null a -> Value.Bool (Value.is_null (eval row a))
  | Bis_not_null a -> Value.Bool (not (Value.is_null (eval row a)))
  | Bbetween (a, lo, hi) ->
    let v = eval row a in
    let c1 =
      match Value.compare_sql (eval row lo) v with
      | None -> Value.Null
      | Some c -> Value.Bool (c <= 0)
    in
    let c2 =
      match Value.compare_sql v (eval row hi) with
      | None -> Value.Null
      | Some c -> Value.Bool (c <= 0)
    in
    tv_and c1 c2
  | Blike (a, pat) -> (
    match eval row a with
    | Value.Str s -> Value.Bool (like_match ~pattern:pat s)
    | Value.Null -> Value.Null
    | _ -> Errors.type_error "LIKE expects a string operand")
  | Bnot_like (a, pat) -> tv_not (eval row (Blike (a, pat)))
  | Bin_list (a, es) ->
    let v = eval row a in
    if Value.is_null v then Value.Null
    else
      let rec go saw_null = function
        | [] -> if saw_null then Value.Null else Value.Bool false
        | e :: rest -> (
          match Value.equal_sql v (eval row e) with
          | Some true -> Value.Bool true
          | Some false -> go saw_null rest
          | None -> go true rest)
      in
      go false es
  | Barith (op, a, b) ->
    let va = eval row a and vb = eval row b in
    (match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb)
  | Bneg a -> Value.neg (eval row a)
  | Bconcat (a, b) -> Value.concat (eval row a) (eval row b)
  | Bcase (branches, default) ->
    let rec go = function
      | [] -> (
        match default with Some d -> eval row d | None -> Value.Null)
      | (c, v) :: rest -> (
        match eval row c with
        | Value.Bool true -> eval row v
        | Value.Bool false | Value.Null -> go rest
        | _ -> Errors.type_error "CASE condition must be boolean")
    in
    go branches
  | Bfunc (fn, args) -> eval_func row fn args

and eval_func row fn args =
  let arity n =
    if List.length args <> n then
      Errors.type_error "function expects %d arguments, got %d" n
        (List.length args)
  in
  let str_arg e =
    match eval row e with
    | Value.Str s -> Some s
    | Value.Null -> None
    | _ -> Errors.type_error "function expects a string argument"
  in
  let int_arg e =
    match eval row e with
    | Value.Int i -> Some i
    | Value.Null -> None
    | _ -> Errors.type_error "function expects an integer argument"
  in
  match fn with
  | F_lower -> (
    arity 1;
    match str_arg (List.hd args) with
    | Some s -> Value.Str (String.lowercase_ascii s)
    | None -> Value.Null)
  | F_upper -> (
    arity 1;
    match str_arg (List.hd args) with
    | Some s -> Value.Str (String.uppercase_ascii s)
    | None -> Value.Null)
  | F_length -> (
    arity 1;
    match str_arg (List.hd args) with
    | Some s -> Value.Int (String.length s)
    | None -> Value.Null)
  | F_abs -> (
    arity 1;
    match eval row (List.hd args) with
    | Value.Int i -> Value.Int (abs i)
    | Value.Float f -> Value.Float (Float.abs f)
    | Value.Null -> Value.Null
    | _ -> Errors.type_error "abs expects a numeric argument")
  | F_substr -> (
    arity 3;
    match args with
    | [ s; start; len ] -> (
      match (str_arg s, int_arg start, int_arg len) with
      | Some s, Some start, Some len ->
        (* 1-based start as in SQL; clamp to the string bounds *)
        let start0 = max 0 (start - 1) in
        let start0 = min start0 (String.length s) in
        let len = max 0 (min len (String.length s - start0)) in
        Value.Str (String.sub s start0 len)
      | _ -> Value.Null)
    | _ -> assert false)
  | F_coalesce ->
    let rec go = function
      | [] -> Value.Null
      | e :: rest -> (
        match eval row e with Value.Null -> go rest | v -> v)
    in
    go args
  | F_round -> (
    arity 1;
    match eval row (List.hd args) with
    | Value.Float f -> Value.Float (Float.round f)
    | Value.Int i -> Value.Int i
    | Value.Null -> Value.Null
    | _ -> Errors.type_error "round expects a numeric argument")
  | F_trim -> (
    arity 1;
    match str_arg (List.hd args) with
    | Some s -> Value.Str (String.trim s)
    | None -> Value.Null)
  | F_replace -> (
    arity 3;
    match List.map str_arg args with
    | [ Some s; Some find; Some sub ] ->
      if find = "" then Value.Str s
      else begin
        let buf = Buffer.create (String.length s) in
        let fl = String.length find in
        let i = ref 0 in
        while !i <= String.length s - fl do
          if String.sub s !i fl = find then begin
            Buffer.add_string buf sub;
            i := !i + fl
          end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done;
        Buffer.add_string buf (String.sub s !i (String.length s - !i));
        Value.Str (Buffer.contents buf)
      end
    | parts when List.mem None parts -> Value.Null
    | _ -> Errors.type_error "replace expects three string arguments")

(** Predicate evaluation for WHERE/HAVING: true only when the expression
    evaluates to TRUE (NULL is treated as false). *)
let eval_pred row e =
  match eval row e with
  | Value.Bool true -> true
  | Value.Bool false | Value.Null -> false
  | _ -> Errors.type_error "predicate did not evaluate to a boolean"

(** Evaluate an expression that must not reference any columns (e.g. an
    INSERT value). *)
let eval_const (e : expr) : Value.t =
  let bound = bind [||] e in
  eval [||] bound
