(** Tuple version identifiers.

    A stored tuple version is identified by [(table, rid, version)]:
    [rid] is the stable row identity (the paper's [prov_rowid]) and
    [version] is the logical timestamp of the write that produced this
    version (the paper's [prov_v]). These identifiers are the provenance
    variables of the annotation semiring and the DB entity ids of the
    combined execution trace. *)

type t = private { table : string; rid : int; version : int }

(** [make ~table ~rid ~version] normalizes [table] to lowercase. *)
val make : table:string -> rid:int -> version:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Renders as ["table:rid@version"]. *)
val to_string : t -> string

(** Parses the [to_string] rendering; [None] on malformed input. *)
val of_string : string -> t option

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
