lib/minidb/executor.ml: Annotation Array Buffer Digest Eval_expr Hashtbl List Planner Schema Sql_ast Table Tid Value
