lib/minidb/annotation.ml: Bool Format Int List Option String Tid
