lib/minidb/value.ml: Errors Float Format Hashtbl Printf String
