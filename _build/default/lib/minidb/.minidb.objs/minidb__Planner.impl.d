lib/minidb/planner.ml: Annotation Array Catalog Errors Eval_expr List Option Pretty Printf Schema Sql_ast Table Value
