lib/minidb/sql_parser.ml: Errors List Option Printf Sql_ast Sql_lexer Value
