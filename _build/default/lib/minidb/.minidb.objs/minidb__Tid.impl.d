lib/minidb/tid.ml: Format Hashtbl Int Map Set String
