lib/minidb/errors.ml: Format Printexc
