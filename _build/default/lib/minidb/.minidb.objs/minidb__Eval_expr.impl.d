lib/minidb/eval_expr.ml: Array Buffer Errors Float List Option Schema Sql_ast String Value
