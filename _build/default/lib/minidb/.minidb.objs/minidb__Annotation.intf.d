lib/minidb/annotation.mli: Format Tid
