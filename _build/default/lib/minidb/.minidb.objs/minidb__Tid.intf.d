lib/minidb/tid.mli: Format Map Set
