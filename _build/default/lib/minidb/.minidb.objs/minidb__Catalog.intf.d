lib/minidb/catalog.mli: Schema Table
