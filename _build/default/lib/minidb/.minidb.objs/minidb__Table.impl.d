lib/minidb/table.ml: Array Errors Hashtbl List Printf Schema String Tid Value
