lib/minidb/sql_ast.ml: List Option Value
