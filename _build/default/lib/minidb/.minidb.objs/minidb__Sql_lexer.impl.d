lib/minidb/sql_lexer.ml: Array Buffer Errors Hashtbl List Printf String
