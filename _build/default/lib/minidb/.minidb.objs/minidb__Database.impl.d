lib/minidb/database.ml: Annotation Array Catalog Errors Eval_expr Executor List Option Planner Printf Schema Sql_ast Sql_parser Table Tid Value
