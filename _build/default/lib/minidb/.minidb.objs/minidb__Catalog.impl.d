lib/minidb/catalog.ml: Errors Hashtbl List Printf String Table
