lib/minidb/schema.ml: Array Errors Format Hashtbl List Option Printf String Value
