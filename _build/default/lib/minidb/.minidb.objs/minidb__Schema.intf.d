lib/minidb/schema.mli: Format Value
