lib/minidb/database.mli: Catalog Executor Planner Sql_ast Tid Value
