lib/minidb/pretty.ml: Format List Sql_ast Sql_parser String Value
