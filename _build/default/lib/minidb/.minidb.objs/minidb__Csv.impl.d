lib/minidb/csv.ml: Array Buffer Errors List Printf Schema String Value
