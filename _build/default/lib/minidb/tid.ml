(** Tuple version identifiers.

    A stored tuple version is identified by [(table, rid, version)]:
    [rid] is the stable row identity (the paper's [prov_rowid]) and
    [version] is the logical timestamp of the write that produced this
    version (the paper's [prov_v]). These identifiers are the provenance
    variables of the annotation semiring and the DB entity ids of the
    combined execution trace. *)

type t = { table : string; rid : int; version : int }

let make ~table ~rid ~version =
  { table = String.lowercase_ascii table; rid; version }

let compare a b =
  match String.compare a.table b.table with
  | 0 -> (
    match Int.compare a.rid b.rid with
    | 0 -> Int.compare a.version b.version
    | c -> c)
  | c -> c

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp ppf t = Format.fprintf ppf "%s:%d@@%d" t.table t.rid t.version
let to_string t = Format.asprintf "%a" pp t

(** Parse the [pp] rendering back; used by trace (de)serialization. *)
let of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let table = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest '@' with
    | None -> None
    | Some j -> (
      try
        let rid = int_of_string (String.sub rest 0 j) in
        let version =
          int_of_string (String.sub rest (j + 1) (String.length rest - j - 1))
        in
        Some { table; rid; version }
      with Failure _ -> None))

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
