(** Table schemas and column resolution.

    A schema is an ordered array of columns. Columns carry an optional
    qualifier (table name or alias) so SELECTs over joins can resolve
    qualified references such as [o.o_orderkey]. Names are normalized to
    lowercase. *)

type column = {
  qualifier : string option;
  name : string;
  ty : Value.ty;
}

type t = column array

val column : ?qualifier:string -> string -> Value.ty -> column

(** @raise Errors.Db_error [Duplicate_column] on duplicates. *)
val of_list : column list -> t

val arity : t -> int

(** Re-qualify every column with alias [q] (FROM-clause aliasing). *)
val with_qualifier : string -> t -> t

(** Concatenate schemas for a join result. *)
val append : t -> t -> t

(** Resolve a possibly-qualified column reference to its index.
    @raise Errors.Db_error [Unknown_column] or [Ambiguous_column]. *)
val resolve : t -> ?qualifier:string -> string -> int

val find_opt : t -> ?qualifier:string -> string -> int option

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit

(** Validate a row against the schema, coercing where allowed (ints widen
    to float columns).
    @raise Errors.Db_error on arity or type mismatches. *)
val coerce_row : t -> Value.t array -> Value.t array
