(** Provenance annotations: the N[X] semiring of provenance polynomials.

    Following the semiring annotation framework (Green et al.; the paper's
    §VI-A), every base tuple carries the indeterminate [var tid] and the
    executor propagates annotations through operators: joins multiply,
    union/duplicate-elimination/aggregation-grouping add. Polynomials are
    kept in a canonical normal form, so [equal] is semantic equality.

    Lineage — the set of base tuples a result depends on (Definition 7) —
    and why-provenance are homomorphic images of the polynomial. *)

type t

val zero : t
val one : t
val var : Tid.t -> t
val of_int : int -> t

val add : t -> t -> t
val mul : t -> t -> t

(** [sum ps] equals [List.fold_left add zero ps] but runs in
    O(total monomials × log) — required when aggregating large groups. *)
val sum : t list -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** All variables of the polynomial: the Lineage [Lin] of Definition 7. *)
val lineage : t -> Tid.Set.t

(** Why-provenance: the distinct witness sets, one per monomial. *)
val why : t -> Tid.Set.t list

(** Number of distinct derivations (bag multiplicity) when every base
    tuple has multiplicity 1. *)
val derivation_count : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A commutative semiring, for evaluating polynomials under alternative
    provenance semantics. *)
module type SEMIRING = sig
  type elt

  val zero : elt
  val one : elt
  val add : elt -> elt -> elt
  val mul : elt -> elt -> elt
  val equal : elt -> elt -> bool
end

(** [eval (module S) f p] is the image of [p] under the unique semiring
    homomorphism extending the variable assignment [f].
    @raise Invalid_argument on polynomials with negative coefficients
    (semirings have no subtraction). *)
val eval : (module SEMIRING with type elt = 'a) -> (Tid.t -> 'a) -> t -> 'a

module Bool_semiring : SEMIRING with type elt = bool
module Nat_semiring : SEMIRING with type elt = int
module Tropical_semiring : SEMIRING with type elt = int option

module Lineage_semiring : sig
  type elt = Bottom | Set of Tid.Set.t

  include SEMIRING with type elt := elt
end

(** Approximate in-memory footprint, for provenance-size accounting. *)
val byte_size : t -> int
