(** The DB-independent backend abstraction of the GProM middleware.

    The paper plans to replace the Perm-specific integration with GProM
    (§X), whose defining property is that provenance is computed by
    instrumenting SQL sent to an *unmodified* backend. This module pins
    down the minimal backend contract — execute a statement, report its
    affected tuple versions — and provides the MiniDB instance. A real
    deployment would add a PostgreSQL or SQLite instance with the same
    signature. *)

open Minidb

(** What the middleware needs from any backend. *)
module type S = sig
  type conn

  val name : conn -> string

  (** Execute a query, returning schema, rows, and per-row lineage. *)
  val query :
    conn -> string -> Schema.t * (Value.t array * Tid.Set.t) list

  (** Execute a DML statement, returning (a) the versions written with,
      per written version, the versions it derives from, and (b) every
      version the statement read (including delete victims, which write
      nothing). *)
  val dml : conn -> string -> (Tid.t * Tid.t list) list * Tid.t list

  (** Execute DDL / transaction-control statements. *)
  val command : conn -> string -> unit

  (** The current logical time of the backend. *)
  val clock : conn -> int
end

(** The MiniDB backend. *)
module Minidb_backend : S with type conn = Database.t = struct
  type conn = Database.t

  let name = Database.name

  let query db sql =
    let prov = Perm.Provenance_sql.query_lineage db sql in
    ( prov.Perm.Provenance_sql.schema,
      List.map
        (fun (r : Perm.Provenance_sql.provenance_row) ->
          (r.Perm.Provenance_sql.values, r.Perm.Provenance_sql.lineage))
        prov.Perm.Provenance_sql.rows )

  let dml db sql =
    match Database.exec db sql with
    | Database.Affected info -> (info.Database.deps, info.Database.read)
    | Database.Rows _ | Database.Ddl_done ->
      Errors.unsupported "Backend.dml expects a DML statement"

  let command db sql =
    match Database.exec db sql with
    | Database.Ddl_done -> ()
    | Database.Rows _ | Database.Affected _ ->
      Errors.unsupported "Backend.command expects a DDL/tx statement"

  let clock = Database.clock
end
