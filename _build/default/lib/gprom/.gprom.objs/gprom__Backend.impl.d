lib/gprom/backend.ml: Database Errors List Minidb Perm Schema Tid Value
