lib/gprom/tx_reenact.ml: Backend Format Hashtbl List Minidb Pretty String Tid
