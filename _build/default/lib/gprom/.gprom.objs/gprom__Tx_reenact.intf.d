lib/gprom/tx_reenact.mli: Backend Format Minidb Tid
