(** Transaction reenactment: GProM's signature capability.

    A transaction is a sequence of DML statements. Its provenance relates
    every tuple version the transaction produced to the versions that
    existed *before the transaction started* — intermediate versions
    created and superseded within the transaction are composed away.

    [run] executes the statements one by one through a backend, collecting
    per-statement dependency facts, and composes them: if statement 3
    derives v3 from v2, and statement 1 derived v2 from v1 (v1 pre-dating
    the transaction), the transaction's provenance maps v3 to {v1}.

    This is exactly the information LDV needs when an audited application
    uses transactions: the relevant pre-transaction versions go into the
    package; everything the transaction itself created is regenerated on
    replay. *)

open Minidb

type t = {
  tx_written : Tid.t list;  (** final versions surviving the transaction *)
  tx_intermediate : Tid.t list;  (** versions superseded within the tx *)
  tx_pre_state : Tid.Set.t;  (** pre-transaction versions read *)
  tx_deps : (Tid.t * Tid.Set.t) list;
      (** surviving version -> pre-transaction versions it derives from *)
  tx_statements : string list;  (** normalized statements, reenactment order *)
}

(** Compose per-statement dependency and read facts into transaction-level
    provenance. [start_clock] separates pre-transaction versions (version
    <= start) from versions the transaction created. *)
let compose ~start_clock
    (per_stmt : ((Tid.t * Tid.t list) list * Tid.t list) list) : t =
  let is_pre (tid : Tid.t) = tid.Tid.version <= start_clock in
  (* map from every tx-created version to its pre-tx roots *)
  let roots : (Tid.t, Tid.Set.t) Hashtbl.t = Hashtbl.create 64 in
  let resolve tid =
    if is_pre tid then Tid.Set.singleton tid
    else
      match Hashtbl.find_opt roots tid with
      | Some s -> s
      | None -> Tid.Set.empty (* created from nothing inside the tx *)
  in
  List.iter
    (fun (deps, _) ->
      List.iter
        (fun (written, srcs) ->
          let s =
            List.fold_left
              (fun acc d -> Tid.Set.union acc (resolve d))
              Tid.Set.empty srcs
          in
          Hashtbl.replace roots written s)
        deps)
    per_stmt;
  let all_written =
    List.concat_map (fun (deps, _) -> List.map fst deps) per_stmt
    |> List.sort_uniq Tid.compare
  in
  (* a version is intermediate if a later statement derived another
     version from it (or deleted it) within the transaction *)
  let superseded : (Tid.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (deps, reads) ->
      List.iter
        (fun (_, srcs) ->
          List.iter
            (fun d -> if not (is_pre d) then Hashtbl.replace superseded d ())
            srcs)
        deps;
      (* a delete reads its victims without writing anything *)
      if deps = [] then
        List.iter
          (fun r -> if not (is_pre r) then Hashtbl.replace superseded r ())
          reads)
    per_stmt;
  let surviving, intermediate =
    List.partition (fun tid -> not (Hashtbl.mem superseded tid)) all_written
  in
  (* pre-transaction versions touched: through dependency roots and
     through plain reads (delete victims in particular) *)
  let pre_state =
    List.fold_left
      (fun acc (deps, reads) ->
        let acc =
          List.fold_left
            (fun acc (_, srcs) ->
              List.fold_left
                (fun acc d -> Tid.Set.union acc (resolve d))
                acc srcs)
            acc deps
        in
        List.fold_left
          (fun acc r -> Tid.Set.union acc (resolve r))
          acc reads)
      Tid.Set.empty per_stmt
  in
  { tx_written = surviving;
    tx_intermediate = intermediate;
    tx_pre_state = pre_state;
    tx_deps = List.map (fun tid -> (tid, resolve tid)) surviving;
    tx_statements = [] }

(** Execute [statements] as one transaction through the backend, returning
    its composed provenance. On failure the transaction is rolled back and
    the exception re-raised. *)
let run (type conn) (module B : Backend.S with type conn = conn) (conn : conn)
    (statements : string list) : t =
  let start_clock = B.clock conn in
  B.command conn "BEGIN";
  let per_stmt =
    try List.map (fun sql -> B.dml conn sql) statements
    with e ->
      B.command conn "ROLLBACK";
      raise e
  in
  B.command conn "COMMIT";
  let result = compose ~start_clock per_stmt in
  { result with tx_statements = List.map Pretty.normalize statements }

(** Render a reenactment report: one line per surviving version with its
    pre-transaction roots. *)
let pp ppf (t : t) =
  Format.fprintf ppf "transaction of %d statements@."
    (List.length t.tx_statements);
  List.iter
    (fun (tid, roots) ->
      Format.fprintf ppf "  %a <- {%s}@." Tid.pp tid
        (String.concat ", "
           (List.map Tid.to_string (Tid.Set.elements roots))))
    t.tx_deps
