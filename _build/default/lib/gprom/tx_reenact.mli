(** Transaction reenactment: GProM's signature capability.

    Executes a sequence of DML statements as one transaction and composes
    their per-statement provenance, relating every surviving tuple version
    to the versions that existed before the transaction started. *)

open Minidb

type t = {
  tx_written : Tid.t list;  (** final versions surviving the transaction *)
  tx_intermediate : Tid.t list;  (** versions superseded within the tx *)
  tx_pre_state : Tid.Set.t;  (** pre-transaction versions read *)
  tx_deps : (Tid.t * Tid.Set.t) list;
      (** surviving version -> pre-transaction versions it derives from *)
  tx_statements : string list;  (** normalized statements, in order *)
}

(** Compose per-statement (dependencies, reads) facts into
    transaction-level provenance. [start_clock] separates pre-transaction
    versions (version <= start) from versions the transaction created. *)
val compose :
  start_clock:int -> ((Tid.t * Tid.t list) list * Tid.t list) list -> t

(** Execute [statements] as one transaction through the backend. On
    failure the transaction is rolled back and the exception re-raised. *)
val run :
  (module Backend.S with type conn = 'conn) -> 'conn -> string list -> t

val pp : Format.formatter -> t -> unit
