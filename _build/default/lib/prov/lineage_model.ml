(** The Lineage DB provenance model P_Lin (Definition 4).

    Activities are SQL statements (query, insert, update, delete); entities
    are tuple versions. Edge types: [hasRead : tuple -> statement] and
    [hasReturned : statement -> tuple]. Data dependencies between tuples
    (Definition 7) are registered as direct dependencies on the trace from
    the DB's lineage facts. *)

type stmt_kind = Query | Insert | Update | Delete

let stmt_type = function
  | Query -> "query"
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"

let tuple_type = "tuple"

let model : Model.t =
  let stmts = [ "query"; "insert"; "update"; "delete" ] in
  Model.make ~name:"lineage" ~activities:stmts ~entities:[ tuple_type ]
    ~edge_types:
      (List.concat_map
         (fun s ->
           [ Model.edge_type "hasRead" ~src:tuple_type ~dst:s;
             Model.edge_type "hasReturned" ~src:s ~dst:tuple_type ])
         stmts)

let stmt_id qid = Printf.sprintf "stmt:%d" qid
let tuple_id (tid : Minidb.Tid.t) = "tuple:" ^ Minidb.Tid.to_string tid

(** Recover the DB tuple identifier from a trace node id. *)
let tid_of_node_id (id : string) : Minidb.Tid.t option =
  if String.length id > 6 && String.sub id 0 6 = "tuple:" then
    Minidb.Tid.of_string (String.sub id 6 (String.length id - 6))
  else None

let add_statement trace ~qid ~kind ~sql =
  Trace.add_node trace ~id:(stmt_id qid) ~node_type:(stmt_type kind)
    ~label:(Printf.sprintf "q%d" qid)
    ~attrs:[ ("qid", string_of_int qid); ("sql", sql) ]
    ()

let add_tuple trace (tid : Minidb.Tid.t) =
  Trace.add_node trace ~id:(tuple_id tid) ~node_type:tuple_type
    ~label:(Minidb.Tid.to_string tid)
    ~attrs:
      [ ("table", tid.Minidb.Tid.table);
        ("rid", string_of_int tid.Minidb.Tid.rid);
        ("version", string_of_int tid.Minidb.Tid.version) ]
    ()

let has_read trace ~qid ~tid ~time =
  Trace.add_edge trace ~label:"hasRead" ~src:(tuple_id tid) ~dst:(stmt_id qid)
    ~time

let has_returned trace ~qid ~tid ~time =
  Trace.add_edge trace ~label:"hasReturned" ~src:(stmt_id qid)
    ~dst:(tuple_id tid) ~time

(** Register that result tuple [result] has input tuple [source] in its
    lineage (Definition 7's dependency edges). *)
let depends_on trace ~result ~source =
  Trace.add_dependency trace ~later:(tuple_id result) ~earlier:(tuple_id source)
