(** Execution traces (Definition 2).

    A trace is a directed graph whose nodes are instances of the model's
    activity/entity types and whose edges carry time-interval annotations.
    Edge direction follows information flow: [file -> process] for reads,
    [process -> file] for writes, [tuple -> statement] for statement inputs,
    [statement -> tuple] for results.

    Traces also store *direct data dependencies* between entities of the
    same model (Definitions 7 and 8 are instances): for the Lineage model
    these are registered explicitly from the DB's lineage facts; for the
    blackbox model they are implied by process paths and need not be
    stored. *)

type node = {
  id : string;
  node_type : string;  (** one of the model's activity/entity types *)
  kind : Model.node_kind;
  label : string;  (** human-readable display label *)
  attrs : (string * string) list;
}

type edge = { elabel : string; src : string; dst : string; time : Interval.t }

type t = {
  model : Model.t;
  nodes : (string, node) Hashtbl.t;
  mutable edges : edge list;  (** newest first *)
  out_adj : (string, edge list ref) Hashtbl.t;
  in_adj : (string, edge list ref) Hashtbl.t;
  (* (later entity id, earlier entity id) direct dependencies, keyed by the
     later entity, with a pair-level seen-set for O(1) dedup *)
  direct_deps : (string, string list ref) Hashtbl.t;
  dep_seen : (string * string, unit) Hashtbl.t;
  mutable n_edges : int;
}

let create model =
  { model;
    nodes = Hashtbl.create 256;
    edges = [];
    out_adj = Hashtbl.create 256;
    in_adj = Hashtbl.create 256;
    direct_deps = Hashtbl.create 64;
    dep_seen = Hashtbl.create 64;
    n_edges = 0 }

let model t = t.model

let find_node t id = Hashtbl.find_opt t.nodes id

let node_exn t id =
  match find_node t id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Trace: unknown node %S" id)

let mem_node t id = Hashtbl.mem t.nodes id

let add_node t ?(label = "") ?(attrs = []) ~id ~node_type () =
  match Model.kind_of t.model node_type with
  | None ->
    invalid_arg
      (Printf.sprintf "Trace.add_node: type %S not in model %s" node_type
         t.model.Model.name)
  | Some kind ->
    (match Hashtbl.find_opt t.nodes id with
    | Some existing ->
      if not (String.equal existing.node_type node_type) then
        invalid_arg
          (Printf.sprintf "Trace.add_node: node %S re-added with type %S" id
             node_type);
      existing
    | None ->
      let label = if label = "" then id else label in
      let n = { id; node_type; kind; label; attrs } in
      Hashtbl.replace t.nodes id n;
      n)

let add_edge t ~label ~src ~dst ~time =
  let s = node_exn t src and d = node_exn t dst in
  if not (Model.edge_allowed t.model ~label ~src:s.node_type ~dst:d.node_type)
  then
    invalid_arg
      (Printf.sprintf
         "Trace.add_edge: edge %S from type %S to type %S not allowed" label
         s.node_type d.node_type);
  let e = { elabel = label; src; dst; time } in
  t.edges <- e :: t.edges;
  t.n_edges <- t.n_edges + 1;
  let push tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := e :: !r
    | None -> Hashtbl.replace tbl key (ref [ e ])
  in
  push t.out_adj src;
  push t.in_adj dst;
  e

(** Register a direct data dependency: entity [later] depends on entity
    [earlier] (both must be entities of the same sub-model). *)
let add_dependency t ~later ~earlier =
  (match (find_node t later, find_node t earlier) with
  | Some a, Some b ->
    if a.kind <> Model.Entity || b.kind <> Model.Entity then
      invalid_arg "Trace.add_dependency: both nodes must be entities"
  | _ -> invalid_arg "Trace.add_dependency: unknown node");
  if not (Hashtbl.mem t.dep_seen (later, earlier)) then begin
    Hashtbl.replace t.dep_seen (later, earlier) ();
    match Hashtbl.find_opt t.direct_deps later with
    | Some r -> r := earlier :: !r
    | None -> Hashtbl.replace t.direct_deps later (ref [ earlier ])
  end

let direct_deps_of t id =
  match Hashtbl.find_opt t.direct_deps id with Some r -> !r | None -> []

let has_direct_dep t ~later ~earlier = Hashtbl.mem t.dep_seen (later, earlier)

let in_edges t id =
  match Hashtbl.find_opt t.in_adj id with Some r -> !r | None -> []

let out_edges t id =
  match Hashtbl.find_opt t.out_adj id with Some r -> !r | None -> []

let nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
let edges t = List.rev t.edges
let node_count t = Hashtbl.length t.nodes
let edge_count t = t.n_edges

let entities t = List.filter (fun n -> n.kind = Model.Entity) (nodes t)
let activities t = List.filter (fun n -> n.kind = Model.Activity) (nodes t)

(** State of a node at time [at] (Definition 10): sources of all incoming
    interactions that began no later than [at]. *)
let state t id ~at =
  List.filter_map
    (fun e -> if Interval.b e.time <= at then Some e.src else None)
    (in_edges t id)

(* ------------------------------------------------------------------ *)
(* Serialization: a line-oriented format with one node/edge/dep per
   line. Sufficient for embedding traces in packages.                  *)

let escape s =
  String.concat "\\t" (String.split_on_char '\t' s)
  |> String.split_on_char '\n'
  |> String.concat "\\n"

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = '\\' && !i + 1 < n then begin
      (match s.[!i + 1] with
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | c ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let serialize t : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "N\t%s\t%s\t%s" (escape n.id) (escape n.node_type)
           (escape n.label));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "\t%s=%s" (escape k) (escape v)))
        n.attrs;
      Buffer.add_char buf '\n')
    (nodes t |> List.sort (fun a b -> String.compare a.id b.id));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "E\t%s\t%s\t%s\t%d\t%d\n" (escape e.elabel)
           (escape e.src) (escape e.dst) (Interval.b e.time)
           (Interval.e e.time)))
    (edges t);
  Hashtbl.iter
    (fun later r ->
      List.iter
        (fun earlier ->
          Buffer.add_string buf
            (Printf.sprintf "D\t%s\t%s\n" (escape later) (escape earlier)))
        !r)
    t.direct_deps;
  Buffer.contents buf

let deserialize (model : Model.t) (data : string) : t =
  let t = create model in
  String.split_on_char '\n' data
  |> List.iter (fun line ->
         if String.length line = 0 then ()
         else
           match String.split_on_char '\t' line with
           | "N" :: id :: node_type :: label :: attrs ->
             let attrs =
               List.filter_map
                 (fun kv ->
                   match String.index_opt kv '=' with
                   | None -> None
                   | Some i ->
                     Some
                       ( unescape (String.sub kv 0 i),
                         unescape
                           (String.sub kv (i + 1) (String.length kv - i - 1))
                       ))
                 attrs
             in
             ignore
               (add_node t ~label:(unescape label) ~attrs ~id:(unescape id)
                  ~node_type:(unescape node_type) ())
           | [ "E"; label; src; dst; b; e ] ->
             ignore
               (add_edge t ~label:(unescape label) ~src:(unescape src)
                  ~dst:(unescape dst)
                  ~time:(Interval.make (int_of_string b) (int_of_string e)))
           | [ "D"; later; earlier ] ->
             add_dependency t ~later:(unescape later)
               ~earlier:(unescape earlier)
           | _ ->
             invalid_arg
               (Printf.sprintf "Trace.deserialize: malformed line %S" line));
  t
