(** Export of execution traces to W3C PROV representations.

    The paper requires only that the provenance produced by both models be
    representable in PROV (§IV-A). The mapping:

    - activities (processes, SQL statements) -> prov:Activity
    - entities (files, tuple versions)       -> prov:Entity
    - readFrom / hasRead / readFromDb        -> prov:used(activity, entity)
    - hasWritten / hasReturned               -> prov:wasGeneratedBy(entity, activity)
    - executed / run                          -> prov:wasStartedBy(child, parent)
    - registered direct dependencies          -> prov:wasDerivedFrom(later, earlier)

    Interval annotations become prov:startTime / prov:endTime attributes on
    the relation records. Two serializations are provided: PROV-JSON and
    PROV-N. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* PROV identifiers: replace characters outside [A-Za-z0-9_.:-] to keep
   qualified names well-formed under the ldv: prefix (the embedded colon
   of our node-id scheme is kept for readability). *)
let prov_id s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | ':' -> c
      | _ -> '_')
    s

type relation = Used | Was_generated_by | Was_started_by

let classify_edge (e : Trace.edge) : relation * string * string =
  (* returns (relation, activity-or-subject, entity-or-object) following
     each PROV relation's argument order *)
  match e.Trace.elabel with
  | "readFrom" | "hasRead" | "readFromDb" -> (Used, e.Trace.dst, e.Trace.src)
  | "hasWritten" | "hasReturned" -> (Was_generated_by, e.Trace.dst, e.Trace.src)
  | "executed" | "run" -> (Was_started_by, e.Trace.dst, e.Trace.src)
  | other ->
    invalid_arg (Printf.sprintf "Prov_export: unknown edge label %S" other)

(** PROV-JSON document for a trace. *)
let to_prov_json (trace : Trace.t) : string =
  let buf = Buffer.create 4096 in
  let nodes = Trace.nodes trace in
  let entities, activities =
    List.partition (fun (n : Trace.node) -> n.Trace.kind = Model.Entity) nodes
  in
  let pp_node_map name list =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" name);
    List.iteri
      (fun i (n : Trace.node) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    \"ldv:%s\": {\"ldv:type\": \"%s\", \"ldv:label\": \"%s\"}%s\n"
             (prov_id n.Trace.id) (json_escape n.Trace.node_type)
             (json_escape n.Trace.label)
             (if i = List.length list - 1 then "" else ","))
        )
      list;
    Buffer.add_string buf "  }"
  in
  let sorted l =
    List.sort
      (fun (a : Trace.node) b -> String.compare a.Trace.id b.Trace.id)
      l
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"prefix\": {\"ldv\": \"https://ldv.example.org/ns#\"},\n";
  pp_node_map "entity" (sorted entities);
  Buffer.add_string buf ",\n";
  pp_node_map "activity" (sorted activities);
  Buffer.add_string buf ",\n";
  let used = Buffer.create 512 in
  let gen = Buffer.create 512 in
  let started = Buffer.create 512 in
  List.iteri
    (fun i (e : Trace.edge) ->
      let rel, subj, obj = classify_edge e in
      let line target keys =
        Buffer.add_string target
          (Printf.sprintf
             "    \"_r%d\": {\"prov:%s\": \"ldv:%s\", \"prov:%s\": \
              \"ldv:%s\", \"ldv:start\": %d, \"ldv:end\": %d},\n"
             i (fst keys) (prov_id subj) (snd keys) (prov_id obj)
             (Interval.b e.Trace.time) (Interval.e e.Trace.time))
      in
      match rel with
      | Used -> line used ("activity", "entity")
      | Was_generated_by -> line gen ("entity", "activity")
      | Was_started_by -> line started ("activity", "starter"))
    (Trace.edges trace);
  let emit_map name b =
    let s = Buffer.contents b in
    let s =
      (* drop trailing ",\n" *)
      if String.length s >= 2 then String.sub s 0 (String.length s - 2) else s
    in
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n%s\n  }" name s)
  in
  emit_map "used" used;
  Buffer.add_string buf ",\n";
  emit_map "wasGeneratedBy" gen;
  Buffer.add_string buf ",\n";
  emit_map "wasStartedBy" started;
  (* derivations from registered direct dependencies *)
  let deps = Dependency.lineage_dependencies trace in
  if deps <> [] then begin
    Buffer.add_string buf ",\n  \"wasDerivedFrom\": {\n";
    List.iteri
      (fun i (later, earlier) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    \"_d%d\": {\"prov:generatedEntity\": \"ldv:%s\", \
              \"prov:usedEntity\": \"ldv:%s\"}%s\n"
             i (prov_id later) (prov_id earlier)
             (if i = List.length deps - 1 then "" else ",")))
      deps;
    Buffer.add_string buf "  }"
  end;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** PROV-N rendering of a trace. *)
let to_prov_n (trace : Trace.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "document\n";
  Buffer.add_string buf "  prefix ldv <https://ldv.example.org/ns#>\n";
  let sorted_nodes =
    List.sort
      (fun (a : Trace.node) b -> String.compare a.Trace.id b.Trace.id)
      (Trace.nodes trace)
  in
  List.iter
    (fun (n : Trace.node) ->
      let ctor =
        match n.Trace.kind with
        | Model.Entity -> "entity"
        | Model.Activity -> "activity"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s(ldv:%s, [ldv:type=\"%s\", ldv:label=\"%s\"])\n"
           ctor (prov_id n.Trace.id) n.Trace.node_type
           (json_escape n.Trace.label)))
    sorted_nodes;
  List.iter
    (fun (e : Trace.edge) ->
      let rel, subj, obj = classify_edge e in
      let name =
        match rel with
        | Used -> "used"
        | Was_generated_by -> "wasGeneratedBy"
        | Was_started_by -> "wasStartedBy"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s(ldv:%s, ldv:%s, [ldv:start=%d, ldv:end=%d])\n"
           name (prov_id subj) (prov_id obj) (Interval.b e.Trace.time)
           (Interval.e e.Trace.time)))
    (Trace.edges trace);
  List.iter
    (fun (later, earlier) ->
      Buffer.add_string buf
        (Printf.sprintf "  wasDerivedFrom(ldv:%s, ldv:%s)\n" (prov_id later)
           (prov_id earlier)))
    (Dependency.lineage_dependencies trace);
  Buffer.add_string buf "endDocument\n";
  Buffer.contents buf
