(** Provenance queries over execution traces: the reachability and
    dependency questions §II promises ("does data item d depend on data
    item d'"), plus summary statistics used by the CLI's inspect command. *)

type stats = {
  processes : int;
  files : int;
  statements : int;
  tuples : int;
  edges : int;
  direct_dependencies : int;
  time_span : Interval.t option;
}

let stats (trace : Trace.t) : stats =
  let count ty =
    List.length
      (List.filter
         (fun (n : Trace.node) -> String.equal n.Trace.node_type ty)
         (Trace.nodes trace))
  in
  let stmt_count =
    List.length
      (List.filter
         (fun (n : Trace.node) ->
           List.mem n.Trace.node_type [ "query"; "insert"; "update"; "delete" ])
         (Trace.nodes trace))
  in
  let time_span =
    match Trace.edges trace with
    | [] -> None
    | e :: rest ->
      Some
        (List.fold_left
           (fun acc (x : Trace.edge) -> Interval.hull acc x.Trace.time)
           e.Trace.time rest)
  in
  { processes = count Bb_model.process_type;
    files = count Bb_model.file_type;
    statements = stmt_count;
    tuples = count Lineage_model.tuple_type;
    edges = Trace.edge_count trace;
    direct_dependencies =
      List.length (Dependency.lineage_dependencies trace);
    time_span }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "processes=%d files=%d statements=%d tuples=%d edges=%d deps=%d span=%s"
    s.processes s.files s.statements s.tuples s.edges s.direct_dependencies
    (match s.time_span with
    | None -> "-"
    | Some i -> Interval.to_string i)

(** Does [target] (entity id) depend on [source] (entity id)?
    Uses the temporally-restricted inference of Definition 11. *)
let depends_on trace ~target ~source =
  Dependency.depends_on trace ~target ~source

(** The transitive input closure of an entity: everything it was inferred
    to depend on. *)
let inputs_of trace id = Dependency.dependencies_of trace id

(** Entities that depend on [id]: the forward slice. Quadratic; fine for
    inspection purposes. *)
let outputs_of trace id =
  List.filter_map
    (fun (n : Trace.node) ->
      if String.equal n.Trace.id id then None
      else if Dependency.depends_on trace ~target:n.Trace.id ~source:id then
        Some n.Trace.id
      else None)
    (Trace.entities trace)

(** Files written by the trace but never read by any process in it: the
    workflow's final outputs. *)
let final_outputs (trace : Trace.t) : string list =
  List.filter_map
    (fun (n : Trace.node) ->
      if not (String.equal n.Trace.node_type Bb_model.file_type) then None
      else
        let written =
          List.exists
            (fun (e : Trace.edge) -> String.equal e.Trace.elabel "hasWritten")
            (Trace.in_edges trace n.Trace.id)
        in
        let read =
          List.exists
            (fun (e : Trace.edge) -> String.equal e.Trace.elabel "readFrom")
            (Trace.out_edges trace n.Trace.id)
        in
        if written && not read then Some n.Trace.id else None)
    (Trace.nodes trace)
  |> List.sort String.compare
