(** The combined OS+DB provenance model (Definitions 5 and 6).

    Extends the union of P_BB and P_Lin with the cross-model edge types:
    [run : process -> statement] (a process executes a SQL statement) and
    [readFromDb : tuple -> process] (a process consumes a result tuple). *)

let model : Model.t =
  let os = Bb_model.model and db = Lineage_model.model in
  { Model.name = "bb+lineage";
    activities = os.Model.activities @ db.Model.activities;
    entities = os.Model.entities @ db.Model.entities;
    edge_types =
      os.Model.edge_types @ db.Model.edge_types
      @ List.concat_map
          (fun stmt ->
            [ Model.edge_type "run" ~src:Bb_model.process_type ~dst:stmt ])
          db.Model.activities
      @ [ Model.edge_type "readFromDb" ~src:Lineage_model.tuple_type
            ~dst:Bb_model.process_type ] }

let create () = Trace.create model

let run trace ~pid ~qid ~time =
  Trace.add_edge trace ~label:"run" ~src:(Bb_model.process_id pid)
    ~dst:(Lineage_model.stmt_id qid) ~time

let read_from_db trace ~pid ~tid ~time =
  Trace.add_edge trace ~label:"readFromDb" ~src:(Lineage_model.tuple_id tid)
    ~dst:(Bb_model.process_id pid) ~time

(** Which sub-model an entity node belongs to (used by the dependency
    inference to decide when a same-model direct-dependency check is
    required). *)
let entity_model (n : Trace.node) : string =
  if String.equal n.Trace.node_type Bb_model.file_type then "bb"
  else if String.equal n.Trace.node_type Lineage_model.tuple_type then
    "lineage"
  else invalid_arg "Combined.entity_model: not an entity node"
