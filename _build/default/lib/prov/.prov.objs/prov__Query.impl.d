lib/prov/query.ml: Bb_model Dependency Format Interval Lineage_model List String Trace
