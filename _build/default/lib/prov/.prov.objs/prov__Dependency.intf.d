lib/prov/dependency.mli: Trace
