lib/prov/dot.ml: Buffer Dependency Interval List Model Printf String Trace
