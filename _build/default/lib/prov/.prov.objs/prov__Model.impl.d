lib/prov/model.ml: Fun List Printf String
