lib/prov/lineage_model.ml: List Minidb Model Printf String Trace
