lib/prov/dependency.ml: Bb_model Hashtbl Interval Lineage_model List Model Option String Trace
