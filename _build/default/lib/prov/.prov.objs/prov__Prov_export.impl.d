lib/prov/prov_export.ml: Buffer Char Dependency Interval List Model Printf String Trace
