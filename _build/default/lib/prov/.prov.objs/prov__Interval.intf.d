lib/prov/interval.mli: Format
