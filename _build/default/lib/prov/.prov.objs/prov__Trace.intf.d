lib/prov/trace.mli: Interval Model
