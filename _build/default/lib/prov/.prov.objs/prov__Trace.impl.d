lib/prov/trace.ml: Buffer Hashtbl Interval List Model Printf String
