lib/prov/diff.ml: Format Hashtbl List Option Printf String Trace
