lib/prov/combined.ml: Bb_model Lineage_model List Model String Trace
