lib/prov/query.mli: Format Interval Trace
