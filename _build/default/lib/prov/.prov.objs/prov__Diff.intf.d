lib/prov/diff.mli: Format Trace
