lib/prov/interval.ml: Format Int
