lib/prov/model.mli:
