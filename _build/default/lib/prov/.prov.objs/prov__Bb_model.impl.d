lib/prov/bb_model.ml: Model Printf Trace
