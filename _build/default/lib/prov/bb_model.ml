(** The blackbox process OS provenance model P_BB (Definition 3).

    Activities are processes; entities are files. Edge types:
    [readFrom : file -> process], [hasWritten : process -> file],
    [executed : process -> process] (parent to child, following information
    flow). *)

let process_type = "process"
let file_type = "file"

let model : Model.t =
  Model.make ~name:"bb"
    ~activities:[ process_type ]
    ~entities:[ file_type ]
    ~edge_types:
      [ Model.edge_type "readFrom" ~src:file_type ~dst:process_type;
        Model.edge_type "hasWritten" ~src:process_type ~dst:file_type;
        Model.edge_type "executed" ~src:process_type ~dst:process_type ]

(* Node id conventions keep OS and DB namespaces disjoint in combined
   traces. *)
let process_id pid = Printf.sprintf "proc:%d" pid
let file_id path = Printf.sprintf "file:%s" path

let add_process trace ~pid ~name =
  Trace.add_node trace ~id:(process_id pid) ~node_type:process_type
    ~label:(Printf.sprintf "%s[%d]" name pid)
    ~attrs:[ ("pid", string_of_int pid); ("name", name) ]
    ()

let add_file trace ~path =
  Trace.add_node trace ~id:(file_id path) ~node_type:file_type ~label:path
    ~attrs:[ ("path", path) ]
    ()

let read_from trace ~pid ~path ~time =
  Trace.add_edge trace ~label:"readFrom" ~src:(file_id path)
    ~dst:(process_id pid) ~time

let has_written trace ~pid ~path ~time =
  Trace.add_edge trace ~label:"hasWritten" ~src:(process_id pid)
    ~dst:(file_id path) ~time

let executed trace ~parent ~child ~time =
  Trace.add_edge trace ~label:"executed" ~src:(process_id parent)
    ~dst:(process_id child) ~time
