(** Provenance models (Definition 1): the admissible activity types,
    entity types, and edge types of a domain. Execution traces are
    validated against their model. *)

type node_kind = Activity | Entity

type edge_type = {
  label : string;
  src_type : string;  (** an activity or entity type of this model *)
  dst_type : string;
}

type t = {
  name : string;
  activities : string list;
  entities : string list;
  edge_types : edge_type list;
}

val edge_type : string -> src:string -> dst:string -> edge_type

(** Definition 1's well-formedness: node types pairwise distinct, edge
    labels disjoint from node types, no duplicate (label, src, dst)
    triple, endpoints declared. *)
val well_formed : t -> (unit, string) result

(** @raise Invalid_argument when not well-formed. *)
val make :
  name:string ->
  activities:string list ->
  entities:string list ->
  edge_types:edge_type list ->
  t

val is_activity : t -> string -> bool
val is_entity : t -> string -> bool
val kind_of : t -> string -> node_kind option
val find_edge_type : t -> string -> edge_type option

(** Does the model allow an edge labeled [label] from a node of type [src]
    to a node of type [dst]? *)
val edge_allowed : t -> label:string -> src:string -> dst:string -> bool

(** Combine an OS and a DB model (Definition 5), adding the cross-model
    edge types [run] and [readFromDb]. *)
val combine :
  os:t -> db:t -> os_activity:string -> db_activity:string -> db_entity:string -> t
