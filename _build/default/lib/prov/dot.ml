(** Graphviz rendering of execution traces: activities as rectangles,
    entities as ellipses (PROV style), edge labels carrying the time
    interval, dashed edges for registered direct dependencies. *)

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let node_color (n : Trace.node) =
  match n.Trace.node_type with
  | "process" -> "lightblue"
  | "file" -> "khaki"
  | "tuple" -> "palegreen"
  | _ -> "lightsalmon"

let to_dot (trace : Trace.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph trace {\n  rankdir=LR;\n";
  let sorted_nodes =
    List.sort
      (fun (a : Trace.node) b -> String.compare a.Trace.id b.Trace.id)
      (Trace.nodes trace)
  in
  List.iter
    (fun (n : Trace.node) ->
      let shape =
        match n.Trace.kind with
        | Model.Activity -> "box"
        | Model.Entity -> "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" [shape=%s, style=filled, fillcolor=%s, label=\"%s\"];\n"
           (dot_escape n.Trace.id) shape (node_color n)
           (dot_escape n.Trace.label)))
    sorted_nodes;
  List.iter
    (fun (e : Trace.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s %s\"];\n"
           (dot_escape e.Trace.src) (dot_escape e.Trace.dst) e.Trace.elabel
           (Interval.to_string e.Trace.time)))
    (Trace.edges trace);
  List.iter
    (fun (later, earlier) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [style=dashed, color=gray];\n"
           (dot_escape earlier) (dot_escape later)))
    (Dependency.lineage_dependencies trace);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
