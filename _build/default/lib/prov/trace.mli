(** Execution traces (Definition 2): directed graphs of model-typed
    activity/entity nodes whose edges carry time-interval annotations.
    Edge direction follows information flow ([file -> process] for reads,
    [process -> file] for writes, [tuple -> statement] for inputs,
    [statement -> tuple] for results).

    Traces also store direct data dependencies between entities of the
    same model (Definition 7's lineage facts are registered explicitly;
    Definition 8's blackbox dependencies are implied by process paths). *)

type node = {
  id : string;
  node_type : string;
  kind : Model.node_kind;
  label : string;
  attrs : (string * string) list;
}

type edge = { elabel : string; src : string; dst : string; time : Interval.t }

type t

val create : Model.t -> t
val model : t -> Model.t

val find_node : t -> string -> node option

(** @raise Invalid_argument on unknown node ids. *)
val node_exn : t -> string -> node

val mem_node : t -> string -> bool

(** Idempotent for an existing node of the same type.
    @raise Invalid_argument on types outside the model, or on re-adding an
    id with a different type. *)
val add_node :
  t ->
  ?label:string ->
  ?attrs:(string * string) list ->
  id:string ->
  node_type:string ->
  unit ->
  node

(** @raise Invalid_argument when the edge type is not admissible between
    the endpoint node types. *)
val add_edge :
  t -> label:string -> src:string -> dst:string -> time:Interval.t -> edge

(** Register that entity [later] directly depends on entity [earlier]
    (both must be entities). Idempotent per pair.
    @raise Invalid_argument on non-entity endpoints. *)
val add_dependency : t -> later:string -> earlier:string -> unit

val direct_deps_of : t -> string -> string list
val has_direct_dep : t -> later:string -> earlier:string -> bool

val in_edges : t -> string -> edge list
val out_edges : t -> string -> edge list

val nodes : t -> node list
val edges : t -> edge list

val node_count : t -> int
val edge_count : t -> int

val entities : t -> node list
val activities : t -> node list

(** State of a node at time [at] (Definition 10): sources of all incoming
    interactions that began no later than [at]. *)
val state : t -> string -> at:int -> string list

(** Line-oriented serialization; embedded in packages. *)
val serialize : t -> string

(** @raise Invalid_argument on malformed input. *)
val deserialize : Model.t -> string -> t
