(** Provenance models (Definition 1).

    A provenance model declares the admissible activity types, entity types
    and edge types of a domain. Edge types constrain which node types an
    edge of a given label may connect; execution traces are validated
    against their model. *)

type node_kind = Activity | Entity

type edge_type = {
  label : string;
  src_type : string;  (** an activity or entity type of this model *)
  dst_type : string;
}

type t = {
  name : string;  (** model name, e.g. "bb" or "lineage" *)
  activities : string list;
  entities : string list;
  edge_types : edge_type list;
}

let edge_type label ~src ~dst = { label; src_type = src; dst_type = dst }

(** Check Definition 1's well-formedness: activity, entity and edge labels
    pairwise distinct (an edge label may be declared for several endpoint
    pairs — e.g. [hasRead] exists for every statement type — but each
    (label, src, dst) triple at most once), and edge endpoints must refer
    to declared types. *)
let well_formed (m : t) : (unit, string) result =
  let dup cmp to_name l =
    let sorted = List.sort cmp l in
    let rec go = function
      | a :: (b :: _ as rest) -> if cmp a b = 0 then Some (to_name a) else go rest
      | _ -> None
    in
    go sorted
  in
  let node_types = m.activities @ m.entities in
  match dup String.compare Fun.id node_types with
  | Some l -> Error (Printf.sprintf "duplicate node type %S in model %s" l m.name)
  | None ->
    if List.exists (fun e -> List.mem e.label node_types) m.edge_types then
      Error (Printf.sprintf "edge label clashes with a node type in model %s" m.name)
    else (
      match
        dup
          (fun a b -> compare (a.label, a.src_type, a.dst_type) (b.label, b.src_type, b.dst_type))
          (fun e -> e.label)
          m.edge_types
      with
      | Some l ->
        Error (Printf.sprintf "duplicate edge type %S in model %s" l m.name)
      | None ->
        let bad =
          List.find_opt
            (fun e ->
              (not (List.mem e.src_type node_types))
              || not (List.mem e.dst_type node_types))
            m.edge_types
        in
        (match bad with
        | Some e ->
          Error
            (Printf.sprintf "edge type %S refers to undeclared node types"
               e.label)
        | None -> Ok ()))

let make ~name ~activities ~entities ~edge_types =
  let m = { name; activities; entities; edge_types } in
  match well_formed m with
  | Ok () -> m
  | Error msg -> invalid_arg ("Model.make: " ^ msg)

let is_activity m ty = List.mem ty m.activities
let is_entity m ty = List.mem ty m.entities
let kind_of m ty =
  if is_activity m ty then Some Activity
  else if is_entity m ty then Some Entity
  else None

let find_edge_type m label = List.find_opt (fun e -> String.equal e.label label) m.edge_types

(** Edge-type admissibility: does the model allow an edge labeled [label]
    from a node of type [src] to a node of type [dst]? *)
let edge_allowed m ~label ~src ~dst =
  List.exists
    (fun e ->
      String.equal e.label label
      && String.equal e.src_type src
      && String.equal e.dst_type dst)
    m.edge_types

(** Combine an OS and a DB model (Definition 5), adding the cross-model
    edge types [run] (process starts a DB operation) and [readFrom]
    (a process reads a DB entity). [os_activity]/[db_activity]/[db_entity]
    name the types the cross edges connect. *)
let combine ~(os : t) ~(db : t) ~os_activity ~db_activity ~db_entity : t =
  { name = os.name ^ "+" ^ db.name;
    activities = os.activities @ db.activities;
    entities = os.entities @ db.entities;
    edge_types =
      os.edge_types @ db.edge_types
      @ [ edge_type "run" ~src:os_activity ~dst:db_activity;
          edge_type "readFromDb" ~src:db_entity ~dst:os_activity ] }
