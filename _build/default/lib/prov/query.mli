(** Provenance queries over execution traces: the reachability and
    dependency questions §II promises, plus summary statistics. *)

type stats = {
  processes : int;
  files : int;
  statements : int;
  tuples : int;
  edges : int;
  direct_dependencies : int;
  time_span : Interval.t option;
}

val stats : Trace.t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Does [target] depend on [source]? Temporally-restricted inference
    (Definition 11). *)
val depends_on : Trace.t -> target:string -> source:string -> bool

(** The transitive input closure of an entity. *)
val inputs_of : Trace.t -> string -> string list

(** Entities depending on [id]: the forward slice (quadratic). *)
val outputs_of : Trace.t -> string -> string list

(** Files written by the trace but never read within it: the workflow's
    final outputs. *)
val final_outputs : Trace.t -> string list
